# Empty compiler generated dependencies file for wtpg_sweep.
# This may be replaced when dependencies are built.
