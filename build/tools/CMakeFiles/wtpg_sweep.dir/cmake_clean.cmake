file(REMOVE_RECURSE
  "CMakeFiles/wtpg_sweep.dir/wtpg_sweep.cc.o"
  "CMakeFiles/wtpg_sweep.dir/wtpg_sweep.cc.o.d"
  "wtpg_sweep"
  "wtpg_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtpg_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
