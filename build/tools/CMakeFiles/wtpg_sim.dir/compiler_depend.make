# Empty compiler generated dependencies file for wtpg_sim.
# This may be replaced when dependencies are built.
