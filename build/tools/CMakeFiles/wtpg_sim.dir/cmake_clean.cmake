file(REMOVE_RECURSE
  "CMakeFiles/wtpg_sim.dir/wtpg_sim.cc.o"
  "CMakeFiles/wtpg_sim.dir/wtpg_sim.cc.o.d"
  "wtpg_sim"
  "wtpg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtpg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
