# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(wtpg_sim_help "/root/repo/build/tools/wtpg_sim" "--help")
set_tests_properties(wtpg_sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wtpg_sim_json "/root/repo/build/tools/wtpg_sim" "--scheduler=low" "--rate=0.5" "--horizon-ms=150000" "--max-arrivals=10" "--json")
set_tests_properties(wtpg_sim_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wtpg_sim_dot "/root/repo/build/tools/wtpg_sim" "--scheduler=c2pl" "--rate=0.8" "--horizon-ms=150000" "--dot-out=wtpg_snapshot.dot" "--dot-at-ms=50000")
set_tests_properties(wtpg_sim_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wtpg_sim_smoke "/root/repo/build/tools/wtpg_sim" "--scheduler=low" "--rate=0.5" "--horizon-ms=200000" "--max-arrivals=20" "--verify")
set_tests_properties(wtpg_sim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wtpg_sim_2pl_exp2 "/root/repo/build/tools/wtpg_sim" "--scheduler=2pl" "--workload=exp2" "--rate=0.4" "--horizon-ms=200000" "--max-arrivals=15" "--verify")
set_tests_properties(wtpg_sim_2pl_exp2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wtpg_sim_custom_pattern "/root/repo/build/tools/wtpg_sim" "--scheduler=gow" "--rate=0.5" "--horizon-ms=200000" "--max-arrivals=10" "--pattern=r(A:1) -> w(B:2)" "--verify")
set_tests_properties(wtpg_sim_custom_pattern PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wtpg_sim_rejects_bad_flag "/root/repo/build/tools/wtpg_sim" "--bogus=1")
set_tests_properties(wtpg_sim_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wtpg_sweep_rates "/root/repo/build/tools/wtpg_sweep" "--mode=rates" "--rates=0.3" "--horizon-ms=150000")
set_tests_properties(wtpg_sweep_rates PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wtpg_sweep_rt_target "/root/repo/build/tools/wtpg_sweep" "--mode=rt-target" "--scheduler=nodc" "--target-s=20" "--horizon-ms=150000" "--iters=4")
set_tests_properties(wtpg_sweep_rt_target PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wtpg_sweep_mpl "/root/repo/build/tools/wtpg_sweep" "--mode=mpl" "--scheduler=c2pl" "--rate=0.8" "--horizon-ms=150000")
set_tests_properties(wtpg_sweep_mpl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
