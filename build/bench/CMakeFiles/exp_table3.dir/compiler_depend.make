# Empty compiler generated dependencies file for exp_table3.
# This may be replaced when dependencies are built.
