file(REMOVE_RECURSE
  "CMakeFiles/micro_wtpg.dir/micro_wtpg.cc.o"
  "CMakeFiles/micro_wtpg.dir/micro_wtpg.cc.o.d"
  "micro_wtpg"
  "micro_wtpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_wtpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
