# Empty dependencies file for micro_wtpg.
# This may be replaced when dependencies are built.
