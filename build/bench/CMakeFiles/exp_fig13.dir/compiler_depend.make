# Empty compiler generated dependencies file for exp_fig13.
# This may be replaced when dependencies are built.
