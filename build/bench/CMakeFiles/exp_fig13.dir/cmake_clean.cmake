file(REMOVE_RECURSE
  "CMakeFiles/exp_fig13.dir/exp_fig13.cc.o"
  "CMakeFiles/exp_fig13.dir/exp_fig13.cc.o.d"
  "exp_fig13"
  "exp_fig13.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
