# Empty compiler generated dependencies file for abl_quantum.
# This may be replaced when dependencies are built.
