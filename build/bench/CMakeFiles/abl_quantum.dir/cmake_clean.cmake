file(REMOVE_RECURSE
  "CMakeFiles/abl_quantum.dir/abl_quantum.cc.o"
  "CMakeFiles/abl_quantum.dir/abl_quantum.cc.o.d"
  "abl_quantum"
  "abl_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
