file(REMOVE_RECURSE
  "CMakeFiles/exp_fig12.dir/exp_fig12.cc.o"
  "CMakeFiles/exp_fig12.dir/exp_fig12.cc.o.d"
  "exp_fig12"
  "exp_fig12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
