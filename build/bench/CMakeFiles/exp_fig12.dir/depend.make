# Empty dependencies file for exp_fig12.
# This may be replaced when dependencies are built.
