file(REMOVE_RECURSE
  "CMakeFiles/exp_table5.dir/exp_table5.cc.o"
  "CMakeFiles/exp_table5.dir/exp_table5.cc.o.d"
  "exp_table5"
  "exp_table5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
