# Empty dependencies file for exp_table5.
# This may be replaced when dependencies are built.
