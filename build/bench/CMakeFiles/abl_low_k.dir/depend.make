# Empty dependencies file for abl_low_k.
# This may be replaced when dependencies are built.
