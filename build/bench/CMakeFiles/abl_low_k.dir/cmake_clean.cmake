file(REMOVE_RECURSE
  "CMakeFiles/abl_low_k.dir/abl_low_k.cc.o"
  "CMakeFiles/abl_low_k.dir/abl_low_k.cc.o.d"
  "abl_low_k"
  "abl_low_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_low_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
