file(REMOVE_RECURSE
  "CMakeFiles/exp_table4.dir/exp_table4.cc.o"
  "CMakeFiles/exp_table4.dir/exp_table4.cc.o.d"
  "exp_table4"
  "exp_table4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
