# Empty dependencies file for abl_2pl.
# This may be replaced when dependencies are built.
