file(REMOVE_RECURSE
  "CMakeFiles/abl_2pl.dir/abl_2pl.cc.o"
  "CMakeFiles/abl_2pl.dir/abl_2pl.cc.o.d"
  "abl_2pl"
  "abl_2pl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_2pl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
