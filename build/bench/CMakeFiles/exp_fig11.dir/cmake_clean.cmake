file(REMOVE_RECURSE
  "CMakeFiles/exp_fig11.dir/exp_fig11.cc.o"
  "CMakeFiles/exp_fig11.dir/exp_fig11.cc.o.d"
  "exp_fig11"
  "exp_fig11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
