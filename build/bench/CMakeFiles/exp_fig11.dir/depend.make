# Empty dependencies file for exp_fig11.
# This may be replaced when dependencies are built.
