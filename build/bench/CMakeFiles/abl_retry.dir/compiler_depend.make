# Empty compiler generated dependencies file for abl_retry.
# This may be replaced when dependencies are built.
