file(REMOVE_RECURSE
  "CMakeFiles/abl_retry.dir/abl_retry.cc.o"
  "CMakeFiles/abl_retry.dir/abl_retry.cc.o.d"
  "abl_retry"
  "abl_retry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
