file(REMOVE_RECURSE
  "CMakeFiles/exp_table2.dir/exp_table2.cc.o"
  "CMakeFiles/exp_table2.dir/exp_table2.cc.o.d"
  "exp_table2"
  "exp_table2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
