# Empty dependencies file for exp_fig8.
# This may be replaced when dependencies are built.
