file(REMOVE_RECURSE
  "CMakeFiles/exp_fig8.dir/exp_fig8.cc.o"
  "CMakeFiles/exp_fig8.dir/exp_fig8.cc.o.d"
  "exp_fig8"
  "exp_fig8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
