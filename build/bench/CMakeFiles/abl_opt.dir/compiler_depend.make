# Empty compiler generated dependencies file for abl_opt.
# This may be replaced when dependencies are built.
