file(REMOVE_RECURSE
  "CMakeFiles/abl_cost_charging.dir/abl_cost_charging.cc.o"
  "CMakeFiles/abl_cost_charging.dir/abl_cost_charging.cc.o.d"
  "abl_cost_charging"
  "abl_cost_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cost_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
