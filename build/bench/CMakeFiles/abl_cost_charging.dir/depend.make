# Empty dependencies file for abl_cost_charging.
# This may be replaced when dependencies are built.
