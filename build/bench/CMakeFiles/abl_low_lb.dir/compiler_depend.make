# Empty compiler generated dependencies file for abl_low_lb.
# This may be replaced when dependencies are built.
