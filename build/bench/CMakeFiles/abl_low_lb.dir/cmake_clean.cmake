file(REMOVE_RECURSE
  "CMakeFiles/abl_low_lb.dir/abl_low_lb.cc.o"
  "CMakeFiles/abl_low_lb.dir/abl_low_lb.cc.o.d"
  "abl_low_lb"
  "abl_low_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_low_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
