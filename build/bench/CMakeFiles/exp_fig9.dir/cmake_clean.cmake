file(REMOVE_RECURSE
  "CMakeFiles/exp_fig9.dir/exp_fig9.cc.o"
  "CMakeFiles/exp_fig9.dir/exp_fig9.cc.o.d"
  "exp_fig9"
  "exp_fig9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
