# Empty dependencies file for exp_fig10.
# This may be replaced when dependencies are built.
