file(REMOVE_RECURSE
  "CMakeFiles/exp_fig10.dir/exp_fig10.cc.o"
  "CMakeFiles/exp_fig10.dir/exp_fig10.cc.o.d"
  "exp_fig10"
  "exp_fig10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
