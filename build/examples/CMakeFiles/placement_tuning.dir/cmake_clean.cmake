file(REMOVE_RECURSE
  "CMakeFiles/placement_tuning.dir/placement_tuning.cpp.o"
  "CMakeFiles/placement_tuning.dir/placement_tuning.cpp.o.d"
  "placement_tuning"
  "placement_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
