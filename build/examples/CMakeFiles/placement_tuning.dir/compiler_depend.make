# Empty compiler generated dependencies file for placement_tuning.
# This may be replaced when dependencies are built.
