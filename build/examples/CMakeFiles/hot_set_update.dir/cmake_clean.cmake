file(REMOVE_RECURSE
  "CMakeFiles/hot_set_update.dir/hot_set_update.cpp.o"
  "CMakeFiles/hot_set_update.dir/hot_set_update.cpp.o.d"
  "hot_set_update"
  "hot_set_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_set_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
