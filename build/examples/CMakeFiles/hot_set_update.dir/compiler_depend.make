# Empty compiler generated dependencies file for hot_set_update.
# This may be replaced when dependencies are built.
