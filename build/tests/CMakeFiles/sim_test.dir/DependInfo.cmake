
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/event_queue_test.cc" "tests/CMakeFiles/sim_test.dir/sim/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/event_queue_test.cc.o.d"
  "/root/repo/tests/sim/fcfs_server_test.cc" "tests/CMakeFiles/sim_test.dir/sim/fcfs_server_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/fcfs_server_test.cc.o.d"
  "/root/repo/tests/sim/queueing_theory_test.cc" "tests/CMakeFiles/sim_test.dir/sim/queueing_theory_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/queueing_theory_test.cc.o.d"
  "/root/repo/tests/sim/round_robin_server_test.cc" "tests/CMakeFiles/sim_test.dir/sim/round_robin_server_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/round_robin_server_test.cc.o.d"
  "/root/repo/tests/sim/simulator_test.cc" "tests/CMakeFiles/sim_test.dir/sim/simulator_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/simulator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wtpg_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
