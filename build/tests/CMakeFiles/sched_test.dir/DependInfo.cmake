
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/c2pl_test.cc" "tests/CMakeFiles/sched_test.dir/sched/c2pl_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched/c2pl_test.cc.o.d"
  "/root/repo/tests/sched/factory_test.cc" "tests/CMakeFiles/sched_test.dir/sched/factory_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched/factory_test.cc.o.d"
  "/root/repo/tests/sched/gow_test.cc" "tests/CMakeFiles/sched_test.dir/sched/gow_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched/gow_test.cc.o.d"
  "/root/repo/tests/sched/low_test.cc" "tests/CMakeFiles/sched_test.dir/sched/low_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched/low_test.cc.o.d"
  "/root/repo/tests/sched/nodc_asl_test.cc" "tests/CMakeFiles/sched_test.dir/sched/nodc_asl_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched/nodc_asl_test.cc.o.d"
  "/root/repo/tests/sched/opt_test.cc" "tests/CMakeFiles/sched_test.dir/sched/opt_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched/opt_test.cc.o.d"
  "/root/repo/tests/sched/scheduler_base_test.cc" "tests/CMakeFiles/sched_test.dir/sched/scheduler_base_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched/scheduler_base_test.cc.o.d"
  "/root/repo/tests/sched/scheduler_invariants_test.cc" "tests/CMakeFiles/sched_test.dir/sched/scheduler_invariants_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched/scheduler_invariants_test.cc.o.d"
  "/root/repo/tests/sched/two_pl_test.cc" "tests/CMakeFiles/sched_test.dir/sched/two_pl_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched/two_pl_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wtpg_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
