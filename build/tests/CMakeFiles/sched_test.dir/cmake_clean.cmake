file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched/c2pl_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/c2pl_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/factory_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/factory_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/gow_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/gow_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/low_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/low_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/nodc_asl_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/nodc_asl_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/opt_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/opt_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/scheduler_base_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/scheduler_base_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/scheduler_invariants_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/scheduler_invariants_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/two_pl_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/two_pl_test.cc.o.d"
  "sched_test"
  "sched_test.pdb"
  "sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
