# Empty dependencies file for wtpg_test.
# This may be replaced when dependencies are built.
