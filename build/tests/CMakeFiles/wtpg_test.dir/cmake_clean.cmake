file(REMOVE_RECURSE
  "CMakeFiles/wtpg_test.dir/wtpg/chain_property_test.cc.o"
  "CMakeFiles/wtpg_test.dir/wtpg/chain_property_test.cc.o.d"
  "CMakeFiles/wtpg_test.dir/wtpg/chain_test.cc.o"
  "CMakeFiles/wtpg_test.dir/wtpg/chain_test.cc.o.d"
  "CMakeFiles/wtpg_test.dir/wtpg/closure_reference_test.cc.o"
  "CMakeFiles/wtpg_test.dir/wtpg/closure_reference_test.cc.o.d"
  "CMakeFiles/wtpg_test.dir/wtpg/dot_test.cc.o"
  "CMakeFiles/wtpg_test.dir/wtpg/dot_test.cc.o.d"
  "CMakeFiles/wtpg_test.dir/wtpg/fig3_scenario_test.cc.o"
  "CMakeFiles/wtpg_test.dir/wtpg/fig3_scenario_test.cc.o.d"
  "CMakeFiles/wtpg_test.dir/wtpg/wtpg_test.cc.o"
  "CMakeFiles/wtpg_test.dir/wtpg/wtpg_test.cc.o.d"
  "wtpg_test"
  "wtpg_test.pdb"
  "wtpg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
