
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wtpg/chain_property_test.cc" "tests/CMakeFiles/wtpg_test.dir/wtpg/chain_property_test.cc.o" "gcc" "tests/CMakeFiles/wtpg_test.dir/wtpg/chain_property_test.cc.o.d"
  "/root/repo/tests/wtpg/chain_test.cc" "tests/CMakeFiles/wtpg_test.dir/wtpg/chain_test.cc.o" "gcc" "tests/CMakeFiles/wtpg_test.dir/wtpg/chain_test.cc.o.d"
  "/root/repo/tests/wtpg/closure_reference_test.cc" "tests/CMakeFiles/wtpg_test.dir/wtpg/closure_reference_test.cc.o" "gcc" "tests/CMakeFiles/wtpg_test.dir/wtpg/closure_reference_test.cc.o.d"
  "/root/repo/tests/wtpg/dot_test.cc" "tests/CMakeFiles/wtpg_test.dir/wtpg/dot_test.cc.o" "gcc" "tests/CMakeFiles/wtpg_test.dir/wtpg/dot_test.cc.o.d"
  "/root/repo/tests/wtpg/fig3_scenario_test.cc" "tests/CMakeFiles/wtpg_test.dir/wtpg/fig3_scenario_test.cc.o" "gcc" "tests/CMakeFiles/wtpg_test.dir/wtpg/fig3_scenario_test.cc.o.d"
  "/root/repo/tests/wtpg/wtpg_test.cc" "tests/CMakeFiles/wtpg_test.dir/wtpg/wtpg_test.cc.o" "gcc" "tests/CMakeFiles/wtpg_test.dir/wtpg/wtpg_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wtpg_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
