
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/machine/config_test.cc" "tests/CMakeFiles/machine_test.dir/machine/config_test.cc.o" "gcc" "tests/CMakeFiles/machine_test.dir/machine/config_test.cc.o.d"
  "/root/repo/tests/machine/cost_accounting_test.cc" "tests/CMakeFiles/machine_test.dir/machine/cost_accounting_test.cc.o" "gcc" "tests/CMakeFiles/machine_test.dir/machine/cost_accounting_test.cc.o.d"
  "/root/repo/tests/machine/data_placement_test.cc" "tests/CMakeFiles/machine_test.dir/machine/data_placement_test.cc.o" "gcc" "tests/CMakeFiles/machine_test.dir/machine/data_placement_test.cc.o.d"
  "/root/repo/tests/machine/machine_test.cc" "tests/CMakeFiles/machine_test.dir/machine/machine_test.cc.o" "gcc" "tests/CMakeFiles/machine_test.dir/machine/machine_test.cc.o.d"
  "/root/repo/tests/machine/mixed_workload_test.cc" "tests/CMakeFiles/machine_test.dir/machine/mixed_workload_test.cc.o" "gcc" "tests/CMakeFiles/machine_test.dir/machine/mixed_workload_test.cc.o.d"
  "/root/repo/tests/machine/node_models_test.cc" "tests/CMakeFiles/machine_test.dir/machine/node_models_test.cc.o" "gcc" "tests/CMakeFiles/machine_test.dir/machine/node_models_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wtpg_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
