
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/schedule_log.cc" "src/CMakeFiles/wtpg_sched.dir/analysis/schedule_log.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/analysis/schedule_log.cc.o.d"
  "/root/repo/src/analysis/serializability.cc" "src/CMakeFiles/wtpg_sched.dir/analysis/serializability.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/analysis/serializability.cc.o.d"
  "/root/repo/src/driver/experiments.cc" "src/CMakeFiles/wtpg_sched.dir/driver/experiments.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/driver/experiments.cc.o.d"
  "/root/repo/src/driver/report.cc" "src/CMakeFiles/wtpg_sched.dir/driver/report.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/driver/report.cc.o.d"
  "/root/repo/src/driver/sim_run.cc" "src/CMakeFiles/wtpg_sched.dir/driver/sim_run.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/driver/sim_run.cc.o.d"
  "/root/repo/src/driver/sweep.cc" "src/CMakeFiles/wtpg_sched.dir/driver/sweep.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/driver/sweep.cc.o.d"
  "/root/repo/src/lock/lock_table.cc" "src/CMakeFiles/wtpg_sched.dir/lock/lock_table.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/lock/lock_table.cc.o.d"
  "/root/repo/src/machine/config.cc" "src/CMakeFiles/wtpg_sched.dir/machine/config.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/machine/config.cc.o.d"
  "/root/repo/src/machine/control_node.cc" "src/CMakeFiles/wtpg_sched.dir/machine/control_node.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/machine/control_node.cc.o.d"
  "/root/repo/src/machine/data_placement.cc" "src/CMakeFiles/wtpg_sched.dir/machine/data_placement.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/machine/data_placement.cc.o.d"
  "/root/repo/src/machine/dpn.cc" "src/CMakeFiles/wtpg_sched.dir/machine/dpn.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/machine/dpn.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/CMakeFiles/wtpg_sched.dir/machine/machine.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/machine/machine.cc.o.d"
  "/root/repo/src/metrics/stats.cc" "src/CMakeFiles/wtpg_sched.dir/metrics/stats.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/metrics/stats.cc.o.d"
  "/root/repo/src/metrics/timeline.cc" "src/CMakeFiles/wtpg_sched.dir/metrics/timeline.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/metrics/timeline.cc.o.d"
  "/root/repo/src/model/lock_mode.cc" "src/CMakeFiles/wtpg_sched.dir/model/lock_mode.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/model/lock_mode.cc.o.d"
  "/root/repo/src/model/transaction.cc" "src/CMakeFiles/wtpg_sched.dir/model/transaction.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/model/transaction.cc.o.d"
  "/root/repo/src/sched/asl.cc" "src/CMakeFiles/wtpg_sched.dir/sched/asl.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/asl.cc.o.d"
  "/root/repo/src/sched/c2pl.cc" "src/CMakeFiles/wtpg_sched.dir/sched/c2pl.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/c2pl.cc.o.d"
  "/root/repo/src/sched/gow.cc" "src/CMakeFiles/wtpg_sched.dir/sched/gow.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/gow.cc.o.d"
  "/root/repo/src/sched/low.cc" "src/CMakeFiles/wtpg_sched.dir/sched/low.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/low.cc.o.d"
  "/root/repo/src/sched/low_lb.cc" "src/CMakeFiles/wtpg_sched.dir/sched/low_lb.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/low_lb.cc.o.d"
  "/root/repo/src/sched/nodc.cc" "src/CMakeFiles/wtpg_sched.dir/sched/nodc.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/nodc.cc.o.d"
  "/root/repo/src/sched/opt.cc" "src/CMakeFiles/wtpg_sched.dir/sched/opt.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/opt.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/wtpg_sched.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/sched/scheduler_factory.cc" "src/CMakeFiles/wtpg_sched.dir/sched/scheduler_factory.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/scheduler_factory.cc.o.d"
  "/root/repo/src/sched/two_pl.cc" "src/CMakeFiles/wtpg_sched.dir/sched/two_pl.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sched/two_pl.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/wtpg_sched.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/fcfs_server.cc" "src/CMakeFiles/wtpg_sched.dir/sim/fcfs_server.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sim/fcfs_server.cc.o.d"
  "/root/repo/src/sim/round_robin_server.cc" "src/CMakeFiles/wtpg_sched.dir/sim/round_robin_server.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sim/round_robin_server.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/wtpg_sched.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/sim/simulator.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/wtpg_sched.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/util/csv.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/wtpg_sched.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/util/flags.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/wtpg_sched.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/json_writer.cc" "src/CMakeFiles/wtpg_sched.dir/util/json_writer.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/util/json_writer.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/wtpg_sched.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/wtpg_sched.dir/util/random.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/wtpg_sched.dir/util/status.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/wtpg_sched.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/util/string_util.cc.o.d"
  "/root/repo/src/workload/pattern.cc" "src/CMakeFiles/wtpg_sched.dir/workload/pattern.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/workload/pattern.cc.o.d"
  "/root/repo/src/workload/pattern_parser.cc" "src/CMakeFiles/wtpg_sched.dir/workload/pattern_parser.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/workload/pattern_parser.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/wtpg_sched.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/workload/workload.cc.o.d"
  "/root/repo/src/wtpg/chain.cc" "src/CMakeFiles/wtpg_sched.dir/wtpg/chain.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/wtpg/chain.cc.o.d"
  "/root/repo/src/wtpg/dot.cc" "src/CMakeFiles/wtpg_sched.dir/wtpg/dot.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/wtpg/dot.cc.o.d"
  "/root/repo/src/wtpg/wtpg.cc" "src/CMakeFiles/wtpg_sched.dir/wtpg/wtpg.cc.o" "gcc" "src/CMakeFiles/wtpg_sched.dir/wtpg/wtpg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
