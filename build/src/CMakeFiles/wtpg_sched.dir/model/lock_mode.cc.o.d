src/CMakeFiles/wtpg_sched.dir/model/lock_mode.cc.o: \
 /root/repo/src/model/lock_mode.cc /usr/include/stdc-predef.h \
 /root/repo/src/model/lock_mode.h
