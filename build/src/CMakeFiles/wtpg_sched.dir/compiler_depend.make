# Empty compiler generated dependencies file for wtpg_sched.
# This may be replaced when dependencies are built.
