file(REMOVE_RECURSE
  "libwtpg_sched.a"
)
