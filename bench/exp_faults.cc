// Fault-churn experiment (beyond the paper): how the six schedulers degrade
// when DPNs crash and recover underneath the batch. The paper's machine is
// fault-free; this experiment turns on the fault layer (DPN crash/repair,
// straggler windows, spontaneous aborts) and sweeps the per-node MTTF from
// infinity (fault-free baseline) down to 50 s at the paper's Table-1
// operating point (NumFiles=16, DD=8, lambda = 1.0 TPS).
//
// Observed shape (results/faults_churn.csv): the blocking schedulers
// (ASL/GOW/LOW/C2PL) degrade gracefully — throughput roughly halves at
// MTTF 400 s and follows churn down from there, with response time
// absorbing the restarts. NODC and OPT collapse outright: with nothing
// blocked, every crash restarts the whole resident population from
// scratch (tens of thousands of restarts for ~1900 arrivals), and their
// low mean RT under heavy churn is survivorship bias — only transactions
// short enough to fit between crashes ever commit.

#include <cstdio>
#include <string>
#include <vector>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sweep.h"
#include "util/string_util.h"

using namespace wtpgsched;

namespace {

uint64_t CounterOr0(const AggregateResult& result, const std::string& name) {
  for (const auto& [key, value] : result.counters) {
    if (key == name) return value;
  }
  return 0;
}

std::string MttfLabel(double mttf_ms) {
  if (mttf_ms <= 0.0) return "inf";
  return FormatDouble(mttf_ms / 1000.0, 0);
}

}  // namespace

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);
  constexpr double kRate = 1.0;
  constexpr int kDd = 8;
  // MTTF ladder per DPN, in ms. The 0 entry is the fault-free baseline and
  // runs with an all-zero FaultConfig (no stragglers or aborts either), so
  // it is exactly the configuration the zero-fault goldens pin down.
  const std::vector<double> mttfs = {0, 400'000, 200'000, 100'000, 50'000};

  PrintBanner(
      "Fault churn: six schedulers vs. DPN mean-time-to-failure "
      "(NumFiles=16, DD=8, lambda=1.0 TPS)");
  std::printf(
      "Fault model per non-zero MTTF point: crash/repair churn (MTTR 20 s),\n"
      "straggler windows (MTBF 300 s, 30 s at 4x), spontaneous aborts at\n"
      "0.02/s. mttf=inf runs the identical config with faults disabled.\n\n");

  struct Cell {
    double rt_s = 0.0;
    double tps = 0.0;
    AggregateResult result;
  };
  std::vector<std::pair<std::string, std::vector<Cell>>> by_scheduler;
  TablePrinter long_table({"scheduler", "mttf_s", "mean_rt_s", "tput_tps",
                           "completions", "restarts", "crashes",
                           "crash_victims", "injected_aborts"});

  for (SchedulerKind kind : PaperSchedulers()) {
    // Note: SweepFaultRate only varies dpn_mttf_ms, keeping the rest of the
    // fault section intact — stragglers and aborts would stay on at mttf=0.
    // The baseline point must be genuinely fault-free, so it runs through
    // the sweep with the config's default (all-zero) fault section and only
    // the churn points get the extras.
    SimConfig clean = MakeConfig(kind, 16, kDd, kRate);
    clean.run.horizon_ms = opts.horizon_ms;
    SimConfig churn = clean;
    churn.fault.dpn_mttr_ms = 20'000;
    churn.fault.straggler_mtbf_ms = 300'000;
    churn.fault.straggler_duration_ms = 30'000;
    churn.fault.straggler_factor = 4.0;
    churn.fault.abort_rate_per_s = 0.02;

    std::vector<FaultSweepPoint> points =
        SweepFaultRate(clean, pattern, {mttfs[0]}, opts.seeds, opts.jobs);
    const std::vector<double> churn_mttfs(mttfs.begin() + 1, mttfs.end());
    for (FaultSweepPoint& point :
         SweepFaultRate(churn, pattern, churn_mttfs, opts.seeds, opts.jobs)) {
      points.push_back(std::move(point));
    }

    std::vector<Cell> cells;
    for (const FaultSweepPoint& point : points) {
      Cell cell;
      cell.rt_s = point.result.mean_response_s;
      cell.tps = point.result.throughput_tps;
      cell.result = point.result;
      long_table.AddRow(
          {SchedulerLabel(kind), MttfLabel(point.mttf_ms),
           FormatDouble(point.result.mean_response_s, 2),
           FormatDouble(point.result.throughput_tps, 3),
           FormatDouble(point.result.completions, 1),
           FormatDouble(point.result.restarts, 1),
           StrCat(CounterOr0(point.result, "fault.crashes")),
           StrCat(CounterOr0(point.result, "fault.crash_victims")),
           StrCat(CounterOr0(point.result, "fault.injected_aborts"))});
      cells.push_back(std::move(cell));
      std::fflush(stdout);
    }
    by_scheduler.emplace_back(SchedulerLabel(kind), std::move(cells));
  }

  // Wide tables, one row per MTTF point, matching the figure-style benches.
  std::vector<std::string> headers = {"MTTF(s)"};
  for (const auto& [label, cells] : by_scheduler) {
    (void)cells;
    headers.push_back(label);
  }
  TablePrinter rt_table(headers);
  TablePrinter tps_table(headers);
  for (size_t i = 0; i < mttfs.size(); ++i) {
    std::vector<std::string> rt_row = {MttfLabel(mttfs[i])};
    std::vector<std::string> tps_row = {MttfLabel(mttfs[i])};
    for (const auto& [label, cells] : by_scheduler) {
      (void)label;
      rt_row.push_back(FmtSeconds(cells[i].rt_s));
      tps_row.push_back(FmtTps(cells[i].tps));
    }
    rt_table.AddRow(std::move(rt_row));
    tps_table.AddRow(std::move(tps_row));
  }

  std::printf("Mean response time (s) vs. per-node MTTF:\n");
  rt_table.Print();
  std::printf("\nThroughput (TPS) vs. per-node MTTF:\n");
  tps_table.Print();
  std::printf("(mttf=inf is the fault-free baseline configuration)\n");

  const std::string csv = CsvPath(opts, "faults_churn");
  if (!csv.empty() && long_table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
