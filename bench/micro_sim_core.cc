// micro_sim_core — before/after microbenchmark of the simulator kernel.
//
// The pre-rewrite EventQueue (std::function callbacks keyed by id in an
// unordered_map, tombstoned cancels, wholesale compaction) is embedded below
// verbatim as LegacyEventQueue, so the "before" numbers are measured live on
// the same machine rather than trusted from an old file. Four queue
// workloads (schedule+pop at the measured-realistic queue size, a deep-heap
// variant, cancel-heavy, steady-state churn) run against
// both implementations; then one short end-to-end replica per scheduler
// reports whole-kernel events/sec. Results land in BENCH_sim_core.json and a
// CSV for per-PR tracking; --smoke shrinks the iteration counts to seconds
// for the perf-labeled ctest target (also run under ASan, where absolute
// numbers are meaningless but the workloads double as a stress test).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "driver/report.h"
#include "driver/sim_run.h"
#include "machine/config.h"
#include "machine/machine.h"
#include "sim/event_queue.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/pattern.h"

using namespace wtpgsched;

namespace {

// ---------------------------------------------------------------------------
// The pre-rewrite event queue, embedded as the recorded baseline. Identical
// to src/sim/event_queue.{h,cc} before the indexed-heap rewrite (commit
// history has the original); only the class name differs.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  struct Event {
    SimTime time;
    EventId id;
    Callback callback;
  };

  EventId Schedule(SimTime at, Callback cb) {
    const EventId id = next_id_++;
    heap_.push_back(Entry{at, id});
    std::push_heap(heap_.begin(), heap_.end(), EntryGreater{});
    callbacks_.emplace(id, std::move(cb));
    return id;
  }

  bool Cancel(EventId id) {
    if (callbacks_.erase(id) == 0) return false;
    ++tombstones_;
    MaybeCompact();
    return true;
  }

  bool empty() const { return callbacks_.empty(); }
  size_t size() const { return callbacks_.size(); }

  SimTime NextTime() {
    SkipCancelled();
    return heap_.empty() ? kSimTimeMax : heap_.front().time;
  }

  Event Pop() {
    SkipCancelled();
    WTPG_CHECK(!heap_.empty()) << "Pop() on empty LegacyEventQueue";
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
    heap_.pop_back();
    auto it = callbacks_.find(top.id);
    Event event{top.time, top.id, std::move(it->second)};
    callbacks_.erase(it);
    return event;
  }

 private:
  struct Entry {
    SimTime time;
    EventId id;
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void SkipCancelled() {
    while (!heap_.empty() &&
           callbacks_.find(heap_.front().id) == callbacks_.end()) {
      std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
      heap_.pop_back();
      --tombstones_;
    }
  }

  void MaybeCompact() {
    if (tombstones_ * 2 <= callbacks_.size()) return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const Entry& e) {
                                 return callbacks_.find(e.id) ==
                                        callbacks_.end();
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), EntryGreater{});
    tombstones_ = 0;
  }

  std::vector<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  size_t tombstones_ = 0;
  EventId next_id_ = 1;
};

// ---------------------------------------------------------------------------
// Queue workloads, templated over the queue type. Every workload returns the
// number of queue operations performed; callbacks bump a sink so neither
// implementation can dead-strip the invocation.
//
// The capture is sized like the real call sites (machine pointer, txn id,
// step, node id — ~40 bytes; see src/machine/machine.cc): inside the dense
// queue's 48-byte inline budget, beyond std::function's small-buffer
// threshold. A token capture would hide exactly the allocation the rewrite
// removes.
struct Payload {
  uint64_t* sink;
  uint64_t txn;
  int32_t step;
  int32_t node;
  double cost;
  uint64_t tag;

  void operator()() const { *sink += txn + static_cast<uint64_t>(step); }
};

Payload MakePayload(uint64_t* sink, uint64_t i) {
  return Payload{sink, i, static_cast<int32_t>(i % 7),
                 static_cast<int32_t>(i % 13), 0.5 * static_cast<double>(i),
                 i ^ 0x9E3779B97F4A7C15ull};
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

// Every drain below mirrors Simulator::Step exactly: NextTime() (the
// horizon check the simulator makes before every event), then Pop(), then
// the callback. For the legacy queue NextTime() is not free — it runs
// SkipCancelled, a hash find of the top id per event — so skipping it
// would flatter the baseline with an access pattern the simulator never
// had.
template <typename Q>
void Drain(Q& q) {
  while (q.NextTime() != kSimTimeMax) {
    q.Pop().callback();
  }
}

// Batches of schedules at random times (many FIFO ties) drained by pops.
template <typename Q>
uint64_t RunSchedulePop(int rounds, int batch, uint64_t* sink) {
  Q q;
  Rng rng(20260807);
  uint64_t ops = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < batch; ++i) {
      q.Schedule(static_cast<SimTime>(rng.UniformInt(0, 99)),
                 MakePayload(sink, static_cast<uint64_t>(i)));
    }
    Drain(q);
    ops += 2u * static_cast<uint64_t>(batch);
  }
  return ops;
}

// Batches where half the events are cancelled before the drain — the
// workload the tombstone scheme paid for (timeouts cancelled on completion).
template <typename Q>
uint64_t RunCancelHeavy(int rounds, int batch, uint64_t* sink) {
  Q q;
  Rng rng(20260808);
  std::vector<typename Q::EventId> ids;
  uint64_t ops = 0;
  for (int r = 0; r < rounds; ++r) {
    ids.clear();
    for (int i = 0; i < batch; ++i) {
      ids.push_back(q.Schedule(static_cast<SimTime>(rng.UniformInt(0, 999)),
                               MakePayload(sink, static_cast<uint64_t>(i))));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      WTPG_CHECK(q.Cancel(ids[i]));
    }
    Drain(q);
    ops += 2u * static_cast<uint64_t>(batch) +
           static_cast<uint64_t>(batch) / 2;
  }
  return ops;
}

// Steady state: a resident set of pending events, each pop scheduling a
// successor — the shape of a running simulation (server completions,
// arrivals, timeouts).
template <typename Q>
uint64_t RunChurn(int steps, int resident, uint64_t* sink) {
  Q q;
  Rng rng(20260809);
  SimTime now = 0;
  for (int i = 0; i < resident; ++i) {
    q.Schedule(static_cast<SimTime>(rng.UniformInt(0, 99)),
               MakePayload(sink, static_cast<uint64_t>(i)));
  }
  for (int s = 0; s < steps; ++s) {
    WTPG_CHECK_NE(q.NextTime(), kSimTimeMax);  // Simulator's horizon check.
    auto ev = q.Pop();
    now = ev.time;
    ev.callback();
    q.Schedule(now + static_cast<SimTime>(rng.UniformInt(1, 99)),
               MakePayload(sink, static_cast<uint64_t>(s)));
  }
  return 2u * static_cast<uint64_t>(steps);
}

struct WorkloadResult {
  std::string workload;
  std::string impl;
  uint64_t ops = 0;
  double seconds = 0.0;
  double mops_per_s = 0.0;
};

// Best-of-`reps` measurement: on a shared container a single run can eat an
// arbitrary scheduling stall, so the fastest repetition is the least-noisy
// estimate of the workload's actual cost (the standard microbenchmark rule:
// noise only ever adds time).
template <typename Q>
WorkloadResult Measure(const std::string& workload, const std::string& impl,
                       uint64_t (*fn)(int, int, uint64_t*), int a, int b,
                       int reps) {
  WorkloadResult r;
  r.workload = workload;
  r.impl = impl;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t ops = fn(a, b, &sink);
    const auto t1 = std::chrono::steady_clock::now();
    WTPG_CHECK_GT(sink, 0u);
    const double seconds = Seconds(t0, t1);
    const double mops = seconds > 0.0 ? ops / seconds / 1e6 : 0.0;
    if (rep == 0 || mops > r.mops_per_s) {
      r.ops = ops;
      r.seconds = seconds;
      r.mops_per_s = mops;
    }
  }
  return r;
}

struct EndToEndResult {
  std::string scheduler;
  uint64_t events = 0;
  double seconds = 0.0;
  double events_per_s = 0.0;
  uint64_t completions = 0;
};

EndToEndResult RunEndToEnd(SchedulerKind kind, uint64_t max_arrivals,
                           double horizon_ms) {
  SimConfig config;
  config.scheduler = kind;
  config.run.horizon_ms = horizon_ms;
  // Near the knee of the Fig.-8 rate grid: contended enough that scheduler
  // decisions (WTPG evaluations, lock scans) dominate, not idle arrivals.
  // The arrival cap (not the horizon) bounds the work: a saturated
  // scheduler's backlog grows with simulated time, so long horizons cost
  // quadratic wall time; a fixed arrival count with a generous drain
  // horizon keeps every scheduler's workload comparable and finite.
  config.workload.arrival_rate_tps = 1.2;
  config.workload.max_arrivals = max_arrivals;
  Machine machine(config, Pattern::Experiment1(config.machine.num_files));
  const auto t0 = std::chrono::steady_clock::now();
  const RunStats stats = machine.Run();
  const auto t1 = std::chrono::steady_clock::now();
  EndToEndResult r;
  r.scheduler = SchedulerKindName(kind);
  r.events = machine.simulator().events_executed();
  r.seconds = Seconds(t0, t1);
  r.events_per_s = r.seconds > 0.0 ? r.events / r.seconds : 0.0;
  r.completions = stats.completions;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddBool("smoke", false,
                "tiny iteration counts (ctest perf label / sanitizers)");
  flags.AddString("out-json", "BENCH_sim_core.json", "JSON result file");
  flags.AddString("out-csv", "micro_sim_core.csv", "CSV result file");
  flags.AddBool("help", false, "print usage");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }

  const bool smoke = flags.GetBool("smoke");
  // Queue sizes: instrumenting Simulator::Step across all four schedulers
  // at the Fig.-8 operating point (rate 1.2, Experiment 1 pattern) shows
  // the pending-event population is tiny — mean 3-8, max 11 — because the
  // backlog under load lives in scheduler admission queues, not the event
  // queue. batch=64 is a generous envelope of that regime and is the
  // headline schedule+pop number; the _deep variant (batch 1024, ~5 heap
  // levels) and churn (resident 4096) keep the deep-heap regime tracked.
  const int rounds = smoke ? 128 : 32'000;
  const int batch = 64;
  const int deep_rounds = smoke ? 8 : 2000;
  const int deep_batch = 1024;
  const int churn_steps = smoke ? 20'000 : 4'000'000;
  const int churn_resident = 4096;
  const uint64_t max_arrivals = smoke ? 200 : 5'000;
  const double horizon_ms = 100'000'000;  // Drain horizon; arrivals bound work.

  struct Spec {
    const char* name;
    uint64_t (*legacy)(int, int, uint64_t*);
    uint64_t (*dense)(int, int, uint64_t*);
    int a, b;
  };
  const Spec specs[] = {
      {"schedule_pop", &RunSchedulePop<LegacyEventQueue>,
       &RunSchedulePop<EventQueue>, rounds, batch},
      {"schedule_pop_deep", &RunSchedulePop<LegacyEventQueue>,
       &RunSchedulePop<EventQueue>, deep_rounds, deep_batch},
      {"cancel_heavy", &RunCancelHeavy<LegacyEventQueue>,
       &RunCancelHeavy<EventQueue>, rounds, batch},
      {"churn", &RunChurn<LegacyEventQueue>, &RunChurn<EventQueue>,
       churn_steps, churn_resident},
  };

  TablePrinter queue_table(
      {"workload", "legacy Mops/s", "dense Mops/s", "speedup"});
  std::vector<WorkloadResult> rows;
  std::string queue_json;
  CsvWriter csv;
  const Status csv_status = csv.Open(flags.GetString("out-csv"));
  if (!csv_status.ok()) {
    std::fprintf(stderr, "%s\n", csv_status.ToString().c_str());
    return 1;
  }
  csv.WriteHeader({"section", "workload", "impl", "ops", "seconds",
                   "mops_per_s", "speedup_vs_legacy"});

  double schedule_pop_speedup = 0.0;
  const int reps = smoke ? 1 : 5;
  for (const Spec& spec : specs) {
    const WorkloadResult legacy = Measure<LegacyEventQueue>(
        spec.name, "legacy", spec.legacy, spec.a, spec.b, reps);
    const WorkloadResult dense = Measure<EventQueue>(
        spec.name, "dense", spec.dense, spec.a, spec.b, reps);
    const double speedup = legacy.mops_per_s > 0.0
                               ? dense.mops_per_s / legacy.mops_per_s
                               : 0.0;
    if (spec.name == std::string("schedule_pop")) {
      schedule_pop_speedup = speedup;
    }
    queue_table.AddRow({spec.name, FormatDouble(legacy.mops_per_s, 2),
                        FormatDouble(dense.mops_per_s, 2),
                        FormatDouble(speedup, 2)});
    for (const WorkloadResult& r : {legacy, dense}) {
      JsonWriter row;
      row.Add("workload", r.workload)
          .Add("impl", r.impl)
          .Add("ops", r.ops)
          .Add("seconds", r.seconds)
          .Add("mops_per_s", r.mops_per_s)
          .Add("speedup_vs_legacy",
               r.impl == "dense" ? speedup : 1.0);
      if (!queue_json.empty()) queue_json += ',';
      queue_json += row.ToString();
      csv.WriteRow({"queue", r.workload, r.impl, StrCat(r.ops),
                    FormatDouble(r.seconds, 4), FormatDouble(r.mops_per_s, 3),
                    FormatDouble(r.impl == "dense" ? speedup : 1.0, 3)});
    }
  }
  queue_table.Print();

  constexpr SchedulerKind kKinds[] = {SchedulerKind::kTwoPl,
                                      SchedulerKind::kC2pl,
                                      SchedulerKind::kGow, SchedulerKind::kLow};
  TablePrinter e2e_table({"scheduler", "events", "wall(s)", "events/s"});
  std::string e2e_json;
  for (SchedulerKind kind : kKinds) {
    const EndToEndResult r = RunEndToEnd(kind, max_arrivals, horizon_ms);
    e2e_table.AddRow({r.scheduler, StrCat(r.events),
                      FormatDouble(r.seconds, 3),
                      FormatDouble(r.events_per_s, 0)});
    JsonWriter row;
    row.Add("scheduler", r.scheduler)
        .Add("events", r.events)
        .Add("seconds", r.seconds)
        .Add("events_per_s", r.events_per_s)
        .Add("completions", r.completions);
    if (!e2e_json.empty()) e2e_json += ',';
    e2e_json += row.ToString();
    csv.WriteRow({"end_to_end", "replica", r.scheduler, StrCat(r.events),
                  FormatDouble(r.seconds, 4),
                  FormatDouble(r.events_per_s / 1e6, 3), ""});
  }
  e2e_table.Print();

  JsonWriter json;
  json.Add("bench", "sim_core")
      .Add("smoke", smoke)
      .Add("schedule_pop_speedup", schedule_pop_speedup)
      .AddRaw("queue", StrCat("[", queue_json, "]"))
      .AddRaw("end_to_end", StrCat("[", e2e_json, "]"));
  const std::string out_path = flags.GetString("out-json");
  std::ofstream out(out_path);
  out << json.ToString() << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const Status close_status = csv.Close();
  if (!close_status.ok()) {
    std::fprintf(stderr, "%s\n", close_status.ToString().c_str());
    return 1;
  }
  std::printf("-> %s, %s\n", out_path.c_str(),
              flags.GetString("out-csv").c_str());
  return 0;
}
