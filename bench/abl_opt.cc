// Ablation: OPT modelling choices. The paper's OPT (Kung-Robinson) is
// under-specified for file-granule batches: pure read-set validation makes
// the hot-set experiment abort-free (contradicting Table 4), so the default
// validates writes too. The restart delay controls how hard aborted work
// hammers the data nodes. See DESIGN.md / EXPERIMENTS.md.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sim_run.h"
#include "util/string_util.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();

  PrintBanner("Ablation: OPT validation scope and restart delay (0.3 TPS)");
  TablePrinter table({"workload", "validate", "restart delay(ms)",
                      "mean RT(s)", "tput(tps)", "restarts/txn"});
  for (bool hot_set : {false, true}) {
    const Pattern pattern =
        hot_set ? Pattern::Experiment2() : Pattern::Experiment1(16);
    for (bool validate_writes : {true, false}) {
      for (double delay_ms : {0.0, 5000.0, 20000.0}) {
        SimConfig config = MakeConfig(SchedulerKind::kOpt, 16, 1, 0.3);
        config.opt_validate_writes = validate_writes;
        config.run.restart_delay_ms = delay_ms;
        config.run.horizon_ms = opts.horizon_ms;
        const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
        table.AddRow(
            {hot_set ? "Exp2(hot)" : "Exp1",
             validate_writes ? "reads+writes" : "reads only",
             FormatDouble(delay_ms, 0), FmtSeconds(r.mean_response_s),
             FmtTps(r.throughput_tps),
             FmtSpeedup(r.completions > 0 ? r.restarts / r.completions
                                          : 0.0)});
        std::fflush(stdout);
      }
    }
  }
  table.Print();
  std::printf(
      "(reads-only validation on Exp2 never aborts — blind hot-file writes\n"
      " serialize by commit order — which contradicts the paper's Table 4;\n"
      " hence the reads+writes default.)\n");
  const std::string csv = CsvPath(opts, "abl_opt");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
