// Figure 12: response-time speedup vs. declustering at lambda = 1.2 TPS on
// the hot-set workload (Experiment 2).

#include <cstdio>
#include <map>

#include "driver/experiments.h"
#include "driver/report.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment2();
  constexpr double kRate = 1.2;
  const std::vector<int> dds = {1, 2, 4, 8};

  PrintBanner(
      "Figure 12: declustering vs. response-time speedup at 1.2 TPS "
      "(Experiment 2, hot set)");
  std::printf(
      "Paper shape: LOW/GOW/ASL have the best speedup (LOW best overall);\n"
      "C2PL's is limited by chains of blocking on the hot files; NODC\n"
      "~1.57x at DD=8; OPT the worst.\n\n");

  std::map<std::string, std::map<int, double>> rt;
  for (SchedulerKind kind : PaperSchedulers()) {
    for (int dd : dds) {
      rt[SchedulerLabel(kind)][dd] =
          RunAtRate(kind, 16, dd, kRate, pattern, opts).mean_response_s;
      std::fflush(stdout);
    }
  }

  std::vector<std::string> headers = {"DD"};
  for (SchedulerKind kind : PaperSchedulers()) {
    headers.push_back(SchedulerLabel(kind));
  }
  TablePrinter table(headers);
  for (int dd : dds) {
    std::vector<std::string> row = {std::to_string(dd)};
    for (SchedulerKind kind : PaperSchedulers()) {
      const auto& series = rt[SchedulerLabel(kind)];
      row.push_back(FmtSpeedup(series.at(1) / series.at(dd)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(cells: RT(DD=1) / RT(DD=k); larger is better)\n");
  const std::string csv = CsvPath(opts, "fig12_hot_set_speedup");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
