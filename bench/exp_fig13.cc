// Figure 13: sensitivity to declaration errors — throughput at RT = 70 s as
// a function of the error ratio sigma (Experiment 3: Pattern 1 with
// declared cost C = C0 * (1 + x), x ~ N(0, sigma)), for DD in {1, 2, 4}.
// The C2PL row is the declaration-free floor GOW/LOW must stay above.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "util/string_util.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);
  const std::vector<double> sigmas = {0.0, 0.5, 1.0, 2.0, 5.0, 10.0};
  const std::vector<int> dds = {1, 2, 4};

  PrintBanner(
      "Figure 13: declaration-error ratio vs. throughput at RT = 70 s "
      "(Experiment 3, NumFiles=16)");
  std::printf(
      "Paper shape: GOW/LOW degrade gently with sigma (GOW less than LOW),\n"
      "stay well above the C2PL floor even at sigma=10, and get *less*\n"
      "sensitive as DD grows.\n\n");

  std::vector<std::string> headers = {"DD", "scheduler"};
  for (double sigma : sigmas) {
    headers.push_back(StrCat("s=", FormatDouble(sigma, 1)));
  }
  TablePrinter table(headers);
  for (int dd : dds) {
    for (SchedulerKind kind : {SchedulerKind::kGow, SchedulerKind::kLow}) {
      std::vector<std::string> row = {std::to_string(dd),
                                      SchedulerLabel(kind)};
      for (double sigma : sigmas) {
        const OperatingPoint op = FindRt70(kind, 16, dd, pattern, opts, sigma);
        row.push_back(FmtTps(op.throughput_tps));
        std::fflush(stdout);
      }
      table.AddRow(std::move(row));
    }
    // C2PL reference (no declarations, sigma-independent).
    const OperatingPoint floor = FindRt70(SchedulerKind::kC2pl, 16, dd,
                                          pattern, opts);
    std::vector<std::string> row = {std::to_string(dd), "C2PL(floor)"};
    for (size_t i = 0; i < sigmas.size(); ++i) {
      row.push_back(FmtTps(floor.throughput_tps));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(cells: TPS at the lambda where mean RT crosses 70 s)\n");
  const std::string csv = CsvPath(opts, "fig13_sensitivity");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
