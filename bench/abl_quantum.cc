// Ablation: round-robin quantum at the data-processing nodes. The paper
// serves cohorts in slices of 1/DD object; this sweep varies the slice size
// to show its effect on response time (small quanta approximate processor
// sharing; large quanta approach FCFS-per-cohort).

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sim_run.h"
#include "util/string_util.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);

  PrintBanner("Ablation: DPN round-robin quantum (NODC and ASL, 1.0 TPS)");
  TablePrinter table(
      {"scheduler", "DD", "quantum(objects)", "mean RT(s)", "tput(tps)"});
  for (SchedulerKind kind : {SchedulerKind::kNodc, SchedulerKind::kAsl}) {
    for (int dd : {1, 4}) {
      for (double quantum : {0.0, 0.05, 0.25, 1.0, 5.0}) {
        SimConfig config = MakeConfig(kind, 16, dd, 1.0);
        config.machine.quantum_objects = quantum;
        config.run.horizon_ms = opts.horizon_ms;
        const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
        table.AddRow({SchedulerLabel(kind), std::to_string(dd),
                      quantum == 0.0 ? std::string("1/DD (paper)")
                                     : FormatDouble(quantum, 2),
                      FmtSeconds(r.mean_response_s),
                      FmtTps(r.throughput_tps)});
        std::fflush(stdout);
      }
    }
  }
  table.Print();
  const std::string csv = CsvPath(opts, "abl_quantum");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
