// Ablation: scheduler CPU-cost charging. Table 1 gives kwtpgtime = 10 ms
// for "computing E(q)" — we charge it per E() evaluation (1 + |C(q)| per
// decision); the alternative reading charges a flat 10 ms per decision.
// Also scales GOW's chaintime to show how sensitive the results are to the
// optimizer's CPU price.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sim_run.h"
#include "util/string_util.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);

  PrintBanner("Ablation: LOW E() cost charging (1.0 TPS, DD=1)");
  TablePrinter low_table({"charging", "mean RT(s)", "tput(tps)", "CN util"});
  for (bool per_eval : {true, false}) {
    SimConfig config = MakeConfig(SchedulerKind::kLow, 16, 1, 1.0);
    config.low_charge_per_eval = per_eval;
    config.run.horizon_ms = opts.horizon_ms;
    const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
    low_table.AddRow({per_eval ? "per-eval (default)" : "flat",
                      FmtSeconds(r.mean_response_s), FmtTps(r.throughput_tps),
                      FmtPercent(r.cn_utilization)});
  }
  low_table.Print();

  PrintBanner("Ablation: GOW optimization CPU price (1.0 TPS, DD=1)");
  TablePrinter gow_table(
      {"chaintime(ms)", "mean RT(s)", "tput(tps)", "CN util"});
  for (double chaintime : {0.0, 10.0, 30.0, 90.0, 300.0}) {
    SimConfig config = MakeConfig(SchedulerKind::kGow, 16, 1, 1.0);
    config.costs.chain_time_ms = chaintime;
    config.run.horizon_ms = opts.horizon_ms;
    const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
    gow_table.AddRow({FormatDouble(chaintime, 0),
                      FmtSeconds(r.mean_response_s), FmtTps(r.throughput_tps),
                      FmtPercent(r.cn_utilization)});
    std::fflush(stdout);
  }
  gow_table.Print();
  const std::string csv = CsvPath(opts, "abl_cost_charging");
  if (!csv.empty() && gow_table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
