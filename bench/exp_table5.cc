// Table 5: sensitivity-test degradation ratio
//   (TPS at sigma = 10) / (TPS at sigma = 0)
// for GOW and LOW at DD in {1, 2, 4} (Experiment 3).

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);
  const std::vector<int> dds = {1, 2, 4};

  PrintBanner("Table 5: sensitivity degradation ratio (Experiment 3)");
  std::printf(
      "Paper:       DD=1  DD=2  DD=4\n"
      "        GOW  94%%   96%%   97.5%%\n"
      "        LOW  77%%   84%%   93%%\n"
      "GOW is less sensitive than LOW; both improve with parallelism.\n\n");

  TablePrinter table({"scheduler", "DD=1", "DD=2", "DD=4"});
  for (SchedulerKind kind : {SchedulerKind::kGow, SchedulerKind::kLow}) {
    std::vector<std::string> row = {SchedulerLabel(kind)};
    for (int dd : dds) {
      const OperatingPoint exact = FindRt70(kind, 16, dd, pattern, opts, 0.0);
      const OperatingPoint noisy = FindRt70(kind, 16, dd, pattern, opts, 10.0);
      row.push_back(FmtPercent(noisy.throughput_tps / exact.throughput_tps));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(cells: TPS(sigma=10) / TPS(sigma=0) at RT = 70 s)\n");
  const std::string csv = CsvPath(opts, "table5_degradation");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
