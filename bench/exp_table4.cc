// Table 4: Experiment 2 (hot-set updates) — throughput at RT = 70 s and
// mean response time at lambda = 1.2 TPS, for DD in {1, 2, 4}.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment2();

  PrintBanner("Table 4: Experiment 2 (hot set) throughput and response time");
  std::printf(
      "Paper:            NODC  ASL   GOW   LOW   C2PL  OPT\n"
      "  tput@70s DD=1   1.10  0.40  0.57  0.77  0.70  0.38\n"
      "           DD=2   1.11  0.70  0.88  1.01  0.92  0.55\n"
      "           DD=4   1.13  1.03  1.10  1.12  1.09  0.85\n"
      "  RT@1.2   DD=1   112   611   500   321   432   751\n"
      "           DD=2   97    380   252   133   242   746\n"
      "           DD=4   87    116   80    57    118   457\n"
      "Key ordering: LOW best, then C2PL, GOW, ASL; OPT worst.\n\n");

  std::vector<std::string> headers = {"metric", "DD"};
  for (SchedulerKind kind : PaperSchedulers()) {
    headers.push_back(SchedulerLabel(kind));
  }
  TablePrinter table(headers);
  for (int dd : {1, 2, 4}) {
    std::vector<std::string> row = {"tput@70s", std::to_string(dd)};
    for (SchedulerKind kind : PaperSchedulers()) {
      const OperatingPoint op = FindRt70(kind, 16, dd, pattern, opts);
      row.push_back(FmtTps(op.throughput_tps));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  for (int dd : {1, 2, 4}) {
    std::vector<std::string> row = {"RT@1.2tps", std::to_string(dd)};
    for (SchedulerKind kind : PaperSchedulers()) {
      const AggregateResult r = RunAtRate(kind, 16, dd, 1.2, pattern, opts);
      row.push_back(FmtSeconds(r.mean_response_s));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  const std::string csv = CsvPath(opts, "table4_hot_set");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
