// Microbenchmarks of the trace recorder (google-benchmark): the cost of
// one Record() call with tracing disabled (the price every instrumentation
// site pays on every run) and enabled (ring-buffer steady state), plus the
// end-to-end overhead of a traced LOW run. DESIGN.md "Observability"
// quotes these numbers; the acceptance bar is <= 2% run-time overhead with
// tracing disabled.

#include <benchmark/benchmark.h>

#include "machine/machine.h"
#include "trace/trace_recorder.h"

namespace wtpgsched {
namespace {

void RunRecord(benchmark::State& state, bool enabled) {
  TraceRecorder rec;
  if (enabled) rec.Enable(1 << 16);
  TraceEvent e{.time = 0,
               .type = TraceEventType::kLockRequest,
               .txn = 7,
               .file = 3,
               .step = 1};
  for (auto _ : state) {
    ++e.time;
    rec.Record(e);
    benchmark::DoNotOptimize(rec);
  }
}

void BM_RecordDisabled(benchmark::State& state) {
  RunRecord(state, /*enabled=*/false);
}
BENCHMARK(BM_RecordDisabled);

void BM_RecordEnabled(benchmark::State& state) {
  RunRecord(state, /*enabled=*/true);
}
BENCHMARK(BM_RecordEnabled);

// A short contended LOW run; Arg(0) = tracing off, Arg(1) = on. The delta
// between the two is the whole-machine instrumentation overhead.
void BM_LowRun(benchmark::State& state) {
  for (auto _ : state) {
    SimConfig c;
    c.scheduler = SchedulerKind::kLow;
    c.machine.num_files = 16;
    c.workload.arrival_rate_tps = 0.8;
    c.run.horizon_ms = 300'000;
    c.run.seed = 5;
    c.run.trace_enabled = state.range(0) != 0;
    c.run.trace_capacity = 1 << 16;
    Machine m(c, Pattern::Experiment1(16));
    benchmark::DoNotOptimize(m.Run());
  }
}
BENCHMARK(BM_LowRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wtpgsched
