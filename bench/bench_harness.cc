// bench_harness — wall-clock baseline for the parallel experiment harness.
//
// Times one fixed multi-scheduler arrival-rate sweep (the Fig.-8 rate grid)
// at --jobs=1 and --jobs=N, verifies the aggregates are byte-identical, and
// writes BENCH_harness.json so future PRs can compare against today's
// numbers.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "driver/report.h"
#include "driver/sweep.h"
#include "machine/config.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/progress.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

using namespace wtpgsched;

namespace {

constexpr SchedulerKind kSchedulers[] = {
    SchedulerKind::kLow, SchedulerKind::kGow, SchedulerKind::kC2pl};

// One full sweep (all schedulers x rates x seeds) at the given worker
// count; returns concatenated AggregateResult JSON for identity checks.
std::string RunSweep(const std::vector<double>& rates, int seeds,
                     double horizon_ms, int jobs) {
  std::string combined;
  for (SchedulerKind kind : kSchedulers) {
    SimConfig config;
    config.scheduler = kind;
    config.run.horizon_ms = horizon_ms;
    for (const SweepPoint& p :
         SweepArrivalRates(config, Pattern::Experiment1(config.machine.num_files),
                           rates, seeds, jobs)) {
      combined += p.result.ToJson();
      combined += '\n';
    }
  }
  return combined;
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("seeds", 4, "seeds per data point");
  flags.AddInt("jobs", 0,
               "parallel worker count to compare against jobs=1 "
               "(0 = hardware concurrency)");
  flags.AddDouble("horizon-ms", 300'000, "simulated milliseconds per replica");
  flags.AddString("out", "BENCH_harness.json", "result file");
  flags.AddBool("progress", false,
                "show a replicas-completed status line on stderr (only when "
                "stderr is a TTY)");
  flags.AddBool("progress-force", false,
                "like --progress but writes even when stderr is not a TTY");
  flags.AddBool("help", false, "print usage");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (flags.GetBool("progress-force")) {
    SetProgressMode(ProgressMode::kForce);
  } else if (flags.GetBool("progress")) {
    SetProgressMode(ProgressMode::kAuto);
  }

  const std::vector<double> rates = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4};
  const int seeds = static_cast<int>(flags.GetInt("seeds"));
  const double horizon_ms = flags.GetDouble("horizon-ms");
  int jobs = static_cast<int>(flags.GetInt("jobs"));
  if (jobs <= 0) jobs = ThreadPool::HardwareThreads();
  const int replicas = static_cast<int>(std::size(kSchedulers) *
                                        rates.size()) * seeds;

  std::printf("harness bench: %zu schedulers x %zu rates x %d seeds = %d "
              "replicas, horizon %.0f ms\n",
              std::size(kSchedulers), rates.size(), seeds, replicas,
              horizon_ms);

  const auto t0 = std::chrono::steady_clock::now();
  const std::string serial = RunSweep(rates, seeds, horizon_ms, /*jobs=*/1);
  const auto t1 = std::chrono::steady_clock::now();
  const std::string parallel = RunSweep(rates, seeds, horizon_ms, jobs);
  const auto t2 = std::chrono::steady_clock::now();

  const double wall_serial_s = Seconds(t0, t1);
  const double wall_parallel_s = Seconds(t1, t2);
  const bool identical = serial == parallel;
  // On a single-hardware-thread container the jobs=N run just adds pool
  // overhead — a "speedup" there is a measurement confound, not a result.
  // The wall times and the byte-identity check stay meaningful; the speedup
  // claim does not, so it is reported only with >= 2 hardware threads.
  const int hardware_threads = ThreadPool::HardwareThreads();
  const bool speedup_meaningful = hardware_threads >= 2;
  const double speedup =
      wall_parallel_s > 0.0 ? wall_serial_s / wall_parallel_s : 0.0;

  std::printf("hardware threads: %d%s\n", hardware_threads,
              speedup_meaningful
                  ? ""
                  : " (speedup not meaningful on 1 hardware thread)");
  TablePrinter table({"jobs", "wall(s)", "speedup", "identical"});
  table.AddRow({"1", FormatDouble(wall_serial_s, 2), "1.00", "-"});
  table.AddRow({StrCat(jobs), FormatDouble(wall_parallel_s, 2),
                speedup_meaningful ? FormatDouble(speedup, 2) : "n/a",
                identical ? "yes" : "NO"});
  table.Print();

  JsonWriter json;
  json.Add("bench", "harness_sweep")
      .Add("hardware_threads", hardware_threads)
      .Add("speedup_meaningful", speedup_meaningful)
      .Add("replicas", replicas)
      .Add("schedulers", static_cast<int>(std::size(kSchedulers)))
      .Add("rates", static_cast<int>(rates.size()))
      .Add("seeds", seeds)
      .Add("horizon_ms", horizon_ms)
      .Add("jobs", jobs)
      .Add("wall_s_jobs1", wall_serial_s)
      .Add("wall_s_jobsN", wall_parallel_s);
  if (speedup_meaningful) {
    json.Add("speedup", speedup);
  }
  json.Add("outputs_identical", identical);
  const std::string out_path = flags.GetString("out");
  std::ofstream out(out_path);
  out << json.ToString() << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("-> %s\n", out_path.c_str());
  return identical ? 0 : 1;
}
