// Figure 9: throughput at mean response time = 70 s vs. degree of
// declustering (Experiment 1, NumFiles = 16, DD in {1, 2, 4, 8}).

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);

  PrintBanner(
      "Figure 9: declustering vs. throughput at RT = 70 s "
      "(Experiment 1, NumFiles=16)");
  std::printf(
      "Paper shape: at DD=2, ASL/GOW/LOW reach ~85%% useful resource\n"
      "utilization, ~1.5x the throughput of C2PL; all converge near NODC\n"
      "at DD=8 except OPT.\n\n");

  std::vector<std::string> headers = {"DD"};
  for (SchedulerKind kind : PaperSchedulers()) {
    headers.push_back(SchedulerLabel(kind));
  }
  TablePrinter table(headers);
  for (int dd : {1, 2, 4, 8}) {
    std::vector<std::string> row = {std::to_string(dd)};
    for (SchedulerKind kind : PaperSchedulers()) {
      const OperatingPoint op = FindRt70(kind, 16, dd, pattern, opts);
      row.push_back(FmtTps(op.throughput_tps));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(cells: TPS at the lambda where mean RT crosses 70 s)\n");
  const std::string csv = CsvPath(opts, "fig9_dd_vs_tps");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
