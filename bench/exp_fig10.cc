// Figure 10: response-time speedup vs. degree of declustering at
// lambda = 1.2 TPS (Experiment 1, NumFiles = 16).
// Speedup of scheduler S at DD = k is RT(S, DD=1) / RT(S, DD=k).

#include <cstdio>
#include <map>

#include "driver/experiments.h"
#include "driver/report.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);
  constexpr double kRate = 1.2;
  const std::vector<int> dds = {1, 2, 4, 8};

  PrintBanner(
      "Figure 10: declustering vs. response-time speedup at 1.2 TPS "
      "(Experiment 1, NumFiles=16)");
  std::printf(
      "Paper shape: ASL/GOW/LOW show near-linear speedup (~8-9x at DD=8,\n"
      "13.4 peak for GOW/LOW); C2PL+M lags until DD=8; NODC ~2.4x; OPT\n"
      "~1.6x (the smallest).\n\n");

  // Collect response times, then derive speedups.
  std::map<std::string, std::map<int, double>> rt;
  for (SchedulerKind kind :
       {SchedulerKind::kNodc, SchedulerKind::kAsl, SchedulerKind::kGow,
        SchedulerKind::kLow, SchedulerKind::kOpt}) {
    for (int dd : dds) {
      rt[SchedulerLabel(kind)][dd] =
          RunAtRate(kind, 16, dd, kRate, pattern, opts).mean_response_s;
      std::fflush(stdout);
    }
  }
  for (int dd : dds) {
    rt["C2PL+M"][dd] =
        RunC2plMAtRate(16, dd, kRate, pattern, opts).result.mean_response_s;
    std::fflush(stdout);
  }

  const std::vector<std::string> order = {"NODC", "ASL",    "GOW",
                                          "LOW",  "C2PL+M", "OPT"};
  std::vector<std::string> headers = {"DD"};
  for (const std::string& name : order) headers.push_back(name);
  TablePrinter table(headers);
  for (int dd : dds) {
    std::vector<std::string> row = {std::to_string(dd)};
    for (const std::string& name : order) {
      row.push_back(FmtSpeedup(rt[name][1] / rt[name][dd]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(cells: RT(DD=1) / RT(DD=k); larger is better)\n");
  const std::string csv = CsvPath(opts, "fig10_dd_vs_speedup");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
