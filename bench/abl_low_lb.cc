// Extension study (the paper's "further work"): LOW-LB adds a
// resource-level load-balancing penalty to E(q). Sweeps the penalty weight
// on both workloads against plain LOW.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sim_run.h"
#include "util/string_util.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();

  PrintBanner("Extension: LOW-LB load-balancing weight (1.0 TPS)");
  TablePrinter table(
      {"workload", "DD", "weight", "mean RT(s)", "tput(tps)"});
  for (bool hot_set : {false, true}) {
    const Pattern pattern =
        hot_set ? Pattern::Experiment2() : Pattern::Experiment1(16);
    for (int dd : {1, 2}) {
      {
        SimConfig config = MakeConfig(SchedulerKind::kLow, 16, dd, 1.0);
        config.run.horizon_ms = opts.horizon_ms;
        const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
        table.AddRow({hot_set ? "Exp2(hot)" : "Exp1", std::to_string(dd),
                      "LOW (off)", FmtSeconds(r.mean_response_s),
                      FmtTps(r.throughput_tps)});
      }
      for (double weight : {0.25, 1.0, 4.0}) {
        SimConfig config = MakeConfig(SchedulerKind::kLowLb, 16, dd, 1.0);
        config.low_lb_weight = weight;
        config.run.horizon_ms = opts.horizon_ms;
        const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
        table.AddRow({hot_set ? "Exp2(hot)" : "Exp1", std::to_string(dd),
                      FormatDouble(weight, 2), FmtSeconds(r.mean_response_s),
                      FmtTps(r.throughput_tps)});
        std::fflush(stdout);
      }
    }
  }
  table.Print();
  const std::string csv = CsvPath(opts, "abl_low_lb");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
