// micro_telemetry — overhead of the run-health telemetry sampler on a full
// machine run. The disabled path constructs no Telemetry object at all, so
// BM_Run/off must match the pre-telemetry baseline (< 1% regression is the
// acceptance bar); the sampled variants show the cost growing with the
// sampling frequency, which stays negligible at the 1-10 s periods the
// tools default to because sampling is O(columns) per period, not per
// event.

#include <benchmark/benchmark.h>

#include "machine/machine.h"

namespace wtpgsched {
namespace {

SimConfig BenchConfig(double telemetry_ms) {
  SimConfig config;
  config.scheduler = SchedulerKind::kLow;
  config.workload.arrival_rate_tps = 1.0;
  config.run.horizon_ms = 200'000;
  config.run.seed = 3;
  config.run.telemetry_sample_ms = telemetry_ms;
  return config;
}

// state.range(0) is the sampling period in ms; 0 disables telemetry.
void BM_MachineRun(benchmark::State& state) {
  const SimConfig config =
      BenchConfig(static_cast<double>(state.range(0)));
  const Pattern pattern = Pattern::Experiment1(config.machine.num_files);
  uint64_t completions = 0;
  for (auto _ : state) {
    Machine machine(config, pattern);
    completions += machine.Run().completions;
  }
  benchmark::DoNotOptimize(completions);
  state.counters["completions_per_iter"] = benchmark::Counter(
      static_cast<double>(completions),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MachineRun)
    ->Arg(0)        // telemetry off: the golden-path baseline
    ->Arg(10'000)   // tool default when only an artifact flag is given
    ->Arg(1'000)    // aggressive sampling
    ->Arg(100)      // pathological: 10 Hz sim-time sampling
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wtpgsched
