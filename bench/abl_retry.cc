// Ablation: retry policy for parked requests. The paper only says delayed
// and aborted requests are "submitted ... after some delay"; we retry on
// every commit plus a fallback timer, and cap costed admission retests
// (GOW). This sweep shows how the fallback period and the admission-retry
// cap move the results.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sim_run.h"
#include "util/string_util.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);

  PrintBanner("Ablation: retry fallback period (LOW and GOW, 1.0 TPS, DD=1)");
  TablePrinter timer_table(
      {"scheduler", "fallback(ms)", "mean RT(s)", "tput(tps)"});
  for (SchedulerKind kind : {SchedulerKind::kLow, SchedulerKind::kGow}) {
    for (double fallback_ms : {200.0, 1000.0, 5000.0, 20000.0}) {
      SimConfig config = MakeConfig(kind, 16, 1, 1.0);
      config.run.retry_fallback_ms = fallback_ms;
      config.run.horizon_ms = opts.horizon_ms;
      const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
      timer_table.AddRow({SchedulerLabel(kind), FormatDouble(fallback_ms, 0),
                          FmtSeconds(r.mean_response_s),
                          FmtTps(r.throughput_tps)});
      std::fflush(stdout);
    }
  }
  timer_table.Print();

  PrintBanner(
      "Ablation: GOW admission-retry cap (chain tests per wake event, "
      "1.2 TPS, DD=1)");
  TablePrinter cap_table(
      {"cap", "mean RT(s)", "tput(tps)", "CN util", "rejections"});
  for (int cap : {2, 4, 8, 16, 32, 64}) {
    SimConfig config = MakeConfig(SchedulerKind::kGow, 16, 1, 1.2);
    config.run.admission_retry_limit = cap;
    config.run.horizon_ms = opts.horizon_ms;
    const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
    cap_table.AddRow({std::to_string(cap), FmtSeconds(r.mean_response_s),
                      FmtTps(r.throughput_tps), FmtPercent(r.cn_utilization),
                      FormatDouble(r.start_rejections, 0)});
    std::fflush(stdout);
  }
  cap_table.Print();
  std::printf(
      "(an uncapped retest of a supersaturated admission pool starves the\n"
      " control node; see DESIGN.md 'Substitutions')\n");
  const std::string csv = CsvPath(opts, "abl_retry");
  if (!csv.empty() && cap_table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
