// Table 3: mean response time (seconds) at lambda = 1.2 TPS vs. degree of
// declustering (Experiment 1, NumFiles = 16). The C2PL column is C2PL+M —
// C2PL with the multiprogramming limit tuned for best response time.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "util/string_util.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);
  constexpr double kRate = 1.2;

  PrintBanner(
      "Table 3: declustering vs. mean response time at lambda = 1.2 TPS "
      "(Experiment 1, NumFiles=16)");
  std::printf(
      "Paper:  DD  NODC  ASL  GOW  LOW  C2PL+M  OPT\n"
      "        1   141   387  429  430  669     783\n"
      "        2   103   183  233  245  479     555\n"
      "        4   74    83   102  107  250     494\n"
      "        8   58    48   47   47   50      490\n\n");

  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kNodc, SchedulerKind::kAsl, SchedulerKind::kGow,
      SchedulerKind::kLow, SchedulerKind::kOpt};
  TablePrinter table(
      {"DD", "NODC", "ASL", "GOW", "LOW", "C2PL+M", "OPT", "mpl*"});
  for (int dd : {1, 2, 4, 8}) {
    std::vector<std::string> cells(8);
    cells[0] = std::to_string(dd);
    size_t col = 1;
    for (SchedulerKind kind : kinds) {
      const AggregateResult r = RunAtRate(kind, 16, dd, kRate, pattern, opts);
      const size_t target = kind == SchedulerKind::kOpt ? 6 : col++;
      cells[target] = FmtSeconds(r.mean_response_s);
      std::fflush(stdout);
    }
    const MplChoice c2plm = RunC2plMAtRate(16, dd, kRate, pattern, opts);
    cells[5] = FmtSeconds(c2plm.result.mean_response_s);
    cells[7] = std::to_string(c2plm.mpl);
    table.AddRow(std::move(cells));
  }
  table.Print();
  std::printf(
      "(cells: mean response time in seconds; mpl* = tuned C2PL+M limit)\n");
  const std::string csv = CsvPath(opts, "table3_dd_vs_rt");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
