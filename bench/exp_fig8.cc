// Figure 8: mean response time vs. arrival rate, Experiment 1
// (Pattern 1, NumFiles = 16, DD = 1), all six schedulers.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "util/string_util.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);
  const std::vector<double> rates = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4};

  PrintBanner(
      "Figure 8: arrival rate vs. mean response time "
      "(Experiment 1, NumFiles=16, DD=1)");
  std::printf(
      "Paper shape: data contention caps useful throughput well below the\n"
      "resource-saturation rate; ASL/GOW/LOW sustain ~2x the rate of C2PL\n"
      "and ~3x OPT at any given response time.\n\n");

  std::vector<std::string> headers = {"lambda(tps)"};
  for (SchedulerKind kind : PaperSchedulers()) {
    headers.push_back(SchedulerLabel(kind));
  }
  TablePrinter table(headers);
  for (double rate : rates) {
    std::vector<std::string> row = {FmtTps(rate)};
    for (SchedulerKind kind : PaperSchedulers()) {
      const AggregateResult r = RunAtRate(kind, 16, 1, rate, pattern, opts);
      row.push_back(FmtSeconds(r.mean_response_s));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(cells: mean response time in seconds)\n");
  const std::string csv = CsvPath(opts, "fig8_rt_vs_rate");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
