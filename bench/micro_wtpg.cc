// Microbenchmarks of the WTPG primitives (google-benchmark): graph
// maintenance, orientation with closure, E(q) evaluation, critical path,
// and the GOW chain DP. These are the operations whose CPU prices Table 1
// charges at the control node.

#include <benchmark/benchmark.h>

#include "util/random.h"
#include "wtpg/chain.h"
#include "wtpg/wtpg.h"

namespace wtpgsched {
namespace {

// A random WTPG with `n` nodes and edge probability `p`, with about half
// the edges oriented. Orienting in ascending id order keeps the graph
// acyclic, so the clone-free OrientNoRollback always succeeds — setup for
// the 512-node case must not pay speculative machinery.
// `reference` selects the copy-based speculation implementation.
Wtpg RandomGraph(int n, double p, uint64_t seed, bool reference = false) {
  Rng rng(seed);
  Wtpg g(reference);
  for (int i = 1; i <= n; ++i) g.AddNode(i, rng.UniformReal(0.0, 8.0));
  std::vector<std::pair<TxnId, TxnId>> to_orient;
  for (int a = 1; a <= n; ++a) {
    for (int b = a + 1; b <= n; ++b) {
      if (rng.NextDouble() < p) {
        g.AddConflictEdge(a, b, rng.UniformReal(0.0, 8.0),
                          rng.UniformReal(0.0, 8.0));
        if (rng.NextDouble() < 0.5) to_orient.emplace_back(a, b);
      }
    }
  }
  for (const auto& [a, b] : to_orient) {
    const Wtpg::Edge* e = g.FindEdge(a, b);
    if (e != nullptr && !e->oriented) g.OrientNoRollback(a, b);
  }
  return g;
}

Wtpg RandomChain(int n, uint64_t seed) {
  Rng rng(seed);
  Wtpg g;
  for (int i = 1; i <= n; ++i) g.AddNode(i, rng.UniformReal(0.0, 8.0));
  for (int i = 1; i < n; ++i) {
    g.AddConflictEdge(i, i + 1, rng.UniformReal(0.0, 8.0),
                      rng.UniformReal(0.0, 8.0));
  }
  return g;
}

void BM_AddRemoveNode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Wtpg g = RandomGraph(n, 0.2, 1);
  for (auto _ : state) {
    g.AddNode(n + 1, 3.0);
    g.AddConflictEdge(1, n + 1, 1.0, 2.0);
    g.AddConflictEdge(2, n + 1, 1.0, 2.0);
    g.RemoveNode(n + 1);
  }
}
BENCHMARK(BM_AddRemoveNode)->Arg(8)->Arg(32)->Arg(128);

void BM_CriticalPath(benchmark::State& state) {
  const Wtpg g = RandomGraph(static_cast<int>(state.range(0)), 0.2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.CriticalPath());
  }
}
BENCHMARK(BM_CriticalPath)->Arg(8)->Arg(32)->Arg(128);

// E(q) with the production undo-journal speculation vs the reference
// copy-per-evaluation implementation (WTPG_REFERENCE_SPECULATION). This is
// the LOW/GOW decision hot path: the acceptance bar for the journal rewrite
// is >= 5x fewer ns per evaluation at N = 128 (see
// results/micro_wtpg_speculation.csv).
void RunEvaluateGrant(benchmark::State& state, bool reference) {
  const int n = static_cast<int>(state.range(0));
  Wtpg g = RandomGraph(n, 0.2, 3, reference);
  // Pick a node with unoriented edges as the grantee.
  TxnId grantee = 1;
  std::vector<TxnId> targets;
  for (const auto& [a, b] : g.UnorientedEdges()) {
    grantee = a;
    targets = {b};
    break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateGrant(g, grantee, targets));
  }
}

void BM_EvaluateGrant(benchmark::State& state) {
  RunEvaluateGrant(state, /*reference=*/false);
}
BENCHMARK(BM_EvaluateGrant)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_EvaluateGrantCopyReference(benchmark::State& state) {
  RunEvaluateGrant(state, /*reference=*/true);
}
BENCHMARK(BM_EvaluateGrantCopyReference)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

// LOW's actual per-decision pattern: one E(q) plus K competitor E(p)
// evaluations against the same base graph — the case the memoized critical
// path distances are designed for.
void RunLowDecision(benchmark::State& state, bool reference) {
  const int n = static_cast<int>(state.range(0));
  Wtpg g = RandomGraph(n, 0.2, 7, reference);
  // The first three unoriented edges play q and two competitors p1, p2.
  std::vector<std::pair<TxnId, TxnId>> evals;
  for (const auto& [a, b] : g.UnorientedEdges()) {
    evals.emplace_back(a, b);
    if (evals.size() == 3) break;
  }
  for (auto _ : state) {
    for (const auto& [grantee, target] : evals) {
      benchmark::DoNotOptimize(EvaluateGrant(g, grantee, {target}));
    }
  }
}

void BM_LowDecisionJournal(benchmark::State& state) {
  RunLowDecision(state, /*reference=*/false);
}
BENCHMARK(BM_LowDecisionJournal)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_LowDecisionCopyReference(benchmark::State& state) {
  RunLowDecision(state, /*reference=*/true);
}
BENCHMARK(BM_LowDecisionCopyReference)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_WouldCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Wtpg g = RandomGraph(n, 0.2, 4);
  TxnId grantee = 1;
  std::vector<TxnId> targets;
  for (const auto& [a, b] : g.UnorientedEdges()) {
    grantee = a;
    targets = {b};
    break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.WouldCycle(grantee, targets));
  }
}
BENCHMARK(BM_WouldCycle)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_ChainOptimize(benchmark::State& state) {
  const Wtpg g = RandomChain(static_cast<int>(state.range(0)), 5);
  const std::vector<TxnId> chain = ChainContaining(g, 1);
  for (auto _ : state) {
    auto plan = OptimizeChain(g, chain);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ChainOptimize)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ChainFormTest(benchmark::State& state) {
  const Wtpg g = RandomChain(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsChainForm(g));
  }
}
BENCHMARK(BM_ChainFormTest)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace wtpgsched
