// Ablation / baseline study: traditional strict 2PL with deadlock
// detection vs. the declaration-based schedulers. The paper's introduction
// motivates the whole line of work with 2PL's "chains of blocking"; this
// bench quantifies it on the Experiment-1 workload.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sim_run.h"
#include "util/string_util.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);

  PrintBanner(
      "Baseline: traditional 2PL (deadlock detection + victim restart) vs "
      "declaration-based schedulers");
  TablePrinter table({"lambda(tps)", "2PL", "C2PL", "ASL", "LOW",
                      "2PL restarts/txn"});
  for (double rate : {0.3, 0.5, 0.7, 0.9}) {
    std::vector<std::string> row = {FmtTps(rate)};
    AggregateResult twopl;
    for (SchedulerKind kind : {SchedulerKind::kTwoPl, SchedulerKind::kC2pl,
                               SchedulerKind::kAsl, SchedulerKind::kLow}) {
      SimConfig config = MakeConfig(kind, 16, 1, rate);
      config.run.horizon_ms = opts.horizon_ms;
      const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
      if (kind == SchedulerKind::kTwoPl) twopl = r;
      row.push_back(FmtSeconds(r.mean_response_s));
      std::fflush(stdout);
    }
    row.push_back(FmtSpeedup(
        twopl.completions > 0 ? twopl.restarts / twopl.completions : 0.0));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(cells: mean response time in seconds)\n");
  const std::string csv = CsvPath(opts, "abl_2pl");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
