// Figure 11: response-time speedup (DD=4 vs DD=1) as a function of arrival
// rate (Experiment 1, NumFiles = 16).

#include <cstdio>
#include <map>

#include "driver/experiments.h"
#include "driver/report.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const Pattern pattern = Pattern::Experiment1(16);
  const std::vector<double> rates = {0.4, 0.6, 0.8, 1.0, 1.2, 1.4};

  PrintBanner(
      "Figure 11: arrival rate vs. response-time speedup at DD=4 "
      "(Experiment 1, NumFiles=16)");
  std::printf(
      "Paper shape: at light loads C2PL/OPT show the larger speedups; past\n"
      "C2PL's capacity (~0.85 TPS) ASL/GOW/LOW dominate while C2PL's\n"
      "speedup stalls under chains of blocking and OPT's under restarts.\n\n");

  std::vector<std::string> headers = {"lambda(tps)"};
  for (SchedulerKind kind : PaperSchedulers()) {
    headers.push_back(SchedulerLabel(kind));
  }
  TablePrinter table(headers);
  for (double rate : rates) {
    std::vector<std::string> row = {FmtTps(rate)};
    for (SchedulerKind kind : PaperSchedulers()) {
      const double rt1 =
          RunAtRate(kind, 16, 1, rate, pattern, opts).mean_response_s;
      const double rt4 =
          RunAtRate(kind, 16, 4, rate, pattern, opts).mean_response_s;
      row.push_back(FmtSpeedup(rt1 / rt4));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(cells: RT(DD=1) / RT(DD=4) at the same arrival rate)\n");
  const std::string csv = CsvPath(opts, "fig11_rate_vs_speedup");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
