// Open-system production workload tier (beyond the paper): short
// interactive transactions and long batch scans over a Zipf-skewed universe
// of a million files (workload/openworld.h). The paper's closed-batch
// experiments answer "which scheduler finishes the batch fastest"; this
// experiment asks the production question — which scheduler protects the
// interactive tail (p99) while the batch minority hammers the hot head of
// the Zipf distribution — and whether a batch admission gate
// (machine.batch_mpl) buys tail latency without giving up batch progress.
//
// Each scheduler runs twice: ungated (batch_mpl=0) and gated (batch_mpl
// from WTPG_OW_BATCH_MPL, default 2). Tail percentiles come from the
// bounded-memory P2 sketch (run.tail_sketch), which is what makes the
// long-horizon/large-universe points feasible; the sketch is differentially
// validated against the exact histogram in tests/metrics.
//
// Knobs (on top of the usual WTPG_* bench options):
//   WTPG_OW_FILES      universe size            (default 1,000,000)
//   WTPG_OW_THETA      Zipf theta               (default 0.9)
//   WTPG_OW_SHARE      interactive arrival share (default 0.9)
//   WTPG_OW_RATE       arrival rate, TPS        (default 1.0)
//   WTPG_OW_BATCH_MPL  gated-pass batch MPL     (default 2)
//   WTPG_OPENWORLD_BIG=1  adds a 10M-file bounded-memory proof point
//                         (one scheduler, short horizon; ~0.5 GB RSS from
//                         the dense per-file tables, constant-size metrics)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/experiments.h"
#include "driver/report.h"
#include "util/string_util.h"

using namespace wtpgsched;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int64_t parsed = 0;
  if (!ParseInt64(value, &parsed)) return fallback;
  return static_cast<int>(parsed);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  double parsed = 0.0;
  if (!ParseDouble(value, &parsed)) return fallback;
  return parsed;
}

uint64_t CounterOr0(const AggregateResult& result, const std::string& name) {
  for (const auto& [key, value] : result.counters) {
    if (key == name) return value;
  }
  return 0;
}

// Per-class aggregate by mix index; zero-filled if the class never
// completed under this scheduler (fully gated, or saturated).
AggregateResult::ClassAgg ClassOrEmpty(const AggregateResult& result,
                                       int workload_class) {
  for (const AggregateResult::ClassAgg& cs : result.per_class) {
    if (cs.workload_class == workload_class) return cs;
  }
  AggregateResult::ClassAgg empty;
  empty.workload_class = workload_class;
  return empty;
}

}  // namespace

int main() {
  const BenchOptions opts = GetBenchOptions();
  OpenWorldSpec spec;
  spec.num_files = EnvInt("WTPG_OW_FILES", spec.num_files);
  spec.zipf_theta = EnvDouble("WTPG_OW_THETA", spec.zipf_theta);
  spec.interactive_share = EnvDouble("WTPG_OW_SHARE", spec.interactive_share);
  const double rate = EnvDouble("WTPG_OW_RATE", 1.0);
  const int batch_mpl = EnvInt("WTPG_OW_BATCH_MPL", 2);

  PrintBanner(StrCat(
      "Open-world tier: interactive tail vs. batch interference "
      "(files=", spec.num_files, ", theta=", FormatDouble(spec.zipf_theta, 2),
      ", interactive share=", FormatDouble(spec.interactive_share, 2),
      ", lambda=", FormatDouble(rate, 2), " TPS)"));
  std::printf(
      "Class 0 = interactive (r,w; priority 1); class 1 = batch scan\n"
      "(3r+w at %gx the cost; priority 0, gated at batch_mpl=%d in the\n"
      "gated pass). Percentiles: bounded-memory P2 sketch.\n\n",
      OpenWorldSpec{}.batch_cost, batch_mpl);

  TablePrinter long_table(
      {"scheduler", "batch_mpl", "mean_rt_s", "tput_tps", "completions",
       "gated", "int_completions", "int_mean_s", "int_p50_s", "int_p95_s",
       "int_p99_s", "batch_completions", "batch_mean_s", "batch_p50_s",
       "batch_p95_s", "batch_p99_s"});

  // Headline: interactive p99 per scheduler, ungated vs gated.
  TablePrinter headline({"scheduler", "int_p99_s (mpl=0)",
                         StrCat("int_p99_s (mpl=", batch_mpl, ")"),
                         "batch_tput (mpl=0)",
                         StrCat("batch_tput (mpl=", batch_mpl, ")")});

  std::vector<std::vector<OpenWorldRun>> passes;
  for (int mpl : {0, batch_mpl}) {
    passes.push_back(RunOpenWorld(spec, rate, mpl, /*sketch=*/true, opts));
    for (const OpenWorldRun& run : passes.back()) {
      const AggregateResult& r = run.result;
      const auto inter = ClassOrEmpty(r, 0);
      const auto batch = ClassOrEmpty(r, 1);
      long_table.AddRow({SchedulerLabel(run.kind), StrCat(mpl),
                         FormatDouble(r.mean_response_s, 2),
                         FormatDouble(r.throughput_tps, 3),
                         FormatDouble(r.completions, 1),
                         StrCat(CounterOr0(r, "admission.gated")),
                         FormatDouble(inter.completions, 1),
                         FormatDouble(inter.mean_response_s, 2),
                         FormatDouble(inter.p50_response_s, 2),
                         FormatDouble(inter.p95_response_s, 2),
                         FormatDouble(inter.p99_response_s, 2),
                         FormatDouble(batch.completions, 1),
                         FormatDouble(batch.mean_response_s, 2),
                         FormatDouble(batch.p50_response_s, 2),
                         FormatDouble(batch.p95_response_s, 2),
                         FormatDouble(batch.p99_response_s, 2)});
      std::fflush(stdout);
    }
  }

  const double window_s = opts.horizon_ms / 1000.0;
  for (size_t i = 0; i < passes[0].size(); ++i) {
    const auto& ungated = passes[0][i];
    const auto& gated = passes[1][i];
    headline.AddRow(
        {SchedulerLabel(ungated.kind),
         FmtSeconds(ClassOrEmpty(ungated.result, 0).p99_response_s),
         FmtSeconds(ClassOrEmpty(gated.result, 0).p99_response_s),
         FmtTps(ClassOrEmpty(ungated.result, 1).completions / window_s),
         FmtTps(ClassOrEmpty(gated.result, 1).completions / window_s)});
  }

  std::printf("Per-scheduler, per-class detail:\n");
  long_table.Print();
  std::printf("\nInteractive p99 and batch throughput, ungated vs gated:\n");
  headline.Print();

  const std::string csv = CsvPath(opts, "openworld_tail");
  if (!csv.empty() && long_table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }

  // Bounded-memory proof at 10M files: the per-file machine state is dense
  // (lock table + pending queues indexed by FileId) but the metrics path is
  // O(1) per stream regardless of completions — this run exists to show the
  // sketch keeps a multi-million-file, long-horizon point feasible at all.
  const char* big = std::getenv("WTPG_OPENWORLD_BIG");
  if (big != nullptr && big[0] == '1') {
    OpenWorldSpec big_spec = spec;
    big_spec.num_files = 10'000'000;
    BenchOptions big_opts = opts;
    PrintBanner("Bounded-memory proof: 10M-file universe (LOW only)");
    SimConfig config = MakeConfig(SchedulerKind::kLow, big_spec.num_files,
                                  /*dd=*/1, rate);
    config.workload.zipf_theta = big_spec.zipf_theta;
    config.machine.batch_mpl = batch_mpl;
    config.run.tail_metrics = true;
    config.run.tail_sketch = true;
    config.run.horizon_ms = big_opts.horizon_ms;
    const AggregateResult r =
        RunAggregate(config, MakeOpenWorldMix(big_spec), 1, big_opts.jobs);
    std::printf("%s\n", r.ToJson().c_str());
  }
  return 0;
}
