// Ablation: LOW's conflict bound K. The paper fixes K = 2; this sweep shows
// the admission/optimism trade-off — K = 0 serializes conflicters (ASL-ish
// on hot granules), large K admits more but computes bigger E() sets.

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sim_run.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();
  const std::vector<int> ks = {0, 1, 2, 4, 8};

  PrintBanner("Ablation: LOW conflict bound K (RT at 1.2 TPS, DD=1 and 4)");

  TablePrinter table({"workload", "DD", "K", "mean RT(s)", "tput(tps)",
                      "delayed/txn"});
  for (bool hot_set : {false, true}) {
    const Pattern pattern =
        hot_set ? Pattern::Experiment2() : Pattern::Experiment1(16);
    for (int dd : {1, 4}) {
      for (int k : ks) {
        SimConfig config = MakeConfig(SchedulerKind::kLow, 16, dd, 1.2);
        config.low_k = k;
        config.run.horizon_ms = opts.horizon_ms;
        const AggregateResult r = RunAggregate(config, pattern, opts.seeds);
        table.AddRow({hot_set ? "Exp2(hot)" : "Exp1", std::to_string(dd),
                      std::to_string(k), FmtSeconds(r.mean_response_s),
                      FmtTps(r.throughput_tps),
                      FmtSpeedup(r.completions > 0
                                     ? r.delayed / r.completions
                                     : 0.0)});
        std::fflush(stdout);
      }
    }
  }
  table.Print();
  const std::string csv = CsvPath(opts, "abl_low_k");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
