// Table 2: throughput (TPS) at mean response time = 70 s as the number of
// files varies (Experiment 1, DD = 1, NumFiles in {8, 16, 32, 64}).

#include <cstdio>

#include "driver/experiments.h"
#include "driver/report.h"

using namespace wtpgsched;

int main() {
  const BenchOptions opts = GetBenchOptions();

  PrintBanner("Table 2: number of files vs. throughput at RT = 70 s (DD=1)");
  std::printf(
      "Paper:  #files   NODC  ASL   GOW   LOW   C2PL  OPT\n"
      "        8        1.02  0.45  0.44  0.44  0.25  0.16\n"
      "        16       1.04  0.72  0.67  0.65  0.35  0.24\n"
      "        32       1.04  0.90  0.86  0.83  0.50  0.30\n"
      "        64       1.04  0.96  0.95  0.94  0.62  0.38\n\n");

  std::vector<std::string> headers = {"#files"};
  for (SchedulerKind kind : PaperSchedulers()) {
    headers.push_back(SchedulerLabel(kind));
  }
  TablePrinter table(headers);
  for (int num_files : {8, 16, 32, 64}) {
    const Pattern pattern = Pattern::Experiment1(num_files);
    std::vector<std::string> row = {std::to_string(num_files)};
    for (SchedulerKind kind : PaperSchedulers()) {
      const OperatingPoint op = FindRt70(kind, num_files, 1, pattern, opts);
      row.push_back(FmtTps(op.throughput_tps));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(cells: TPS at the lambda where mean RT crosses 70 s)\n");
  const std::string csv = CsvPath(opts, "table2_files_vs_tps");
  if (!csv.empty() && table.WriteCsv(csv).ok()) {
    std::printf("CSV: %s\n", csv.c_str());
  }
  return 0;
}
