#ifndef WTPG_SCHED_UTIL_COMMON_FLAGS_H_
#define WTPG_SCHED_UTIL_COMMON_FLAGS_H_

#include "util/flags.h"

namespace wtpgsched {

// Flag sets shared by the command-line tools (wtpg_sim, wtpg_sweep), so
// both spell them identically and FlagParser::Help() documents them once.
// Tools call the Add* helpers before any tool-specific flags, then
// HandleStandardFlags() right after declaring everything.

// --config, --scheduler, --seed, --seeds, --jobs, --json, --log-level,
// --help.
void AddCommonToolFlags(FlagParser& flags);

// --trace-jsonl, --trace-chrome, --trace-capacity.
void AddTraceFlags(FlagParser& flags);

// --telemetry-ms, --telemetry-capacity, --telemetry-csv, --telemetry-jsonl.
void AddTelemetryFlags(FlagParser& flags);

// --progress, --progress-force.
void AddProgressFlags(FlagParser& flags);

// Sets the process-wide progress mode from the parsed --progress /
// --progress-force flags (see util/progress.h).
void ApplyProgressFlags(const FlagParser& flags);

// Parses argv and processes the boilerplate: on parse error prints the
// error plus usage and returns 2; on --help prints usage and returns 0; on
// a bad --log-level returns 2, otherwise applies it. Returns -1 when the
// tool should continue.
int HandleStandardFlags(FlagParser& flags, int argc, const char* const* argv);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_COMMON_FLAGS_H_
