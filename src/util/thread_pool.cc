#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace wtpgsched {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(int jobs, size_t n,
                 const std::function<void(size_t)>& body) {
  if (jobs <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min<size_t>(static_cast<size_t>(jobs), n));
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&body, i] { body(i); });
  }
  pool.Wait();
}

}  // namespace wtpgsched
