#include "util/common_flags.h"

#include <cstdio>

#include "util/logging.h"
#include "util/progress.h"

namespace wtpgsched {

void AddCommonToolFlags(FlagParser& flags) {
  flags.AddString("config", "",
                  "JSON config file (SimConfig::ToJson format); explicitly "
                  "set flags override its fields");
  flags.AddString("scheduler", "low", "nodc|asl|c2pl|opt|gow|low|low-lb|2pl");
  flags.AddInt("seed", 1, "base RNG seed");
  flags.AddInt("seeds", 1,
               "replicas at seed, seed+1, ...; aggregates across seeds "
               "when > 1");
  flags.AddInt("jobs", 0,
               "replica worker threads (0 = WTPG_JOBS env or hardware "
               "concurrency); results are identical for any value");
  flags.AddBool("json", false, "print results as JSON");
  flags.AddString("log-level", "warning", "debug|info|warning|error");
  flags.AddBool("help", false, "print usage");
}

void AddTraceFlags(FlagParser& flags) {
  flags.AddString("trace-jsonl", "",
                  "record an event trace and write it as JSONL to this file");
  flags.AddString("trace-chrome", "",
                  "record an event trace and write Chrome trace-event JSON "
                  "(Perfetto-loadable) to this file");
  flags.AddInt("trace-capacity", 1 << 20,
               "trace ring-buffer capacity (most recent events kept)");
}

void AddTelemetryFlags(FlagParser& flags) {
  flags.AddDouble("telemetry-ms", 0.0,
                  "sample run-health gauges every this many sim-time ms "
                  "(0 = off); enables health.* detector counters");
  flags.AddInt("telemetry-capacity", 1 << 16,
               "telemetry ring capacity in rows (most recent kept)");
  flags.AddString("telemetry-csv", "",
                  "write the sampled gauge series as wide CSV to this file");
  flags.AddString("telemetry-jsonl", "",
                  "write the sampled gauge series as JSONL to this file");
}

void AddProgressFlags(FlagParser& flags) {
  flags.AddBool("progress", false,
                "show a replicas-completed status line on stderr (only when "
                "stderr is a TTY)");
  flags.AddBool("progress-force", false,
                "like --progress but writes even when stderr is not a TTY");
}

void ApplyProgressFlags(const FlagParser& flags) {
  if (flags.GetBool("progress-force")) {
    SetProgressMode(ProgressMode::kForce);
  } else if (flags.GetBool("progress")) {
    SetProgressMode(ProgressMode::kAuto);
  }
}

int HandleStandardFlags(FlagParser& flags, int argc,
                        const char* const* argv) {
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  LogLevel log_level;
  if (!ParseLogLevel(flags.GetString("log-level"), &log_level)) {
    std::fprintf(stderr, "unknown --log-level '%s'\n",
                 flags.GetString("log-level").c_str());
    return 2;
  }
  SetLogLevel(log_level);
  return -1;
}

}  // namespace wtpgsched
