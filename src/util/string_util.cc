#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace wtpgsched {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(result.data(), result.size(), fmt, args_copy);
    result.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return result;
}

std::string FormatDouble(double value, int precision) {
  return Format("%.*f", precision, value);
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace wtpgsched
