#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

namespace wtpgsched {
namespace {

// True when every character in [begin, end) is whitespace.
bool AllSpace(const char* begin, const char* end) {
  for (const char* p = begin; p != end; ++p) {
    if (!std::isspace(static_cast<unsigned char>(*p))) return false;
  }
  return true;
}

}  // namespace

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(result.data(), result.size(), fmt, args_copy);
    result.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return result;
}

std::string FormatDouble(double value, int precision) {
  return Format("%.*f", precision, value);
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      fields.push_back(s.substr(start));
      return fields;
    }
    fields.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseDouble(const std::string& s, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || errno == ERANGE) return false;
  if (!AllSpace(end, s.c_str() + s.size())) return false;
  *out = v;
  return true;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || errno == ERANGE) return false;
  if (!AllSpace(end, s.c_str() + s.size())) return false;
  if (v < std::numeric_limits<int64_t>::min() ||
      v > std::numeric_limits<int64_t>::max()) {
    return false;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

Status ParseDoubleList(const std::string& s, char sep,
                       std::vector<double>* out) {
  std::vector<double> values;
  const std::vector<std::string> fields = Split(s, sep);
  for (size_t i = 0; i < fields.size(); ++i) {
    // Stray separators ("0.2,,0.4" or a trailing comma) are tolerated so
    // existing invocations keep working; garbage is not.
    if (fields[i].empty() || AllSpace(fields[i].data(),
                                      fields[i].data() + fields[i].size())) {
      continue;
    }
    double v = 0.0;
    if (!ParseDouble(fields[i], &v)) {
      return Status::InvalidArgument(StrCat("token ", i + 1, ": '", fields[i],
                                            "' is not a number"));
    }
    values.push_back(v);
  }
  *out = std::move(values);
  return Status::Ok();
}

}  // namespace wtpgsched
