#ifndef WTPG_SCHED_UTIL_THREAD_POOL_H_
#define WTPG_SCHED_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wtpgsched {

// Fixed-size worker pool (queue + condition variable, no external deps) for
// fanning independent simulation replicas across cores. Tasks must not
// submit further tasks into the same pool; the experiment harness only ever
// submits a flat batch and waits for it.
//
// Determinism contract: the pool imposes no ordering — callers that need
// reproducible aggregates write each task's result into a slot keyed by
// submission index and reduce serially afterwards (see RunReplicas in
// driver/sim_run.h).
class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  // Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Never blocks on task execution.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Number of hardware threads, at least 1 (hardware_concurrency may
  // report 0 when unknown).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;  // Signals workers.
  std::condition_variable all_done_;        // Signals Wait().
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // Queued + currently executing tasks.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Runs `body(i)` for i in [0, n) on `jobs` workers (serially in the calling
// thread when jobs <= 1 or n <= 1) and returns when all iterations finished.
// Iterations must be independent.
void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& body);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_THREAD_POOL_H_
