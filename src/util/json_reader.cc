#include "util/json_reader.h"

#include <cctype>

#include "util/string_util.h"

namespace wtpgsched {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : items_) {
    if (name == key) return &value;
  }
  return nullptr;
}

// Recursive-descent parser over the whole document string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat("JSON parse error at offset ", pos_, ": ", message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            // \uXXXX: decode the BMP code point to UTF-8 (no surrogate
            // pairs — this library never writes them).
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad \\u escape digit");
            }
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return Error("unterminated string");
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type_ = JsonValue::Type::kString;
      return ParseString(&out->string_value_);
    }
    if (ConsumeLiteral("true")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_value_ = true;
      return Status::Ok();
    }
    if (ConsumeLiteral("false")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_value_ = false;
      return Status::Ok();
    }
    if (ConsumeLiteral("null")) {
      out->type_ = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    if (pos_ == start || !ParseDouble(text_.substr(start, pos_ - start),
                                      &value)) {
      return Error("bad number");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_value_ = value;
    return Status::Ok();
  }

  Status ParseObject(JsonValue* out) {
    Consume('{');
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      status = ParseValue(&value);
      if (!status.ok()) return status;
      out->items_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    Consume('[');
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      Status status = ParseValue(&value);
      if (!status.ok()) return status;
      out->elements_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace wtpgsched
