#include "util/csv.h"

#include <cstdio>

#include "util/string_util.h"

namespace wtpgsched {

CsvWriter::~CsvWriter() {
  // Best effort: abandoning a writer without Close() still publishes the
  // rows written so far (or loses them on rename failure, which a
  // destructor cannot report).
  (void)Close();
}

Status CsvWriter::Open(const std::string& path) {
  path_ = path;
  tmp_path_ = path + ".tmp";
  out_.open(tmp_path_, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::Internal(StrCat("cannot open ", tmp_path_, " for writing"));
  }
  return Status::Ok();
}

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) return;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
}

Status CsvWriter::Close() {
  if (!out_.is_open()) return Status::Ok();
  out_.flush();
  const bool good = out_.good();
  out_.close();
  if (!good) {
    std::remove(tmp_path_.c_str());
    return Status::Internal(StrCat("write to ", tmp_path_, " failed"));
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::Internal(
        StrCat("cannot rename ", tmp_path_, " to ", path_));
  }
  return Status::Ok();
}

}  // namespace wtpgsched
