#include "util/csv.h"

#include "util/string_util.h"

namespace wtpgsched {

Status CsvWriter::Open(const std::string& path) {
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::Internal(StrCat("cannot open ", path, " for writing"));
  }
  return Status::Ok();
}

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) return;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::Close() {
  if (out_.is_open()) out_.close();
}

}  // namespace wtpgsched
