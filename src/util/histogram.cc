#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace wtpgsched {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_ = false;
  sum_ += value;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    auto* self = const_cast<Histogram*>(this);
    std::sort(self->samples_.begin(), self->samples_.end());
    self->sorted_ = true;
  }
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::StdDev() const {
  if (samples_.empty()) return 0.0;
  const double n = static_cast<double>(samples_.size());
  const double mean = sum_ / n;
  // Two-pass over the retained samples: the textbook sum_sq/n - mean^2 form
  // cancels catastrophically for large-mean/small-variance streams (e.g.
  // responses near 1e8 s spread by 1e-3 lose every significant digit).
  double acc = 0.0;
  for (double v : samples_) {
    const double d = v - mean;
    acc += d * d;
  }
  const double var = acc / n;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  WTPG_CHECK_GE(p, 0.0);
  WTPG_CHECK_LE(p, 100.0);
  EnsureSorted();
  if (samples_.size() == 1) return samples_[0];
  // Linear interpolation between closest ranks.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
  sum_ = 0.0;
}

}  // namespace wtpgsched
