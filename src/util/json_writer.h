#ifndef WTPG_SCHED_UTIL_JSON_WRITER_H_
#define WTPG_SCHED_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wtpgsched {

// Tiny JSON object builder (strings, numbers, booleans, and nested
// objects/arrays via raw fragments) — enough for tooling output without a
// third-party dependency. Keys are emitted in insertion order.
class JsonWriter {
 public:
  JsonWriter& Add(const std::string& key, const std::string& value);
  JsonWriter& Add(const std::string& key, const char* value);
  JsonWriter& Add(const std::string& key, double value);
  JsonWriter& Add(const std::string& key, int64_t value);
  JsonWriter& Add(const std::string& key, uint64_t value);
  JsonWriter& Add(const std::string& key, int value);
  JsonWriter& Add(const std::string& key, bool value);
  // Adds a pre-serialized JSON fragment (object/array) verbatim.
  JsonWriter& AddRaw(const std::string& key, const std::string& json);

  // {"k":v,...}
  std::string ToString() const;

  static std::string Escape(const std::string& s);

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_JSON_WRITER_H_
