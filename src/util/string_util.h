#ifndef WTPG_SCHED_UTIL_STRING_UTIL_H_
#define WTPG_SCHED_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace wtpgsched {

// Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  if constexpr (sizeof...(args) == 0) {
    return std::string();
  } else {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
  }
}

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

// Left-pads / right-pads `s` with spaces to at least `width` characters.
std::string PadLeft(const std::string& s, size_t width);
std::string PadRight(const std::string& s, size_t width);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_STRING_UTIL_H_
