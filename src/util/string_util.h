#ifndef WTPG_SCHED_UTIL_STRING_UTIL_H_
#define WTPG_SCHED_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace wtpgsched {

// Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  if constexpr (sizeof...(args) == 0) {
    return std::string();
  } else {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
  }
}

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

// Left-pads / right-pads `s` with spaces to at least `width` characters.
std::string PadLeft(const std::string& s, size_t width);
std::string PadRight(const std::string& s, size_t width);

// Splits `s` on `sep`. Empty fields are kept ("a,,b" -> {"a", "", "b"});
// an empty input yields one empty field, matching the usual CSV reading.
std::vector<std::string> Split(const std::string& s, char sep);

// Strict whole-string numeric parsing (strtod / strtoll underneath, unlike
// atof/atoi which silently return 0 on garbage). Surrounding whitespace is
// allowed; empty strings, trailing junk ("1.5x", "0.2;0.4"), and
// out-of-range values fail. On failure `*out` is untouched.
bool ParseDouble(const std::string& s, double* out);
bool ParseInt64(const std::string& s, int64_t* out);

// Parses a `sep`-separated list of numbers ("0.2,0.4,1.2"). Every field
// must parse; the error names the offending token so callers can surface
// it ("--rates token 2: '0.4;0.6' is not a number").
Status ParseDoubleList(const std::string& s, char sep,
                       std::vector<double>* out);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_STRING_UTIL_H_
