#include "util/logging.h"

namespace wtpgsched {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal_logging
}  // namespace wtpgsched
