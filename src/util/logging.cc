#include "util/logging.h"

#include <atomic>
#include <cctype>

namespace wtpgsched {
namespace {

// Atomic so worker threads of the parallel experiment harness can log while
// a driver adjusts the level (relaxed: the level is a filter, not a fence).
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level.load(std::memory_order_relaxed)) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal_logging
}  // namespace wtpgsched
