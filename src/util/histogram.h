#ifndef WTPG_SCHED_UTIL_HISTOGRAM_H_
#define WTPG_SCHED_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wtpgsched {

// Streaming summary statistics plus exact percentiles (samples are retained;
// simulation runs produce at most a few thousand response times, so memory
// is a non-issue and exact quantiles beat bucketed approximations).
class Histogram {
 public:
  Histogram() = default;

  void Add(double value);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  // Population standard deviation.
  double StdDev() const;
  // Exact percentile in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  void Clear();

 private:
  // Sorts samples_ lazily; Add() invalidates the sorted flag.
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_HISTOGRAM_H_
