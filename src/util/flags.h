#ifndef WTPG_SCHED_UTIL_FLAGS_H_
#define WTPG_SCHED_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace wtpgsched {

// Minimal command-line flag parser for the tools (no third-party deps).
// Supports --name=value and --name value; bools accept --name /
// --name=true / --name=false. Unknown flags are errors; positional
// arguments are collected in order.
class FlagParser {
 public:
  FlagParser& AddString(const std::string& name, std::string default_value,
                        std::string help);
  FlagParser& AddInt(const std::string& name, int64_t default_value,
                     std::string help);
  FlagParser& AddDouble(const std::string& name, double default_value,
                        std::string help);
  FlagParser& AddBool(const std::string& name, bool default_value,
                      std::string help);

  // Parses argv (skipping argv[0]). On error returns InvalidArgument.
  Status Parse(int argc, const char* const* argv);

  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // True when the flag appeared on the command line (as opposed to holding
  // its default). Lets tools overlay explicit flags on a --config file.
  bool WasSet(const std::string& name) const;

  // Usage text listing all flags with defaults and help strings.
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    bool was_set = false;
  };

  Status SetValue(Flag* flag, const std::string& name,
                  const std::string& value);
  const Flag& Find(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_FLAGS_H_
