#ifndef WTPG_SCHED_UTIL_STATUS_H_
#define WTPG_SCHED_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace wtpgsched {

// Error handling in this library follows the RocksDB/Arrow convention: no
// exceptions; fallible operations return a Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

// A Status carries a code and, for errors, a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Minimal StatusOr: either an OK status with a value, or an error status.
// T need not be default-constructible. Accessing the value of an error
// StatusOr is undefined (CHECK ok() first).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_STATUS_H_
