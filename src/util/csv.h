#ifndef WTPG_SCHED_UTIL_CSV_H_
#define WTPG_SCHED_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace wtpgsched {

// Tiny CSV writer used by the experiment harness to dump series/tables for
// external plotting. Fields containing separators or quotes are quoted.
//
// Writes go through `path + ".tmp"` and are renamed onto `path` by Close(),
// so readers polling the output (plot watchers, sweep consumers) never see a
// partially written file; an interrupted run leaves the previous version
// intact.
class CsvWriter {
 public:
  CsvWriter() = default;
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  // Opens the temporary file for writing (truncating). Check Open()'s
  // status before use.
  Status Open(const std::string& path);

  // Writes one row. Each field is escaped as needed.
  void WriteRow(const std::vector<std::string>& fields);

  // Convenience: header row then delegates to WriteRow for data.
  void WriteHeader(const std::vector<std::string>& names) { WriteRow(names); }

  // Flushes, closes, and renames the temporary file into place. Returns an
  // error if the stream went bad or the rename failed (the temporary is
  // removed in that case). No-op when already closed.
  Status Close();

  bool is_open() const { return out_.is_open(); }

  static std::string Escape(const std::string& field);

 private:
  std::ofstream out_;
  std::string path_;
  std::string tmp_path_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_CSV_H_
