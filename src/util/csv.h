#ifndef WTPG_SCHED_UTIL_CSV_H_
#define WTPG_SCHED_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace wtpgsched {

// Tiny CSV writer used by the experiment harness to dump series/tables for
// external plotting. Fields containing separators or quotes are quoted.
class CsvWriter {
 public:
  // Opens `path` for writing (truncating). Check Open()'s status before use.
  CsvWriter() = default;

  Status Open(const std::string& path);

  // Writes one row. Each field is escaped as needed.
  void WriteRow(const std::vector<std::string>& fields);

  // Convenience: header row then delegates to WriteRow for data.
  void WriteHeader(const std::vector<std::string>& names) { WriteRow(names); }

  void Close();

  bool is_open() const { return out_.is_open(); }

  static std::string Escape(const std::string& field);

 private:
  std::ofstream out_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_CSV_H_
