#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace wtpgsched {
namespace {

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  WTPG_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // [INT64_MIN, INT64_MAX]: the full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  WTPG_CHECK_GT(mean, 0.0);
  double u = NextDouble();
  // Guard against log(0).
  while (u <= 0.0) u = NextDouble();
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace wtpgsched
