#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace wtpgsched {
namespace {

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  WTPG_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // [INT64_MIN, INT64_MAX]: the full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  WTPG_CHECK_GT(mean, 0.0);
  double u = NextDouble();
  // Guard against log(0).
  while (u <= 0.0) u = NextDouble();
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

namespace {

// log(1 + x) / x with the series fallback near 0.
double Helper1(double x) {
  return std::abs(x) > 1e-8 ? std::log1p(x) / x
                            : 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

// (e^x - 1) / x with the series fallback near 0.
double Helper2(double x) {
  return std::abs(x) > 1e-8
             ? std::expm1(x) / x
             : 1.0 + x * (0.5 + x * (1.0 / 6.0 + x * (1.0 / 24.0)));
}

}  // namespace

ZipfSampler::ZipfSampler(int64_t num_elements, double theta)
    : num_elements_(num_elements), theta_(theta) {
  WTPG_CHECK_GE(num_elements_, 1);
  WTPG_CHECK_GE(theta_, 0.0);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_num_elements_ =
      HIntegral(static_cast<double>(num_elements_) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - Hat(2.0));
}

// H(x) = (x^(1-theta) - 1) / (1 - theta), continued as log(x) at theta = 1.
double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - theta_) * log_x) * log_x;
}

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - theta_);
  // Guard the log1p domain against rounding below -1 for large negative x.
  if (t < -1.0) t = -1.0;
  return std::exp(Helper1(t) * x);
}

int64_t ZipfSampler::Sample(Rng* rng) const {
  if (num_elements_ == 1) return 0;
  if (theta_ == 0.0) return rng->UniformInt(0, num_elements_ - 1);
  while (true) {
    const double u =
        h_integral_num_elements_ +
        rng->NextDouble() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = HIntegralInverse(u);
    int64_t k = static_cast<int64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > num_elements_) {
      k = num_elements_;
    }
    // Accept when k is within the unnormalized-density envelope: either
    // directly (the cheap s-shortcut) or by the exact hat comparison.
    if (static_cast<double>(k) - x <= s_ ||
        u >= HIntegral(static_cast<double>(k) + 0.5) -
                 Hat(static_cast<double>(k))) {
      return k - 1;  // 1-based rank to 0-based.
    }
  }
}

}  // namespace wtpgsched
