#ifndef WTPG_SCHED_UTIL_JSON_READER_H_
#define WTPG_SCHED_UTIL_JSON_READER_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace wtpgsched {

// Parsed JSON value — the counterpart of util/json_writer, sized for the
// artifacts this library writes itself (config files, stats objects): full
// nesting, no streaming, keys kept in document order. Not a validating
// general-purpose parser; anything structurally malformed fails loudly.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_value_; }
  double number_value() const { return number_value_; }
  const std::string& string_value() const { return string_value_; }
  const std::vector<std::pair<std::string, JsonValue>>& items() const {
    return items_;
  }
  const std::vector<JsonValue>& elements() const { return elements_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_value_ = false;
  double number_value_ = 0.0;
  std::string string_value_;
  std::vector<std::pair<std::string, JsonValue>> items_;
  std::vector<JsonValue> elements_;
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage
// is an error).
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_JSON_READER_H_
