#ifndef WTPG_SCHED_UTIL_INPLACE_FUNCTION_H_
#define WTPG_SCHED_UTIL_INPLACE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace wtpgsched {

// A fixed-capacity, never-allocating replacement for std::function, built
// for the simulation kernel's event callbacks: every capture lives in the
// inline buffer, so scheduling an event performs zero heap allocations.
//
// The capture budget is enforced at compile time — a lambda that outgrows
// `Capacity` fails the static_assert at its construction site, naming the
// offending callback instead of silently falling back to the heap. Grow the
// callback's capacity (or shrink the capture) deliberately; never add a
// heap fallback, it would re-introduce the per-event allocation this type
// exists to remove.
//
// Move-only by design: the kernel moves callbacks from call sites into the
// event slab and out again on dispatch; nothing copies them. Moves must be
// noexcept so slab/vector growth can relocate records freely.
template <typename Signature, size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InplaceFunction>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "callable signature mismatch");
    static_assert(sizeof(Fn) <= Capacity,
                  "callback capture exceeds the inline budget — shrink the "
                  "capture or raise the call site's Capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callback capture over-aligned for the inline buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callback capture must be nothrow-movable");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::value;
  }

  InplaceFunction(InplaceFunction&& other) noexcept { MoveFrom(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*move_destroy)(void* dst, void* src);  // Move-construct, then destroy src.
    void (*destroy)(void*);
    // Trivially copyable + destructible callable: moves are a fixed-size
    // memcpy and destruction is a no-op, skipping the indirect calls. The
    // kernel's hot callbacks (pointer/id/double captures) are all trivial.
    bool trivial;
  };

  template <typename Fn>
  struct OpsFor {
    static R Invoke(void* storage, Args&&... args) {
      return (*static_cast<Fn*>(storage))(std::forward<Args>(args)...);
    }
    static void MoveDestroy(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) { static_cast<Fn*>(storage)->~Fn(); }
    static constexpr Ops value{&Invoke, &MoveDestroy, &Destroy,
                               std::is_trivially_copyable_v<Fn> &&
                                   std::is_trivially_destructible_v<Fn>};
  };

  void Reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void MoveFrom(InplaceFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->trivial) {
        std::memcpy(storage_, other.storage_, Capacity);
      } else {
        other.ops_->move_destroy(storage_, other.storage_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_INPLACE_FUNCTION_H_
