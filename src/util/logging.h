#ifndef WTPG_SCHED_UTIL_LOGGING_H_
#define WTPG_SCHED_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace wtpgsched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Parses "debug" / "info" / "warning" (or "warn") / "error",
// case-insensitively, into `out`. Returns false on anything else. CLI
// drivers use this for their --log-level flag.
bool ParseLogLevel(const std::string& name, LogLevel* out);

namespace internal_logging {

// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Like LogMessage but aborts the process on destruction. Used by CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator so it can swallow a stream expression.
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace wtpgsched

#define WTPG_LOG(level)                                            \
  ::wtpgsched::internal_logging::LogMessage(                       \
      ::wtpgsched::LogLevel::k##level, __FILE__, __LINE__)         \
      .stream()

// CHECK aborts with a message when the condition does not hold. Invariant
// violations in the simulator are programming errors, never data errors, so
// aborting is the right response (no exceptions in this codebase).
#define WTPG_CHECK(condition)                                               \
  (condition) ? (void)0                                                     \
              : ::wtpgsched::internal_logging::Voidify() &                  \
                    ::wtpgsched::internal_logging::FatalLogMessage(         \
                        __FILE__, __LINE__)                                 \
                        .stream()                                           \
                    << "Check failed: " #condition " "

#define WTPG_CHECK_EQ(a, b) WTPG_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define WTPG_CHECK_NE(a, b) WTPG_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define WTPG_CHECK_LT(a, b) WTPG_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define WTPG_CHECK_LE(a, b) WTPG_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define WTPG_CHECK_GT(a, b) WTPG_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define WTPG_CHECK_GE(a, b) WTPG_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // WTPG_SCHED_UTIL_LOGGING_H_
