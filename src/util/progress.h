#ifndef WTPG_SCHED_UTIL_PROGRESS_H_
#define WTPG_SCHED_UTIL_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace wtpgsched {

// Progress reporting policy for the replica harness. Off by default;
// kAuto writes only when stderr is a TTY (so redirected/CI output stays
// clean); kForce writes unconditionally (--progress-force, for piping
// through `tee` or testing).
enum class ProgressMode { kOff, kAuto, kForce };

// Process-wide progress mode, set once by flag handling in tools.
void SetProgressMode(ProgressMode mode);
ProgressMode GetProgressMode();

// True when the current mode and stderr's TTY-ness allow status output.
bool ProgressActive();

// A thread-safe stderr status line: "label: done/total (pct) elapsed ETA",
// rewritten in place via '\r' and erased on destruction so real output is
// never interleaved with a stale status line. Tick() is called from worker
// threads; rendering is throttled to ~10 Hz under a mutex, and the counter
// itself is a relaxed atomic so the harness hot path stays uncontended.
//
// Inert (all no-ops) when ProgressActive() is false at construction.
class ProgressMeter {
 public:
  ProgressMeter(std::string label, size_t total);
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  // Marks one work item complete.
  void Tick();

  size_t done() const { return done_.load(std::memory_order_relaxed); }

 private:
  void Render(bool final_line);

  const std::string label_;
  const size_t total_;
  const bool active_;
  std::atomic<size_t> done_{0};
  std::mutex render_mu_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_render_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_PROGRESS_H_
