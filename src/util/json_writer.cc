#include "util/json_writer.h"

#include <cmath>

#include "util/string_util.h"

namespace wtpgsched {

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::Add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, StrCat("\"", Escape(value), "\""));
  return *this;
}

JsonWriter& JsonWriter::Add(const std::string& key, const char* value) {
  return Add(key, std::string(value));
}

JsonWriter& JsonWriter::Add(const std::string& key, double value) {
  // JSON has no NaN/Inf; emit null for them.
  fields_.emplace_back(
      key, std::isfinite(value) ? Format("%.6g", value) : "null");
  return *this;
}

JsonWriter& JsonWriter::Add(const std::string& key, int64_t value) {
  fields_.emplace_back(key, StrCat(value));
  return *this;
}

JsonWriter& JsonWriter::Add(const std::string& key, uint64_t value) {
  fields_.emplace_back(key, StrCat(value));
  return *this;
}

JsonWriter& JsonWriter::Add(const std::string& key, int value) {
  return Add(key, static_cast<int64_t>(value));
}

JsonWriter& JsonWriter::Add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::AddRaw(const std::string& key,
                               const std::string& json) {
  fields_.emplace_back(key, json);
  return *this;
}

std::string JsonWriter::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += StrCat("\"", Escape(fields_[i].first), "\":", fields_[i].second);
  }
  out += "}";
  return out;
}

}  // namespace wtpgsched
