#ifndef WTPG_SCHED_UTIL_RANDOM_H_
#define WTPG_SCHED_UTIL_RANDOM_H_

#include <cstdint>

namespace wtpgsched {

// Deterministic, seedable PRNG (xoshiro256++). We avoid <random> engines so
// that simulation runs are bit-reproducible across standard library
// implementations — important for regression-testing experiment output.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  // Exponentially distributed with the given mean (> 0). Used for Poisson
  // inter-arrival times.
  double Exponential(double mean);

  // Normally distributed (Box-Muller) with the given mean / stddev.
  double Normal(double mean, double stddev);

  // Creates an independently-seeded child stream. Different workload
  // components draw from separate streams so that, e.g., adding a scheduler
  // cost does not perturb arrival times.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_RANDOM_H_
