#ifndef WTPG_SCHED_UTIL_RANDOM_H_
#define WTPG_SCHED_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace wtpgsched {

// Deterministic, seedable PRNG (xoshiro256++). We avoid <random> engines so
// that simulation runs are bit-reproducible across standard library
// implementations — important for regression-testing experiment output.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  // Exponentially distributed with the given mean (> 0). Used for Poisson
  // inter-arrival times.
  double Exponential(double mean);

  // Normally distributed (Box-Muller) with the given mean / stddev.
  double Normal(double mean, double stddev);

  // Creates an independently-seeded child stream. Different workload
  // components draw from separate streams so that, e.g., adding a scheduler
  // cost does not perturb arrival times.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Zipf(theta) sampler over ranks [0, num_elements) by rejection inversion
// (Hörmann & Derflinger). Rank 0 is the hottest element; P(rank k) is
// proportional to 1 / (k + 1)^theta. All state is a handful of constants
// precomputed from (num_elements, theta) at construction — O(1) memory
// regardless of the universe size (an alias table over 10M files would cost
// 160 MB per pattern variable), and O(1) expected draws per sample.
//
// The sampler is immutable after construction and carries no RNG of its
// own: every draw consumes the caller's Rng, so it composes with the
// repo's seed-fork determinism discipline (same Rng stream in, same rank
// sequence out) and is safe to share across replica worker threads.
class ZipfSampler {
 public:
  // `num_elements` >= 1; `theta` >= 0 (theta == 0 is the uniform
  // distribution, sampled exactly via Rng::UniformInt).
  ZipfSampler(int64_t num_elements, double theta);
  // Cheap placeholder (single element) so containers of samplers can be
  // built before the real parameters are known.
  ZipfSampler() : ZipfSampler(1, 0.0) {}

  // Draws one rank in [0, num_elements).
  int64_t Sample(Rng* rng) const;

  int64_t num_elements() const { return num_elements_; }
  double theta() const { return theta_; }

 private:
  // Integral of the dominating hat function h(x) = x^-theta (log at
  // theta == 1), and its inverse — evaluated in expm1/log1p form so the
  // theta -> 1 limit is seamless.
  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  double Hat(double x) const { return std::exp(-theta_ * std::log(x)); }

  int64_t num_elements_;
  double theta_;
  double h_integral_x1_;            // HIntegral(1.5) - 1.
  double h_integral_num_elements_;  // HIntegral(num_elements + 0.5).
  double s_;                        // Rejection shortcut threshold.
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_UTIL_RANDOM_H_
