#include "util/progress.h"

#include <unistd.h>

#include <cstdio>

#include "util/string_util.h"

namespace wtpgsched {

namespace {
ProgressMode g_mode = ProgressMode::kOff;

std::string FormatSeconds(double s) {
  if (s < 0.0) s = 0.0;
  const int total = static_cast<int>(s);
  if (total >= 3600) {
    return Format("%dh%02dm", total / 3600, (total % 3600) / 60);
  }
  if (total >= 60) return Format("%dm%02ds", total / 60, total % 60);
  return Format("%ds", total);
}
}  // namespace

void SetProgressMode(ProgressMode mode) { g_mode = mode; }

ProgressMode GetProgressMode() { return g_mode; }

bool ProgressActive() {
  switch (g_mode) {
    case ProgressMode::kOff:
      return false;
    case ProgressMode::kForce:
      return true;
    case ProgressMode::kAuto:
      return isatty(fileno(stderr)) != 0;
  }
  return false;
}

ProgressMeter::ProgressMeter(std::string label, size_t total)
    : label_(std::move(label)),
      total_(total),
      active_(ProgressActive() && total > 0),
      start_(std::chrono::steady_clock::now()),
      last_render_(start_) {}

ProgressMeter::~ProgressMeter() {
  if (!active_) return;
  Render(/*final_line=*/true);
  // Erase the status line so subsequent output starts on a clean line.
  std::fputs("\r\033[K", stderr);
  std::fflush(stderr);
}

void ProgressMeter::Tick() {
  const size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!active_) return;
  // Always render the final tick; throttle the rest to ~10 Hz.
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(render_mu_);
  if (done < total_ &&
      now - last_render_ < std::chrono::milliseconds(100)) {
    return;
  }
  last_render_ = now;
  Render(/*final_line=*/false);
}

void ProgressMeter::Render(bool final_line) {
  (void)final_line;
  const size_t done = done_.load(std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double pct =
      total_ == 0 ? 100.0
                  : 100.0 * static_cast<double>(done) /
                        static_cast<double>(total_);
  std::string line = StrCat("\r", label_, ": ", done, "/", total_, " (",
                            Format("%.0f", pct), "%) ",
                            FormatSeconds(elapsed));
  if (done > 0 && done < total_) {
    const double eta =
        elapsed / static_cast<double>(done) *
        static_cast<double>(total_ - done);
    line += StrCat(" eta ", FormatSeconds(eta));
  }
  line += "\033[K";  // Clear to end of line (shrinking ETA strings).
  std::fputs(line.c_str(), stderr);
  std::fflush(stderr);
}

}  // namespace wtpgsched
