#include "util/flags.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {

FlagParser& FlagParser::AddString(const std::string& name,
                                  std::string default_value,
                                  std::string help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = std::move(help);
  flag.string_value = std::move(default_value);
  flags_[name] = std::move(flag);
  return *this;
}

FlagParser& FlagParser::AddInt(const std::string& name, int64_t default_value,
                               std::string help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = std::move(help);
  flag.int_value = default_value;
  flags_[name] = std::move(flag);
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name,
                                  double default_value, std::string help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = std::move(help);
  flag.double_value = default_value;
  flags_[name] = std::move(flag);
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool default_value,
                                std::string help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = std::move(help);
  flag.bool_value = default_value;
  flags_[name] = std::move(flag);
  return *this;
}

Status FlagParser::SetValue(Flag* flag, const std::string& name,
                            const std::string& value) {
  switch (flag->type) {
    case Type::kString:
      flag->string_value = value;
      return Status::Ok();
    case Type::kInt: {
      if (!ParseInt64(value, &flag->int_value)) {
        return Status::InvalidArgument(
            StrCat("--", name, " expects an integer, got '", value, "'"));
      }
      return Status::Ok();
    }
    case Type::kDouble: {
      if (!ParseDouble(value, &flag->double_value)) {
        return Status::InvalidArgument(
            StrCat("--", name, " expects a number, got '", value, "'"));
      }
      return Status::Ok();
    }
    case Type::kBool:
      if (value == "true" || value == "1") {
        flag->bool_value = true;
      } else if (value == "false" || value == "0") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument(
            StrCat("--", name, " expects true/false, got '", value, "'"));
      }
      return Status::Ok();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument(StrCat("unknown flag --", name));
    }
    Flag* flag = &it->second;
    flag->was_set = true;
    if (!has_value) {
      if (flag->type == Type::kBool) {
        flag->bool_value = true;  // Bare --flag.
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument(StrCat("--", name, " needs a value"));
      }
      value = argv[++i];
    }
    Status status = SetValue(flag, name, value);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

const FlagParser::Flag& FlagParser::Find(const std::string& name,
                                         Type type) const {
  auto it = flags_.find(name);
  WTPG_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  WTPG_CHECK(it->second.type == type) << "flag --" << name << " type mismatch";
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return Find(name, Type::kString).string_value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return Find(name, Type::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return Find(name, Type::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return Find(name, Type::kBool).bool_value;
}

bool FlagParser::WasSet(const std::string& name) const {
  auto it = flags_.find(name);
  WTPG_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  return it->second.was_set;
}

std::string FlagParser::Help() const {
  std::string out = "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    std::string def;
    switch (flag.type) {
      case Type::kString:
        def = flag.string_value.empty() ? "\"\"" : flag.string_value;
        break;
      case Type::kInt:
        def = StrCat(flag.int_value);
        break;
      case Type::kDouble:
        def = FormatDouble(flag.double_value, 3);
        break;
      case Type::kBool:
        def = flag.bool_value ? "true" : "false";
        break;
    }
    out += StrCat("  --", PadRight(name, 20), " ", flag.help,
                  " (default: ", def, ")\n");
  }
  return out;
}

}  // namespace wtpgsched
