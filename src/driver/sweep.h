#ifndef WTPG_SCHED_DRIVER_SWEEP_H_
#define WTPG_SCHED_DRIVER_SWEEP_H_

#include <vector>

#include "driver/sim_run.h"
#include "machine/config.h"
#include "workload/pattern.h"

namespace wtpgsched {

// All entry points take a `jobs` worker count (0 = DefaultJobs()) and fan
// their independent replicas out through RunReplicas; results are
// bit-identical for any jobs value (see driver/sim_run.h).

// The operating point where a scheduler's mean response time reaches a
// target (the paper reads "throughput at Resp.Time = 70 sec" off the
// response-time curve).
struct OperatingPoint {
  double lambda_tps = 0.0;
  double mean_response_s = 0.0;
  double throughput_tps = 0.0;
  // Seeds behind the reported figures — also on the non-converged bracket
  // paths, which aggregate the same number of seeds as any other probe.
  int num_seeds = 0;
  // False when the target is not bracketed by [lo, hi] (the returned point
  // is then the closer bracket end).
  bool converged = false;
};

// Bisects arrival rate in [lo_tps, hi_tps] until mean response time is
// within `tol_s` of `target_s` (or `iters` halvings elapse). Response time
// is monotone (noisily) increasing in arrival rate. The two bracket probes
// run concurrently; within every probe the seeds fan out.
OperatingPoint FindRateForResponseTime(const SimConfig& base,
                                       const Pattern& pattern,
                                       double target_s, double lo_tps,
                                       double hi_tps, int num_seeds,
                                       int iters, double tol_s, int jobs = 0);

struct SweepPoint {
  double lambda_tps = 0.0;
  AggregateResult result;
};

// Runs the simulation at each arrival rate; all rate x seed replicas go
// through one batch.
std::vector<SweepPoint> SweepArrivalRates(const SimConfig& base,
                                          const Pattern& pattern,
                                          const std::vector<double>& rates,
                                          int num_seeds, int jobs = 0);

// C2PL+M: picks the MPL minimizing mean response time at the base arrival
// rate ("the best C2PL to control multi-programming level"). All MPL
// candidates are evaluated in one batch.
struct MplChoice {
  int mpl = 0;
  AggregateResult result;
};

MplChoice TuneMpl(const SimConfig& base, const Pattern& pattern,
                  const std::vector<int>& candidates, int num_seeds,
                  int jobs = 0);

// Default MPL candidate ladder for the tuner.
std::vector<int> DefaultMplCandidates();

// Fault-churn sweep: one data point per DPN mean-time-to-failure value
// (0 = fault-free baseline), with the rest of base.fault kept intact. All
// mttf x seed replicas go through one batch.
struct FaultSweepPoint {
  double mttf_ms = 0.0;
  AggregateResult result;
};

std::vector<FaultSweepPoint> SweepFaultRate(
    const SimConfig& base, const Pattern& pattern,
    const std::vector<double>& mttf_ms_values, int num_seeds, int jobs = 0);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_DRIVER_SWEEP_H_
