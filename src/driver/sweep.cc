#include "driver/sweep.h"

#include <cmath>

#include "util/logging.h"

namespace wtpgsched {

OperatingPoint FindRateForResponseTime(const SimConfig& base,
                                       const Pattern& pattern,
                                       double target_s, double lo_tps,
                                       double hi_tps, int num_seeds,
                                       int iters, double tol_s) {
  WTPG_CHECK_GT(lo_tps, 0.0);
  WTPG_CHECK_GT(hi_tps, lo_tps);

  auto evaluate = [&](double rate) {
    SimConfig config = base;
    config.arrival_rate_tps = rate;
    return RunAggregate(config, pattern, num_seeds);
  };

  OperatingPoint point;
  // Check the brackets first: the curve may sit entirely below or above the
  // target within [lo, hi].
  AggregateResult at_hi = evaluate(hi_tps);
  if (at_hi.mean_response_s <= target_s) {
    point.lambda_tps = hi_tps;
    point.mean_response_s = at_hi.mean_response_s;
    point.throughput_tps = at_hi.throughput_tps;
    point.converged = false;
    return point;
  }
  AggregateResult at_lo = evaluate(lo_tps);
  if (at_lo.mean_response_s >= target_s) {
    point.lambda_tps = lo_tps;
    point.mean_response_s = at_lo.mean_response_s;
    point.throughput_tps = at_lo.throughput_tps;
    point.converged = false;
    return point;
  }

  double lo = lo_tps;
  double hi = hi_tps;
  AggregateResult best = at_lo;
  double best_rate = lo_tps;
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    const AggregateResult at_mid = evaluate(mid);
    if (std::abs(at_mid.mean_response_s - target_s) <
        std::abs(best.mean_response_s - target_s)) {
      best = at_mid;
      best_rate = mid;
    }
    if (std::abs(at_mid.mean_response_s - target_s) <= tol_s) break;
    if (at_mid.mean_response_s < target_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  point.lambda_tps = best_rate;
  point.mean_response_s = best.mean_response_s;
  point.throughput_tps = best.throughput_tps;
  point.converged = true;
  return point;
}

std::vector<SweepPoint> SweepArrivalRates(const SimConfig& base,
                                          const Pattern& pattern,
                                          const std::vector<double>& rates,
                                          int num_seeds) {
  std::vector<SweepPoint> points;
  points.reserve(rates.size());
  for (double rate : rates) {
    SimConfig config = base;
    config.arrival_rate_tps = rate;
    points.push_back(SweepPoint{rate, RunAggregate(config, pattern, num_seeds)});
  }
  return points;
}

MplChoice TuneMpl(const SimConfig& base, const Pattern& pattern,
                  const std::vector<int>& candidates, int num_seeds) {
  WTPG_CHECK(!candidates.empty());
  MplChoice best;
  bool first = true;
  for (int mpl : candidates) {
    SimConfig config = base;
    config.mpl = mpl;
    const AggregateResult result = RunAggregate(config, pattern, num_seeds);
    if (first || result.mean_response_s < best.result.mean_response_s) {
      best.mpl = mpl;
      best.result = result;
      first = false;
    }
  }
  return best;
}

std::vector<int> DefaultMplCandidates() {
  return {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
}

}  // namespace wtpgsched
