#include "driver/sweep.h"

#include <cmath>

#include "util/logging.h"

namespace wtpgsched {

OperatingPoint FindRateForResponseTime(const SimConfig& base,
                                       const Pattern& pattern,
                                       double target_s, double lo_tps,
                                       double hi_tps, int num_seeds,
                                       int iters, double tol_s, int jobs) {
  WTPG_CHECK_GT(lo_tps, 0.0);
  WTPG_CHECK_GT(hi_tps, lo_tps);

  auto at_rate = [&](double rate) {
    SimConfig config = base;
    config.workload.arrival_rate_tps = rate;
    return config;
  };
  auto evaluate = [&](double rate) {
    return RunAggregate(at_rate(rate), pattern, num_seeds, jobs);
  };
  auto fill = [&](OperatingPoint* point, double rate,
                  const AggregateResult& at) {
    point->lambda_tps = rate;
    point->mean_response_s = at.mean_response_s;
    point->throughput_tps = at.throughput_tps;
    point->num_seeds = at.num_seeds;
  };

  OperatingPoint point;
  // Check the brackets first: the curve may sit entirely below or above the
  // target within [lo, hi]. Both ends are independent, so they evaluate as
  // one batch (seeds within each probe fan out too).
  const std::vector<AggregateResult> brackets =
      RunAggregates({at_rate(hi_tps), at_rate(lo_tps)}, pattern, num_seeds,
                    jobs);
  const AggregateResult& at_hi = brackets[0];
  const AggregateResult& at_lo = brackets[1];
  if (at_hi.mean_response_s <= target_s) {
    fill(&point, hi_tps, at_hi);
    point.converged = false;
    return point;
  }
  if (at_lo.mean_response_s >= target_s) {
    fill(&point, lo_tps, at_lo);
    point.converged = false;
    return point;
  }

  double lo = lo_tps;
  double hi = hi_tps;
  AggregateResult best = at_lo;
  double best_rate = lo_tps;
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    const AggregateResult at_mid = evaluate(mid);
    if (std::abs(at_mid.mean_response_s - target_s) <
        std::abs(best.mean_response_s - target_s)) {
      best = at_mid;
      best_rate = mid;
    }
    if (std::abs(at_mid.mean_response_s - target_s) <= tol_s) break;
    if (at_mid.mean_response_s < target_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  fill(&point, best_rate, best);
  // Converged means the best probe actually landed within tolerance — not
  // merely that the bisection ran out of iterations. An exhausted budget
  // with every probe outside tol_s must report converged == false, or
  // callers (FindRt70, --mode=rt-target) would treat an unconverged rate as
  // the paper's operating point.
  point.converged = std::abs(best.mean_response_s - target_s) <= tol_s;
  return point;
}

std::vector<SweepPoint> SweepArrivalRates(const SimConfig& base,
                                          const Pattern& pattern,
                                          const std::vector<double>& rates,
                                          int num_seeds, int jobs) {
  std::vector<SimConfig> bases;
  bases.reserve(rates.size());
  for (double rate : rates) {
    SimConfig config = base;
    config.workload.arrival_rate_tps = rate;
    bases.push_back(config);
  }
  const std::vector<AggregateResult> results =
      RunAggregates(bases, pattern, num_seeds, jobs);
  std::vector<SweepPoint> points;
  points.reserve(rates.size());
  for (size_t i = 0; i < rates.size(); ++i) {
    points.push_back(SweepPoint{rates[i], results[i]});
  }
  return points;
}

MplChoice TuneMpl(const SimConfig& base, const Pattern& pattern,
                  const std::vector<int>& candidates, int num_seeds,
                  int jobs) {
  WTPG_CHECK(!candidates.empty());
  std::vector<SimConfig> bases;
  bases.reserve(candidates.size());
  for (int mpl : candidates) {
    SimConfig config = base;
    config.machine.mpl = mpl;
    bases.push_back(config);
  }
  const std::vector<AggregateResult> results =
      RunAggregates(bases, pattern, num_seeds, jobs);
  MplChoice best;
  bool first = true;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (first || results[i].mean_response_s < best.result.mean_response_s) {
      best.mpl = candidates[i];
      best.result = results[i];
      first = false;
    }
  }
  return best;
}

std::vector<int> DefaultMplCandidates() {
  return {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
}

std::vector<FaultSweepPoint> SweepFaultRate(
    const SimConfig& base, const Pattern& pattern,
    const std::vector<double>& mttf_ms_values, int num_seeds, int jobs) {
  std::vector<SimConfig> bases;
  bases.reserve(mttf_ms_values.size());
  for (double mttf_ms : mttf_ms_values) {
    SimConfig config = base;
    config.fault.dpn_mttf_ms = mttf_ms;
    bases.push_back(config);
  }
  const std::vector<AggregateResult> results =
      RunAggregates(bases, pattern, num_seeds, jobs);
  std::vector<FaultSweepPoint> points;
  points.reserve(mttf_ms_values.size());
  for (size_t i = 0; i < mttf_ms_values.size(); ++i) {
    points.push_back(FaultSweepPoint{mttf_ms_values[i], results[i]});
  }
  return points;
}

}  // namespace wtpgsched
