#ifndef WTPG_SCHED_DRIVER_REPORT_H_
#define WTPG_SCHED_DRIVER_REPORT_H_

#include <iostream>
#include <string>
#include <vector>

#include "util/csv.h"

namespace wtpgsched {

// Fixed-width ASCII table printer for the bench binaries' paper-style
// output; optionally mirrors rows into a CSV file for plotting.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);

  // Writes the table to `out` with aligned columns.
  void Print(std::ostream& out = std::cout) const;

  // Writes header + rows as CSV.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting mirroring the paper's tables.
std::string FmtTps(double tps);      // 2 decimals.
std::string FmtSeconds(double s);    // 0 decimals >= 100, else 1.
std::string FmtSpeedup(double x);    // 2 decimals.
std::string FmtPercent(double frac); // "95%".

// Prints a section banner.
void PrintBanner(const std::string& title, std::ostream& out = std::cout);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_DRIVER_REPORT_H_
