#ifndef WTPG_SCHED_DRIVER_SIM_RUN_H_
#define WTPG_SCHED_DRIVER_SIM_RUN_H_

#include "machine/config.h"
#include "metrics/stats.h"
#include "workload/pattern.h"

namespace wtpgsched {

// Runs one simulation with the given configuration and workload pattern.
RunStats RunSimulation(const SimConfig& config, const Pattern& pattern);

// Cross-seed aggregate of the figures the experiments report. Seeds are
// config.seed, config.seed + 1, ... (common random numbers across
// schedulers at equal seeds).
struct AggregateResult {
  double mean_response_s = 0.0;
  double throughput_tps = 0.0;
  double completions = 0.0;
  double restarts = 0.0;
  double blocked = 0.0;
  double delayed = 0.0;
  double start_rejections = 0.0;
  double cn_utilization = 0.0;
  double mean_dpn_utilization = 0.0;
  int num_seeds = 0;
};

AggregateResult RunAggregate(SimConfig config, const Pattern& pattern,
                             int num_seeds);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_DRIVER_SIM_RUN_H_
