#ifndef WTPG_SCHED_DRIVER_SIM_RUN_H_
#define WTPG_SCHED_DRIVER_SIM_RUN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "machine/config.h"
#include "metrics/stats.h"
#include "workload/pattern.h"
#include "workload/workload.h"

namespace wtpgsched {

// Runs one simulation with the given configuration and workload pattern.
RunStats RunSimulation(const SimConfig& config, const Pattern& pattern);
// Mixed-workload variant (each replica instantiates its own copy of `mix`).
RunStats RunSimulation(const SimConfig& config,
                       const std::vector<WeightedPattern>& mix);

// --- Parallel replica fan-out ---------------------------------------------
//
// Every experiment is a batch of *independent* replicas — (scheduler, rate /
// MPL / DD, seed) triples — so the harness fans Machine::Run() calls out to
// a fixed worker pool and reduces the results in submission order.
//
// Determinism contract: for any `jobs` value the output is bit-identical to
// the serial path. Each replica's Machine is fully self-contained (own RNG
// streams, StatsCollector, CounterRegistry, trace recorder), each worker
// writes its RunStats into a slot keyed by submission index, and the
// reduction is a serial left-to-right walk over those slots — floating-point
// summation order, counter registration order, and per-replica seeds
// (config.run.seed + replica index) never depend on the worker count.

// Worker count for batch runs: `jobs` >= 1 is used as-is; 0 (the default
// everywhere) resolves to DefaultJobs().
int ResolveJobs(int jobs);

// WTPG_JOBS environment override when set (>= 1; garbage is reported and
// ignored), otherwise the hardware thread count.
int DefaultJobs();

// Runs one replica per config, `jobs` at a time, and returns their stats in
// input order.
std::vector<RunStats> RunReplicas(const std::vector<SimConfig>& configs,
                                  const Pattern& pattern, int jobs = 0);
std::vector<RunStats> RunReplicas(const std::vector<SimConfig>& configs,
                                  const std::vector<WeightedPattern>& mix,
                                  int jobs = 0);

// Cross-seed aggregate of the figures the experiments report. Seeds are
// config.run.seed, config.run.seed + 1, ... (common random numbers across
// schedulers at equal seeds).
struct AggregateResult {
  double mean_response_s = 0.0;
  double throughput_tps = 0.0;
  double completions = 0.0;
  double restarts = 0.0;
  double blocked = 0.0;
  double delayed = 0.0;
  double start_rejections = 0.0;
  double cn_utilization = 0.0;
  double mean_dpn_utilization = 0.0;
  int num_seeds = 0;

  // Tail-latency aggregate (run.tail_metrics replicas only; gates the extra
  // JSON fields so default-mode output stays byte-identical to the goldens).
  // Percentiles are per-replica percentiles averaged across seeds.
  bool tail_metrics = false;
  double p50_response_s = 0.0;
  double p95_response_s = 0.0;
  double p99_response_s = 0.0;

  // Per-workload-class aggregate, ascending by class index. `completions`
  // is the per-seed average (matching `completions` above); percentiles are
  // averaged over the seeds in which the class completed at least once.
  struct ClassAgg {
    int workload_class = 0;
    double completions = 0.0;
    double mean_response_s = 0.0;
    double p50_response_s = 0.0;
    double p95_response_s = 0.0;
    double p99_response_s = 0.0;
  };
  std::vector<ClassAgg> per_class;

  // Full counter registries of the replicas, summed (not averaged) in
  // submission order — names register in first-appearance order, so this is
  // reproducible for any worker count.
  std::vector<std::pair<std::string, uint64_t>> counters;

  // One-line JSON object with every field (used by tooling and by the
  // jobs=1 vs jobs=N byte-identity tests).
  std::string ToJson() const;
};

AggregateResult RunAggregate(SimConfig config, const Pattern& pattern,
                             int num_seeds, int jobs = 0);
AggregateResult RunAggregate(SimConfig config,
                             const std::vector<WeightedPattern>& mix,
                             int num_seeds, int jobs = 0);

// Expands each base config into `num_seeds` replicas (seed = base.run.seed + i),
// runs the whole batch through one pool, and reduces per base. Equivalent to
// calling RunAggregate per base, but a single fan-out keeps all cores busy
// across the entire rate x seed (or MPL x seed) grid.
std::vector<AggregateResult> RunAggregates(const std::vector<SimConfig>& bases,
                                           const Pattern& pattern,
                                           int num_seeds, int jobs = 0);
std::vector<AggregateResult> RunAggregates(
    const std::vector<SimConfig>& bases,
    const std::vector<WeightedPattern>& mix, int num_seeds, int jobs = 0);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_DRIVER_SIM_RUN_H_
