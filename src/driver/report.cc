#include "driver/report.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  WTPG_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << PadLeft(row[c], widths[c]) << " |";
    }
    out << "\n";
  };
  print_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  CsvWriter writer;
  Status status = writer.Open(path);
  if (!status.ok()) return status;
  writer.WriteHeader(headers_);
  for (const auto& row : rows_) writer.WriteRow(row);
  return writer.Close();
}

std::string FmtTps(double tps) { return FormatDouble(tps, 2); }

std::string FmtSeconds(double s) {
  return s >= 100.0 ? FormatDouble(s, 0) : FormatDouble(s, 1);
}

std::string FmtSpeedup(double x) { return FormatDouble(x, 2); }

std::string FmtPercent(double frac) {
  return StrCat(FormatDouble(frac * 100.0, 1), "%");
}

void PrintBanner(const std::string& title, std::ostream& out) {
  out << "\n=== " << title << " ===\n";
}

}  // namespace wtpgsched
