#include "driver/sim_run.h"

#include <cstdlib>
#include <map>

#include "machine/machine.h"
#include "metrics/counters.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/progress.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace wtpgsched {
namespace {

// Serial left-to-right reduction over replica stats; the accumulation order
// is the submission order regardless of which worker ran which replica, so
// the result is bit-identical to the serial path.
AggregateResult Reduce(const std::vector<RunStats>& replicas) {
  AggregateResult agg;
  agg.num_seeds = static_cast<int>(replicas.size());
  CounterRegistry merged;
  // Per-class accumulation: std::map keeps classes in ascending index order
  // regardless of which replicas reported which classes.
  struct ClassAcc {
    AggregateResult::ClassAgg sums;
    int present = 0;  // Replicas with >= 1 completion of this class.
  };
  std::map<int, ClassAcc> classes;
  for (const RunStats& stats : replicas) {
    agg.mean_response_s += stats.mean_response_s;
    agg.throughput_tps += stats.throughput_tps;
    agg.completions += static_cast<double>(stats.completions_measured);
    agg.restarts += static_cast<double>(stats.restarts);
    agg.blocked += static_cast<double>(stats.blocked);
    agg.delayed += static_cast<double>(stats.delayed);
    agg.start_rejections += static_cast<double>(stats.start_rejections);
    agg.cn_utilization += stats.cn_utilization;
    agg.mean_dpn_utilization += stats.mean_dpn_utilization;
    agg.tail_metrics = agg.tail_metrics || stats.tail_metrics;
    agg.p50_response_s += stats.median_response_s;
    agg.p95_response_s += stats.p95_response_s;
    agg.p99_response_s += stats.p99_response_s;
    for (const RunStats::ClassStats& cs : stats.per_class) {
      ClassAcc& acc = classes[cs.workload_class];
      acc.sums.completions += static_cast<double>(cs.completions);
      acc.sums.mean_response_s += cs.mean_response_s;
      acc.sums.p50_response_s += cs.median_response_s;
      acc.sums.p95_response_s += cs.p95_response_s;
      acc.sums.p99_response_s += cs.p99_response_s;
      acc.present += 1;
    }
    merged.Merge(stats.counters);
  }
  const double n = static_cast<double>(replicas.size());
  agg.mean_response_s /= n;
  agg.throughput_tps /= n;
  agg.completions /= n;
  agg.restarts /= n;
  agg.blocked /= n;
  agg.delayed /= n;
  agg.start_rejections /= n;
  agg.cn_utilization /= n;
  agg.mean_dpn_utilization /= n;
  agg.p50_response_s /= n;
  agg.p95_response_s /= n;
  agg.p99_response_s /= n;
  for (auto& [workload_class, acc] : classes) {
    AggregateResult::ClassAgg out = acc.sums;
    out.workload_class = workload_class;
    out.completions /= n;
    const double present = static_cast<double>(acc.present);
    out.mean_response_s /= present;
    out.p50_response_s /= present;
    out.p95_response_s /= present;
    out.p99_response_s /= present;
    agg.per_class.push_back(out);
  }
  agg.counters = merged.Entries();
  return agg;
}

// RunReplicas / RunAggregates over either workload spelling (single pattern
// or weighted mix), parameterized on the per-replica machine builder.
template <typename Workload>
std::vector<RunStats> RunReplicasImpl(const std::vector<SimConfig>& configs,
                                      const Workload& workload, int jobs) {
  std::vector<RunStats> results(configs.size());
  const int workers = ResolveJobs(jobs);
  // Inert unless a tool enabled --progress (and stderr is a TTY or the
  // mode is forced); see util/progress.h.
  ProgressMeter progress("replicas", configs.size());
  ParallelFor(workers, configs.size(), [&](size_t i) {
    Machine machine(configs[i], workload);
    results[i] = machine.Run();
    progress.Tick();
  });
  return results;
}

template <typename Workload>
std::vector<AggregateResult> RunAggregatesImpl(
    const std::vector<SimConfig>& bases, const Workload& workload,
    int num_seeds, int jobs) {
  WTPG_CHECK_GE(num_seeds, 1);
  std::vector<SimConfig> replicas;
  replicas.reserve(bases.size() * static_cast<size_t>(num_seeds));
  for (const SimConfig& base : bases) {
    for (int i = 0; i < num_seeds; ++i) {
      SimConfig config = base;
      config.run.seed = base.run.seed + static_cast<uint64_t>(i);
      replicas.push_back(config);
    }
  }
  const std::vector<RunStats> stats =
      RunReplicasImpl(replicas, workload, jobs);
  std::vector<AggregateResult> results;
  results.reserve(bases.size());
  for (size_t b = 0; b < bases.size(); ++b) {
    const auto first = stats.begin() + static_cast<ptrdiff_t>(b) * num_seeds;
    results.push_back(Reduce({first, first + num_seeds}));
  }
  return results;
}

}  // namespace

RunStats RunSimulation(const SimConfig& config, const Pattern& pattern) {
  Machine machine(config, pattern);
  return machine.Run();
}

RunStats RunSimulation(const SimConfig& config,
                       const std::vector<WeightedPattern>& mix) {
  Machine machine(config, mix);
  return machine.Run();
}

int DefaultJobs() {
  static const int jobs = [] {
    const char* env = std::getenv("WTPG_JOBS");
    if (env != nullptr && env[0] != '\0') {
      int64_t value = 0;
      if (ParseInt64(env, &value) && value >= 1) {
        return static_cast<int>(value);
      }
      WTPG_LOG(Warning) << "WTPG_JOBS='" << env
                        << "' is not a positive integer; using hardware "
                           "concurrency";
    }
    return ThreadPool::HardwareThreads();
  }();
  return jobs;
}

int ResolveJobs(int jobs) { return jobs >= 1 ? jobs : DefaultJobs(); }

std::vector<RunStats> RunReplicas(const std::vector<SimConfig>& configs,
                                  const Pattern& pattern, int jobs) {
  return RunReplicasImpl(configs, pattern, jobs);
}

std::vector<RunStats> RunReplicas(const std::vector<SimConfig>& configs,
                                  const std::vector<WeightedPattern>& mix,
                                  int jobs) {
  return RunReplicasImpl(configs, mix, jobs);
}

AggregateResult RunAggregate(SimConfig config, const Pattern& pattern,
                             int num_seeds, int jobs) {
  return RunAggregates({config}, pattern, num_seeds, jobs).front();
}

AggregateResult RunAggregate(SimConfig config,
                             const std::vector<WeightedPattern>& mix,
                             int num_seeds, int jobs) {
  return RunAggregates({config}, mix, num_seeds, jobs).front();
}

std::vector<AggregateResult> RunAggregates(const std::vector<SimConfig>& bases,
                                           const Pattern& pattern,
                                           int num_seeds, int jobs) {
  return RunAggregatesImpl(bases, pattern, num_seeds, jobs);
}

std::vector<AggregateResult> RunAggregates(
    const std::vector<SimConfig>& bases,
    const std::vector<WeightedPattern>& mix, int num_seeds, int jobs) {
  return RunAggregatesImpl(bases, mix, num_seeds, jobs);
}

std::string AggregateResult::ToJson() const {
  JsonWriter json;
  json.Add("num_seeds", num_seeds)
      .Add("mean_response_s", mean_response_s)
      .Add("throughput_tps", throughput_tps)
      .Add("completions", completions)
      .Add("restarts", restarts)
      .Add("blocked", blocked)
      .Add("delayed", delayed)
      .Add("start_rejections", start_rejections)
      .Add("cn_utilization", cn_utilization)
      .Add("mean_dpn_utilization", mean_dpn_utilization);
  // Tail block is opt-in (run.tail_metrics): default-mode JSON — and the
  // kernel-invariance goldens pinned to it — is unchanged.
  if (tail_metrics) {
    json.Add("p50_response_s", p50_response_s)
        .Add("p95_response_s", p95_response_s)
        .Add("p99_response_s", p99_response_s);
    for (const ClassAgg& cs : per_class) {
      const std::string prefix = StrCat("class", cs.workload_class, ".");
      json.Add(StrCat(prefix, "completions"), cs.completions)
          .Add(StrCat(prefix, "mean_s"), cs.mean_response_s)
          .Add(StrCat(prefix, "p50_s"), cs.p50_response_s)
          .Add(StrCat(prefix, "p95_s"), cs.p95_response_s)
          .Add(StrCat(prefix, "p99_s"), cs.p99_response_s);
    }
  }
  for (const auto& [name, value] : counters) {
    json.Add(StrCat("counters.", name), value);
  }
  return json.ToString();
}

}  // namespace wtpgsched
