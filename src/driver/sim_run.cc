#include "driver/sim_run.h"

#include "machine/machine.h"
#include "util/logging.h"

namespace wtpgsched {

RunStats RunSimulation(const SimConfig& config, const Pattern& pattern) {
  Machine machine(config, pattern);
  return machine.Run();
}

AggregateResult RunAggregate(SimConfig config, const Pattern& pattern,
                             int num_seeds) {
  WTPG_CHECK_GE(num_seeds, 1);
  AggregateResult agg;
  agg.num_seeds = num_seeds;
  const uint64_t base_seed = config.seed;
  for (int i = 0; i < num_seeds; ++i) {
    config.seed = base_seed + static_cast<uint64_t>(i);
    const RunStats stats = RunSimulation(config, pattern);
    agg.mean_response_s += stats.mean_response_s;
    agg.throughput_tps += stats.throughput_tps;
    agg.completions += static_cast<double>(stats.completions_measured);
    agg.restarts += static_cast<double>(stats.restarts);
    agg.blocked += static_cast<double>(stats.blocked);
    agg.delayed += static_cast<double>(stats.delayed);
    agg.start_rejections += static_cast<double>(stats.start_rejections);
    agg.cn_utilization += stats.cn_utilization;
    agg.mean_dpn_utilization += stats.mean_dpn_utilization;
  }
  const double n = static_cast<double>(num_seeds);
  agg.mean_response_s /= n;
  agg.throughput_tps /= n;
  agg.completions /= n;
  agg.restarts /= n;
  agg.blocked /= n;
  agg.delayed /= n;
  agg.start_rejections /= n;
  agg.cn_utilization /= n;
  agg.mean_dpn_utilization /= n;
  return agg;
}

}  // namespace wtpgsched
