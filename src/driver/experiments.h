#ifndef WTPG_SCHED_DRIVER_EXPERIMENTS_H_
#define WTPG_SCHED_DRIVER_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "driver/sim_run.h"
#include "driver/sweep.h"
#include "machine/config.h"
#include "workload/openworld.h"
#include "workload/pattern.h"

namespace wtpgsched {

// Shared definitions for the experiment (bench) binaries reproducing the
// paper's Section 5. Each bench regenerates one table or figure; the pieces
// they share — scheduler line-up, Table-1 base configuration, the
// RT = 70 s operating-point search — live here.

// The six schedulers in the paper's reporting order:
// NODC, ASL, GOW, LOW, C2PL, OPT.
std::vector<SchedulerKind> PaperSchedulers();

// Short label matching the paper's tables (LOW means LOW with K=2).
std::string SchedulerLabel(SchedulerKind kind);

// Table-1 configuration for one scheduler; experiments override num_files,
// dd, arrival rate and sigma as needed.
SimConfig MakeConfig(SchedulerKind kind, int num_files, int dd,
                     double arrival_rate_tps, double error_sigma = 0.0);

// Effort knobs, overridable via environment variables:
//   WTPG_SEEDS     seeds per data point          (default 1, as the paper)
//   WTPG_RT_ITERS  bisection iterations          (default 9)
//   WTPG_RT_TOL    bisection tolerance, seconds  (default 2.5)
//   WTPG_HORIZON_MS simulation horizon           (default 2,000,000)
//   WTPG_CSV_DIR   CSV output directory          (default "results")
//   WTPG_JOBS      replica worker threads        (default: hardware)
//   WTPG_FAST=1    quick mode: 1 seed, 6 iters, 500k ms horizon
// Malformed numeric values are reported (warning log) and the default kept,
// instead of atoi-style silent zeroes.
struct BenchOptions {
  int seeds = 1;  // The paper reports single runs; raise via WTPG_SEEDS.
  int rt_iters = 9;
  double rt_tol_s = 2.5;
  double horizon_ms = 2'000'000;
  std::string csv_dir = "results";
  // Worker threads for the replica fan-out (0 = DefaultJobs(): WTPG_JOBS
  // env or hardware concurrency). Results are identical for any value.
  int jobs = 0;
};

BenchOptions GetBenchOptions();

// Ensures options.csv_dir exists and returns "<dir>/<name>.csv"; empty
// string when CSV output is disabled.
std::string CsvPath(const BenchOptions& options, const std::string& name);

// The response-time target the paper's throughput tables use.
inline constexpr double kRtTargetSeconds = 70.0;
// Arrival-rate bracket for the operating-point search (the paper sweeps
// lambda in [0, 1.4] TPS).
inline constexpr double kLambdaLo = 0.05;
inline constexpr double kLambdaHi = 1.6;

// Throughput at mean response time = 70 s for one scheduler/configuration.
OperatingPoint FindRt70(SchedulerKind kind, int num_files, int dd,
                        const Pattern& pattern, const BenchOptions& options,
                        double error_sigma = 0.0);

// Mean response time at a fixed arrival rate.
AggregateResult RunAtRate(SchedulerKind kind, int num_files, int dd,
                          double arrival_rate_tps, const Pattern& pattern,
                          const BenchOptions& options,
                          double error_sigma = 0.0);

// C2PL+M at a fixed arrival rate: C2PL with the MPL tuned for best mean
// response time.
MplChoice RunC2plMAtRate(int num_files, int dd, double arrival_rate_tps,
                         const Pattern& pattern, const BenchOptions& options,
                         double error_sigma = 0.0);

// Open-world production tier (workload/openworld.h): the two-class Zipf mix
// at a fixed arrival rate for every paper scheduler, with tail metrics on
// (sketch mode selectable) and batch admission control when batch_mpl > 0.
// One RunAggregates batch — all scheduler x seed replicas fan out together.
// Results are in PaperSchedulers() order.
struct OpenWorldRun {
  SchedulerKind kind = SchedulerKind::kLow;
  AggregateResult result;
};
std::vector<OpenWorldRun> RunOpenWorld(const OpenWorldSpec& spec,
                                       double arrival_rate_tps, int batch_mpl,
                                       bool sketch,
                                       const BenchOptions& options);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_DRIVER_EXPERIMENTS_H_
