#include "driver/experiments.h"

#include <cstdlib>
#include <filesystem>

#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {
namespace {

// Env lookups with strict parsing: a malformed value is reported and the
// fallback kept (atof/atoi would silently turn "1e" or "fast" into 0 and
// quietly wreck a sweep).
double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  double parsed = 0.0;
  if (!ParseDouble(value, &parsed)) {
    WTPG_LOG(Warning) << name << "='" << value
                      << "' is not a number; using default " << fallback;
    return fallback;
  }
  return parsed;
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int64_t parsed = 0;
  if (!ParseInt64(value, &parsed)) {
    WTPG_LOG(Warning) << name << "='" << value
                      << "' is not an integer; using default " << fallback;
    return fallback;
  }
  return static_cast<int>(parsed);
}

}  // namespace

std::vector<SchedulerKind> PaperSchedulers() {
  return {SchedulerKind::kNodc, SchedulerKind::kAsl, SchedulerKind::kGow,
          SchedulerKind::kLow,  SchedulerKind::kC2pl, SchedulerKind::kOpt};
}

std::string SchedulerLabel(SchedulerKind kind) {
  return SchedulerKindName(kind);
}

SimConfig MakeConfig(SchedulerKind kind, int num_files, int dd,
                     double arrival_rate_tps, double error_sigma) {
  SimConfig config;  // Table-1 defaults.
  config.scheduler = kind;
  config.machine.num_files = num_files;
  config.machine.dd = dd;
  config.workload.arrival_rate_tps = arrival_rate_tps;
  config.workload.error_sigma = error_sigma;
  return config;
}

BenchOptions GetBenchOptions() {
  BenchOptions options;
  const char* fast = std::getenv("WTPG_FAST");
  if (fast != nullptr && fast[0] == '1') {
    options.seeds = 1;
    options.rt_iters = 6;
    options.rt_tol_s = 5.0;
    options.horizon_ms = 500'000;
  }
  options.seeds = EnvInt("WTPG_SEEDS", options.seeds);
  options.rt_iters = EnvInt("WTPG_RT_ITERS", options.rt_iters);
  options.rt_tol_s = EnvDouble("WTPG_RT_TOL", options.rt_tol_s);
  options.horizon_ms = EnvDouble("WTPG_HORIZON_MS", options.horizon_ms);
  options.jobs = EnvInt("WTPG_JOBS", options.jobs);
  const char* dir = std::getenv("WTPG_CSV_DIR");
  if (dir != nullptr) options.csv_dir = dir;
  return options;
}

std::string CsvPath(const BenchOptions& options, const std::string& name) {
  if (options.csv_dir.empty()) return "";
  std::error_code ec;
  std::filesystem::create_directories(options.csv_dir, ec);
  if (ec) {
    WTPG_LOG(Warning) << "cannot create CSV dir " << options.csv_dir << ": "
                      << ec.message();
    return "";
  }
  return StrCat(options.csv_dir, "/", name, ".csv");
}

OperatingPoint FindRt70(SchedulerKind kind, int num_files, int dd,
                        const Pattern& pattern, const BenchOptions& options,
                        double error_sigma) {
  SimConfig config = MakeConfig(kind, num_files, dd, /*arrival_rate_tps=*/1.0,
                                error_sigma);
  config.run.horizon_ms = options.horizon_ms;
  return FindRateForResponseTime(config, pattern, kRtTargetSeconds, kLambdaLo,
                                 kLambdaHi, options.seeds, options.rt_iters,
                                 options.rt_tol_s, options.jobs);
}

AggregateResult RunAtRate(SchedulerKind kind, int num_files, int dd,
                          double arrival_rate_tps, const Pattern& pattern,
                          const BenchOptions& options, double error_sigma) {
  SimConfig config =
      MakeConfig(kind, num_files, dd, arrival_rate_tps, error_sigma);
  config.run.horizon_ms = options.horizon_ms;
  return RunAggregate(config, pattern, options.seeds, options.jobs);
}

MplChoice RunC2plMAtRate(int num_files, int dd, double arrival_rate_tps,
                         const Pattern& pattern, const BenchOptions& options,
                         double error_sigma) {
  SimConfig config = MakeConfig(SchedulerKind::kC2pl, num_files, dd,
                                arrival_rate_tps, error_sigma);
  config.run.horizon_ms = options.horizon_ms;
  return TuneMpl(config, pattern, DefaultMplCandidates(), options.seeds,
                 options.jobs);
}

std::vector<OpenWorldRun> RunOpenWorld(const OpenWorldSpec& spec,
                                       double arrival_rate_tps, int batch_mpl,
                                       bool sketch,
                                       const BenchOptions& options) {
  // The mix carries the Zipf skew already; recording the theta in the config
  // is redundant but keeps the reproducibility artifact self-describing
  // (Machine's WithZipf overlay with the same theta is idempotent).
  const std::vector<WeightedPattern> mix = MakeOpenWorldMix(spec);
  std::vector<SimConfig> bases;
  for (SchedulerKind kind : PaperSchedulers()) {
    SimConfig config =
        MakeConfig(kind, spec.num_files, /*dd=*/1, arrival_rate_tps);
    config.workload.zipf_theta = spec.zipf_theta;
    config.machine.batch_mpl = batch_mpl;
    config.run.tail_metrics = true;
    config.run.tail_sketch = sketch;
    config.run.horizon_ms = options.horizon_ms;
    bases.push_back(config);
  }
  const std::vector<AggregateResult> results =
      RunAggregates(bases, mix, options.seeds, options.jobs);
  std::vector<OpenWorldRun> runs;
  runs.reserve(results.size());
  const std::vector<SchedulerKind> kinds = PaperSchedulers();
  for (size_t i = 0; i < results.size(); ++i) {
    runs.push_back(OpenWorldRun{kinds[i], results[i]});
  }
  return runs;
}

}  // namespace wtpgsched
