#ifndef WTPG_SCHED_MACHINE_DPN_H_
#define WTPG_SCHED_MACHINE_DPN_H_

#include <string>

#include "model/types.h"
#include "sim/round_robin_server.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace wtpgsched {

// A data-processing node (paper Section 4.1, item 3): scans objects at
// ObjTime per object, serving resident cohorts round-robin. When a file is
// declustered DD ways, each round-robin turn scans 1/DD object
// (Section 4.1, item 4).
class Dpn {
 public:
  Dpn(Simulator* sim, NodeId id, double obj_time_ms);

  NodeId id() const { return id_; }

  // Runs a cohort scanning `objects` (possibly fractional) with a
  // round-robin quantum of `quantum_objects`; `done` fires at completion.
  void SubmitCohort(double objects, double quantum_objects,
                    RoundRobinServer::Callback done);

  // Objects of scan work currently queued or in progress.
  double BacklogObjects() const;

  size_t active_cohorts() const { return server_.active_jobs(); }
  double Utilization() const { return server_.Utilization(); }
  SimTime busy_time() const { return server_.busy_time(); }
  uint64_t cohorts_completed() const { return server_.jobs_completed(); }

 private:
  NodeId id_;
  double obj_time_ms_;
  RoundRobinServer server_;
  // Work accounting for BacklogObjects(): submitted minus completed.
  double submitted_objects_ = 0.0;
  double completed_objects_ = 0.0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_MACHINE_DPN_H_
