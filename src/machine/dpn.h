#ifndef WTPG_SCHED_MACHINE_DPN_H_
#define WTPG_SCHED_MACHINE_DPN_H_

#include <map>
#include <string>

#include "model/types.h"
#include "sim/round_robin_server.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace wtpgsched {

// A data-processing node (paper Section 4.1, item 3): scans objects at
// ObjTime per object, serving resident cohorts round-robin. When a file is
// declustered DD ways, each round-robin turn scans 1/DD object
// (Section 4.1, item 4).
//
// Fault surface (see src/fault/): Crash() fails every resident cohort and
// marks the node down until Repair(); set_slowdown() stretches the service
// time of subsequently submitted cohorts (straggler windows). The machine —
// not the Dpn — decides what happens to the transactions whose cohorts die.
class Dpn {
 public:
  Dpn(Simulator* sim, NodeId id, double obj_time_ms);

  NodeId id() const { return id_; }

  // Runs a cohort scanning `objects` (possibly fractional) with a
  // round-robin quantum of `quantum_objects`; `done` fires at completion.
  // Returns the job id, the handle for CancelCohort().
  RoundRobinServer::JobId SubmitCohort(double objects, double quantum_objects,
                                       RoundRobinServer::Callback done);

  // Abandons a resident cohort: its completion callback never fires and its
  // remaining work leaves the backlog (partial slices already served are
  // lost). No-op when the cohort already completed.
  void CancelCohort(RoundRobinServer::JobId job);

  // Fails the node: every resident cohort is abandoned and the node refuses
  // new work (the machine checks up() before dispatching) until Repair().
  void Crash();

  // Brings the node back at full speed with its placement intact.
  void Repair();

  bool up() const { return up_; }

  // Service-time multiplier (>= 1) applied to cohorts submitted from now
  // on; already-resident cohorts keep their original slice times.
  void set_slowdown(double factor) { slowdown_ = factor; }
  double slowdown() const { return slowdown_; }

  // Objects of scan work currently queued or in progress.
  double BacklogObjects() const;

  size_t active_cohorts() const { return server_.active_jobs(); }
  double Utilization() const { return server_.Utilization(); }
  SimTime busy_time() const { return server_.busy_time(); }
  uint64_t cohorts_completed() const { return server_.jobs_completed(); }

 private:
  void OnCohortDone(RoundRobinServer::JobId job);

  NodeId id_;
  double obj_time_ms_;
  RoundRobinServer server_;
  bool up_ = true;
  double slowdown_ = 1.0;
  // Work accounting for BacklogObjects(): submitted minus completed.
  double submitted_objects_ = 0.0;
  double completed_objects_ = 0.0;
  // Per-resident-cohort state: objects for the backlog refund on cancel,
  // plus the caller's completion callback. Parking the callback here keeps
  // the lambda handed to the server inside the inline capture budget (a
  // callback captured *inside* another same-capacity callback cannot fit).
  // Ordered so the crash refund sums in a deterministic order.
  struct Cohort {
    double objects;
    RoundRobinServer::Callback done;
  };
  std::map<RoundRobinServer::JobId, Cohort> resident_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_MACHINE_DPN_H_
