#include "machine/control_node.h"

// Header-only; this TU exists for symmetry and future growth.
