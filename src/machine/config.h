#ifndef WTPG_SCHED_MACHINE_CONFIG_H_
#define WTPG_SCHED_MACHINE_CONFIG_H_

#include <cstdint>
#include <limits>
#include <string>

#include "fault/fault_config.h"
#include "sim/time.h"
#include "util/status.h"

namespace wtpgsched {

// Which concurrency-control scheduler drives the run (paper Section 4.2).
enum class SchedulerKind {
  kNodc,   // No data contention (upper bound).
  kAsl,    // Atomic static locking.
  kC2pl,   // Cautious two-phase locking (+M via mpl).
  kOpt,    // Optimistic with backward validation.
  kGow,    // Globally-optimized WTPG.
  kLow,    // Locally-optimized WTPG, K-conflict.
  kLowLb,  // Extension: LOW with load balancing.
  kTwoPl,  // Traditional strict 2PL with deadlock detection (baseline).
};

const char* SchedulerKindName(SchedulerKind kind);

// CLI / JSON spelling of a scheduler kind ("nodc", "low-lb", "2pl", ...).
const char* SchedulerKindFlagName(SchedulerKind kind);
// Parses a CLI / JSON spelling; returns false on unknown names.
bool ParseSchedulerKind(const std::string& name, SchedulerKind* out);

// Simulation parameters, grouped into named sections (machine / costs /
// workload / run / fault) that serialize to one JSON artifact
// (SimConfig::ToJson / FromJson, --config on the tools). Defaults
// reproduce Table 1 of the paper.

// --- The shared-nothing machine (paper Fig. 1) ---
struct MachineSection {
  int num_nodes = 8;    // Data-processing nodes.
  int num_files = 16;   // Locking granules.
  int dd = 1;           // Degree of declustering (uniform over files).
  // Multiprogramming level: admission refused while `mpl` transactions are
  // active. Table 1 default is infinite; C2PL+M tunes it.
  int mpl = std::numeric_limits<int>::max();
  // Round-robin service quantum at the DPNs, in objects. 0 selects the
  // paper's rule of 1/DD objects per turn (Section 4.1, item 4).
  double quantum_objects = 0.0;
  // Priority-aware admission control: while this many low-priority
  // (priority <= 0) transactions are active, further low-priority startups
  // are delayed — every scheduler inherits the gate (see AdmissionControl
  // in sched/scheduler.h). 0 (default) disables it.
  int batch_mpl = 0;
};

// --- CPU / scan costs (milliseconds; Table 1) ---
struct CostSection {
  double obj_time_ms = 1000.0;  // Scan time of 1 object at a DPN at DD=1.
  double msg_time_ms = 2.0;     // CN CPU per message send/receive.
  double sot_time_ms = 2.0;     // CN CPU per transaction startup.
  double cot_time_ms = 7.0;     // CN CPU per commit (2PC coordination).
  double dd_time_ms = 1.0;      // C2PL deadlock prediction per decision.
  double kwtpg_time_ms = 10.0;  // LOW: one E() evaluation.
  double chain_time_ms = 30.0;  // GOW: optimized order computation.
  double top_time_ms = 5.0;     // GOW: chain-form test.
};

// --- Workload source ---
struct WorkloadSection {
  double arrival_rate_tps = 1.0;
  double error_sigma = 0.0;  // Experiment 3 declaration-error stddev.
  // Stop generating arrivals after this many transactions (0 = unlimited).
  uint64_t max_arrivals = 0;
  // Zipf file-access skew applied to every pattern variable (0 = exact
  // uniform draws, byte-identical to the pre-Zipf generator). Applied by
  // the Machine's pattern/mix constructors via Pattern::WithZipf.
  double zipf_theta = 0.0;
};

// --- Run control & observability ---
struct RunSection {
  double horizon_ms = 2'000'000;  // Paper: 2,000,000 clocks of 1 ms.
  double warmup_ms = 0;           // Completions before this are excluded.
  // Delayed requests are retried on every commit; this fallback timer
  // guarantees liveness if no commit is pending ("submitted ... after some
  // delay"). 0 disables it.
  double retry_fallback_ms = 1000.0;
  // For schedulers whose admission test costs CN CPU (GOW's chain-form
  // test), at most this many parked startups are retried per wake event;
  // failures requeue at the back, so the pool is covered round-robin.
  // Without the cap, a supersaturated waiting pool retested on every commit
  // starves the control node (see DESIGN.md). 0 = unlimited.
  int admission_retry_limit = 16;
  // OPT: a transaction aborted at validation restarts after this delay
  // (immediate restarts re-conflict and overload the data nodes; classic
  // CC-performance models restart after a think-time, e.g. Agrawal et al.).
  double restart_delay_ms = 5000.0;
  // Run-health telemetry (src/telemetry/): when > 0, every registered gauge
  // is sampled each telemetry_sample_ms of sim time into a bounded columnar
  // ring of telemetry_capacity rows, the regime detectors run online, and
  // health.* counters appear in RunStats. Off by default: a disabled run
  // constructs no telemetry at all and stays byte-identical to the goldens.
  double telemetry_sample_ms = 0.0;
  uint64_t telemetry_capacity = 1 << 16;
  // When > 0, sample a system-state timeline every this many milliseconds
  // (Machine::timeline()).
  double timeline_sample_ms = 0.0;
  // Structured event tracing (src/trace/): when true, the machine records
  // typed lifecycle + scheduler-decision events into a ring buffer of
  // trace_capacity events (most recent kept; see Machine::trace()). Costs
  // nothing when false — every instrumentation site is behind one branch.
  bool trace_enabled = false;
  uint64_t trace_capacity = 1 << 20;
  // Tail-latency observability (see TailOptions in metrics/stats.h). Both
  // default off so default-config JSON stays byte-identical to the goldens.
  // tail_metrics surfaces p50/p99 + per-class percentiles in RunStats /
  // AggregateResult JSON; tail_sketch replaces exact sample retention with
  // the O(1)-state P² sketch for long-horizon runs.
  bool tail_metrics = false;
  bool tail_sketch = false;
  uint64_t seed = 1;
};

struct SimConfig {
  MachineSection machine;
  CostSection costs;
  WorkloadSection workload;
  RunSection run;
  FaultConfig fault;

  // --- Scheduler selection (top-level; not a section) ---
  SchedulerKind scheduler = SchedulerKind::kLow;
  int low_k = 2;                    // LOW's K (paper uses K=2).
  bool low_charge_per_eval = true;  // See DESIGN.md substitution notes.
  double low_lb_weight = 1.0;       // LOW-LB load-penalty weight.
  // OPT validation scope: when true (default) a committing transaction
  // aborts if *any* file it accessed was overwritten by a concurrent
  // commit (write-write counts); when false, only reads are validated
  // (pure Kung-Robinson). See DESIGN.md — the paper's Experiment-2 numbers
  // are incompatible with read-only validation.
  bool opt_validate_writes = true;

  Status Validate() const;

  // One JSON object with a nested object per section — the reproducibility
  // artifact behind --config. FromJson accepts partial files (absent keys
  // keep their defaults) and rejects unknown keys.
  std::string ToJson() const;
  static StatusOr<SimConfig> FromJson(const std::string& json);
  // Reads and parses a config file (the --config flag on the tools).
  static StatusOr<SimConfig> FromJsonFile(const std::string& path);

  SimTime horizon() const { return MsToTime(run.horizon_ms); }
  SimTime warmup() const { return MsToTime(run.warmup_ms); }
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_MACHINE_CONFIG_H_
