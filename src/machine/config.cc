#include "machine/config.h"

#include "util/string_util.h"

namespace wtpgsched {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNodc:
      return "NODC";
    case SchedulerKind::kAsl:
      return "ASL";
    case SchedulerKind::kC2pl:
      return "C2PL";
    case SchedulerKind::kOpt:
      return "OPT";
    case SchedulerKind::kGow:
      return "GOW";
    case SchedulerKind::kLow:
      return "LOW";
    case SchedulerKind::kLowLb:
      return "LOW-LB";
    case SchedulerKind::kTwoPl:
      return "2PL";
  }
  return "?";
}

Status SimConfig::Validate() const {
  if (num_nodes <= 0) return Status::InvalidArgument("num_nodes must be > 0");
  if (num_files <= 0) return Status::InvalidArgument("num_files must be > 0");
  if (dd < 1 || dd > num_nodes) {
    return Status::InvalidArgument(
        StrCat("dd must be in [1, num_nodes]; got ", dd));
  }
  if (mpl < 1) return Status::InvalidArgument("mpl must be >= 1");
  if (arrival_rate_tps <= 0.0) {
    return Status::InvalidArgument("arrival_rate_tps must be > 0");
  }
  if (obj_time_ms <= 0.0) {
    return Status::InvalidArgument("obj_time_ms must be > 0");
  }
  for (double cost : {msg_time_ms, sot_time_ms, cot_time_ms, dd_time_ms,
                      kwtpg_time_ms, chain_time_ms, top_time_ms}) {
    if (cost < 0.0) return Status::InvalidArgument("costs must be >= 0");
  }
  if (low_k < 0) return Status::InvalidArgument("low_k must be >= 0");
  if (error_sigma < 0.0) {
    return Status::InvalidArgument("error_sigma must be >= 0");
  }
  if (horizon_ms <= 0.0) {
    return Status::InvalidArgument("horizon_ms must be > 0");
  }
  if (warmup_ms < 0.0 || warmup_ms >= horizon_ms) {
    return Status::InvalidArgument("warmup_ms must be in [0, horizon_ms)");
  }
  if (retry_fallback_ms < 0.0) {
    return Status::InvalidArgument("retry_fallback_ms must be >= 0");
  }
  if (quantum_objects < 0.0) {
    return Status::InvalidArgument("quantum_objects must be >= 0");
  }
  if (timeline_sample_ms < 0.0) {
    return Status::InvalidArgument("timeline_sample_ms must be >= 0");
  }
  if (restart_delay_ms < 0.0) {
    return Status::InvalidArgument("restart_delay_ms must be >= 0");
  }
  if (trace_enabled && trace_capacity == 0) {
    return Status::InvalidArgument(
        "trace_capacity must be > 0 when tracing is enabled");
  }
  return Status::Ok();
}

}  // namespace wtpgsched
