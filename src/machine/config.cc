#include "machine/config.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/string_util.h"

namespace wtpgsched {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNodc:
      return "NODC";
    case SchedulerKind::kAsl:
      return "ASL";
    case SchedulerKind::kC2pl:
      return "C2PL";
    case SchedulerKind::kOpt:
      return "OPT";
    case SchedulerKind::kGow:
      return "GOW";
    case SchedulerKind::kLow:
      return "LOW";
    case SchedulerKind::kLowLb:
      return "LOW-LB";
    case SchedulerKind::kTwoPl:
      return "2PL";
  }
  return "?";
}

const char* SchedulerKindFlagName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNodc:
      return "nodc";
    case SchedulerKind::kAsl:
      return "asl";
    case SchedulerKind::kC2pl:
      return "c2pl";
    case SchedulerKind::kOpt:
      return "opt";
    case SchedulerKind::kGow:
      return "gow";
    case SchedulerKind::kLow:
      return "low";
    case SchedulerKind::kLowLb:
      return "low-lb";
    case SchedulerKind::kTwoPl:
      return "2pl";
  }
  return "?";
}

bool ParseSchedulerKind(const std::string& name, SchedulerKind* out) {
  for (SchedulerKind kind :
       {SchedulerKind::kNodc, SchedulerKind::kAsl, SchedulerKind::kC2pl,
        SchedulerKind::kOpt, SchedulerKind::kGow, SchedulerKind::kLow,
        SchedulerKind::kLowLb, SchedulerKind::kTwoPl}) {
    if (name == SchedulerKindFlagName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

Status SimConfig::Validate() const {
  if (machine.num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be > 0");
  }
  if (machine.num_files <= 0) {
    return Status::InvalidArgument("num_files must be > 0");
  }
  if (machine.dd < 1 || machine.dd > machine.num_nodes) {
    return Status::InvalidArgument(
        StrCat("dd must be in [1, num_nodes]; got ", machine.dd));
  }
  if (machine.mpl < 1) return Status::InvalidArgument("mpl must be >= 1");
  if (workload.arrival_rate_tps <= 0.0) {
    return Status::InvalidArgument("arrival_rate_tps must be > 0");
  }
  if (costs.obj_time_ms <= 0.0) {
    return Status::InvalidArgument("obj_time_ms must be > 0");
  }
  for (double cost :
       {costs.msg_time_ms, costs.sot_time_ms, costs.cot_time_ms,
        costs.dd_time_ms, costs.kwtpg_time_ms, costs.chain_time_ms,
        costs.top_time_ms}) {
    if (cost < 0.0) return Status::InvalidArgument("costs must be >= 0");
  }
  if (low_k < 0) return Status::InvalidArgument("low_k must be >= 0");
  if (workload.error_sigma < 0.0) {
    return Status::InvalidArgument("error_sigma must be >= 0");
  }
  if (run.horizon_ms <= 0.0) {
    return Status::InvalidArgument("horizon_ms must be > 0");
  }
  if (run.warmup_ms < 0.0 || run.warmup_ms >= run.horizon_ms) {
    return Status::InvalidArgument("warmup_ms must be in [0, horizon_ms)");
  }
  if (run.retry_fallback_ms < 0.0) {
    return Status::InvalidArgument("retry_fallback_ms must be >= 0");
  }
  if (machine.quantum_objects < 0.0) {
    return Status::InvalidArgument("quantum_objects must be >= 0");
  }
  if (run.timeline_sample_ms < 0.0) {
    return Status::InvalidArgument("timeline_sample_ms must be >= 0");
  }
  if (run.telemetry_sample_ms < 0.0) {
    return Status::InvalidArgument("telemetry_sample_ms must be >= 0");
  }
  if (run.telemetry_sample_ms > 0.0 && run.telemetry_capacity == 0) {
    return Status::InvalidArgument(
        "telemetry_capacity must be > 0 when telemetry is enabled");
  }
  if (run.restart_delay_ms < 0.0) {
    return Status::InvalidArgument("restart_delay_ms must be >= 0");
  }
  if (run.trace_enabled && run.trace_capacity == 0) {
    return Status::InvalidArgument(
        "trace_capacity must be > 0 when tracing is enabled");
  }
  if (machine.batch_mpl < 0) {
    return Status::InvalidArgument("batch_mpl must be >= 0");
  }
  if (workload.zipf_theta < 0.0) {
    return Status::InvalidArgument("zipf_theta must be >= 0");
  }
  if (run.tail_sketch && !run.tail_metrics) {
    return Status::InvalidArgument(
        "tail_sketch requires tail_metrics (the sketch only feeds the tail "
        "percentiles)");
  }
  return fault.Validate();
}

namespace {

// `mpl` is "unlimited" at INT_MAX; the JSON artifact (like the --mpl flag)
// spells that 0 so the file stays readable and platform-independent.
int64_t MplToJson(int mpl) {
  return mpl == std::numeric_limits<int>::max() ? 0 : mpl;
}

std::string MachineToJson(const MachineSection& m) {
  JsonWriter w;
  w.Add("num_nodes", m.num_nodes)
      .Add("num_files", m.num_files)
      .Add("dd", m.dd)
      .Add("mpl", MplToJson(m.mpl))
      .Add("quantum_objects", m.quantum_objects)
      .Add("batch_mpl", m.batch_mpl);
  return w.ToString();
}

std::string CostsToJson(const CostSection& c) {
  JsonWriter w;
  w.Add("obj_time_ms", c.obj_time_ms)
      .Add("msg_time_ms", c.msg_time_ms)
      .Add("sot_time_ms", c.sot_time_ms)
      .Add("cot_time_ms", c.cot_time_ms)
      .Add("dd_time_ms", c.dd_time_ms)
      .Add("kwtpg_time_ms", c.kwtpg_time_ms)
      .Add("chain_time_ms", c.chain_time_ms)
      .Add("top_time_ms", c.top_time_ms);
  return w.ToString();
}

std::string WorkloadToJson(const WorkloadSection& wl) {
  JsonWriter w;
  w.Add("arrival_rate_tps", wl.arrival_rate_tps)
      .Add("error_sigma", wl.error_sigma)
      .Add("max_arrivals", wl.max_arrivals)
      .Add("zipf_theta", wl.zipf_theta);
  return w.ToString();
}

std::string RunToJson(const RunSection& r) {
  JsonWriter w;
  w.Add("horizon_ms", r.horizon_ms)
      .Add("warmup_ms", r.warmup_ms)
      .Add("retry_fallback_ms", r.retry_fallback_ms)
      .Add("admission_retry_limit", r.admission_retry_limit)
      .Add("restart_delay_ms", r.restart_delay_ms)
      .Add("timeline_sample_ms", r.timeline_sample_ms)
      .Add("telemetry_sample_ms", r.telemetry_sample_ms)
      .Add("telemetry_capacity", r.telemetry_capacity)
      .Add("trace_enabled", r.trace_enabled)
      .Add("trace_capacity", r.trace_capacity)
      .Add("tail_metrics", r.tail_metrics)
      .Add("tail_sketch", r.tail_sketch)
      .Add("seed", r.seed);
  return w.ToString();
}

std::string FaultToJson(const FaultConfig& f) {
  JsonWriter w;
  w.Add("dpn_mttf_ms", f.dpn_mttf_ms)
      .Add("dpn_mttr_ms", f.dpn_mttr_ms)
      .Add("straggler_mtbf_ms", f.straggler_mtbf_ms)
      .Add("straggler_duration_ms", f.straggler_duration_ms)
      .Add("straggler_factor", f.straggler_factor)
      .Add("abort_rate_per_s", f.abort_rate_per_s)
      .Add("backoff_base_ms", f.backoff_base_ms)
      .Add("backoff_max_ms", f.backoff_max_ms)
      .Add("backoff_jitter", f.backoff_jitter);
  return w.ToString();
}

// --- Typed field extraction for FromJson ---

Status FieldError(const std::string& section, const std::string& key,
                  const std::string& what) {
  return Status::InvalidArgument(
      StrCat("config field ", section.empty() ? "" : StrCat(section, "."), key,
             ": ", what));
}

Status ReadDouble(const std::string& section, const std::string& key,
                  const JsonValue& v, double* out) {
  if (v.type() != JsonValue::Type::kNumber) {
    return FieldError(section, key, "expected a number");
  }
  *out = v.number_value();
  return Status::Ok();
}

Status ReadInt(const std::string& section, const std::string& key,
               const JsonValue& v, int* out) {
  if (v.type() != JsonValue::Type::kNumber ||
      v.number_value() != std::floor(v.number_value())) {
    return FieldError(section, key, "expected an integer");
  }
  *out = static_cast<int>(v.number_value());
  return Status::Ok();
}

Status ReadUint64(const std::string& section, const std::string& key,
                  const JsonValue& v, uint64_t* out) {
  if (v.type() != JsonValue::Type::kNumber || v.number_value() < 0.0 ||
      v.number_value() != std::floor(v.number_value())) {
    return FieldError(section, key, "expected a non-negative integer");
  }
  *out = static_cast<uint64_t>(v.number_value());
  return Status::Ok();
}

Status ReadBool(const std::string& section, const std::string& key,
                const JsonValue& v, bool* out) {
  if (v.type() != JsonValue::Type::kBool) {
    return FieldError(section, key, "expected a boolean");
  }
  *out = v.bool_value();
  return Status::Ok();
}

Status ParseMachine(const JsonValue& obj, MachineSection* m) {
  for (const auto& [key, v] : obj.items()) {
    Status s = Status::Ok();
    if (key == "num_nodes") s = ReadInt("machine", key, v, &m->num_nodes);
    else if (key == "num_files") s = ReadInt("machine", key, v, &m->num_files);
    else if (key == "dd") s = ReadInt("machine", key, v, &m->dd);
    else if (key == "mpl") {
      s = ReadInt("machine", key, v, &m->mpl);
      if (s.ok() && m->mpl == 0) m->mpl = std::numeric_limits<int>::max();
    } else if (key == "quantum_objects") {
      s = ReadDouble("machine", key, v, &m->quantum_objects);
    } else if (key == "batch_mpl") {
      s = ReadInt("machine", key, v, &m->batch_mpl);
    } else {
      s = FieldError("machine", key, "unknown key");
    }
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ParseCosts(const JsonValue& obj, CostSection* c) {
  for (const auto& [key, v] : obj.items()) {
    double* field = nullptr;
    if (key == "obj_time_ms") field = &c->obj_time_ms;
    else if (key == "msg_time_ms") field = &c->msg_time_ms;
    else if (key == "sot_time_ms") field = &c->sot_time_ms;
    else if (key == "cot_time_ms") field = &c->cot_time_ms;
    else if (key == "dd_time_ms") field = &c->dd_time_ms;
    else if (key == "kwtpg_time_ms") field = &c->kwtpg_time_ms;
    else if (key == "chain_time_ms") field = &c->chain_time_ms;
    else if (key == "top_time_ms") field = &c->top_time_ms;
    else return FieldError("costs", key, "unknown key");
    Status s = ReadDouble("costs", key, v, field);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ParseWorkload(const JsonValue& obj, WorkloadSection* wl) {
  for (const auto& [key, v] : obj.items()) {
    Status s = Status::Ok();
    if (key == "arrival_rate_tps") {
      s = ReadDouble("workload", key, v, &wl->arrival_rate_tps);
    } else if (key == "error_sigma") {
      s = ReadDouble("workload", key, v, &wl->error_sigma);
    } else if (key == "max_arrivals") {
      s = ReadUint64("workload", key, v, &wl->max_arrivals);
    } else if (key == "zipf_theta") {
      s = ReadDouble("workload", key, v, &wl->zipf_theta);
    } else {
      s = FieldError("workload", key, "unknown key");
    }
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ParseRun(const JsonValue& obj, RunSection* r) {
  for (const auto& [key, v] : obj.items()) {
    Status s = Status::Ok();
    if (key == "horizon_ms") s = ReadDouble("run", key, v, &r->horizon_ms);
    else if (key == "warmup_ms") s = ReadDouble("run", key, v, &r->warmup_ms);
    else if (key == "retry_fallback_ms") {
      s = ReadDouble("run", key, v, &r->retry_fallback_ms);
    } else if (key == "admission_retry_limit") {
      s = ReadInt("run", key, v, &r->admission_retry_limit);
    } else if (key == "restart_delay_ms") {
      s = ReadDouble("run", key, v, &r->restart_delay_ms);
    } else if (key == "timeline_sample_ms") {
      s = ReadDouble("run", key, v, &r->timeline_sample_ms);
    } else if (key == "telemetry_sample_ms") {
      s = ReadDouble("run", key, v, &r->telemetry_sample_ms);
    } else if (key == "telemetry_capacity") {
      s = ReadUint64("run", key, v, &r->telemetry_capacity);
    } else if (key == "trace_enabled") {
      s = ReadBool("run", key, v, &r->trace_enabled);
    } else if (key == "trace_capacity") {
      s = ReadUint64("run", key, v, &r->trace_capacity);
    } else if (key == "tail_metrics") {
      s = ReadBool("run", key, v, &r->tail_metrics);
    } else if (key == "tail_sketch") {
      s = ReadBool("run", key, v, &r->tail_sketch);
    } else if (key == "seed") {
      s = ReadUint64("run", key, v, &r->seed);
    } else {
      s = FieldError("run", key, "unknown key");
    }
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ParseFault(const JsonValue& obj, FaultConfig* f) {
  for (const auto& [key, v] : obj.items()) {
    double* field = nullptr;
    if (key == "dpn_mttf_ms") field = &f->dpn_mttf_ms;
    else if (key == "dpn_mttr_ms") field = &f->dpn_mttr_ms;
    else if (key == "straggler_mtbf_ms") field = &f->straggler_mtbf_ms;
    else if (key == "straggler_duration_ms") {
      field = &f->straggler_duration_ms;
    } else if (key == "straggler_factor") field = &f->straggler_factor;
    else if (key == "abort_rate_per_s") field = &f->abort_rate_per_s;
    else if (key == "backoff_base_ms") field = &f->backoff_base_ms;
    else if (key == "backoff_max_ms") field = &f->backoff_max_ms;
    else if (key == "backoff_jitter") field = &f->backoff_jitter;
    else return FieldError("fault", key, "unknown key");
    Status s = ReadDouble("fault", key, v, field);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

std::string SimConfig::ToJson() const {
  JsonWriter w;
  w.AddRaw("machine", MachineToJson(machine))
      .AddRaw("costs", CostsToJson(costs))
      .AddRaw("workload", WorkloadToJson(workload))
      .AddRaw("run", RunToJson(run))
      .AddRaw("fault", FaultToJson(fault))
      .Add("scheduler", SchedulerKindFlagName(scheduler))
      .Add("low_k", low_k)
      .Add("low_charge_per_eval", low_charge_per_eval)
      .Add("low_lb_weight", low_lb_weight)
      .Add("opt_validate_writes", opt_validate_writes);
  return w.ToString();
}

StatusOr<SimConfig> SimConfig::FromJson(const std::string& json) {
  StatusOr<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("config must be a JSON object");
  }
  SimConfig config;
  for (const auto& [key, v] : root.items()) {
    Status s = Status::Ok();
    if (key == "machine" || key == "costs" || key == "workload" ||
        key == "run" || key == "fault") {
      if (!v.is_object()) {
        s = FieldError("", key, "expected an object");
      } else if (key == "machine") {
        s = ParseMachine(v, &config.machine);
      } else if (key == "costs") {
        s = ParseCosts(v, &config.costs);
      } else if (key == "workload") {
        s = ParseWorkload(v, &config.workload);
      } else if (key == "run") {
        s = ParseRun(v, &config.run);
      } else {
        s = ParseFault(v, &config.fault);
      }
    } else if (key == "scheduler") {
      if (v.type() != JsonValue::Type::kString ||
          !ParseSchedulerKind(v.string_value(), &config.scheduler)) {
        s = FieldError("", key, "expected a scheduler name (nodc, asl, c2pl, "
                                "opt, gow, low, low-lb, 2pl)");
      }
    } else if (key == "low_k") {
      s = ReadInt("", key, v, &config.low_k);
    } else if (key == "low_charge_per_eval") {
      s = ReadBool("", key, v, &config.low_charge_per_eval);
    } else if (key == "low_lb_weight") {
      s = ReadDouble("", key, v, &config.low_lb_weight);
    } else if (key == "opt_validate_writes") {
      s = ReadBool("", key, v, &config.opt_validate_writes);
    } else {
      s = FieldError("", key, "unknown key");
    }
    if (!s.ok()) return s;
  }
  Status valid = config.Validate();
  if (!valid.ok()) return valid;
  return config;
}

StatusOr<SimConfig> SimConfig::FromJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument(StrCat("cannot read config file ", path));
  }
  std::ostringstream text;
  text << in.rdbuf();
  StatusOr<SimConfig> config = FromJson(text.str());
  if (!config.ok()) {
    return Status::InvalidArgument(
        StrCat(path, ": ", config.status().message()));
  }
  return config;
}

}  // namespace wtpgsched
