#ifndef WTPG_SCHED_MACHINE_DATA_PLACEMENT_H_
#define WTPG_SCHED_MACHINE_DATA_PLACEMENT_H_

#include "model/types.h"

namespace wtpgsched {

// Data placement (paper Section 4.1, item 1): file f lives at home node
// (f mod NumNodes); declustered over DD nodes, its partitions occupy nodes
// home, home+1, ..., home+DD-1 (mod NumNodes).
class DataPlacement {
 public:
  DataPlacement(int num_nodes, int num_files, int dd);

  int num_nodes() const { return num_nodes_; }
  int num_files() const { return num_files_; }
  int dd() const { return dd_; }

  NodeId HomeNode(FileId file) const;

  // Node holding partition `cohort` (0-based, < dd) of `file`.
  NodeId NodeFor(FileId file, int cohort) const;

 private:
  int num_nodes_;
  int num_files_;
  int dd_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_MACHINE_DATA_PLACEMENT_H_
