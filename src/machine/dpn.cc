#include "machine/dpn.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {

Dpn::Dpn(Simulator* sim, NodeId id, double obj_time_ms)
    : id_(id),
      obj_time_ms_(obj_time_ms),
      server_(sim, StrCat("DPN", id)) {
  WTPG_CHECK_GT(obj_time_ms_, 0.0);
}

void Dpn::SubmitCohort(double objects, double quantum_objects,
                       RoundRobinServer::Callback done) {
  WTPG_CHECK_GE(objects, 0.0);
  WTPG_CHECK_GT(quantum_objects, 0.0);
  const SimTime service = MsToTime(objects * obj_time_ms_);
  const SimTime quantum = std::max<SimTime>(
      MsToTime(quantum_objects * obj_time_ms_), 1);
  submitted_objects_ += objects;
  server_.Submit(service, quantum,
                 [this, objects, cb = std::move(done)]() {
                   completed_objects_ += objects;
                   if (cb) cb();
                 });
}

double Dpn::BacklogObjects() const {
  return submitted_objects_ - completed_objects_;
}

}  // namespace wtpgsched
