#include "machine/dpn.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {

Dpn::Dpn(Simulator* sim, NodeId id, double obj_time_ms)
    : id_(id),
      obj_time_ms_(obj_time_ms),
      server_(sim, StrCat("DPN", id)) {
  WTPG_CHECK_GT(obj_time_ms_, 0.0);
}

RoundRobinServer::JobId Dpn::SubmitCohort(double objects,
                                          double quantum_objects,
                                          RoundRobinServer::Callback done) {
  WTPG_CHECK_GE(objects, 0.0);
  WTPG_CHECK_GT(quantum_objects, 0.0);
  WTPG_CHECK(up_) << "cohort submitted to crashed DPN" << id_;
  // A straggling node scans slower: both the slice length and the total
  // stretch, so the cohort still gets one object-equivalent per turn.
  const SimTime service = MsToTime(objects * obj_time_ms_ * slowdown_);
  const SimTime quantum = std::max<SimTime>(
      MsToTime(quantum_objects * obj_time_ms_ * slowdown_), 1);
  submitted_objects_ += objects;
  const RoundRobinServer::JobId id = server_.next_job_id();
  const RoundRobinServer::JobId assigned =
      server_.Submit(service, quantum, [this, id] { OnCohortDone(id); });
  WTPG_CHECK_EQ(assigned, id);
  resident_.emplace(id, Cohort{objects, std::move(done)});
  return id;
}

void Dpn::OnCohortDone(RoundRobinServer::JobId job) {
  auto it = resident_.find(job);
  WTPG_CHECK(it != resident_.end());
  completed_objects_ += it->second.objects;
  RoundRobinServer::Callback cb = std::move(it->second.done);
  resident_.erase(it);
  if (cb) cb();
}

void Dpn::CancelCohort(RoundRobinServer::JobId job) {
  auto it = resident_.find(job);
  if (it == resident_.end()) return;  // Already completed.
  server_.Cancel(job);
  // The whole cohort leaves the backlog: its completion callback will never
  // run the += above, so settle the account here.
  completed_objects_ += it->second.objects;
  resident_.erase(it);
}

void Dpn::Crash() {
  up_ = false;
  slowdown_ = 1.0;  // A repair brings the node back at full speed.
  server_.CancelAll();
  for (const auto& [job, cohort] : resident_) {
    (void)job;
    completed_objects_ += cohort.objects;
  }
  resident_.clear();
}

void Dpn::Repair() {
  up_ = true;
}

double Dpn::BacklogObjects() const {
  return submitted_objects_ - completed_objects_;
}

}  // namespace wtpgsched
