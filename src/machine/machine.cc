#include "machine/machine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sched/low_lb.h"
#include "sched/scheduler_factory.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {

namespace {

// workload.zipf_theta overlays Zipf skew onto whatever pattern (or mix) the
// caller supplied. theta == 0 returns the input untouched — including its
// zero ZipfSampler state — so unskewed configs stay byte-identical.
Pattern ApplyZipf(Pattern pattern, double theta) {
  if (theta <= 0.0) return pattern;
  return pattern.WithZipf(theta);
}

std::vector<WeightedPattern> ApplyZipf(std::vector<WeightedPattern> mix,
                                       double theta) {
  if (theta > 0.0) {
    for (WeightedPattern& wp : mix) wp.pattern = wp.pattern.WithZipf(theta);
  }
  return mix;
}

}  // namespace

Machine::Machine(const SimConfig& config, Pattern pattern)
    : Machine(config, std::move(pattern), CreateScheduler(config)) {}

Machine::Machine(const SimConfig& config, std::vector<WeightedPattern> mix)
    : Machine(config,
              WorkloadGenerator(ApplyZipf(std::move(mix), config.workload.zipf_theta),
                                config.workload.arrival_rate_tps,
                                config.machine.dd, ErrorModel{config.workload.error_sigma},
                                config.run.seed),
              CreateScheduler(config)) {}

Machine::Machine(const SimConfig& config, Pattern pattern,
                 std::unique_ptr<Scheduler> scheduler)
    : Machine(config,
              WorkloadGenerator(ApplyZipf(std::move(pattern), config.workload.zipf_theta),
                                config.workload.arrival_rate_tps,
                                config.machine.dd, ErrorModel{config.workload.error_sigma},
                                config.run.seed),
              std::move(scheduler)) {}

Machine::Machine(const SimConfig& config, WorkloadGenerator workload,
                 std::unique_ptr<Scheduler> scheduler)
    : config_(config),
      sim_(),
      placement_(config.machine.num_nodes, config.machine.num_files, config.machine.dd),
      workload_(std::move(workload)),
      scheduler_(std::move(scheduler)),
      cn_(&sim_, config),
      stats_(config.warmup(), config.horizon(),
             TailOptions{config.run.tail_metrics, config.run.tail_sketch}),
      faults_enabled_(config.fault.enabled()),
      fault_rng_(config.run.seed ^ 0xda3e39cb94b95bdbull) {
  const Status valid = config.Validate();
  WTPG_CHECK(valid.ok()) << valid.ToString();
  WTPG_CHECK_LT(workload_.MaxFileId(), config.machine.num_files)
      << "pattern references files beyond num_files";
  dpns_.reserve(static_cast<size_t>(config.machine.num_nodes));
  for (int i = 0; i < config.machine.num_nodes; ++i) {
    dpns_.push_back(std::make_unique<Dpn>(&sim_, i, config.costs.obj_time_ms));
  }
  if (auto* low_lb = dynamic_cast<LowLbScheduler*>(scheduler_.get())) {
    low_lb->set_load_probe(
        [this](FileId file) { return BacklogObjectsForFile(file); });
  }
  if (config.run.trace_enabled) {
    trace_.Enable(static_cast<size_t>(config.run.trace_capacity));
  }
  // Wired even when disabled: Record() is a no-op then, and the scheduler
  // and lock table stay oblivious to whether tracing is on.
  scheduler_->set_trace(&trace_);
  scheduler_->lock_table().set_trace(&trace_);
  if (config.machine.batch_mpl > 0) {
    scheduler_->set_admission(AdmissionControl{config.machine.batch_mpl});
  }
  // Run-health telemetry. The legacy timeline is a view over the same
  // store, so timeline_sample_ms alone also constructs the bundle (at the
  // legacy period); telemetry_sample_ms wins when both are set, and only
  // it opts the run into health.* counters (see Run()).
  const double sample_ms = config.run.telemetry_sample_ms > 0.0
                               ? config.run.telemetry_sample_ms
                               : config.run.timeline_sample_ms;
  if (sample_ms > 0.0) {
    // The configured capacity is an upper bound; a finite horizon needs at
    // most horizon/period rows, so clamp to that and keep the per-replica
    // allocation proportional to the run instead of the default ring size.
    const uint64_t expected =
        static_cast<uint64_t>(config.run.horizon_ms / sample_ms) + 1;
    telemetry_ = std::make_unique<Telemetry>(
        MsToTime(sample_ms),
        static_cast<size_t>(
            std::min(config.run.telemetry_capacity, expected)));
    RegisterMachineGauges();
    telemetry_->Seal();
    timeline_.Attach(&telemetry_->store());
  }
}

void Machine::RegisterMachineGauges() {
  GaugeRegistry& gauges = telemetry_->gauges();
  // Registration order is the store's column order; the legacy timeline
  // schema reads its six columns by name, so renames here are breaking.
  gauges.Register("machine.in_flight", [this] {
    return static_cast<double>(txns_.size());
  });
  scheduler_->RegisterGauges(&gauges);
  gauges.Register("machine.parked", [this] {
    return static_cast<double>(ParkedCount());
  });
  gauges.Register("cn.queue", [this] {
    return static_cast<double>(cn_.queue_length());
  });
  gauges.Register("dpn.backlog_objects", [this] {
    double backlog = 0.0;
    for (const auto& dpn : dpns_) backlog += dpn->BacklogObjects();
    return backlog;
  });
  gauges.Register("machine.commits", [this] {
    return static_cast<double>(stats_.completions_so_far());
  });
  // Cumulative restarts (validation failures, deadlock victims, fault
  // aborts): resolved once — the registry's deque keeps the ref stable.
  const uint64_t* restarts = &stats_.counters().Counter("restarts");
  gauges.Register("machine.restarts", [restarts] {
    return static_cast<double>(*restarts);
  });
  gauges.Register("admission.gated", [this] {
    return static_cast<double>(scheduler_->admission_gated());
  });
  gauges.Register("cn.utilization", [this] { return cn_.Utilization(); });
  gauges.Register("lock.waiters", [this] {
    size_t waiters = 0;
    for (const auto& [file, queue] : file_waiters_) {
      (void)file;
      waiters += queue.size();
    }
    return static_cast<double>(waiters);
  });
  gauges.Register("wait.max_age_s", [this] { return WaitAges().first; });
  gauges.Register("wait.mean_age_s", [this] { return WaitAges().second; });
  for (int i = 0; i < config_.machine.num_nodes; ++i) {
    const auto node = static_cast<size_t>(i);
    gauges.Register(StrCat("dpn", i, ".utilization"), [this, node] {
      return dpns_[node]->Utilization();
    });
    gauges.Register(StrCat("dpn", i, ".backlog_objects"), [this, node] {
      return dpns_[node]->BacklogObjects();
    });
  }
  if (faults_enabled_) {
    gauges.Register("fault.down_nodes", [this] {
      size_t down = 0;
      for (const auto& dpn : dpns_) {
        if (!dpn->up()) ++down;
      }
      return static_cast<double>(down);
    });
  }
}

uint64_t Machine::ParkedCount() const {
  uint64_t parked = admission_wait_.size() + delayed_.size();
  for (const auto& [file, waiters] : file_waiters_) {
    (void)file;
    parked += waiters.size();
  }
  return parked;
}

std::pair<double, double> Machine::WaitAges() const {
  const SimTime now = sim_.Now();
  double max_age = 0.0;
  double total_age = 0.0;
  size_t count = 0;
  auto visit = [&](TxnId id) {
    auto it = txns_.find(id);
    if (it == txns_.end()) return;
    const double age = TimeToSeconds(now - it->second->arrival_time);
    max_age = std::max(max_age, age);
    total_age += age;
    ++count;
  };
  for (TxnId id : admission_wait_) visit(id);
  for (TxnId id : delayed_) visit(id);
  for (const auto& [file, waiters] : file_waiters_) {
    (void)file;
    for (TxnId id : waiters) visit(id);
  }
  return {max_age, count == 0 ? 0.0 : total_age / static_cast<double>(count)};
}

double Machine::BacklogObjectsForFile(FileId file) const {
  double total = 0.0;
  for (int c = 0; c < placement_.dd(); ++c) {
    total += dpns_[static_cast<size_t>(placement_.NodeFor(file, c))]
                 ->BacklogObjects();
  }
  return total / placement_.dd();
}

Transaction& Machine::GetTxn(TxnId id) {
  auto it = txns_.find(id);
  WTPG_CHECK(it != txns_.end()) << "unknown T" << id;
  return *it->second;
}

RunStats Machine::Run() {
  WTPG_CHECK(!ran_) << "Machine::Run() called twice";
  ran_ = true;
  if (faults_enabled_) {
    fault_plan_ = FaultPlan::Compile(config_.fault, config_.machine.num_nodes,
                                     config_.horizon(), config_.run.seed);
    // The whole schedule goes into the event queue up front: fault timing
    // never depends on what the workload does, only on the seed.
    for (const FaultEvent& event : fault_plan_.events()) {
      sim_.ScheduleAt(event.time, [this, event] { OnFaultEvent(event); });
    }
  }
  ScheduleNextArrival();
  ScheduleTelemetrySample();
  sim_.RunUntil(config_.horizon());

  double mean_util = 0.0;
  double max_util = 0.0;
  for (const auto& dpn : dpns_) {
    mean_util += dpn->Utilization();
    max_util = std::max(max_util, dpn->Utilization());
  }
  mean_util /= static_cast<double>(dpns_.size());
  scheduler_->ExportCounters(&stats_.counters());
  // Only surfaced when the admission gate actually fired, so counter sets
  // (and the golden JSON built from them) are unchanged for ungated runs.
  if (scheduler_->admission_gated() > 0) {
    stats_.counters().Counter("admission.gated") = scheduler_->admission_gated();
  }
  if (trace_.enabled()) trace_.ExportCounters(&stats_.counters());
  // health.* counters are gated on the telemetry config key (not on the
  // bundle existing): a legacy timeline-only run keeps its counter set —
  // and therefore its JSON — byte-identical to prior versions.
  if (telemetry_ != nullptr && config_.run.telemetry_sample_ms > 0.0) {
    telemetry_->ExportHealthCounters(&stats_.counters());
  }
  return stats_.Finalize(cn_.Utilization(), mean_util, max_util,
                         in_flight());
}

// --- Arrival ---

void Machine::ScheduleNextArrival() {
  if (config_.workload.max_arrivals > 0 &&
      arrivals_generated_ >= config_.workload.max_arrivals) {
    return;
  }
  sim_.ScheduleAfter(workload_.NextInterarrival(), [this] { OnArrival(); });
}

void Machine::OnArrival() {
  ++arrivals_generated_;
  std::unique_ptr<Transaction> txn = workload_.NextTransaction();
  const TxnId id = txn->id();
  txn->arrival_time = sim_.Now();
  trace_.set_now(sim_.Now());
  trace_.Record({.time = sim_.Now(),
                 .type = TraceEventType::kArrive,
                 .txn = id,
                 .arg = static_cast<int32_t>(txn->num_steps())});
  txns_.emplace(id, std::move(txn));
  stats_.RecordArrival();
  RequestStartup(id, /*charge_sot=*/true);
  ScheduleNextArrival();
}

// --- Decisions ---

void Machine::RequestStartup(TxnId id, bool charge_sot) {
  if (!pending_decision_.insert(id).second) return;
  Transaction& txn = GetTxn(id);
  const SimTime cost = scheduler_->StartupDecisionCost(txn);
  if (charge_sot) {
    cn_.SubmitStartup(cost, [this, id] { OnStartupDecision(id); });
  } else {
    cn_.SubmitWork(cost, [this, id] { OnStartupDecision(id); });
  }
}

void Machine::OnStartupDecision(TxnId id) {
  pending_decision_.erase(id);
  Transaction& txn = GetTxn(id);
  scheduler_->OnClock(sim_.Now());
  trace_.set_now(sim_.Now());
  const Decision decision = scheduler_->OnStartup(txn);
  switch (decision.kind) {
    case DecisionKind::kGrant:
      txn.set_state(Transaction::State::kActive);
      txn.admit_time = sim_.Now();
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kAdmit,
                     .txn = id,
                     .incarnation = txn.restarts});
      BeginStep(id);
      break;
    case DecisionKind::kBlock:
    case DecisionKind::kDelay:
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kAdmissionDelayed,
                     .txn = id,
                     .incarnation = txn.restarts});
      ParkAdmission(id);
      break;
    case DecisionKind::kReject:
      txn.start_rejections += 1;
      stats_.RecordStartRejection();
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kAdmissionRejected,
                     .txn = id,
                     .incarnation = txn.restarts});
      ParkAdmission(id);
      break;
    case DecisionKind::kAbortRestart:
      WTPG_CHECK(false) << "startup cannot abort-restart";
      break;
  }
}

void Machine::RequestLock(TxnId id) {
  if (!pending_decision_.insert(id).second) return;
  Transaction& txn = GetTxn(id);
  const int step = txn.current_step();
  trace_.set_now(sim_.Now());
  trace_.Record({.time = sim_.Now(),
                 .type = TraceEventType::kLockRequest,
                 .txn = id,
                 .incarnation = txn.restarts,
                 .file = txn.step(step).file,
                 .step = step,
                 .mode = txn.RequestModeAt(step)});
  const SimTime cost = scheduler_->LockDecisionCost(txn, step);
  cn_.SubmitWork(cost, [this, id] { OnLockDecision(id); });
}

void Machine::OnLockDecision(TxnId id) {
  pending_decision_.erase(id);
  Transaction& txn = GetTxn(id);
  scheduler_->OnClock(sim_.Now());
  trace_.set_now(sim_.Now());
  const int step = txn.current_step();
  const Decision decision = scheduler_->OnLockRequest(txn, step);
  switch (decision.kind) {
    case DecisionKind::kGrant:
      DispatchStep(id);
      // A grant determines new precedence orders, which can unblock delayed
      // requests (their E() values and consistency tests change).
      if (scheduler_->traits().retry_delayed_on_grant) RetryDelayed();
      break;
    case DecisionKind::kBlock:
      txn.blocked_count += 1;
      stats_.RecordBlocked();
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kLockBlocked,
                     .txn = id,
                     .incarnation = txn.restarts,
                     .file = decision.file,
                     .step = step});
      ParkBlocked(id, decision.file);
      break;
    case DecisionKind::kDelay:
      txn.delayed_count += 1;
      stats_.RecordDelayed();
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kLockDelayed,
                     .txn = id,
                     .incarnation = txn.restarts,
                     .file = txn.step(step).file,
                     .step = step});
      ParkDelayed(id);
      break;
    case DecisionKind::kAbortRestart: {
      // Deadlock victim (2PL): all work of this incarnation is wasted; the
      // transaction restarts from scratch after the restart delay.
      stats_.RecordRestart();
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kAbort,
                     .txn = id,
                     .incarnation = txn.restarts,
                     .file = txn.step(step).file,
                     .step = step,
                     .arg = static_cast<int32_t>(
                         AbortReason::kAbortDeadlockVictim)});
      const std::vector<FileId> released = scheduler_->OnAbort(txn);
      txn.ResetForRestart();
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kRestartScheduled,
                     .txn = id,
                     .incarnation = txn.restarts,
                     .value = config_.run.restart_delay_ms / 1000.0});
      sim_.ScheduleAfter(MsToTime(config_.run.restart_delay_ms), [this, id] {
        RequestStartup(id, /*charge_sot=*/true);
      });
      for (FileId file : released) WakeFileWaiters(file);
      RetryDelayed();
      RetryAdmissions();
      break;
    }
    case DecisionKind::kReject:
      WTPG_CHECK(false) << "lock requests cannot be rejected";
      break;
  }
}

// --- Execution ---

void Machine::BeginStep(TxnId id) {
  Transaction& txn = GetTxn(id);
  if (txn.AllStepsDone()) {
    RequestCommit(id);
    return;
  }
  const int step = txn.current_step();
  const StepSpec& spec = txn.step(step);
  if (txn.NeedsLockAt(step) &&
      !scheduler_->lock_table().HoldsSufficient(spec.file, id,
                                                txn.RequestModeAt(step))) {
    RequestLock(id);
  } else {
    DispatchStep(id);
  }
}

void Machine::DispatchStep(TxnId id) {
  Transaction& txn = GetTxn(id);
  txn.set_state(Transaction::State::kExecuting);
  trace_.set_now(sim_.Now());
  trace_.Record({.time = sim_.Now(),
                 .type = TraceEventType::kStepDispatch,
                 .txn = id,
                 .incarnation = txn.restarts,
                 .file = txn.step(txn.current_step()).file,
                 .step = txn.current_step()});
  // CN sends the transaction to the file's home node. The incarnation guard
  // drops the message if a fault abort restarted the transaction while it
  // was in flight (a no-op without faults: nothing else aborts mid-message).
  const int32_t inc = txn.restarts;
  cn_.SubmitMessage([this, id, inc] {
    auto it = txns_.find(id);
    if (it == txns_.end() || it->second->restarts != inc) return;
    StartCohorts(id);
  });
}

void Machine::StartCohorts(TxnId id) {
  Transaction& txn = GetTxn(id);
  const int step = txn.current_step();
  const StepSpec& spec = txn.step(step);
  trace_.set_now(sim_.Now());
  // A scan cannot run against a crashed partition; the transaction aborts
  // exactly as if the node failed under it.
  for (int c = 0; c < placement_.dd(); ++c) {
    if (!dpns_[static_cast<size_t>(placement_.NodeFor(spec.file, c))]->up()) {
      FaultCounter("fault.crash_victims") += 1;
      FaultAbort(id, kAbortNodeCrash);
      return;
    }
  }
  // Log the data access. Reads take effect as the scan runs. Writes do too
  // under locking schedulers (in-place, protected by the X lock); under OPT
  // they go to private copies and are logged at commit instead.
  if (spec.access == LockMode::kShared || !scheduler_->traits().defers_writes) {
    log_.RecordAccess(id, txn.restarts, spec.file, spec.access, sim_.Now());
    trace_.Record({.time = sim_.Now(),
                   .type = TraceEventType::kDataAccess,
                   .txn = id,
                   .incarnation = txn.restarts,
                   .file = spec.file,
                   .step = step,
                   .mode = spec.access});
  }
  const int dd = placement_.dd();
  const double cohort_objects = spec.actual_cost / dd;
  const double quantum_objects =
      config_.machine.quantum_objects > 0.0 ? config_.machine.quantum_objects : 1.0 / dd;
  cohorts_remaining_[id] = dd;
  for (int c = 0; c < dd; ++c) {
    const NodeId node = placement_.NodeFor(spec.file, c);
    Dpn& dpn = *dpns_[static_cast<size_t>(node)];
    trace_.Record({.time = sim_.Now(),
                   .type = TraceEventType::kScanStart,
                   .txn = id,
                   .incarnation = txn.restarts,
                   .file = spec.file,
                   .node = node,
                   .step = step,
                   .value = cohort_objects});
    const RoundRobinServer::JobId job = dpn.SubmitCohort(
        cohort_objects, quantum_objects,
        [this, id, node] { OnCohortDone(id, node); });
    if (faults_enabled_) cohort_jobs_[id].emplace_back(node, job);
  }
}

void Machine::OnCohortDone(TxnId id, NodeId node) {
  trace_.set_now(sim_.Now());
  if (trace_.enabled()) {
    const Transaction& txn = GetTxn(id);
    trace_.Record({.time = sim_.Now(),
                   .type = TraceEventType::kScanEnd,
                   .txn = id,
                   .incarnation = txn.restarts,
                   .node = node,
                   .step = txn.current_step()});
  }
  if (faults_enabled_) {
    auto cj = cohort_jobs_.find(id);
    if (cj != cohort_jobs_.end()) {
      auto& jobs = cj->second;
      for (auto jt = jobs.begin(); jt != jobs.end(); ++jt) {
        if (jt->first == node) {
          jobs.erase(jt);
          break;
        }
      }
      if (jobs.empty()) cohort_jobs_.erase(cj);
    }
  }
  auto it = cohorts_remaining_.find(id);
  WTPG_CHECK(it != cohorts_remaining_.end());
  if (--it->second > 0) return;
  cohorts_remaining_.erase(it);
  // All cohorts joined at the home node; the transaction returns to CN.
  // Guarded like the dispatch message: a fault abort between the join and
  // the CN receive invalidates this incarnation's return trip.
  const int32_t inc = GetTxn(id).restarts;
  cn_.SubmitMessage([this, id, inc] {
    auto t = txns_.find(id);
    if (t == txns_.end() || t->second->restarts != inc) return;
    OnStepReturned(id);
  });
}

void Machine::OnStepReturned(TxnId id) {
  Transaction& txn = GetTxn(id);
  const int step = txn.current_step();
  trace_.set_now(sim_.Now());
  trace_.Record({.time = sim_.Now(),
                 .type = TraceEventType::kStepReturn,
                 .txn = id,
                 .incarnation = txn.restarts,
                 .file = txn.step(step).file,
                 .step = step});
  txn.AdvanceStep();
  scheduler_->OnStepCompleted(txn, step);
  BeginStep(id);
}

// --- Commit ---

void Machine::RequestCommit(TxnId id) {
  Transaction& txn = GetTxn(id);
  txn.set_state(Transaction::State::kCommitting);
  cn_.SubmitCommit([this, id] { OnCommitDone(id); });
}

void Machine::OnCommitDone(TxnId id) {
  Transaction& txn = GetTxn(id);
  scheduler_->OnClock(sim_.Now());
  trace_.set_now(sim_.Now());
  if (!scheduler_->ValidateAtCommit(txn)) {
    // OPT certification failure: abort and restart from scratch after the
    // configured delay.
    stats_.RecordRestart();
    trace_.Record({.time = sim_.Now(),
                   .type = TraceEventType::kAbort,
                   .txn = id,
                   .incarnation = txn.restarts,
                   .arg = static_cast<int32_t>(
                       AbortReason::kAbortValidationFailure)});
    scheduler_->OnAbort(txn);
    txn.ResetForRestart();
    trace_.Record({.time = sim_.Now(),
                   .type = TraceEventType::kRestartScheduled,
                   .txn = id,
                   .incarnation = txn.restarts,
                   .value = config_.run.restart_delay_ms / 1000.0});
    sim_.ScheduleAfter(MsToTime(config_.run.restart_delay_ms),
                       [this, id] { RequestStartup(id, /*charge_sot=*/true); });
    return;
  }
  if (scheduler_->traits().defers_writes) {
    // Deferred updates are installed now.
    for (const StepSpec& spec : txn.steps()) {
      if (spec.access == LockMode::kExclusive) {
        log_.RecordAccess(id, txn.restarts, spec.file, spec.access,
                          sim_.Now());
        trace_.Record({.time = sim_.Now(),
                       .type = TraceEventType::kDataAccess,
                       .txn = id,
                       .incarnation = txn.restarts,
                       .file = spec.file,
                       .mode = spec.access});
      }
    }
  }
  log_.RecordCommit(id, txn.restarts);
  trace_.Record({.time = sim_.Now(),
                 .type = TraceEventType::kCommit,
                 .txn = id,
                 .incarnation = txn.restarts});
  const std::vector<FileId> released = scheduler_->OnCommit(txn);
  txn.set_state(Transaction::State::kCommitted);
  txn.completion_time = sim_.Now();
  stats_.RecordCompletion(txn, sim_.Now());
  txns_.erase(id);

  for (FileId file : released) WakeFileWaiters(file);
  RetryDelayed();
  RetryAdmissions();
}

// --- Faults ---

uint64_t& Machine::FaultCounter(const char* name) {
  return stats_.counters().Counter(name);
}

void Machine::OnFaultEvent(const FaultEvent& event) {
  trace_.set_now(sim_.Now());
  switch (event.kind) {
    case FaultEventKind::kDpnCrash:
      OnDpnCrash(event.node);
      break;
    case FaultEventKind::kDpnRepair: {
      Dpn& dpn = *dpns_[static_cast<size_t>(event.node)];
      if (dpn.up()) break;
      dpn.Repair();
      FaultCounter("fault.repairs") += 1;
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kDpnRepair,
                     .node = event.node});
      break;
    }
    case FaultEventKind::kSlowdownStart: {
      Dpn& dpn = *dpns_[static_cast<size_t>(event.node)];
      // A window opening on a crashed node is lost: the node comes back
      // from repair at full speed.
      if (!dpn.up()) break;
      dpn.set_slowdown(config_.fault.straggler_factor);
      FaultCounter("fault.slowdowns") += 1;
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kDpnSlowdown,
                     .node = event.node,
                     .arg = 1,
                     .value = config_.fault.straggler_factor});
      break;
    }
    case FaultEventKind::kSlowdownEnd: {
      Dpn& dpn = *dpns_[static_cast<size_t>(event.node)];
      if (!dpn.up() || dpn.slowdown() == 1.0) break;
      dpn.set_slowdown(1.0);
      trace_.Record({.time = sim_.Now(),
                     .type = TraceEventType::kDpnSlowdown,
                     .node = event.node,
                     .arg = 0,
                     .value = 1.0});
      break;
    }
    case FaultEventKind::kInjectAbort:
      InjectAbort(event.pick);
      break;
  }
}

void Machine::OnDpnCrash(NodeId node) {
  Dpn& dpn = *dpns_[static_cast<size_t>(node)];
  if (!dpn.up()) return;
  FaultCounter("fault.crashes") += 1;
  trace_.Record({.time = sim_.Now(),
                 .type = TraceEventType::kDpnCrash,
                 .node = node});
  dpn.Crash();
  // Every transaction with a cohort resident on the node loses its whole
  // incarnation — mid-scan state on a dead node is unrecoverable. Victims
  // abort in id order so the schedule does not depend on hash-map order.
  std::vector<TxnId> victims;
  for (const auto& [id, jobs] : cohort_jobs_) {
    for (const auto& [n, job] : jobs) {
      (void)job;
      if (n == node) {
        victims.push_back(id);
        break;
      }
    }
  }
  std::sort(victims.begin(), victims.end());
  for (TxnId id : victims) {
    FaultCounter("fault.crash_victims") += 1;
    FaultAbort(id, kAbortNodeCrash);
  }
}

void Machine::InjectAbort(double pick) {
  // Eligible victims: admitted transactions that are not mid-decision (a
  // CN decision job holds a raw reference to the incarnation) and not past
  // the commit point. The active() map is ordered by id, so `pick` indexes
  // the same victim on every replay.
  std::vector<TxnId> eligible;
  for (const auto& [id, txn] : scheduler_->active()) {
    if (txn->state() == Transaction::State::kCommitting) continue;
    if (pending_decision_.count(id) > 0) continue;
    eligible.push_back(id);
  }
  if (eligible.empty()) return;
  size_t index = static_cast<size_t>(pick * static_cast<double>(eligible.size()));
  if (index >= eligible.size()) index = eligible.size() - 1;
  FaultCounter("fault.injected_aborts") += 1;
  FaultAbort(eligible[index], kAbortInjected);
}

void Machine::FaultAbort(TxnId id, AbortReason reason) {
  Transaction& txn = GetTxn(id);
  // Cohorts still running on healthy nodes are canceled; their completion
  // callbacks never fire and their remaining work leaves the backlog.
  auto cj = cohort_jobs_.find(id);
  if (cj != cohort_jobs_.end()) {
    for (const auto& [node, job] : cj->second) {
      dpns_[static_cast<size_t>(node)]->CancelCohort(job);
    }
    cohort_jobs_.erase(cj);
  }
  cohorts_remaining_.erase(id);
  Unpark(id);
  stats_.RecordRestart();
  trace_.Record({.time = sim_.Now(),
                 .type = TraceEventType::kAbort,
                 .txn = id,
                 .incarnation = txn.restarts,
                 .arg = static_cast<int32_t>(reason)});
  const std::vector<FileId> released = scheduler_->OnAbort(txn);
  txn.ResetForRestart();
  // Exponential backoff doubling per restart, capped, with multiplicative
  // jitter from the replica's fault stream so colliding victims do not
  // retry in lockstep.
  const FaultConfig& fault = config_.fault;
  double delay_ms =
      fault.backoff_base_ms * std::pow(2.0, std::max(0, txn.restarts - 1));
  delay_ms = std::min(delay_ms, fault.backoff_max_ms);
  if (fault.backoff_jitter > 0.0) {
    delay_ms *= fault_rng_.UniformReal(1.0 - fault.backoff_jitter,
                                       1.0 + fault.backoff_jitter);
  }
  FaultCounter("fault.backoff_restarts") += 1;
  trace_.Record({.time = sim_.Now(),
                 .type = TraceEventType::kFaultBackoff,
                 .txn = id,
                 .incarnation = txn.restarts,
                 .value = delay_ms / 1000.0});
  sim_.ScheduleAfter(MsToTime(delay_ms),
                     [this, id] { RequestStartup(id, /*charge_sot=*/true); });
  for (FileId file : released) WakeFileWaiters(file);
  RetryDelayed();
  RetryAdmissions();
}

void Machine::Unpark(TxnId id) {
  auto drop = [id](std::deque<TxnId>* queue) {
    for (auto it = queue->begin(); it != queue->end(); ++it) {
      if (*it == id) {
        queue->erase(it);
        return true;
      }
    }
    return false;
  };
  if (drop(&admission_wait_)) return;
  if (drop(&delayed_)) return;
  for (auto it = file_waiters_.begin(); it != file_waiters_.end(); ++it) {
    if (drop(&it->second)) {
      if (it->second.empty()) file_waiters_.erase(it);
      return;
    }
  }
}

// --- Parked-request retry ---

void Machine::ParkAdmission(TxnId id) {
  GetTxn(id).set_state(Transaction::State::kWaitingStart);
  admission_wait_.push_back(id);
  EnsureFallbackTimer();
}

void Machine::ParkBlocked(TxnId id, FileId file) {
  WTPG_CHECK_NE(file, kInvalidFile);
  GetTxn(id).set_state(Transaction::State::kWaitingLock);
  file_waiters_[file].push_back(id);
}

void Machine::ParkDelayed(TxnId id) {
  GetTxn(id).set_state(Transaction::State::kWaitingLock);
  delayed_.push_back(id);
  EnsureFallbackTimer();
}

void Machine::WakeFileWaiters(FileId file) {
  auto it = file_waiters_.find(file);
  if (it == file_waiters_.end()) return;
  std::deque<TxnId> waiters = std::move(it->second);
  file_waiters_.erase(it);
  for (TxnId id : waiters) RequestLock(id);
}

void Machine::RetryDelayed() {
  if (delayed_.empty()) return;
  std::deque<TxnId> waiters = std::move(delayed_);
  delayed_.clear();
  for (TxnId id : waiters) RequestLock(id);
}

void Machine::RetryAdmissions() {
  if (admission_wait_.empty()) return;
  size_t budget = admission_wait_.size();
  if (scheduler_->traits().costly_admission && config_.run.admission_retry_limit > 0) {
    budget = std::min(budget,
                      static_cast<size_t>(config_.run.admission_retry_limit));
  }
  for (size_t i = 0; i < budget && !admission_wait_.empty(); ++i) {
    const TxnId id = admission_wait_.front();
    admission_wait_.pop_front();
    // Failures re-park at the back, rotating the pool across wake events.
    RequestStartup(id, /*charge_sot=*/false);
  }
  if (!admission_wait_.empty()) EnsureFallbackTimer();
}

// --- Telemetry sampling ---

void Machine::ScheduleTelemetrySample() {
  if (telemetry_ == nullptr) return;
  const SimTime period = telemetry_->period();
  // Same schedule the legacy timeline used: samples land at exact
  // multiples of the period, the last one at the horizon inclusive.
  if (sim_.Now() + period > config_.horizon()) return;
  sim_.ScheduleAfter(period, [this] { TakeTelemetrySample(); });
}

void Machine::TakeTelemetrySample() {
  telemetry_->Sample(sim_.Now());
  ScheduleTelemetrySample();
}

void Machine::EnsureFallbackTimer() {
  if (fallback_timer_active_ || config_.run.retry_fallback_ms <= 0.0) return;
  fallback_timer_active_ = true;
  sim_.ScheduleAfter(MsToTime(config_.run.retry_fallback_ms), [this] {
    fallback_timer_active_ = false;
    const bool had_parked = !delayed_.empty() || !admission_wait_.empty();
    if (had_parked) {
      RetryDelayed();
      RetryAdmissions();
      EnsureFallbackTimer();
    }
  });
}

}  // namespace wtpgsched
