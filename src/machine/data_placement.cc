#include "machine/data_placement.h"

#include "util/logging.h"

namespace wtpgsched {

DataPlacement::DataPlacement(int num_nodes, int num_files, int dd)
    : num_nodes_(num_nodes), num_files_(num_files), dd_(dd) {
  WTPG_CHECK_GT(num_nodes_, 0);
  WTPG_CHECK_GT(num_files_, 0);
  WTPG_CHECK_GE(dd_, 1);
  WTPG_CHECK_LE(dd_, num_nodes_);
}

NodeId DataPlacement::HomeNode(FileId file) const {
  WTPG_CHECK_GE(file, 0);
  WTPG_CHECK_LT(file, num_files_);
  return file % num_nodes_;
}

NodeId DataPlacement::NodeFor(FileId file, int cohort) const {
  WTPG_CHECK_GE(cohort, 0);
  WTPG_CHECK_LT(cohort, dd_);
  return (HomeNode(file) + cohort) % num_nodes_;
}

}  // namespace wtpgsched
