#ifndef WTPG_SCHED_MACHINE_CONTROL_NODE_H_
#define WTPG_SCHED_MACHINE_CONTROL_NODE_H_

#include "machine/config.h"
#include "sim/fcfs_server.h"
#include "sim/simulator.h"

namespace wtpgsched {

// The control node (paper Section 4.1, item 2): a single CPU holding the
// lock table and coordinating two-phase commit. Every scheduler decision,
// message handling and commit action is a CPU burst served FCFS.
class ControlNode {
 public:
  ControlNode(Simulator* sim, const SimConfig& config)
      : cpu_(sim, "CN"),
        sot_time_(MsToTime(config.costs.sot_time_ms)),
        cot_time_(MsToTime(config.costs.cot_time_ms)),
        msg_time_(MsToTime(config.costs.msg_time_ms)) {}

  // Generic CPU burst (scheduler decision of a given cost, etc).
  void SubmitWork(SimTime cost, FcfsServer::Callback done) {
    cpu_.Submit(cost, std::move(done));
  }

  // Named bursts for the Table-1 cost categories.
  void SubmitStartup(SimTime extra_cost, FcfsServer::Callback done) {
    cpu_.Submit(sot_time_ + extra_cost, std::move(done));
  }
  void SubmitCommit(FcfsServer::Callback done) {
    cpu_.Submit(cot_time_, std::move(done));
  }
  void SubmitMessage(FcfsServer::Callback done) {
    cpu_.Submit(msg_time_, std::move(done));
  }

  double Utilization() const { return cpu_.Utilization(); }
  SimTime busy_time() const { return cpu_.busy_time(); }
  size_t queue_length() const { return cpu_.queue_length(); }

 private:
  FcfsServer cpu_;
  SimTime sot_time_;
  SimTime cot_time_;
  SimTime msg_time_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_MACHINE_CONTROL_NODE_H_
