#ifndef WTPG_SCHED_MACHINE_MACHINE_H_
#define WTPG_SCHED_MACHINE_MACHINE_H_

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/schedule_log.h"
#include "fault/fault_plan.h"
#include "machine/config.h"
#include "machine/control_node.h"
#include "machine/data_placement.h"
#include "machine/dpn.h"
#include "metrics/stats.h"
#include "metrics/timeline.h"
#include "model/transaction.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "trace/trace_recorder.h"
#include "util/random.h"
#include "workload/workload.h"

namespace wtpgsched {

// The simulated Shared-Nothing machine (paper Fig. 1 / Section 4.1): one
// control node plus NumNodes data-processing nodes, driven by a Poisson
// stream of batch transactions and one concurrency-control scheduler.
//
// Execution of a transaction:
//   arrival -> startup decision at CN (sot_time + scheduler cost) ->
//   per step: lock decision at CN (scheduler cost) when a new lock is
//   needed; on grant, CN sends the txn to the file's home node (msgtime),
//   DD cohorts scan in round-robin on the DPNs, the txn returns to CN
//   (msgtime) and issues its next step -> commit at CN (cot_time), locks
//   released, parked requests retried.
//
// Parked requests: blocked requests queue FIFO per granule and retry when
// the granule is released; delayed requests and refused admissions retry on
// every commit (and on grants, and after the fallback delay) — see
// DESIGN.md, "Substitutions".
class Machine {
 public:
  Machine(const SimConfig& config, Pattern pattern);

  // Weighted pattern mix (see examples/mixed_workload.cpp).
  Machine(const SimConfig& config, std::vector<WeightedPattern> mix);

  // Injects a custom scheduler instead of building one from
  // config.scheduler (see examples/custom_scheduler.cpp).
  Machine(const SimConfig& config, Pattern pattern,
          std::unique_ptr<Scheduler> scheduler);

  // Fully general form: any workload source, any scheduler.
  Machine(const SimConfig& config, WorkloadGenerator workload,
          std::unique_ptr<Scheduler> scheduler);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Runs the simulation to config.horizon() and returns aggregate stats.
  // Call at most once.
  RunStats Run();

  Simulator& simulator() { return sim_; }
  Scheduler& scheduler() { return *scheduler_; }
  const DataPlacement& placement() const { return placement_; }
  const ScheduleLog& schedule_log() const { return log_; }
  const SimConfig& config() const { return config_; }

  // Time-series samples (empty unless config.run.timeline_sample_ms or
  // telemetry_sample_ms is > 0). A legacy-schema view over the telemetry
  // store below.
  const TimelineRecorder& timeline() const { return timeline_; }

  // Run-health telemetry: the sampled gauge store and detectors. Null when
  // both telemetry_sample_ms and timeline_sample_ms are 0 — a disabled run
  // pays nothing.
  const Telemetry* telemetry() const { return telemetry_.get(); }

  // Structured event trace (empty unless config.run.trace_enabled). Holds the
  // most recent config.run.trace_capacity events; per-type counts cover the
  // whole run.
  const TraceRecorder& trace() const { return trace_; }

  // Scan backlog (objects) over the nodes holding `file`'s partitions
  // (LOW-LB load probe).
  double BacklogObjectsForFile(FileId file) const;

  // Transactions arrived but not yet committed.
  size_t in_flight() const { return txns_.size(); }

 private:
  Transaction& GetTxn(TxnId id);

  // --- Arrival ---
  void ScheduleNextArrival();
  void OnArrival();

  // --- Decisions (CN CPU jobs) ---
  // Submits a startup decision; `charge_sot` on first attempt of an
  // incarnation only.
  void RequestStartup(TxnId id, bool charge_sot);
  void OnStartupDecision(TxnId id);
  void RequestLock(TxnId id);
  void OnLockDecision(TxnId id);

  // --- Execution ---
  void BeginStep(TxnId id);
  void DispatchStep(TxnId id);   // CN send message, then cohorts.
  void StartCohorts(TxnId id);
  void OnCohortDone(TxnId id, NodeId node);
  void OnStepReturned(TxnId id);  // CN receive message done.

  // --- Commit ---
  void RequestCommit(TxnId id);
  void OnCommitDone(TxnId id);

  // --- Faults (src/fault/, DESIGN.md "Fault model") ---
  // Dispatches one pre-compiled FaultPlan event at its scheduled time.
  void OnFaultEvent(const FaultEvent& event);
  void OnDpnCrash(NodeId node);
  // Aborts the eligible transaction selected by `pick` (uniform in [0, 1)).
  void InjectAbort(double pick);
  // Aborts an in-flight transaction from outside the scheduler: cancels its
  // surviving cohorts, releases its locks through Scheduler::OnAbort, and
  // restarts it after an exponential backoff with deterministic jitter.
  void FaultAbort(TxnId id, AbortReason reason);
  // Removes `id` from whichever parked list holds it (if any).
  void Unpark(TxnId id);
  // Fault counters register lazily so a zero-fault run's counter set — and
  // therefore its JSON output — is byte-identical to a faultless build.
  uint64_t& FaultCounter(const char* name);

  // --- Parked-request retry ---
  void ParkAdmission(TxnId id);
  void ParkBlocked(TxnId id, FileId file);
  void ParkDelayed(TxnId id);
  void WakeFileWaiters(FileId file);
  void RetryDelayed();
  void RetryAdmissions();
  void EnsureFallbackTimer();

  // --- Telemetry sampling ---
  // Registers the machine-level gauges (in-flight, parked, CN queue,
  // per-DPN utilization/backlog, wait ages, ...) plus the scheduler's own.
  void RegisterMachineGauges();
  void ScheduleTelemetrySample();
  void TakeTelemetrySample();
  uint64_t ParkedCount() const;
  // (max, mean) age in seconds over all parked transactions.
  std::pair<double, double> WaitAges() const;

  SimConfig config_;
  Simulator sim_;
  DataPlacement placement_;
  WorkloadGenerator workload_;
  std::unique_ptr<Scheduler> scheduler_;
  ControlNode cn_;
  std::vector<std::unique_ptr<Dpn>> dpns_;
  StatsCollector stats_;
  ScheduleLog log_;
  std::unique_ptr<Telemetry> telemetry_;
  TimelineRecorder timeline_;
  TraceRecorder trace_;

  std::map<TxnId, std::unique_ptr<Transaction>> txns_;
  // Parked transactions. A parked txn is in exactly one list; a txn with a
  // decision job in flight is in pending_decision_ instead.
  std::deque<TxnId> admission_wait_;
  std::unordered_map<FileId, std::deque<TxnId>> file_waiters_;
  std::deque<TxnId> delayed_;
  std::unordered_set<TxnId> pending_decision_;

  // Cohorts still running for the executing step of each transaction.
  std::unordered_map<TxnId, int> cohorts_remaining_;

  // --- Fault state (inert unless config.fault.enabled()) ---
  const bool faults_enabled_;
  FaultPlan fault_plan_;
  // Backoff jitter; salted off the run seed, independent of the plan's
  // streams and of the workload streams.
  Rng fault_rng_;
  // (node, job) handles of the in-flight cohorts of each executing
  // transaction — the crash-victim index and the cancel handles for fault
  // aborts. Only maintained when faults are enabled.
  std::unordered_map<TxnId,
                     std::vector<std::pair<NodeId, RoundRobinServer::JobId>>>
      cohort_jobs_;

  uint64_t arrivals_generated_ = 0;
  bool fallback_timer_active_ = false;
  bool ran_ = false;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_MACHINE_MACHINE_H_
