#ifndef WTPG_SCHED_ANALYSIS_SCHEDULE_LOG_H_
#define WTPG_SCHED_ANALYSIS_SCHEDULE_LOG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/lock_mode.h"
#include "model/types.h"
#include "sim/time.h"

namespace wtpgsched {

// Records the data accesses of an execution so that serializability of the
// committed projection can be verified after the fact (analysis tool; not
// part of the simulated machine).
//
// Each access carries an *effective time*: the instant at which the access
// logically touches the shared database. For locking schedulers that is the
// step's execution; for OPT, writes go to private copies and are installed
// at commit, so the machine logs OPT writes with the commit timestamp.
//
// Accesses are tagged with the transaction's incarnation (restart count) so
// that the work of aborted OPT incarnations — which never installed its
// writes — can be excluded from the committed projection.
class ScheduleLog {
 public:
  struct Access {
    TxnId txn;
    int incarnation;
    FileId file;
    LockMode mode;  // Semantic: kShared = read, kExclusive = write.
    SimTime effective_time;
    uint64_t sequence;  // Tie-break for equal timestamps.
  };

  void RecordAccess(TxnId txn, int incarnation, FileId file, LockMode mode,
                    SimTime effective_time);

  // Marks `txn`'s incarnation as the committed one.
  void RecordCommit(TxnId txn, int incarnation);

  const std::vector<Access>& accesses() const { return accesses_; }
  // txn id -> committed incarnation.
  const std::unordered_map<TxnId, int>& committed() const {
    return committed_;
  }

  void Clear();

 private:
  std::vector<Access> accesses_;
  std::unordered_map<TxnId, int> committed_;
  uint64_t next_sequence_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_ANALYSIS_SCHEDULE_LOG_H_
