#include "analysis/serializability.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace wtpgsched {
namespace {

// DFS colors for cycle detection.
enum class Color { kWhite, kGray, kBlack };

bool FindCycle(TxnId node,
               const std::unordered_map<TxnId, std::unordered_set<TxnId>>& adj,
               std::unordered_map<TxnId, Color>* color,
               std::vector<TxnId>* stack, std::vector<TxnId>* cycle) {
  (*color)[node] = Color::kGray;
  stack->push_back(node);
  auto it = adj.find(node);
  if (it != adj.end()) {
    for (TxnId next : it->second) {
      Color c = color->count(next) ? (*color)[next] : Color::kWhite;
      if (c == Color::kGray) {
        // Extract the cycle from the stack.
        auto pos = std::find(stack->begin(), stack->end(), next);
        cycle->assign(pos, stack->end());
        return true;
      }
      if (c == Color::kWhite &&
          FindCycle(next, adj, color, stack, cycle)) {
        return true;
      }
    }
  }
  stack->pop_back();
  (*color)[node] = Color::kBlack;
  return false;
}

}  // namespace

std::string SerializabilityResult::ToString() const {
  if (serializable) return "serializable";
  std::vector<std::string> parts;
  for (TxnId id : cycle) parts.push_back(StrCat("T", id));
  return StrCat("NOT serializable; cycle: ", Join(parts, " -> "));
}

SerializabilityResult CheckConflictSerializability(const ScheduleLog& log) {
  SerializabilityResult result;
  const auto& committed = log.committed();

  // Committed accesses per file, in effective-time order.
  std::map<FileId, std::vector<ScheduleLog::Access>> per_file;
  for (const auto& access : log.accesses()) {
    auto it = committed.find(access.txn);
    if (it == committed.end() || it->second != access.incarnation) continue;
    per_file[access.file].push_back(access);
  }

  std::unordered_map<TxnId, std::unordered_set<TxnId>> adj;
  for (auto& [file, accesses] : per_file) {
    (void)file;
    std::sort(accesses.begin(), accesses.end(),
              [](const ScheduleLog::Access& a, const ScheduleLog::Access& b) {
                if (a.effective_time != b.effective_time) {
                  return a.effective_time < b.effective_time;
                }
                return a.sequence < b.sequence;
              });
    for (size_t i = 0; i < accesses.size(); ++i) {
      for (size_t j = i + 1; j < accesses.size(); ++j) {
        const auto& a = accesses[i];
        const auto& b = accesses[j];
        if (a.txn == b.txn) continue;
        if (Conflicts(a.mode, b.mode)) adj[a.txn].insert(b.txn);
      }
    }
  }

  std::unordered_map<TxnId, Color> color;
  std::vector<TxnId> stack;
  for (const auto& [txn, incarnation] : committed) {
    (void)incarnation;
    Color c = color.count(txn) ? color[txn] : Color::kWhite;
    if (c == Color::kWhite &&
        FindCycle(txn, adj, &color, &stack, &result.cycle)) {
      result.serializable = false;
      return result;
    }
  }
  result.serializable = true;
  return result;
}

}  // namespace wtpgsched
