#include "analysis/schedule_log.h"

namespace wtpgsched {

void ScheduleLog::RecordAccess(TxnId txn, int incarnation, FileId file,
                               LockMode mode, SimTime effective_time) {
  accesses_.push_back(
      Access{txn, incarnation, file, mode, effective_time, next_sequence_++});
}

void ScheduleLog::RecordCommit(TxnId txn, int incarnation) {
  committed_[txn] = incarnation;
}

void ScheduleLog::Clear() {
  accesses_.clear();
  committed_.clear();
  next_sequence_ = 0;
}

}  // namespace wtpgsched
