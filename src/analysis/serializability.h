#ifndef WTPG_SCHED_ANALYSIS_SERIALIZABILITY_H_
#define WTPG_SCHED_ANALYSIS_SERIALIZABILITY_H_

#include <string>
#include <vector>

#include "analysis/schedule_log.h"
#include "model/types.h"

namespace wtpgsched {

// Conflict-serializability verdict for the committed projection of a
// schedule log.
struct SerializabilityResult {
  bool serializable = false;
  // One witness cycle (transaction ids) when not serializable.
  std::vector<TxnId> cycle;
  std::string ToString() const;
};

// Builds the conflict graph over committed transactions — an edge a -> b
// for each pair of conflicting accesses (same file, at least one write)
// where a's access has the earlier effective time — and tests it for
// acyclicity. Accesses of uncommitted/aborted transactions are ignored
// (aborted OPT incarnations never installed their writes).
SerializabilityResult CheckConflictSerializability(const ScheduleLog& log);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_ANALYSIS_SERIALIZABILITY_H_
