#ifndef WTPG_SCHED_MODEL_TYPES_H_
#define WTPG_SCHED_MODEL_TYPES_H_

#include <cstdint>

namespace wtpgsched {

// Identifier types. Files are the locking granules (a "file" is a
// partially-declustered relation or one subrange partition, per Section 2 of
// the paper). Nodes are data-processing nodes.
using TxnId = int64_t;
using FileId = int32_t;
using NodeId = int32_t;

inline constexpr TxnId kInvalidTxn = -1;
inline constexpr FileId kInvalidFile = -1;
inline constexpr NodeId kInvalidNode = -1;

}  // namespace wtpgsched

#endif  // WTPG_SCHED_MODEL_TYPES_H_
