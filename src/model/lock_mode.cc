#include "model/lock_mode.h"

namespace wtpgsched {

const char* LockModeName(LockMode mode) {
  return mode == LockMode::kShared ? "S" : "X";
}

}  // namespace wtpgsched
