#ifndef WTPG_SCHED_MODEL_LOCK_MODE_H_
#define WTPG_SCHED_MODEL_LOCK_MODE_H_

namespace wtpgsched {

// File-granule lock modes. Batches lock whole files: a reading step needs a
// shared lock, a writing step an exclusive lock (paper Section 2, model 1).
enum class LockMode {
  kShared,
  kExclusive,
};

// True when holding `held` and requesting `requested` on the same granule by
// two different transactions is allowed (only S-S is compatible).
constexpr bool Compatible(LockMode held, LockMode requested) {
  return held == LockMode::kShared && requested == LockMode::kShared;
}

// True when the two modes conflict (at least one exclusive).
constexpr bool Conflicts(LockMode a, LockMode b) { return !Compatible(a, b); }

// Returns the stronger of two modes (X > S).
constexpr LockMode Stronger(LockMode a, LockMode b) {
  return (a == LockMode::kExclusive || b == LockMode::kExclusive)
             ? LockMode::kExclusive
             : LockMode::kShared;
}

const char* LockModeName(LockMode mode);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_MODEL_LOCK_MODE_H_
