#ifndef WTPG_SCHED_MODEL_TRANSACTION_H_
#define WTPG_SCHED_MODEL_TRANSACTION_H_

#include <map>
#include <string>
#include <vector>

#include "model/lock_mode.h"
#include "model/types.h"
#include "sim/time.h"

namespace wtpgsched {

// One step of a batch transaction: a file-scanning read or write (paper
// Section 2, model 1/2).
struct StepSpec {
  FileId file = kInvalidFile;
  // Semantic access: kShared for a reading step, kExclusive for a writing
  // step.
  LockMode access = LockMode::kShared;
  // Lock mode requested when this step first locks `file`. Patterns may
  // request X at a reading step to cover a later write of the same file
  // (Experiment 1 requests X-locks at its first two steps).
  LockMode request_mode = LockMode::kShared;
  // True I/O demand in objects, at DD = 1 (the machine splits it across DD
  // cohorts at execution time).
  double actual_cost = 0.0;
  // Declared I/O demand in objects as announced to the scheduler, already
  // adjusted for declustering (C * (1 + x) / DD); differs from actual under
  // the Experiment 3 error model.
  double declared_cost = 0.0;
};

// A batch transaction: a sequential list of steps plus the access
// declaration derived from them. Transactions are created by the workload
// generator and owned by the machine; schedulers see them by reference.
class Transaction {
 public:
  enum class State {
    kCreated,        // Arrived, not yet admitted by the scheduler.
    kWaitingStart,   // Admission refused for now; parked for retry.
    kActive,         // Admitted; executing steps.
    kWaitingLock,    // Blocked or delayed on a lock request.
    kExecuting,      // A step is running on the data-processing nodes.
    kCommitting,     // Commit processing at the control node.
    kCommitted,      // Done.
  };

  Transaction(TxnId id, std::vector<StepSpec> steps);

  TxnId id() const { return id_; }
  const std::vector<StepSpec>& steps() const { return steps_; }
  int num_steps() const { return static_cast<int>(steps_.size()); }
  const StepSpec& step(int i) const { return steps_[static_cast<size_t>(i)]; }

  // --- Access declaration (static; known at startup) ---

  // Strongest lock mode this transaction will request per file.
  const std::map<FileId, LockMode>& lock_modes() const { return lock_modes_; }

  // First step index that touches `file`; -1 if never touched.
  int FirstStepFor(FileId file) const;

  // True if step `i` must issue a new lock request (i.e., it is the first
  // step touching its file — later steps reuse the already-held lock, which
  // the request_mode of the first step is required to cover).
  bool NeedsLockAt(int i) const;

  // Lock mode to request at step `i` (the declared strongest mode for that
  // file). Only meaningful when NeedsLockAt(i).
  LockMode RequestModeAt(int i) const;

  // True if the two transactions have declared conflicting accesses to at
  // least one common file.
  bool ConflictsWith(const Transaction& other) const;

  // First step index of *this* transaction whose file is accessed by `other`
  // in a conflicting mode; -1 if no conflict. Used for WTPG edge weights:
  // w(other -> this) = DeclaredCostFrom(FirstConflictingStep(other)).
  int FirstConflictingStep(const Transaction& other) const;

  // Sum of declared costs of steps [from_step, end). Returns 0 for
  // from_step >= num_steps(); from_step < 0 is clamped to 0.
  double DeclaredCostFrom(int from_step) const;
  double DeclaredTotalCost() const { return DeclaredCostFrom(0); }
  // Declared cost still ahead of the transaction (from its current step).
  double DeclaredRemainingCost() const { return DeclaredCostFrom(current_step_); }

  // --- Execution state (owned by the machine) ---

  State state() const { return state_; }
  void set_state(State s) { state_ = s; }

  // Index of the next step to execute; num_steps() when all steps are done.
  int current_step() const { return current_step_; }
  void AdvanceStep();
  bool AllStepsDone() const { return current_step_ >= num_steps(); }

  // Resets execution progress (OPT restart after failed validation).
  void ResetForRestart();

  // --- Timestamps & counters (for metrics) ---

  // Index of the workload-mix component this transaction was drawn from
  // (0 for single-pattern workloads); used for per-class statistics.
  int workload_class = 0;

  // Scheduling priority of the workload class (higher = more urgent;
  // 0 = batch/background). Read by the admission-control gate in
  // Scheduler::OnStartup; constant across incarnations.
  int priority = 0;

  SimTime arrival_time = 0;      // First arrival at the control node.
  SimTime admit_time = -1;       // When the scheduler admitted it (last incarnation).
  SimTime completion_time = -1;  // When commit processing finished.
  int restarts = 0;              // OPT validation failures.
  int blocked_count = 0;         // Times a lock request was blocked.
  int delayed_count = 0;         // Times a request was delayed by the scheduler.
  int start_rejections = 0;      // Times admission was refused (GOW chain test etc).

  std::string DebugString() const;

 private:
  TxnId id_;
  std::vector<StepSpec> steps_;
  std::map<FileId, LockMode> lock_modes_;
  std::map<FileId, int> first_step_;
  State state_ = State::kCreated;
  int current_step_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_MODEL_TRANSACTION_H_
