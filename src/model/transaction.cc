#include "model/transaction.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {

Transaction::Transaction(TxnId id, std::vector<StepSpec> steps)
    : id_(id), steps_(std::move(steps)) {
  WTPG_CHECK(!steps_.empty()) << "transaction with no steps";
  for (int i = 0; i < num_steps(); ++i) {
    const StepSpec& s = steps_[static_cast<size_t>(i)];
    WTPG_CHECK_GE(s.actual_cost, 0.0);
    WTPG_CHECK_GE(s.declared_cost, 0.0);
    auto [it, inserted] = first_step_.emplace(s.file, i);
    (void)it;
    // The strongest lock mode this transaction ever needs on the file. The
    // request mode of the first step must already cover every later access;
    // workload patterns guarantee this (it models predeclared locking).
    LockMode needed = Stronger(s.access, s.request_mode);
    auto [mit, minserted] = lock_modes_.emplace(s.file, needed);
    if (!minserted) mit->second = Stronger(mit->second, needed);
    if (!inserted) {
      // A later step on an already-locked file: the first request must have
      // declared a mode covering this access.
    }
  }
  for (const auto& [file, mode] : lock_modes_) {
    const StepSpec& first = steps_[static_cast<size_t>(first_step_.at(file))];
    WTPG_CHECK(Stronger(first.request_mode, mode) == first.request_mode)
        << "step requesting " << LockModeName(first.request_mode) << " on file "
        << file << " does not cover later " << LockModeName(mode) << " access";
  }
}

int Transaction::FirstStepFor(FileId file) const {
  auto it = first_step_.find(file);
  return it == first_step_.end() ? -1 : it->second;
}

bool Transaction::NeedsLockAt(int i) const {
  WTPG_CHECK_GE(i, 0);
  WTPG_CHECK_LT(i, num_steps());
  return FirstStepFor(steps_[static_cast<size_t>(i)].file) == i;
}

LockMode Transaction::RequestModeAt(int i) const {
  WTPG_CHECK(NeedsLockAt(i));
  return lock_modes_.at(steps_[static_cast<size_t>(i)].file);
}

bool Transaction::ConflictsWith(const Transaction& other) const {
  // lock_modes_ maps are small (a handful of files); linear merge-scan.
  for (const auto& [file, mode] : lock_modes_) {
    auto it = other.lock_modes_.find(file);
    if (it != other.lock_modes_.end() && Conflicts(mode, it->second)) {
      return true;
    }
  }
  return false;
}

int Transaction::FirstConflictingStep(const Transaction& other) const {
  int best = -1;
  for (const auto& [file, mode] : lock_modes_) {
    auto it = other.lock_modes_.find(file);
    if (it == other.lock_modes_.end() || !Conflicts(mode, it->second)) continue;
    const int step = FirstStepFor(file);
    if (best == -1 || step < best) best = step;
  }
  return best;
}

double Transaction::DeclaredCostFrom(int from_step) const {
  double total = 0.0;
  for (int i = std::max(from_step, 0); i < num_steps(); ++i) {
    total += steps_[static_cast<size_t>(i)].declared_cost;
  }
  return total;
}

void Transaction::AdvanceStep() {
  WTPG_CHECK_LT(current_step_, num_steps());
  ++current_step_;
}

void Transaction::ResetForRestart() {
  current_step_ = 0;
  state_ = State::kCreated;
  ++restarts;
}

std::string Transaction::DebugString() const {
  std::vector<std::string> parts;
  for (const StepSpec& s : steps_) {
    parts.push_back(Format("%s(%d:%.3g)",
                           s.access == LockMode::kShared ? "r" : "w", s.file,
                           s.actual_cost));
  }
  return StrCat("T", id_, "{", Join(parts, " -> "), "}");
}

}  // namespace wtpgsched
