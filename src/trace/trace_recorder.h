#ifndef WTPG_SCHED_TRACE_TRACE_RECORDER_H_
#define WTPG_SCHED_TRACE_TRACE_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace_event.h"

namespace wtpgsched {

class CounterRegistry;

// Ring-buffered recorder of TraceEvents. Disabled by default: Record() is a
// single predictable branch, no event is constructed by well-behaved call
// sites (guard expensive payload computation with enabled()), and no memory
// is allocated — a Machine embeds one unconditionally at zero cost.
//
// When enabled, the buffer holds the most recent `capacity` events; older
// events are overwritten and counted in dropped(). Per-type counts cover
// the whole run regardless of ring overflow.
class TraceRecorder {
 public:
  TraceRecorder() = default;

  // Reserves the ring. Call once, before the run.
  void Enable(size_t capacity);

  bool enabled() const { return enabled_; }

  // Simulated-time stamp used by call sites without a simulator reference
  // (schedulers, the lock table). The machine refreshes it on every event
  // it processes, before the scheduler hooks run.
  SimTime now() const { return now_; }
  void set_now(SimTime now) { now_ = now; }

  void Record(const TraceEvent& event) {
    if (!enabled_) return;
    ++type_counts_[static_cast<size_t>(event.type)];
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      events_[head_] = event;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  // Events currently buffered, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  size_t size() const { return events_.size(); }
  size_t capacity() const { return capacity_; }
  // Events overwritten after the ring filled up.
  uint64_t dropped() const { return dropped_; }
  // Total events recorded (including dropped ones), by type.
  uint64_t type_count(TraceEventType type) const {
    return type_counts_[static_cast<size_t>(type)];
  }
  uint64_t total_recorded() const;

  // Adds "trace.<type>" counters (non-zero types only) plus
  // "trace.dropped" to `registry`.
  void ExportCounters(CounterRegistry* registry) const;

 private:
  bool enabled_ = false;
  size_t capacity_ = 0;
  size_t head_ = 0;  // Oldest event once the ring is full.
  uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  uint64_t type_counts_[static_cast<size_t>(TraceEventType::kNumTypes)] = {};
  SimTime now_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TRACE_TRACE_RECORDER_H_
