#include "trace/trace_recorder.h"

#include "metrics/counters.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kArrive:
      return "arrive";
    case TraceEventType::kAdmit:
      return "admit";
    case TraceEventType::kAdmissionDelayed:
      return "admission_delayed";
    case TraceEventType::kAdmissionRejected:
      return "admission_rejected";
    case TraceEventType::kLockRequest:
      return "lock_request";
    case TraceEventType::kLockBlocked:
      return "lock_blocked";
    case TraceEventType::kLockDelayed:
      return "lock_delayed";
    case TraceEventType::kLockGrant:
      return "lock_grant";
    case TraceEventType::kLockRelease:
      return "lock_release";
    case TraceEventType::kStepDispatch:
      return "step_dispatch";
    case TraceEventType::kScanStart:
      return "scan_start";
    case TraceEventType::kScanEnd:
      return "scan_end";
    case TraceEventType::kStepReturn:
      return "step_return";
    case TraceEventType::kDataAccess:
      return "data_access";
    case TraceEventType::kCommit:
      return "commit";
    case TraceEventType::kAbort:
      return "abort";
    case TraceEventType::kRestartScheduled:
      return "restart_scheduled";
    case TraceEventType::kLowEval:
      return "low_eval";
    case TraceEventType::kLowDeadlock:
      return "low_deadlock";
    case TraceEventType::kGowChainTest:
      return "gow_chain_test";
    case TraceEventType::kGowOrientation:
      return "gow_orientation";
    case TraceEventType::kC2plPredict:
      return "c2pl_predict";
    case TraceEventType::kOptValidation:
      return "opt_validation";
    case TraceEventType::kDpnCrash:
      return "dpn_crash";
    case TraceEventType::kDpnRepair:
      return "dpn_repair";
    case TraceEventType::kDpnSlowdown:
      return "dpn_slowdown";
    case TraceEventType::kFaultBackoff:
      return "fault_backoff";
    case TraceEventType::kNumTypes:
      break;
  }
  return "?";
}

void TraceRecorder::Enable(size_t capacity) {
  WTPG_CHECK_GT(capacity, 0u);
  WTPG_CHECK(events_.empty()) << "Enable() after events were recorded";
  enabled_ = true;
  capacity_ = capacity;
  events_.reserve(capacity);
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

uint64_t TraceRecorder::total_recorded() const {
  uint64_t total = 0;
  for (uint64_t c : type_counts_) total += c;
  return total;
}

void TraceRecorder::ExportCounters(CounterRegistry* registry) const {
  for (size_t i = 0; i < static_cast<size_t>(TraceEventType::kNumTypes);
       ++i) {
    if (type_counts_[i] == 0) continue;
    registry->Counter(
        StrCat("trace.", TraceEventTypeName(static_cast<TraceEventType>(i))))
        += type_counts_[i];
  }
  if (dropped_ > 0) registry->Counter("trace.dropped") += dropped_;
}

}  // namespace wtpgsched
