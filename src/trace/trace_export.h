#ifndef WTPG_SCHED_TRACE_TRACE_EXPORT_H_
#define WTPG_SCHED_TRACE_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_event.h"
#include "util/status.h"

namespace wtpgsched {

inline constexpr const char* kTraceSchemaVersion = "wtpg-trace/2";

// Run metadata carried in the JSONL header line (and as Chrome metadata).
struct TraceMeta {
  std::string scheduler;
  int num_nodes = 0;
  int num_files = 0;
  int dd = 1;
  uint64_t seed = 0;
};

// One sampled gauge series, merged into the trace streams as counter
// tracks (JSONL "gauge" lines; Chrome ph:"C" counter events). Built from a
// TelemetryStore via ToGaugeTracks() in telemetry/telemetry_export.h.
struct GaugeTrack {
  std::string name;
  std::vector<std::pair<SimTime, double>> points;
};

// One event as a single-line JSON object ({"t":...,"type":...,...}); only
// the fields meaningful for the event's type are emitted.
std::string EventToJson(const TraceEvent& event);

// Writes the schema-versioned JSONL trace: a header object, gauge series
// definitions (when `gauges` is non-null), one event per line
// (chronological), the gauge sample lines, and a {"type":"end",...} footer
// with the event and drop totals plus the run's counter registry snapshot.
Status WriteJsonlTrace(
    const std::vector<TraceEvent>& events, const TraceMeta& meta,
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    uint64_t dropped, const std::string& path,
    const std::vector<GaugeTrack>* gauges = nullptr);

// Writes the Chrome trace-event format (loadable in Perfetto /
// chrome://tracing): one track per DPN with scan-residence slices, one
// track per transaction with admission-wait / lock-wait / step slices and
// instants for commits, aborts and scheduler decisions, plus one counter
// track per sampled gauge when `gauges` is non-null. `ts` is simulated
// microseconds.
Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        const TraceMeta& meta, const std::string& path,
                        const std::vector<GaugeTrack>* gauges = nullptr);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TRACE_TRACE_EXPORT_H_
