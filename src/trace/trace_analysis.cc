#include "trace/trace_analysis.h"

#include <unordered_map>

#include "analysis/schedule_log.h"

namespace wtpgsched {

namespace {

// Per-transaction replay state while walking the event stream.
struct TxnState {
  bool arrived = false;  // kArrive seen (inside the buffered window).
  SimTime arrival = 0;
  int restarts = 0;
  SimTime admit_open = -1;  // kArrive / kRestartScheduled awaiting kAdmit.
  SimTime lock_open = -1;   // First kLockRequest of the current step.
  SimTime exec_open = -1;   // kStepDispatch awaiting kStepReturn.
  SimTime admission_wait = 0;
  SimTime lock_wait = 0;
  SimTime execution = 0;
};

}  // namespace

TraceSummary SummarizeTrace(const std::vector<TraceEvent>& events) {
  TraceSummary summary;
  std::unordered_map<TxnId, TxnState> state;
  for (const TraceEvent& e : events) {
    summary.event_counts[TraceEventTypeName(e.type)] += 1;
    TxnState& s = state[e.txn];
    switch (e.type) {
      case TraceEventType::kArrive:
        s.arrived = true;
        s.arrival = e.time;
        s.admit_open = e.time;
        ++summary.arrived;
        break;
      case TraceEventType::kRestartScheduled:
        s.admit_open = e.time;
        ++s.restarts;
        break;
      case TraceEventType::kAdmit:
        if (s.admit_open >= 0) {
          s.admission_wait += e.time - s.admit_open;
          s.admit_open = -1;
        }
        break;
      case TraceEventType::kLockRequest:
        if (s.lock_open < 0) s.lock_open = e.time;
        break;
      case TraceEventType::kStepDispatch:
        if (s.lock_open >= 0) {
          s.lock_wait += e.time - s.lock_open;
          s.lock_open = -1;
        }
        s.exec_open = e.time;
        break;
      case TraceEventType::kStepReturn:
        if (s.exec_open >= 0) {
          s.execution += e.time - s.exec_open;
          s.exec_open = -1;
        }
        break;
      case TraceEventType::kAbort:
        // The dead incarnation's open intervals end here; the time counts
        // toward the category that was open when the abort struck.
        if (s.lock_open >= 0) {
          s.lock_wait += e.time - s.lock_open;
          s.lock_open = -1;
        }
        if (s.exec_open >= 0) {
          s.execution += e.time - s.exec_open;
          s.exec_open = -1;
        }
        ++summary.aborted;
        break;
      case TraceEventType::kCommit: {
        ++summary.committed;
        if (!s.arrived) break;  // Arrival fell outside the ring window.
        TxnBreakdown b;
        b.txn = e.txn;
        b.committed = true;
        b.restarts = s.restarts;
        b.response_s = TimeToSeconds(e.time - s.arrival);
        b.admission_wait_s = TimeToSeconds(s.admission_wait);
        b.lock_wait_s = TimeToSeconds(s.lock_wait);
        b.execution_s = TimeToSeconds(s.execution);
        b.other_s = b.response_s - b.admission_wait_s - b.lock_wait_s -
                    b.execution_s;
        summary.txns.push_back(b);
        break;
      }
      default:
        break;
    }
  }
  if (!summary.txns.empty()) {
    const double n = static_cast<double>(summary.txns.size());
    for (const TxnBreakdown& b : summary.txns) {
      summary.mean_response_s += b.response_s;
      summary.mean_admission_wait_s += b.admission_wait_s;
      summary.mean_lock_wait_s += b.lock_wait_s;
      summary.mean_execution_s += b.execution_s;
      summary.mean_other_s += b.other_s;
    }
    summary.mean_response_s /= n;
    summary.mean_admission_wait_s /= n;
    summary.mean_lock_wait_s /= n;
    summary.mean_execution_s /= n;
    summary.mean_other_s /= n;
  }
  return summary;
}

SerializabilityResult CheckTraceSerializable(
    const std::vector<TraceEvent>& events) {
  ScheduleLog log;
  for (const TraceEvent& e : events) {
    switch (e.type) {
      case TraceEventType::kDataAccess:
        log.RecordAccess(e.txn, e.incarnation, e.file, e.mode, e.time);
        break;
      case TraceEventType::kCommit:
        log.RecordCommit(e.txn, e.incarnation);
        break;
      default:
        break;
    }
  }
  return CheckConflictSerializability(log);
}

}  // namespace wtpgsched
