#include "trace/trace_export.h"

#include <cmath>
#include <fstream>
#include <map>
#include <set>

#include "util/json_writer.h"
#include "util/string_util.h"

namespace wtpgsched {

namespace {

// Which optional payload fields an event type carries (beyond txn / file /
// node / step / incarnation, which are emitted whenever set).
bool UsesArg(TraceEventType type) {
  switch (type) {
    case TraceEventType::kAbort:
    case TraceEventType::kLowEval:
    case TraceEventType::kGowChainTest:
    case TraceEventType::kGowOrientation:
    case TraceEventType::kC2plPredict:
    case TraceEventType::kOptValidation:
    case TraceEventType::kDpnSlowdown:
      return true;
    default:
      return false;
  }
}

bool UsesValue(TraceEventType type) {
  switch (type) {
    case TraceEventType::kScanStart:
    case TraceEventType::kLowEval:
    case TraceEventType::kGowChainTest:
    case TraceEventType::kGowOrientation:
    case TraceEventType::kDpnSlowdown:
    case TraceEventType::kFaultBackoff:
      return true;
    default:
      return false;
  }
}

// JSON numbers cannot be infinite, but LOW's E() legitimately is (a grant
// that would deadlock); emit non-finite values as "inf"/"-inf" strings,
// which strtod round-trips.
void AddValue(JsonWriter* json, const char* key, double value) {
  if (std::isfinite(value)) {
    json->Add(key, value);
  } else {
    json->Add(key, value > 0 ? "inf" : "-inf");
  }
}

const char* AbortReasonName(int32_t arg) {
  switch (arg) {
    case kAbortValidationFailure:
      return "validation-failure";
    case kAbortDeadlockVictim:
      return "deadlock-victim";
    case kAbortNodeCrash:
      return "node-crash";
    case kAbortInjected:
      return "injected";
  }
  return "?";
}

bool UsesMode(TraceEventType type) {
  switch (type) {
    case TraceEventType::kLockGrant:
    case TraceEventType::kDataAccess:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string EventToJson(const TraceEvent& e) {
  JsonWriter json;
  json.Add("t", static_cast<int64_t>(e.time));
  json.Add("type", TraceEventTypeName(e.type));
  if (e.txn != kInvalidTxn) json.Add("txn", static_cast<int64_t>(e.txn));
  if (e.incarnation != 0) json.Add("inc", e.incarnation);
  if (e.file != kInvalidFile) json.Add("file", e.file);
  if (e.node != kInvalidNode) json.Add("node", e.node);
  if (e.step >= 0) json.Add("step", e.step);
  if (UsesMode(e.type)) {
    json.Add("mode", e.mode == LockMode::kExclusive ? "X" : "S");
  }
  if (UsesArg(e.type)) json.Add("arg", e.arg);
  if (UsesValue(e.type)) {
    AddValue(&json, "v", e.value);
    // kGowOrientation: critical path with the grant; kLowEval requester
    // rows: E(q) with the K-conflict penalty added.
    if (e.value2 != 0.0) AddValue(&json, "v2", e.value2);
  }
  return json.ToString();
}

Status WriteJsonlTrace(
    const std::vector<TraceEvent>& events, const TraceMeta& meta,
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    uint64_t dropped, const std::string& path,
    const std::vector<GaugeTrack>* gauges) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal(StrCat("cannot open ", path, " for writing"));
  }
  JsonWriter header;
  header.Add("schema", kTraceSchemaVersion)
      .Add("scheduler", meta.scheduler)
      .Add("num_nodes", meta.num_nodes)
      .Add("num_files", meta.num_files)
      .Add("dd", meta.dd)
      .Add("seed", meta.seed)
      .Add("time_unit", "us");
  out << header.ToString() << '\n';
  // Gauge series definitions come right after the header so readers know
  // the index -> name mapping before any "gauge" sample line.
  if (gauges != nullptr) {
    for (size_t g = 0; g < gauges->size(); ++g) {
      JsonWriter def;
      def.Add("type", "gauge-def")
          .Add("g", static_cast<int64_t>(g))
          .Add("name", (*gauges)[g].name);
      out << def.ToString() << '\n';
    }
  }
  for (const TraceEvent& e : events) out << EventToJson(e) << '\n';
  if (gauges != nullptr) {
    for (size_t g = 0; g < gauges->size(); ++g) {
      for (const auto& [time, value] : (*gauges)[g].points) {
        JsonWriter sample;
        sample.Add("type", "gauge")
            .Add("t", static_cast<int64_t>(time))
            .Add("g", static_cast<int64_t>(g));
        AddValue(&sample, "v", value);
        out << sample.ToString() << '\n';
      }
    }
  }
  JsonWriter counters_json;
  for (const auto& [name, value] : counters) counters_json.Add(name, value);
  JsonWriter footer;
  footer.Add("type", "end")
      .Add("events", static_cast<uint64_t>(events.size()))
      .Add("dropped", dropped)
      .AddRaw("counters", counters_json.ToString());
  out << footer.ToString() << '\n';
  out.flush();
  if (!out.good()) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

namespace {

// Chrome trace-event emission helpers. pid 1 = DPN tracks, pid 2 = one
// track per transaction, pid 3 = telemetry counter tracks.
constexpr int kDpnPid = 1;
constexpr int kTxnPid = 2;
constexpr int kGaugePid = 3;

std::string MetadataEvent(const char* name, int pid, int64_t tid,
                          const std::string& value, bool has_tid) {
  JsonWriter args;
  args.Add("name", value);
  JsonWriter json;
  json.Add("name", name).Add("ph", "M").Add("pid", pid);
  if (has_tid) json.Add("tid", tid);
  json.AddRaw("args", args.ToString());
  return json.ToString();
}

std::string SliceEvent(const std::string& name, int pid, int64_t tid,
                       SimTime ts, SimTime dur, const std::string& args) {
  JsonWriter json;
  json.Add("name", name)
      .Add("ph", "X")
      .Add("pid", pid)
      .Add("tid", tid)
      .Add("ts", static_cast<int64_t>(ts))
      .Add("dur", static_cast<int64_t>(dur));
  if (!args.empty()) json.AddRaw("args", args);
  return json.ToString();
}

std::string InstantEvent(const std::string& name, int pid, int64_t tid,
                         SimTime ts, const std::string& args) {
  JsonWriter json;
  json.Add("name", name)
      .Add("ph", "i")
      .Add("pid", pid)
      .Add("tid", tid)
      .Add("ts", static_cast<int64_t>(ts))
      .Add("s", "t");
  if (!args.empty()) json.AddRaw("args", args);
  return json.ToString();
}

}  // namespace

Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        const TraceMeta& meta, const std::string& path,
                        const std::vector<GaugeTrack>* gauges) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal(StrCat("cannot open ", path, " for writing"));
  }
  out << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& json) {
    if (!first) out << ",\n";
    first = false;
    out << json;
  };

  emit(MetadataEvent("process_name", kDpnPid, 0,
                     StrCat("DPN scans (", meta.scheduler, ")"), false));
  emit(MetadataEvent("process_name", kTxnPid, 0, "transactions", false));
  if (gauges != nullptr && !gauges->empty()) {
    emit(MetadataEvent("process_name", kGaugePid, 0, "telemetry", false));
  }
  for (int n = 0; n < meta.num_nodes; ++n) {
    emit(MetadataEvent("thread_name", kDpnPid, n, StrCat("DPN ", n), true));
  }
  std::set<TxnId> named;
  for (const TraceEvent& e : events) {
    if (e.txn != kInvalidTxn && named.insert(e.txn).second) {
      emit(MetadataEvent("thread_name", kTxnPid, e.txn,
                         StrCat("T", e.txn), true));
    }
  }

  // Pair start/end events while replaying the stream in order.
  std::map<std::pair<TxnId, NodeId>, std::vector<TraceEvent>> scan_open;
  std::map<TxnId, SimTime> admit_open;   // kArrive/kRestartScheduled time.
  std::map<TxnId, TraceEvent> lock_open; // First kLockRequest of the step.
  std::map<TxnId, TraceEvent> exec_open; // kStepDispatch.
  for (const TraceEvent& e : events) {
    switch (e.type) {
      case TraceEventType::kScanStart:
        scan_open[{e.txn, e.node}].push_back(e);
        break;
      case TraceEventType::kScanEnd: {
        auto it = scan_open.find({e.txn, e.node});
        if (it == scan_open.end() || it->second.empty()) break;
        const TraceEvent start = it->second.front();
        it->second.erase(it->second.begin());
        JsonWriter args;
        args.Add("objects", start.value);
        emit(SliceEvent(StrCat("T", e.txn, " scan F", start.file), kDpnPid,
                        e.node, start.time, e.time - start.time,
                        args.ToString()));
        break;
      }
      case TraceEventType::kArrive:
      case TraceEventType::kRestartScheduled:
      case TraceEventType::kFaultBackoff:
        admit_open.emplace(e.txn, e.time);
        break;
      case TraceEventType::kAdmit: {
        auto it = admit_open.find(e.txn);
        if (it != admit_open.end()) {
          if (e.time > it->second) {
            emit(SliceEvent("admission-wait", kTxnPid, e.txn, it->second,
                            e.time - it->second, ""));
          }
          admit_open.erase(it);
        }
        break;
      }
      case TraceEventType::kAdmissionRejected:
        emit(InstantEvent("admission-rejected", kTxnPid, e.txn, e.time, ""));
        break;
      case TraceEventType::kLockRequest:
        lock_open.emplace(e.txn, e);  // Keep the first request of the step.
        break;
      case TraceEventType::kStepDispatch: {
        auto it = lock_open.find(e.txn);
        if (it != lock_open.end()) {
          emit(SliceEvent(StrCat("lock-wait F", it->second.file), kTxnPid,
                          e.txn, it->second.time,
                          e.time - it->second.time, ""));
          lock_open.erase(it);
        }
        exec_open[e.txn] = e;
        break;
      }
      case TraceEventType::kStepReturn: {
        auto it = exec_open.find(e.txn);
        if (it != exec_open.end()) {
          emit(SliceEvent(StrCat("step ", it->second.step, " F",
                                 it->second.file),
                          kTxnPid, e.txn, it->second.time,
                          e.time - it->second.time, ""));
          exec_open.erase(it);
        }
        break;
      }
      case TraceEventType::kCommit:
        emit(InstantEvent("commit", kTxnPid, e.txn, e.time, ""));
        break;
      case TraceEventType::kAbort: {
        JsonWriter args;
        args.Add("reason", AbortReasonName(e.arg));
        emit(InstantEvent("abort", kTxnPid, e.txn, e.time,
                          args.ToString()));
        // Waits of the dead incarnation stay open; drop them.
        lock_open.erase(e.txn);
        exec_open.erase(e.txn);
        break;
      }
      case TraceEventType::kDpnCrash:
        emit(InstantEvent("crash", kDpnPid, e.node, e.time, ""));
        break;
      case TraceEventType::kDpnRepair:
        emit(InstantEvent("repair", kDpnPid, e.node, e.time, ""));
        break;
      case TraceEventType::kDpnSlowdown: {
        JsonWriter args;
        args.Add("factor", e.value);
        emit(InstantEvent(e.arg == 1 ? "slowdown-start" : "slowdown-end",
                          kDpnPid, e.node, e.time, args.ToString()));
        break;
      }
      case TraceEventType::kLowEval: {
        JsonWriter args;
        args.Add("E", e.value).Add("competitors", e.arg);
        emit(InstantEvent(e.arg >= 0 ? "E(q)" : "E(p)", kTxnPid, e.txn,
                          e.time, args.ToString()));
        break;
      }
      case TraceEventType::kLowDeadlock:
        emit(InstantEvent("E(q)=inf", kTxnPid, e.txn, e.time, ""));
        break;
      case TraceEventType::kGowChainTest: {
        JsonWriter args;
        args.Add("accepted", e.arg == 1).Add("conflict_set", e.value);
        emit(InstantEvent("chain-test", kTxnPid, e.txn, e.time,
                          args.ToString()));
        break;
      }
      case TraceEventType::kGowOrientation: {
        JsonWriter args;
        args.Add("outcome", e.arg).Add("base_cp", e.value)
            .Add("grant_cp", e.value2);
        emit(InstantEvent("chain-orientation", kTxnPid, e.txn, e.time,
                          args.ToString()));
        break;
      }
      case TraceEventType::kC2plPredict:
        if (e.arg == 1) {
          emit(InstantEvent("deadlock-predicted", kTxnPid, e.txn, e.time,
                            ""));
        }
        break;
      case TraceEventType::kOptValidation:
        emit(InstantEvent(e.arg == 1 ? "validation-pass" : "validation-fail",
                          kTxnPid, e.txn, e.time, ""));
        break;
      default:
        break;
    }
  }
  // Telemetry gauges become counter tracks: Perfetto renders ph:"C" events
  // as stacked value graphs alongside the slice tracks above.
  if (gauges != nullptr) {
    for (const GaugeTrack& track : *gauges) {
      for (const auto& [time, value] : track.points) {
        JsonWriter args;
        AddValue(&args, "value", value);
        JsonWriter json;
        json.Add("name", track.name)
            .Add("ph", "C")
            .Add("pid", kGaugePid)
            .Add("tid", 0)
            .Add("ts", static_cast<int64_t>(time));
        json.AddRaw("args", args.ToString());
        emit(json.ToString());
      }
    }
  }
  out << "\n]}\n";
  out.flush();
  if (!out.good()) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

}  // namespace wtpgsched
