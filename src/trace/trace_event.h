#ifndef WTPG_SCHED_TRACE_TRACE_EVENT_H_
#define WTPG_SCHED_TRACE_TRACE_EVENT_H_

#include <cstdint>

#include "model/lock_mode.h"
#include "model/types.h"
#include "sim/time.h"

namespace wtpgsched {

// Typed trace events covering the full transaction lifecycle and the
// scheduler-internal decisions behind it. One TraceEvent is a fixed-size
// record so the recorder can ring-buffer millions of them without
// allocation; which fields are meaningful depends on the type (see
// TraceEventFields in trace_export.cc and DESIGN.md "Observability").
//
// The JSONL schema version (kTraceSchemaVersion) must be bumped whenever a
// type is added/renamed or a field changes meaning.
enum class TraceEventType : uint8_t {
  // --- Transaction lifecycle (emitted by the machine) ---
  kArrive,             // txn — transaction entered the system.
  kAdmit,              // txn — scheduler admitted it (state -> active).
  kAdmissionDelayed,   // txn — admission refused for now; parked.
  kAdmissionRejected,  // txn — rejected outright (GOW chain test).
  kLockRequest,        // txn, file, step — lock decision submitted to CN.
  kLockBlocked,        // txn, file — conflicting holder; parked on granule.
  kLockDelayed,        // txn, file — grantable but refused by the strategy.
  kLockGrant,          // txn, file, mode — lock recorded in the table.
  kLockRelease,        // txn, file — lock released (commit/abort).
  kStepDispatch,       // txn, step, file — CN sends the txn to the DPNs.
  kScanStart,          // txn, node, file, value=objects — cohort submitted.
  kScanEnd,            // txn, node, file — cohort finished scanning.
  kStepReturn,         // txn, step — all cohorts joined; txn back at CN.
  kDataAccess,         // txn, inc, file, mode — logical database access.
  kCommit,             // txn, inc — commit processing finished.
  kAbort,              // txn, inc, arg=AbortReason — incarnation aborted.
  kRestartScheduled,   // txn — restart timer armed after an abort.
  // --- Scheduler internals ---
  kLowEval,        // txn, file, value=E(); arg=|C(q)| for the requester's
                   // evaluation, -1 when this is a competitor's E(p).
  kLowDeadlock,    // txn, file — E(q) = infinity; grant would deadlock.
  kGowChainTest,   // txn, arg=1 accepted / 0 rejected, value=|conflict set|.
  kGowOrientation, // txn, file, arg=GowOutcome, value=base critical path,
                   // value2=critical path with the grant's orientations.
  kC2plPredict,    // txn, file, arg=1 cycle predicted (delay) / 0 clear.
  kOptValidation,  // txn, inc, arg=1 pass / 0 fail.
  // --- Fault lifecycle (emitted by the machine from the FaultPlan) ---
  kDpnCrash,       // node — DPN failed; resident cohorts die.
  kDpnRepair,      // node — DPN back up, placement intact.
  kDpnSlowdown,    // node, arg=1 window opens / 0 closes, value=factor.
  kFaultBackoff,   // txn, inc, value=backoff delay (s) before restart.
  kNumTypes,       // Sentinel; keep last.
};

// Payload of TraceEvent::arg for kAbort.
enum AbortReason : int32_t {
  kAbortValidationFailure = 0,  // OPT certification failed at commit.
  kAbortDeadlockVictim = 1,     // 2PL deadlock victim.
  kAbortNodeCrash = 2,          // A DPN holding one of its cohorts crashed.
  kAbortInjected = 3,           // Spontaneous abort from the fault plan.
};

// Payload of TraceEvent::arg for kGowOrientation.
enum GowOutcome : int32_t {
  kGowGrantTrivial = 0,     // No pending conflicters; nothing determined.
  kGowDelayOriented = 1,    // An order u -> txn already exists; must wait.
  kGowGrantOptimal = 2,     // Grant consistent with the optimized order W.
  kGowDelaySuboptimal = 3,  // Grant would lengthen the chain's critical path.
};

const char* TraceEventTypeName(TraceEventType type);

// One fixed-size trace record. Unused fields keep their defaults; `time` is
// simulated microseconds (SimTime).
struct TraceEvent {
  SimTime time = 0;
  TraceEventType type = TraceEventType::kArrive;
  TxnId txn = kInvalidTxn;
  int32_t incarnation = 0;
  FileId file = kInvalidFile;
  NodeId node = kInvalidNode;
  int32_t step = -1;
  LockMode mode = LockMode::kShared;
  int32_t arg = 0;
  double value = 0.0;
  double value2 = 0.0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TRACE_TRACE_EVENT_H_
