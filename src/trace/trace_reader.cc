#include "trace/trace_reader.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <unordered_map>

#include "util/string_util.h"

namespace wtpgsched {

namespace {

// Minimal parser for the flat one-line JSON objects this library writes:
// string / number / bool values, plus one level of nested object whose raw
// text is kept verbatim (the footer's "counters"). Not a general JSON
// parser — traces are produced by WriteJsonlTrace, and anything else should
// fail loudly.
Status ParseFlatObject(const std::string& line,
                       std::map<std::string, std::string>* out) {
  out->clear();
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto parse_string = [&](std::string* s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s->clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      *s += line[i++];
    }
    if (i >= line.size()) return false;
    ++i;  // Closing quote.
    return true;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') {
    return Status::InvalidArgument("not a JSON object");
  }
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return Status::Ok();
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(&key)) {
      return Status::InvalidArgument("bad JSON key");
    }
    skip_ws();
    if (i >= line.size() || line[i] != ':') {
      return Status::InvalidArgument(StrCat("missing ':' after ", key));
    }
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(&value)) {
        return Status::InvalidArgument(StrCat("bad string value for ", key));
      }
    } else if (i < line.size() && line[i] == '{') {
      // Nested object: capture raw text (no nested strings with braces in
      // this format's counter names worth worrying about beyond quotes).
      const size_t start = i;
      int depth = 0;
      bool in_string = false;
      for (; i < line.size(); ++i) {
        const char c = line[i];
        if (in_string) {
          if (c == '\\') ++i;
          else if (c == '"') in_string = false;
          continue;
        }
        if (c == '"') in_string = true;
        else if (c == '{') ++depth;
        else if (c == '}' && --depth == 0) { ++i; break; }
      }
      if (depth != 0) {
        return Status::InvalidArgument(StrCat("unbalanced object for ", key));
      }
      value = line.substr(start, i - start);
    } else {
      const size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      value = line.substr(start, i - start);
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
        value.pop_back();
      }
      if (value.empty()) {
        return Status::InvalidArgument(StrCat("empty value for ", key));
      }
    }
    (*out)[key] = value;
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') return Status::Ok();
    return Status::InvalidArgument("missing ',' or '}'");
  }
}

const std::unordered_map<std::string, TraceEventType>& TypeByName() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, TraceEventType>;
    for (size_t i = 0; i < static_cast<size_t>(TraceEventType::kNumTypes);
         ++i) {
      const auto type = static_cast<TraceEventType>(i);
      (*m)[TraceEventTypeName(type)] = type;
    }
    return m;
  }();
  return *map;
}

// Status-returning shims over the shared strict parsers in util/string_util.
Status ParseIntField(const std::string& s, int64_t* out) {
  if (!ParseInt64(s, out)) {
    return Status::InvalidArgument(StrCat("bad integer '", s, "'"));
  }
  return Status::Ok();
}

Status ParseDoubleField(const std::string& s, double* out) {
  if (!ParseDouble(s, out)) {
    return Status::InvalidArgument(StrCat("bad number '", s, "'"));
  }
  return Status::Ok();
}

Status EventFromFields(const std::map<std::string, std::string>& kv,
                       TraceEvent* e) {
  *e = TraceEvent{};
  for (const auto& [key, value] : kv) {
    if (key == "type") {
      auto it = TypeByName().find(value);
      if (it == TypeByName().end()) {
        return Status::InvalidArgument(StrCat("unknown event type '", value,
                                              "'"));
      }
      e->type = it->second;
      continue;
    }
    if (key == "mode") {
      if (value != "S" && value != "X") {
        return Status::InvalidArgument(StrCat("bad mode '", value, "'"));
      }
      e->mode = value == "X" ? LockMode::kExclusive : LockMode::kShared;
      continue;
    }
    if (key == "v" || key == "v2") {
      double d = 0.0;
      Status s = ParseDoubleField(value, &d);
      if (!s.ok()) return s;
      (key == "v" ? e->value : e->value2) = d;
      continue;
    }
    int64_t n = 0;
    Status s = ParseIntField(value, &n);
    if (!s.ok()) return Status::InvalidArgument(StrCat(key, ": ", s.message()));
    if (key == "t") e->time = n;
    else if (key == "txn") e->txn = n;
    else if (key == "inc") e->incarnation = static_cast<int32_t>(n);
    else if (key == "file") e->file = static_cast<FileId>(n);
    else if (key == "node") e->node = static_cast<NodeId>(n);
    else if (key == "step") e->step = static_cast<int32_t>(n);
    else if (key == "arg") e->arg = static_cast<int32_t>(n);
    else return Status::InvalidArgument(StrCat("unknown key '", key, "'"));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<TraceEvent> ParseEventJson(const std::string& line) {
  std::map<std::string, std::string> kv;
  Status s = ParseFlatObject(line, &kv);
  if (!s.ok()) return s;
  if (kv.find("type") == kv.end()) {
    return Status::InvalidArgument("event line without \"type\"");
  }
  TraceEvent e;
  s = EventFromFields(kv, &e);
  if (!s.ok()) return s;
  return e;
}

Status ReadJsonlTrace(const std::string& path, ParsedTrace* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open ", path));
  }
  *out = ParsedTrace{};
  std::string line;
  size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::map<std::string, std::string> kv;
    Status s = ParseFlatObject(line, &kv);
    if (!s.ok()) {
      return Status::InvalidArgument(
          StrCat(path, ":", line_no, ": ", s.message()));
    }
    if (!header_seen) {
      auto it = kv.find("schema");
      if (it == kv.end() || it->second != kTraceSchemaVersion) {
        return Status::InvalidArgument(
            StrCat(path, ": missing or unsupported schema (want ",
                   kTraceSchemaVersion, ")"));
      }
      header_seen = true;
      if (kv.count("scheduler")) out->meta.scheduler = kv["scheduler"];
      int64_t n = 0;
      if (kv.count("num_nodes") && ParseIntField(kv["num_nodes"], &n).ok()) {
        out->meta.num_nodes = static_cast<int>(n);
      }
      if (kv.count("num_files") && ParseIntField(kv["num_files"], &n).ok()) {
        out->meta.num_files = static_cast<int>(n);
      }
      if (kv.count("dd") && ParseIntField(kv["dd"], &n).ok()) {
        out->meta.dd = static_cast<int>(n);
      }
      if (kv.count("seed") && ParseIntField(kv["seed"], &n).ok()) {
        out->meta.seed = static_cast<uint64_t>(n);
      }
      continue;
    }
    auto type_it = kv.find("type");
    if (type_it == kv.end()) {
      return Status::InvalidArgument(
          StrCat(path, ":", line_no, ": event without \"type\""));
    }
    if (type_it->second == "end") {
      out->footer_seen = true;
      int64_t n = 0;
      if (kv.count("dropped") && ParseIntField(kv["dropped"], &n).ok()) {
        out->dropped = static_cast<uint64_t>(n);
      }
      if (kv.count("counters")) {
        std::map<std::string, std::string> counters;
        Status cs = ParseFlatObject(kv["counters"], &counters);
        if (!cs.ok()) {
          return Status::InvalidArgument(
              StrCat(path, ":", line_no, ": footer counters: ", cs.message()));
        }
        for (const auto& [name, value] : counters) {
          int64_t v = 0;
          Status vs = ParseIntField(value, &v);
          if (!vs.ok()) {
            return Status::InvalidArgument(StrCat(path, ":", line_no,
                                                  ": counter ", name, ": ",
                                                  vs.message()));
          }
          out->footer_counters.emplace_back(name, static_cast<uint64_t>(v));
        }
      }
      continue;
    }
    if (type_it->second == "gauge-def") {
      int64_t index = 0;
      auto g = kv.find("g");
      auto name = kv.find("name");
      if (g == kv.end() || name == kv.end() ||
          !ParseIntField(g->second, &index).ok() ||
          index != static_cast<int64_t>(out->gauge_names.size())) {
        return Status::InvalidArgument(
            StrCat(path, ":", line_no, ": bad gauge-def line"));
      }
      out->gauge_names.push_back(name->second);
      continue;
    }
    if (type_it->second == "gauge") {
      ParsedTrace::GaugeSample sample;
      int64_t n = 0;
      auto t = kv.find("t");
      auto g = kv.find("g");
      auto v = kv.find("v");
      if (t == kv.end() || g == kv.end() || v == kv.end() ||
          !ParseIntField(t->second, &sample.time).ok() ||
          !ParseIntField(g->second, &n).ok() || n < 0 ||
          n >= static_cast<int64_t>(out->gauge_names.size())) {
        return Status::InvalidArgument(
            StrCat(path, ":", line_no, ": bad gauge line"));
      }
      sample.gauge = static_cast<int>(n);
      // Non-finite values are written as "inf"/"-inf" strings.
      if (v->second == "inf") {
        sample.value = std::numeric_limits<double>::infinity();
      } else if (v->second == "-inf") {
        sample.value = -std::numeric_limits<double>::infinity();
      } else if (v->second == "null") {
        sample.value = std::numeric_limits<double>::quiet_NaN();
      } else if (!ParseDoubleField(v->second, &sample.value).ok()) {
        return Status::InvalidArgument(
            StrCat(path, ":", line_no, ": bad gauge value"));
      }
      out->gauge_samples.push_back(sample);
      continue;
    }
    TraceEvent e;
    Status es = EventFromFields(kv, &e);
    if (!es.ok()) {
      return Status::InvalidArgument(
          StrCat(path, ":", line_no, ": ", es.message()));
    }
    out->events.push_back(e);
  }
  if (!header_seen) {
    return Status::InvalidArgument(StrCat(path, ": empty trace"));
  }
  return Status::Ok();
}

}  // namespace wtpgsched
