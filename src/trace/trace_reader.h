#ifndef WTPG_SCHED_TRACE_TRACE_READER_H_
#define WTPG_SCHED_TRACE_TRACE_READER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_event.h"
#include "trace/trace_export.h"
#include "util/status.h"

namespace wtpgsched {

// A JSONL trace parsed back into memory (see WriteJsonlTrace for the
// format). Unknown event types and unknown keys are errors — the schema
// line must match kTraceSchemaVersion, so a mismatch means a corrupt or
// incompatible file, not a forward-compatibility case.
struct ParsedTrace {
  TraceMeta meta;
  std::vector<TraceEvent> events;
  // Telemetry gauge series merged into the trace ("gauge-def" /
  // "gauge" lines); empty when the run had telemetry disabled.
  std::vector<std::string> gauge_names;
  struct GaugeSample {
    SimTime time = 0;
    int gauge = 0;  // Index into gauge_names.
    double value = 0.0;
  };
  std::vector<GaugeSample> gauge_samples;
  // The footer's counter-registry snapshot, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> footer_counters;
  // From the footer; zero when the footer is missing (truncated file).
  uint64_t dropped = 0;
  bool footer_seen = false;
};

// Parses one event line. Exposed for tests.
StatusOr<TraceEvent> ParseEventJson(const std::string& line);

Status ReadJsonlTrace(const std::string& path, ParsedTrace* out);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TRACE_TRACE_READER_H_
