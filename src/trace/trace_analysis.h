#ifndef WTPG_SCHED_TRACE_TRACE_ANALYSIS_H_
#define WTPG_SCHED_TRACE_TRACE_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/serializability.h"
#include "trace/trace_event.h"

namespace wtpgsched {

// Where a transaction's response time went, reconstructed from its trace
// events. All figures are in simulated seconds and sum (with `other`) to
// `response`, so the breakdown reconciles with RunStats.mean_response_s.
struct TxnBreakdown {
  TxnId txn = kInvalidTxn;
  bool committed = false;
  int restarts = 0;
  double response_s = 0.0;        // arrival -> commit.
  double admission_wait_s = 0.0;  // Parked awaiting admission (all incarnations).
  double lock_wait_s = 0.0;       // Lock request -> step dispatch.
  double execution_s = 0.0;       // Step dispatch -> step return.
  double other_s = 0.0;           // Remainder: CN queueing, commit, restarts.
};

// Aggregate of the per-transaction breakdowns plus decision counts.
struct TraceSummary {
  std::vector<TxnBreakdown> txns;  // Committed transactions only.
  uint64_t arrived = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  // Mean over committed transactions.
  double mean_response_s = 0.0;
  double mean_admission_wait_s = 0.0;
  double mean_lock_wait_s = 0.0;
  double mean_execution_s = 0.0;
  double mean_other_s = 0.0;
  // Event counts by type over the buffered window.
  std::map<std::string, uint64_t> event_counts;
};

// Replays the event stream and computes the wait-time decomposition.
// Transactions whose kArrive fell outside the ring-buffer window are
// skipped (their response time cannot be reconstructed).
TraceSummary SummarizeTrace(const std::vector<TraceEvent>& events);

// Post-hoc serialization-order check: replays the trace's data accesses and
// commits into a precedence (conflict) graph and verifies acyclicity — the
// correctness oracle for every scheduler except NODC. Equivalent to
// CheckConflictSerializability over the machine's ScheduleLog, but driven
// entirely from an exported trace.
SerializabilityResult CheckTraceSerializable(
    const std::vector<TraceEvent>& events);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TRACE_TRACE_ANALYSIS_H_
