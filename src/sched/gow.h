#ifndef WTPG_SCHED_SCHED_GOW_H_
#define WTPG_SCHED_SCHED_GOW_H_

#include <string>

#include "sched/scheduler.h"
#include "wtpg/chain.h"

namespace wtpgsched {

// Globally-Optimized WTPG scheduler (paper Section 3.2, Fig. 4; called the
// Chain-WTPG scheduler in ref [13]).
//
// Phase0 (admission): a new transaction is started only if the conflict
//   graph stays in chain form; otherwise the startup is rejected ("aborted")
//   and resubmitted later. Cost: toptime.
// Phase1: a request conflicting with a held lock is blocked.
// Phase2: compute the full serializable order W minimizing the WTPG
//   critical path — an O(N^2) DP over the chain containing the requester.
//   Cost: chaintime.
// Phase3: grant only if the precedence the grant determines is consistent
//   with W; otherwise delay.
// Phase4: orient the newly determined conflict edges.
class GowScheduler : public WtpgSchedulerBase {
 public:
  // toptime: chain-form test CPU cost; chaintime: optimization CPU cost.
  GowScheduler(SimTime toptime, SimTime chaintime);

  std::string name() const override { return "GOW"; }

  SimTime StartupDecisionCost(const Transaction& txn) const override;
  SimTime LockDecisionCost(const Transaction& txn, int step) const override;

  uint64_t chain_rejections() const { return chain_rejections_; }

  SchedulerTraits traits() const override {
    return {.costly_admission = true};
  }

  void ExportCounters(CounterRegistry* registry) const override;
  void RegisterGauges(GaugeRegistry* gauges) const override;

 protected:
  Decision DecideStartup(Transaction& txn) override;
  void AfterAdmit(Transaction& txn) override;

  Decision DecideLock(Transaction& txn, int step) override;
  void AfterGrant(Transaction& txn, int step) override;

 private:
  SimTime toptime_;
  SimTime chaintime_;
  uint64_t chain_rejections_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_GOW_H_
