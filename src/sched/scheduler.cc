#include "sched/scheduler.h"

#include <algorithm>

#include "util/logging.h"

namespace wtpgsched {

SimTime Scheduler::StartupDecisionCost(const Transaction& txn) const {
  (void)txn;
  return 0;
}

SimTime Scheduler::LockDecisionCost(const Transaction& txn, int step) const {
  (void)txn;
  (void)step;
  return 0;
}

Decision Scheduler::OnStartup(Transaction& txn) {
  WTPG_CHECK(active_.find(txn.id()) == active_.end())
      << "OnStartup for already-active T" << txn.id();
  // Priority-aware admission gate, ahead of the scheduler-specific test:
  // every scheduler inherits it. kDelay parks the transaction; the machine
  // retries it when a commit (or grant / fallback timer) changes the state.
  if (admission_.enabled() && txn.priority < admission_.priority_cutoff &&
      active_low_priority_ >=
          static_cast<size_t>(admission_.low_priority_mpl)) {
    ++admission_gated_;
    return Decision{DecisionKind::kDelay, kInvalidFile};
  }
  Decision d = DecideStartup(txn);
  if (d.kind == DecisionKind::kGrant) {
    active_[txn.id()] = &txn;
    if (txn.priority < admission_.priority_cutoff) ++active_low_priority_;
    AfterAdmit(txn);
  }
  return d;
}

Decision Scheduler::OnLockRequest(Transaction& txn, int step) {
  WTPG_CHECK(active_.find(txn.id()) != active_.end())
      << "lock request from inactive T" << txn.id();
  WTPG_CHECK(txn.NeedsLockAt(step));
  Decision d = DecideLock(txn, step);
  if (d.kind == DecisionKind::kGrant) {
    if (traits().records_locks) {
      const FileId file = txn.step(step).file;
      const LockMode mode = txn.RequestModeAt(step);
      if (traits().checks_compatibility) {
        lock_table_.Grant(file, txn.id(), mode);
      } else {
        lock_table_.ForceGrant(file, txn.id(), mode);
      }
      OnLockRecorded(txn, file);
    }
    AfterGrant(txn, step);
  }
  return d;
}

void Scheduler::OnStepCompleted(Transaction& txn, int step) {
  (void)txn;
  (void)step;
}

bool Scheduler::ValidateAtCommit(Transaction& txn) {
  (void)txn;
  return true;
}

void Scheduler::RegisterGauges(GaugeRegistry* gauges) const {
  gauges->Register("sched.active",
                   [this] { return static_cast<double>(active_.size()); });
  gauges->Register("sched.active_low", [this] {
    return static_cast<double>(active_low_priority_);
  });
  gauges->Register("lock.locked_files", [this] {
    return static_cast<double>(lock_table_.num_locked_files());
  });
}

std::vector<FileId> Scheduler::OnCommit(Transaction& txn) {
  WTPG_CHECK(active_.erase(txn.id()) == 1)
      << "OnCommit for inactive T" << txn.id();
  if (txn.priority < admission_.priority_cutoff && active_low_priority_ > 0) {
    --active_low_priority_;
  }
  std::vector<FileId> released = lock_table_.ReleaseAll(txn.id());
  AfterCommit(txn);
  return released;
}

std::vector<FileId> Scheduler::OnAbort(Transaction& txn) {
  WTPG_CHECK(active_.erase(txn.id()) == 1)
      << "OnAbort for inactive T" << txn.id();
  if (txn.priority < admission_.priority_cutoff && active_low_priority_ > 0) {
    --active_low_priority_;
  }
  std::vector<FileId> released = lock_table_.ReleaseAll(txn.id());
  AfterAbort(txn);
  return released;
}

void WtpgSchedulerBase::AddToGraph(Transaction& txn) {
  graph_.AddNode(txn.id(), txn.DeclaredRemainingCost());
  for (const auto& [id, other] : active_) {
    if (id == txn.id()) continue;
    if (!txn.ConflictsWith(*other)) continue;
    // w(other -> txn): txn's declared cost from its first step conflicting
    // with `other`; symmetric for w(txn -> other).
    const double w_other_txn =
        txn.DeclaredCostFrom(txn.FirstConflictingStep(*other));
    const double w_txn_other =
        other->DeclaredCostFrom(other->FirstConflictingStep(txn));
    graph_.AddConflictEdge(id, txn.id(), /*weight_ab=*/w_other_txn,
                           /*weight_ba=*/w_txn_other);
  }
  // Strict locking: a transaction already holding a granule that txn will
  // need in a conflicting mode precedes txn — the order is determined now.
  // Every declared access also enters the pending index here; it leaves when
  // the lock is recorded (OnLockRecorded) or the incarnation ends.
  for (const auto& [file, mode] : txn.lock_modes()) {
    lock_table_.ConflictingHolders(file, txn.id(), mode, &holders_scratch_);
    for (TxnId holder : holders_scratch_) {
      WTPG_CHECK(graph_.OrientNoRollback(holder, txn.id()))
          << "pre-orientation of holder T" << holder << " -> new T"
          << txn.id() << " cannot cycle";
    }
    if (static_cast<size_t>(file) >= pending_by_file_.size()) {
      pending_by_file_.resize(static_cast<size_t>(file) + 1);
    }
    auto& pending = pending_by_file_[static_cast<size_t>(file)];
    const auto pos = std::lower_bound(
        pending.begin(), pending.end(), txn.id(),
        [](const PendingAccess& a, TxnId id) { return a.txn < id; });
    WTPG_CHECK(pos == pending.end() || pos->txn != txn.id())
        << "T" << txn.id() << " already pending on file " << file;
    pending.insert(pos, PendingAccess{txn.id(), mode});
  }
}

void WtpgSchedulerBase::RegisterGauges(GaugeRegistry* gauges) const {
  Scheduler::RegisterGauges(gauges);
  gauges->Register("wtpg.nodes", [this] {
    return static_cast<double>(graph_.num_nodes());
  });
  gauges->Register("wtpg.edges", [this] {
    return static_cast<double>(graph_.num_edges());
  });
}

void WtpgSchedulerBase::OnStepCompleted(Transaction& txn, int step) {
  (void)step;
  // Only the T0-edge weights change as the schedule proceeds (Section 3.1).
  graph_.SetRemaining(txn.id(), txn.DeclaredRemainingCost());
}

void WtpgSchedulerBase::OnLockRecorded(Transaction& txn, FileId file) {
  RemovePending(file, txn.id());
}

void WtpgSchedulerBase::AfterCommit(Transaction& txn) {
  graph_.RemoveNode(txn.id());
  for (const auto& [file, mode] : txn.lock_modes()) {
    (void)mode;
    RemovePending(file, txn.id());
  }
}

void WtpgSchedulerBase::AfterAbort(Transaction& txn) {
  graph_.RemoveNode(txn.id());
  for (const auto& [file, mode] : txn.lock_modes()) {
    (void)mode;
    RemovePending(file, txn.id());
  }
}

void WtpgSchedulerBase::RemovePending(FileId file, TxnId txn) {
  if (static_cast<size_t>(file) >= pending_by_file_.size()) return;
  auto& pending = pending_by_file_[static_cast<size_t>(file)];
  const auto pos = std::lower_bound(
      pending.begin(), pending.end(), txn,
      [](const PendingAccess& a, TxnId id) { return a.txn < id; });
  if (pos != pending.end() && pos->txn == txn) pending.erase(pos);
}

const std::vector<WtpgSchedulerBase::PendingAccess>&
WtpgSchedulerBase::PendingAccessors(FileId file) const {
  static const std::vector<PendingAccess> empty;
  const size_t idx = static_cast<size_t>(file);
  if (file < 0 || idx >= pending_by_file_.size()) return empty;
  return pending_by_file_[idx];
}

std::vector<TxnId> WtpgSchedulerBase::PendingConflicters(
    FileId file, TxnId requester, LockMode mode) const {
  std::vector<TxnId> result;
  PendingConflicters(file, requester, mode, &result);
  return result;
}

void WtpgSchedulerBase::PendingConflicters(FileId file, TxnId requester,
                                           LockMode mode,
                                           std::vector<TxnId>* out) const {
  out->clear();
  for (const PendingAccess& p : PendingAccessors(file)) {
    if (p.txn != requester && Conflicts(mode, p.mode)) out->push_back(p.txn);
  }
}

size_t WtpgSchedulerBase::CountPendingConflicters(FileId file, TxnId requester,
                                                  LockMode mode) const {
  size_t count = 0;
  for (const PendingAccess& p : PendingAccessors(file)) {
    if (p.txn != requester && Conflicts(mode, p.mode)) ++count;
  }
  return count;
}

void WtpgSchedulerBase::OrientAfterGrant(Transaction& txn, FileId file,
                                         LockMode mode) {
  PendingConflicters(file, txn.id(), mode, &targets_scratch_);
  WTPG_CHECK(graph_.OrientBatchNoRollback(txn.id(), targets_scratch_))
      << "grant to T" << txn.id() << " on file " << file
      << " contradicts WTPG orientations — decision logic must have "
         "prevented this";
}

}  // namespace wtpgsched
