#include "sched/scheduler.h"

#include "util/logging.h"

namespace wtpgsched {

SimTime Scheduler::StartupDecisionCost(const Transaction& txn) const {
  (void)txn;
  return 0;
}

SimTime Scheduler::LockDecisionCost(const Transaction& txn, int step) const {
  (void)txn;
  (void)step;
  return 0;
}

Decision Scheduler::OnStartup(Transaction& txn) {
  WTPG_CHECK(active_.find(txn.id()) == active_.end())
      << "OnStartup for already-active T" << txn.id();
  Decision d = DecideStartup(txn);
  if (d.kind == DecisionKind::kGrant) {
    active_[txn.id()] = &txn;
    AfterAdmit(txn);
  }
  return d;
}

Decision Scheduler::OnLockRequest(Transaction& txn, int step) {
  WTPG_CHECK(active_.find(txn.id()) != active_.end())
      << "lock request from inactive T" << txn.id();
  WTPG_CHECK(txn.NeedsLockAt(step));
  Decision d = DecideLock(txn, step);
  if (d.kind == DecisionKind::kGrant) {
    if (traits().records_locks) {
      const FileId file = txn.step(step).file;
      const LockMode mode = txn.RequestModeAt(step);
      if (traits().checks_compatibility) {
        lock_table_.Grant(file, txn.id(), mode);
      } else {
        lock_table_.ForceGrant(file, txn.id(), mode);
      }
    }
    AfterGrant(txn, step);
  }
  return d;
}

void Scheduler::OnStepCompleted(Transaction& txn, int step) {
  (void)txn;
  (void)step;
}

bool Scheduler::ValidateAtCommit(Transaction& txn) {
  (void)txn;
  return true;
}

std::vector<FileId> Scheduler::OnCommit(Transaction& txn) {
  WTPG_CHECK(active_.erase(txn.id()) == 1)
      << "OnCommit for inactive T" << txn.id();
  std::vector<FileId> released = lock_table_.ReleaseAll(txn.id());
  AfterCommit(txn);
  return released;
}

std::vector<FileId> Scheduler::OnAbort(Transaction& txn) {
  WTPG_CHECK(active_.erase(txn.id()) == 1)
      << "OnAbort for inactive T" << txn.id();
  std::vector<FileId> released = lock_table_.ReleaseAll(txn.id());
  AfterAbort(txn);
  return released;
}

void WtpgSchedulerBase::AddToGraph(Transaction& txn) {
  graph_.AddNode(txn.id(), txn.DeclaredRemainingCost());
  for (const auto& [id, other] : active_) {
    if (id == txn.id()) continue;
    if (!txn.ConflictsWith(*other)) continue;
    // w(other -> txn): txn's declared cost from its first step conflicting
    // with `other`; symmetric for w(txn -> other).
    const double w_other_txn =
        txn.DeclaredCostFrom(txn.FirstConflictingStep(*other));
    const double w_txn_other =
        other->DeclaredCostFrom(other->FirstConflictingStep(txn));
    graph_.AddConflictEdge(id, txn.id(), /*weight_ab=*/w_other_txn,
                           /*weight_ba=*/w_txn_other);
  }
  // Strict locking: a transaction already holding a granule that txn will
  // need in a conflicting mode precedes txn — the order is determined now.
  for (const auto& [file, mode] : txn.lock_modes()) {
    for (TxnId holder :
         lock_table_.ConflictingHolders(file, txn.id(), mode)) {
      WTPG_CHECK(graph_.OrientNoRollback(holder, txn.id()))
          << "pre-orientation of holder T" << holder << " -> new T"
          << txn.id() << " cannot cycle";
    }
  }
}

void WtpgSchedulerBase::OnStepCompleted(Transaction& txn, int step) {
  (void)step;
  // Only the T0-edge weights change as the schedule proceeds (Section 3.1).
  graph_.SetRemaining(txn.id(), txn.DeclaredRemainingCost());
}

void WtpgSchedulerBase::AfterCommit(Transaction& txn) {
  graph_.RemoveNode(txn.id());
}

void WtpgSchedulerBase::AfterAbort(Transaction& txn) {
  graph_.RemoveNode(txn.id());
}

std::vector<TxnId> WtpgSchedulerBase::PendingConflicters(
    FileId file, TxnId requester, LockMode mode) const {
  std::vector<TxnId> result;
  for (const auto& [id, other] : active_) {
    if (id == requester) continue;
    auto it = other->lock_modes().find(file);
    if (it == other->lock_modes().end()) continue;
    if (!Conflicts(mode, it->second)) continue;
    if (lock_table_.Holds(file, id)) continue;  // Granted, not pending.
    result.push_back(id);
  }
  return result;
}

void WtpgSchedulerBase::OrientAfterGrant(Transaction& txn, FileId file,
                                         LockMode mode) {
  const std::vector<TxnId> targets =
      PendingConflicters(file, txn.id(), mode);
  WTPG_CHECK(graph_.OrientBatchNoRollback(txn.id(), targets))
      << "grant to T" << txn.id() << " on file " << file
      << " contradicts WTPG orientations — decision logic must have "
         "prevented this";
}

}  // namespace wtpgsched
