#ifndef WTPG_SCHED_SCHED_NODC_H_
#define WTPG_SCHED_SCHED_NODC_H_

#include <string>

#include "sched/scheduler.h"

namespace wtpgsched {

// NO Data Contention (paper Section 4.2): grants any lock at any time, so it
// measures pure resource contention and upper-bounds every real scheduler.
// The schedules it produces are generally not serializable.
class NodcScheduler : public Scheduler {
 public:
  std::string name() const override { return "NODC"; }

  SchedulerTraits traits() const override {
    return {.checks_compatibility = false};
  }

 protected:
  Decision DecideStartup(Transaction& txn) override {
    (void)txn;
    return Decision{DecisionKind::kGrant, kInvalidFile};
  }

  Decision DecideLock(Transaction& txn, int step) override {
    return Decision{DecisionKind::kGrant, txn.step(step).file};
  }
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_NODC_H_
