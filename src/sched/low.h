#ifndef WTPG_SCHED_SCHED_LOW_H_
#define WTPG_SCHED_SCHED_LOW_H_

#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace wtpgsched {

// Locally-Optimized WTPG scheduler (paper Section 3.3, Figs. 5 and 7;
// called the K-conflict WTPG scheduler in ref [13]).
//
// Phase1: a request conflicting with a held lock is blocked.
// Phase2: E(q) = critical path of the WTPG after hypothetically granting q
//   (with forced orientation of conflict edges); infinity — i.e. deadlock —
//   delays q.
// Phase3: q is granted only if E(q) <= E(p) for every conflicting
//   access-declaration p in C(q); otherwise the lock should go to the
//   transaction declaring the cheaper p first, so q is delayed.
// Phase4: orient the newly determined edges.
//
// |C(q)| is limited to K: a new transaction starts only while no granule's
// set of mutually conflicting pending declarations would exceed K + 1
// transactions. Unlike GOW's chain form, this still admits non-chain WTPGs.
class LowScheduler : public WtpgSchedulerBase {
 public:
  // kwtpgtime: CPU cost of one E() evaluation. When charge_per_eval is
  // true (default, see DESIGN.md) a decision costs
  // kwtpgtime * (1 + |C(q)|); otherwise a flat kwtpgtime.
  LowScheduler(int k, SimTime kwtpgtime, bool charge_per_eval = true);

  std::string name() const override;

  SimTime LockDecisionCost(const Transaction& txn, int step) const override;

  int k() const { return k_; }
  uint64_t admission_k_rejections() const { return admission_k_rejections_; }
  uint64_t deadlock_delays() const { return deadlock_delays_; }

  void ExportCounters(CounterRegistry* registry) const override;
  void RegisterGauges(GaugeRegistry* gauges) const override;

 protected:
  Decision DecideStartup(Transaction& txn) override;
  void AfterAdmit(Transaction& txn) override;

  Decision DecideLock(Transaction& txn, int step) override;
  void AfterGrant(Transaction& txn, int step) override;

  // Hook for the LOW-LB extension: extra penalty added to E(q) of a
  // hypothetical grant (load-balancing term). Default 0.
  virtual double GrantPenalty(const Transaction& txn, int step) const;

 private:
  // True if admitting `txn` keeps every granule's conflicting pending
  // declaration count within K for every would-be requester.
  bool AdmissionWithinK(const Transaction& txn) const;

  int k_;
  SimTime kwtpgtime_;
  bool charge_per_eval_;
  uint64_t admission_k_rejections_ = 0;
  uint64_t deadlock_delays_ = 0;
  // DecideLock scratch (|C(q)| <= K): the E(q) competitor set and the inner
  // per-competitor C(p) list live across EvaluateGrant calls, so two.
  std::vector<TxnId> competitors_scratch_;
  std::vector<TxnId> cp_scratch_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_LOW_H_
