#ifndef WTPG_SCHED_SCHED_SCHEDULER_FACTORY_H_
#define WTPG_SCHED_SCHED_SCHEDULER_FACTORY_H_

#include <memory>

#include "machine/config.h"
#include "sched/scheduler.h"

namespace wtpgsched {

// Builds the scheduler selected by `config`, wiring in the Table-1 CPU
// costs. LOW-LB's load probe must be attached by the machine afterwards.
std::unique_ptr<Scheduler> CreateScheduler(const SimConfig& config);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_SCHEDULER_FACTORY_H_
