#ifndef WTPG_SCHED_SCHED_TWO_PL_H_
#define WTPG_SCHED_SCHED_TWO_PL_H_

#include <string>
#include <unordered_map>

#include "metrics/counters.h"
#include "sched/scheduler.h"

namespace wtpgsched {

// Traditional strict two-phase locking with deadlock detection — the
// protocol the paper's introduction dismisses for batch workloads ("the
// traditional two-phase locking protocol does not work well in this case
// because of 'chains of blocking'"). Included as a baseline: requests that
// conflict with a held lock block FIFO; a block that closes a wait-for
// cycle aborts the requester, which restarts from scratch.
//
// Unlike C2PL it needs no access declarations — this is what declaring
// buys the cautious schedulers.
class TwoPlScheduler : public Scheduler {
 public:
  // ddtime: CPU cost of the deadlock-detection search per blocked request.
  explicit TwoPlScheduler(SimTime ddtime);

  std::string name() const override { return "2PL"; }

  SimTime LockDecisionCost(const Transaction& txn, int step) const override;

  uint64_t deadlock_aborts() const { return deadlock_aborts_; }

  void ExportCounters(CounterRegistry* registry) const override {
    registry->Counter("twopl.deadlock_aborts") += deadlock_aborts_;
  }

  void RegisterGauges(GaugeRegistry* gauges) const override {
    Scheduler::RegisterGauges(gauges);
    gauges->Register("twopl.deadlock_aborts", [this] {
      return static_cast<double>(deadlock_aborts_);
    });
  }

 protected:
  Decision DecideStartup(Transaction& txn) override;
  Decision DecideLock(Transaction& txn, int step) override;
  void AfterGrant(Transaction& txn, int step) override;
  void AfterCommit(Transaction& txn) override;
  void AfterAbort(Transaction& txn) override;

 private:
  // True if making `txn` wait for the conflicting holders of `file` closes
  // a cycle in the waits-for graph (txn -> holders -> what they wait on).
  bool WouldDeadlock(TxnId txn, FileId file) const;

  SimTime ddtime_;
  // File each blocked transaction currently waits on.
  std::unordered_map<TxnId, FileId> waiting_on_;
  uint64_t deadlock_aborts_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_TWO_PL_H_
