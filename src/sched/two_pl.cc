#include "sched/two_pl.h"

#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace wtpgsched {

TwoPlScheduler::TwoPlScheduler(SimTime ddtime) : ddtime_(ddtime) {}

SimTime TwoPlScheduler::LockDecisionCost(const Transaction& txn,
                                         int step) const {
  (void)txn;
  (void)step;
  return ddtime_;
}

Decision TwoPlScheduler::DecideStartup(Transaction& txn) {
  (void)txn;
  return Decision{DecisionKind::kGrant, kInvalidFile};
}

bool TwoPlScheduler::WouldDeadlock(TxnId txn, FileId file) const {
  // DFS over the waits-for relation starting from the holders `txn` would
  // wait on; reaching `txn` again closes a cycle.
  std::vector<TxnId> stack;
  std::unordered_set<TxnId> visited;
  auto push_holders = [&](FileId f, TxnId waiter) {
    for (const LockTable::Holder& h : lock_table_.HoldersOf(f)) {
      if (h.txn == waiter) continue;
      if (visited.insert(h.txn).second) stack.push_back(h.txn);
    }
  };
  push_holders(file, txn);
  while (!stack.empty()) {
    const TxnId cur = stack.back();
    stack.pop_back();
    if (cur == txn) return true;
    auto it = waiting_on_.find(cur);
    if (it == waiting_on_.end()) continue;
    for (const LockTable::Holder& h : lock_table_.HoldersOf(it->second)) {
      if (h.txn == txn) return true;
      if (h.txn != cur && visited.insert(h.txn).second) {
        stack.push_back(h.txn);
      }
    }
  }
  return false;
}

Decision TwoPlScheduler::DecideLock(Transaction& txn, int step) {
  const FileId file = txn.step(step).file;
  const LockMode mode = txn.RequestModeAt(step);
  if (lock_table_.CanGrant(file, txn.id(), mode)) {
    waiting_on_.erase(txn.id());
    return Decision{DecisionKind::kGrant, file};
  }
  if (WouldDeadlock(txn.id(), file)) {
    // Victim policy: abort the requester (it restarts from scratch).
    ++deadlock_aborts_;
    waiting_on_.erase(txn.id());
    return Decision{DecisionKind::kAbortRestart, file};
  }
  waiting_on_[txn.id()] = file;
  return Decision{DecisionKind::kBlock, file};
}

void TwoPlScheduler::AfterGrant(Transaction& txn, int step) {
  (void)step;
  waiting_on_.erase(txn.id());
}

void TwoPlScheduler::AfterCommit(Transaction& txn) {
  waiting_on_.erase(txn.id());
}

void TwoPlScheduler::AfterAbort(Transaction& txn) {
  waiting_on_.erase(txn.id());
}

}  // namespace wtpgsched
