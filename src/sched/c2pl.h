#ifndef WTPG_SCHED_SCHED_C2PL_H_
#define WTPG_SCHED_SCHED_C2PL_H_

#include <limits>
#include <string>

#include "sched/scheduler.h"

namespace wtpgsched {

// Cautious Two-Phase Locking (paper Section 4.2, ref [12]): strict 2PL with
// incremental lock requests, made deadlock-free by prediction — it keeps an
// *unweighted* WTPG of declared conflicts and grants a request only if it is
// not blocked and the precedence order it determines keeps the graph
// acyclic; otherwise the request is delayed. No deadlocks, no rollbacks,
// but chains of blocking remain possible (the paper's main criticism).
//
// The optional MPL limit turns this into C2PL+M: admission is refused while
// `mpl` transactions are active. The experiment harness tunes mpl per
// configuration and reports the best ("the best C2PL to control
// multi-programming level").
class C2plScheduler : public WtpgSchedulerBase {
 public:
  // ddtime: CPU cost of the deadlock-prediction test per lock decision.
  explicit C2plScheduler(SimTime ddtime,
                         int mpl = std::numeric_limits<int>::max());

  std::string name() const override;

  SimTime LockDecisionCost(const Transaction& txn, int step) const override;

  int mpl() const { return mpl_; }
  uint64_t predicted_deadlocks() const { return predicted_deadlocks_; }

  SchedulerTraits traits() const override {
    return {.retry_delayed_on_grant = false};
  }

  void ExportCounters(CounterRegistry* registry) const override;
  void RegisterGauges(GaugeRegistry* gauges) const override;

 protected:
  Decision DecideStartup(Transaction& txn) override;
  void AfterAdmit(Transaction& txn) override;

  Decision DecideLock(Transaction& txn, int step) override;
  void AfterGrant(Transaction& txn, int step) override;

 private:
  SimTime ddtime_;
  int mpl_;
  uint64_t predicted_deadlocks_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_C2PL_H_
