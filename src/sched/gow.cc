#include "sched/gow.h"

#include "metrics/counters.h"
#include "util/logging.h"

namespace wtpgsched {

GowScheduler::GowScheduler(SimTime toptime, SimTime chaintime)
    : toptime_(toptime), chaintime_(chaintime) {}

SimTime GowScheduler::StartupDecisionCost(const Transaction& txn) const {
  (void)txn;
  return toptime_;
}

SimTime GowScheduler::LockDecisionCost(const Transaction& txn,
                                       int step) const {
  (void)txn;
  (void)step;
  return chaintime_;
}

Decision GowScheduler::DecideStartup(Transaction& txn) {
  // Phase0: chain-form test.
  std::vector<TxnId> conflict_set;
  for (const auto& [id, other] : active_) {
    if (txn.ConflictsWith(*other)) conflict_set.push_back(id);
  }
  const bool accepted = CanExtendChain(graph_, conflict_set);
  if (tracing()) {
    trace_->Record({.time = trace_->now(),
                    .type = TraceEventType::kGowChainTest,
                    .txn = txn.id(),
                    .arg = accepted ? 1 : 0,
                    .value = static_cast<double>(conflict_set.size())});
  }
  if (!accepted) {
    ++chain_rejections_;
    return Decision{DecisionKind::kReject, kInvalidFile};
  }
  return Decision{DecisionKind::kGrant, kInvalidFile};
}

void GowScheduler::AfterAdmit(Transaction& txn) { AddToGraph(txn); }

Decision GowScheduler::DecideLock(Transaction& txn, int step) {
  const FileId file = txn.step(step).file;
  const LockMode mode = txn.RequestModeAt(step);
  // Phase1.
  if (!lock_table_.CanGrant(file, txn.id(), mode)) {
    return Decision{DecisionKind::kBlock, file};
  }
  // The orientations this grant would determine. In chain form every
  // conflicter is adjacent to txn in its chain.
  const std::vector<TxnId> targets =
      PendingConflicters(file, txn.id(), mode);
  if (targets.empty()) {
    // No serialization order is determined: trivially consistent with W.
    if (tracing()) {
      trace_->Record({.time = trace_->now(),
                      .type = TraceEventType::kGowOrientation,
                      .txn = txn.id(),
                      .file = file,
                      .step = step,
                      .arg = static_cast<int32_t>(
                          GowOutcome::kGowGrantTrivial)});
    }
    return Decision{DecisionKind::kGrant, file};
  }
  // Already-determined order against us => granting would close a cycle.
  for (TxnId u : targets) {
    if (graph_.IsOriented(u, txn.id())) {
      if (tracing()) {
        trace_->Record({.time = trace_->now(),
                        .type = TraceEventType::kGowOrientation,
                        .txn = txn.id(),
                        .file = file,
                        .step = step,
                        .arg = static_cast<int32_t>(
                            GowOutcome::kGowDelayOriented)});
      }
      return Decision{DecisionKind::kDelay, file};
    }
  }
  // Phase2: the globally-optimized serializable order W is the orientation
  // minimizing the chain's critical path. Phase3: the grant is consistent
  // with W iff forcing the orientations it determines still achieves that
  // minimal critical path — i.e. *some* optimal order grants q (ties go to
  // the requester; delaying on an exact tie would starve symmetric
  // workloads).
  StatusOr<ChainPlan> base = OptimizeChainOf(graph_, txn.id());
  WTPG_CHECK(base.ok()) << base.status().ToString();
  // Speculate the forced orientations in place (journal + rollback) instead
  // of cloning the graph — this runs on every GOW lock decision.
  Wtpg::OrientJournal journal;
  WTPG_CHECK(graph_.OrientBatch(txn.id(), targets, &journal))
      << "chain-form orientations cannot cycle once IsOriented was checked";
  StatusOr<ChainPlan> with_grant = OptimizeChainOf(graph_, txn.id());
  graph_.Rollback(&journal);
  WTPG_CHECK(with_grant.ok()) << with_grant.status().ToString();
  const bool suboptimal =
      with_grant->critical_path > base->critical_path + 1e-9;
  if (tracing()) {
    // Optimized-order comparison: critical path of the best order without
    // the grant (value) vs. with its forced orientations (value2).
    trace_->Record({.time = trace_->now(),
                    .type = TraceEventType::kGowOrientation,
                    .txn = txn.id(),
                    .file = file,
                    .step = step,
                    .arg = static_cast<int32_t>(
                        suboptimal ? GowOutcome::kGowDelaySuboptimal
                                   : GowOutcome::kGowGrantOptimal),
                    .value = base->critical_path,
                    .value2 = with_grant->critical_path});
  }
  if (suboptimal) {
    return Decision{DecisionKind::kDelay, file};
  }
  return Decision{DecisionKind::kGrant, file};
}

void GowScheduler::ExportCounters(CounterRegistry* registry) const {
  registry->Counter("gow.chain_rejections") += chain_rejections_;
}

void GowScheduler::RegisterGauges(GaugeRegistry* gauges) const {
  WtpgSchedulerBase::RegisterGauges(gauges);
  gauges->Register("gow.chain_rejections", [this] {
    return static_cast<double>(chain_rejections_);
  });
}

void GowScheduler::AfterGrant(Transaction& txn, int step) {
  // Phase4.
  const FileId file = txn.step(step).file;
  OrientAfterGrant(txn, file, txn.RequestModeAt(step));
}

}  // namespace wtpgsched
