#ifndef WTPG_SCHED_SCHED_SCHEDULER_H_
#define WTPG_SCHED_SCHED_SCHEDULER_H_

#include <map>
#include <string>
#include <vector>

#include "lock/lock_table.h"
#include "model/transaction.h"
#include "model/types.h"
#include "sim/time.h"
#include "telemetry/gauge_registry.h"
#include "trace/trace_recorder.h"
#include "wtpg/wtpg.h"

namespace wtpgsched {

// Outcome of a scheduler decision (paper Figs. 4 and 7):
//  kGrant  — the request proceeds now.
//  kBlock  — a conflicting lock is held; the machine queues the requester on
//            the granule and retries when it is released.
//  kDelay  — grantable but refused by the scheduling strategy; the machine
//            parks the requester and retries on the next state change
//            (commit / grant) or after the fallback delay.
//  kReject — admission refused outright (GOW's chain-form test); the
//            transaction is resubmitted later, like an aborted request.
//  kAbortRestart — the requester must be aborted and restarted from
//            scratch (2PL's deadlock-victim path); its locks are released
//            and all work of the incarnation is wasted.
enum class DecisionKind { kGrant, kBlock, kDelay, kReject, kAbortRestart };

struct Decision {
  DecisionKind kind = DecisionKind::kGrant;
  // Which granule the decision refers to (for kBlock bookkeeping).
  FileId file = kInvalidFile;
};

// Priority-aware admission control, enforced by the Scheduler base class
// ahead of every scheduler's own startup test (so all schedulers inherit
// it). While `low_priority_mpl` transactions with priority <
// `priority_cutoff` are active, further low-priority startups are delayed
// (parked by the machine and retried on commits); high-priority
// transactions are never gated. Disabled by default — the paper's
// closed-batch experiments run without it.
struct AdmissionControl {
  int low_priority_mpl = 0;  // 0 disables the gate.
  int priority_cutoff = 1;   // Gate applies to priority < cutoff.

  bool enabled() const { return low_priority_mpl > 0; }
};

// Static capabilities of a scheduler, declared in one value struct instead
// of a virtual per capability. The machine and the base-class grant path
// read these; a scheduler that deviates from the defaults overrides
// traits() with a one-line initializer.
struct SchedulerTraits {
  // Writes are deferred to commit (OPT's private workspace model). The
  // machine logs write accesses at commit time for such schedulers and at
  // scan time otherwise.
  bool defers_writes = false;
  // Each admission (re)test consumes control-node CPU, in which case the
  // machine bounds how many parked startups it retests per wake event
  // (config.run.admission_retry_limit). False for schedulers whose
  // admission test is a plain lock-table scan.
  bool costly_admission = false;
  // A lock grant can flip earlier kDelay decisions, so the machine should
  // retry delayed requests after each grant. True for the WTPG optimizers
  // (their E()/plan comparisons change with every orientation); false for
  // C2PL, whose delay reasons (predicted deadlock) only clear at commit —
  // and whose saturated graphs make per-grant retries expensive.
  bool retry_delayed_on_grant = true;
  // Granted locks are recorded with compatibility checking (NODC clears
  // this to force-grant; OPT clears records_locks to skip entirely).
  bool checks_compatibility = true;
  bool records_locks = true;
};

// Concurrency-control scheduler interface. The machine drives transactions
// and consults the scheduler for admission and lock decisions; decisions run
// as control-node CPU jobs whose service times come from the *Cost methods
// (Table 1 of the paper). The scheduler owns the lock table.
//
// Contract:
//  * OnStartup is called at arrival and on every admission retry. On kGrant
//    the scheduler registers the transaction (and ASL atomically acquires
//    all declared locks).
//  * OnLockRequest is called only for steps with NeedsLockAt(step) when the
//    lock is not yet held. On kGrant the lock is recorded.
//  * OnStepCompleted lets WTPG schedulers maintain the T0-edge weights.
//  * ValidateAtCommit is OPT's certification hook (false => restart).
//  * OnCommit / OnAbort end an incarnation and release bookkeeping; both
//    return the files whose locks were released (so the machine can wake
//    blocked requests).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // CPU cost charged at the control node for processing the decision.
  virtual SimTime StartupDecisionCost(const Transaction& txn) const;
  virtual SimTime LockDecisionCost(const Transaction& txn, int step) const;

  Decision OnStartup(Transaction& txn);
  Decision OnLockRequest(Transaction& txn, int step);

  virtual void OnStepCompleted(Transaction& txn, int step);
  virtual bool ValidateAtCommit(Transaction& txn);

  // The machine stamps the simulated time before every decision hook;
  // schedulers are otherwise clock-free (only OPT uses it).
  virtual void OnClock(SimTime now) { (void)now; }

  // Declarative capabilities (see SchedulerTraits). Must be constant for
  // the scheduler's lifetime.
  virtual SchedulerTraits traits() const { return SchedulerTraits{}; }

  std::vector<FileId> OnCommit(Transaction& txn);
  std::vector<FileId> OnAbort(Transaction& txn);

  LockTable& lock_table() { return lock_table_; }
  const LockTable& lock_table() const { return lock_table_; }

  // Transactions admitted and not yet committed/aborted.
  size_t num_active() const { return active_.size(); }
  const std::map<TxnId, Transaction*>& active() const { return active_; }

  // Recorder for scheduler-internal decision events (E(q) evaluations,
  // chain tests, deadlock predictions, validation outcomes). The machine
  // wires this before the run; the recorder stamps time via its now()
  // clock, which the machine refreshes per event.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  // Priority-aware admission gate shared by every scheduler (machine wires
  // it from config.machine.batch_mpl before the run). When enabled,
  // OnStartup delays low-priority startups while the low-priority active
  // count is at the limit, before the scheduler-specific test runs.
  void set_admission(const AdmissionControl& admission) {
    admission_ = admission;
  }
  const AdmissionControl& admission() const { return admission_; }

  // Low-priority transactions currently active / startups gated so far.
  size_t active_low_priority() const { return active_low_priority_; }
  uint64_t admission_gated() const { return admission_gated_; }

  // Adds this scheduler's decision counters (e.g. "low.deadlock_delays")
  // to the run's registry; called once at the end of a run.
  virtual void ExportCounters(CounterRegistry* registry) const {
    (void)registry;
  }

  // Registers this scheduler's live gauges (active MPL, lock-table size,
  // WTPG size, running decision counts) for periodic sampling; called once
  // during machine construction when telemetry is enabled. Overrides must
  // call the base first so "sched.*" columns precede scheduler-specific
  // ones.
  virtual void RegisterGauges(GaugeRegistry* gauges) const;

 protected:
  // --- Template-method hooks ---

  virtual Decision DecideStartup(Transaction& txn) = 0;
  // Registration already happened when this runs (ASL acquires locks here).
  virtual void AfterAdmit(Transaction& /*txn*/) {}

  virtual Decision DecideLock(Transaction& txn, int step) = 0;
  // Called the moment a granted lock lands in the table (before AfterGrant),
  // so schedulers keeping derived lock-state indexes (e.g. the pending-
  // accessor index in WtpgSchedulerBase) update them at the source of truth.
  // Not called when traits().records_locks is false.
  virtual void OnLockRecorded(Transaction& /*txn*/, FileId /*file*/) {}
  // Lock already recorded when this runs (WTPG schedulers orient edges).
  virtual void AfterGrant(Transaction& /*txn*/, int /*step*/) {}

  virtual void AfterCommit(Transaction& /*txn*/) {}
  virtual void AfterAbort(Transaction& /*txn*/) {}

  // True when scheduler-internal tracing is on (guard event payload work).
  bool tracing() const { return trace_ != nullptr && trace_->enabled(); }

  LockTable lock_table_;
  std::map<TxnId, Transaction*> active_;
  TraceRecorder* trace_ = nullptr;

 private:
  // Admission-control state (base-class only; OnStartup / OnCommit /
  // OnAbort maintain the low-priority active count).
  AdmissionControl admission_;
  size_t active_low_priority_ = 0;
  uint64_t admission_gated_ = 0;
};

// Shared machinery for the schedulers that maintain a (weighted or
// unweighted) transaction-precedence graph: C2PL, GOW, LOW.
class WtpgSchedulerBase : public Scheduler {
 public:
  const Wtpg& graph() const { return graph_; }

  void OnStepCompleted(Transaction& txn, int step) override;

  // Adds the precedence-graph size gauges shared by C2PL / GOW / LOW.
  void RegisterGauges(GaugeRegistry* gauges) const override;

 protected:
  // A declared-but-ungranted access: one entry per (file, active txn) pair,
  // kept in the per-file index below until the lock is recorded or the
  // incarnation ends.
  struct PendingAccess {
    TxnId txn;
    LockMode mode;  // The declared (strongest) mode for the file.
  };

  // Adds txn to the graph: node with W0 = declared total, conflict edges to
  // every conflicting active transaction, and pre-orientations u -> txn for
  // every u already holding a conflicting lock (strict locking forces the
  // order as soon as u holds the granule). Also registers txn's declared
  // accesses in the pending-accessor index.
  void AddToGraph(Transaction& txn);

  void OnLockRecorded(Transaction& txn, FileId file) override;
  void AfterCommit(Transaction& txn) override;
  void AfterAbort(Transaction& txn) override;

  // Pending accessors of `file`, ascending TxnId. Maintained incrementally
  // (insert at admission, erase at grant / commit / abort) so admission and
  // lock decisions need no rescan of the active set.
  const std::vector<PendingAccess>& PendingAccessors(FileId file) const;

  // Active transactions (other than `requester`) that have a *pending*
  // (declared but not yet granted) access to `file` conflicting with
  // `mode`. These are the C(q) candidates and the orientation targets of a
  // grant. The out-parameter variant clears and fills *out; the counting
  // variant avoids materializing the list at all (decision-cost queries).
  std::vector<TxnId> PendingConflicters(FileId file, TxnId requester,
                                        LockMode mode) const;
  void PendingConflicters(FileId file, TxnId requester, LockMode mode,
                          std::vector<TxnId>* out) const;
  size_t CountPendingConflicters(FileId file, TxnId requester,
                                 LockMode mode) const;

  // Orients requester -> u for every pending conflicter after a grant.
  // The decision logic must have verified feasibility; failures are bugs.
  void OrientAfterGrant(Transaction& txn, FileId file, LockMode mode);

  Wtpg graph_;

 private:
  void RemovePending(FileId file, TxnId txn);

  // Indexed by FileId (dense, grown on demand); each list sorted by TxnId
  // so index-driven queries see the same ascending order the historical
  // active_-map scan produced.
  std::vector<std::vector<PendingAccess>> pending_by_file_;
  std::vector<TxnId> holders_scratch_;   // AddToGraph pre-orientation scan.
  std::vector<TxnId> targets_scratch_;   // OrientAfterGrant batch.
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_SCHEDULER_H_
