#include "sched/opt.h"

#include <unordered_set>

namespace wtpgsched {

Decision OptScheduler::DecideStartup(Transaction& txn) {
  incarnation_start_[txn.id()] = now_;
  return Decision{DecisionKind::kGrant, kInvalidFile};
}

Decision OptScheduler::DecideLock(Transaction& txn, int step) {
  // Optimistic execution: never blocks, never takes locks.
  return Decision{DecisionKind::kGrant, txn.step(step).file};
}

bool OptScheduler::ValidateAtCommit(Transaction& txn) {
  const SimTime started = incarnation_start_.at(txn.id());
  // Files this transaction read (semantic S access on any step).
  std::unordered_set<FileId> read_files;
  for (const StepSpec& step : txn.steps()) {
    if (step.access == LockMode::kShared) read_files.insert(step.file);
  }
  for (const auto& [file, mode] : txn.lock_modes()) {
    (void)mode;
    if (!validate_writes_ && read_files.find(file) == read_files.end()) {
      continue;
    }
    auto it = last_write_commit_.find(file);
    if (it != last_write_commit_.end() && it->second > started) {
      ++validation_failures_;
      return false;
    }
  }
  return true;
}

void OptScheduler::AfterCommit(Transaction& txn) {
  incarnation_start_.erase(txn.id());
  for (const StepSpec& step : txn.steps()) {
    if (step.access == LockMode::kExclusive) {
      last_write_commit_[step.file] = now_;
    }
  }
}

}  // namespace wtpgsched
