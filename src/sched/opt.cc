#include "sched/opt.h"

#include <unordered_set>

#include "metrics/counters.h"

namespace wtpgsched {

Decision OptScheduler::DecideStartup(Transaction& txn) {
  incarnation_start_[txn.id()] = now_;
  return Decision{DecisionKind::kGrant, kInvalidFile};
}

Decision OptScheduler::DecideLock(Transaction& txn, int step) {
  // Optimistic execution: never blocks, never takes locks.
  return Decision{DecisionKind::kGrant, txn.step(step).file};
}

bool OptScheduler::ValidateAtCommit(Transaction& txn) {
  const SimTime started = incarnation_start_.at(txn.id());
  // Files this transaction read (semantic S access on any step).
  std::unordered_set<FileId> read_files;
  for (const StepSpec& step : txn.steps()) {
    if (step.access == LockMode::kShared) read_files.insert(step.file);
  }
  for (const auto& [file, mode] : txn.lock_modes()) {
    (void)mode;
    if (!validate_writes_ && read_files.find(file) == read_files.end()) {
      continue;
    }
    auto it = last_write_commit_.find(file);
    if (it != last_write_commit_.end() && it->second > started) {
      ++validation_failures_;
      if (tracing()) {
        // Failed backward validation: the conflicting file and the age of
        // the incarnation at validation time (seconds).
        trace_->Record({.time = trace_->now(),
                        .type = TraceEventType::kOptValidation,
                        .txn = txn.id(),
                        .incarnation = txn.restarts,
                        .file = file,
                        .arg = 0,
                        .value = TimeToSeconds(now_ - started)});
      }
      return false;
    }
  }
  if (tracing()) {
    trace_->Record({.time = trace_->now(),
                    .type = TraceEventType::kOptValidation,
                    .txn = txn.id(),
                    .incarnation = txn.restarts,
                    .arg = 1,
                    .value = TimeToSeconds(now_ - started)});
  }
  return true;
}

void OptScheduler::AfterCommit(Transaction& txn) {
  incarnation_start_.erase(txn.id());
  for (const StepSpec& step : txn.steps()) {
    if (step.access == LockMode::kExclusive) {
      last_write_commit_[step.file] = now_;
    }
  }
}

void OptScheduler::ExportCounters(CounterRegistry* registry) const {
  registry->Counter("opt.validation_failures") += validation_failures_;
}

void OptScheduler::RegisterGauges(GaugeRegistry* gauges) const {
  Scheduler::RegisterGauges(gauges);
  gauges->Register("opt.validation_failures", [this] {
    return static_cast<double>(validation_failures_);
  });
}

}  // namespace wtpgsched
