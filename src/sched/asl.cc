#include "sched/asl.h"

#include "util/logging.h"

namespace wtpgsched {

Decision AslScheduler::DecideStartup(Transaction& txn) {
  for (const auto& [file, mode] : txn.lock_modes()) {
    if (!lock_table_.CanGrant(file, txn.id(), mode)) {
      // Wait until the whole lock set is simultaneously available; the
      // machine retries on every commit.
      return Decision{DecisionKind::kBlock, file};
    }
  }
  return Decision{DecisionKind::kGrant, kInvalidFile};
}

void AslScheduler::AfterAdmit(Transaction& txn) {
  for (const auto& [file, mode] : txn.lock_modes()) {
    lock_table_.Grant(file, txn.id(), mode);
  }
}

Decision AslScheduler::DecideLock(Transaction& txn, int step) {
  // All locks were taken at startup; the machine never needs to ask.
  WTPG_CHECK(false) << "ASL lock request for T" << txn.id() << " step "
                    << step << " — locks are preclaimed";
  return Decision{DecisionKind::kGrant, txn.step(step).file};
}

}  // namespace wtpgsched
