#ifndef WTPG_SCHED_SCHED_OPT_H_
#define WTPG_SCHED_SCHED_OPT_H_

#include <string>
#include <unordered_map>

#include "sched/scheduler.h"

namespace wtpgsched {

// Optimistic locking (paper Section 4.2, ref [11] Kung-Robinson):
// transactions execute without any locking; serializability is certified at
// commit by backward validation, and a transaction that fails certification
// is aborted and restarted.
//
// Validation rule (documented substitution, DESIGN.md): transaction T fails
// if any file it accessed (read or written) was written by a transaction
// that committed during T's current incarnation. Checking writes as well as
// reads is needed for file-granule batch workloads like Experiment 2, whose
// hot-set conflicts are write-write; a read-set-only check would make OPT
// spuriously abort-free there, contradicting the paper's observed behaviour.
class OptScheduler : public Scheduler {
 public:
  explicit OptScheduler(bool validate_writes = true)
      : validate_writes_(validate_writes) {}

  std::string name() const override { return "OPT"; }

  void OnClock(SimTime now) override { now_ = now; }

  SchedulerTraits traits() const override {
    return {.defers_writes = true, .records_locks = false};
  }

  bool ValidateAtCommit(Transaction& txn) override;

  uint64_t validation_failures() const { return validation_failures_; }

  void ExportCounters(CounterRegistry* registry) const override;
  void RegisterGauges(GaugeRegistry* gauges) const override;

 protected:
  Decision DecideStartup(Transaction& txn) override;
  Decision DecideLock(Transaction& txn, int step) override;
  void AfterCommit(Transaction& txn) override;

 private:
  bool validate_writes_;
  SimTime now_ = 0;
  // Last time each file was written by a committed transaction.
  std::unordered_map<FileId, SimTime> last_write_commit_;
  // Start time of each active incarnation.
  std::unordered_map<TxnId, SimTime> incarnation_start_;
  uint64_t validation_failures_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_OPT_H_
