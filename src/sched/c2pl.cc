#include "sched/c2pl.h"

#include "metrics/counters.h"
#include "util/string_util.h"

namespace wtpgsched {

C2plScheduler::C2plScheduler(SimTime ddtime, int mpl)
    : ddtime_(ddtime), mpl_(mpl) {}

std::string C2plScheduler::name() const {
  return mpl_ == std::numeric_limits<int>::max() ? "C2PL"
                                                 : StrCat("C2PL+M", mpl_);
}

SimTime C2plScheduler::LockDecisionCost(const Transaction& txn,
                                        int step) const {
  (void)txn;
  (void)step;
  return ddtime_;
}

Decision C2plScheduler::DecideStartup(Transaction& txn) {
  (void)txn;
  if (static_cast<int>(active_.size()) >= mpl_) {
    return Decision{DecisionKind::kBlock, kInvalidFile};
  }
  return Decision{DecisionKind::kGrant, kInvalidFile};
}

void C2plScheduler::AfterAdmit(Transaction& txn) { AddToGraph(txn); }

Decision C2plScheduler::DecideLock(Transaction& txn, int step) {
  const FileId file = txn.step(step).file;
  const LockMode mode = txn.RequestModeAt(step);
  if (!lock_table_.CanGrant(file, txn.id(), mode)) {
    return Decision{DecisionKind::kBlock, file};
  }
  // Deadlock prediction: granting determines txn -> u for every pending
  // conflicting declaration; that set of orientations creates a cycle iff
  // some u already reaches txn in the precedence graph (any cycle through
  // the new edges must close via a pre-existing u ~> txn path, since the
  // new edges all leave txn). Cheap reachability instead of a graph clone —
  // C2PL graphs grow large under saturation.
  const bool cycle =
      graph_.WouldCycle(txn.id(), PendingConflicters(file, txn.id(), mode));
  if (tracing()) {
    trace_->Record({.time = trace_->now(),
                    .type = TraceEventType::kC2plPredict,
                    .txn = txn.id(),
                    .file = file,
                    .step = step,
                    .arg = cycle ? 1 : 0});
  }
  if (cycle) {
    ++predicted_deadlocks_;
    return Decision{DecisionKind::kDelay, file};
  }
  return Decision{DecisionKind::kGrant, file};
}

void C2plScheduler::ExportCounters(CounterRegistry* registry) const {
  registry->Counter("c2pl.predicted_deadlocks") += predicted_deadlocks_;
}

void C2plScheduler::RegisterGauges(GaugeRegistry* gauges) const {
  WtpgSchedulerBase::RegisterGauges(gauges);
  gauges->Register("c2pl.predicted_deadlocks", [this] {
    return static_cast<double>(predicted_deadlocks_);
  });
}

void C2plScheduler::AfterGrant(Transaction& txn, int step) {
  const FileId file = txn.step(step).file;
  OrientAfterGrant(txn, file, txn.RequestModeAt(step));
}

}  // namespace wtpgsched
