#ifndef WTPG_SCHED_SCHED_LOW_LB_H_
#define WTPG_SCHED_SCHED_LOW_LB_H_

#include <functional>
#include <string>

#include "sched/low.h"

namespace wtpgsched {

// LOW-LB: the paper's "further work" sketch — LOW extended with
// resource-level load balancing (Conclusion, last paragraph). The E(q)
// estimate of a hypothetical grant is penalized by the current load of the
// data-processing nodes the step would run on, so that, between two
// otherwise-equal candidates, the lock goes to the transaction whose scan
// lands on idler nodes.
//
// The machine supplies a load probe: probe(file) returns the backlog (in
// objects) currently queued on the nodes holding `file`'s partitions.
// Penalty added to E(q): `load_weight * probe(file)`.
class LowLbScheduler : public LowScheduler {
 public:
  using LoadProbe = std::function<double(FileId)>;

  LowLbScheduler(int k, SimTime kwtpgtime, double load_weight,
                 bool charge_per_eval = true);

  std::string name() const override;

  void set_load_probe(LoadProbe probe) { probe_ = std::move(probe); }
  double load_weight() const { return load_weight_; }

 protected:
  double GrantPenalty(const Transaction& txn, int step) const override;

 private:
  double load_weight_;
  LoadProbe probe_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_LOW_LB_H_
