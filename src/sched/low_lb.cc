#include "sched/low_lb.h"

#include "util/string_util.h"

namespace wtpgsched {

LowLbScheduler::LowLbScheduler(int k, SimTime kwtpgtime, double load_weight,
                               bool charge_per_eval)
    : LowScheduler(k, kwtpgtime, charge_per_eval),
      load_weight_(load_weight) {}

std::string LowLbScheduler::name() const {
  return StrCat("LOW-LB(K=", k(), ")");
}

double LowLbScheduler::GrantPenalty(const Transaction& txn, int step) const {
  if (!probe_ || load_weight_ <= 0.0) return 0.0;
  return load_weight_ * probe_(txn.step(step).file);
}

}  // namespace wtpgsched
