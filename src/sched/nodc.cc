#include "sched/nodc.h"

// Header-only logic; this TU anchors the vtable.
