#ifndef WTPG_SCHED_SCHED_ASL_H_
#define WTPG_SCHED_SCHED_ASL_H_

#include <string>

#include "sched/scheduler.h"

namespace wtpgsched {

// Atomic Static Locking — "conservative two-phase locking" (paper Section
// 4.2, refs [15][2]): a transaction acquires *all* its declared locks
// atomically at startup or does not start at all. Deadlock-free and
// rollback-free by construction; it avoids chains of blocking because a
// started transaction is never blocked again.
class AslScheduler : public Scheduler {
 public:
  std::string name() const override { return "ASL"; }

 protected:
  Decision DecideStartup(Transaction& txn) override;
  void AfterAdmit(Transaction& txn) override;

  Decision DecideLock(Transaction& txn, int step) override;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SCHED_ASL_H_
