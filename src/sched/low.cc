#include "sched/low.h"

#include <algorithm>
#include <cmath>

#include "metrics/counters.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {

LowScheduler::LowScheduler(int k, SimTime kwtpgtime, bool charge_per_eval)
    : k_(k), kwtpgtime_(kwtpgtime), charge_per_eval_(charge_per_eval) {
  WTPG_CHECK_GE(k_, 0);
}

std::string LowScheduler::name() const { return StrCat("LOW(K=", k_, ")"); }

SimTime LowScheduler::LockDecisionCost(const Transaction& txn,
                                       int step) const {
  if (!charge_per_eval_) return kwtpgtime_;
  const FileId file = txn.step(step).file;
  const LockMode mode = txn.RequestModeAt(step);
  const size_t conflicters = CountPendingConflicters(file, txn.id(), mode);
  // One evaluation for E(q) plus one per competitor E(p).
  return kwtpgtime_ * static_cast<SimTime>(1 + conflicters);
}

bool LowScheduler::AdmissionWithinK(const Transaction& txn) const {
  for (const auto& [file, mode] : txn.lock_modes()) {
    // Pending accessors of this granule (index, no active-set rescan), with
    // the newcomer joining them. Every would-be requester must see at most K
    // conflicting declarations.
    const auto& pending = PendingAccessors(file);
    int newcomer_conflicters = 0;
    for (const PendingAccess& p : pending) {
      if (Conflicts(mode, p.mode)) ++newcomer_conflicters;
    }
    if (newcomer_conflicters > k_) return false;
    for (const PendingAccess& p : pending) {
      int conflicters = Conflicts(p.mode, mode) ? 1 : 0;  // The newcomer.
      for (const PendingAccess& o : pending) {
        if (o.txn != p.txn && Conflicts(p.mode, o.mode)) ++conflicters;
      }
      if (conflicters > k_) return false;
    }
  }
  return true;
}

Decision LowScheduler::DecideStartup(Transaction& txn) {
  if (!AdmissionWithinK(txn)) {
    ++admission_k_rejections_;
    return Decision{DecisionKind::kDelay, kInvalidFile};
  }
  return Decision{DecisionKind::kGrant, kInvalidFile};
}

void LowScheduler::AfterAdmit(Transaction& txn) { AddToGraph(txn); }

Decision LowScheduler::DecideLock(Transaction& txn, int step) {
  const FileId file = txn.step(step).file;
  const LockMode mode = txn.RequestModeAt(step);
  // Phase1.
  if (!lock_table_.CanGrant(file, txn.id(), mode)) {
    return Decision{DecisionKind::kBlock, file};
  }
  PendingConflicters(file, txn.id(), mode, &competitors_scratch_);
  const std::vector<TxnId>& competitors = competitors_scratch_;
  WTPG_CHECK_LE(static_cast<int>(competitors.size()), k_)
      << "admission control must bound |C(q)|";
  // Phase2: E(q). Test the raw evaluation for deadlock (infinity) before
  // adding the penalty: isinf instead of a float equality, and the penalty
  // cannot push a finite sum into the infinity test (or an infinite penalty
  // masquerade as a deadlock).
  const double eq_graph = EvaluateGrant(graph_, txn.id(), competitors);
  if (std::isinf(eq_graph)) {
    ++deadlock_delays_;
    if (tracing()) {
      trace_->Record({.time = trace_->now(),
                      .type = TraceEventType::kLowDeadlock,
                      .txn = txn.id(),
                      .file = file,
                      .step = step,
                      .arg = static_cast<int32_t>(competitors.size())});
    }
    return Decision{DecisionKind::kDelay, file};
  }
  const double eq = eq_graph + GrantPenalty(txn, step);
  if (tracing()) {
    // E(q): critical path after the hypothetical grant (value), penalized
    // value actually compared (value2), |C(q)| in arg.
    trace_->Record({.time = trace_->now(),
                    .type = TraceEventType::kLowEval,
                    .txn = txn.id(),
                    .file = file,
                    .step = step,
                    .arg = static_cast<int32_t>(competitors.size()),
                    .value = eq_graph,
                    .value2 = eq});
  }
  // Phase3: E(q) <= E(p) for all p in C(q).
  for (TxnId u : competitors) {
    const Transaction* other = active_.at(u);
    const LockMode other_mode = other->lock_modes().at(file);
    PendingConflicters(file, u, other_mode, &cp_scratch_);
    const double ep = EvaluateGrant(graph_, u, cp_scratch_);
    if (tracing()) {
      // Competitor evaluation: E(p) for p in C(q); arg = -1 marks it as a
      // competitor row of the preceding kLowEval.
      trace_->Record({.time = trace_->now(),
                      .type = TraceEventType::kLowEval,
                      .txn = u,
                      .file = file,
                      .step = step,
                      .arg = -1,
                      .value = ep});
    }
    if (eq > ep) return Decision{DecisionKind::kDelay, file};
  }
  return Decision{DecisionKind::kGrant, file};
}

void LowScheduler::AfterGrant(Transaction& txn, int step) {
  // Phase4.
  const FileId file = txn.step(step).file;
  OrientAfterGrant(txn, file, txn.RequestModeAt(step));
}

double LowScheduler::GrantPenalty(const Transaction& txn, int step) const {
  (void)txn;
  (void)step;
  return 0.0;
}

void LowScheduler::ExportCounters(CounterRegistry* registry) const {
  registry->Counter("low.k_rejections") += admission_k_rejections_;
  registry->Counter("low.deadlock_delays") += deadlock_delays_;
}

void LowScheduler::RegisterGauges(GaugeRegistry* gauges) const {
  WtpgSchedulerBase::RegisterGauges(gauges);
  gauges->Register("low.k_rejections", [this] {
    return static_cast<double>(admission_k_rejections_);
  });
  gauges->Register("low.deadlock_delays", [this] {
    return static_cast<double>(deadlock_delays_);
  });
}

}  // namespace wtpgsched
