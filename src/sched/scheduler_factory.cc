#include "sched/scheduler_factory.h"

#include "sched/asl.h"
#include "sched/c2pl.h"
#include "sched/gow.h"
#include "sched/low.h"
#include "sched/low_lb.h"
#include "sched/nodc.h"
#include "sched/opt.h"
#include "sched/two_pl.h"
#include "util/logging.h"

namespace wtpgsched {

std::unique_ptr<Scheduler> CreateScheduler(const SimConfig& config) {
  switch (config.scheduler) {
    case SchedulerKind::kNodc:
      return std::make_unique<NodcScheduler>();
    case SchedulerKind::kAsl:
      return std::make_unique<AslScheduler>();
    case SchedulerKind::kC2pl:
      return std::make_unique<C2plScheduler>(MsToTime(config.costs.dd_time_ms),
                                             config.machine.mpl);
    case SchedulerKind::kOpt:
      return std::make_unique<OptScheduler>(config.opt_validate_writes);
    case SchedulerKind::kGow:
      return std::make_unique<GowScheduler>(MsToTime(config.costs.top_time_ms),
                                            MsToTime(config.costs.chain_time_ms));
    case SchedulerKind::kLow:
      return std::make_unique<LowScheduler>(config.low_k,
                                            MsToTime(config.costs.kwtpg_time_ms),
                                            config.low_charge_per_eval);
    case SchedulerKind::kLowLb:
      return std::make_unique<LowLbScheduler>(
          config.low_k, MsToTime(config.costs.kwtpg_time_ms), config.low_lb_weight,
          config.low_charge_per_eval);
    case SchedulerKind::kTwoPl:
      return std::make_unique<TwoPlScheduler>(MsToTime(config.costs.dd_time_ms));
  }
  WTPG_CHECK(false) << "unknown scheduler kind";
  return nullptr;
}

}  // namespace wtpgsched
