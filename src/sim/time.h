#ifndef WTPG_SCHED_SIM_TIME_H_
#define WTPG_SCHED_SIM_TIME_H_

#include <cstdint>

namespace wtpgsched {

// Simulated time in integer microseconds. The paper's clock is 1 ms; we use
// microseconds so that fractional-object costs (e.g. a 0.2-object write at
// DD=8 -> 25 ms of service) and quantum arithmetic stay exact in integers,
// which keeps event ordering deterministic.
using SimTime = int64_t;

inline constexpr SimTime kSimTimeMax = INT64_MAX;

constexpr SimTime MsToTime(double ms) {
  return static_cast<SimTime>(ms * 1000.0 + (ms >= 0 ? 0.5 : -0.5));
}

constexpr SimTime SecondsToTime(double s) { return MsToTime(s * 1000.0); }

constexpr double TimeToMs(SimTime t) { return static_cast<double>(t) / 1000.0; }

constexpr double TimeToSeconds(SimTime t) {
  return static_cast<double>(t) / 1'000'000.0;
}

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SIM_TIME_H_
