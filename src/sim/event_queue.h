#ifndef WTPG_SCHED_SIM_EVENT_QUEUE_H_
#define WTPG_SCHED_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace wtpgsched {

// A time-ordered queue of callbacks. Events at equal timestamps fire in
// insertion order (FIFO), which makes simulations deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  struct Event {
    SimTime time;
    EventId id;
    Callback callback;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Enqueues `cb` to fire at absolute time `at`. Returns an id usable with
  // Cancel().
  EventId Schedule(SimTime at, Callback cb);

  // Cancels a scheduled event. Returns false if the event already fired or
  // was already cancelled. Cancelled entries leave tombstones in the heap;
  // tombstones are discarded on pop and compacted away wholesale once they
  // outnumber half the live entries (cancel-heavy workloads would otherwise
  // drag a heap much larger than the live set).
  bool Cancel(EventId id);

  bool empty() const { return callbacks_.empty(); }
  size_t size() const { return callbacks_.size(); }

  // Heap entries including tombstones (= size() + pending tombstones).
  // Observability / test hook for the compaction policy.
  size_t heap_entries() const { return heap_.size(); }

  // Timestamp of the next live event; kSimTimeMax when empty.
  SimTime NextTime();

  // Pops and returns the next live event. Requires !empty().
  Event Pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;  // Monotonic; doubles as FIFO tiebreak.
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  // Drops cancelled entries sitting at the top of the heap.
  void SkipCancelled();

  // Rebuilds the heap without tombstones once they exceed half the live
  // entries.
  void MaybeCompact();

  // Min-heap over (time, id) maintained with the std heap algorithms (an
  // explicit vector so compaction can filter it in place).
  std::vector<Entry> heap_;
  // Live callbacks keyed by id; an id absent here marks a heap tombstone.
  std::unordered_map<EventId, Callback> callbacks_;
  size_t tombstones_ = 0;
  EventId next_id_ = 1;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SIM_EVENT_QUEUE_H_
