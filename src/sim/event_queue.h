#ifndef WTPG_SCHED_SIM_EVENT_QUEUE_H_
#define WTPG_SCHED_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace wtpgsched {

// A time-ordered queue of callbacks. Events at equal timestamps fire in
// insertion order (FIFO), which makes simulations deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  struct Event {
    SimTime time;
    EventId id;
    Callback callback;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Enqueues `cb` to fire at absolute time `at`. Returns an id usable with
  // Cancel().
  EventId Schedule(SimTime at, Callback cb);

  // Cancels a scheduled event. Returns false if the event already fired or
  // was already cancelled. Cancelled entries are lazily discarded on pop.
  bool Cancel(EventId id);

  bool empty() const { return callbacks_.empty(); }
  size_t size() const { return callbacks_.size(); }

  // Timestamp of the next live event; kSimTimeMax when empty.
  SimTime NextTime();

  // Pops and returns the next live event. Requires !empty().
  Event Pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;  // Monotonic; doubles as FIFO tiebreak.
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  // Drops cancelled entries sitting at the top of the heap.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_;
  // Live callbacks keyed by id; an id absent here marks a heap tombstone.
  std::unordered_map<EventId, Callback> callbacks_;
  EventId next_id_ = 1;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SIM_EVENT_QUEUE_H_
