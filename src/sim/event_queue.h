#ifndef WTPG_SCHED_SIM_EVENT_QUEUE_H_
#define WTPG_SCHED_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/inplace_function.h"

namespace wtpgsched {

// A time-ordered queue of callbacks. Events at equal timestamps fire in
// insertion order (FIFO), which makes simulations deterministic.
//
// The queue is allocation-free in steady state: event records live in a
// slab recycled through a free list, callbacks store their captures inline
// (InplaceFunction — a capture that outgrows the budget is a compile
// error, not a heap fallback), and Cancel() removes its entry from the
// indexed 4-ary heap in place in O(log n). There are no tombstones and no
// compaction sweeps; heap_entries() == size() always.
class EventQueue {
 public:
  // Inline capture budget for event callbacks. The largest kernel capture
  // today is the machine's fault dispatch ([this, FaultEvent], 32 bytes);
  // 48 leaves headroom without bloating the slab records.
  static constexpr size_t kInlineCallbackBytes = 48;
  using Callback = InplaceFunction<void(), kInlineCallbackBytes>;
  using EventId = uint64_t;

  struct Event {
    SimTime time;
    EventId id;
    Callback callback;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Enqueues `cb` to fire at absolute time `at`. Returns an id usable with
  // Cancel(). Ids are never reused (a slot's generation advances on every
  // recycle), so a stale id fails Cancel() instead of hitting a new event.
  EventId Schedule(SimTime at, Callback cb);

  // Cancels a scheduled event, removing it from the heap in place. Returns
  // false if the event already fired or was already cancelled.
  bool Cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Heap entries — always equal to size() since the indexed-heap rewrite
  // removed tombstones. Kept as an observability/test hook.
  size_t heap_entries() const { return heap_.size(); }

  // Timestamp of the next event; kSimTimeMax when empty.
  SimTime NextTime() const;

  // Pops and returns the next event. Requires !empty().
  Event Pop();

 private:
  static constexpr uint32_t kNullIndex = 0xffffffffu;

  // One slab slot: callback storage plus recycling bookkeeping. Lives
  // forever; recycled through the free list. Deliberately key-free: slab
  // records are large (the inline callback) and are touched once per event
  // at Schedule and Pop; everything the per-sift-level work needs lives in
  // the two small dense arrays below (heap_, heap_slot_of_).
  struct Record {
    uint32_t generation = 0;
    uint32_t next_free = kNullIndex;
    Callback callback;
  };

  // Heap entry: ordering key + slab index, packed to 16 bytes so a cache
  // line holds four and sift comparisons walk contiguous memory. The
  // sequence number is the FIFO tiebreak for equal timestamps (the role
  // the monotonic EventId played before the rewrite); it is 32-bit with
  // wraparound compare — correct as long as no two coexisting equal-time
  // events are more than 2^31 schedules apart, which would require 2^31
  // pending events.
  struct HeapEntry {
    SimTime time;
    uint32_t seq;
    uint32_t idx;
  };
  static_assert(sizeof(HeapEntry) == 16, "keep heap entries one half-line");

  static EventId MakeId(uint32_t index, uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | index;
  }

  // Min-heap order on (time, seq). The seq compare is wraparound-aware.
  // Written with non-short-circuiting operators on purpose: both halves are
  // a couple of cycles, and a branch-free compare lets the min-of-children
  // selection in the sift loops compile to conditional moves instead of
  // data-dependent (hence unpredictable) branches.
  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    return (a.time < b.time) |
           ((a.time == b.time) &
            (static_cast<int32_t>(a.seq - b.seq) < 0));
  }

  void SiftUp(size_t slot);

  // Removes the record at heap position `slot`, restoring the heap. Uses
  // the bottom-up ("hole") variant: the hole sinks to a leaf along the
  // min-child path (d-1 comparisons per level), then the back filler sifts
  // up — it came from the bottom, so it almost always stays at the leaf.
  void RemoveFromHeap(size_t slot);

  // Recycles a slab slot: bumps the generation (invalidating outstanding
  // ids) and pushes it onto the free list.
  void Free(uint32_t index);

  // 4-ary: shallower than binary for the same size, and the four children
  // sit in one-two cache lines of the heap array.
  static constexpr size_t kArity = 4;

  std::vector<Record> slab_;
  std::vector<HeapEntry> heap_;
  // Slab index -> heap slot (kNullIndex when free), kept apart from the
  // slab so the per-level writes during sifts stay in a small hot array.
  std::vector<uint32_t> heap_slot_of_;
  uint32_t free_head_ = kNullIndex;
  uint32_t next_seq_ = 1;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SIM_EVENT_QUEUE_H_
