#ifndef WTPG_SCHED_SIM_FCFS_SERVER_H_
#define WTPG_SCHED_SIM_FCFS_SERVER_H_

#include <deque>
#include <string>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/inplace_function.h"

namespace wtpgsched {

// Single-server FIFO queue: jobs are served one at a time, to completion, in
// arrival order. Models the control node's CPU, where every scheduler
// decision, message and commit action is a small CPU burst.
class FcfsServer {
 public:
  using Callback = InplaceFunction<void(), EventQueue::kInlineCallbackBytes>;

  FcfsServer(Simulator* sim, std::string name);
  FcfsServer(const FcfsServer&) = delete;
  FcfsServer& operator=(const FcfsServer&) = delete;

  // Enqueues a job needing `service_time` of CPU; `on_complete` fires when
  // the job finishes. Zero service time is allowed (still FIFO-ordered).
  void Submit(SimTime service_time, Callback on_complete);

  bool busy() const { return busy_; }
  size_t queue_length() const { return queue_.size(); }

  // Total time the server has spent serving jobs.
  SimTime busy_time() const { return busy_time_; }
  uint64_t jobs_completed() const { return jobs_completed_; }

  // busy_time / elapsed, where elapsed is the simulator clock (assumes the
  // server existed from t=0, true for all uses in this project).
  double Utilization() const;

 private:
  struct Job {
    SimTime service_time;
    Callback on_complete;
  };

  void StartNext();
  void OnJobDone();

  Simulator* const sim_;
  const std::string name_;
  std::deque<Job> queue_;
  bool busy_ = false;
  Callback current_callback_;
  SimTime busy_time_ = 0;
  uint64_t jobs_completed_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SIM_FCFS_SERVER_H_
