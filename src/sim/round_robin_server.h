#ifndef WTPG_SCHED_SIM_ROUND_ROBIN_SERVER_H_
#define WTPG_SCHED_SIM_ROUND_ROBIN_SERVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/inplace_function.h"

namespace wtpgsched {

// Round-robin processor: resident jobs take turns receiving a service slice
// of min(quantum, remaining). Models a data-processing node scanning the
// cohorts assigned to it — the paper's DPNs serve cohorts round-robin with a
// quantum of 1/DD object.
//
// Slices run to completion (a newly arrived job waits for the current slice
// to end), matching a scan unit that cannot be preempted mid-object.
class RoundRobinServer {
 public:
  using Callback = InplaceFunction<void(), EventQueue::kInlineCallbackBytes>;
  using JobId = uint64_t;

  RoundRobinServer(Simulator* sim, std::string name);
  RoundRobinServer(const RoundRobinServer&) = delete;
  RoundRobinServer& operator=(const RoundRobinServer&) = delete;

  // Adds a job needing `total_service` time, sliced into quanta of
  // `quantum` (> 0). `on_complete` fires when the whole job has been served.
  JobId Submit(SimTime total_service, SimTime quantum, Callback on_complete);

  // Removes a resident job; its completion callback never fires and it does
  // not count toward jobs_completed(). Service already sliced stays in
  // busy_time() — a canceled scan wasted real processor time. Returns false
  // when the job already completed (or was never submitted). Safe while the
  // job's slice is in flight: the slice ends, the server notices the job is
  // gone and rotates on.
  bool Cancel(JobId id);

  // Cancels every resident job at once (node crash).
  void CancelAll();

  // The id the next Submit() will assign — lets a caller register
  // bookkeeping keyed by job id inside the completion callback it passes in.
  JobId next_job_id() const { return next_id_; }

  size_t active_jobs() const { return jobs_.size(); }
  bool busy() const { return slice_in_progress_; }
  SimTime busy_time() const { return busy_time_; }
  uint64_t jobs_completed() const { return jobs_completed_; }
  double Utilization() const;

 private:
  struct Job {
    SimTime remaining;
    SimTime quantum;
    Callback on_complete;
  };

  void StartSlice();
  void OnSliceDone(JobId id, SimTime slice);

  Simulator* const sim_;
  const std::string name_;
  std::unordered_map<JobId, Job> jobs_;
  std::deque<JobId> ready_;  // Rotation order.
  bool slice_in_progress_ = false;
  SimTime busy_time_ = 0;
  uint64_t jobs_completed_ = 0;
  JobId next_id_ = 1;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SIM_ROUND_ROBIN_SERVER_H_
