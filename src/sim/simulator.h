#ifndef WTPG_SCHED_SIM_SIMULATOR_H_
#define WTPG_SCHED_SIM_SIMULATOR_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace wtpgsched {

// Discrete-event simulation driver: a clock plus an event queue. Components
// (servers, workload sources, the machine model) hold a Simulator* and
// schedule callbacks on it.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `cb` `delay` after the current time. Negative delays are a
  // programming error (CHECK-fails): they always indicate a cost-accounting
  // bug upstream.
  EventQueue::EventId ScheduleAfter(SimTime delay, EventQueue::Callback cb);

  // Schedules `cb` at absolute time `at` (>= Now()).
  EventQueue::EventId ScheduleAt(SimTime at, EventQueue::Callback cb);

  bool Cancel(EventQueue::EventId id) { return events_.Cancel(id); }

  // Runs events in order until the queue drains or the clock would pass
  // `horizon`. Events scheduled exactly at `horizon` are executed. The clock
  // is left at min(horizon, last event time).
  void RunUntil(SimTime horizon);

  // Runs until the event queue is empty.
  void RunToCompletion() { RunUntil(kSimTimeMax); }

  // Executes at most one pending event. Returns false if none remained or
  // the next event lies beyond `horizon` (clock untouched in that case).
  bool Step(SimTime horizon = kSimTimeMax);

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return events_.size(); }

 private:
  EventQueue events_;
  SimTime now_ = 0;
  uint64_t events_executed_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_SIM_SIMULATOR_H_
