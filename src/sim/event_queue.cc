#include "sim/event_queue.h"

#include <utility>

#include "util/logging.h"

namespace wtpgsched {

EventQueue::EventId EventQueue::Schedule(SimTime at, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventQueue::Cancel(EventId id) { return callbacks_.erase(id) > 0; }

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && callbacks_.find(heap_.top().id) == callbacks_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  return heap_.empty() ? kSimTimeMax : heap_.top().time;
}

EventQueue::Event EventQueue::Pop() {
  SkipCancelled();
  WTPG_CHECK(!heap_.empty()) << "Pop() on empty EventQueue";
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  Event event{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  return event;
}

}  // namespace wtpgsched
