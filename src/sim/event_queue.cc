#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace wtpgsched {

EventQueue::EventId EventQueue::Schedule(SimTime at, Callback cb) {
  uint32_t index;
  if (free_head_ != kNullIndex) {
    index = free_head_;
    free_head_ = slab_[index].next_free;
  } else {
    index = static_cast<uint32_t>(slab_.size());
    slab_.emplace_back();
    heap_slot_of_.push_back(kNullIndex);
  }
  Record& r = slab_[index];
  r.callback = std::move(cb);
  const size_t slot = heap_.size();
  heap_.push_back(HeapEntry{at, next_seq_++, index});
  SiftUp(slot);  // Writes heap_slot_of_[index] at the final position.
  return MakeId(index, r.generation);
}

bool EventQueue::Cancel(EventId id) {
  const uint32_t index = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= slab_.size()) return false;
  Record& r = slab_[index];
  if (r.generation != generation || heap_slot_of_[index] == kNullIndex) {
    return false;
  }
  RemoveFromHeap(heap_slot_of_[index]);
  r.callback = nullptr;  // Release the capture eagerly, as erase() used to.
  Free(index);
  return true;
}

SimTime EventQueue::NextTime() const {
  return heap_.empty() ? kSimTimeMax : heap_[0].time;
}

EventQueue::Event EventQueue::Pop() {
  WTPG_CHECK(!heap_.empty()) << "Pop() on empty EventQueue";
  const HeapEntry top = heap_[0];
  Record& r = slab_[top.idx];
  Event event{top.time, MakeId(top.idx, r.generation), std::move(r.callback)};
  RemoveFromHeap(0);
  Free(top.idx);
  // The next pop's record is known now; its slab line (larger than the hot
  // arrays, typically L2) can warm up while the caller runs this callback.
  if (!heap_.empty()) __builtin_prefetch(&slab_[heap_[0].idx]);
  return event;
}

void EventQueue::SiftUp(size_t slot) {
  const HeapEntry moving = heap_[slot];
  while (slot > 0) {
    const size_t parent = (slot - 1) / kArity;
    if (!Before(moving, heap_[parent])) break;
    heap_[slot] = heap_[parent];
    heap_slot_of_[heap_[slot].idx] = static_cast<uint32_t>(slot);
    slot = parent;
  }
  heap_[slot] = moving;
  heap_slot_of_[moving.idx] = static_cast<uint32_t>(slot);
}

void EventQueue::RemoveFromHeap(size_t slot) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (slot == n) return;  // Removed the final leaf; nothing to restore.
  // Sink the hole to a leaf along the min-child path (d-1 comparisons per
  // level — the filler is never compared on the way down), then drop the
  // filler in and sift it up. The filler came from the bottom row, so the
  // sift-up nearly always stops immediately.
  // restrict matters: pos (uint32) could alias HeapEntry's uint32 fields as
  // far as TBAA knows, which would force h[] reloads after every pos store.
  HeapEntry* const __restrict h = heap_.data();
  uint32_t* const __restrict pos = heap_slot_of_.data();
  for (;;) {
    const size_t first_child = slot * kArity + 1;
    if (first_child + kArity <= n) {
      // Full fan of four: pairwise tree-min, selected with index arithmetic
      // so the compiler cannot reintroduce data-dependent branches (the
      // min-child choice is close to uniform — a branch here mispredicts
      // constantly). The two inner mins are independent, keeping the
      // compare chain two deep instead of three.
      const size_t a =
          first_child + static_cast<size_t>(Before(h[first_child + 1],
                                                   h[first_child]));
      const size_t b =
          first_child + 2 +
          static_cast<size_t>(Before(h[first_child + 3], h[first_child + 2]));
      const size_t best = a ^ ((a ^ b) & -static_cast<size_t>(Before(h[b], h[a])));
      h[slot] = h[best];
      pos[h[slot].idx] = static_cast<uint32_t>(slot);
      slot = best;
      continue;
    }
    if (first_child >= n) break;
    size_t best = first_child;  // Partial fan at the ragged bottom node.
    for (size_t c = first_child + 1; c < n; ++c) {
      best = best ^ ((best ^ c) & -static_cast<size_t>(Before(h[c], h[best])));
    }
    h[slot] = h[best];
    pos[h[slot].idx] = static_cast<uint32_t>(slot);
    slot = best;
  }
  h[slot] = last;
  pos[last.idx] = static_cast<uint32_t>(slot);
  SiftUp(slot);
}

void EventQueue::Free(uint32_t index) {
  Record& r = slab_[index];
  ++r.generation;
  heap_slot_of_[index] = kNullIndex;
  r.next_free = free_head_;
  free_head_ = index;
}

}  // namespace wtpgsched
