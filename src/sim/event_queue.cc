#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace wtpgsched {

EventQueue::EventId EventQueue::Schedule(SimTime at, Callback cb) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, id});
  std::push_heap(heap_.begin(), heap_.end(), EntryGreater{});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (callbacks_.erase(id) == 0) return false;
  ++tombstones_;
  MaybeCompact();
  return true;
}

void EventQueue::MaybeCompact() {
  if (tombstones_ * 2 <= callbacks_.size()) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) {
                               return callbacks_.find(e.id) ==
                                      callbacks_.end();
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), EntryGreater{});
  tombstones_ = 0;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() &&
         callbacks_.find(heap_.front().id) == callbacks_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
    heap_.pop_back();
    WTPG_CHECK_GT(tombstones_, 0u);
    --tombstones_;
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  return heap_.empty() ? kSimTimeMax : heap_.front().time;
}

EventQueue::Event EventQueue::Pop() {
  SkipCancelled();
  WTPG_CHECK(!heap_.empty()) << "Pop() on empty EventQueue";
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
  heap_.pop_back();
  auto it = callbacks_.find(top.id);
  Event event{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  return event;
}

}  // namespace wtpgsched
