#include "sim/simulator.h"

#include <utility>

#include "util/logging.h"

namespace wtpgsched {

EventQueue::EventId Simulator::ScheduleAfter(SimTime delay,
                                             EventQueue::Callback cb) {
  // A negative delay is always an upstream cost-accounting bug; silently
  // clamping it to "now" would mask it.
  WTPG_CHECK_GE(delay, 0) << "negative delay passed to ScheduleAfter";
  return events_.Schedule(now_ + delay, std::move(cb));
}

EventQueue::EventId Simulator::ScheduleAt(SimTime at, EventQueue::Callback cb) {
  WTPG_CHECK_GE(at, now_) << "cannot schedule events in the past";
  return events_.Schedule(at, std::move(cb));
}

bool Simulator::Step(SimTime horizon) {
  const SimTime next = events_.NextTime();
  if (next == kSimTimeMax || next > horizon) return false;
  EventQueue::Event event = events_.Pop();
  WTPG_CHECK_GE(event.time, now_);
  now_ = event.time;
  ++events_executed_;
  event.callback();
  return true;
}

void Simulator::RunUntil(SimTime horizon) {
  while (Step(horizon)) {
  }
  if (horizon != kSimTimeMax && now_ < horizon) now_ = horizon;
}

}  // namespace wtpgsched
