#include "sim/fcfs_server.h"

#include <utility>

#include "util/logging.h"

namespace wtpgsched {

FcfsServer::FcfsServer(Simulator* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void FcfsServer::Submit(SimTime service_time, Callback on_complete) {
  WTPG_CHECK_GE(service_time, 0);
  queue_.push_back(Job{service_time, std::move(on_complete)});
  if (!busy_) StartNext();
}

void FcfsServer::StartNext() {
  WTPG_CHECK(!busy_);
  if (queue_.empty()) return;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  busy_time_ += job.service_time;
  current_callback_ = std::move(job.on_complete);
  sim_->ScheduleAfter(job.service_time, [this] { OnJobDone(); });
}

void FcfsServer::OnJobDone() {
  WTPG_CHECK(busy_);
  busy_ = false;
  ++jobs_completed_;
  Callback cb = std::move(current_callback_);
  current_callback_ = nullptr;
  // Start the next job before running the callback so that work submitted
  // from inside the callback queues behind already-waiting jobs.
  StartNext();
  if (cb) cb();
}

double FcfsServer::Utilization() const {
  const SimTime elapsed = sim_->Now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(elapsed);
}

}  // namespace wtpgsched
