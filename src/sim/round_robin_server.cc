#include "sim/round_robin_server.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace wtpgsched {

RoundRobinServer::RoundRobinServer(Simulator* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

RoundRobinServer::JobId RoundRobinServer::Submit(SimTime total_service,
                                                 SimTime quantum,
                                                 Callback on_complete) {
  WTPG_CHECK_GE(total_service, 0);
  WTPG_CHECK_GT(quantum, 0);
  const JobId id = next_id_++;
  jobs_.emplace(id, Job{total_service, quantum, std::move(on_complete)});
  ready_.push_back(id);
  if (!slice_in_progress_) StartSlice();
  return id;
}

bool RoundRobinServer::Cancel(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  jobs_.erase(it);
  // Drop it from the rotation if it was waiting for a turn. If its slice is
  // in flight instead, OnSliceDone finds no entry and rotates on.
  for (auto r = ready_.begin(); r != ready_.end(); ++r) {
    if (*r == id) {
      ready_.erase(r);
      break;
    }
  }
  return true;
}

void RoundRobinServer::CancelAll() {
  jobs_.clear();
  ready_.clear();
}

void RoundRobinServer::StartSlice() {
  WTPG_CHECK(!slice_in_progress_);
  if (ready_.empty()) return;
  const JobId id = ready_.front();
  ready_.pop_front();
  auto it = jobs_.find(id);
  WTPG_CHECK(it != jobs_.end());
  const SimTime slice = std::min(it->second.quantum, it->second.remaining);
  slice_in_progress_ = true;
  busy_time_ += slice;
  sim_->ScheduleAfter(slice, [this, id, slice] { OnSliceDone(id, slice); });
}

void RoundRobinServer::OnSliceDone(JobId id, SimTime slice) {
  WTPG_CHECK(slice_in_progress_);
  slice_in_progress_ = false;
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    // Canceled while its slice was in flight; the slice's work is wasted.
    StartSlice();
    return;
  }
  it->second.remaining -= slice;
  if (it->second.remaining <= 0) {
    Callback cb = std::move(it->second.on_complete);
    jobs_.erase(it);
    ++jobs_completed_;
    StartSlice();
    if (cb) cb();
  } else {
    ready_.push_back(id);
    StartSlice();
  }
}

double RoundRobinServer::Utilization() const {
  const SimTime elapsed = sim_->Now();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(elapsed);
}

}  // namespace wtpgsched
