#ifndef WTPG_SCHED_LOCK_LOCK_TABLE_H_
#define WTPG_SCHED_LOCK_LOCK_TABLE_H_

#include <cstddef>

#include <unordered_map>
#include <vector>

#include "model/lock_mode.h"
#include "model/types.h"
#include "trace/trace_recorder.h"

namespace wtpgsched {

// File-granule lock table: holders per file (several S holders, or one X
// holder). The table records who holds what; wait-queue policy lives in the
// machine, and grant policy in the schedulers.
//
// ForceGrant() records a lock regardless of compatibility — NODC uses it to
// model "grant any lock at any time" while release bookkeeping still works.
//
// FileIds are dense (0..num_files), so holder lists live in a flat vector
// indexed by file — every query is an array index plus a scan of a tiny
// holder list, no hashing. A hashed shadow of the locked-file set is kept
// solely to preserve ReleaseAll's historical iteration order (see
// released_order_ below); queries never touch it.
class LockTable {
 public:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };

  LockTable() = default;

  // True when `txn` could be granted `mode` on `file` right now: every other
  // current holder's mode must be compatible. A transaction's own held lock
  // never conflicts with its upgrade request (upgrade succeeds if no other
  // holder conflicts with the requested mode).
  bool CanGrant(FileId file, TxnId txn, LockMode mode) const;

  // Records the grant (or upgrade). Requires CanGrant().
  void Grant(FileId file, TxnId txn, LockMode mode);

  // Records the grant without any compatibility check (NODC).
  void ForceGrant(FileId file, TxnId txn, LockMode mode);

  // Releases all locks held by `txn`; returns the affected files.
  std::vector<FileId> ReleaseAll(TxnId txn);

  // True if `txn` holds a lock on `file` at least as strong as `mode`.
  bool HoldsSufficient(FileId file, TxnId txn, LockMode mode) const;

  bool Holds(FileId file, TxnId txn) const;

  // Current holders of `file` (empty if unlocked). The reference stays
  // valid only until the next mutation; the copying and out-parameter
  // variants are for callers that mutate while consuming.
  const std::vector<Holder>& HoldersOf(FileId file) const;
  std::vector<Holder> GetHolders(FileId file) const;
  void GetHolders(FileId file, std::vector<Holder>* out) const;

  // Holders (other than `txn`) whose mode conflicts with `mode`. The
  // out-parameter variant clears and fills *out (for hot call sites that
  // would otherwise allocate a vector per query).
  std::vector<TxnId> ConflictingHolders(FileId file, TxnId txn,
                                        LockMode mode) const;
  void ConflictingHolders(FileId file, TxnId txn, LockMode mode,
                          std::vector<TxnId>* out) const;

  // Number of files currently locked by anyone.
  size_t num_locked_files() const { return released_order_.size(); }
  // Number of locks held by `txn`.
  size_t NumHeldBy(TxnId txn) const;

  // When set (and enabled), grants and releases emit kLockGrant /
  // kLockRelease trace events — the ground truth of lock-state changes,
  // independent of decision-level events the machine records.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  // Holder lists are tiny (bounded by active transactions); linear scans.
  // Indexed by FileId; grown on demand. Emptied slots keep their capacity.
  std::vector<std::vector<Holder>> holders_;
  // Order shadow: the set of currently locked files, fed the exact insert /
  // erase sequence the pre-dense unordered_map keyed storage received, so
  // ReleaseAll walks files in the identical (libstdc++ hash-order)
  // sequence. The order is observable downstream — released files wake
  // waiters in order, and waiters queue FIFO on the control node — so
  // committed goldens pin it. Only ReleaseAll iterates this map.
  std::unordered_map<FileId, char> released_order_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_LOCK_LOCK_TABLE_H_
