#ifndef WTPG_SCHED_LOCK_LOCK_TABLE_H_
#define WTPG_SCHED_LOCK_LOCK_TABLE_H_

#include <cstddef>

#include <unordered_map>
#include <vector>

#include "model/lock_mode.h"
#include "model/types.h"
#include "trace/trace_recorder.h"

namespace wtpgsched {

// File-granule lock table: holders per file (several S holders, or one X
// holder). The table records who holds what; wait-queue policy lives in the
// machine, and grant policy in the schedulers.
//
// ForceGrant() records a lock regardless of compatibility — NODC uses it to
// model "grant any lock at any time" while release bookkeeping still works.
class LockTable {
 public:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };

  LockTable() = default;

  // True when `txn` could be granted `mode` on `file` right now: every other
  // current holder's mode must be compatible. A transaction's own held lock
  // never conflicts with its upgrade request (upgrade succeeds if no other
  // holder conflicts with the requested mode).
  bool CanGrant(FileId file, TxnId txn, LockMode mode) const;

  // Records the grant (or upgrade). Requires CanGrant().
  void Grant(FileId file, TxnId txn, LockMode mode);

  // Records the grant without any compatibility check (NODC).
  void ForceGrant(FileId file, TxnId txn, LockMode mode);

  // Releases all locks held by `txn`; returns the affected files.
  std::vector<FileId> ReleaseAll(TxnId txn);

  // True if `txn` holds a lock on `file` at least as strong as `mode`.
  bool HoldsSufficient(FileId file, TxnId txn, LockMode mode) const;

  bool Holds(FileId file, TxnId txn) const;

  // Current holders of `file` (empty vector if unlocked).
  std::vector<Holder> GetHolders(FileId file) const;

  // Holders (other than `txn`) whose mode conflicts with `mode`.
  std::vector<TxnId> ConflictingHolders(FileId file, TxnId txn,
                                        LockMode mode) const;

  // Number of files currently locked by anyone.
  size_t num_locked_files() const;
  // Number of locks held by `txn`.
  size_t NumHeldBy(TxnId txn) const;

  // When set (and enabled), grants and releases emit kLockGrant /
  // kLockRelease trace events — the ground truth of lock-state changes,
  // independent of decision-level events the machine records.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  // Holder lists are tiny (bounded by active transactions); linear scans.
  std::unordered_map<FileId, std::vector<Holder>> locks_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_LOCK_LOCK_TABLE_H_
