#include "lock/lock_table.h"

#include <algorithm>

#include "util/logging.h"

namespace wtpgsched {
namespace {

const std::vector<LockTable::Holder>& EmptyHolders() {
  static const std::vector<LockTable::Holder> empty;
  return empty;
}

}  // namespace

const std::vector<LockTable::Holder>& LockTable::HoldersOf(
    FileId file) const {
  const size_t idx = static_cast<size_t>(file);
  if (file < 0 || idx >= holders_.size()) return EmptyHolders();
  return holders_[idx];
}

bool LockTable::CanGrant(FileId file, TxnId txn, LockMode mode) const {
  for (const Holder& h : HoldersOf(file)) {
    if (h.txn == txn) continue;
    if (!Compatible(h.mode, mode)) return false;
  }
  return true;
}

void LockTable::Grant(FileId file, TxnId txn, LockMode mode) {
  WTPG_CHECK(CanGrant(file, txn, mode))
      << "Grant() of incompatible lock on file " << file << " to T" << txn;
  ForceGrant(file, txn, mode);
}

void LockTable::ForceGrant(FileId file, TxnId txn, LockMode mode) {
  WTPG_CHECK_GE(file, 0);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Record({.time = trace_->now(),
                    .type = TraceEventType::kLockGrant,
                    .txn = txn,
                    .file = file,
                    .mode = mode});
  }
  if (static_cast<size_t>(file) >= holders_.size()) {
    holders_.resize(static_cast<size_t>(file) + 1);
  }
  // Unconditionally, mirroring the historical operator[] insert — the shadow
  // must see the same key sequence the old keyed storage saw.
  released_order_.try_emplace(file);
  auto& holders = holders_[static_cast<size_t>(file)];
  for (Holder& h : holders) {
    if (h.txn == txn) {
      h.mode = Stronger(h.mode, mode);
      return;
    }
  }
  holders.push_back(Holder{txn, mode});
}

std::vector<FileId> LockTable::ReleaseAll(TxnId txn) {
  std::vector<FileId> released;
  for (auto it = released_order_.begin(); it != released_order_.end();) {
    const FileId file = it->first;
    auto& holders = holders_[static_cast<size_t>(file)];
    const size_t before = holders.size();
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn](const Holder& h) { return h.txn == txn; }),
                  holders.end());
    if (holders.size() != before) {
      released.push_back(file);
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->Record({.time = trace_->now(),
                        .type = TraceEventType::kLockRelease,
                        .txn = txn,
                        .file = file});
      }
    }
    if (holders.empty()) {
      it = released_order_.erase(it);
    } else {
      ++it;
    }
  }
  return released;
}

bool LockTable::HoldsSufficient(FileId file, TxnId txn, LockMode mode) const {
  for (const Holder& h : HoldersOf(file)) {
    if (h.txn == txn) return Stronger(h.mode, mode) == h.mode;
  }
  return false;
}

bool LockTable::Holds(FileId file, TxnId txn) const {
  for (const Holder& h : HoldersOf(file)) {
    if (h.txn == txn) return true;
  }
  return false;
}

std::vector<LockTable::Holder> LockTable::GetHolders(FileId file) const {
  return HoldersOf(file);
}

void LockTable::GetHolders(FileId file, std::vector<Holder>* out) const {
  const std::vector<Holder>& holders = HoldersOf(file);
  out->assign(holders.begin(), holders.end());
}

std::vector<TxnId> LockTable::ConflictingHolders(FileId file, TxnId txn,
                                                 LockMode mode) const {
  std::vector<TxnId> result;
  ConflictingHolders(file, txn, mode, &result);
  return result;
}

void LockTable::ConflictingHolders(FileId file, TxnId txn, LockMode mode,
                                   std::vector<TxnId>* out) const {
  out->clear();
  for (const Holder& h : HoldersOf(file)) {
    if (h.txn != txn && !Compatible(h.mode, mode)) out->push_back(h.txn);
  }
}

size_t LockTable::NumHeldBy(TxnId txn) const {
  size_t count = 0;
  for (const auto& holders : holders_) {
    for (const Holder& h : holders) {
      if (h.txn == txn) ++count;
    }
  }
  return count;
}

}  // namespace wtpgsched
