#include "lock/lock_table.h"

#include <algorithm>

#include "util/logging.h"

namespace wtpgsched {

bool LockTable::CanGrant(FileId file, TxnId txn, LockMode mode) const {
  auto it = locks_.find(file);
  if (it == locks_.end()) return true;
  for (const Holder& h : it->second) {
    if (h.txn == txn) continue;
    if (!Compatible(h.mode, mode)) return false;
  }
  return true;
}

void LockTable::Grant(FileId file, TxnId txn, LockMode mode) {
  WTPG_CHECK(CanGrant(file, txn, mode))
      << "Grant() of incompatible lock on file " << file << " to T" << txn;
  ForceGrant(file, txn, mode);
}

void LockTable::ForceGrant(FileId file, TxnId txn, LockMode mode) {
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Record({.time = trace_->now(),
                    .type = TraceEventType::kLockGrant,
                    .txn = txn,
                    .file = file,
                    .mode = mode});
  }
  auto& holders = locks_[file];
  for (Holder& h : holders) {
    if (h.txn == txn) {
      h.mode = Stronger(h.mode, mode);
      return;
    }
  }
  holders.push_back(Holder{txn, mode});
}

std::vector<FileId> LockTable::ReleaseAll(TxnId txn) {
  std::vector<FileId> released;
  for (auto it = locks_.begin(); it != locks_.end();) {
    auto& holders = it->second;
    const size_t before = holders.size();
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn](const Holder& h) { return h.txn == txn; }),
                  holders.end());
    if (holders.size() != before) {
      released.push_back(it->first);
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->Record({.time = trace_->now(),
                        .type = TraceEventType::kLockRelease,
                        .txn = txn,
                        .file = it->first});
      }
    }
    if (holders.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  return released;
}

bool LockTable::HoldsSufficient(FileId file, TxnId txn, LockMode mode) const {
  auto it = locks_.find(file);
  if (it == locks_.end()) return false;
  for (const Holder& h : it->second) {
    if (h.txn == txn) return Stronger(h.mode, mode) == h.mode;
  }
  return false;
}

bool LockTable::Holds(FileId file, TxnId txn) const {
  auto it = locks_.find(file);
  if (it == locks_.end()) return false;
  for (const Holder& h : it->second) {
    if (h.txn == txn) return true;
  }
  return false;
}

std::vector<LockTable::Holder> LockTable::GetHolders(FileId file) const {
  auto it = locks_.find(file);
  if (it == locks_.end()) return {};
  return it->second;
}

std::vector<TxnId> LockTable::ConflictingHolders(FileId file, TxnId txn,
                                                 LockMode mode) const {
  std::vector<TxnId> result;
  auto it = locks_.find(file);
  if (it == locks_.end()) return result;
  for (const Holder& h : it->second) {
    if (h.txn != txn && !Compatible(h.mode, mode)) result.push_back(h.txn);
  }
  return result;
}

size_t LockTable::num_locked_files() const { return locks_.size(); }

size_t LockTable::NumHeldBy(TxnId txn) const {
  size_t count = 0;
  for (const auto& [file, holders] : locks_) {
    (void)file;
    for (const Holder& h : holders) {
      if (h.txn == txn) ++count;
    }
  }
  return count;
}

}  // namespace wtpgsched
