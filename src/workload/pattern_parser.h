#ifndef WTPG_SCHED_WORKLOAD_PATTERN_PARSER_H_
#define WTPG_SCHED_WORKLOAD_PATTERN_PARSER_H_

#include <string>

#include "util/status.h"
#include "workload/pattern.h"

namespace wtpgsched {

// Parses the paper's pattern notation into a Pattern:
//
//   "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)"
//
// Step syntax:   r(VAR:COST) reads, w(VAR:COST) writes, x(VAR:COST) reads
//                with an exclusive lock requested up front (the paper's
//                "X-locks are requested at the first two steps").
// Variables:     any identifier; each distinct name becomes one file
//                variable. By default every variable draws uniformly —
//                distinct from its siblings — from [0, num_files).
// Pools:         an optional prefix declares per-variable pools:
//                  "B in [0,7]; F1,F2 in [8,15]: r(B:5) -> w(F1:1) -> w(F2:1)"
//                Pool bounds are inclusive; variables sharing a pool draw
//                distinct files.
//
// `num_files` bounds the default pool. Errors return InvalidArgument with a
// position-annotated message.
StatusOr<Pattern> ParsePattern(const std::string& text, int num_files);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_WORKLOAD_PATTERN_PARSER_H_
