#include "workload/pattern_parser.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include "util/string_util.h"

namespace wtpgsched {
namespace {

// Minimal recursive-descent scanner over the pattern text.
class Parser {
 public:
  Parser(const std::string& text, int num_files)
      : text_(text), num_files_(num_files) {}

  StatusOr<Pattern> Parse() {
    if (num_files_ <= 0) {
      return Status::InvalidArgument("num_files must be positive");
    }
    // Optional pool prologue: "NAME[,NAME...] in [lo,hi]; ... :".
    const size_t colon = FindPrologueColon();
    if (colon != std::string::npos) {
      Status status = ParsePools(text_.substr(0, colon));
      if (!status.ok()) return status;
      pos_ = colon + 1;
    }
    Status status = ParseSteps();
    if (!status.ok()) return status;
    if (steps_.empty()) {
      return Status::InvalidArgument("pattern has no steps");
    }
    // Distinct-draw feasibility: a pool must be at least as large as the
    // number of variables drawing from it (otherwise instantiation could
    // never find distinct files).
    std::map<std::pair<FileId, FileId>, int> pool_population;
    for (const FileVarSpec& var : vars_) {
      const int population = ++pool_population[{var.pool_lo, var.pool_hi}];
      if (population > var.pool_hi - var.pool_lo + 1) {
        return Status::InvalidArgument(
            StrCat("pool [", var.pool_lo, ",", var.pool_hi,
                   "] too small for ", population, " distinct variables"));
      }
    }
    // Predeclared locking requires the first touch of a file to request a
    // mode covering every later access: auto-upgrade "r(F:..) -> w(F:..)"
    // to an X request at the read (what the paper's 'X-locks are requested
    // at the first two steps' does explicitly).
    std::map<int, LockMode> strongest;
    for (const PatternStepSpec& step : steps_) {
      const LockMode mode =
          Stronger(step.request_mode,
                   step.is_write ? LockMode::kExclusive : LockMode::kShared);
      auto [it, inserted] = strongest.emplace(step.file_var, mode);
      if (!inserted) it->second = Stronger(it->second, mode);
    }
    std::map<int, bool> first_seen;
    for (PatternStepSpec& step : steps_) {
      if (first_seen.emplace(step.file_var, true).second) {
        step.request_mode = strongest.at(step.file_var);
      }
    }
    return Pattern("parsed", vars_, steps_);
  }

 private:
  // The prologue colon is a ':' appearing before the first step operator
  // ('(' of r/w/x). A ':' inside "VAR:COST" always follows a '('.
  size_t FindPrologueColon() const {
    for (size_t i = 0; i < text_.size(); ++i) {
      if (text_[i] == '(') return std::string::npos;
      if (text_[i] == ':') return i;
    }
    return std::string::npos;
  }

  Status ParsePools(const std::string& prologue) {
    size_t pos = 0;
    auto skip_ws = [&] {
      while (pos < prologue.size() && std::isspace(prologue[pos])) ++pos;
    };
    while (true) {
      skip_ws();
      if (pos >= prologue.size()) break;
      // Names.
      std::vector<std::string> names;
      while (true) {
        skip_ws();
        std::string name;
        while (pos < prologue.size() &&
               (std::isalnum(prologue[pos]) || prologue[pos] == '_')) {
          name += prologue[pos++];
        }
        if (name.empty()) {
          return Status::InvalidArgument(
              StrCat("expected variable name in pool declaration at offset ",
                     pos));
        }
        if (name == "in") {
          return Status::InvalidArgument(
              "missing variable name before 'in'");
        }
        names.push_back(name);
        skip_ws();
        if (pos < prologue.size() && prologue[pos] == ',') {
          ++pos;
          continue;
        }
        break;
      }
      skip_ws();
      // "in [lo,hi]".
      if (prologue.compare(pos, 2, "in") != 0) {
        return Status::InvalidArgument(
            StrCat("expected 'in' in pool declaration at offset ", pos));
      }
      pos += 2;
      skip_ws();
      if (pos >= prologue.size() || prologue[pos] != '[') {
        return Status::InvalidArgument("expected '[' after 'in'");
      }
      ++pos;
      int lo = 0;
      int hi = 0;
      if (!ParseIntAt(prologue, &pos, &lo)) {
        return Status::InvalidArgument("bad pool lower bound");
      }
      skip_ws();
      if (pos >= prologue.size() || prologue[pos] != ',') {
        return Status::InvalidArgument("expected ',' in pool bounds");
      }
      ++pos;
      if (!ParseIntAt(prologue, &pos, &hi)) {
        return Status::InvalidArgument("bad pool upper bound");
      }
      skip_ws();
      if (pos >= prologue.size() || prologue[pos] != ']') {
        return Status::InvalidArgument("expected ']' after pool bounds");
      }
      ++pos;
      if (lo < 0 || hi < lo) {
        return Status::InvalidArgument(
            StrCat("bad pool [", lo, ",", hi, "]"));
      }
      for (const std::string& name : names) {
        if (pools_.count(name)) {
          return Status::InvalidArgument(
              StrCat("duplicate pool for variable ", name));
        }
        pools_[name] = {static_cast<FileId>(lo), static_cast<FileId>(hi)};
      }
      skip_ws();
      if (pos < prologue.size()) {
        if (prologue[pos] != ';') {
          return Status::InvalidArgument(
              StrCat("expected ';' between pool declarations at offset ",
                     pos));
        }
        ++pos;
      }
    }
    return Status::Ok();
  }

  static bool ParseIntAt(const std::string& s, size_t* pos, int* out) {
    while (*pos < s.size() && std::isspace(s[*pos])) ++(*pos);
    size_t start = *pos;
    while (*pos < s.size() && std::isdigit(s[*pos])) ++(*pos);
    if (*pos == start) return false;
    // strtol never throws; reject overflow instead.
    errno = 0;
    const long v = std::strtol(s.c_str() + start, nullptr, 10);
    if (errno == ERANGE || v > INT_MAX) return false;
    *out = static_cast<int>(v);
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  Status ParseSteps() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("pattern has no steps");
    }
    while (true) {
      Status status = ParseStep();
      if (!status.ok()) return status;
      SkipWs();
      if (pos_ >= text_.size()) break;
      // "->" separator, followed by a mandatory next step.
      if (text_.compare(pos_, 2, "->") != 0) {
        return Status::InvalidArgument(
            StrCat("expected '->' at offset ", pos_, " in pattern"));
      }
      pos_ += 2;
      SkipWs();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("trailing '->' without a step");
      }
    }
    return Status::Ok();
  }

  Status ParseStep() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of pattern");
    }
    const char op = text_[pos_];
    if (op != 'r' && op != 'w' && op != 'x') {
      return Status::InvalidArgument(
          StrCat("expected step operator r/w/x at offset ", pos_));
    }
    ++pos_;
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return Status::InvalidArgument(
          StrCat("expected '(' at offset ", pos_));
    }
    ++pos_;
    SkipWs();
    std::string var;
    while (pos_ < text_.size() &&
           (std::isalnum(text_[pos_]) || text_[pos_] == '_')) {
      var += text_[pos_++];
    }
    if (var.empty()) {
      return Status::InvalidArgument(
          StrCat("expected file variable at offset ", pos_));
    }
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != ':') {
      return Status::InvalidArgument(
          StrCat("expected ':' after variable at offset ", pos_));
    }
    ++pos_;
    SkipWs();
    size_t cost_start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(text_[pos_]) || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == cost_start) {
      return Status::InvalidArgument(
          StrCat("expected cost after ':' at offset ", pos_));
    }
    const std::string cost_text = text_.substr(cost_start, pos_ - cost_start);
    errno = 0;
    char* end = nullptr;
    const double cost = std::strtod(cost_text.c_str(), &end);
    if (errno == ERANGE || end != cost_text.c_str() + cost_text.size() ||
        !(cost >= 0.0) || !std::isfinite(cost)) {
      return Status::InvalidArgument(
          StrCat("bad cost '", cost_text, "' at offset ", cost_start));
    }
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      return Status::InvalidArgument(
          StrCat("expected ')' at offset ", pos_));
    }
    ++pos_;

    PatternStepSpec step;
    step.is_write = (op == 'w');
    // 'x' reads under an exclusive lock (predeclared upgrade); 'w' locks X
    // by virtue of the write itself.
    step.request_mode = (op == 'r') ? LockMode::kShared : LockMode::kExclusive;
    step.cost = cost;
    step.file_var = VarIndex(var);
    steps_.push_back(step);
    return Status::Ok();
  }

  int VarIndex(const std::string& name) {
    auto it = var_index_.find(name);
    if (it != var_index_.end()) return it->second;
    FileVarSpec spec;
    auto pool = pools_.find(name);
    if (pool != pools_.end()) {
      spec.pool_lo = pool->second.first;
      spec.pool_hi = pool->second.second;
    } else {
      spec.pool_lo = 0;
      spec.pool_hi = static_cast<FileId>(num_files_ - 1);
    }
    spec.distinct_within_pool = true;
    const int index = static_cast<int>(vars_.size());
    vars_.push_back(spec);
    var_index_[name] = index;
    return index;
  }

  const std::string& text_;
  int num_files_;
  size_t pos_ = 0;
  std::map<std::string, std::pair<FileId, FileId>> pools_;
  std::map<std::string, int> var_index_;
  std::vector<FileVarSpec> vars_;
  std::vector<PatternStepSpec> steps_;
};

}  // namespace

StatusOr<Pattern> ParsePattern(const std::string& text, int num_files) {
  return Parser(text, num_files).Parse();
}

}  // namespace wtpgsched
