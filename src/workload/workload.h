#ifndef WTPG_SCHED_WORKLOAD_WORKLOAD_H_
#define WTPG_SCHED_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <vector>

#include "model/transaction.h"
#include "sim/time.h"
#include "util/random.h"
#include "workload/pattern.h"

namespace wtpgsched {

// One component of a workload mix.
struct WeightedPattern {
  Pattern pattern;
  double weight = 1.0;  // Relative arrival share (> 0).
  // Scheduling priority stamped onto transactions of this class (higher =
  // more urgent; 0 = batch/background). Read by the admission-control gate
  // in Scheduler::OnStartup.
  int priority = 0;
};

// Index selected by a roulette draw `pick` in [0, sum(weights)): sequential
// subtraction, clamped to the last component when floating-point rounding
// leaves pick >= 0 after every weight has been subtracted (the accumulated
// total can exceed the sequentially-subtracted total by a few ulps, e.g.
// with ten 0.1 weights). Exposed for the clamp's regression test.
size_t PickByWeight(const std::vector<double>& weights, double pick);

// Open workload source: Poisson arrivals of transactions instantiated from
// one pattern or a weighted mix (the paper's motivation is OLTP machines
// running "heavy mixed-workload" — a mix lets batches share the machine
// with short transactions). Arrival times and pattern draws use independent
// RNG streams so that the arrival sequence is identical across schedulers
// at a given seed (common random numbers reduce cross-scheduler variance).
class WorkloadGenerator {
 public:
  // `arrival_rate_tps` > 0; `dd` is the uniform degree of declustering.
  WorkloadGenerator(Pattern pattern, double arrival_rate_tps, int dd,
                    ErrorModel error, uint64_t seed);
  WorkloadGenerator(std::vector<WeightedPattern> mix, double arrival_rate_tps,
                    int dd, ErrorModel error, uint64_t seed);

  // Exponentially distributed time to the next arrival, in SimTime units.
  SimTime NextInterarrival();

  // Builds the next transaction (ids are sequential from 1), drawing its
  // pattern from the mix by weight.
  std::unique_ptr<Transaction> NextTransaction();

  const std::vector<WeightedPattern>& mix() const { return mix_; }
  // Largest file id any mix component can reference.
  FileId MaxFileId() const;
  double arrival_rate_tps() const { return arrival_rate_tps_; }
  int dd() const { return dd_; }
  TxnId transactions_created() const { return next_id_ - 1; }

 private:
  std::vector<WeightedPattern> mix_;
  std::vector<double> weights_;  // mix_[i].weight, contiguous for the pick.
  double total_weight_ = 0.0;
  double arrival_rate_tps_;
  int dd_;
  ErrorModel error_;
  Rng arrival_rng_;
  Rng pattern_rng_;
  TxnId next_id_ = 1;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_WORKLOAD_WORKLOAD_H_
