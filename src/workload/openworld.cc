#include "workload/openworld.h"

#include <utility>

#include "util/logging.h"

namespace wtpgsched {

std::vector<WeightedPattern> MakeOpenWorldMix(const OpenWorldSpec& spec) {
  WTPG_CHECK_GE(spec.num_files, 2) << "open-world universe needs >= 2 files";
  WTPG_CHECK_GT(spec.interactive_share, 0.0);
  WTPG_CHECK_LT(spec.interactive_share, 1.0);
  WTPG_CHECK_GE(spec.zipf_theta, 0.0);
  WTPG_CHECK_GT(spec.interactive_cost, 0.0);
  WTPG_CHECK_GT(spec.batch_cost, 0.0);

  const FileId hi = static_cast<FileId>(spec.num_files - 1);
  const auto var = [&] {
    return FileVarSpec{0, hi, /*distinct_within_pool=*/true, spec.zipf_theta};
  };
  const LockMode kX = LockMode::kExclusive;
  const LockMode kS = LockMode::kShared;

  // Interactive: short read + write over two distinct skewed files. The
  // read takes an S-lock (point lookup), the write an X-lock.
  std::vector<FileVarSpec> ivars = {var(), var()};
  std::vector<PatternStepSpec> isteps = {
      {/*is_write=*/false, kS, /*file_var=*/0, spec.interactive_cost},
      {/*is_write=*/true, kX, /*file_var=*/1, spec.interactive_cost / 5.0},
  };
  Pattern interactive("Interactive", std::move(ivars), std::move(isteps));

  // Batch: a long scan over three skewed files plus a summary write — the
  // declared footprint the WTPG schedulers reason about is an order of
  // magnitude heavier than an interactive transaction's.
  std::vector<FileVarSpec> bvars = {var(), var(), var(), var()};
  std::vector<PatternStepSpec> bsteps = {
      {/*is_write=*/false, kS, /*file_var=*/0, spec.batch_cost},
      {/*is_write=*/false, kS, /*file_var=*/1, spec.batch_cost},
      {/*is_write=*/false, kS, /*file_var=*/2, spec.batch_cost},
      {/*is_write=*/true, kX, /*file_var=*/3, spec.batch_cost / 5.0},
  };
  Pattern batch("BatchScan", std::move(bvars), std::move(bsteps));

  std::vector<WeightedPattern> mix;
  mix.push_back(WeightedPattern{std::move(interactive),
                                spec.interactive_share,
                                spec.interactive_priority});
  mix.push_back(WeightedPattern{std::move(batch),
                                1.0 - spec.interactive_share,
                                spec.batch_priority});
  return mix;
}

}  // namespace wtpgsched
