#include "workload/pattern.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace wtpgsched {

Pattern::Pattern(std::string name, std::vector<FileVarSpec> vars,
                 std::vector<PatternStepSpec> steps)
    : name_(std::move(name)), vars_(std::move(vars)), steps_(std::move(steps)) {
  WTPG_CHECK(!steps_.empty()) << "pattern with no steps";
  zipf_.reserve(vars_.size());
  for (const FileVarSpec& v : vars_) {
    WTPG_CHECK_LE(v.pool_lo, v.pool_hi);
    WTPG_CHECK_GE(v.zipf_theta, 0.0);
    const int64_t pool = static_cast<int64_t>(v.pool_hi) - v.pool_lo + 1;
    zipf_.emplace_back(pool, v.zipf_theta);
  }
  for (const PatternStepSpec& s : steps_) {
    WTPG_CHECK_GE(s.file_var, 0);
    WTPG_CHECK_LT(s.file_var, static_cast<int>(vars_.size()));
    WTPG_CHECK_GE(s.cost, 0.0);
  }
}

Pattern Pattern::Experiment1(int num_files) {
  WTPG_CHECK_GE(num_files, 2);
  const FileId hi = static_cast<FileId>(num_files - 1);
  std::vector<FileVarSpec> vars = {
      {0, hi, /*distinct_within_pool=*/true},  // F1
      {0, hi, /*distinct_within_pool=*/true},  // F2
  };
  const LockMode kX = LockMode::kExclusive;
  const LockMode kS = LockMode::kShared;
  std::vector<PatternStepSpec> steps = {
      {/*is_write=*/false, kX, /*file_var=*/0, /*cost=*/1.0},  // r(F1:1), X-lock
      {/*is_write=*/false, kX, /*file_var=*/1, /*cost=*/5.0},  // r(F2:5), X-lock
      {/*is_write=*/true, kS, /*file_var=*/0, /*cost=*/0.2},   // w(F1:0.2)
      {/*is_write=*/true, kS, /*file_var=*/1, /*cost=*/1.0},   // w(F2:1)
  };
  // The request_mode of the write steps is irrelevant: the files are already
  // locked X by the first two steps.
  return Pattern("Pattern1", std::move(vars), std::move(steps));
}

Pattern Pattern::Experiment2() {
  std::vector<FileVarSpec> vars = {
      {0, 7, /*distinct_within_pool=*/true},   // B: read-only pool
      {8, 15, /*distinct_within_pool=*/true},  // F1: hot pool
      {8, 15, /*distinct_within_pool=*/true},  // F2: hot pool
  };
  const LockMode kX = LockMode::kExclusive;
  const LockMode kS = LockMode::kShared;
  std::vector<PatternStepSpec> steps = {
      {/*is_write=*/false, kS, /*file_var=*/0, /*cost=*/5.0},  // r(B:5)
      {/*is_write=*/true, kX, /*file_var=*/1, /*cost=*/1.0},   // w(F1:1)
      {/*is_write=*/true, kX, /*file_var=*/2, /*cost=*/1.0},   // w(F2:1)
  };
  return Pattern("Pattern2", std::move(vars), std::move(steps));
}

FileId Pattern::MaxFileId() const {
  FileId max_id = 0;
  for (const FileVarSpec& v : vars_) max_id = std::max(max_id, v.pool_hi);
  return max_id;
}

Pattern Pattern::WithZipf(double theta) const {
  std::vector<FileVarSpec> vars = vars_;
  for (FileVarSpec& v : vars) v.zipf_theta = theta;
  return Pattern(name_, std::move(vars), steps_);
}

double Pattern::TotalCost() const {
  double total = 0.0;
  for (const PatternStepSpec& s : steps_) total += s.cost;
  return total;
}

std::vector<StepSpec> Pattern::Instantiate(Rng* rng, int dd,
                                           const ErrorModel& error) const {
  WTPG_CHECK_GE(dd, 1);
  // Bind file variables.
  std::vector<FileId> bound(vars_.size(), kInvalidFile);
  for (size_t i = 0; i < vars_.size(); ++i) {
    const FileVarSpec& v = vars_[i];
    FileId file;
    int attempts = 0;
    do {
      // Zipf vars draw a skewed rank offset from the pool base; uniform
      // vars keep the exact historical UniformInt path (bit-identical
      // draws for theta == 0 configs).
      file = v.zipf_theta > 0.0
                 ? static_cast<FileId>(v.pool_lo + zipf_[i].Sample(rng))
                 : static_cast<FileId>(rng->UniformInt(v.pool_lo, v.pool_hi));
      bool clash = false;
      if (v.distinct_within_pool) {
        for (size_t j = 0; j < i; ++j) {
          const FileVarSpec& w = vars_[j];
          if (w.pool_lo == v.pool_lo && w.pool_hi == v.pool_hi &&
              w.distinct_within_pool && bound[j] == file) {
            clash = true;
            break;
          }
        }
      }
      if (!clash) break;
      ++attempts;
      WTPG_CHECK_LT(attempts, 10000) << "file pool too small for distinctness";
    } while (true);
    bound[i] = file;
  }

  std::vector<StepSpec> result;
  result.reserve(steps_.size());
  for (const PatternStepSpec& s : steps_) {
    StepSpec step;
    step.file = bound[static_cast<size_t>(s.file_var)];
    step.access = s.is_write ? LockMode::kExclusive : LockMode::kShared;
    step.request_mode = Stronger(s.request_mode, step.access);
    step.actual_cost = s.cost;
    double declared = s.cost;
    if (error.sigma > 0.0) {
      const double x = rng->Normal(0.0, error.sigma);
      declared = x <= -1.0 ? 0.0 : s.cost * (1.0 + x);
    }
    step.declared_cost = declared / static_cast<double>(dd);
    result.push_back(step);
  }
  return result;
}

}  // namespace wtpgsched
