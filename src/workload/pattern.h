#ifndef WTPG_SCHED_WORKLOAD_PATTERN_H_
#define WTPG_SCHED_WORKLOAD_PATTERN_H_

#include <string>
#include <vector>

#include "model/transaction.h"
#include "model/types.h"
#include "util/random.h"

namespace wtpgsched {

// A workload pattern: a template "step1 -> ... -> stepN" from which each new
// transaction is instantiated (paper Section 4.2). Files are chosen via
// named file variables drawn from pools, so that the built-in Experiment 1
// and Experiment 2 patterns and arbitrary user patterns share one mechanism.

// How one file variable is drawn.
struct FileVarSpec {
  FileId pool_lo = 0;   // Inclusive.
  FileId pool_hi = 0;   // Inclusive.
  // When true, the draw excludes files already bound to earlier variables
  // with the same pool (e.g. F1 != F2 in Pattern 1).
  bool distinct_within_pool = true;
  // Zipf skew over the pool: 0 (default) draws uniformly via the exact
  // historical Rng::UniformInt path; theta > 0 draws pool_lo + rank with
  // rank ~ Zipf(theta) over the pool size (pool_lo is the hottest file).
  // The sampler is precomputed at Pattern construction (O(1) state even
  // for 10M-file pools — see ZipfSampler).
  double zipf_theta = 0.0;
};

// One templated step.
struct PatternStepSpec {
  bool is_write = false;
  // Lock mode requested when this step first locks its file; must cover all
  // later accesses of the same file variable.
  LockMode request_mode = LockMode::kShared;
  int file_var = 0;   // Index into Pattern::vars.
  double cost = 0.0;  // I/O demand C in objects at DD = 1.
};

// Declaration error model of Experiment 3: declared cost = C0 * (1 + x)
// with x ~ N(0, sigma), clamped to 0 when x <= -1.
struct ErrorModel {
  double sigma = 0.0;
};

class Pattern {
 public:
  Pattern(std::string name, std::vector<FileVarSpec> vars,
          std::vector<PatternStepSpec> steps);

  // Pattern 1 (Experiments 1 and 3):
  //   r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)
  // F1, F2 distinct uniform over [0, num_files); X-locks requested at the
  // first two steps.
  static Pattern Experiment1(int num_files);

  // Pattern 2 (Experiment 2):
  //   r(B:5) -> w(F1:1) -> w(F2:1)
  // B uniform over 8 read-only files [0, 8); F1, F2 distinct uniform over 8
  // hot files [8, 16). S-lock for the read, X-locks for the writes.
  static Pattern Experiment2();

  const std::string& name() const { return name_; }
  const std::vector<FileVarSpec>& vars() const { return vars_; }
  const std::vector<PatternStepSpec>& steps() const { return steps_; }

  // Largest file id any variable can draw (for validating placement).
  FileId MaxFileId() const;

  // Copy of this pattern with every file variable's zipf_theta set (the
  // config.workload.zipf_theta / --zipf-theta override). theta = 0 returns
  // an exact-uniform copy.
  Pattern WithZipf(double theta) const;

  // Total actual I/O demand of one instance, in objects at DD = 1.
  double TotalCost() const;

  // Draws file bindings and builds the concrete steps. `dd` is the degree
  // of declustering (declared costs are divided by it: a step of cost C
  // declares C/DD when DD-way parallel). `error` perturbs declared costs.
  std::vector<StepSpec> Instantiate(Rng* rng, int dd,
                                    const ErrorModel& error) const;

 private:
  std::string name_;
  std::vector<FileVarSpec> vars_;
  std::vector<PatternStepSpec> steps_;
  // One sampler per variable, built at construction; consulted only for
  // vars with zipf_theta > 0 (uniform vars keep the UniformInt path).
  std::vector<ZipfSampler> zipf_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_WORKLOAD_PATTERN_H_
