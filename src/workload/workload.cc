#include "workload/workload.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace wtpgsched {

WorkloadGenerator::WorkloadGenerator(Pattern pattern, double arrival_rate_tps,
                                     int dd, ErrorModel error, uint64_t seed)
    : WorkloadGenerator(
          [&] {
            std::vector<WeightedPattern> mix;
            mix.push_back(WeightedPattern{std::move(pattern), 1.0});
            return mix;
          }(),
          arrival_rate_tps, dd, error, seed) {}

WorkloadGenerator::WorkloadGenerator(std::vector<WeightedPattern> mix,
                                     double arrival_rate_tps, int dd,
                                     ErrorModel error, uint64_t seed)
    : mix_(std::move(mix)),
      arrival_rate_tps_(arrival_rate_tps),
      dd_(dd),
      error_(error),
      arrival_rng_(seed ^ 0x9e3779b97f4a7c15ULL),
      pattern_rng_(seed ^ 0x7f4a7c159e3779b9ULL) {
  WTPG_CHECK_GT(arrival_rate_tps_, 0.0);
  WTPG_CHECK_GE(dd_, 1);
  WTPG_CHECK(!mix_.empty()) << "workload mix must have a component";
  weights_.reserve(mix_.size());
  for (const WeightedPattern& wp : mix_) {
    WTPG_CHECK_GT(wp.weight, 0.0);
    total_weight_ += wp.weight;
    weights_.push_back(wp.weight);
  }
}

size_t PickByWeight(const std::vector<double>& weights, double pick) {
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  // Rounding left pick >= 0 after subtracting every weight (the
  // left-to-right accumulated total can exceed the same weights subtracted
  // sequentially from a value just below it). The draw lies in the last
  // component's band, not the first's — clamp accordingly.
  return weights.size() - 1;
}

SimTime WorkloadGenerator::NextInterarrival() {
  const double mean_seconds = 1.0 / arrival_rate_tps_;
  const double gap = arrival_rng_.Exponential(mean_seconds);
  return SecondsToTime(gap);
}

std::unique_ptr<Transaction> WorkloadGenerator::NextTransaction() {
  size_t component = 0;
  if (mix_.size() > 1) {
    const double pick = pattern_rng_.NextDouble() * total_weight_;
    component = PickByWeight(weights_, pick);
  }
  const WeightedPattern& wp = mix_[component];
  auto steps = wp.pattern.Instantiate(&pattern_rng_, dd_, error_);
  auto txn = std::make_unique<Transaction>(next_id_++, std::move(steps));
  txn->workload_class = static_cast<int>(component);
  txn->priority = wp.priority;
  return txn;
}

FileId WorkloadGenerator::MaxFileId() const {
  FileId max_id = 0;
  for (const WeightedPattern& wp : mix_) {
    max_id = std::max(max_id, wp.pattern.MaxFileId());
  }
  return max_id;
}

}  // namespace wtpgsched
