#include "workload/workload.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace wtpgsched {

WorkloadGenerator::WorkloadGenerator(Pattern pattern, double arrival_rate_tps,
                                     int dd, ErrorModel error, uint64_t seed)
    : WorkloadGenerator(
          [&] {
            std::vector<WeightedPattern> mix;
            mix.push_back(WeightedPattern{std::move(pattern), 1.0});
            return mix;
          }(),
          arrival_rate_tps, dd, error, seed) {}

WorkloadGenerator::WorkloadGenerator(std::vector<WeightedPattern> mix,
                                     double arrival_rate_tps, int dd,
                                     ErrorModel error, uint64_t seed)
    : mix_(std::move(mix)),
      arrival_rate_tps_(arrival_rate_tps),
      dd_(dd),
      error_(error),
      arrival_rng_(seed ^ 0x9e3779b97f4a7c15ULL),
      pattern_rng_(seed ^ 0x7f4a7c159e3779b9ULL) {
  WTPG_CHECK_GT(arrival_rate_tps_, 0.0);
  WTPG_CHECK_GE(dd_, 1);
  WTPG_CHECK(!mix_.empty()) << "workload mix must have a component";
  for (const WeightedPattern& wp : mix_) {
    WTPG_CHECK_GT(wp.weight, 0.0);
    total_weight_ += wp.weight;
  }
}

SimTime WorkloadGenerator::NextInterarrival() {
  const double mean_seconds = 1.0 / arrival_rate_tps_;
  const double gap = arrival_rng_.Exponential(mean_seconds);
  return SecondsToTime(gap);
}

std::unique_ptr<Transaction> WorkloadGenerator::NextTransaction() {
  const Pattern* pattern = &mix_.front().pattern;
  int workload_class = 0;
  if (mix_.size() > 1) {
    double pick = pattern_rng_.NextDouble() * total_weight_;
    for (size_t i = 0; i < mix_.size(); ++i) {
      pick -= mix_[i].weight;
      if (pick < 0.0) {
        pattern = &mix_[i].pattern;
        workload_class = static_cast<int>(i);
        break;
      }
    }
  }
  auto steps = pattern->Instantiate(&pattern_rng_, dd_, error_);
  auto txn = std::make_unique<Transaction>(next_id_++, std::move(steps));
  txn->workload_class = workload_class;
  return txn;
}

FileId WorkloadGenerator::MaxFileId() const {
  FileId max_id = 0;
  for (const WeightedPattern& wp : mix_) {
    max_id = std::max(max_id, wp.pattern.MaxFileId());
  }
  return max_id;
}

}  // namespace wtpgsched
