#ifndef WTPG_SCHED_WORKLOAD_OPENWORLD_H_
#define WTPG_SCHED_WORKLOAD_OPENWORLD_H_

#include <vector>

#include "workload/workload.h"

namespace wtpgsched {

// The open-system production workload tier (ROADMAP item 3): short
// interactive transactions and long batch scans sharing one Zipf-skewed
// file universe. The paper's closed-batch experiments draw uniform 16-file
// patterns; this spec asks the paper's question at production scale — do
// the WTPG optimizers still protect the interactive tail when a minority
// of long scans contends for the hot head of a multi-million-file Zipf
// distribution?
//
// Class 0 (mix index 0): interactive — r(F1) -> w(F2), priority 1.
// Class 1 (mix index 1): batch scan — r(B1) -> r(B2) -> r(B3) -> w(B4),
//   priority 0 (gated by machine.batch_mpl when set).
// All file variables draw from the same [0, num_files) pool with the same
// theta, so interactive point reads and batch scans collide on the hot
// prefix — the DGCC-style high-contention hot-key regime.
struct OpenWorldSpec {
  int num_files = 1'000'000;
  double zipf_theta = 0.9;
  // Arrival share of the interactive class, in (0, 1).
  double interactive_share = 0.9;
  // I/O demand in objects (at DD = 1) of one interactive read step; the
  // trailing write costs a fifth of it (Experiment-1 idiom).
  double interactive_cost = 1.0;
  // I/O demand per batch read step; the summary write costs a fifth.
  double batch_cost = 16.0;
  int interactive_priority = 1;
  int batch_priority = 0;
};

// Builds the two-class weighted mix. Component order (and therefore
// workload_class numbering) is interactive = 0, batch = 1.
std::vector<WeightedPattern> MakeOpenWorldMix(const OpenWorldSpec& spec);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_WORKLOAD_OPENWORLD_H_
