#include "fault/fault_config.h"

namespace wtpgsched {

Status FaultConfig::Validate() const {
  for (double v : {dpn_mttf_ms, straggler_mtbf_ms, abort_rate_per_s}) {
    if (v < 0.0) {
      return Status::InvalidArgument("fault rates must be >= 0");
    }
  }
  if (dpn_mttf_ms > 0.0 && dpn_mttr_ms <= 0.0) {
    return Status::InvalidArgument(
        "dpn_mttr_ms must be > 0 when crashes are enabled");
  }
  if (straggler_mtbf_ms > 0.0) {
    if (straggler_duration_ms <= 0.0) {
      return Status::InvalidArgument(
          "straggler_duration_ms must be > 0 when stragglers are enabled");
    }
    if (straggler_factor < 1.0) {
      return Status::InvalidArgument("straggler_factor must be >= 1");
    }
  }
  if (backoff_base_ms < 0.0 || backoff_max_ms < backoff_base_ms) {
    return Status::InvalidArgument(
        "backoff_base_ms must be >= 0 and <= backoff_max_ms");
  }
  if (backoff_jitter < 0.0 || backoff_jitter >= 1.0) {
    return Status::InvalidArgument("backoff_jitter must be in [0, 1)");
  }
  return Status::Ok();
}

}  // namespace wtpgsched
