#include "fault/fault_flags.h"

namespace wtpgsched {

void AddFaultFlags(FlagParser& flags) {
  FaultConfig defaults;
  flags.AddDouble("fault-mttf-ms", defaults.dpn_mttf_ms,
                  "mean time to DPN failure, exponential (0 = no crashes)");
  flags.AddDouble("fault-mttr-ms", defaults.dpn_mttr_ms,
                  "mean time to DPN repair, exponential");
  flags.AddDouble("fault-straggler-mtbf-ms", defaults.straggler_mtbf_ms,
                  "mean time between DPN slowdown windows (0 = none)");
  flags.AddDouble("fault-straggler-duration-ms",
                  defaults.straggler_duration_ms,
                  "length of each slowdown window");
  flags.AddDouble("fault-straggler-factor", defaults.straggler_factor,
                  "scan service-time multiplier inside a window (>= 1)");
  flags.AddDouble("fault-abort-rate", defaults.abort_rate_per_s,
                  "spontaneous-abort injections per simulated second");
  flags.AddDouble("fault-backoff-base-ms", defaults.backoff_base_ms,
                  "restart backoff base (doubles per restart)");
  flags.AddDouble("fault-backoff-max-ms", defaults.backoff_max_ms,
                  "restart backoff cap");
  flags.AddDouble("fault-backoff-jitter", defaults.backoff_jitter,
                  "backoff jitter fraction in [0, 1)");
}

void ApplyFaultFlags(const FlagParser& flags, FaultConfig* fault) {
  struct Binding {
    const char* name;
    double FaultConfig::* field;
  };
  static constexpr Binding kBindings[] = {
      {"fault-mttf-ms", &FaultConfig::dpn_mttf_ms},
      {"fault-mttr-ms", &FaultConfig::dpn_mttr_ms},
      {"fault-straggler-mtbf-ms", &FaultConfig::straggler_mtbf_ms},
      {"fault-straggler-duration-ms", &FaultConfig::straggler_duration_ms},
      {"fault-straggler-factor", &FaultConfig::straggler_factor},
      {"fault-abort-rate", &FaultConfig::abort_rate_per_s},
      {"fault-backoff-base-ms", &FaultConfig::backoff_base_ms},
      {"fault-backoff-max-ms", &FaultConfig::backoff_max_ms},
      {"fault-backoff-jitter", &FaultConfig::backoff_jitter},
  };
  for (const Binding& b : kBindings) {
    if (flags.WasSet(b.name)) fault->*b.field = flags.GetDouble(b.name);
  }
}

}  // namespace wtpgsched
