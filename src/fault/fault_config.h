#ifndef WTPG_SCHED_FAULT_FAULT_CONFIG_H_
#define WTPG_SCHED_FAULT_FAULT_CONFIG_H_

#include "util/status.h"

namespace wtpgsched {

// The `fault` section of SimConfig: a declarative description of the node
// churn a run should suffer. All rates default to zero, which compiles to
// an empty FaultPlan — a zero-fault run is byte-identical to a build
// without the fault layer (the differential suite asserts this).
//
// Every stochastic draw behind the plan comes from a dedicated RNG stream
// derived from the replica's seed (see FaultPlan::Compile), so the fault
// schedule never perturbs arrival or pattern draws, and identical seeds
// give bit-identical schedules at any --jobs value.
struct FaultConfig {
  // --- DPN crash / repair ---
  // Mean time to failure per data-processing node, exponential (0 = no
  // crashes). A crashed node fails its in-flight and queued scans: the
  // victim transactions abort (Scheduler::OnAbort) and restart after a
  // backoff; dispatching a step to a crashed node is also fatal to the
  // requesting incarnation.
  double dpn_mttf_ms = 0.0;
  // Mean time to repair, exponential. A repaired node resumes with its
  // placement intact (partitions are not re-homed).
  double dpn_mttr_ms = 60'000.0;

  // --- Straggler windows ---
  // Mean time between slowdown windows per node, exponential (0 = none).
  double straggler_mtbf_ms = 0.0;
  // Fixed window length; windows on one node never overlap (the next
  // inter-window draw starts when the previous window ends).
  double straggler_duration_ms = 30'000.0;
  // Scan service-time multiplier while the window is open (>= 1). Applies
  // to cohorts submitted during the window; cohorts already resident keep
  // their original service demand.
  double straggler_factor = 4.0;

  // --- Spontaneous aborts ---
  // Poisson rate (events per simulated second) of abort injections. Each
  // injection carries a pre-drawn uniform pick that selects one eligible
  // active transaction (deterministic given the simulation state); if no
  // transaction is eligible the injection is a no-op.
  double abort_rate_per_s = 0.0;

  // --- Restart backoff ---
  // A fault-aborted incarnation restarts after
  //   min(backoff_max_ms, backoff_base_ms * 2^(restarts - 1))
  // scaled by a deterministic jitter factor in [1 - j, 1 + j] drawn from
  // the replica's fault RNG stream.
  double backoff_base_ms = 500.0;
  double backoff_max_ms = 60'000.0;
  double backoff_jitter = 0.2;

  // True when any fault source is configured; false means the compiled
  // plan is empty and the run is byte-identical to a fault-free build.
  bool enabled() const {
    return dpn_mttf_ms > 0.0 || straggler_mtbf_ms > 0.0 ||
           abort_rate_per_s > 0.0;
  }

  Status Validate() const;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_FAULT_FAULT_CONFIG_H_
