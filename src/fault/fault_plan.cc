#include "fault/fault_plan.h"

#include <algorithm>
#include <tuple>

#include "util/logging.h"
#include "util/random.h"

namespace wtpgsched {

namespace {

// Salt separating the fault stream from the workload streams, which are
// seeded directly from the replica seed. Arbitrary odd 64-bit constant.
constexpr uint64_t kFaultSeedSalt = 0x9e3779b97f4a7c15ull;

}  // namespace

const char* FaultEventKindName(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kDpnCrash:
      return "dpn_crash";
    case FaultEventKind::kDpnRepair:
      return "dpn_repair";
    case FaultEventKind::kSlowdownStart:
      return "slowdown_start";
    case FaultEventKind::kSlowdownEnd:
      return "slowdown_end";
    case FaultEventKind::kInjectAbort:
      return "inject_abort";
  }
  return "?";
}

FaultPlan FaultPlan::Compile(const FaultConfig& config, int num_nodes,
                             SimTime horizon, uint64_t seed) {
  WTPG_CHECK(num_nodes > 0);
  FaultPlan plan;
  if (!config.enabled()) return plan;

  Rng root(seed ^ kFaultSeedSalt);
  // Fork a fixed set of child streams up front, in a fixed order, so each
  // fault source is independent of the others' configuration: turning
  // stragglers on must not move the crash schedule.
  Rng crash_rng = root.Fork();
  Rng straggler_rng = root.Fork();
  Rng abort_rng = root.Fork();

  if (config.dpn_mttf_ms > 0.0) {
    for (NodeId node = 0; node < num_nodes; ++node) {
      // Per-node stream: the schedule of node k does not depend on how many
      // draws earlier nodes consumed.
      Rng rng = crash_rng.Fork();
      SimTime t = 0;
      while (true) {
        t += MsToTime(rng.Exponential(config.dpn_mttf_ms));
        if (t >= horizon) break;
        plan.events_.push_back(
            {.time = t, .kind = FaultEventKind::kDpnCrash, .node = node});
        ++plan.num_crashes_;
        t += MsToTime(rng.Exponential(config.dpn_mttr_ms));
        if (t >= horizon) break;
        plan.events_.push_back(
            {.time = t, .kind = FaultEventKind::kDpnRepair, .node = node});
      }
    }
  }

  if (config.straggler_mtbf_ms > 0.0) {
    const SimTime duration = MsToTime(config.straggler_duration_ms);
    for (NodeId node = 0; node < num_nodes; ++node) {
      Rng rng = straggler_rng.Fork();
      SimTime t = 0;
      while (true) {
        // Windows never overlap: the next inter-window gap starts when the
        // previous window closes.
        t += MsToTime(rng.Exponential(config.straggler_mtbf_ms));
        if (t >= horizon) break;
        plan.events_.push_back(
            {.time = t, .kind = FaultEventKind::kSlowdownStart, .node = node});
        ++plan.num_slowdowns_;
        t += duration;
        if (t >= horizon) break;
        plan.events_.push_back(
            {.time = t, .kind = FaultEventKind::kSlowdownEnd, .node = node});
      }
    }
  }

  if (config.abort_rate_per_s > 0.0) {
    const double mean_gap_ms = 1000.0 / config.abort_rate_per_s;
    SimTime t = 0;
    while (true) {
      t += MsToTime(abort_rng.Exponential(mean_gap_ms));
      if (t >= horizon) break;
      plan.events_.push_back({.time = t,
                              .kind = FaultEventKind::kInjectAbort,
                              .node = -1,
                              .pick = abort_rng.NextDouble()});
      ++plan.num_abort_injections_;
    }
  }

  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.time, a.kind, a.node) <
                     std::tie(b.time, b.kind, b.node);
            });
  return plan;
}

}  // namespace wtpgsched
