#ifndef WTPG_SCHED_FAULT_FAULT_PLAN_H_
#define WTPG_SCHED_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "fault/fault_config.h"
#include "model/types.h"
#include "sim/time.h"

namespace wtpgsched {

// One scheduled fault, in simulated time. Crash/repair and slowdown
// start/end come in alternating per-node pairs; abort injections are
// machine-wide and carry a pre-drawn uniform pick in [0, 1) that the
// machine maps onto whichever transaction is eligible when the event fires
// (the draw happens at compile time so victim selection never consumes
// simulation RNG state).
enum class FaultEventKind : uint8_t {
  kDpnCrash = 0,
  kDpnRepair = 1,
  kSlowdownStart = 2,
  kSlowdownEnd = 3,
  kInjectAbort = 4,
};

const char* FaultEventKindName(FaultEventKind kind);

struct FaultEvent {
  SimTime time = 0;
  FaultEventKind kind = FaultEventKind::kDpnCrash;
  NodeId node = -1;    // -1 for machine-wide events (kInjectAbort).
  double pick = 0.0;   // kInjectAbort victim selector, uniform in [0, 1).
};

// The full fault schedule of one run, compiled from FaultConfig before the
// simulation starts. Compilation draws from a dedicated RNG stream seeded
// by (seed ^ salt) — never from the workload streams — so:
//   * a zero-fault config compiles to an empty plan and the run is
//     byte-identical to a build without the fault layer, and
//   * identical seeds give bit-identical schedules regardless of --jobs,
//     replica interleaving, or which schedulers ran before.
class FaultPlan {
 public:
  FaultPlan() = default;

  // Compiles the schedule for a machine with `num_nodes` DPNs over
  // [0, horizon). `seed` is the replica seed (config.run.seed + replica
  // index); the plan salts it internally. Requires config.Validate() ok.
  static FaultPlan Compile(const FaultConfig& config, int num_nodes,
                           SimTime horizon, uint64_t seed);

  // Events sorted by (time, kind, node); stable for equal seeds.
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Schedule summary counts (for logging and plan tests).
  uint64_t num_crashes() const { return num_crashes_; }
  uint64_t num_slowdowns() const { return num_slowdowns_; }
  uint64_t num_abort_injections() const { return num_abort_injections_; }

 private:
  std::vector<FaultEvent> events_;
  uint64_t num_crashes_ = 0;
  uint64_t num_slowdowns_ = 0;
  uint64_t num_abort_injections_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_FAULT_FAULT_PLAN_H_
