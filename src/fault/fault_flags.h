#ifndef WTPG_SCHED_FAULT_FAULT_FLAGS_H_
#define WTPG_SCHED_FAULT_FAULT_FLAGS_H_

#include "fault/fault_config.h"
#include "util/flags.h"

namespace wtpgsched {

// --fault-* flags shared by the tools; defaults mirror FaultConfig so a
// flag overlays the config only when explicitly set.
void AddFaultFlags(FlagParser& flags);

// Copies every explicitly-set --fault-* flag into *fault (on top of
// whatever --config loaded).
void ApplyFaultFlags(const FlagParser& flags, FaultConfig* fault);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_FAULT_FAULT_FLAGS_H_
