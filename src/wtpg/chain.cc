#include "wtpg/chain.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {
namespace {

// Direction of a chain segment.
enum Direction { kForward = 0, kBackward = 1 };

// Per-edge constraint from existing orientations: -1 free, else a Direction.
int EdgeConstraint(const Wtpg& g, TxnId a, TxnId b) {
  const Wtpg::Edge* e = g.FindEdge(a, b);
  WTPG_CHECK(e != nullptr);
  if (!e->oriented) return -1;
  return e->from == a ? kForward : kBackward;
}

}  // namespace

bool IsChainForm(const Wtpg& g) {
  // Union of simple paths <=> every degree <= 2 and each connected
  // component has |E| = |V| - 1 (tree) — with degree <= 2 a tree is a path.
  std::unordered_map<TxnId, int> component;
  int next_component = 0;
  for (TxnId id : g.Nodes()) {
    if (g.Neighbors(id).size() > 2) return false;
    if (component.count(id)) continue;
    // BFS this component, counting nodes and edge endpoints.
    std::vector<TxnId> queue = {id};
    component[id] = next_component;
    size_t nodes = 0;
    size_t endpoint_count = 0;
    while (!queue.empty()) {
      const TxnId cur = queue.back();
      queue.pop_back();
      ++nodes;
      const auto neighbors = g.Neighbors(cur);
      endpoint_count += neighbors.size();
      for (TxnId nb : neighbors) {
        if (!component.count(nb)) {
          component[nb] = next_component;
          queue.push_back(nb);
        }
      }
    }
    const size_t edges = endpoint_count / 2;
    if (edges != nodes - 1) return false;  // Cycle in this component.
    ++next_component;
  }
  return true;
}

bool CanExtendChain(const Wtpg& g, const std::vector<TxnId>& conflict_set) {
  WTPG_CHECK(IsChainForm(g));
  if (conflict_set.size() > 2) return false;
  for (TxnId id : conflict_set) {
    WTPG_CHECK(g.HasNode(id));
    if (g.Neighbors(id).size() > 1) return false;  // Not a path endpoint.
  }
  if (conflict_set.size() == 2) {
    // Joining two endpoints of the same path through the new node would
    // close a cycle.
    const std::vector<TxnId> chain = ChainContaining(g, conflict_set[0]);
    for (TxnId id : chain) {
      if (id == conflict_set[1]) return false;
    }
  }
  return true;
}

std::vector<TxnId> ChainContaining(const Wtpg& g, TxnId id) {
  WTPG_CHECK(g.HasNode(id));
  // Walk to one end.
  TxnId end = id;
  TxnId prev = kInvalidTxn;
  while (true) {
    TxnId next = kInvalidTxn;
    for (TxnId nb : g.Neighbors(end)) {
      if (nb != prev) {
        next = nb;
        break;
      }
    }
    if (next == kInvalidTxn) break;
    prev = end;
    end = next;
  }
  // Traverse from the end.
  std::vector<TxnId> chain = {end};
  prev = kInvalidTxn;
  TxnId cur = end;
  while (true) {
    TxnId next = kInvalidTxn;
    for (TxnId nb : g.Neighbors(cur)) {
      if (nb != prev) {
        next = nb;
        break;
      }
    }
    if (next == kInvalidTxn) break;
    chain.push_back(next);
    prev = cur;
    cur = next;
  }
  return chain;
}

bool ChainPlan::Orients(TxnId a, TxnId b) const {
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    if (nodes[i] == a && nodes[i + 1] == b) return forward[i];
    if (nodes[i] == b && nodes[i + 1] == a) return !forward[i];
  }
  WTPG_CHECK(false) << "ChainPlan::Orients: T" << a << ",T" << b
                    << " not adjacent in chain";
  return false;
}

StatusOr<ChainPlan> OptimizeChain(const Wtpg& g,
                                  const std::vector<TxnId>& chain) {
  const int m = static_cast<int>(chain.size());
  WTPG_CHECK_GE(m, 1);
  ChainPlan plan;
  plan.nodes = chain;

  std::vector<double> w0(static_cast<size_t>(m));
  double max_w0 = 0.0;
  for (int i = 0; i < m; ++i) {
    w0[static_cast<size_t>(i)] = g.remaining(chain[static_cast<size_t>(i)]);
    max_w0 = std::max(max_w0, w0[static_cast<size_t>(i)]);
  }
  if (m == 1) {
    plan.critical_path = max_w0;
    return plan;
  }

  const int ne = m - 1;  // Number of chain edges.
  std::vector<double> wf(static_cast<size_t>(ne));
  std::vector<double> wb(static_cast<size_t>(ne));
  std::vector<int> fixed(static_cast<size_t>(ne));
  for (int i = 0; i < ne; ++i) {
    const TxnId a = chain[static_cast<size_t>(i)];
    const TxnId b = chain[static_cast<size_t>(i) + 1];
    const Wtpg::Edge* e = g.FindEdge(a, b);
    WTPG_CHECK(e != nullptr) << "chain nodes not adjacent in WTPG";
    wf[static_cast<size_t>(i)] = (e->a == a) ? e->weight_ab : e->weight_ba;
    wb[static_cast<size_t>(i)] = (e->a == a) ? e->weight_ba : e->weight_ab;
    fixed[static_cast<size_t>(i)] = EdgeConstraint(g, a, b);
  }

  // Prefix sums: pf[k] = sum of wf[0..k), pb[k] = sum of wb[0..k).
  std::vector<double> pf(static_cast<size_t>(ne) + 1, 0.0);
  std::vector<double> pb(static_cast<size_t>(ne) + 1, 0.0);
  for (int i = 0; i < ne; ++i) {
    pf[static_cast<size_t>(i) + 1] = pf[static_cast<size_t>(i)] + wf[static_cast<size_t>(i)];
    pb[static_cast<size_t>(i) + 1] = pb[static_cast<size_t>(i)] + wb[static_cast<size_t>(i)];
  }
  // Segment values (edges [i..j] all one direction):
  //   forward : longest run entering at some node a in [i, j+1] and running
  //             right to node j+1: max_a (w0[a] - pf[a]) + pf[j+1]
  //   backward: entering at some b in [i, j+1], running left to node i:
  //             max_b (w0[b] + pb[b]) - pb[i]
  auto seg_forward = [&](int i, int j, double max_w0_minus_pf) {
    (void)i;
    return max_w0_minus_pf + pf[static_cast<size_t>(j) + 1];
  };
  auto seg_backward = [&](int i, int j, double max_w0_plus_pb) {
    (void)j;
    return max_w0_plus_pb - pb[static_cast<size_t>(i)];
  };

  constexpr double kInf = kInfiniteCost;
  // dp[j][d]: minimal achievable maximum segment value over edges [0..j],
  // where the last (maximal) segment ends at edge j with direction d.
  std::vector<std::array<double, 2>> dp(static_cast<size_t>(ne),
                                        {kInf, kInf});
  std::vector<std::array<int, 2>> parent(static_cast<size_t>(ne), {-2, -2});

  for (int j = 0; j < ne; ++j) {
    // Scan segment starts i from j down to 0, maintaining the running
    // maxima needed by the segment-value formulas and feasibility.
    double max_w0_minus_pf =
        std::max(w0[static_cast<size_t>(j) + 1] - pf[static_cast<size_t>(j) + 1],
                 w0[static_cast<size_t>(j)] - pf[static_cast<size_t>(j)]);
    double max_w0_plus_pb =
        std::max(w0[static_cast<size_t>(j) + 1] + pb[static_cast<size_t>(j) + 1],
                 w0[static_cast<size_t>(j)] + pb[static_cast<size_t>(j)]);
    bool forward_ok = fixed[static_cast<size_t>(j)] != kBackward;
    bool backward_ok = fixed[static_cast<size_t>(j)] != kForward;
    for (int i = j; i >= 0; --i) {
      if (i < j) {
        // Extend the segment leftward over edge i.
        if (fixed[static_cast<size_t>(i)] == kBackward) forward_ok = false;
        if (fixed[static_cast<size_t>(i)] == kForward) backward_ok = false;
        max_w0_minus_pf = std::max(
            max_w0_minus_pf, w0[static_cast<size_t>(i)] - pf[static_cast<size_t>(i)]);
        max_w0_plus_pb = std::max(
            max_w0_plus_pb, w0[static_cast<size_t>(i)] + pb[static_cast<size_t>(i)]);
      }
      for (int d = 0; d < 2; ++d) {
        if ((d == kForward && !forward_ok) || (d == kBackward && !backward_ok)) {
          continue;
        }
        const double seg_value =
            d == kForward ? seg_forward(i, j, max_w0_minus_pf)
                          : seg_backward(i, j, max_w0_plus_pb);
        // Strict alternation with the previous maximal segment.
        const double prev =
            i == 0 ? 0.0 : dp[static_cast<size_t>(i) - 1][1 - d];
        if (prev == kInf) continue;
        const double candidate = std::max(seg_value, prev);
        if (candidate < dp[static_cast<size_t>(j)][static_cast<size_t>(d)]) {
          dp[static_cast<size_t>(j)][static_cast<size_t>(d)] = candidate;
          parent[static_cast<size_t>(j)][static_cast<size_t>(d)] = i;
        }
      }
    }
  }

  int best_dir = -1;
  double best = kInf;
  for (int d = 0; d < 2; ++d) {
    if (dp[static_cast<size_t>(ne) - 1][static_cast<size_t>(d)] < best) {
      best = dp[static_cast<size_t>(ne) - 1][static_cast<size_t>(d)];
      best_dir = d;
    }
  }
  if (best_dir == -1) {
    return Status::FailedPrecondition(
        "chain has contradictory fixed orientations");
  }

  // Reconstruct segment directions.
  plan.forward.assign(static_cast<size_t>(ne), true);
  int j = ne - 1;
  int d = best_dir;
  while (j >= 0) {
    const int i = parent[static_cast<size_t>(j)][static_cast<size_t>(d)];
    WTPG_CHECK_GE(i, 0);
    for (int k = i; k <= j; ++k) {
      plan.forward[static_cast<size_t>(k)] = (d == kForward);
    }
    j = i - 1;
    d = 1 - d;
  }
  plan.critical_path = std::max(best, max_w0);
  return plan;
}

StatusOr<ChainPlan> OptimizeChainOf(const Wtpg& g, TxnId id) {
  return OptimizeChain(g, ChainContaining(g, id));
}

double BruteForceOptimalCriticalPath(const Wtpg& g,
                                     const std::vector<TxnId>& chain) {
  // Collect undetermined chain edges.
  std::vector<std::pair<TxnId, TxnId>> free_edges;
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    const Wtpg::Edge* e = g.FindEdge(chain[i], chain[i + 1]);
    WTPG_CHECK(e != nullptr);
    if (!e->oriented) free_edges.emplace_back(chain[i], chain[i + 1]);
  }
  const size_t n = free_edges.size();
  WTPG_CHECK_LE(n, 20u) << "brute force limited to small chains";
  double best = kInfiniteCost;
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    Wtpg copy = g;
    bool feasible = true;
    for (size_t i = 0; i < n; ++i) {
      const bool fwd = (mask >> i) & 1;
      const TxnId from = fwd ? free_edges[i].first : free_edges[i].second;
      const TxnId to = fwd ? free_edges[i].second : free_edges[i].first;
      if (!copy.TryOrient(from, to)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    best = std::min(best, copy.CriticalPath());
  }
  return best;
}

}  // namespace wtpgsched
