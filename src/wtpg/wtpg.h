#ifndef WTPG_SCHED_WTPG_WTPG_H_
#define WTPG_SCHED_WTPG_WTPG_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "model/types.h"

namespace wtpgsched {

inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

// Weighted Transaction-Precedence Graph (paper Section 3.1).
//
// Nodes are active transactions plus two virtual transactions: T0 (precedes
// everything) and Tf (preceded by everything). A pair of transactions with
// declared conflicting accesses is connected by a *conflict edge* carrying a
// weight in each direction; once their serialization order is determined the
// edge becomes a *precedence edge* in one direction.
//
// Weights:
//   w(a->b) = b's declared I/O cost from its first step conflicting with a
//             through its last step ("if b is blocked by a and a commits
//             now, b still has w objects to access before it commits").
//             Static for the lifetime of the edge.
//   w(T0->a) = a's remaining declared cost; updated as the schedule
//              proceeds (the only weights that change).
//   w(a->Tf) = 0 (updated data flushed right after write-ahead logging).
//
// The critical path is the longest T0 -> Tf path over precedence edges.
//
// Orientation enforces *forced transitive closure*: after a->b is fixed, any
// conflict edge (x, y) connected by a directed path x ~> y must become
// x -> y (its reverse would create a cycle, i.e. a non-serializable order /
// deadlock). Orientation operations apply the closure and reject
// orientations that would create a cycle.
//
// The graph is copyable: LOW's E(q) evaluates hypothetical grants on clones.
// Saturated C2PL runs grow this graph to hundreds of nodes, so the
// reachability paths keep dedicated oriented adjacency lists (no per-edge
// map lookups in DFS).
class Wtpg {
 public:
  struct Edge {
    TxnId a = kInvalidTxn;  // Normalized: a < b.
    TxnId b = kInvalidTxn;
    double weight_ab = 0.0;  // Used when oriented a -> b.
    double weight_ba = 0.0;  // Used when oriented b -> a.
    bool oriented = false;
    TxnId from = kInvalidTxn;  // Valid when oriented: a or b.
  };

  Wtpg() = default;
  // Copyable by design (hypothetical evaluation).
  Wtpg(const Wtpg&) = default;
  Wtpg& operator=(const Wtpg&) = default;

  // --- Structure ---

  // Adds a transaction node with its T0-edge weight (remaining declared
  // cost). The node must not already exist.
  void AddNode(TxnId id, double remaining);

  // Adds a conflict edge between existing nodes a and b.
  // weight_ab = w(a->b), weight_ba = w(b->a). The pair must not already
  // have an edge.
  void AddConflictEdge(TxnId a, TxnId b, double weight_ab, double weight_ba);

  // Removes a node (at commit) and all its edges.
  void RemoveNode(TxnId id);

  bool HasNode(TxnId id) const { return nodes_.count(id) > 0; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  // --- Weights ---

  void SetRemaining(TxnId id, double remaining);
  double remaining(TxnId id) const;

  // --- Edges & orientation ---

  // Returns the edge between a and b, or nullptr.
  const Edge* FindEdge(TxnId a, TxnId b) const;

  // True if the pair's edge exists and is oriented from -> to.
  bool IsOriented(TxnId from, TxnId to) const;

  // Orients from -> to and applies forced transitive closure. Returns false
  // — leaving the graph unchanged — if the edge is already oriented the
  // other way or the closure would create a cycle. Orienting an edge that
  // is already from -> to is a no-op returning true.
  bool TryOrient(TxnId from, TxnId to);

  // Non-mutating: would TryOrient(from, to) succeed?
  bool CanOrient(TxnId from, TxnId to) const;

  // Orients from -> to for every target, with closure, without rollback: on
  // failure (cycle) the graph may be left partially oriented. Only for
  // throwaway copies or when failure is a fatal bug — it skips the
  // defensive clone, which matters on large graphs. Targets already
  // oriented from -> to are fine; a target oriented to -> from fails.
  bool OrientBatchNoRollback(TxnId from, const std::vector<TxnId>& targets);

  bool OrientNoRollback(TxnId from, TxnId to) {
    return OrientBatchNoRollback(from, {to});
  }

  // True if a directed path from -> ... -> to exists over oriented edges.
  bool HasPath(TxnId from, TxnId to) const;

  // True if orienting from -> target for every target would create a cycle,
  // i.e. some target already reaches `from`. (Any cycle through the new
  // edges must close over a pre-existing path back into `from`, since all
  // new edges leave `from`.) Non-mutating and clone-free.
  bool WouldCycle(TxnId from, const std::vector<TxnId>& targets) const;

  // --- Queries ---

  // Longest T0 -> Tf path over oriented edges:
  //   max over paths (v1, ..., vk): remaining(v1) + sum w(vi -> vi+1).
  // Conflict (unoriented) edges are ignored. Returns 0 for an empty graph.
  double CriticalPath() const;

  // All nodes (ascending id).
  std::vector<TxnId> Nodes() const;

  // Neighbors of `id` over *any* edge (conflict or precedence) — the
  // undirected "conflicts-with" adjacency used by the chain-form test.
  std::vector<TxnId> Neighbors(TxnId id) const;

  // Unoriented conflict edges only, as (a, b) pairs with a < b.
  std::vector<std::pair<TxnId, TxnId>> UnorientedEdges() const;

  // Verifies internal invariants (edges reference live nodes; adjacency
  // lists consistent; oriented subgraph acyclic; closure fully applied).
  // For tests.
  bool CheckInvariants() const;

 private:
  struct Node {
    double remaining = 0.0;
    std::vector<TxnId> neighbors;  // Any edge.
    std::vector<TxnId> out;        // Oriented this -> other.
    std::vector<TxnId> in;         // Oriented other -> this.
  };
  using EdgeKey = std::pair<TxnId, TxnId>;  // Normalized (min, max).

  static EdgeKey MakeKey(TxnId a, TxnId b) {
    return a < b ? EdgeKey{a, b} : EdgeKey{b, a};
  }

  Edge* MutableEdge(TxnId a, TxnId b);

  // Marks the edge oriented and updates adjacency. The edge must be
  // unoriented.
  void MarkOriented(TxnId from, TxnId to);

  // Nodes reachable from `start` over oriented edges (descendants), or
  // reaching `start` when `reverse` (ancestors). Includes `start`.
  std::unordered_set<TxnId> ReachableSet(TxnId start, bool reverse) const;

  std::map<TxnId, Node> nodes_;
  std::map<EdgeKey, Edge> edges_;
};

// Hypothetical grant evaluation used by LOW's E(q) (paper Fig. 5) and by
// tests: clones `g`, orients grantee -> u for every u in `orient_to` (with
// closure), and returns the resulting critical path — or kInfiniteCost if
// any orientation would deadlock (cycle).
double EvaluateGrant(const Wtpg& g, TxnId grantee,
                     const std::vector<TxnId>& orient_to);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_WTPG_WTPG_H_
