#ifndef WTPG_SCHED_WTPG_WTPG_H_
#define WTPG_SCHED_WTPG_WTPG_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/types.h"

namespace wtpgsched {

inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

// Weighted Transaction-Precedence Graph (paper Section 3.1).
//
// Nodes are active transactions plus two virtual transactions: T0 (precedes
// everything) and Tf (preceded by everything). A pair of transactions with
// declared conflicting accesses is connected by a *conflict edge* carrying a
// weight in each direction; once their serialization order is determined the
// edge becomes a *precedence edge* in one direction.
//
// Weights:
//   w(a->b) = b's declared I/O cost from its first step conflicting with a
//             through its last step ("if b is blocked by a and a commits
//             now, b still has w objects to access before it commits").
//             Static for the lifetime of the edge.
//   w(T0->a) = a's remaining declared cost; updated as the schedule
//              proceeds (the only weights that change).
//   w(a->Tf) = 0 (updated data flushed right after write-ahead logging).
//
// The critical path is the longest T0 -> Tf path over precedence edges.
//
// Orientation enforces *forced transitive closure*: after a->b is fixed, any
// conflict edge (x, y) connected by a directed path x ~> y must become
// x -> y (its reverse would create a cycle, i.e. a non-serializable order /
// deadlock). Orientation operations apply the closure and reject
// orientations that would create a cycle.
//
// Hypothetical evaluation (LOW's E(q), GOW's consistency test) speculates
// *in place*: OrientBatch records every edge it marks into an OrientJournal
// and Rollback undoes them in reverse order, restoring the graph exactly —
// including adjacency-vector order — so no decision ever copies the graph.
// Constructing with reference_speculation = true (or setting the
// WTPG_REFERENCE_SPECULATION environment variable) switches TryOrient /
// CanOrient / EvaluateGrant back to the historical clone-and-discard
// implementation, kept alive for differential testing.
//
// CriticalPath() memoizes the per-node longest-path distances directly on
// the nodes; mutations invalidate only the nodes whose distance can have
// changed (the mutated node's oriented descendants), so LOW's K+1
// evaluations per lock decision share most of the DP instead of re-running
// it from scratch. Reachability queries stamp epoch marks on the nodes
// instead of building per-call visited sets, and the DP reads precedence
// weights from a parallel in-weight list — the hot path performs no
// per-edge map lookups and no per-call allocations beyond reused scratch.
// The marks, distances, epoch counter and scratch are mutable: Wtpg is
// single-threaded by design (the simulator is sequential).
//
// Storage is dense: a TxnId maps (once, at the API boundary) to a slot in a
// contiguous node slab recycled through a free list, every internal walk —
// adjacency, reachability DFS, longest-path DP, orientation closure — runs
// on 32-bit slot indices over contiguous memory, and edges live in an
// open-addressed table keyed by the packed 64-bit slot pair. Saturated C2PL
// runs grow this graph to hundreds of nodes, so the reachability paths keep
// dedicated oriented adjacency lists.
class Wtpg {
 public:
  struct Edge {
    TxnId a = kInvalidTxn;  // Normalized: a < b.
    TxnId b = kInvalidTxn;
    double weight_ab = 0.0;  // Used when oriented a -> b.
    double weight_ba = 0.0;  // Used when oriented b -> a.
    bool oriented = false;
    TxnId from = kInvalidTxn;  // Valid when oriented: a or b.
  };

  // Record of the orientations applied by one (or more) OrientBatch calls,
  // in application order. Opaque except for size inspection; pass it back
  // to Rollback to undo. The contract is strictly LIFO: between OrientBatch
  // and Rollback no other mutation of the graph may occur (rollback CHECKs
  // that each adjacency push is still the most recent one).
  class OrientJournal {
   public:
    bool empty() const { return records_.empty(); }
    size_t size() const { return records_.size(); }

   private:
    friend class Wtpg;
    struct Record {
      TxnId from;
      TxnId to;
    };
    std::vector<Record> records_;
  };

  // The default mode comes from the WTPG_REFERENCE_SPECULATION environment
  // variable (unset / "0" => journal speculation).
  Wtpg();
  explicit Wtpg(bool reference_speculation);
  // Copyable by design (the reference mode and test harnesses clone).
  Wtpg(const Wtpg&) = default;
  Wtpg& operator=(const Wtpg&) = default;

  bool reference_speculation() const { return reference_speculation_; }

  // --- Structure ---

  // Adds a transaction node with its T0-edge weight (remaining declared
  // cost). The node must not already exist.
  void AddNode(TxnId id, double remaining);

  // Adds a conflict edge between existing nodes a and b.
  // weight_ab = w(a->b), weight_ba = w(b->a). The pair must not already
  // have an edge.
  void AddConflictEdge(TxnId a, TxnId b, double weight_ab, double weight_ba);

  // Removes a node (at commit) and all its edges.
  void RemoveNode(TxnId id);

  bool HasNode(TxnId id) const { return slot_of_.count(id) > 0; }
  size_t num_nodes() const { return slot_of_.size(); }
  size_t num_edges() const { return num_edges_; }

  // --- Weights ---

  void SetRemaining(TxnId id, double remaining);
  double remaining(TxnId id) const;

  // --- Edges & orientation ---

  // Returns the edge between a and b, or nullptr. The pointer is valid only
  // until the next mutation (the edge table may rehash or shift on
  // insert/erase).
  const Edge* FindEdge(TxnId a, TxnId b) const;

  // True if the pair's edge exists and is oriented from -> to.
  bool IsOriented(TxnId from, TxnId to) const;

  // Orients from -> to and applies forced transitive closure. Returns false
  // — leaving the graph unchanged — if the edge is already oriented the
  // other way or the closure would create a cycle. Orienting an edge that
  // is already from -> to is a no-op returning true.
  bool TryOrient(TxnId from, TxnId to);

  // Would TryOrient(from, to) succeed? Logically const: speculates in place
  // and rolls back before returning (reference mode works on a clone).
  bool CanOrient(TxnId from, TxnId to);

  // Orients from -> to for every target, with closure, recording every edge
  // marked into *journal (appended). On failure (cycle) the orientations
  // recorded by *this call* are rolled back and the graph is unchanged.
  // On success the caller may keep the orientations, or undo the whole
  // journal with Rollback. Targets already oriented from -> to are fine; a
  // target oriented to -> from fails.
  bool OrientBatch(TxnId from, const std::vector<TxnId>& targets,
                   OrientJournal* journal);

  // Undoes every orientation in `journal` in reverse order and clears it.
  // Must be the next mutation after the OrientBatch calls that filled it.
  void Rollback(OrientJournal* journal);

  // Orients from -> to for every target, with closure, without rollback: on
  // failure (cycle) the graph may be left partially oriented. Only for
  // committed (non-speculative) orientation or when failure is a fatal bug.
  // Targets already oriented from -> to are fine; a target oriented
  // to -> from fails.
  bool OrientBatchNoRollback(TxnId from, const std::vector<TxnId>& targets);

  bool OrientNoRollback(TxnId from, TxnId to) {
    return OrientBatchNoRollback(from, {to});
  }

  // True if a directed path from -> ... -> to exists over oriented edges.
  bool HasPath(TxnId from, TxnId to) const;

  // True if orienting from -> target for every target would create a cycle,
  // i.e. some target already reaches `from`. (Any cycle through the new
  // edges must close over a pre-existing path back into `from`, since all
  // new edges leave `from`.) Non-mutating and clone-free.
  bool WouldCycle(TxnId from, const std::vector<TxnId>& targets) const;

  // --- Queries ---

  // Longest T0 -> Tf path over oriented edges:
  //   max over paths (v1, ..., vk): remaining(v1) + sum w(vi -> vi+1).
  // Conflict (unoriented) edges are ignored. Returns 0 for an empty graph.
  // Memoized: repeated queries after localized mutations only recompute the
  // distances of nodes downstream of the mutation.
  double CriticalPath() const;

  // All nodes (ascending id).
  std::vector<TxnId> Nodes() const;

  // Neighbors of `id` over *any* edge (conflict or precedence) — the
  // undirected "conflicts-with" adjacency used by the chain-form test.
  std::vector<TxnId> Neighbors(TxnId id) const;

  // Oriented adjacency of `id` in orientation order (id -> other and
  // other -> id respectively). Exposed for tests and state diffing.
  std::vector<TxnId> OutNeighbors(TxnId id) const;
  std::vector<TxnId> InNeighbors(TxnId id) const;

  // Unoriented conflict edges only, as (a, b) pairs with a < b, sorted.
  std::vector<std::pair<TxnId, TxnId>> UnorientedEdges() const;

  // Verifies internal invariants (edges reference live nodes; adjacency
  // lists consistent; oriented subgraph acyclic; closure fully applied;
  // memoized distances match a fresh recomputation; slot map, free list and
  // edge table self-consistent). For tests.
  bool CheckInvariants() const;

 private:
  // Memoized-distance states. kDistVisiting only exists transiently inside
  // CriticalPath(); it doubles as the cycle guard.
  enum : uint8_t { kDistInvalid = 0, kDistValid = 1, kDistVisiting = 2 };

  struct Node {
    TxnId id = kInvalidTxn;  // kInvalidTxn marks a free slot.
    double remaining = 0.0;
    std::vector<int32_t> neighbors;  // Any edge.
    std::vector<int32_t> out;        // Oriented this -> other.
    std::vector<int32_t> in;         // Oriented other -> this.
    std::vector<double> in_w;        // Parallel to `in`: w(other -> this).
    int32_t next_free = -1;          // Free-list link while the slot is free.
    // Scratch for the epoch-stamped reachability DFS (forward / reverse
    // slots so an ancestor set and a descendant set can coexist) and the
    // memoized longest-path distance. Mutable: queries are logically const.
    mutable uint64_t mark_fwd = 0;
    mutable uint64_t mark_rev = 0;
    mutable double dist = 0.0;
    mutable uint8_t dist_state = kDistInvalid;
  };

  // One bucket of the open-addressed edge table (linear probing, power-of-
  // two capacity, backward-shift deletion). The key packs the edge's two
  // node slots, smaller slot in the high half; kEmptyEdgeKey marks a free
  // bucket (unreachable for real keys: slots are < 2^31).
  struct EdgeBucket {
    uint64_t key = kEmptyEdgeKey;
    Edge edge;
  };
  static constexpr uint64_t kEmptyEdgeKey = ~0ull;

  static uint64_t PackSlots(int32_t sa, int32_t sb) {
    const uint32_t lo = static_cast<uint32_t>(sa < sb ? sa : sb);
    const uint32_t hi = static_cast<uint32_t>(sa < sb ? sb : sa);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }

  size_t BucketFor(uint64_t key) const {
    return (key * 0x9E3779B97F4A7C15ull) & (edge_buckets_.size() - 1);
  }

  // Slot of `id`; CHECK-fails when absent.
  int32_t SlotOf(TxnId id) const;
  // Slot of `id`, or -1 when absent.
  int32_t SlotOrNull(TxnId id) const;

  const Edge* FindEdgeBySlots(int32_t sa, int32_t sb) const;
  Edge* MutableEdgeBySlots(int32_t sa, int32_t sb);
  // Inserts an (empty) edge for the slot pair; CHECK-fails on duplicates.
  Edge* InsertEdge(int32_t sa, int32_t sb);
  void EraseEdge(int32_t sa, int32_t sb);
  void GrowEdgeTable();

  // Marks the edge oriented, updates adjacency, and (if non-null) records
  // the mark into *journal. The edge must be unoriented. Does NOT
  // invalidate memoized distances: every caller sits inside a batch
  // (OrientBatchImpl, RollbackToMark) that invalidates the whole affected
  // downstream region once.
  void MarkOriented(int32_t from, int32_t to, OrientJournal* journal);

  // Exact inverse of MarkOriented. CHECKs that the adjacency pushes are
  // still the most recent ones (LIFO rollback contract), which also makes
  // the restoration byte-identical (vector order preserved).
  void UnmarkOriented(int32_t from, int32_t to);

  // Shared implementation of the batch orientation + forced closure. On
  // failure the graph is left partially oriented; all marks were appended
  // to *journal (when non-null) so the caller can undo them.
  bool OrientBatchImpl(TxnId from, const std::vector<TxnId>& targets,
                       OrientJournal* journal);

  // Undoes journal records down to (excluding) index `mark`, in reverse.
  void RollbackToMark(OrientJournal* journal, size_t mark);

  // Stamps a fresh epoch on every node reachable from the `count` start
  // slots over oriented edges (descendants; ancestors when `reverse`),
  // including the starts, and returns that epoch. Membership is
  // node.mark_fwd == epoch (mark_rev when `reverse`). When `out` is
  // non-null it is cleared and filled with the visited slots in discovery
  // order.
  uint64_t MarkReachable(const int32_t* starts, size_t count, bool reverse,
                         std::vector<int32_t>* out) const;

  // Invalidates the memoized distance of every oriented descendant of slot
  // `v` (including `v`). Call while the relevant edges still exist.
  void InvalidateDownstream(int32_t v);

  // Drops one node's memoized distance, keeping dist_valid_ in step.
  void ClearDist(const Node& node) const {
    if (node.dist_state == kDistValid) --dist_valid_;
    node.dist_state = kDistInvalid;
  }

  // The memoized longest-path DP over the in-edges of `node`.
  double EvalDist(const Node& node) const;

  // The uncached longest-path DP (historical implementation), used by the
  // reference mode and by CheckInvariants to validate the memo.
  double CriticalPathUncached() const;

  // Dense node slab: live slots hold id != kInvalidTxn, free slots chain
  // through next_free. Recycled slots keep their vectors' capacity, so a
  // warmed graph adds and removes nodes without touching the heap.
  std::vector<Node> slots_;
  int32_t free_head_ = -1;
  // The only id-keyed lookup; every internal walk uses slots.
  std::unordered_map<TxnId, int32_t> slot_of_;
  std::vector<EdgeBucket> edge_buckets_;  // Power-of-two sized; may be empty.
  size_t num_edges_ = 0;
  bool reference_speculation_ = false;
  // Epoch source for MarkReachable and count of nodes whose memoized
  // distance is currently valid (fast empty test for invalidation).
  mutable uint64_t epoch_ = 0;
  mutable size_t dist_valid_ = 0;
  // Reused scratch (never live across a public call): the DFS stack, the
  // visited list handed to MarkReachable, and rollback's head collection.
  mutable std::vector<int32_t> dfs_stack_;
  mutable std::vector<int32_t> visited_scratch_;
  mutable std::vector<int32_t> heads_scratch_;
};

// Hypothetical grant evaluation used by LOW's E(q) (paper Fig. 5) and by
// tests: orients grantee -> u for every u in `orient_to` (with closure) and
// returns the resulting critical path — or kInfiniteCost if any orientation
// would deadlock (cycle). Logically const: speculates on `g` via the
// orientation journal and rolls back before returning, so `g` is unchanged
// (in reference mode it clones instead).
double EvaluateGrant(Wtpg& g, TxnId grantee,
                     const std::vector<TxnId>& orient_to);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_WTPG_WTPG_H_
