#include "wtpg/wtpg.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace wtpgsched {
namespace {

void EraseValue(std::vector<TxnId>* list, TxnId value) {
  list->erase(std::remove(list->begin(), list->end(), value), list->end());
}

bool EnvReferenceSpeculation() {
  static const bool value = [] {
    const char* env = std::getenv("WTPG_REFERENCE_SPECULATION");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return value;
}

}  // namespace

Wtpg::Wtpg() : reference_speculation_(EnvReferenceSpeculation()) {}

Wtpg::Wtpg(bool reference_speculation)
    : reference_speculation_(reference_speculation) {}

void Wtpg::AddNode(TxnId id, double remaining) {
  WTPG_CHECK_GE(remaining, 0.0);
  auto [it, inserted] = nodes_.emplace(id, Node{remaining, {}, {}, {}});
  (void)it;
  WTPG_CHECK(inserted) << "node T" << id << " already in WTPG";
}

void Wtpg::AddConflictEdge(TxnId a, TxnId b, double weight_ab,
                           double weight_ba) {
  WTPG_CHECK_NE(a, b);
  WTPG_CHECK(HasNode(a)) << "T" << a;
  WTPG_CHECK(HasNode(b)) << "T" << b;
  WTPG_CHECK_GE(weight_ab, 0.0);
  WTPG_CHECK_GE(weight_ba, 0.0);
  Edge edge;
  if (a < b) {
    edge = Edge{a, b, weight_ab, weight_ba, false, kInvalidTxn};
  } else {
    edge = Edge{b, a, weight_ba, weight_ab, false, kInvalidTxn};
  }
  auto [it, inserted] = edges_.emplace(MakeKey(a, b), edge);
  (void)it;
  WTPG_CHECK(inserted) << "edge (T" << a << ",T" << b << ") already in WTPG";
  nodes_.at(a).neighbors.push_back(b);
  nodes_.at(b).neighbors.push_back(a);
}

void Wtpg::RemoveNode(TxnId id) {
  auto it = nodes_.find(id);
  WTPG_CHECK(it != nodes_.end()) << "RemoveNode: T" << id << " not in WTPG";
  // Removing the node removes its out-edges, so every oriented descendant's
  // distance can shrink. Invalidate while the edges still exist (this also
  // drops `id`'s own memoized distance, keeping dist_valid_ consistent).
  InvalidateDownstream(id);
  for (TxnId nb : it->second.neighbors) {
    edges_.erase(MakeKey(id, nb));
    Node& other = nodes_.at(nb);
    EraseValue(&other.neighbors, id);
    EraseValue(&other.out, id);
    for (size_t i = other.in.size(); i-- > 0;) {
      if (other.in[i] == id) {
        other.in.erase(other.in.begin() + static_cast<std::ptrdiff_t>(i));
        other.in_w.erase(other.in_w.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  nodes_.erase(it);
}

void Wtpg::SetRemaining(TxnId id, double remaining) {
  WTPG_CHECK_GE(remaining, 0.0);
  Node& node = nodes_.at(id);
  if (node.remaining == remaining) return;
  InvalidateDownstream(id);
  node.remaining = remaining;
}

double Wtpg::remaining(TxnId id) const { return nodes_.at(id).remaining; }

const Wtpg::Edge* Wtpg::FindEdge(TxnId a, TxnId b) const {
  auto it = edges_.find(MakeKey(a, b));
  return it == edges_.end() ? nullptr : &it->second;
}

Wtpg::Edge* Wtpg::MutableEdge(TxnId a, TxnId b) {
  auto it = edges_.find(MakeKey(a, b));
  return it == edges_.end() ? nullptr : &it->second;
}

bool Wtpg::IsOriented(TxnId from, TxnId to) const {
  const Edge* e = FindEdge(from, to);
  return e != nullptr && e->oriented && e->from == from;
}

// Note: MarkOriented / UnmarkOriented do NOT invalidate memoized distances.
// Every caller sits inside a batch (OrientBatchImpl, RollbackToMark) that
// invalidates the whole affected downstream region once, instead of running
// one DFS per marked edge.
void Wtpg::MarkOriented(TxnId from, TxnId to, OrientJournal* journal) {
  Edge* e = MutableEdge(from, to);
  WTPG_CHECK(e != nullptr);
  WTPG_CHECK(!e->oriented);
  e->oriented = true;
  e->from = from;
  nodes_.at(from).out.push_back(to);
  Node& t = nodes_.at(to);
  t.in.push_back(from);
  t.in_w.push_back(from == e->a ? e->weight_ab : e->weight_ba);
  if (journal != nullptr) journal->records_.push_back({from, to});
}

void Wtpg::UnmarkOriented(TxnId from, TxnId to) {
  Edge* e = MutableEdge(from, to);
  WTPG_CHECK(e != nullptr);
  WTPG_CHECK(e->oriented && e->from == from)
      << "rollback of T" << from << "->T" << to << " out of order";
  e->oriented = false;
  e->from = kInvalidTxn;
  Node& f = nodes_.at(from);
  Node& t = nodes_.at(to);
  // MarkOriented pushed onto the backs; LIFO rollback pops the backs, which
  // restores the vectors byte-identically. A mismatch means the caller
  // mutated the graph between speculation and rollback — fail loudly.
  WTPG_CHECK(!f.out.empty() && f.out.back() == to)
      << "journal rollback interleaved with other mutations";
  f.out.pop_back();
  WTPG_CHECK(!t.in.empty() && t.in.back() == from)
      << "journal rollback interleaved with other mutations";
  t.in.pop_back();
  t.in_w.pop_back();
}

void Wtpg::InvalidateDownstream(TxnId v) {
  if (dist_valid_ == 0) return;
  std::vector<const Node*> affected;
  MarkReachable(&v, 1, /*reverse=*/false, &affected);
  for (const Node* d : affected) ClearDist(*d);
}

uint64_t Wtpg::MarkReachable(const TxnId* starts, size_t count, bool reverse,
                             std::vector<const Node*>* out) const {
  const uint64_t epoch = ++epoch_;
  if (out != nullptr) out->clear();
  std::vector<const Node*> stack;
  const auto visit = [&](TxnId id) {
    const Node& node = nodes_.at(id);
    uint64_t& mark = reverse ? node.mark_rev : node.mark_fwd;
    if (mark == epoch) return;
    mark = epoch;
    stack.push_back(&node);
    if (out != nullptr) out->push_back(&node);
  };
  for (size_t i = 0; i < count; ++i) visit(starts[i]);
  while (!stack.empty()) {
    const Node* cur = stack.back();
    stack.pop_back();
    const std::vector<TxnId>& adj = reverse ? cur->in : cur->out;
    for (TxnId nb : adj) visit(nb);
  }
  return epoch;
}

bool Wtpg::HasPath(TxnId from, TxnId to) const {
  if (from == to) return true;
  std::unordered_set<TxnId> visited = {from};
  std::vector<TxnId> stack = {from};
  while (!stack.empty()) {
    const TxnId cur = stack.back();
    stack.pop_back();
    for (TxnId nb : nodes_.at(cur).out) {
      if (nb == to) return true;
      if (visited.insert(nb).second) stack.push_back(nb);
    }
  }
  return false;
}

bool Wtpg::WouldCycle(TxnId from, const std::vector<TxnId>& targets) const {
  if (targets.empty()) return false;
  const uint64_t epoch = MarkReachable(&from, 1, /*reverse=*/true, nullptr);
  for (TxnId u : targets) {
    if (u == from) return true;
    const Edge* e = FindEdge(from, u);
    WTPG_CHECK(e != nullptr) << "WouldCycle: no edge T" << from << "-T" << u;
    if (e->oriented && e->from == u) return true;
    if (nodes_.at(u).mark_rev == epoch) return true;  // u ~> from.
  }
  return false;
}

bool Wtpg::OrientBatchImpl(TxnId from, const std::vector<TxnId>& targets,
                           OrientJournal* journal) {
  if (targets.empty()) return true;
  // Every new edge leaves `from`, so any cycle the batch could close must
  // run over a pre-existing path back into `from`: one ancestor DFS checks
  // all targets (this is WouldCycle, inlined to reuse the epoch below).
  const uint64_t a_epoch = MarkReachable(&from, 1, /*reverse=*/true, nullptr);
  for (TxnId u : targets) {
    if (u == from) return false;
    const Edge* e = FindEdge(from, u);
    WTPG_CHECK(e != nullptr) << "OrientBatch: no edge T" << from << "-T" << u;
    if (e->oriented) {
      if (e->from != from) return false;  // Fixed the other way.
      continue;
    }
    if (nodes_.at(u).mark_rev == a_epoch) return false;  // u ~> from.
  }
  // Mark the new precedence edges.
  bool any_new = false;
  for (TxnId u : targets) {
    const Edge* e = FindEdge(from, u);
    if (e->oriented) continue;  // Already from -> u (checked above).
    MarkOriented(from, u, journal);
    any_new = true;
  }
  if (!any_new) return true;
  // Forced transitive closure, in one pass. Let A = ancestors(from) and
  // D = descendants(from) *after* the direct marks. The direct edges add no
  // ancestor or descendant of `from` itself (a new path into `from` would
  // be a cycle, already excluded), so A is exactly the set stamped above.
  // Every path the batch creates runs x ~> from ~> y; hence (a) a conflict
  // edge is newly forced iff one endpoint is in A and the other in D (the
  // connecting path x ~> from ~> y always exists), and (b) marking a forced
  // edge x->y creates no reachability beyond x ~> from ~> y itself, so
  // forcings cannot cascade outside A x D — one scan over the unoriented
  // edges is the whole closure. A forced edge cannot conflict either: a
  // cycle would need its head in A and tail in D simultaneously, i.e. a
  // node in A ∩ D \ {from}, which is a pre-existing cycle through `from`.
  std::vector<const Node*> descendants;
  const uint64_t d_epoch =
      MarkReachable(&from, 1, /*reverse=*/false, &descendants);
  // Every node whose longest path can change is downstream of `from` (the
  // head of every new edge is in D): invalidate the region once.
  if (dist_valid_ > 0) {
    for (const Node* d : descendants) ClearDist(*d);
  }
  for (auto& [key, edge] : edges_) {
    (void)key;
    if (edge.oriented) continue;
    const Node& na = nodes_.at(edge.a);
    const Node& nb = nodes_.at(edge.b);
    if (na.mark_rev == a_epoch && nb.mark_fwd == d_epoch) {
      MarkOriented(edge.a, edge.b, journal);
    } else if (nb.mark_rev == a_epoch && na.mark_fwd == d_epoch) {
      MarkOriented(edge.b, edge.a, journal);
    }
  }
  return true;
}

bool Wtpg::OrientBatch(TxnId from, const std::vector<TxnId>& targets,
                       OrientJournal* journal) {
  WTPG_CHECK(journal != nullptr);
  const size_t mark = journal->records_.size();
  if (OrientBatchImpl(from, targets, journal)) return true;
  RollbackToMark(journal, mark);
  return false;
}

void Wtpg::RollbackToMark(OrientJournal* journal, size_t mark) {
  auto& records = journal->records_;
  if (records.size() > mark && dist_valid_ > 0) {
    // A memoized distance can depend on a speculative edge x->y only if the
    // node is downstream of y. One multi-source DFS from all the heads —
    // run while the edges are still present, so it covers the downstream
    // set of every intermediate rollback state — invalidates the region
    // once instead of once per unmark.
    std::vector<TxnId> heads;
    heads.reserve(records.size() - mark);
    for (size_t i = mark; i < records.size(); ++i) {
      heads.push_back(records[i].to);
    }
    std::vector<const Node*> affected;
    MarkReachable(heads.data(), heads.size(), /*reverse=*/false, &affected);
    for (const Node* d : affected) ClearDist(*d);
  }
  while (records.size() > mark) {
    const OrientJournal::Record r = records.back();
    records.pop_back();
    UnmarkOriented(r.from, r.to);
  }
}

void Wtpg::Rollback(OrientJournal* journal) {
  WTPG_CHECK(journal != nullptr);
  RollbackToMark(journal, 0);
}

bool Wtpg::OrientBatchNoRollback(TxnId from,
                                 const std::vector<TxnId>& targets) {
  return OrientBatchImpl(from, targets, /*journal=*/nullptr);
}

bool Wtpg::TryOrient(TxnId from, TxnId to) {
  const Edge* e = FindEdge(from, to);
  WTPG_CHECK(e != nullptr) << "TryOrient on nonexistent edge T" << from
                           << "->T" << to;
  if (e->oriented) return e->from == from;
  if (reference_speculation_) {
    // Historical implementation: work on a copy so a failed closure leaves
    // *this untouched.
    if (WouldCycle(from, {to})) return false;
    Wtpg copy = *this;
    if (!copy.OrientBatchNoRollback(from, {to})) return false;
    *this = std::move(copy);
    return true;
  }
  OrientJournal journal;
  return OrientBatch(from, {to}, &journal);  // Keep on success.
}

bool Wtpg::CanOrient(TxnId from, TxnId to) {
  const Edge* e = FindEdge(from, to);
  if (e == nullptr) return false;
  if (e->oriented) return e->from == from;
  if (reference_speculation_) {
    Wtpg copy = *this;
    return copy.OrientBatchNoRollback(from, {to});
  }
  OrientJournal journal;
  const bool ok = OrientBatch(from, {to}, &journal);
  Rollback(&journal);
  return ok;
}

double Wtpg::CriticalPath() const {
  if (nodes_.empty()) return 0.0;
  if (reference_speculation_) return CriticalPathUncached();
  double critical = 0.0;
  for (const auto& [id, node] : nodes_) {
    (void)id;
    critical = std::max(critical, EvalDist(node));
  }
  return critical;
}

// Longest-path DP over the oriented sub-DAG, memoized on the nodes:
//   dist(v) = max(remaining(v), max over oriented u->v of dist(u) + w(u,v))
// dist/dist_state only ever hold final values; the transient kDistVisiting
// state guards against cycles (fail loudly, not forever). The in-weights
// live in the parallel in_w list, so the DP touches no edge map.
double Wtpg::EvalDist(const Node& node) const {
  if (node.dist_state == kDistValid) return node.dist;
  WTPG_CHECK(node.dist_state != kDistVisiting) << "cycle in oriented WTPG";
  node.dist_state = kDistVisiting;
  double best = node.remaining;
  for (size_t i = 0; i < node.in.size(); ++i) {
    best = std::max(best, EvalDist(nodes_.at(node.in[i])) + node.in_w[i]);
  }
  node.dist = best;
  node.dist_state = kDistValid;
  ++dist_valid_;
  return best;
}

double Wtpg::CriticalPathUncached() const {
  if (nodes_.empty()) return 0.0;
  std::unordered_map<TxnId, double> dist;
  std::function<double(TxnId)> eval = [&](TxnId v) -> double {
    auto it = dist.find(v);
    if (it != dist.end()) {
      WTPG_CHECK_GE(it->second, 0.0) << "cycle in oriented WTPG";
      return it->second;
    }
    // Negative marker guards against cycles (fail loudly, not forever).
    dist.emplace(v, -1.0);
    const Node& node = nodes_.at(v);
    double best = node.remaining;
    for (TxnId nb : node.in) {
      const Edge* e = FindEdge(nb, v);
      const double w = (e->from == e->a) ? e->weight_ab : e->weight_ba;
      best = std::max(best, eval(nb) + w);
    }
    dist[v] = best;
    return best;
  };
  double critical = 0.0;
  for (const auto& [id, node] : nodes_) {
    (void)node;
    critical = std::max(critical, eval(id));
  }
  return critical;
}

std::vector<TxnId> Wtpg::Nodes() const {
  std::vector<TxnId> result;
  result.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    (void)node;
    result.push_back(id);
  }
  std::sort(result.begin(), result.end());  // nodes_ is hashed, not ordered.
  return result;
}

std::vector<TxnId> Wtpg::Neighbors(TxnId id) const {
  auto it = nodes_.find(id);
  WTPG_CHECK(it != nodes_.end());
  return it->second.neighbors;
}

const std::vector<TxnId>& Wtpg::OutNeighbors(TxnId id) const {
  auto it = nodes_.find(id);
  WTPG_CHECK(it != nodes_.end());
  return it->second.out;
}

const std::vector<TxnId>& Wtpg::InNeighbors(TxnId id) const {
  auto it = nodes_.find(id);
  WTPG_CHECK(it != nodes_.end());
  return it->second.in;
}

std::vector<std::pair<TxnId, TxnId>> Wtpg::UnorientedEdges() const {
  std::vector<std::pair<TxnId, TxnId>> result;
  for (const auto& [key, edge] : edges_) {
    if (!edge.oriented) result.push_back(key);
  }
  return result;
}

bool Wtpg::CheckInvariants() const {
  for (const auto& [key, edge] : edges_) {
    if (!HasNode(edge.a) || !HasNode(edge.b)) return false;
    if (key != MakeKey(edge.a, edge.b)) return false;
    if (edge.oriented && edge.from != edge.a && edge.from != edge.b) {
      return false;
    }
  }
  // Adjacency lists consistent with edge states; in_w parallel to in and
  // carrying the oriented direction's weight.
  for (const auto& [id, node] : nodes_) {
    for (TxnId nb : node.out) {
      if (!IsOriented(id, nb)) return false;
    }
    if (node.in_w.size() != node.in.size()) return false;
    for (size_t i = 0; i < node.in.size(); ++i) {
      const TxnId nb = node.in[i];
      if (!IsOriented(nb, id)) return false;
      const Edge* e = FindEdge(nb, id);
      const double w = (e->from == e->a) ? e->weight_ab : e->weight_ba;
      if (node.in_w[i] != w) return false;
    }
    size_t oriented_count = 0;
    for (TxnId nb : node.neighbors) {
      const Edge* e = FindEdge(id, nb);
      if (e == nullptr) return false;
      if (e->oriented) ++oriented_count;
    }
    if (oriented_count != node.out.size() + node.in.size()) return false;
  }
  // Oriented subgraph must be acyclic.
  for (const auto& [key, edge] : edges_) {
    (void)key;
    if (!edge.oriented) continue;
    const TxnId to = (edge.from == edge.a) ? edge.b : edge.a;
    if (HasPath(to, edge.from)) return false;
  }
  // Closure fully applied: no unoriented edge with a connecting path.
  for (const auto& [key, edge] : edges_) {
    (void)key;
    if (edge.oriented) continue;
    if (HasPath(edge.a, edge.b) || HasPath(edge.b, edge.a)) return false;
  }
  // Every memoized distance must match a fresh DP (stale memo entries are
  // exactly the bug class the journal can cause), no node may be stuck in
  // the transient visiting state, and the valid count must agree.
  std::unordered_map<TxnId, double> fresh;
  std::function<double(TxnId)> eval = [&](TxnId v) -> double {
    auto it = fresh.find(v);
    if (it != fresh.end()) return it->second;
    const Node& node = nodes_.at(v);
    double best = node.remaining;
    for (TxnId nb : node.in) {
      const Edge* e = FindEdge(nb, v);
      const double w = (e->from == e->a) ? e->weight_ab : e->weight_ba;
      best = std::max(best, eval(nb) + w);
    }
    fresh.emplace(v, best);
    return best;
  };
  size_t valid = 0;
  for (const auto& [id, node] : nodes_) {
    if (node.dist_state == kDistVisiting) return false;
    if (node.dist_state == kDistValid) {
      ++valid;
      if (eval(id) != node.dist) return false;
    }
  }
  if (valid != dist_valid_) return false;
  return true;
}

double EvaluateGrant(Wtpg& g, TxnId grantee,
                     const std::vector<TxnId>& orient_to) {
  if (g.reference_speculation()) {
    Wtpg copy = g;
    if (!copy.OrientBatchNoRollback(grantee, orient_to)) return kInfiniteCost;
    return copy.CriticalPath();
  }
  Wtpg::OrientJournal journal;
  if (!g.OrientBatch(grantee, orient_to, &journal)) return kInfiniteCost;
  const double critical = g.CriticalPath();
  g.Rollback(&journal);
  return critical;
}

}  // namespace wtpgsched
