#include "wtpg/wtpg.h"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "util/logging.h"

namespace wtpgsched {
namespace {

void EraseValue(std::vector<int32_t>* list, int32_t value) {
  list->erase(std::remove(list->begin(), list->end(), value), list->end());
}

bool EnvReferenceSpeculation() {
  static const bool value = [] {
    const char* env = std::getenv("WTPG_REFERENCE_SPECULATION");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return value;
}

}  // namespace

Wtpg::Wtpg() : reference_speculation_(EnvReferenceSpeculation()) {}

Wtpg::Wtpg(bool reference_speculation)
    : reference_speculation_(reference_speculation) {}

int32_t Wtpg::SlotOf(TxnId id) const {
  auto it = slot_of_.find(id);
  WTPG_CHECK(it != slot_of_.end()) << "T" << id << " not in WTPG";
  return it->second;
}

int32_t Wtpg::SlotOrNull(TxnId id) const {
  auto it = slot_of_.find(id);
  return it == slot_of_.end() ? -1 : it->second;
}

void Wtpg::AddNode(TxnId id, double remaining) {
  WTPG_CHECK_GE(remaining, 0.0);
  int32_t slot;
  if (free_head_ >= 0) {
    slot = free_head_;
    free_head_ = slots_[static_cast<size_t>(slot)].next_free;
  } else {
    slot = static_cast<int32_t>(slots_.size());
    slots_.emplace_back();
  }
  const auto [it, inserted] = slot_of_.emplace(id, slot);
  (void)it;
  WTPG_CHECK(inserted) << "node T" << id << " already in WTPG";
  Node& node = slots_[static_cast<size_t>(slot)];
  node.id = id;
  node.remaining = remaining;
  node.next_free = -1;
  node.dist_state = kDistInvalid;
  // neighbors/out/in/in_w were cleared on removal and keep their capacity;
  // stale epoch marks can never equal a future epoch.
}

void Wtpg::AddConflictEdge(TxnId a, TxnId b, double weight_ab,
                           double weight_ba) {
  WTPG_CHECK_NE(a, b);
  WTPG_CHECK_GE(weight_ab, 0.0);
  WTPG_CHECK_GE(weight_ba, 0.0);
  const int32_t sa = SlotOrNull(a);
  const int32_t sb = SlotOrNull(b);
  WTPG_CHECK(sa >= 0) << "T" << a;
  WTPG_CHECK(sb >= 0) << "T" << b;
  Edge* edge = InsertEdge(sa, sb);
  WTPG_CHECK(edge != nullptr)
      << "edge (T" << a << ",T" << b << ") already in WTPG";
  if (a < b) {
    *edge = Edge{a, b, weight_ab, weight_ba, false, kInvalidTxn};
  } else {
    *edge = Edge{b, a, weight_ba, weight_ab, false, kInvalidTxn};
  }
  slots_[static_cast<size_t>(sa)].neighbors.push_back(sb);
  slots_[static_cast<size_t>(sb)].neighbors.push_back(sa);
}

void Wtpg::RemoveNode(TxnId id) {
  const int32_t slot = SlotOrNull(id);
  WTPG_CHECK(slot >= 0) << "RemoveNode: T" << id << " not in WTPG";
  Node& node = slots_[static_cast<size_t>(slot)];
  // Removing the node removes its out-edges, so every oriented descendant's
  // distance can shrink. Invalidate while the edges still exist (this also
  // drops `id`'s own memoized distance, keeping dist_valid_ consistent).
  InvalidateDownstream(slot);
  for (int32_t nb : node.neighbors) {
    EraseEdge(slot, nb);
    Node& other = slots_[static_cast<size_t>(nb)];
    EraseValue(&other.neighbors, slot);
    EraseValue(&other.out, slot);
    for (size_t i = other.in.size(); i-- > 0;) {
      if (other.in[i] == slot) {
        other.in.erase(other.in.begin() + static_cast<std::ptrdiff_t>(i));
        other.in_w.erase(other.in_w.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  node.neighbors.clear();
  node.out.clear();
  node.in.clear();
  node.in_w.clear();
  node.id = kInvalidTxn;
  node.next_free = free_head_;
  free_head_ = slot;
  slot_of_.erase(id);
}

void Wtpg::SetRemaining(TxnId id, double remaining) {
  WTPG_CHECK_GE(remaining, 0.0);
  Node& node = slots_[static_cast<size_t>(slot_of_.at(id))];
  if (node.remaining == remaining) return;
  InvalidateDownstream(slot_of_.at(id));
  node.remaining = remaining;
}

double Wtpg::remaining(TxnId id) const {
  return slots_[static_cast<size_t>(slot_of_.at(id))].remaining;
}

// --- Open-addressed edge table ---

const Wtpg::Edge* Wtpg::FindEdgeBySlots(int32_t sa, int32_t sb) const {
  if (edge_buckets_.empty()) return nullptr;
  const uint64_t key = PackSlots(sa, sb);
  const size_t mask = edge_buckets_.size() - 1;
  for (size_t idx = BucketFor(key);; idx = (idx + 1) & mask) {
    const EdgeBucket& bucket = edge_buckets_[idx];
    if (bucket.key == kEmptyEdgeKey) return nullptr;
    if (bucket.key == key) return &bucket.edge;
  }
}

Wtpg::Edge* Wtpg::MutableEdgeBySlots(int32_t sa, int32_t sb) {
  return const_cast<Edge*>(FindEdgeBySlots(sa, sb));
}

Wtpg::Edge* Wtpg::InsertEdge(int32_t sa, int32_t sb) {
  if (edge_buckets_.empty() ||
      (num_edges_ + 1) * 2 > edge_buckets_.size()) {
    GrowEdgeTable();
  }
  const uint64_t key = PackSlots(sa, sb);
  const size_t mask = edge_buckets_.size() - 1;
  for (size_t idx = BucketFor(key);; idx = (idx + 1) & mask) {
    EdgeBucket& bucket = edge_buckets_[idx];
    if (bucket.key == key) return nullptr;  // Duplicate.
    if (bucket.key == kEmptyEdgeKey) {
      bucket.key = key;
      ++num_edges_;
      return &bucket.edge;
    }
  }
}

void Wtpg::EraseEdge(int32_t sa, int32_t sb) {
  WTPG_CHECK(!edge_buckets_.empty());
  const uint64_t key = PackSlots(sa, sb);
  const size_t mask = edge_buckets_.size() - 1;
  size_t hole = BucketFor(key);
  for (;; hole = (hole + 1) & mask) {
    WTPG_CHECK(edge_buckets_[hole].key != kEmptyEdgeKey)
        << "EraseEdge: edge not in table";
    if (edge_buckets_[hole].key == key) break;
  }
  --num_edges_;
  // Backward-shift deletion: pull displaced entries into the hole so every
  // remaining entry stays reachable from its home bucket.
  for (size_t idx = (hole + 1) & mask; edge_buckets_[idx].key != kEmptyEdgeKey;
       idx = (idx + 1) & mask) {
    const size_t home = BucketFor(edge_buckets_[idx].key);
    if (((idx - home) & mask) >= ((idx - hole) & mask)) {
      edge_buckets_[hole] = edge_buckets_[idx];
      hole = idx;
    }
  }
  edge_buckets_[hole].key = kEmptyEdgeKey;
}

void Wtpg::GrowEdgeTable() {
  const size_t new_capacity =
      edge_buckets_.empty() ? 16 : edge_buckets_.size() * 2;
  std::vector<EdgeBucket> old = std::move(edge_buckets_);
  edge_buckets_.assign(new_capacity, EdgeBucket{});
  const size_t mask = new_capacity - 1;
  for (EdgeBucket& bucket : old) {
    if (bucket.key == kEmptyEdgeKey) continue;
    size_t idx = BucketFor(bucket.key);
    while (edge_buckets_[idx].key != kEmptyEdgeKey) idx = (idx + 1) & mask;
    edge_buckets_[idx] = bucket;
  }
}

const Wtpg::Edge* Wtpg::FindEdge(TxnId a, TxnId b) const {
  const int32_t sa = SlotOrNull(a);
  const int32_t sb = SlotOrNull(b);
  if (sa < 0 || sb < 0) return nullptr;
  return FindEdgeBySlots(sa, sb);
}

bool Wtpg::IsOriented(TxnId from, TxnId to) const {
  const Edge* e = FindEdge(from, to);
  return e != nullptr && e->oriented && e->from == from;
}

void Wtpg::MarkOriented(int32_t from, int32_t to, OrientJournal* journal) {
  Edge* e = MutableEdgeBySlots(from, to);
  WTPG_CHECK(e != nullptr);
  WTPG_CHECK(!e->oriented);
  Node& f = slots_[static_cast<size_t>(from)];
  Node& t = slots_[static_cast<size_t>(to)];
  e->oriented = true;
  e->from = f.id;
  f.out.push_back(to);
  t.in.push_back(from);
  t.in_w.push_back(f.id == e->a ? e->weight_ab : e->weight_ba);
  if (journal != nullptr) journal->records_.push_back({f.id, t.id});
}

void Wtpg::UnmarkOriented(int32_t from, int32_t to) {
  Edge* e = MutableEdgeBySlots(from, to);
  WTPG_CHECK(e != nullptr);
  Node& f = slots_[static_cast<size_t>(from)];
  Node& t = slots_[static_cast<size_t>(to)];
  WTPG_CHECK(e->oriented && e->from == f.id)
      << "rollback of T" << f.id << "->T" << t.id << " out of order";
  e->oriented = false;
  e->from = kInvalidTxn;
  // MarkOriented pushed onto the backs; LIFO rollback pops the backs, which
  // restores the vectors byte-identically. A mismatch means the caller
  // mutated the graph between speculation and rollback — fail loudly.
  WTPG_CHECK(!f.out.empty() && f.out.back() == to)
      << "journal rollback interleaved with other mutations";
  f.out.pop_back();
  WTPG_CHECK(!t.in.empty() && t.in.back() == from)
      << "journal rollback interleaved with other mutations";
  t.in.pop_back();
  t.in_w.pop_back();
}

void Wtpg::InvalidateDownstream(int32_t v) {
  if (dist_valid_ == 0) return;
  MarkReachable(&v, 1, /*reverse=*/false, &visited_scratch_);
  for (int32_t d : visited_scratch_) ClearDist(slots_[static_cast<size_t>(d)]);
}

uint64_t Wtpg::MarkReachable(const int32_t* starts, size_t count, bool reverse,
                             std::vector<int32_t>* out) const {
  const uint64_t epoch = ++epoch_;
  if (out != nullptr) out->clear();
  dfs_stack_.clear();
  const auto visit = [&](int32_t slot) {
    const Node& node = slots_[static_cast<size_t>(slot)];
    uint64_t& mark = reverse ? node.mark_rev : node.mark_fwd;
    if (mark == epoch) return;
    mark = epoch;
    dfs_stack_.push_back(slot);
    if (out != nullptr) out->push_back(slot);
  };
  for (size_t i = 0; i < count; ++i) visit(starts[i]);
  while (!dfs_stack_.empty()) {
    const int32_t cur = dfs_stack_.back();
    dfs_stack_.pop_back();
    const Node& node = slots_[static_cast<size_t>(cur)];
    const std::vector<int32_t>& adj = reverse ? node.in : node.out;
    for (int32_t nb : adj) visit(nb);
  }
  return epoch;
}

bool Wtpg::HasPath(TxnId from, TxnId to) const {
  if (from == to) return true;
  const int32_t sf = SlotOf(from);
  const int32_t st = SlotOf(to);
  const uint64_t epoch = MarkReachable(&sf, 1, /*reverse=*/false, nullptr);
  return slots_[static_cast<size_t>(st)].mark_fwd == epoch;
}

bool Wtpg::WouldCycle(TxnId from, const std::vector<TxnId>& targets) const {
  if (targets.empty()) return false;
  const int32_t sf = SlotOf(from);
  const uint64_t epoch = MarkReachable(&sf, 1, /*reverse=*/true, nullptr);
  for (TxnId u : targets) {
    if (u == from) return true;
    const int32_t su = SlotOf(u);
    const Edge* e = FindEdgeBySlots(sf, su);
    WTPG_CHECK(e != nullptr) << "WouldCycle: no edge T" << from << "-T" << u;
    if (e->oriented && e->from == u) return true;
    if (slots_[static_cast<size_t>(su)].mark_rev == epoch) {
      return true;  // u ~> from.
    }
  }
  return false;
}

bool Wtpg::OrientBatchImpl(TxnId from, const std::vector<TxnId>& targets,
                           OrientJournal* journal) {
  if (targets.empty()) return true;
  const int32_t sf = SlotOf(from);
  // Every new edge leaves `from`, so any cycle the batch could close must
  // run over a pre-existing path back into `from`: one ancestor DFS checks
  // all targets (this is WouldCycle, inlined to reuse the epoch below).
  const uint64_t a_epoch = MarkReachable(&sf, 1, /*reverse=*/true, nullptr);
  for (TxnId u : targets) {
    if (u == from) return false;
    const int32_t su = SlotOf(u);
    const Edge* e = FindEdgeBySlots(sf, su);
    WTPG_CHECK(e != nullptr) << "OrientBatch: no edge T" << from << "-T" << u;
    if (e->oriented) {
      if (e->from != from) return false;  // Fixed the other way.
      continue;
    }
    if (slots_[static_cast<size_t>(su)].mark_rev == a_epoch) {
      return false;  // u ~> from.
    }
  }
  // Mark the new precedence edges.
  bool any_new = false;
  for (TxnId u : targets) {
    const int32_t su = SlotOf(u);
    const Edge* e = FindEdgeBySlots(sf, su);
    if (e->oriented) continue;  // Already from -> u (checked above).
    MarkOriented(sf, su, journal);
    any_new = true;
  }
  if (!any_new) return true;
  // Forced transitive closure, in one pass. Let A = ancestors(from) and
  // D = descendants(from) *after* the direct marks. The direct edges add no
  // ancestor or descendant of `from` itself (a new path into `from` would
  // be a cycle, already excluded), so A is exactly the set stamped above.
  // Every path the batch creates runs x ~> from ~> y; hence (a) a conflict
  // edge is newly forced iff one endpoint is in A and the other in D (the
  // connecting path x ~> from ~> y always exists), and (b) marking a forced
  // edge x->y creates no reachability beyond x ~> from ~> y itself, so
  // forcings cannot cascade outside A x D — walking the unoriented
  // adjacency of D is the whole closure. A forced edge cannot conflict
  // either: a cycle would need its head in A and tail in D simultaneously,
  // i.e. a node in A ∩ D \ {from}, which is a pre-existing cycle through
  // `from`. (Dense storage walks D's conflict neighbors instead of scanning
  // the global edge table: every candidate edge has its D endpoint here.)
  const uint64_t d_epoch =
      MarkReachable(&sf, 1, /*reverse=*/false, &visited_scratch_);
  (void)d_epoch;
  // Every node whose longest path can change is downstream of `from` (the
  // head of every new edge is in D): invalidate the region once.
  if (dist_valid_ > 0) {
    for (int32_t d : visited_scratch_) {
      ClearDist(slots_[static_cast<size_t>(d)]);
    }
  }
  for (const int32_t y : visited_scratch_) {
    const Node& ny = slots_[static_cast<size_t>(y)];
    // ny.neighbors cannot grow during the closure marks, but iterate by
    // index for clarity that MarkOriented only touches out/in lists.
    for (size_t i = 0; i < ny.neighbors.size(); ++i) {
      const int32_t x = ny.neighbors[i];
      if (slots_[static_cast<size_t>(x)].mark_rev != a_epoch) continue;
      const Edge* e = FindEdgeBySlots(x, y);
      if (e->oriented) continue;
      MarkOriented(x, y, journal);
    }
  }
  return true;
}

bool Wtpg::OrientBatch(TxnId from, const std::vector<TxnId>& targets,
                       OrientJournal* journal) {
  WTPG_CHECK(journal != nullptr);
  const size_t mark = journal->records_.size();
  if (OrientBatchImpl(from, targets, journal)) return true;
  RollbackToMark(journal, mark);
  return false;
}

void Wtpg::RollbackToMark(OrientJournal* journal, size_t mark) {
  auto& records = journal->records_;
  if (records.size() > mark && dist_valid_ > 0) {
    // A memoized distance can depend on a speculative edge x->y only if the
    // node is downstream of y. One multi-source DFS from all the heads —
    // run while the edges are still present, so it covers the downstream
    // set of every intermediate rollback state — invalidates the region
    // once instead of once per unmark.
    heads_scratch_.clear();
    for (size_t i = mark; i < records.size(); ++i) {
      heads_scratch_.push_back(SlotOf(records[i].to));
    }
    MarkReachable(heads_scratch_.data(), heads_scratch_.size(),
                  /*reverse=*/false, &visited_scratch_);
    for (int32_t d : visited_scratch_) {
      ClearDist(slots_[static_cast<size_t>(d)]);
    }
  }
  while (records.size() > mark) {
    const OrientJournal::Record r = records.back();
    records.pop_back();
    UnmarkOriented(SlotOf(r.from), SlotOf(r.to));
  }
}

void Wtpg::Rollback(OrientJournal* journal) {
  WTPG_CHECK(journal != nullptr);
  RollbackToMark(journal, 0);
}

bool Wtpg::OrientBatchNoRollback(TxnId from,
                                 const std::vector<TxnId>& targets) {
  return OrientBatchImpl(from, targets, /*journal=*/nullptr);
}

bool Wtpg::TryOrient(TxnId from, TxnId to) {
  const Edge* e = FindEdge(from, to);
  WTPG_CHECK(e != nullptr) << "TryOrient on nonexistent edge T" << from
                           << "->T" << to;
  if (e->oriented) return e->from == from;
  if (reference_speculation_) {
    // Historical implementation: work on a copy so a failed closure leaves
    // *this untouched.
    if (WouldCycle(from, {to})) return false;
    Wtpg copy = *this;
    if (!copy.OrientBatchNoRollback(from, {to})) return false;
    *this = std::move(copy);
    return true;
  }
  OrientJournal journal;
  return OrientBatch(from, {to}, &journal);  // Keep on success.
}

bool Wtpg::CanOrient(TxnId from, TxnId to) {
  const Edge* e = FindEdge(from, to);
  if (e == nullptr) return false;
  if (e->oriented) return e->from == from;
  if (reference_speculation_) {
    Wtpg copy = *this;
    return copy.OrientBatchNoRollback(from, {to});
  }
  OrientJournal journal;
  const bool ok = OrientBatch(from, {to}, &journal);
  Rollback(&journal);
  return ok;
}

double Wtpg::CriticalPath() const {
  if (slot_of_.empty()) return 0.0;
  if (reference_speculation_) return CriticalPathUncached();
  double critical = 0.0;
  for (const Node& node : slots_) {
    if (node.id == kInvalidTxn) continue;
    critical = std::max(critical, EvalDist(node));
  }
  return critical;
}

// Longest-path DP over the oriented sub-DAG, memoized on the nodes:
//   dist(v) = max(remaining(v), max over oriented u->v of dist(u) + w(u,v))
// dist/dist_state only ever hold final values; the transient kDistVisiting
// state guards against cycles (fail loudly, not forever). The in-weights
// live in the parallel in_w list, so the DP touches no edge table.
double Wtpg::EvalDist(const Node& node) const {
  if (node.dist_state == kDistValid) return node.dist;
  WTPG_CHECK(node.dist_state != kDistVisiting) << "cycle in oriented WTPG";
  node.dist_state = kDistVisiting;
  double best = node.remaining;
  for (size_t i = 0; i < node.in.size(); ++i) {
    best = std::max(
        best,
        EvalDist(slots_[static_cast<size_t>(node.in[i])]) + node.in_w[i]);
  }
  node.dist = best;
  node.dist_state = kDistValid;
  ++dist_valid_;
  return best;
}

double Wtpg::CriticalPathUncached() const {
  if (slot_of_.empty()) return 0.0;
  // Fresh DP per call over slot-indexed scratch (reference mode only).
  std::vector<double> dist(slots_.size(), 0.0);
  std::vector<uint8_t> state(slots_.size(), kDistInvalid);
  std::function<double(int32_t)> eval = [&](int32_t v) -> double {
    const size_t vi = static_cast<size_t>(v);
    if (state[vi] == kDistValid) return dist[vi];
    // Visiting marker guards against cycles (fail loudly, not forever).
    WTPG_CHECK(state[vi] != kDistVisiting) << "cycle in oriented WTPG";
    state[vi] = kDistVisiting;
    const Node& node = slots_[vi];
    double best = node.remaining;
    for (size_t i = 0; i < node.in.size(); ++i) {
      best = std::max(
          best, eval(node.in[i]) + node.in_w[i]);
    }
    dist[vi] = best;
    state[vi] = kDistValid;
    return best;
  };
  double critical = 0.0;
  for (size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].id == kInvalidTxn) continue;
    critical = std::max(critical, eval(static_cast<int32_t>(s)));
  }
  return critical;
}

std::vector<TxnId> Wtpg::Nodes() const {
  std::vector<TxnId> result;
  result.reserve(slot_of_.size());
  for (const Node& node : slots_) {
    if (node.id != kInvalidTxn) result.push_back(node.id);
  }
  std::sort(result.begin(), result.end());  // Slot order is not id order.
  return result;
}

std::vector<TxnId> Wtpg::Neighbors(TxnId id) const {
  const Node& node = slots_[static_cast<size_t>(SlotOf(id))];
  std::vector<TxnId> result;
  result.reserve(node.neighbors.size());
  for (int32_t nb : node.neighbors) {
    result.push_back(slots_[static_cast<size_t>(nb)].id);
  }
  return result;
}

std::vector<TxnId> Wtpg::OutNeighbors(TxnId id) const {
  const Node& node = slots_[static_cast<size_t>(SlotOf(id))];
  std::vector<TxnId> result;
  result.reserve(node.out.size());
  for (int32_t nb : node.out) {
    result.push_back(slots_[static_cast<size_t>(nb)].id);
  }
  return result;
}

std::vector<TxnId> Wtpg::InNeighbors(TxnId id) const {
  const Node& node = slots_[static_cast<size_t>(SlotOf(id))];
  std::vector<TxnId> result;
  result.reserve(node.in.size());
  for (int32_t nb : node.in) {
    result.push_back(slots_[static_cast<size_t>(nb)].id);
  }
  return result;
}

std::vector<std::pair<TxnId, TxnId>> Wtpg::UnorientedEdges() const {
  std::vector<std::pair<TxnId, TxnId>> result;
  for (const EdgeBucket& bucket : edge_buckets_) {
    if (bucket.key == kEmptyEdgeKey || bucket.edge.oriented) continue;
    result.emplace_back(bucket.edge.a, bucket.edge.b);
  }
  // The table iterates in hash order; keep the historical sorted contract.
  std::sort(result.begin(), result.end());
  return result;
}

bool Wtpg::CheckInvariants() const {
  // Slot map <-> slab bijection and free-list integrity.
  size_t live = 0;
  for (size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].id == kInvalidTxn) continue;
    ++live;
    auto it = slot_of_.find(slots_[s].id);
    if (it == slot_of_.end() || it->second != static_cast<int32_t>(s)) {
      return false;
    }
  }
  if (live != slot_of_.size()) return false;
  size_t free_count = 0;
  for (int32_t f = free_head_; f >= 0;
       f = slots_[static_cast<size_t>(f)].next_free) {
    if (static_cast<size_t>(f) >= slots_.size()) return false;
    if (slots_[static_cast<size_t>(f)].id != kInvalidTxn) return false;
    if (++free_count > slots_.size()) return false;  // Cycle in free list.
  }
  if (live + free_count != slots_.size()) return false;
  // Edge table: keys match live endpoints; normalization holds.
  size_t edge_count = 0;
  for (const EdgeBucket& bucket : edge_buckets_) {
    if (bucket.key == kEmptyEdgeKey) continue;
    ++edge_count;
    const Edge& edge = bucket.edge;
    if (!HasNode(edge.a) || !HasNode(edge.b)) return false;
    if (edge.a >= edge.b) return false;
    if (bucket.key != PackSlots(SlotOf(edge.a), SlotOf(edge.b))) return false;
    if (edge.oriented && edge.from != edge.a && edge.from != edge.b) {
      return false;
    }
  }
  if (edge_count != num_edges_) return false;
  // Adjacency lists consistent with edge states; in_w parallel to in and
  // carrying the oriented direction's weight.
  for (const Node& node : slots_) {
    if (node.id == kInvalidTxn) continue;
    const TxnId id = node.id;
    for (int32_t nb : node.out) {
      if (!IsOriented(id, slots_[static_cast<size_t>(nb)].id)) return false;
    }
    if (node.in_w.size() != node.in.size()) return false;
    for (size_t i = 0; i < node.in.size(); ++i) {
      const TxnId nb = slots_[static_cast<size_t>(node.in[i])].id;
      if (!IsOriented(nb, id)) return false;
      const Edge* e = FindEdge(nb, id);
      const double w = (e->from == e->a) ? e->weight_ab : e->weight_ba;
      if (node.in_w[i] != w) return false;
    }
    size_t oriented_count = 0;
    for (int32_t nb : node.neighbors) {
      const Edge* e = FindEdgeBySlots(SlotOf(id), nb);
      if (e == nullptr) return false;
      if (e->oriented) ++oriented_count;
    }
    if (oriented_count != node.out.size() + node.in.size()) return false;
  }
  // Oriented subgraph must be acyclic.
  for (const EdgeBucket& bucket : edge_buckets_) {
    if (bucket.key == kEmptyEdgeKey || !bucket.edge.oriented) continue;
    const Edge& edge = bucket.edge;
    const TxnId to = (edge.from == edge.a) ? edge.b : edge.a;
    if (HasPath(to, edge.from)) return false;
  }
  // Closure fully applied: no unoriented edge with a connecting path.
  for (const EdgeBucket& bucket : edge_buckets_) {
    if (bucket.key == kEmptyEdgeKey || bucket.edge.oriented) continue;
    const Edge& edge = bucket.edge;
    if (HasPath(edge.a, edge.b) || HasPath(edge.b, edge.a)) return false;
  }
  // Every memoized distance must match a fresh DP (stale memo entries are
  // exactly the bug class the journal can cause), no node may be stuck in
  // the transient visiting state, and the valid count must agree.
  std::vector<double> fresh(slots_.size(), 0.0);
  std::vector<uint8_t> state(slots_.size(), kDistInvalid);
  std::function<double(int32_t)> eval = [&](int32_t v) -> double {
    const size_t vi = static_cast<size_t>(v);
    if (state[vi] == kDistValid) return fresh[vi];
    state[vi] = kDistValid;  // Acyclicity already verified above.
    const Node& node = slots_[vi];
    double best = node.remaining;
    for (size_t i = 0; i < node.in.size(); ++i) {
      best = std::max(best, eval(node.in[i]) + node.in_w[i]);
    }
    fresh[vi] = best;
    return best;
  };
  size_t valid = 0;
  for (size_t s = 0; s < slots_.size(); ++s) {
    const Node& node = slots_[s];
    if (node.id == kInvalidTxn) continue;
    if (node.dist_state == kDistVisiting) return false;
    if (node.dist_state == kDistValid) {
      ++valid;
      if (eval(static_cast<int32_t>(s)) != node.dist) return false;
    }
  }
  if (valid != dist_valid_) return false;
  return true;
}

double EvaluateGrant(Wtpg& g, TxnId grantee,
                     const std::vector<TxnId>& orient_to) {
  if (g.reference_speculation()) {
    Wtpg copy = g;
    if (!copy.OrientBatchNoRollback(grantee, orient_to)) return kInfiniteCost;
    return copy.CriticalPath();
  }
  Wtpg::OrientJournal journal;
  if (!g.OrientBatch(grantee, orient_to, &journal)) return kInfiniteCost;
  const double critical = g.CriticalPath();
  g.Rollback(&journal);
  return critical;
}

}  // namespace wtpgsched
