#include "wtpg/wtpg.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "util/logging.h"

namespace wtpgsched {
namespace {

void EraseValue(std::vector<TxnId>* list, TxnId value) {
  list->erase(std::remove(list->begin(), list->end(), value), list->end());
}

}  // namespace

void Wtpg::AddNode(TxnId id, double remaining) {
  WTPG_CHECK_GE(remaining, 0.0);
  auto [it, inserted] = nodes_.emplace(id, Node{remaining, {}, {}, {}});
  (void)it;
  WTPG_CHECK(inserted) << "node T" << id << " already in WTPG";
}

void Wtpg::AddConflictEdge(TxnId a, TxnId b, double weight_ab,
                           double weight_ba) {
  WTPG_CHECK_NE(a, b);
  WTPG_CHECK(HasNode(a)) << "T" << a;
  WTPG_CHECK(HasNode(b)) << "T" << b;
  WTPG_CHECK_GE(weight_ab, 0.0);
  WTPG_CHECK_GE(weight_ba, 0.0);
  Edge edge;
  if (a < b) {
    edge = Edge{a, b, weight_ab, weight_ba, false, kInvalidTxn};
  } else {
    edge = Edge{b, a, weight_ba, weight_ab, false, kInvalidTxn};
  }
  auto [it, inserted] = edges_.emplace(MakeKey(a, b), edge);
  (void)it;
  WTPG_CHECK(inserted) << "edge (T" << a << ",T" << b << ") already in WTPG";
  nodes_.at(a).neighbors.push_back(b);
  nodes_.at(b).neighbors.push_back(a);
}

void Wtpg::RemoveNode(TxnId id) {
  auto it = nodes_.find(id);
  WTPG_CHECK(it != nodes_.end()) << "RemoveNode: T" << id << " not in WTPG";
  for (TxnId nb : it->second.neighbors) {
    edges_.erase(MakeKey(id, nb));
    Node& other = nodes_.at(nb);
    EraseValue(&other.neighbors, id);
    EraseValue(&other.out, id);
    EraseValue(&other.in, id);
  }
  nodes_.erase(it);
}

void Wtpg::SetRemaining(TxnId id, double remaining) {
  WTPG_CHECK_GE(remaining, 0.0);
  nodes_.at(id).remaining = remaining;
}

double Wtpg::remaining(TxnId id) const { return nodes_.at(id).remaining; }

const Wtpg::Edge* Wtpg::FindEdge(TxnId a, TxnId b) const {
  auto it = edges_.find(MakeKey(a, b));
  return it == edges_.end() ? nullptr : &it->second;
}

Wtpg::Edge* Wtpg::MutableEdge(TxnId a, TxnId b) {
  auto it = edges_.find(MakeKey(a, b));
  return it == edges_.end() ? nullptr : &it->second;
}

bool Wtpg::IsOriented(TxnId from, TxnId to) const {
  const Edge* e = FindEdge(from, to);
  return e != nullptr && e->oriented && e->from == from;
}

void Wtpg::MarkOriented(TxnId from, TxnId to) {
  Edge* e = MutableEdge(from, to);
  WTPG_CHECK(e != nullptr);
  WTPG_CHECK(!e->oriented);
  e->oriented = true;
  e->from = from;
  nodes_.at(from).out.push_back(to);
  nodes_.at(to).in.push_back(from);
}

std::unordered_set<TxnId> Wtpg::ReachableSet(TxnId start, bool reverse) const {
  std::unordered_set<TxnId> visited = {start};
  std::vector<TxnId> stack = {start};
  while (!stack.empty()) {
    const TxnId cur = stack.back();
    stack.pop_back();
    const Node& node = nodes_.at(cur);
    for (TxnId nb : reverse ? node.in : node.out) {
      if (visited.insert(nb).second) stack.push_back(nb);
    }
  }
  return visited;
}

bool Wtpg::HasPath(TxnId from, TxnId to) const {
  if (from == to) return true;
  std::unordered_set<TxnId> visited = {from};
  std::vector<TxnId> stack = {from};
  while (!stack.empty()) {
    const TxnId cur = stack.back();
    stack.pop_back();
    for (TxnId nb : nodes_.at(cur).out) {
      if (nb == to) return true;
      if (visited.insert(nb).second) stack.push_back(nb);
    }
  }
  return false;
}

bool Wtpg::WouldCycle(TxnId from, const std::vector<TxnId>& targets) const {
  if (targets.empty()) return false;
  const std::unordered_set<TxnId> ancestors =
      ReachableSet(from, /*reverse=*/true);
  for (TxnId u : targets) {
    if (u == from) return true;
    const Edge* e = FindEdge(from, u);
    WTPG_CHECK(e != nullptr) << "WouldCycle: no edge T" << from << "-T" << u;
    if (e->oriented && e->from == u) return true;
    if (ancestors.count(u)) return true;
  }
  return false;
}

bool Wtpg::OrientBatchNoRollback(TxnId from,
                                 const std::vector<TxnId>& targets) {
  if (WouldCycle(from, targets)) return false;
  // Mark the new precedence edges.
  bool any_new = false;
  for (TxnId u : targets) {
    const Edge* e = FindEdge(from, u);
    WTPG_CHECK(e != nullptr);
    if (e->oriented) continue;  // Already from -> u (WouldCycle checked).
    MarkOriented(from, u);
    any_new = true;
  }
  if (!any_new) return true;
  // Forced transitive closure. Every path created by this batch runs
  // x ~> from -> u ~> y, so the newly forced conflict edges connect an
  // ancestor of `from` to a descendant of `from`; cascaded forcings are
  // handled the same way via the worklist. The invariant that closure was
  // fully applied before guarantees no older forcing is missed.
  std::vector<TxnId> worklist = {from};
  while (!worklist.empty()) {
    const TxnId source = worklist.back();
    worklist.pop_back();
    const std::unordered_set<TxnId> ancestors =
        ReachableSet(source, /*reverse=*/true);
    const std::unordered_set<TxnId> descendants =
        ReachableSet(source, /*reverse=*/false);
    // Candidate edges are the unoriented edges incident to an ancestor.
    std::vector<std::pair<TxnId, TxnId>> forced;
    for (TxnId x : ancestors) {
      for (TxnId nb : nodes_.at(x).neighbors) {
        const Edge* e = FindEdge(x, nb);
        if (e->oriented) continue;
        if (descendants.count(nb)) {
          // x ~> source ~> nb forces x -> nb; if nb also reaches x the
          // graph already contains a cycle through this batch — fail.
          if (ancestors.count(nb) || HasPath(nb, x)) return false;
          forced.emplace_back(x, nb);
        }
      }
    }
    for (const auto& [x, y] : forced) {
      const Edge* e = FindEdge(x, y);
      if (e->oriented) {
        // A previous forcing in this batch handled it; direction must match.
        if (e->from != x) return false;
        continue;
      }
      MarkOriented(x, y);
      worklist.push_back(x);
    }
  }
  return true;
}

bool Wtpg::TryOrient(TxnId from, TxnId to) {
  const Edge* e = FindEdge(from, to);
  WTPG_CHECK(e != nullptr) << "TryOrient on nonexistent edge T" << from
                           << "->T" << to;
  if (e->oriented) return e->from == from;
  if (WouldCycle(from, {to})) return false;
  // Work on a copy so a failed closure leaves *this untouched.
  Wtpg copy = *this;
  if (!copy.OrientBatchNoRollback(from, {to})) return false;
  *this = std::move(copy);
  return true;
}

bool Wtpg::CanOrient(TxnId from, TxnId to) const {
  const Edge* e = FindEdge(from, to);
  if (e == nullptr) return false;
  if (e->oriented) return e->from == from;
  Wtpg copy = *this;
  return copy.OrientBatchNoRollback(from, {to});
}

double Wtpg::CriticalPath() const {
  if (nodes_.empty()) return 0.0;
  // Longest-path DP over the oriented sub-DAG, memoized DFS:
  //   dist(v) = max(remaining(v), max over oriented u->v of dist(u) + w(u,v))
  std::unordered_map<TxnId, double> dist;
  std::function<double(TxnId)> eval = [&](TxnId v) -> double {
    auto it = dist.find(v);
    if (it != dist.end()) {
      WTPG_CHECK_GE(it->second, 0.0) << "cycle in oriented WTPG";
      return it->second;
    }
    // Negative marker guards against cycles (fail loudly, not forever).
    dist.emplace(v, -1.0);
    const Node& node = nodes_.at(v);
    double best = node.remaining;
    for (TxnId nb : node.in) {
      const Edge* e = FindEdge(nb, v);
      const double w = (e->from == e->a) ? e->weight_ab : e->weight_ba;
      best = std::max(best, eval(nb) + w);
    }
    dist[v] = best;
    return best;
  };
  double critical = 0.0;
  for (const auto& [id, node] : nodes_) {
    (void)node;
    critical = std::max(critical, eval(id));
  }
  return critical;
}

std::vector<TxnId> Wtpg::Nodes() const {
  std::vector<TxnId> result;
  result.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    (void)node;
    result.push_back(id);
  }
  return result;
}

std::vector<TxnId> Wtpg::Neighbors(TxnId id) const {
  auto it = nodes_.find(id);
  WTPG_CHECK(it != nodes_.end());
  return it->second.neighbors;
}

std::vector<std::pair<TxnId, TxnId>> Wtpg::UnorientedEdges() const {
  std::vector<std::pair<TxnId, TxnId>> result;
  for (const auto& [key, edge] : edges_) {
    if (!edge.oriented) result.push_back(key);
  }
  return result;
}

bool Wtpg::CheckInvariants() const {
  for (const auto& [key, edge] : edges_) {
    if (!HasNode(edge.a) || !HasNode(edge.b)) return false;
    if (key != MakeKey(edge.a, edge.b)) return false;
    if (edge.oriented && edge.from != edge.a && edge.from != edge.b) {
      return false;
    }
  }
  // Adjacency lists consistent with edge states.
  for (const auto& [id, node] : nodes_) {
    for (TxnId nb : node.out) {
      if (!IsOriented(id, nb)) return false;
    }
    for (TxnId nb : node.in) {
      if (!IsOriented(nb, id)) return false;
    }
    size_t oriented_count = 0;
    for (TxnId nb : node.neighbors) {
      const Edge* e = FindEdge(id, nb);
      if (e == nullptr) return false;
      if (e->oriented) ++oriented_count;
    }
    if (oriented_count != node.out.size() + node.in.size()) return false;
  }
  // Oriented subgraph must be acyclic.
  for (const auto& [key, edge] : edges_) {
    (void)key;
    if (!edge.oriented) continue;
    const TxnId to = (edge.from == edge.a) ? edge.b : edge.a;
    if (HasPath(to, edge.from)) return false;
  }
  // Closure fully applied: no unoriented edge with a connecting path.
  for (const auto& [key, edge] : edges_) {
    (void)key;
    if (edge.oriented) continue;
    if (HasPath(edge.a, edge.b) || HasPath(edge.b, edge.a)) return false;
  }
  return true;
}

double EvaluateGrant(const Wtpg& g, TxnId grantee,
                     const std::vector<TxnId>& orient_to) {
  Wtpg copy = g;
  if (!copy.OrientBatchNoRollback(grantee, orient_to)) return kInfiniteCost;
  return copy.CriticalPath();
}

}  // namespace wtpgsched
