#include "wtpg/dot.h"

#include "util/string_util.h"

namespace wtpgsched {
namespace {

std::string Weight(double w) {
  // Trim trailing zeros for readability.
  std::string s = FormatDouble(w, 2);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s.empty() ? "0" : s;
}

}  // namespace

std::string ToDot(const Wtpg& graph, const std::string& title) {
  std::string out = StrCat("digraph \"", title, "\" {\n",
                           "  rankdir=LR;\n",
                           "  node [shape=circle];\n",
                           "  T0 [shape=doublecircle];\n");
  for (TxnId id : graph.Nodes()) {
    out += StrCat("  T", id, ";\n");
    // T0 edge carries the remaining declared cost.
    out += StrCat("  T0 -> T", id, " [label=\"", Weight(graph.remaining(id)),
                  "\", color=gray];\n");
  }
  // Each edge once (Nodes() ascending; emit for a < b).
  for (TxnId a : graph.Nodes()) {
    for (TxnId b : graph.Neighbors(a)) {
      if (b < a) continue;
      const Wtpg::Edge* e = graph.FindEdge(a, b);
      if (e->oriented) {
        const TxnId from = e->from;
        const TxnId to = (e->from == e->a) ? e->b : e->a;
        const double w = (e->from == e->a) ? e->weight_ab : e->weight_ba;
        out += StrCat("  T", from, " -> T", to, " [label=\"", Weight(w),
                      "\", penwidth=2];\n");
      } else {
        out += StrCat("  T", e->a, " -> T", e->b, " [label=\"",
                      Weight(e->weight_ab), "/", Weight(e->weight_ba),
                      "\", dir=both, style=dashed];\n");
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace wtpgsched
