#ifndef WTPG_SCHED_WTPG_DOT_H_
#define WTPG_SCHED_WTPG_DOT_H_

#include <string>

#include "wtpg/wtpg.h"

namespace wtpgsched {

// Renders a WTPG as Graphviz DOT for debugging and documentation, in the
// style of the paper's figures: T0 with its weighted edges to every
// transaction, solid arrows for determined precedence edges (labelled with
// the direction's weight), and dashed double-ended arrows for undetermined
// conflict edges (labelled with both weights).
//
//   dot -Tpng graph.dot -o graph.png
std::string ToDot(const Wtpg& graph, const std::string& title = "WTPG");

}  // namespace wtpgsched

#endif  // WTPG_SCHED_WTPG_DOT_H_
