#ifndef WTPG_SCHED_WTPG_CHAIN_H_
#define WTPG_SCHED_WTPG_CHAIN_H_

#include <vector>

#include "model/types.h"
#include "util/status.h"
#include "wtpg/wtpg.h"

namespace wtpgsched {

// Chain-form support for the Globally-Optimized WTPG scheduler (GOW,
// paper Section 3.2). A WTPG is in *chain form* when every transaction
// conflicts only with its adjacent nodes — i.e. the undirected
// conflicts-with graph is a disjoint union of simple paths. GOW admits a
// new transaction only if the graph stays chain-form, which is what makes
// the globally optimal serializable order computable in O(N^2) instead of
// NP-hard.

// True when the conflict graph of `g` is a disjoint union of simple paths
// (every degree <= 2, no cycles).
bool IsChainForm(const Wtpg& g);

// Would the graph remain chain-form after adding a node that conflicts with
// exactly `conflict_set` (existing nodes)? Requires IsChainForm(g). True iff
// each member has degree <= 1, |conflict_set| <= 2, and joining them through
// the new node closes no cycle (two endpoints of the same path).
bool CanExtendChain(const Wtpg& g, const std::vector<TxnId>& conflict_set);

// The ordered node list of the path containing `id` (endpoints first/last).
// Requires chain form. A conflict-free node yields a singleton.
std::vector<TxnId> ChainContaining(const Wtpg& g, TxnId id);

// The globally-optimized serializable order for one chain: a direction for
// every chain edge, minimizing the critical path, respecting edges already
// oriented in `g`.
struct ChainPlan {
  // Chain nodes in path order.
  std::vector<TxnId> nodes;
  // forward[i] == true orients nodes[i] -> nodes[i+1]; size = nodes-1.
  std::vector<bool> forward;
  // Critical path of the chain under this plan:
  //   max over directed runs (remaining(entry) + sum of run edge weights),
  // at least max_v remaining(v).
  double critical_path = 0.0;

  // Direction this plan assigns to the edge between a and b (true: a -> b).
  // The pair must be adjacent in `nodes`.
  bool Orients(TxnId a, TxnId b) const;
};

// Computes the optimal plan by O(m^2) dynamic programming over alternating
// maximal directed segments. Fails (FailedPrecondition) only if existing
// orientations are contradictory, which the scheduler never allows.
StatusOr<ChainPlan> OptimizeChain(const Wtpg& g,
                                  const std::vector<TxnId>& chain);

// Convenience: optimal plan for the chain containing `id`.
StatusOr<ChainPlan> OptimizeChainOf(const Wtpg& g, TxnId id);

// Reference implementation for testing: enumerates all feasible orientations
// of the chain's undetermined edges and returns the minimal critical path
// (computed via Wtpg::CriticalPath on a clone restricted to this chain's
// orientations). Exponential; test-only.
double BruteForceOptimalCriticalPath(const Wtpg& g,
                                     const std::vector<TxnId>& chain);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_WTPG_CHAIN_H_
