#include "metrics/counters.h"

namespace wtpgsched {

uint64_t& CounterRegistry::Counter(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return entries_[it->second].second;
  index_.emplace(name, entries_.size());
  entries_.emplace_back(name, 0);
  return entries_.back().second;
}

uint64_t CounterRegistry::Get(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0 : entries_[it->second].second;
}

std::vector<std::pair<std::string, uint64_t>> CounterRegistry::Entries()
    const {
  return {entries_.begin(), entries_.end()};
}

void CounterRegistry::Merge(
    const std::vector<std::pair<std::string, uint64_t>>& entries) {
  for (const auto& [name, value] : entries) Counter(name) += value;
}

}  // namespace wtpgsched
