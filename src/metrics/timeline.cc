#include "metrics/timeline.h"

#include <algorithm>

#include "util/csv.h"
#include "util/string_util.h"

namespace wtpgsched {

void TimelineRecorder::Attach(const TelemetryStore* store) {
  store_ = store;
  in_flight_col_ = store->ColumnIndex(kInFlightGauge);
  active_col_ = store->ColumnIndex(kActiveGauge);
  parked_col_ = store->ColumnIndex(kParkedGauge);
  cn_queue_col_ = store->ColumnIndex(kCnQueueGauge);
  backlog_col_ = store->ColumnIndex(kBacklogGauge);
  completions_col_ = store->ColumnIndex(kCompletionsGauge);
}

uint64_t TimelineRecorder::PeakInFlight() const {
  uint64_t peak = 0;
  for (size_t row = 0; row < size(); ++row) {
    peak = std::max(peak, in_flight(row));
  }
  return peak;
}

Status TimelineRecorder::WriteCsv(const std::string& path) const {
  CsvWriter writer;
  Status status = writer.Open(path);
  if (!status.ok()) return status;
  writer.WriteHeader({"time_s", "in_flight", "active", "parked", "cn_queue",
                      "dpn_backlog_objects", "completions"});
  for (size_t row = 0; row < size(); ++row) {
    writer.WriteRow({FormatDouble(TimeToSeconds(time(row)), 1),
                     StrCat(in_flight(row)), StrCat(active(row)),
                     StrCat(parked(row)), FormatDouble(cn_queue(row), 1),
                     FormatDouble(dpn_backlog_objects(row), 2),
                     StrCat(completions(row))});
  }
  return writer.Close();
}

}  // namespace wtpgsched
