#include "metrics/timeline.h"

#include <algorithm>

#include "util/csv.h"
#include "util/string_util.h"

namespace wtpgsched {

uint64_t TimelineRecorder::PeakInFlight() const {
  uint64_t peak = 0;
  for (const Sample& s : samples_) peak = std::max(peak, s.in_flight);
  return peak;
}

Status TimelineRecorder::WriteCsv(const std::string& path) const {
  CsvWriter writer;
  Status status = writer.Open(path);
  if (!status.ok()) return status;
  writer.WriteHeader({"time_s", "in_flight", "active", "parked", "cn_queue",
                      "dpn_backlog_objects", "completions"});
  for (const Sample& s : samples_) {
    writer.WriteRow({FormatDouble(TimeToSeconds(s.time), 1),
                     StrCat(s.in_flight), StrCat(s.active), StrCat(s.parked),
                     FormatDouble(s.cn_queue, 1),
                     FormatDouble(s.dpn_backlog_objects, 2),
                     StrCat(s.completions)});
  }
  return writer.Close();
}

}  // namespace wtpgsched
