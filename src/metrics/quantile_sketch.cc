#include "metrics/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace wtpgsched {

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  WTPG_CHECK_GT(q_, 0.0);
  WTPG_CHECK_LT(q_, 1.0);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    // Warm-up: insert sorted; the markers double as the sample buffer.
    size_t pos = count_;
    while (pos > 0 && heights_[pos - 1] > value) {
      heights_[pos] = heights_[pos - 1];
      --pos;
    }
    heights_[pos] = value;
    ++count_;
    return;
  }
  ++count_;

  // 1. Locate the cell and update the extreme markers.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }

  // 2. Shift the ranks of the markers above the cell; advance the targets.
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // 3. Nudge the three interior markers toward their target ranks,
  // adjusting heights by the piecewise-parabolic (P²) formula, falling
  // back to linear interpolation when the parabola would leave the
  // bracketing heights.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double gap_up = positions_[i + 1] - positions_[i];
    const double gap_down = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && gap_up > 1.0) || (d <= -1.0 && gap_down < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      const double qp =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
        heights_[i] = qp;
      } else {
        // Linear toward the neighbor in the movement direction.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ >= 5) return heights_[2];
  // Exact while warming up, with Histogram::Percentile's interpolated-rank
  // formula so short streams match the exact path bit-for-bit.
  if (count_ == 1) return heights_[0];
  const double rank = q_ * static_cast<double>(count_ - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, count_ - 1);
  const double frac = rank - static_cast<double>(lo);
  return heights_[lo] * (1.0 - frac) + heights_[hi] * frac;
}

QuantileSketch::QuantileSketch() : p50_(0.50), p95_(0.95), p99_(0.99) {}

void QuantileSketch::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - welford_mean_;
  welford_mean_ += delta / static_cast<double>(count_);
  welford_m2_ += delta * (value - welford_mean_);
  p50_.Add(value);
  p95_.Add(value);
  p99_.Add(value);
}

double QuantileSketch::min() const { return count_ == 0 ? 0.0 : min_; }

double QuantileSketch::max() const { return count_ == 0 ? 0.0 : max_; }

double QuantileSketch::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double QuantileSketch::StdDev() const {
  if (count_ == 0) return 0.0;
  const double var = welford_m2_ / static_cast<double>(count_);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace wtpgsched
