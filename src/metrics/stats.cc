#include "metrics/stats.h"

#include "util/json_writer.h"
#include "util/logging.h"

namespace wtpgsched {

namespace {

// Counter names that already have a dedicated RunStats field; skipped when
// appending registry extras so no value is emitted twice.
bool IsLegacyCounter(const std::string& name) {
  return name == "restarts" || name == "blocked" || name == "delayed" ||
         name == "start_rejections";
}

}  // namespace

std::string RunStats::ToJson() const {
  JsonWriter json;
  json.Add("arrivals", arrivals)
      .Add("completions", completions)
      .Add("completions_measured", completions_measured)
      .Add("mean_response_s", mean_response_s)
      .Add("median_response_s", median_response_s)
      .Add("p95_response_s", p95_response_s)
      .Add("throughput_tps", throughput_tps)
      .Add("restarts", restarts)
      .Add("blocked", blocked)
      .Add("delayed", delayed)
      .Add("start_rejections", start_rejections)
      .Add("cn_utilization", cn_utilization)
      .Add("mean_dpn_utilization", mean_dpn_utilization)
      .Add("max_dpn_utilization", max_dpn_utilization)
      .Add("sim_seconds", sim_seconds)
      .Add("in_flight_at_end", in_flight_at_end);
  for (const auto& [name, value] : counters) {
    if (!IsLegacyCounter(name)) json.Add(name, value);
  }
  return json.ToString();
}

StatsCollector::StatsCollector(SimTime warmup, SimTime horizon)
    : warmup_(warmup),
      horizon_(horizon),
      restarts_(&counters_.Counter("restarts")),
      blocked_(&counters_.Counter("blocked")),
      delayed_(&counters_.Counter("delayed")),
      start_rejections_(&counters_.Counter("start_rejections")) {
  WTPG_CHECK_GE(warmup_, 0);
  WTPG_CHECK_GT(horizon_, warmup_);
}

void StatsCollector::RecordCompletion(const Transaction& txn, SimTime now) {
  ++stats_.completions;
  if (now >= warmup_) {
    ++stats_.completions_measured;
    const double response_s = TimeToSeconds(now - txn.arrival_time);
    window_responses_.Add(response_s);
    class_responses_[txn.workload_class].Add(response_s);
  }
}

RunStats StatsCollector::Finalize(double cn_utilization,
                                  double mean_dpn_utilization,
                                  double max_dpn_utilization,
                                  uint64_t in_flight) const {
  RunStats result = stats_;
  result.restarts = counters_.Get("restarts");
  result.blocked = counters_.Get("blocked");
  result.delayed = counters_.Get("delayed");
  result.start_rejections = counters_.Get("start_rejections");
  result.counters = counters_.Entries();
  result.mean_response_s = window_responses_.Mean();
  result.median_response_s = window_responses_.Median();
  result.p95_response_s = window_responses_.Percentile(95.0);
  const double window_s = TimeToSeconds(horizon_ - warmup_);
  result.throughput_tps =
      window_s > 0.0
          ? static_cast<double>(result.completions_measured) / window_s
          : 0.0;
  result.cn_utilization = cn_utilization;
  result.mean_dpn_utilization = mean_dpn_utilization;
  result.max_dpn_utilization = max_dpn_utilization;
  result.sim_seconds = TimeToSeconds(horizon_);
  result.in_flight_at_end = in_flight;
  for (const auto& [workload_class, histogram] : class_responses_) {
    RunStats::ClassStats cs;
    cs.workload_class = workload_class;
    cs.completions = histogram.count();
    cs.mean_response_s = histogram.Mean();
    cs.median_response_s = histogram.Median();
    cs.p95_response_s = histogram.Percentile(95.0);
    result.per_class.push_back(cs);
  }
  return result;
}

}  // namespace wtpgsched
