#include "metrics/stats.h"

#include "util/json_writer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace wtpgsched {

namespace {

// Counter names that already have a dedicated RunStats field; skipped when
// appending registry extras so no value is emitted twice.
bool IsLegacyCounter(const std::string& name) {
  return name == "restarts" || name == "blocked" || name == "delayed" ||
         name == "start_rejections";
}

}  // namespace

std::string RunStats::ToJson() const {
  JsonWriter json;
  json.Add("arrivals", arrivals)
      .Add("completions", completions)
      .Add("completions_measured", completions_measured)
      .Add("mean_response_s", mean_response_s)
      .Add("median_response_s", median_response_s)
      .Add("p95_response_s", p95_response_s)
      .Add("throughput_tps", throughput_tps)
      .Add("restarts", restarts)
      .Add("blocked", blocked)
      .Add("delayed", delayed)
      .Add("start_rejections", start_rejections)
      .Add("cn_utilization", cn_utilization)
      .Add("mean_dpn_utilization", mean_dpn_utilization)
      .Add("max_dpn_utilization", max_dpn_utilization)
      .Add("sim_seconds", sim_seconds)
      .Add("in_flight_at_end", in_flight_at_end);
  if (tail_metrics) {
    json.Add("p50_response_s", median_response_s)
        .Add("p99_response_s", p99_response_s)
        .Add("sketch_quantiles", sketch_quantiles);
    for (const ClassStats& cs : per_class) {
      const std::string prefix = StrCat("class", cs.workload_class, ".");
      json.Add(StrCat(prefix, "completions"), cs.completions)
          .Add(StrCat(prefix, "mean_s"), cs.mean_response_s)
          .Add(StrCat(prefix, "p50_s"), cs.median_response_s)
          .Add(StrCat(prefix, "p95_s"), cs.p95_response_s)
          .Add(StrCat(prefix, "p99_s"), cs.p99_response_s);
    }
  }
  for (const auto& [name, value] : counters) {
    if (!IsLegacyCounter(name)) json.Add(name, value);
  }
  return json.ToString();
}

StatsCollector::StatsCollector(SimTime warmup, SimTime horizon,
                               TailOptions tail)
    : warmup_(warmup),
      horizon_(horizon),
      tail_(tail),
      restarts_(&counters_.Counter("restarts")),
      blocked_(&counters_.Counter("blocked")),
      delayed_(&counters_.Counter("delayed")),
      start_rejections_(&counters_.Counter("start_rejections")) {
  WTPG_CHECK_GE(warmup_, 0);
  WTPG_CHECK_GT(horizon_, warmup_);
  window_responses_.use_sketch = tail_.sketch;
}

void StatsCollector::RecordCompletion(const Transaction& txn, SimTime now) {
  ++stats_.completions;
  if (now >= warmup_) {
    ++stats_.completions_measured;
    const double response_s = TimeToSeconds(now - txn.arrival_time);
    window_responses_.Add(response_s);
    auto [it, inserted] = class_responses_.try_emplace(txn.workload_class);
    if (inserted) it->second.use_sketch = tail_.sketch;
    it->second.Add(response_s);
  }
}

RunStats StatsCollector::Finalize(double cn_utilization,
                                  double mean_dpn_utilization,
                                  double max_dpn_utilization,
                                  uint64_t in_flight) const {
  RunStats result = stats_;
  result.restarts = counters_.Get("restarts");
  result.blocked = counters_.Get("blocked");
  result.delayed = counters_.Get("delayed");
  result.start_rejections = counters_.Get("start_rejections");
  result.counters = counters_.Entries();
  result.tail_metrics = tail_.tail_metrics;
  result.sketch_quantiles = tail_.sketch;
  result.mean_response_s = window_responses_.Mean();
  result.median_response_s = window_responses_.P50();
  result.p95_response_s = window_responses_.P95();
  result.p99_response_s = window_responses_.P99();
  const double window_s = TimeToSeconds(horizon_ - warmup_);
  result.throughput_tps =
      window_s > 0.0
          ? static_cast<double>(result.completions_measured) / window_s
          : 0.0;
  result.cn_utilization = cn_utilization;
  result.mean_dpn_utilization = mean_dpn_utilization;
  result.max_dpn_utilization = max_dpn_utilization;
  result.sim_seconds = TimeToSeconds(horizon_);
  result.in_flight_at_end = in_flight;
  for (const auto& [workload_class, stream] : class_responses_) {
    RunStats::ClassStats cs;
    cs.workload_class = workload_class;
    cs.completions = stream.Count();
    cs.mean_response_s = stream.Mean();
    cs.median_response_s = stream.P50();
    cs.p95_response_s = stream.P95();
    cs.p99_response_s = stream.P99();
    result.per_class.push_back(cs);
  }
  return result;
}

}  // namespace wtpgsched
