#ifndef WTPG_SCHED_METRICS_TIMELINE_H_
#define WTPG_SCHED_METRICS_TIMELINE_H_

#include <string>
#include <vector>

#include "sim/time.h"
#include "util/status.h"

namespace wtpgsched {

// Time-series samples of system state, recorded at a fixed period during a
// run (opt-in via SimConfig::timeline_sample_ms). Useful for seeing
// saturation onset, thrashing, and admission stalls that aggregate numbers
// hide.
class TimelineRecorder {
 public:
  struct Sample {
    SimTime time = 0;
    uint64_t in_flight = 0;        // Arrived, not yet committed.
    uint64_t active = 0;           // Admitted by the scheduler.
    uint64_t parked = 0;           // Blocked + delayed + admission-waiting.
    double cn_queue = 0.0;         // Control-node queue length.
    double dpn_backlog_objects = 0.0;  // Total scan backlog.
    uint64_t completions = 0;      // Cumulative commits.
  };

  void Record(Sample sample) { samples_.push_back(sample); }

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  // Largest in-flight population seen.
  uint64_t PeakInFlight() const;

  // Writes "time_s,in_flight,active,parked,cn_queue,dpn_backlog,completions".
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_METRICS_TIMELINE_H_
