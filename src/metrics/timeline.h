#ifndef WTPG_SCHED_METRICS_TIMELINE_H_
#define WTPG_SCHED_METRICS_TIMELINE_H_

#include <cstdint>
#include <string>

#include "sim/time.h"
#include "telemetry/gauge_registry.h"
#include "util/status.h"

namespace wtpgsched {

// Legacy-schema view over the telemetry store: the seven-field system-state
// timeline (opt-in via SimConfig::timeline_sample_ms) is now just six of
// the machine's registered gauges, sampled by the telemetry subsystem; this
// view resolves those columns by name and keeps the historical CSV schema
// byte-compatible. Useful for seeing saturation onset, thrashing, and
// admission stalls that aggregate numbers hide.
class TimelineRecorder {
 public:
  // The gauge columns the legacy schema maps onto.
  static constexpr const char* kInFlightGauge = "machine.in_flight";
  static constexpr const char* kActiveGauge = "sched.active";
  static constexpr const char* kParkedGauge = "machine.parked";
  static constexpr const char* kCnQueueGauge = "cn.queue";
  static constexpr const char* kBacklogGauge = "dpn.backlog_objects";
  static constexpr const char* kCompletionsGauge = "machine.commits";

  // Binds the view to a sealed store, resolving the legacy columns by
  // gauge name. A column the store lacks reads as zero.
  void Attach(const TelemetryStore* store);

  bool attached() const { return store_ != nullptr; }
  size_t size() const { return store_ == nullptr ? 0 : store_->size(); }
  bool empty() const { return size() == 0; }

  // Per-row field accessors (row < size(), oldest first).
  SimTime time(size_t row) const { return store_->time(row); }
  uint64_t in_flight(size_t row) const { return Count(row, in_flight_col_); }
  uint64_t active(size_t row) const { return Count(row, active_col_); }
  uint64_t parked(size_t row) const { return Count(row, parked_col_); }
  double cn_queue(size_t row) const { return Value(row, cn_queue_col_); }
  double dpn_backlog_objects(size_t row) const {
    return Value(row, backlog_col_);
  }
  uint64_t completions(size_t row) const {
    return Count(row, completions_col_);
  }

  // Largest in-flight population seen.
  uint64_t PeakInFlight() const;

  // Writes "time_s,in_flight,active,parked,cn_queue,dpn_backlog,completions".
  Status WriteCsv(const std::string& path) const;

 private:
  double Value(size_t row, int col) const {
    return col < 0 ? 0.0 : store_->value(row, static_cast<size_t>(col));
  }
  uint64_t Count(size_t row, int col) const {
    return static_cast<uint64_t>(Value(row, col));
  }

  const TelemetryStore* store_ = nullptr;
  int in_flight_col_ = -1;
  int active_col_ = -1;
  int parked_col_ = -1;
  int cn_queue_col_ = -1;
  int backlog_col_ = -1;
  int completions_col_ = -1;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_METRICS_TIMELINE_H_
