#ifndef WTPG_SCHED_METRICS_STATS_H_
#define WTPG_SCHED_METRICS_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "metrics/counters.h"
#include "metrics/quantile_sketch.h"
#include "model/transaction.h"
#include "sim/time.h"
#include "util/histogram.h"

namespace wtpgsched {

// Tail-latency observability options (config.run.tail_metrics /
// config.run.tail_sketch). Both default off, which keeps RunStats JSON —
// and therefore the kernel-invariance goldens — byte-identical to the
// pre-tail-metrics output.
struct TailOptions {
  // Surface p50/p99 and the per-class breakdown in ToJson output.
  bool tail_metrics = false;
  // Replace exact sample retention with the O(1)-state P² sketch: required
  // for long-horizon open-system runs where retaining every response time
  // grows without bound. Quantiles become approximations (see
  // metrics/quantile_sketch.h); the exact Histogram path remains the
  // differential-test oracle.
  bool sketch = false;
};

// Aggregate results of one simulation run (the paper's three metrics —
// mean response time, throughput, and the ingredients of response-time
// speedup — plus diagnostics).
struct RunStats {
  uint64_t arrivals = 0;
  uint64_t completions = 0;           // All committed transactions.
  uint64_t completions_measured = 0;  // Committed inside the window.
  double mean_response_s = 0.0;       // Over the measurement window.
  double median_response_s = 0.0;
  double p95_response_s = 0.0;
  double p99_response_s = 0.0;
  double throughput_tps = 0.0;  // completions_measured / window length.
  uint64_t restarts = 0;        // OPT validation failures.
  uint64_t blocked = 0;         // Lock requests blocked.
  uint64_t delayed = 0;         // Requests delayed by scheduling strategy.
  uint64_t start_rejections = 0;  // Admission refusals (GOW chain test etc).
  double cn_utilization = 0.0;
  double mean_dpn_utilization = 0.0;
  double max_dpn_utilization = 0.0;
  double sim_seconds = 0.0;     // Total simulated horizon.
  uint64_t in_flight_at_end = 0;  // Transactions not finished at horizon.

  // Tail-metrics mode of the run (copied from TailOptions): gates the
  // extra JSON fields below so default-config output stays byte-identical.
  bool tail_metrics = false;
  bool sketch_quantiles = false;

  // Full counter-registry contents, in registration order. The first four
  // ("restarts", "blocked", "delayed", "start_rejections") mirror the legacy
  // fields above; the rest are scheduler-specific ("low.deadlock_delays")
  // and trace counters ("trace.commit"), present only when non-empty.
  std::vector<std::pair<std::string, uint64_t>> counters;

  // One-line JSON object with every field (tooling output). Legacy field
  // names and order are preserved; when tail_metrics is set, p50/p99 and
  // flat per-class keys ("class0.p99_s") are appended before the non-legacy
  // counters.
  std::string ToJson() const;

  // Per-workload-class breakdown (mixed workloads; one entry for
  // single-pattern runs). Indexed positions match the mix order.
  struct ClassStats {
    int workload_class = 0;
    uint64_t completions = 0;  // In the measurement window.
    double mean_response_s = 0.0;
    double median_response_s = 0.0;
    double p95_response_s = 0.0;
    double p99_response_s = 0.0;
  };
  std::vector<ClassStats> per_class;
};

// Collects per-transaction outcomes during a run. The measurement window is
// [warmup, horizon]: completions stamped before warmup are excluded from
// response-time and throughput figures (the paper uses warmup 0).
class StatsCollector {
 public:
  StatsCollector(SimTime warmup, SimTime horizon, TailOptions tail = {});

  void RecordArrival() { ++stats_.arrivals; }
  void RecordBlocked() { ++*blocked_; }
  void RecordDelayed() { ++*delayed_; }
  void RecordStartRejection() { ++*start_rejections_; }
  void RecordRestart() { ++*restarts_; }

  void RecordCompletion(const Transaction& txn, SimTime now);

  uint64_t completions_so_far() const { return stats_.completions; }

  // Fills in derived figures; utilizations/in-flight are supplied by the
  // machine.
  RunStats Finalize(double cn_utilization, double mean_dpn_utilization,
                    double max_dpn_utilization, uint64_t in_flight) const;

  // Exact retained samples; empty (and not maintained) in sketch mode.
  const Histogram& response_times() const { return window_responses_.exact; }

  // Shared name -> count registry. The collector's own counters live here
  // (under the legacy JSON field names); schedulers and the trace recorder
  // add theirs before Finalize via Scheduler::ExportCounters /
  // TraceRecorder::ExportCounters.
  CounterRegistry& counters() { return counters_; }
  const CounterRegistry& counters() const { return counters_; }

 private:
  // One response-time stream in either representation: the exact Histogram
  // (short runs; differential oracle) or the O(1)-state sketch (long
  // horizons). Exactly one side is fed, chosen once per run.
  struct Stream {
    bool use_sketch = false;
    Histogram exact;
    QuantileSketch sketch;

    void Add(double v) { use_sketch ? sketch.Add(v) : exact.Add(v); }
    size_t Count() const {
      return use_sketch ? sketch.count() : exact.count();
    }
    double Mean() const { return use_sketch ? sketch.Mean() : exact.Mean(); }
    double P50() const {
      return use_sketch ? sketch.P50() : exact.Percentile(50.0);
    }
    double P95() const {
      return use_sketch ? sketch.P95() : exact.Percentile(95.0);
    }
    double P99() const {
      return use_sketch ? sketch.P99() : exact.Percentile(99.0);
    }
  };

  SimTime warmup_;
  SimTime horizon_;
  TailOptions tail_;
  RunStats stats_;
  CounterRegistry counters_;
  // Cached registry slots for the hot-path Record* calls (deque-backed, so
  // the references stay valid as other counters register).
  uint64_t* restarts_;
  uint64_t* blocked_;
  uint64_t* delayed_;
  uint64_t* start_rejections_;
  Stream window_responses_;  // Seconds; completions in window only.
  std::map<int, Stream> class_responses_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_METRICS_STATS_H_
