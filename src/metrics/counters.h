#ifndef WTPG_SCHED_METRICS_COUNTERS_H_
#define WTPG_SCHED_METRICS_COUNTERS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wtpgsched {

// Small name -> uint64 counter registry. One registry per run collects every
// per-event count — the machine's (blocked/delayed/...), the scheduler's
// (low.deadlock_delays, gow.chain_rejections, ...) and the trace
// recorder's — so a new counter needs exactly one Counter() call site:
// RunStats::ToJson() and the trace exporter both iterate the registry
// instead of naming fields.
//
// Entries live in a deque, so the reference returned by Counter() stays
// valid for the registry's lifetime — hot paths resolve their counter once
// and increment through the reference.
class CounterRegistry {
 public:
  // The counter named `name`, created at zero on first use.
  uint64_t& Counter(const std::string& name);

  // Value of `name`, or 0 when it was never created.
  uint64_t Get(const std::string& name) const;

  // All counters in creation order.
  std::vector<std::pair<std::string, uint64_t>> Entries() const;

  // Adds `entries` (e.g. another run's RunStats::counters snapshot) into
  // this registry. New names register in the order they appear, so merging
  // replica snapshots in submission order yields the same name order for
  // any worker count — the parallel harness relies on this for bit-identical
  // aggregate output (see driver/sim_run.h).
  void Merge(const std::vector<std::pair<std::string, uint64_t>>& entries);

  size_t size() const { return entries_.size(); }

 private:
  std::deque<std::pair<std::string, uint64_t>> entries_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_METRICS_COUNTERS_H_
