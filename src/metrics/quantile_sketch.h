#ifndef WTPG_SCHED_METRICS_QUANTILE_SKETCH_H_
#define WTPG_SCHED_METRICS_QUANTILE_SKETCH_H_

#include <cstddef>

namespace wtpgsched {

// P² single-quantile estimator (Jain & Chlamtac, CACM 1985): tracks one
// target quantile of a stream with five markers — fixed O(1) state, no
// sample retention. While fewer than five observations have arrived the
// estimate is exact, using the same interpolated-rank formula as
// Histogram::Percentile so short streams agree byte-for-byte with the
// exact path.
//
// Accuracy: for smooth unimodal distributions the estimate is typically
// within a few percent of the exact order statistic once a few hundred
// samples have arrived; it is an approximation, not an order statistic —
// the differential tests in tests/metrics/ pin the observed error against
// the exact Histogram oracle.
class P2Quantile {
 public:
  // `quantile` in (0, 1), e.g. 0.99 for p99.
  explicit P2Quantile(double quantile);

  void Add(double value);

  // Current estimate; 0 for an empty stream.
  double Value() const;

  size_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double q_;
  // Marker invariant (count >= 5): heights ascend, positions are the
  // 1-based ranks of the markers within the observed stream.
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
  size_t count_ = 0;
};

// Bounded-memory replacement for Histogram on long-horizon response-time
// streams: count/sum/min/max, Welford mean/variance (numerically stable —
// no sum-of-squares cancellation), and P² markers for p50/p95/p99.
// State is O(1) per stream regardless of run length.
class QuantileSketch {
 public:
  QuantileSketch();

  void Add(double value);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  // Population standard deviation via Welford's recurrence.
  double StdDev() const;

  double P50() const { return p50_.Value(); }
  double P95() const { return p95_.Value(); }
  double P99() const { return p99_.Value(); }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double welford_mean_ = 0.0;
  double welford_m2_ = 0.0;
  P2Quantile p50_;
  P2Quantile p95_;
  P2Quantile p99_;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_METRICS_QUANTILE_SKETCH_H_
