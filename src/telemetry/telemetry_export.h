#ifndef WTPG_SCHED_TELEMETRY_TELEMETRY_EXPORT_H_
#define WTPG_SCHED_TELEMETRY_TELEMETRY_EXPORT_H_

#include <string>
#include <vector>

#include "telemetry/gauge_registry.h"
#include "trace/trace_export.h"
#include "util/status.h"

namespace wtpgsched {

// Converts the sampled store into per-series gauge tracks for the trace
// exporters (JSONL gauge lines, Chrome ph:"C" counter tracks).
std::vector<GaugeTrack> ToGaugeTracks(const TelemetryStore& store);

// Writes the store as a wide CSV: header "time_s,<gauge names...>", one row
// per sample, times in seconds at microsecond precision.
Status WriteTelemetryCsv(const TelemetryStore& store, const std::string& path);

// Writes the store as JSONL: a header object naming the columns, then one
// {"t":<us>,"v":[...]} object per sample.
Status WriteTelemetryJsonl(const TelemetryStore& store,
                           const std::string& path);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TELEMETRY_TELEMETRY_EXPORT_H_
