#ifndef WTPG_SCHED_TELEMETRY_TELEMETRY_H_
#define WTPG_SCHED_TELEMETRY_TELEMETRY_H_

#include <memory>
#include <vector>

#include "metrics/counters.h"
#include "sim/time.h"
#include "telemetry/detectors.h"
#include "telemetry/gauge_registry.h"

namespace wtpgsched {

// The run-health telemetry bundle: a gauge registry the subsystems
// populate during machine construction, a columnar ring store filled at a
// fixed sim-time sampling period, and online regime detectors whose flags
// are appended to every row as derived health.* columns.
//
// Lifecycle: construct → Register() gauges → Seal() → Sample() per period.
// Seal() freezes the gauge set (column order = registration order), adds
// the derived columns, and resolves the detector inputs by gauge name.
// All of this is opt-in: a machine without telemetry never constructs one,
// so the disabled path costs nothing per event.
class Telemetry {
 public:
  // `period` is the sampling period (sim time, > 0); `capacity` bounds the
  // ring store rows.
  Telemetry(SimTime period, size_t capacity,
            const DetectorConfig& detector_config = DetectorConfig());

  SimTime period() const { return period_; }

  // Registration surface, valid until Seal().
  GaugeRegistry& gauges() { return gauges_; }

  // Freezes the gauge set and builds the store. Idempotent is NOT needed —
  // call exactly once, after all Register() calls.
  void Seal();
  bool sealed() const { return store_ != nullptr; }

  // Evaluates every probe, feeds the detectors, appends one row.
  void Sample(SimTime now);

  const TelemetryStore& store() const { return *store_; }
  const HealthDetectors& detectors() const { return detectors_; }

  // Registers the six health.* counters (three 0/1 verdicts, three flagged-
  // window counts) in a fixed order, so runs with telemetry enabled expose
  // an identical counter set regardless of what the detectors saw.
  void ExportHealthCounters(CounterRegistry* counters) const;

  // Gauge names whose series feed the detectors. Registering them is the
  // machine's job; a missing name simply leaves that detector input zero.
  static constexpr const char* kActiveGauge = "sched.active";
  static constexpr const char* kCommitsGauge = "machine.commits";
  static constexpr const char* kAbortsGauge = "machine.restarts";
  static constexpr const char* kMaxWaitAgeGauge = "wait.max_age_s";
  static constexpr const char* kMeanWaitAgeGauge = "wait.mean_age_s";
  static constexpr const char* kWaitersGauge = "machine.parked";

 private:
  SimTime period_;
  size_t capacity_;
  GaugeRegistry gauges_;
  std::unique_ptr<TelemetryStore> store_;
  HealthDetectors detectors_;
  std::vector<double> row_;

  // Detector-input column indices into the gauge block, -1 when absent.
  int active_col_ = -1;
  int commits_col_ = -1;
  int aborts_col_ = -1;
  int max_age_col_ = -1;
  int mean_age_col_ = -1;
  int waiters_col_ = -1;

  // Previous cumulative values for the per-sample rate columns.
  double prev_commits_ = 0.0;
  double prev_aborts_ = 0.0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TELEMETRY_TELEMETRY_H_
