#include "telemetry/report_html.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>

#include "util/string_util.h"

namespace wtpgsched {

namespace {

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// Compact number for axis labels: %.4g covers counts and rates alike.
std::string AxisLabel(double v) { return Format("%.4g", v); }

constexpr int kChartW = 640;
constexpr int kChartH = 110;
constexpr int kPadLeft = 8;
constexpr int kPadRight = 8;
constexpr int kPadTop = 6;
constexpr int kPadBottom = 16;

// One gauge series as an inline SVG polyline chart with min/max/last labels.
void AppendChart(const std::string& name,
                 const std::vector<std::pair<double, double>>& points,
                 std::string* out) {
  std::vector<std::pair<double, double>> finite;
  finite.reserve(points.size());
  for (const auto& p : points) {
    if (std::isfinite(p.second)) finite.push_back(p);
  }
  *out += "<div class=\"chart\"><div class=\"chart-name\">";
  *out += HtmlEscape(name);
  if (finite.empty()) {
    *out += "</div><div class=\"chart-empty\">no finite samples</div></div>\n";
    return;
  }
  double t0 = finite.front().first, t1 = finite.back().first;
  double lo = finite.front().second, hi = lo;
  for (const auto& p : finite) {
    lo = std::min(lo, p.second);
    hi = std::max(hi, p.second);
  }
  *out += StrCat(" <span class=\"chart-stats\">min ", AxisLabel(lo), " · max ",
                 AxisLabel(hi), " · last ", AxisLabel(finite.back().second),
                 "</span></div>");
  const double tspan = t1 > t0 ? t1 - t0 : 1.0;
  const double vspan = hi > lo ? hi - lo : 1.0;
  const double w = kChartW - kPadLeft - kPadRight;
  const double h = kChartH - kPadTop - kPadBottom;
  *out += StrCat("<svg viewBox=\"0 0 ", kChartW, " ", kChartH, "\" width=\"",
                 kChartW, "\" height=\"", kChartH, "\">");
  *out += StrCat("<rect x=\"0\" y=\"0\" width=\"", kChartW, "\" height=\"",
                 kChartH, "\" class=\"plot\"/>");
  std::string poly;
  for (const auto& [t, v] : finite) {
    const double x = kPadLeft + (t - t0) / tspan * w;
    const double y = kPadTop + (1.0 - (v - lo) / vspan) * h;
    if (!poly.empty()) poly += ' ';
    poly += StrCat(Format("%.1f", x), ',', Format("%.1f", y));
  }
  if (finite.size() == 1) {
    *out += StrCat("<circle cx=\"", Format("%.1f", kPadLeft + w / 2),
                   "\" cy=\"", Format("%.1f", kPadTop + h / 2),
                   "\" r=\"2\" class=\"line-dot\"/>");
  } else {
    *out += StrCat("<polyline points=\"", poly, "\" class=\"line\"/>");
  }
  *out += StrCat("<text x=\"", kPadLeft, "\" y=\"", kChartH - 4,
                 "\" class=\"axis\">", AxisLabel(t0), "s</text>");
  *out += StrCat("<text x=\"", kChartW - kPadRight,
                 "\" y=\"", kChartH - 4,
                 "\" class=\"axis\" text-anchor=\"end\">", AxisLabel(t1),
                 "s</text>");
  *out += "</svg></div>\n";
}

uint64_t CounterOr0(const std::vector<std::pair<std::string, uint64_t>>& kv,
                    const std::string& name) {
  for (const auto& [k, v] : kv) {
    if (k == name) return v;
  }
  return 0;
}

bool HasCounter(const std::vector<std::pair<std::string, uint64_t>>& kv,
                const std::string& name) {
  for (const auto& [k, v] : kv) {
    (void)v;
    if (k == name) return true;
  }
  return false;
}

void AppendVerdicts(const ReportRun& run, std::string* out) {
  struct Verdict {
    const char* counter;
    const char* windows_counter;
    const char* label;
  };
  static constexpr Verdict kVerdicts[] = {
      {"health.thrashing", "health.thrashing_windows", "thrashing"},
      {"health.convoy", "health.convoy_windows", "convoy"},
      {"health.restart_storm", "health.storm_windows", "restart storm"},
  };
  *out += "<div class=\"verdicts\">";
  bool any = false;
  for (const Verdict& v : kVerdicts) {
    if (!HasCounter(run.counters, v.counter)) continue;
    any = true;
    const bool fired = CounterOr0(run.counters, v.counter) != 0;
    const uint64_t windows = CounterOr0(run.counters, v.windows_counter);
    *out += StrCat("<span class=\"badge ", fired ? "bad" : "ok", "\">",
                   v.label, ": ", fired ? "DETECTED" : "ok", " (", windows,
                   " windows)</span>");
  }
  if (!any) *out += "<span class=\"badge\">no health counters in trace</span>";
  *out += "</div>\n";
}

// Group gauges by name prefix (the text before the first '.') so the report
// collapses per subsystem: machine.*, dpn0.*, health.*, ...
std::string GaugeGroup(const std::string& name) {
  const size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

}  // namespace

std::string RenderRunReport(const std::vector<ReportRun>& runs) {
  std::string html;
  html +=
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>wtpg run-health report</title>\n"
      "<style>\n"
      "body{font-family:system-ui,sans-serif;margin:2em;max-width:720px}\n"
      "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.6em}\n"
      ".verdicts{margin:0.6em 0}\n"
      ".badge{display:inline-block;padding:2px 8px;margin-right:6px;"
      "border-radius:10px;background:#eee;font-size:0.85em}\n"
      ".badge.ok{background:#d7f0d7}.badge.bad{background:#f6c6c6}\n"
      "details{margin:0.4em 0}summary{cursor:pointer;font-weight:600}\n"
      ".chart{margin:0.5em 0}\n"
      ".chart-name{font-size:0.85em;font-weight:600}\n"
      ".chart-stats{font-weight:400;color:#666}\n"
      ".chart-empty{color:#999;font-size:0.8em}\n"
      ".plot{fill:#fafafa;stroke:#ddd}\n"
      ".line{fill:none;stroke:#2b6cb0;stroke-width:1.2}\n"
      ".line-dot{fill:#2b6cb0}\n"
      ".axis{font-size:9px;fill:#888}\n"
      "</style></head><body>\n"
      "<h1>wtpg run-health report</h1>\n";
  for (const ReportRun& run : runs) {
    html += StrCat("<h2>", HtmlEscape(run.title), "</h2>\n");
    AppendVerdicts(run, &html);
    // Group charts by prefix; health and rate groups open by default since
    // they carry the verdict context.
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t g = 0; g < run.gauge_names.size(); ++g) {
      groups[GaugeGroup(run.gauge_names[g])].push_back(g);
    }
    if (groups.empty()) {
      html += "<p class=\"chart-empty\">no gauge series in this run</p>\n";
    }
    for (const auto& [group, indices] : groups) {
      const bool open = group == "health" || group == "rate";
      html += StrCat("<details", open ? " open" : "", "><summary>",
                     HtmlEscape(group), " (", indices.size(),
                     ")</summary>\n");
      for (size_t g : indices) {
        AppendChart(run.gauge_names[g], run.series[g], &html);
      }
      html += "</details>\n";
    }
  }
  html += "</body></html>\n";
  return html;
}

Status WriteRunReport(const std::vector<ReportRun>& runs,
                      const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal(StrCat("cannot open ", path, " for writing"));
  }
  out << RenderRunReport(runs);
  out.flush();
  if (!out.good()) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

}  // namespace wtpgsched
