#include "telemetry/detectors.h"

namespace wtpgsched {

HealthFlags HealthDetectors::Update(const DetectorInput& in) {
  const size_t w = config_.window;
  history_.push_back(in);
  if (history_.size() > 2 * w) history_.pop_front();

  HealthFlags flags;

  // Convoy/starvation is instantaneous: the oldest waiter has been stuck
  // far longer than the average waiter, i.e. the queue drains around it.
  if (in.waiters >= config_.convoy_min_waiters &&
      in.max_wait_age_s >= config_.convoy_min_age_s &&
      in.mean_wait_age_s > 0.0 &&
      in.max_wait_age_s >= config_.convoy_ratio * in.mean_wait_age_s) {
    flags.convoy = 1.0;
    ++convoy_windows_;
  }

  if (history_.size() < 2 * w) return flags;

  // Window-over-window comparison: [0, w) is the previous window,
  // [w, 2w) the current one.
  double prev_active = 0.0, cur_active = 0.0;
  for (size_t i = 0; i < w; ++i) {
    prev_active += history_[i].active;
    cur_active += history_[w + i].active;
  }
  prev_active /= static_cast<double>(w);
  cur_active /= static_cast<double>(w);

  // Cumulative counters: per-window deltas.
  const double prev_commits = history_[w - 1].commits - history_[0].commits;
  const double cur_commits =
      history_[2 * w - 1].commits - history_[w - 1].commits;
  const double cur_aborts =
      history_[2 * w - 1].aborts - history_[w - 1].aborts;

  // Thrashing: concurrency up, throughput down — past the DC knee.
  if (prev_commits > 0.0 && prev_active > 0.0 &&
      cur_active >= config_.thrash_mpl_rise * prev_active &&
      cur_commits <= config_.thrash_tput_drop * prev_commits) {
    flags.thrashing = 1.0;
    ++thrashing_windows_;
  }

  // Restart storm: the system aborts more than it commits.
  if (cur_aborts >= config_.storm_min_aborts && cur_aborts > cur_commits) {
    flags.restart_storm = 1.0;
    ++storm_windows_;
  }

  return flags;
}

}  // namespace wtpgsched
