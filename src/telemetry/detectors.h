#ifndef WTPG_SCHED_TELEMETRY_DETECTORS_H_
#define WTPG_SCHED_TELEMETRY_DETECTORS_H_

#include <cstddef>
#include <cstdint>
#include <deque>

namespace wtpgsched {

// Tuning knobs for the online regime detectors. Thresholds are
// deliberately conservative: a single noisy sample must not flip a
// verdict, so each detector compares a sliding window against the
// previous window and a run-level verdict requires `min_windows`
// flagged windows over the whole run.
struct DetectorConfig {
  // Samples per comparison window. Detectors need 2*window samples
  // before they emit anything.
  size_t window = 8;
  // Thrashing (the paper's data-contention knee gone unstable): mean
  // active MPL rose by >= this factor window-over-window...
  double thrash_mpl_rise = 1.10;
  // ...while the commit rate fell to <= this fraction of the previous
  // window's rate (which must have been non-zero).
  double thrash_tput_drop = 0.90;
  // Convoy/starvation: the oldest waiter's age exceeds the mean waiter
  // age by this ratio, with at least `convoy_min_waiters` transactions
  // waiting and the oldest at least `convoy_min_age_s` old.
  double convoy_ratio = 4.0;
  double convoy_min_age_s = 1.0;
  double convoy_min_waiters = 4.0;
  // Restart storm: aborts (injected + conflict restarts) outnumber
  // commits over the window, with at least this many aborts so an idle
  // tail does not trigger.
  double storm_min_aborts = 4.0;
  // Windows that must flag before the per-run verdict turns true.
  size_t min_windows = 3;
};

// One sampled observation, fed in sim-time order.
struct DetectorInput {
  double active = 0.0;          // transactions currently executing
  double commits = 0.0;         // cumulative commit count
  double aborts = 0.0;          // cumulative aborts + restarts
  double max_wait_age_s = 0.0;  // oldest parked/waiting txn age
  double mean_wait_age_s = 0.0; // mean parked/waiting txn age
  double waiters = 0.0;         // parked/waiting txn count
};

// Per-sample detector outputs (1.0 = regime currently flagged), exported
// as the health.* gauge columns.
struct HealthFlags {
  double thrashing = 0.0;
  double convoy = 0.0;
  double restart_storm = 0.0;
};

// Online run-health detectors over the sampled series. Update() is O(1)
// amortized per sample (a bounded deque of the last 2*window inputs).
class HealthDetectors {
 public:
  explicit HealthDetectors(const DetectorConfig& config = DetectorConfig())
      : config_(config) {}

  // Feeds one sample; returns the current per-regime flags.
  HealthFlags Update(const DetectorInput& in);

  // Count of flagged windows per regime (every sample whose window
  // comparison flags counts once).
  uint64_t thrashing_windows() const { return thrashing_windows_; }
  uint64_t convoy_windows() const { return convoy_windows_; }
  uint64_t storm_windows() const { return storm_windows_; }

  // Per-run verdicts: the regime was flagged persistently.
  bool thrashing_verdict() const {
    return thrashing_windows_ >= config_.min_windows;
  }
  bool convoy_verdict() const { return convoy_windows_ >= config_.min_windows; }
  bool storm_verdict() const { return storm_windows_ >= config_.min_windows; }

  const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
  std::deque<DetectorInput> history_;  // at most 2 * config_.window entries
  uint64_t thrashing_windows_ = 0;
  uint64_t convoy_windows_ = 0;
  uint64_t storm_windows_ = 0;
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TELEMETRY_DETECTORS_H_
