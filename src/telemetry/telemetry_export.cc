#include "telemetry/telemetry_export.h"

#include <cmath>
#include <fstream>

#include "util/csv.h"
#include "util/json_writer.h"
#include "util/string_util.h"

namespace wtpgsched {

namespace {
// JSON numbers cannot be non-finite; emit null for them (matches
// JsonWriter's double handling).
std::string JsonGaugeValue(double v) {
  return std::isfinite(v) ? Format("%.9g", v) : std::string("null");
}
}  // namespace

std::vector<GaugeTrack> ToGaugeTracks(const TelemetryStore& store) {
  std::vector<GaugeTrack> tracks(store.num_columns());
  for (size_t col = 0; col < store.num_columns(); ++col) {
    tracks[col].name = store.name(col);
    tracks[col].points.reserve(store.size());
  }
  for (size_t row = 0; row < store.size(); ++row) {
    const SimTime t = store.time(row);
    for (size_t col = 0; col < store.num_columns(); ++col) {
      tracks[col].points.emplace_back(t, store.value(row, col));
    }
  }
  return tracks;
}

Status WriteTelemetryCsv(const TelemetryStore& store,
                         const std::string& path) {
  CsvWriter writer;
  Status status = writer.Open(path);
  if (!status.ok()) return status;
  std::vector<std::string> header;
  header.reserve(store.num_columns() + 1);
  header.push_back("time_s");
  for (const std::string& name : store.names()) header.push_back(name);
  writer.WriteHeader(header);
  std::vector<std::string> row(store.num_columns() + 1);
  for (size_t r = 0; r < store.size(); ++r) {
    row[0] = FormatDouble(TimeToSeconds(store.time(r)), 6);
    for (size_t col = 0; col < store.num_columns(); ++col) {
      row[col + 1] = Format("%.9g", store.value(r, col));
    }
    writer.WriteRow(row);
  }
  return writer.Close();
}

Status WriteTelemetryJsonl(const TelemetryStore& store,
                           const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal(StrCat("cannot open ", path, " for writing"));
  }
  std::string names = "[";
  for (size_t col = 0; col < store.num_columns(); ++col) {
    if (col > 0) names += ",";
    names += StrCat("\"", JsonWriter::Escape(store.name(col)), "\"");
  }
  names += "]";
  JsonWriter header;
  header.Add("schema", "wtpg-telemetry/1")
      .Add("rows", static_cast<uint64_t>(store.size()))
      .Add("dropped", store.dropped())
      .Add("time_unit", "us");
  header.AddRaw("columns", names);
  out << header.ToString() << '\n';
  for (size_t r = 0; r < store.size(); ++r) {
    std::string values = "[";
    for (size_t col = 0; col < store.num_columns(); ++col) {
      if (col > 0) values += ",";
      values += JsonGaugeValue(store.value(r, col));
    }
    values += "]";
    JsonWriter line;
    line.Add("t", static_cast<int64_t>(store.time(r)));
    line.AddRaw("v", values);
    out << line.ToString() << '\n';
  }
  out.flush();
  if (!out.good()) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

}  // namespace wtpgsched
