#include "telemetry/gauge_registry.h"

#include <cassert>
#include <utility>

namespace wtpgsched {

void GaugeRegistry::Register(std::string name, Probe probe) {
  for (const std::string& existing : names_) {
    (void)existing;
    assert(existing != name && "duplicate gauge name");
  }
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
}

TelemetryStore::TelemetryStore(std::vector<std::string> names, size_t capacity)
    : names_(std::move(names)), capacity_(capacity == 0 ? 1 : capacity) {
  for (size_t i = 0; i < names_.size(); ++i) index_.emplace(names_[i], i);
  times_.resize(capacity_);
  values_.resize(capacity_ * names_.size());
}

int TelemetryStore::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

void TelemetryStore::Append(SimTime time, const std::vector<double>& row) {
  assert(row.size() == names_.size());
  size_t phys;
  if (size_ < capacity_) {
    phys = (head_ + size_) % capacity_;
    ++size_;
  } else {
    phys = head_;
    head_ = (head_ + 1) % capacity_;
  }
  times_[phys] = time;
  for (size_t col = 0; col < row.size(); ++col) {
    values_[col * capacity_ + phys] = row[col];
  }
  ++total_rows_;
}

}  // namespace wtpgsched
