#ifndef WTPG_SCHED_TELEMETRY_GAUGE_REGISTRY_H_
#define WTPG_SCHED_TELEMETRY_GAUGE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace wtpgsched {

// Named read-only probes into live simulation state. The machine, lock
// table, schedulers and fault layer register gauges before the run; the
// telemetry sampler evaluates every probe at a fixed sim-time period and
// appends one row to the TelemetryStore below. Registration order is the
// column order everywhere downstream (CSV, JSONL, Chrome counter tracks),
// so it must be deterministic for a given configuration — register from
// constructors, never from event handlers.
class GaugeRegistry {
 public:
  using Probe = std::function<double()>;

  // Registers `probe` under `name`. Names must be unique; duplicate
  // registration is a programming error (checked).
  void Register(std::string name, Probe probe);

  size_t size() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  // Evaluates gauge `i` against live state.
  double Sample(size_t i) const { return probes_[i](); }

 private:
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
};

// Bounded columnar ring storage for sampled gauge rows: one shared time
// column plus one value column per series, each a flat array indexed
// modulo the capacity. When the ring is full the oldest row is overwritten
// (dropped() counts the overwritten rows), so a long run keeps the most
// recent window at O(capacity * columns) memory.
class TelemetryStore {
 public:
  TelemetryStore(std::vector<std::string> names, size_t capacity);

  size_t num_columns() const { return names_.size(); }
  const std::string& name(size_t col) const { return names_[col]; }
  const std::vector<std::string>& names() const { return names_; }

  // Column index of `name`, or -1 when absent.
  int ColumnIndex(const std::string& name) const;

  // Appends one row; `row` must hold num_columns() values.
  void Append(SimTime time, const std::vector<double>& row);

  // Rows currently held (<= capacity), oldest first.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  // Rows appended over the whole run / rows overwritten by the ring.
  uint64_t total_rows() const { return total_rows_; }
  uint64_t dropped() const { return total_rows_ - size_; }

  SimTime time(size_t row) const { return times_[Physical(row)]; }
  double value(size_t row, size_t col) const {
    return values_[col * capacity_ + Physical(row)];
  }

 private:
  size_t Physical(size_t row) const { return (head_ + row) % capacity_; }

  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> index_;
  size_t capacity_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t total_rows_ = 0;
  std::vector<SimTime> times_;   // capacity entries.
  std::vector<double> values_;   // capacity * columns, column-major.
};

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TELEMETRY_GAUGE_REGISTRY_H_
