#ifndef WTPG_SCHED_TELEMETRY_REPORT_HTML_H_
#define WTPG_SCHED_TELEMETRY_REPORT_HTML_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace wtpgsched {

// One run's worth of report input: the sampled gauge series (typically from
// a parsed trace's gauge lines, see trace_reader.h) plus the footer counter
// snapshot the health verdicts are read from.
struct ReportRun {
  std::string title;      // Heading, e.g. "LOW seed=42".
  std::string scheduler;  // From the trace meta.
  std::vector<std::string> gauge_names;
  // series[g] holds (time_seconds, value) points for gauge_names[g].
  std::vector<std::vector<std::pair<double, double>>> series;
  std::vector<std::pair<std::string, uint64_t>> counters;
};

// Renders a self-contained HTML document (inline CSS + SVG, no external
// resources): per run, health verdict badges from the health.* counters and
// one time-series chart per gauge, grouped by gauge-name prefix.
std::string RenderRunReport(const std::vector<ReportRun>& runs);

// RenderRunReport + write to `path`.
Status WriteRunReport(const std::vector<ReportRun>& runs,
                      const std::string& path);

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TELEMETRY_REPORT_HTML_H_
