#include "telemetry/telemetry.h"

#include <cassert>

namespace wtpgsched {

namespace {
int FindGauge(const GaugeRegistry& gauges, const char* name) {
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (gauges.name(i) == name) return static_cast<int>(i);
  }
  return -1;
}
}  // namespace

Telemetry::Telemetry(SimTime period, size_t capacity,
                     const DetectorConfig& detector_config)
    : period_(period), capacity_(capacity), detectors_(detector_config) {}

void Telemetry::Seal() {
  assert(!sealed());
  active_col_ = FindGauge(gauges_, kActiveGauge);
  commits_col_ = FindGauge(gauges_, kCommitsGauge);
  aborts_col_ = FindGauge(gauges_, kAbortsGauge);
  max_age_col_ = FindGauge(gauges_, kMaxWaitAgeGauge);
  mean_age_col_ = FindGauge(gauges_, kMeanWaitAgeGauge);
  waiters_col_ = FindGauge(gauges_, kWaitersGauge);

  std::vector<std::string> columns = gauges_.names();
  columns.push_back("rate.commit_per_s");
  columns.push_back("rate.abort_per_s");
  columns.push_back("health.thrashing");
  columns.push_back("health.convoy");
  columns.push_back("health.restart_storm");
  store_ = std::make_unique<TelemetryStore>(std::move(columns), capacity_);
  row_.resize(store_->num_columns());
}

void Telemetry::Sample(SimTime now) {
  assert(sealed());
  const size_t n = gauges_.size();
  for (size_t i = 0; i < n; ++i) row_[i] = gauges_.Sample(i);

  auto at = [&](int col) { return col >= 0 ? row_[col] : 0.0; };
  const double commits = at(commits_col_);
  const double aborts = at(aborts_col_);
  const double period_s = TimeToSeconds(period_);
  row_[n + 0] = period_s > 0.0 ? (commits - prev_commits_) / period_s : 0.0;
  row_[n + 1] = period_s > 0.0 ? (aborts - prev_aborts_) / period_s : 0.0;
  prev_commits_ = commits;
  prev_aborts_ = aborts;

  DetectorInput input;
  input.active = at(active_col_);
  input.commits = commits;
  input.aborts = aborts;
  input.max_wait_age_s = at(max_age_col_);
  input.mean_wait_age_s = at(mean_age_col_);
  input.waiters = at(waiters_col_);
  const HealthFlags flags = detectors_.Update(input);
  row_[n + 2] = flags.thrashing;
  row_[n + 3] = flags.convoy;
  row_[n + 4] = flags.restart_storm;

  store_->Append(now, row_);
}

void Telemetry::ExportHealthCounters(CounterRegistry* counters) const {
  // Fixed registration order: the counter set and order must be identical
  // for every telemetry-enabled run so parallel-replica merges stay
  // byte-stable across --jobs values.
  counters->Counter("health.thrashing") = detectors_.thrashing_verdict();
  counters->Counter("health.convoy") = detectors_.convoy_verdict();
  counters->Counter("health.restart_storm") = detectors_.storm_verdict();
  counters->Counter("health.thrashing_windows") = detectors_.thrashing_windows();
  counters->Counter("health.convoy_windows") = detectors_.convoy_windows();
  counters->Counter("health.storm_windows") = detectors_.storm_windows();
}

}  // namespace wtpgsched
