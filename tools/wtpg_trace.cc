// wtpg-trace — analysis tool for JSONL traces recorded by wtpg_sim
// (--trace-jsonl). Subcommands:
//
//   wtpg-trace summary <trace.jsonl>
//       Per-transaction wait breakdown (admission wait vs lock wait vs
//       execution), aggregate means that reconcile with the run's
//       mean_response_s, and scheduler decision counts.
//
//   wtpg-trace check-serializable <trace.jsonl>
//       Post-hoc serialization-order check: rebuilds the conflict graph
//       from the traced data accesses and verifies acyclicity. Exits 0 when
//       serializable, 1 when a cycle is found (expected only for NODC).
//
//   wtpg-trace perfetto <trace.jsonl> <out.json>
//       Converts the trace to Chrome trace-event format, loadable in
//       Perfetto (ui.perfetto.dev) or chrome://tracing. Sampled gauge
//       series recorded with --telemetry-ms become counter tracks.
//
//   wtpg-trace report <trace.jsonl> [more.jsonl ...] <out.html>
//       Renders a self-contained HTML run-health report (inline SVG
//       time-series charts plus thrashing/convoy/restart-storm verdicts)
//       for one or more runs recorded with --telemetry-ms.

#include <algorithm>
#include <cstdio>

#include "sim/time.h"
#include "telemetry/report_html.h"
#include "trace/trace_analysis.h"
#include "trace/trace_export.h"
#include "trace/trace_reader.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace wtpgsched;

namespace {

constexpr const char* kUsage =
    "usage: wtpg-trace <summary|check-serializable|perfetto|report> "
    "<trace.jsonl> [more.jsonl ...] [out] [--top=N]\n";

int LoadTrace(const std::string& path, ParsedTrace* trace) {
  const Status status = ReadJsonlTrace(path, trace);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  if (!trace->footer_seen) {
    std::fprintf(stderr, "warning: %s has no end footer (truncated?)\n",
                 path.c_str());
  }
  return 0;
}

double Pct(double part, double whole) {
  return whole > 0.0 ? 100.0 * part / whole : 0.0;
}

int RunSummary(const std::string& path, int top) {
  ParsedTrace trace;
  if (int rc = LoadTrace(path, &trace); rc != 0) return rc;
  const TraceSummary summary = SummarizeTrace(trace.events);

  std::printf("schema             %s\n", kTraceSchemaVersion);
  std::printf("scheduler          %s\n", trace.meta.scheduler.c_str());
  std::printf("machine            %d nodes, %d files, DD=%d, seed %llu\n",
              trace.meta.num_nodes, trace.meta.num_files, trace.meta.dd,
              static_cast<unsigned long long>(trace.meta.seed));
  std::printf("events             %zu buffered (%llu dropped)\n",
              trace.events.size(),
              static_cast<unsigned long long>(trace.dropped));
  std::printf("transactions       arrived %llu, committed %llu, aborted %llu\n",
              static_cast<unsigned long long>(summary.arrived),
              static_cast<unsigned long long>(summary.committed),
              static_cast<unsigned long long>(summary.aborted));
  const double mean = summary.mean_response_s;
  std::printf("mean response      %.3f s (over %zu reconstructed txns)\n",
              mean, summary.txns.size());
  std::printf("  admission wait   %.3f s (%.1f%%)\n",
              summary.mean_admission_wait_s,
              Pct(summary.mean_admission_wait_s, mean));
  std::printf("  lock wait        %.3f s (%.1f%%)\n", summary.mean_lock_wait_s,
              Pct(summary.mean_lock_wait_s, mean));
  std::printf("  execution        %.3f s (%.1f%%)\n",
              summary.mean_execution_s, Pct(summary.mean_execution_s, mean));
  std::printf("  other (CN etc.)  %.3f s (%.1f%%)\n", summary.mean_other_s,
              Pct(summary.mean_other_s, mean));

  std::printf("event counts:\n");
  for (const auto& [name, count] : summary.event_counts) {
    std::printf("  %-18s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }

  if (top > 0 && !summary.txns.empty()) {
    std::vector<TxnBreakdown> slowest = summary.txns;
    std::sort(slowest.begin(), slowest.end(),
              [](const TxnBreakdown& a, const TxnBreakdown& b) {
                return a.response_s > b.response_s;
              });
    if (static_cast<int>(slowest.size()) > top) {
      slowest.resize(static_cast<size_t>(top));
    }
    std::printf("slowest transactions:\n");
    std::printf("  %-8s %10s %10s %10s %10s %10s %9s\n", "txn", "response",
                "admission", "lock", "exec", "other", "restarts");
    for (const TxnBreakdown& b : slowest) {
      std::printf("  T%-7lld %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs %9d\n",
                  static_cast<long long>(b.txn), b.response_s,
                  b.admission_wait_s, b.lock_wait_s, b.execution_s, b.other_s,
                  b.restarts);
    }
  }
  return 0;
}

int RunCheckSerializable(const std::string& path) {
  ParsedTrace trace;
  if (int rc = LoadTrace(path, &trace); rc != 0) return rc;
  const SerializabilityResult result = CheckTraceSerializable(trace.events);
  std::printf("serializability    %s\n", result.ToString().c_str());
  return result.serializable ? 0 : 1;
}

// Regroups a parsed trace's flat gauge-sample list into per-gauge tracks
// (sample lines are time-ordered, so each track comes out time-ordered).
std::vector<GaugeTrack> TracksFromTrace(const ParsedTrace& trace) {
  std::vector<GaugeTrack> tracks(trace.gauge_names.size());
  for (size_t g = 0; g < trace.gauge_names.size(); ++g) {
    tracks[g].name = trace.gauge_names[g];
  }
  for (const ParsedTrace::GaugeSample& sample : trace.gauge_samples) {
    tracks[static_cast<size_t>(sample.gauge)].points.emplace_back(
        sample.time, sample.value);
  }
  return tracks;
}

int RunPerfetto(const std::string& path, const std::string& out) {
  ParsedTrace trace;
  if (int rc = LoadTrace(path, &trace); rc != 0) return rc;
  const std::vector<GaugeTrack> tracks = TracksFromTrace(trace);
  const Status written =
      WriteChromeTrace(trace.events, trace.meta, out,
                       tracks.empty() ? nullptr : &tracks);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("chrome trace       %s (%zu events, %zu gauges)\n", out.c_str(),
              trace.events.size(), tracks.size());
  return 0;
}

int RunReport(const std::vector<std::string>& inputs, const std::string& out) {
  std::vector<ReportRun> runs;
  runs.reserve(inputs.size());
  for (const std::string& path : inputs) {
    ParsedTrace trace;
    if (int rc = LoadTrace(path, &trace); rc != 0) return rc;
    if (trace.gauge_names.empty()) {
      std::fprintf(stderr,
                   "warning: %s has no gauge samples (recorded without "
                   "--telemetry-ms?)\n",
                   path.c_str());
    }
    ReportRun run;
    run.title = StrCat(trace.meta.scheduler, " seed=", trace.meta.seed, " (",
                       path, ")");
    run.scheduler = trace.meta.scheduler;
    run.gauge_names = trace.gauge_names;
    run.series.resize(trace.gauge_names.size());
    for (const ParsedTrace::GaugeSample& sample : trace.gauge_samples) {
      run.series[static_cast<size_t>(sample.gauge)].emplace_back(
          TimeToSeconds(sample.time), sample.value);
    }
    run.counters = trace.footer_counters;
    runs.push_back(std::move(run));
  }
  const Status written = WriteRunReport(runs, out);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("report             %s (%zu runs)\n", out.c_str(), runs.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("top", 10, "summary: list the N slowest transactions (0 = off)");
  flags.AddBool("help", false, "print usage");

  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s%s", status.ToString().c_str(), kUsage,
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s%s", kUsage, flags.Help().c_str());
    return 0;
  }
  const std::vector<std::string>& args = flags.positional();
  if (args.size() < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string& command = args[0];
  const std::string& path = args[1];
  if (command == "summary") {
    return RunSummary(path, static_cast<int>(flags.GetInt("top")));
  }
  if (command == "check-serializable") {
    return RunCheckSerializable(path);
  }
  if (command == "perfetto") {
    if (args.size() < 3) {
      std::fprintf(stderr, "perfetto needs an output path\n%s", kUsage);
      return 2;
    }
    return RunPerfetto(path, args[2]);
  }
  if (command == "report") {
    if (args.size() < 3) {
      std::fprintf(stderr, "report needs an output path\n%s", kUsage);
      return 2;
    }
    const std::vector<std::string> inputs(args.begin() + 1, args.end() - 1);
    return RunReport(inputs, args.back());
  }
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 2;
}
