// wtpg_sweep — the experiment harness as a command-line tool: arrival-rate
// sweeps, the "throughput at a response-time target" operating-point search,
// C2PL MPL tuning, and fault-churn sweeps for any scheduler/workload
// combination, with CSV output.
//
// Examples:
//   wtpg_sweep --mode=rates --scheduler=low --rates=0.2,0.4,0.8,1.2
//   wtpg_sweep --mode=rt-target --scheduler=gow --target-s=70 --dd=2
//   wtpg_sweep --mode=mpl --scheduler=c2pl --rate=1.2
//   wtpg_sweep --mode=faults --scheduler=low --rate=1.0
//              --fault-mttfs-ms=0,400000,100000 --fault-mttr-ms=20000
//   wtpg_sweep --mode=openworld --ow-files=1000000 --ow-theta=0.9
//              --batch-mpl=2 --rate=1.0

#include <cstdio>
#include <cstdlib>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sweep.h"
#include "fault/fault_flags.h"
#include "machine/config.h"
#include "util/common_flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "workload/pattern_parser.h"

using namespace wtpgsched;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonToolFlags(flags);
  AddProgressFlags(flags);
  AddFaultFlags(flags);
  flags.AddString("mode", "rates", "rates|rt-target|mpl|faults|openworld");
  flags.AddString("workload", "exp1", "exp1|exp2");
  flags.AddString("pattern", "", "pattern notation (overrides --workload)");
  flags.AddString("rates", "0.2,0.4,0.6,0.8,1.0,1.2,1.4",
                  "rates for --mode=rates");
  flags.AddDouble("rate", 1.2, "fixed rate for --mode=mpl / --mode=faults");
  flags.AddDouble("target-s", 70.0, "response-time target (rt-target mode)");
  flags.AddInt("num-files", 16, "number of files");
  flags.AddInt("dd", 1, "degree of declustering");
  flags.AddDouble("sigma", 0.0, "declaration error stddev");
  flags.AddDouble("horizon-ms", 2'000'000, "simulated milliseconds");
  flags.AddInt("iters", 9, "bisection iterations (rt-target mode)");
  flags.AddString("fault-mttfs-ms", "0,400000,200000,100000,50000",
                  "DPN MTTF values for --mode=faults (0 = fault-free)");
  flags.AddInt("ow-files", 1'000'000,
               "openworld mode: Zipf universe size (overrides --num-files)");
  flags.AddDouble("ow-theta", 0.9, "openworld mode: Zipf skew theta");
  flags.AddDouble("ow-share", 0.9,
                  "openworld mode: interactive arrival share in (0,1)");
  flags.AddInt("batch-mpl", 0,
               "openworld mode: batch admission limit (0 = ungated)");
  flags.AddString("csv", "", "also write the table to this CSV file");

  const int standard = HandleStandardFlags(flags, argc, argv);
  if (standard >= 0) return standard;
  ApplyProgressFlags(flags);

  SimConfig config;
  const bool from_file = flags.WasSet("config");
  if (from_file) {
    StatusOr<SimConfig> loaded =
        SimConfig::FromJsonFile(flags.GetString("config"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "--config: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    config = *loaded;
  }
  // A flag beats the config file when explicitly given; without a file,
  // every flag applies so the tool's defaults stay exactly as before.
  auto use = [&](const char* name) { return !from_file || flags.WasSet(name); };
  if (use("scheduler") &&
      !ParseSchedulerKind(flags.GetString("scheduler"), &config.scheduler)) {
    std::fprintf(stderr, "unknown scheduler '%s'\n",
                 flags.GetString("scheduler").c_str());
    return 2;
  }
  if (use("num-files")) {
    config.machine.num_files = static_cast<int>(flags.GetInt("num-files"));
  }
  if (use("dd")) config.machine.dd = static_cast<int>(flags.GetInt("dd"));
  if (use("sigma")) config.workload.error_sigma = flags.GetDouble("sigma");
  if (use("horizon-ms")) config.run.horizon_ms = flags.GetDouble("horizon-ms");
  if (use("seed")) config.run.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  if (use("rate")) config.workload.arrival_rate_tps = flags.GetDouble("rate");
  ApplyFaultFlags(flags, &config.fault);

  Pattern pattern = flags.GetString("workload") == "exp2"
                        ? Pattern::Experiment2()
                        : Pattern::Experiment1(config.machine.num_files);
  if (!flags.GetString("pattern").empty()) {
    StatusOr<Pattern> parsed =
        ParsePattern(flags.GetString("pattern"), config.machine.num_files);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --pattern: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    pattern = std::move(parsed).value();
  }

  const int seeds = static_cast<int>(flags.GetInt("seeds"));
  const int jobs = static_cast<int>(flags.GetInt("jobs"));
  const bool json = flags.GetBool("json");
  const std::string mode = flags.GetString("mode");
  TablePrinter* table = nullptr;

  if (mode == "rates") {
    std::vector<double> rates;
    const Status parsed =
        ParseDoubleList(flags.GetString("rates"), ',', &rates);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--rates: %s\n", parsed.ToString().c_str());
      return 2;
    }
    if (rates.empty()) {
      std::fprintf(stderr, "--rates is empty\n");
      return 2;
    }
    static TablePrinter t({"lambda(tps)", "mean RT(s)", "median(s)",
                           "tput(tps)", "blocked", "delayed", "restarts",
                           "seeds"});
    for (const SweepPoint& p :
         SweepArrivalRates(config, pattern, rates, seeds, jobs)) {
      t.AddRow({FmtTps(p.lambda_tps), FmtSeconds(p.result.mean_response_s),
                FmtSeconds(0.0), FmtTps(p.result.throughput_tps),
                FormatDouble(p.result.blocked, 0),
                FormatDouble(p.result.delayed, 0),
                FormatDouble(p.result.restarts, 0),
                StrCat(p.result.num_seeds)});
      if (json) std::printf("%s\n", p.result.ToJson().c_str());
    }
    table = &t;
  } else if (mode == "rt-target") {
    const OperatingPoint op = FindRateForResponseTime(
        config, pattern, flags.GetDouble("target-s"), 0.05, 1.6, seeds,
        static_cast<int>(flags.GetInt("iters")), 2.5, jobs);
    static TablePrinter t(
        {"lambda(tps)", "mean RT(s)", "tput(tps)", "seeds", "converged"});
    t.AddRow({FmtTps(op.lambda_tps), FmtSeconds(op.mean_response_s),
              FmtTps(op.throughput_tps), StrCat(op.num_seeds),
              op.converged ? "yes" : "no"});
    table = &t;
  } else if (mode == "mpl") {
    if (config.scheduler != SchedulerKind::kC2pl) {
      std::fprintf(stderr, "--mode=mpl requires --scheduler=c2pl\n");
      return 2;
    }
    const MplChoice choice =
        TuneMpl(config, pattern, DefaultMplCandidates(), seeds, jobs);
    static TablePrinter t({"best mpl", "mean RT(s)", "tput(tps)", "seeds"});
    t.AddRow({StrCat(choice.mpl), FmtSeconds(choice.result.mean_response_s),
              FmtTps(choice.result.throughput_tps),
              StrCat(choice.result.num_seeds)});
    if (json) std::printf("%s\n", choice.result.ToJson().c_str());
    table = &t;
  } else if (mode == "faults") {
    std::vector<double> mttfs;
    const Status parsed =
        ParseDoubleList(flags.GetString("fault-mttfs-ms"), ',', &mttfs);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--fault-mttfs-ms: %s\n",
                   parsed.ToString().c_str());
      return 2;
    }
    if (mttfs.empty()) {
      std::fprintf(stderr, "--fault-mttfs-ms is empty\n");
      return 2;
    }
    static TablePrinter t({"mttf(s)", "mean RT(s)", "tput(tps)",
                           "completions", "restarts", "seeds"});
    for (const FaultSweepPoint& p :
         SweepFaultRate(config, pattern, mttfs, seeds, jobs)) {
      t.AddRow({p.mttf_ms <= 0.0 ? std::string("inf")
                                 : FormatDouble(p.mttf_ms / 1000.0, 0),
                FmtSeconds(p.result.mean_response_s),
                FmtTps(p.result.throughput_tps),
                FormatDouble(p.result.completions, 1),
                FormatDouble(p.result.restarts, 1),
                StrCat(p.result.num_seeds)});
      if (json) std::printf("%s\n", p.result.ToJson().c_str());
    }
    table = &t;
  } else if (mode == "openworld") {
    // All six paper schedulers over the two-class Zipf mix (the --scheduler
    // flag is ignored here, like --workload/--pattern: the mode owns the
    // workload). Tail percentiles come from the bounded-memory P2 sketch.
    OpenWorldSpec spec;
    spec.num_files = static_cast<int>(flags.GetInt("ow-files"));
    spec.zipf_theta = flags.GetDouble("ow-theta");
    spec.interactive_share = flags.GetDouble("ow-share");
    BenchOptions opts;
    opts.seeds = seeds;
    opts.jobs = jobs;
    opts.horizon_ms = config.run.horizon_ms;
    opts.csv_dir.clear();
    static TablePrinter t({"scheduler", "mean RT(s)", "tput(tps)",
                           "int p50(s)", "int p95(s)", "int p99(s)",
                           "batch p99(s)", "seeds"});
    for (const OpenWorldRun& run :
         RunOpenWorld(spec, config.workload.arrival_rate_tps,
                      static_cast<int>(flags.GetInt("batch-mpl")),
                      /*sketch=*/true, opts)) {
      AggregateResult::ClassAgg inter, batch;
      for (const AggregateResult::ClassAgg& cs : run.result.per_class) {
        if (cs.workload_class == 0) inter = cs;
        if (cs.workload_class == 1) batch = cs;
      }
      t.AddRow({SchedulerLabel(run.kind),
                FmtSeconds(run.result.mean_response_s),
                FmtTps(run.result.throughput_tps),
                FmtSeconds(inter.p50_response_s),
                FmtSeconds(inter.p95_response_s),
                FmtSeconds(inter.p99_response_s),
                FmtSeconds(batch.p99_response_s),
                StrCat(run.result.num_seeds)});
      if (json) std::printf("%s\n", run.result.ToJson().c_str());
    }
    table = &t;
  } else {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 2;
  }

  table->Print();
  if (!flags.GetString("csv").empty()) {
    const Status written = table->WriteCsv(flags.GetString("csv"));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
