// wtpg_sim — command-line driver for the batch-transaction scheduling
// simulator. Runs one configuration and prints the run statistics; the
// workload can be one of the paper's experiments or an arbitrary pattern in
// the paper's notation.
//
// Examples:
//   wtpg_sim --scheduler=low --rate=0.8 --dd=2
//   wtpg_sim --scheduler=gow --workload=exp2 --rate=1.0
//   wtpg_sim --scheduler=c2pl --mpl=8 --rate=1.2
//            --pattern="x(F1:1) -> x(F2:5) -> w(F1:0.2) -> w(F2:1)"
//   wtpg_sim --scheduler=2pl --verify   # serializability check at the end

#include <cstdio>

#include "analysis/serializability.h"
#include "driver/sim_run.h"
#include "fault/fault_flags.h"
#include "machine/machine.h"
#include "telemetry/telemetry_export.h"
#include "trace/trace_export.h"
#include "util/common_flags.h"
#include "util/logging.h"
#include "workload/pattern_parser.h"
#include "wtpg/dot.h"

using namespace wtpgsched;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonToolFlags(flags);
  AddTraceFlags(flags);
  AddTelemetryFlags(flags);
  AddProgressFlags(flags);
  AddFaultFlags(flags);
  flags.AddString("workload", "exp1", "exp1|exp2 (ignored with --pattern)");
  flags.AddString("pattern", "", "pattern notation, e.g. 'r(A:1) -> w(B:2)'");
  flags.AddInt("num-files", 16, "number of files (locking granules)");
  flags.AddInt("num-nodes", 8, "number of data-processing nodes");
  flags.AddInt("dd", 1, "degree of declustering");
  flags.AddDouble("rate", 0.8, "arrival rate (TPS)");
  flags.AddDouble("horizon-ms", 2'000'000, "simulated milliseconds");
  flags.AddDouble("warmup-ms", 0, "measurement warmup (ms)");
  flags.AddDouble("sigma", 0.0, "declaration error stddev (Experiment 3)");
  flags.AddInt("mpl", 0, "multiprogramming limit (0 = unlimited)");
  flags.AddDouble("zipf-theta", 0.0,
                  "Zipf skew for pattern file draws (0 = uniform)");
  flags.AddInt("batch-mpl", 0,
               "admission limit on priority-0 transactions (0 = off)");
  flags.AddBool("tail", false,
                "report p50/p95/p99 and per-class percentiles");
  flags.AddBool("tail-sketch", false,
                "use the bounded-memory P2 sketch for percentiles "
                "(implies --tail)");
  flags.AddInt("low-k", 2, "LOW's conflict bound K");
  flags.AddInt("max-arrivals", 0, "stop arrivals after N transactions (0 = off)");
  flags.AddBool("verify", false, "check conflict-serializability at the end");
  flags.AddString("timeline-csv", "",
                  "sample system state every --timeline-ms into this CSV");
  flags.AddDouble("timeline-ms", 10'000, "timeline sampling period (ms)");
  flags.AddString("dot-out", "",
                  "dump the scheduler's WTPG as Graphviz DOT to this file");
  flags.AddDouble("dot-at-ms", 100'000,
                  "simulated time of the WTPG snapshot for --dot-out");

  const int standard = HandleStandardFlags(flags, argc, argv);
  if (standard >= 0) return standard;
  ApplyProgressFlags(flags);

  SimConfig config;
  const bool from_file = flags.WasSet("config");
  if (from_file) {
    StatusOr<SimConfig> loaded =
        SimConfig::FromJsonFile(flags.GetString("config"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "--config: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    config = *loaded;
  }
  // A flag beats the config file when explicitly given; without a file,
  // every flag applies so the tool's defaults stay exactly as before.
  auto use = [&](const char* name) { return !from_file || flags.WasSet(name); };
  if (use("scheduler") &&
      !ParseSchedulerKind(flags.GetString("scheduler"), &config.scheduler)) {
    std::fprintf(stderr, "unknown scheduler '%s'\n",
                 flags.GetString("scheduler").c_str());
    return 2;
  }
  if (use("num-files")) {
    config.machine.num_files = static_cast<int>(flags.GetInt("num-files"));
  }
  if (use("num-nodes")) {
    config.machine.num_nodes = static_cast<int>(flags.GetInt("num-nodes"));
  }
  if (use("dd")) config.machine.dd = static_cast<int>(flags.GetInt("dd"));
  if (use("rate")) config.workload.arrival_rate_tps = flags.GetDouble("rate");
  if (use("horizon-ms")) config.run.horizon_ms = flags.GetDouble("horizon-ms");
  if (use("warmup-ms")) config.run.warmup_ms = flags.GetDouble("warmup-ms");
  if (use("sigma")) config.workload.error_sigma = flags.GetDouble("sigma");
  if (use("low-k")) config.low_k = static_cast<int>(flags.GetInt("low-k"));
  if (use("seed")) config.run.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  if (use("max-arrivals")) {
    config.workload.max_arrivals =
        static_cast<uint64_t>(flags.GetInt("max-arrivals"));
  }
  if (use("mpl") && flags.GetInt("mpl") > 0) {
    config.machine.mpl = static_cast<int>(flags.GetInt("mpl"));
  }
  if (use("zipf-theta")) {
    config.workload.zipf_theta = flags.GetDouble("zipf-theta");
  }
  if (use("batch-mpl")) {
    config.machine.batch_mpl = static_cast<int>(flags.GetInt("batch-mpl"));
  }
  if (use("tail") && flags.GetBool("tail")) config.run.tail_metrics = true;
  if (use("tail-sketch") && flags.GetBool("tail-sketch")) {
    config.run.tail_metrics = true;
    config.run.tail_sketch = true;
  }
  ApplyFaultFlags(flags, &config.fault);
  if (!flags.GetString("timeline-csv").empty()) {
    config.run.timeline_sample_ms = flags.GetDouble("timeline-ms");
  }
  const std::string trace_jsonl = flags.GetString("trace-jsonl");
  const std::string trace_chrome = flags.GetString("trace-chrome");
  if (!trace_jsonl.empty() || !trace_chrome.empty()) {
    config.run.trace_enabled = true;
    config.run.trace_capacity =
        static_cast<uint64_t>(flags.GetInt("trace-capacity"));
  }
  // Requesting a telemetry artifact without --telemetry-ms samples at the
  // timeline default (10 s).
  const std::string telemetry_csv = flags.GetString("telemetry-csv");
  const std::string telemetry_jsonl = flags.GetString("telemetry-jsonl");
  if (flags.GetDouble("telemetry-ms") > 0.0 || !telemetry_csv.empty() ||
      !telemetry_jsonl.empty()) {
    config.run.telemetry_sample_ms = flags.GetDouble("telemetry-ms") > 0.0
                                         ? flags.GetDouble("telemetry-ms")
                                         : 10'000.0;
    config.run.telemetry_capacity =
        static_cast<uint64_t>(flags.GetInt("telemetry-capacity"));
  }
  Status status = config.Validate();
  if (!status.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n", status.ToString().c_str());
    return 2;
  }

  Pattern pattern = Pattern::Experiment1(config.machine.num_files);
  if (!flags.GetString("pattern").empty()) {
    StatusOr<Pattern> parsed =
        ParsePattern(flags.GetString("pattern"), config.machine.num_files);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --pattern: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    pattern = std::move(parsed).value();
  } else if (flags.GetString("workload") == "exp2") {
    pattern = Pattern::Experiment2();
  } else if (flags.GetString("workload") != "exp1") {
    std::fprintf(stderr, "unknown workload '%s'\n",
                 flags.GetString("workload").c_str());
    return 2;
  }

  // Multi-seed aggregate mode: fan the replicas across workers and report
  // the cross-seed averages. The per-run artifacts below (trace, DOT
  // snapshot, timeline, serializability log) are single-run concepts.
  const int num_seeds = static_cast<int>(flags.GetInt("seeds"));
  if (num_seeds > 1) {
    if (!trace_jsonl.empty() || !trace_chrome.empty() ||
        !flags.GetString("dot-out").empty() ||
        !flags.GetString("timeline-csv").empty() || !telemetry_csv.empty() ||
        !telemetry_jsonl.empty() || flags.GetBool("verify")) {
      std::fprintf(stderr,
                   "--seeds > 1 is incompatible with --trace-*/--dot-out/"
                   "--timeline-csv/--telemetry-csv/--telemetry-jsonl/"
                   "--verify (single-run outputs)\n");
      return 2;
    }
    const AggregateResult agg =
        RunAggregate(config, pattern, num_seeds,
                     static_cast<int>(flags.GetInt("jobs")));
    if (flags.GetBool("json")) {
      std::printf("%s\n", agg.ToJson().c_str());
      return 0;
    }
    std::printf("scheduler          %s\n",
                SchedulerKindName(config.scheduler));
    std::printf("seeds              %d (base seed %llu)\n", agg.num_seeds,
                static_cast<unsigned long long>(config.run.seed));
    std::printf("mean response      %.2f s\n", agg.mean_response_s);
    std::printf("throughput         %.3f TPS\n", agg.throughput_tps);
    std::printf("completions        %.1f per seed\n", agg.completions);
    std::printf("blocked/delayed    %.1f / %.1f\n", agg.blocked, agg.delayed);
    std::printf("start rejections   %.1f\n", agg.start_rejections);
    std::printf("restarts           %.1f\n", agg.restarts);
    std::printf("CN utilization     %.1f%%\n", 100.0 * agg.cn_utilization);
    std::printf("DPN utilization    mean %.1f%%\n",
                100.0 * agg.mean_dpn_utilization);
    return 0;
  }

  Machine machine(config, std::move(pattern));

  // Optional WTPG snapshot: schedule a dump before running.
  std::string dot_snapshot;
  if (!flags.GetString("dot-out").empty()) {
    auto* graph_scheduler =
        dynamic_cast<WtpgSchedulerBase*>(&machine.scheduler());
    if (graph_scheduler == nullptr) {
      std::fprintf(stderr,
                   "--dot-out requires a WTPG scheduler (c2pl/gow/low)\n");
      return 2;
    }
    machine.simulator().ScheduleAt(
        MsToTime(flags.GetDouble("dot-at-ms")),
        [graph_scheduler, &dot_snapshot] {
          dot_snapshot = ToDot(graph_scheduler->graph(), "WTPG snapshot");
        });
  }

  const RunStats stats = machine.Run();

  // Sampled gauge series ride along inside the trace files as counter
  // tracks; legacy timeline-only runs (telemetry_sample_ms == 0) keep the
  // trace byte-identical.
  std::vector<GaugeTrack> gauge_tracks;
  const std::vector<GaugeTrack>* gauges = nullptr;
  if (machine.telemetry() != nullptr && config.run.telemetry_sample_ms > 0.0) {
    gauge_tracks = ToGaugeTracks(machine.telemetry()->store());
    gauges = &gauge_tracks;
  }

  if (!trace_jsonl.empty() || !trace_chrome.empty()) {
    TraceMeta meta;
    meta.scheduler = machine.scheduler().name();
    meta.num_nodes = config.machine.num_nodes;
    meta.num_files = config.machine.num_files;
    meta.dd = config.machine.dd;
    meta.seed = config.run.seed;
    const std::vector<TraceEvent> events = machine.trace().Snapshot();
    if (!trace_jsonl.empty()) {
      const Status written = WriteJsonlTrace(events, meta, stats.counters,
                                             machine.trace().dropped(),
                                             trace_jsonl, gauges);
      if (!written.ok()) {
        std::fprintf(stderr, "trace-jsonl: %s\n", written.ToString().c_str());
        return 1;
      }
    }
    if (!trace_chrome.empty()) {
      const Status written =
          WriteChromeTrace(events, meta, trace_chrome, gauges);
      if (!written.ok()) {
        std::fprintf(stderr, "trace-chrome: %s\n", written.ToString().c_str());
        return 1;
      }
    }
  }

  if (!telemetry_csv.empty() || !telemetry_jsonl.empty()) {
    if (machine.telemetry() == nullptr) {
      std::fprintf(stderr, "telemetry: sampling is disabled\n");
      return 2;
    }
    const TelemetryStore& store = machine.telemetry()->store();
    if (!telemetry_csv.empty()) {
      const Status written = WriteTelemetryCsv(store, telemetry_csv);
      if (!written.ok()) {
        std::fprintf(stderr, "telemetry-csv: %s\n",
                     written.ToString().c_str());
        return 1;
      }
    }
    if (!telemetry_jsonl.empty()) {
      const Status written = WriteTelemetryJsonl(store, telemetry_jsonl);
      if (!written.ok()) {
        std::fprintf(stderr, "telemetry-jsonl: %s\n",
                     written.ToString().c_str());
        return 1;
      }
    }
  }

  if (!flags.GetString("dot-out").empty()) {
    std::FILE* f = std::fopen(flags.GetString("dot-out").c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n",
                   flags.GetString("dot-out").c_str());
      return 1;
    }
    std::fputs(dot_snapshot.c_str(), f);
    std::fclose(f);
    std::printf("WTPG snapshot -> %s (at %.0f ms)\n",
                flags.GetString("dot-out").c_str(),
                flags.GetDouble("dot-at-ms"));
  }

  if (flags.GetBool("json")) {
    std::printf("%s\n", stats.ToJson().c_str());
    if (flags.GetBool("verify")) {
      const SerializabilityResult result =
          CheckConflictSerializability(machine.schedule_log());
      if (!result.serializable && config.scheduler != SchedulerKind::kNodc) {
        return 1;
      }
    }
    return 0;
  }

  std::printf("scheduler          %s\n", machine.scheduler().name().c_str());
  std::printf("simulated          %.0f s\n", stats.sim_seconds);
  std::printf("arrivals           %llu\n",
              static_cast<unsigned long long>(stats.arrivals));
  std::printf("completions        %llu (in window: %llu)\n",
              static_cast<unsigned long long>(stats.completions),
              static_cast<unsigned long long>(stats.completions_measured));
  std::printf("in flight at end   %llu\n",
              static_cast<unsigned long long>(stats.in_flight_at_end));
  std::printf("mean response      %.2f s (median %.2f, p95 %.2f)\n",
              stats.mean_response_s, stats.median_response_s,
              stats.p95_response_s);
  if (stats.tail_metrics) {
    std::printf("p99 response       %.2f s (%s)\n", stats.p99_response_s,
                stats.sketch_quantiles ? "P2 sketch" : "exact");
    for (const RunStats::ClassStats& cs : stats.per_class) {
      std::printf("class %d            %llu done, mean %.2f s, p50 %.2f, "
                  "p95 %.2f, p99 %.2f\n",
                  cs.workload_class,
                  static_cast<unsigned long long>(cs.completions),
                  cs.mean_response_s, cs.median_response_s,
                  cs.p95_response_s, cs.p99_response_s);
    }
  }
  std::printf("throughput         %.3f TPS\n", stats.throughput_tps);
  std::printf("blocked/delayed    %llu / %llu\n",
              static_cast<unsigned long long>(stats.blocked),
              static_cast<unsigned long long>(stats.delayed));
  std::printf("start rejections   %llu\n",
              static_cast<unsigned long long>(stats.start_rejections));
  std::printf("restarts           %llu\n",
              static_cast<unsigned long long>(stats.restarts));
  std::printf("CN utilization     %.1f%%\n", 100.0 * stats.cn_utilization);
  std::printf("DPN utilization    mean %.1f%%, max %.1f%%\n",
              100.0 * stats.mean_dpn_utilization,
              100.0 * stats.max_dpn_utilization);

  if (!flags.GetString("timeline-csv").empty()) {
    const Status written =
        machine.timeline().WriteCsv(flags.GetString("timeline-csv"));
    if (!written.ok()) {
      std::fprintf(stderr, "timeline: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("timeline           %s (%zu samples)\n",
                flags.GetString("timeline-csv").c_str(),
                machine.timeline().size());
  }

  if (flags.GetBool("verify")) {
    const SerializabilityResult result =
        CheckConflictSerializability(machine.schedule_log());
    std::printf("serializability    %s\n", result.ToString().c_str());
    if (!result.serializable && config.scheduler != SchedulerKind::kNodc) {
      return 1;
    }
  }
  return 0;
}
