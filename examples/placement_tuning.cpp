// Data-placement study: can a shared-nothing machine keep a placement tuned
// for short transactions (low declustering) without crippling its batch
// window? The paper's answer: yes — with the right batch scheduler, most of
// the benefit of declustering arrives by DD = 2..4, and a good scheduler at
// DD = 2 beats a bad one at DD = 8.
//
//   ./build/examples/placement_tuning

#include <cstdio>

#include "driver/sim_run.h"
#include "machine/config.h"
#include "workload/pattern.h"

using namespace wtpgsched;

namespace {

double MeanRt(SchedulerKind kind, int dd, double rate) {
  SimConfig config;
  config.scheduler = kind;
  config.machine.num_files = 16;
  config.machine.dd = dd;
  config.workload.arrival_rate_tps = rate;
  config.run.horizon_ms = 2'000'000;
  config.run.seed = 99;
  return RunSimulation(config, Pattern::Experiment1(16)).mean_response_s;
}

}  // namespace

int main() {
  constexpr double kRate = 1.2;  // Heavy batch load.
  std::printf(
      "Batch window at %.1f TPS (Experiment-1 workload, 16 files, 8 "
      "nodes).\nMean response time (s) and speedup vs DD=1:\n\n",
      kRate);
  std::printf("%-10s", "scheduler");
  for (int dd : {1, 2, 4, 8}) std::printf("     DD=%d (speedup)", dd);
  std::printf("\n");

  for (SchedulerKind kind : {SchedulerKind::kLow, SchedulerKind::kGow,
                             SchedulerKind::kAsl, SchedulerKind::kC2pl}) {
    std::printf("%-10s", SchedulerKindName(kind));
    const double base = MeanRt(kind, 1, kRate);
    for (int dd : {1, 2, 4, 8}) {
      const double rt = MeanRt(kind, dd, kRate);
      std::printf("  %8.0f (%5.2fx)", rt, base / rt);
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading the table: LOW/GOW at modest declustering already deliver\n"
      "most of the parallelism win, so the placement can stay tuned for\n"
      "short-transaction locality — the paper's central design argument.\n");
  return 0;
}
