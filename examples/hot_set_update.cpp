// Hot-set batch updates (the paper's Experiment-2 scenario): periodic
// database-maintenance batches that read a large archive file and then
// update two of eight hot "master" files. Shows why the choice of
// concurrency-control scheduler matters on such a workload: ASL preclaims
// the hot files and strangles concurrency, C2PL admits everyone and builds
// chains of blocking, LOW threads the needle.
//
//   ./build/examples/hot_set_update

#include <cstdio>

#include "driver/sim_run.h"
#include "machine/config.h"
#include "workload/pattern.h"

using namespace wtpgsched;

int main() {
  // A custom hot-set pattern built with the library's pattern mechanism:
  //   r(ARCHIVE:5) -> w(HOT1:1) -> w(HOT2:1)
  // ARCHIVE drawn from 8 read-only files, HOT1/HOT2 distinct from 8 hot
  // files (this is exactly Pattern::Experiment2(), spelled out).
  const LockMode kS = LockMode::kShared;
  const LockMode kX = LockMode::kExclusive;
  Pattern pattern("hot-set-maintenance",
                  {
                      {0, 7, /*distinct_within_pool=*/true},   // ARCHIVE
                      {8, 15, /*distinct_within_pool=*/true},  // HOT1
                      {8, 15, /*distinct_within_pool=*/true},  // HOT2
                  },
                  {
                      {/*is_write=*/false, kS, 0, 5.0},
                      {/*is_write=*/true, kX, 1, 1.0},
                      {/*is_write=*/true, kX, 2, 1.0},
                  });

  std::printf(
      "Hot-set maintenance batches, 16 files on 8 nodes, 0.8 TPS.\n"
      "Paper's finding (Table 4): LOW > C2PL > GOW > ASL > OPT here.\n\n");
  std::printf("%-10s %12s %12s %10s %10s %10s\n", "scheduler", "mean-rt(s)",
              "tput(tps)", "blocked", "delayed", "restarts");

  for (SchedulerKind kind :
       {SchedulerKind::kLow, SchedulerKind::kC2pl, SchedulerKind::kGow,
        SchedulerKind::kAsl, SchedulerKind::kOpt}) {
    SimConfig config;
    config.scheduler = kind;
    config.machine.num_files = 16;
    config.machine.dd = 1;  // Placement tuned for short transactions.
    config.workload.arrival_rate_tps = 0.8;
    config.run.horizon_ms = 2'000'000;
    config.run.seed = 2026;
    const RunStats stats = RunSimulation(config, pattern);
    std::printf("%-10s %12.1f %12.2f %10llu %10llu %10llu\n",
                SchedulerKindName(kind), stats.mean_response_s,
                stats.throughput_tps,
                static_cast<unsigned long long>(stats.blocked),
                static_cast<unsigned long long>(stats.delayed),
                static_cast<unsigned long long>(stats.restarts));
  }

  std::printf(
      "\nTakeaway: on hot-set updates, pick LOW — it admits as much\n"
      "concurrency as the K-conflict bound allows while ordering grants by\n"
      "the WTPG critical-path estimate.\n");
  return 0;
}
