// Quickstart: simulate the paper's Experiment-1 workload under two
// schedulers and compare their mean response time and throughput.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "driver/sim_run.h"
#include "machine/config.h"
#include "workload/pattern.h"

using wtpgsched::Pattern;
using wtpgsched::RunSimulation;
using wtpgsched::RunStats;
using wtpgsched::SchedulerKind;
using wtpgsched::SchedulerKindName;
using wtpgsched::SimConfig;

int main() {
  // Pattern 1 of the paper: r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1),
  // with F1, F2 drawn from 16 files and X-locks requested up front.
  const Pattern pattern = Pattern::Experiment1(/*num_files=*/16);

  std::printf("%-10s %8s %12s %12s %9s %9s\n", "scheduler", "lambda",
              "mean-rt(s)", "thruput(tps)", "blocked", "delayed");
  for (SchedulerKind kind :
       {SchedulerKind::kNodc, SchedulerKind::kAsl, SchedulerKind::kGow,
        SchedulerKind::kLow, SchedulerKind::kC2pl, SchedulerKind::kOpt}) {
    SimConfig config;  // Table-1 defaults: 8 nodes, 1s/object, etc.
    config.scheduler = kind;
    config.machine.num_files = 16;
    config.machine.dd = 1;                  // No intra-transaction parallelism.
    config.workload.arrival_rate_tps = 0.6;  // Moderate load.
    config.run.horizon_ms = 2'000'000;  // 2000 simulated seconds.
    config.run.seed = 42;

    const RunStats stats = RunSimulation(config, pattern);
    std::printf("%-10s %8.2f %12.1f %12.2f %9llu %9llu\n",
                SchedulerKindName(kind), config.workload.arrival_rate_tps,
                stats.mean_response_s, stats.throughput_tps,
                static_cast<unsigned long long>(stats.blocked),
                static_cast<unsigned long long>(stats.delayed));
  }
  return 0;
}
