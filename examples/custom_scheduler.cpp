// Extending the library with a custom concurrency-control scheduler.
//
// SeniorityScheduler refines C2PL with an aging rule: a grantable request
// is delayed if an *older* transaction has a pending conflicting
// declaration on the granule that could still be ordered ahead of the
// requester (no precedence path from the requester to it). This trades a
// little throughput for less age-skew in response times.
//
// The example shows the three integration points:
//   1. subclass a scheduler (or Scheduler/WtpgSchedulerBase directly),
//   2. inject it into Machine via the custom-scheduler constructor,
//   3. verify the history with the serializability checker.
//
//   ./build/examples/custom_scheduler

#include <cstdio>
#include <memory>

#include "analysis/serializability.h"
#include "machine/machine.h"
#include "sched/c2pl.h"

using namespace wtpgsched;

namespace {

class SeniorityScheduler : public C2plScheduler {
 public:
  SeniorityScheduler() : C2plScheduler(/*ddtime=*/MsToTime(1.0)) {}

  std::string name() const override { return "SENIORITY"; }

 protected:
  Decision DecideLock(Transaction& txn, int step) override {
    Decision base = C2plScheduler::DecideLock(txn, step);
    if (base.kind != DecisionKind::kGrant) return base;
    // Age rule: yield to an older transaction whose conflicting access is
    // still pending *and* can still go first. The "can still go first"
    // test (no txn ~> elder precedence path) is what keeps this safe: if
    // the elder is already ordered behind us, waiting for it would be a
    // deadlock, so we do not.
    const FileId file = txn.step(step).file;
    const LockMode mode = txn.RequestModeAt(step);
    for (TxnId elder : PendingConflicters(file, txn.id(), mode)) {
      if (elder < txn.id() && !graph_.HasPath(txn.id(), elder)) {
        return Decision{DecisionKind::kDelay, file};
      }
    }
    return base;
  }
};

RunStats RunWith(std::unique_ptr<Scheduler> scheduler, const char* label) {
  SimConfig config;
  config.scheduler = SchedulerKind::kC2pl;  // Costs/bookkeeping defaults.
  config.machine.num_files = 16;
  config.machine.dd = 2;
  config.workload.arrival_rate_tps = 0.6;
  config.run.horizon_ms = 2'000'000;
  config.run.seed = 7;
  Machine machine(config, Pattern::Experiment1(16), std::move(scheduler));
  const RunStats stats = machine.Run();
  const SerializabilityResult check =
      CheckConflictSerializability(machine.schedule_log());
  std::printf("%-10s mean-rt=%7.1fs p95=%7.1fs tput=%5.2ftps %s\n", label,
              stats.mean_response_s, stats.p95_response_s,
              stats.throughput_tps, check.ToString().c_str());
  return stats;
}

}  // namespace

int main() {
  std::printf("Custom scheduler vs stock C2PL (Experiment 1, DD=2):\n\n");
  RunWith(std::make_unique<C2plScheduler>(MsToTime(1.0)), "C2PL");
  RunWith(std::make_unique<SeniorityScheduler>(), "SENIORITY");
  std::printf(
      "\nBoth histories must report 'serializable' — the seniority rule\n"
      "only delays grants, it never re-orders conflicting accesses\n"
      "illegally.\n");
  return 0;
}
