// Mixed workload: the paper's motivating setting is an OLTP machine running
// short transactions *and* batch updates on the same data placement. This
// example mixes a short debit-credit-style transaction (tiny, indexed-like
// access) with the Experiment-1 batch pattern and shows how each scheduler
// treats the two classes.
//
//   ./build/examples/mixed_workload

#include <cstdio>

#include "machine/machine.h"
#include "workload/pattern_parser.h"

using namespace wtpgsched;

int main() {
  // Short transactions: touch one file for 0.02 objects (a 50 ms indexed
  // update at 1 s/object). Batches: the paper's Pattern 1.
  StatusOr<Pattern> shorts = ParsePattern("w(F:0.02)", 16);
  if (!shorts.ok()) {
    std::fprintf(stderr, "%s\n", shorts.status().ToString().c_str());
    return 1;
  }
  const Pattern batch = Pattern::Experiment1(16);

  std::printf(
      "Mix: 90%% short updates (0.02 objects), 10%% Pattern-1 batches;\n"
      "3.0 TPS total on 8 nodes, DD=1. Per-class mean response times show\n"
      "whether the batches starve the short class:\n\n");
  std::printf("%-10s %13s %13s %13s %10s\n", "scheduler", "short-rt(s)",
              "short-p95(s)", "batch-rt(s)", "tput(tps)");

  for (SchedulerKind kind :
       {SchedulerKind::kLow, SchedulerKind::kGow, SchedulerKind::kC2pl,
        SchedulerKind::kAsl, SchedulerKind::kTwoPl}) {
    SimConfig config;
    config.scheduler = kind;
    config.machine.num_files = 16;
    config.machine.dd = 1;
    config.workload.arrival_rate_tps = 3.0;
    config.run.horizon_ms = 2'000'000;
    config.run.seed = 31;

    std::vector<WeightedPattern> mix;
    mix.push_back(WeightedPattern{*shorts, 0.9});
    mix.push_back(WeightedPattern{batch, 0.1});
    Machine machine(config, std::move(mix));
    const RunStats stats = machine.Run();
    double short_rt = 0.0;
    double short_p95 = 0.0;
    double batch_rt = 0.0;
    for (const RunStats::ClassStats& cs : stats.per_class) {
      if (cs.workload_class == 0) {
        short_rt = cs.mean_response_s;
        short_p95 = cs.p95_response_s;
      } else {
        batch_rt = cs.mean_response_s;
      }
    }
    std::printf("%-10s %13.2f %13.2f %13.1f %10.2f\n",
                SchedulerKindName(kind), short_rt, short_p95, batch_rt,
                stats.throughput_tps);
  }

  std::printf(
      "\nShort transactions only queue behind scans at the data nodes, so\n"
      "their response time tracks DPN interference; the batch column shows\n"
      "which scheduler actually moves the bulk work through.\n");
  return 0;
}
