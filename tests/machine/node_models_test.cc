// Unit tests for the thin node wrappers: ControlNode cost categories and
// Dpn object-based service with backlog accounting.

#include <gtest/gtest.h>

#include "machine/control_node.h"
#include "machine/dpn.h"

namespace wtpgsched {
namespace {

SimConfig Table1() { return SimConfig(); }

TEST(ControlNodeTest, CostCategories) {
  Simulator sim;
  ControlNode cn(&sim, Table1());
  SimTime startup_done = -1;
  SimTime commit_done = -1;
  SimTime msg_done = -1;
  cn.SubmitStartup(MsToTime(5.0), [&] { startup_done = sim.Now(); });
  cn.SubmitCommit([&] { commit_done = sim.Now(); });
  cn.SubmitMessage([&] { msg_done = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(startup_done, MsToTime(7.0));   // sot 2 + extra 5.
  EXPECT_EQ(commit_done, MsToTime(14.0));   // + cot 7.
  EXPECT_EQ(msg_done, MsToTime(16.0));      // + msg 2.
  EXPECT_EQ(cn.busy_time(), MsToTime(16.0));
}

TEST(ControlNodeTest, GenericWork) {
  Simulator sim;
  ControlNode cn(&sim, Table1());
  SimTime done = -1;
  cn.SubmitWork(MsToTime(30.0), [&] { done = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(done, MsToTime(30.0));
}

TEST(DpnTest, ScanTimeIsObjectsTimesObjTime) {
  Simulator sim;
  Dpn dpn(&sim, 0, /*obj_time_ms=*/1000.0);
  SimTime done = -1;
  dpn.SubmitCohort(/*objects=*/2.5, /*quantum_objects=*/1.0,
                   [&] { done = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(done, MsToTime(2500.0));
  EXPECT_EQ(dpn.cohorts_completed(), 1u);
}

TEST(DpnTest, RoundRobinBetweenCohorts) {
  Simulator sim;
  Dpn dpn(&sim, 3, 1000.0);
  SimTime done_a = -1;
  SimTime done_b = -1;
  dpn.SubmitCohort(2.0, 1.0, [&] { done_a = sim.Now(); });
  dpn.SubmitCohort(2.0, 1.0, [&] { done_b = sim.Now(); });
  sim.RunToCompletion();
  // Slices A1 B1 A1 B1 (seconds).
  EXPECT_EQ(done_a, MsToTime(3000.0));
  EXPECT_EQ(done_b, MsToTime(4000.0));
}

TEST(DpnTest, BacklogTracksOutstandingObjects) {
  Simulator sim;
  Dpn dpn(&sim, 1, 1000.0);
  EXPECT_DOUBLE_EQ(dpn.BacklogObjects(), 0.0);
  dpn.SubmitCohort(3.0, 1.0, nullptr);
  dpn.SubmitCohort(2.0, 1.0, nullptr);
  EXPECT_DOUBLE_EQ(dpn.BacklogObjects(), 5.0);
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(dpn.BacklogObjects(), 0.0);
}

TEST(DpnTest, FractionalQuantum) {
  Simulator sim;
  Dpn dpn(&sim, 2, 1000.0);
  SimTime done = -1;
  // 0.2 objects at 1/8-object quantum: ceil(0.2 / 0.125) slices.
  dpn.SubmitCohort(0.2, 0.125, [&] { done = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(done, MsToTime(200.0));
}

TEST(DpnTest, ZeroObjectCohortCompletes) {
  Simulator sim;
  Dpn dpn(&sim, 0, 1000.0);
  bool done = false;
  dpn.SubmitCohort(0.0, 1.0, [&] { done = true; });
  sim.RunToCompletion();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace wtpgsched
