#include "machine/config.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(ConfigTest, DefaultsMatchTable1) {
  SimConfig c;
  EXPECT_EQ(c.machine.num_nodes, 8);
  EXPECT_DOUBLE_EQ(c.costs.obj_time_ms, 1000.0);
  EXPECT_DOUBLE_EQ(c.costs.msg_time_ms, 2.0);
  EXPECT_DOUBLE_EQ(c.costs.sot_time_ms, 2.0);
  EXPECT_DOUBLE_EQ(c.costs.cot_time_ms, 7.0);
  EXPECT_DOUBLE_EQ(c.costs.dd_time_ms, 1.0);
  EXPECT_DOUBLE_EQ(c.costs.kwtpg_time_ms, 10.0);
  EXPECT_DOUBLE_EQ(c.costs.chain_time_ms, 30.0);
  EXPECT_DOUBLE_EQ(c.costs.top_time_ms, 5.0);
  EXPECT_DOUBLE_EQ(c.run.horizon_ms, 2'000'000);
  EXPECT_EQ(c.low_k, 2);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ConfigTest, HorizonConversion) {
  SimConfig c;
  EXPECT_EQ(c.horizon(), MsToTime(2'000'000));
  EXPECT_EQ(c.warmup(), 0);
}

TEST(ConfigTest, RejectsBadDd) {
  SimConfig c;
  c.machine.dd = 0;
  EXPECT_FALSE(c.Validate().ok());
  c.machine.dd = 9;  // > num_nodes.
  EXPECT_FALSE(c.Validate().ok());
  c.machine.dd = 8;
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ConfigTest, RejectsNonPositiveRate) {
  SimConfig c;
  c.workload.arrival_rate_tps = 0.0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ConfigTest, RejectsNegativeCosts) {
  SimConfig c;
  c.costs.msg_time_ms = -1.0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ConfigTest, RejectsWarmupPastHorizon) {
  SimConfig c;
  c.run.warmup_ms = c.run.horizon_ms;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ConfigTest, RejectsBadMplAndK) {
  SimConfig c;
  c.machine.mpl = 0;
  EXPECT_FALSE(c.Validate().ok());
  c.machine.mpl = 1;
  c.low_k = -1;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ConfigTest, SchedulerKindNames) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kNodc), "NODC");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kAsl), "ASL");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kC2pl), "C2PL");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kOpt), "OPT");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kGow), "GOW");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kLow), "LOW");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kLowLb), "LOW-LB");
}

}  // namespace
}  // namespace wtpgsched
