#include "machine/data_placement.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(DataPlacementTest, HomeNodeIsFileModNodes) {
  DataPlacement p(8, 16, 1);
  EXPECT_EQ(p.HomeNode(0), 0);
  EXPECT_EQ(p.HomeNode(7), 7);
  EXPECT_EQ(p.HomeNode(8), 0);
  EXPECT_EQ(p.HomeNode(15), 7);
}

TEST(DataPlacementTest, Dd1SinglePartitionAtHome) {
  DataPlacement p(8, 16, 1);
  EXPECT_EQ(p.NodeFor(5, 0), 5);
}

TEST(DataPlacementTest, PartitionsAreConsecutiveNodes) {
  DataPlacement p(8, 16, 4);
  EXPECT_EQ(p.NodeFor(2, 0), 2);
  EXPECT_EQ(p.NodeFor(2, 1), 3);
  EXPECT_EQ(p.NodeFor(2, 2), 4);
  EXPECT_EQ(p.NodeFor(2, 3), 5);
}

TEST(DataPlacementTest, PartitionsWrapAround) {
  DataPlacement p(8, 16, 4);
  EXPECT_EQ(p.NodeFor(6, 0), 6);
  EXPECT_EQ(p.NodeFor(6, 1), 7);
  EXPECT_EQ(p.NodeFor(6, 2), 0);
  EXPECT_EQ(p.NodeFor(6, 3), 1);
}

TEST(DataPlacementTest, FullDeclusteringCoversAllNodes) {
  DataPlacement p(8, 16, 8);
  std::vector<bool> seen(8, false);
  for (int c = 0; c < 8; ++c) seen[static_cast<size_t>(p.NodeFor(3, c))] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(DataPlacementTest, BalancedHomesExp2Layout) {
  // Experiment 2's layout: 8 read-only files (0..7) and 8 hot files
  // (8..15); each node must be home to exactly one of each.
  DataPlacement p(8, 16, 1);
  std::vector<int> read_only(8, 0);
  std::vector<int> hot(8, 0);
  for (FileId f = 0; f < 8; ++f) ++read_only[static_cast<size_t>(p.HomeNode(f))];
  for (FileId f = 8; f < 16; ++f) ++hot[static_cast<size_t>(p.HomeNode(f))];
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(read_only[static_cast<size_t>(i)], 1);
    EXPECT_EQ(hot[static_cast<size_t>(i)], 1);
  }
}

TEST(DataPlacementDeathTest, RejectsOutOfRange) {
  DataPlacement p(8, 16, 2);
  EXPECT_DEATH(p.HomeNode(16), "");
  EXPECT_DEATH(p.NodeFor(0, 2), "");
  EXPECT_DEATH(p.NodeFor(0, -1), "");
}

}  // namespace
}  // namespace wtpgsched
