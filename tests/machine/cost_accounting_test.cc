// Precise accounting of the Table-1 CPU costs on the control node for a
// single isolated transaction — pins the execution flow (startup, lock
// decisions, two messages per step, commit) against hand-computed totals.

#include <gtest/gtest.h>

#include "machine/machine.h"

namespace wtpgsched {
namespace {

// One Pattern-1 transaction, 4 steps, 2 lock requests; horizon 100 s.
SimConfig OneShotConfig(SchedulerKind kind) {
  SimConfig c;
  c.scheduler = kind;
  c.machine.num_files = 16;
  c.machine.dd = 1;
  c.workload.arrival_rate_tps = 1.0;
  c.workload.max_arrivals = 1;
  c.run.horizon_ms = 100'000;
  c.run.seed = 3;
  return c;
}

double CnBusyMs(const RunStats& stats, const SimConfig& c) {
  return stats.cn_utilization * c.run.horizon_ms;
}

TEST(CostAccountingTest, NodcControlNodeTime) {
  // sot 2 + 2 lock decisions x 0 + 4 steps x 2 msg x 2 + cot 7 = 25 ms.
  const SimConfig c = OneShotConfig(SchedulerKind::kNodc);
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  ASSERT_EQ(stats.completions, 1u);
  EXPECT_NEAR(CnBusyMs(stats, c), 25.0, 1e-6);
}

TEST(CostAccountingTest, C2plControlNodeTime) {
  // NODC total + 2 lock decisions x ddtime 1 = 27 ms.
  const SimConfig c = OneShotConfig(SchedulerKind::kC2pl);
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  ASSERT_EQ(stats.completions, 1u);
  EXPECT_NEAR(CnBusyMs(stats, c), 27.0, 1e-6);
}

TEST(CostAccountingTest, GowControlNodeTime) {
  // sot 2 + chain test 5 + 2 x chaintime 30 + 16 msg + cot 7 = 90 ms.
  const SimConfig c = OneShotConfig(SchedulerKind::kGow);
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  ASSERT_EQ(stats.completions, 1u);
  EXPECT_NEAR(CnBusyMs(stats, c), 90.0, 1e-6);
}

TEST(CostAccountingTest, LowControlNodeTime) {
  // sot 2 + 2 x kwtpgtime 10 (no competitors: 1 eval each) + 16 + 7 = 45.
  const SimConfig c = OneShotConfig(SchedulerKind::kLow);
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  ASSERT_EQ(stats.completions, 1u);
  EXPECT_NEAR(CnBusyMs(stats, c), 45.0, 1e-6);
}

TEST(CostAccountingTest, AslControlNodeTime) {
  // sot 2 + atomic preclaim (free) + no per-step lock decisions + 16 + 7.
  const SimConfig c = OneShotConfig(SchedulerKind::kAsl);
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  ASSERT_EQ(stats.completions, 1u);
  EXPECT_NEAR(CnBusyMs(stats, c), 25.0, 1e-6);
}

TEST(CostAccountingTest, ResponseTimeDecomposition) {
  // Isolated NODC transaction: CN costs (25 ms) + scan 7.2 s = 7.225 s.
  const SimConfig c = OneShotConfig(SchedulerKind::kNodc);
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_NEAR(stats.mean_response_s, 7.225, 1e-6);
}

TEST(CostAccountingTest, ResponseTimeAtDd8) {
  // Scan time 7.2/8 = 0.9 s plus the same 25 ms of CN work.
  SimConfig c = OneShotConfig(SchedulerKind::kNodc);
  c.machine.dd = 8;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_NEAR(stats.mean_response_s, 0.925, 1e-6);
}

TEST(CostAccountingTest, DpnBusyTimeEqualsScanDemand) {
  // 7.2 objects at 1 s/object spread over the DPNs; utilization integral
  // must equal the demand regardless of DD.
  for (int dd : {1, 2, 8}) {
    SimConfig c = OneShotConfig(SchedulerKind::kNodc);
    c.machine.dd = dd;
    Machine m(c, Pattern::Experiment1(16));
    const RunStats stats = m.Run();
    const double total_busy_s =
        stats.mean_dpn_utilization * 8 * (c.run.horizon_ms / 1000.0);
    EXPECT_NEAR(total_busy_s, 7.2, 1e-6) << "dd=" << dd;
  }
}

}  // namespace
}  // namespace wtpgsched
