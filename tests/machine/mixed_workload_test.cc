#include <gtest/gtest.h>

#include "analysis/serializability.h"
#include "machine/machine.h"
#include "workload/pattern_parser.h"

namespace wtpgsched {
namespace {

std::vector<WeightedPattern> ShortPlusBatchMix() {
  StatusOr<Pattern> shorts = ParsePattern("w(F:0.05)", 16);
  EXPECT_TRUE(shorts.ok());
  std::vector<WeightedPattern> mix;
  mix.push_back(WeightedPattern{*shorts, 0.8});
  mix.push_back(WeightedPattern{Pattern::Experiment1(16), 0.2});
  return mix;
}

TEST(MixedWorkloadMachineTest, DrainsAndSerializable) {
  for (SchedulerKind kind : {SchedulerKind::kLow, SchedulerKind::kC2pl,
                             SchedulerKind::kAsl, SchedulerKind::kTwoPl}) {
    SimConfig c;
    c.scheduler = kind;
    c.machine.num_files = 16;
    c.workload.arrival_rate_tps = 2.0;
    c.workload.max_arrivals = 80;
    c.run.horizon_ms = 10'000'000;
    c.run.seed = 17;
    Machine m(c, ShortPlusBatchMix());
    const RunStats stats = m.Run();
    EXPECT_EQ(stats.completions, 80u) << SchedulerKindName(kind);
    EXPECT_TRUE(CheckConflictSerializability(m.schedule_log()).serializable)
        << SchedulerKindName(kind);
  }
}

TEST(MixedWorkloadMachineTest, MedianReflectsShortClass) {
  // With 80% tiny transactions, the median response is far below the mean
  // (which the batch class dominates).
  SimConfig c;
  c.scheduler = SchedulerKind::kLow;
  c.machine.num_files = 16;
  c.workload.arrival_rate_tps = 2.0;
  c.run.horizon_ms = 1'000'000;
  c.run.seed = 18;
  Machine m(c, ShortPlusBatchMix());
  const RunStats stats = m.Run();
  EXPECT_GT(stats.completions_measured, 100u);
  EXPECT_LT(stats.median_response_s, stats.mean_response_s * 0.5);
}

TEST(MixedWorkloadMachineTest, MixValidatedAgainstNumFiles) {
  SimConfig c;
  c.scheduler = SchedulerKind::kNodc;
  c.machine.num_files = 8;  // Experiment2 needs 16.
  c.workload.arrival_rate_tps = 1.0;
  std::vector<WeightedPattern> mix;
  mix.push_back(WeightedPattern{Pattern::Experiment2(), 1.0});
  EXPECT_DEATH(Machine(c, std::move(mix)), "beyond num_files");
}

}  // namespace
}  // namespace wtpgsched
