#include "machine/machine.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

SimConfig SmallConfig(SchedulerKind kind) {
  SimConfig c;
  c.scheduler = kind;
  c.machine.num_files = 16;
  c.machine.dd = 1;
  c.workload.arrival_rate_tps = 0.3;  // Light load.
  c.run.horizon_ms = 400'000;
  c.run.seed = 7;
  return c;
}

TEST(MachineTest, SingleTransactionLifecycle) {
  SimConfig c = SmallConfig(SchedulerKind::kNodc);
  c.workload.max_arrivals = 1;
  c.run.horizon_ms = 100'000;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_EQ(stats.arrivals, 1u);
  EXPECT_EQ(stats.completions, 1u);
  EXPECT_EQ(m.in_flight(), 0u);
  // Service demand is 7.2 s of scanning plus small CN costs; an idle system
  // completes it in just over 7.2 s.
  EXPECT_GT(stats.mean_response_s, 7.2);
  EXPECT_LT(stats.mean_response_s, 8.0);
}

TEST(MachineTest, ResponseTimeScalesWithDeclustering) {
  // One isolated transaction at DD=8 finishes ~8x faster (scan-wise).
  SimConfig c = SmallConfig(SchedulerKind::kNodc);
  c.workload.max_arrivals = 1;
  c.machine.dd = 8;
  c.run.horizon_ms = 100'000;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_EQ(stats.completions, 1u);
  EXPECT_GT(stats.mean_response_s, 0.9);
  EXPECT_LT(stats.mean_response_s, 1.2);
}

TEST(MachineTest, AllSchedulersDrainFiniteWorkload) {
  // Liveness: with arrivals cut off, every scheduler must finish every
  // transaction (no deadlock, no stuck retries).
  for (SchedulerKind kind :
       {SchedulerKind::kNodc, SchedulerKind::kAsl, SchedulerKind::kC2pl,
        SchedulerKind::kOpt, SchedulerKind::kGow, SchedulerKind::kLow,
        SchedulerKind::kLowLb}) {
    SimConfig c = SmallConfig(kind);
    c.workload.max_arrivals = 40;
    c.run.horizon_ms = 3'000'000;
    Machine m(c, Pattern::Experiment1(16));
    const RunStats stats = m.Run();
    EXPECT_EQ(stats.arrivals, 40u) << SchedulerKindName(kind);
    EXPECT_EQ(stats.completions, 40u) << SchedulerKindName(kind);
    EXPECT_EQ(m.in_flight(), 0u) << SchedulerKindName(kind);
  }
}

TEST(MachineTest, DeterministicAcrossRuns) {
  SimConfig c = SmallConfig(SchedulerKind::kLow);
  c.workload.max_arrivals = 30;
  Machine m1(c, Pattern::Experiment1(16));
  Machine m2(c, Pattern::Experiment1(16));
  const RunStats s1 = m1.Run();
  const RunStats s2 = m2.Run();
  EXPECT_EQ(s1.completions, s2.completions);
  EXPECT_DOUBLE_EQ(s1.mean_response_s, s2.mean_response_s);
  EXPECT_EQ(s1.blocked, s2.blocked);
  EXPECT_EQ(s1.delayed, s2.delayed);
  EXPECT_EQ(m1.simulator().events_executed(), m2.simulator().events_executed());
}

TEST(MachineTest, SeedChangesWorkload) {
  SimConfig c = SmallConfig(SchedulerKind::kNodc);
  c.workload.max_arrivals = 30;
  SimConfig c2 = c;
  c2.run.seed = 8;
  Machine m1(c, Pattern::Experiment1(16));
  Machine m2(c2, Pattern::Experiment1(16));
  EXPECT_NE(m1.Run().mean_response_s, m2.Run().mean_response_s);
}

TEST(MachineTest, MplOneSerializesC2pl) {
  SimConfig c = SmallConfig(SchedulerKind::kC2pl);
  c.machine.mpl = 1;
  c.workload.max_arrivals = 10;
  c.run.horizon_ms = 2'000'000;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_EQ(stats.completions, 10u);
  // With one transaction at a time there is nothing to block on.
  EXPECT_EQ(stats.blocked, 0u);
  EXPECT_EQ(stats.delayed, 0u);
}

TEST(MachineTest, OptRecordsRestartsUnderContention) {
  SimConfig c = SmallConfig(SchedulerKind::kOpt);
  c.workload.arrival_rate_tps = 0.8;
  c.workload.max_arrivals = 200;
  c.run.horizon_ms = 10'000'000;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_EQ(stats.completions, 200u);
  EXPECT_GT(stats.restarts, 0u);
}

TEST(MachineTest, LockersNeverRestart) {
  for (SchedulerKind kind : {SchedulerKind::kAsl, SchedulerKind::kC2pl,
                             SchedulerKind::kGow, SchedulerKind::kLow}) {
    SimConfig c = SmallConfig(kind);
    c.workload.arrival_rate_tps = 0.7;
    c.workload.max_arrivals = 100;
    c.run.horizon_ms = 10'000'000;
    Machine m(c, Pattern::Experiment1(16));
    const RunStats stats = m.Run();
    EXPECT_EQ(stats.restarts, 0u) << SchedulerKindName(kind);
    EXPECT_EQ(stats.completions, 100u) << SchedulerKindName(kind);
  }
}

TEST(MachineTest, UtilizationsWithinBounds) {
  SimConfig c = SmallConfig(SchedulerKind::kNodc);
  c.workload.arrival_rate_tps = 0.9;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_GT(stats.mean_dpn_utilization, 0.3);
  EXPECT_LE(stats.max_dpn_utilization, 1.0 + 1e-9);
  EXPECT_GT(stats.cn_utilization, 0.0);
  EXPECT_LT(stats.cn_utilization, 0.2);  // CN is not the bottleneck here.
}

TEST(MachineTest, WarmupExcludesEarlyCompletions) {
  SimConfig c = SmallConfig(SchedulerKind::kNodc);
  c.workload.max_arrivals = 20;
  c.run.warmup_ms = 399'000;  // Nearly the whole horizon.
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_EQ(stats.completions, 20u);
  EXPECT_LT(stats.completions_measured, stats.completions);
}

TEST(MachineTest, BacklogProbeReflectsQueuedWork) {
  SimConfig c = SmallConfig(SchedulerKind::kNodc);
  c.workload.max_arrivals = 0;
  Machine m(c, Pattern::Experiment1(16));
  // Before running, no work anywhere.
  EXPECT_DOUBLE_EQ(m.BacklogObjectsForFile(0), 0.0);
}

TEST(MachineTest, ScheduleLogRecordsCommits) {
  SimConfig c = SmallConfig(SchedulerKind::kLow);
  c.workload.max_arrivals = 15;
  c.run.horizon_ms = 2'000'000;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_EQ(stats.completions, 15u);
  EXPECT_EQ(m.schedule_log().committed().size(), 15u);
  // Each Pattern-1 transaction logs 4 accesses.
  EXPECT_EQ(m.schedule_log().accesses().size(), 60u);
}

TEST(MachineDeathTest, RunTwiceDies) {
  SimConfig c = SmallConfig(SchedulerKind::kNodc);
  c.workload.max_arrivals = 1;
  Machine m(c, Pattern::Experiment1(16));
  m.Run();
  EXPECT_DEATH(m.Run(), "twice");
}

}  // namespace
}  // namespace wtpgsched
