// Determinism tests for the parallel experiment harness: for any jobs value
// the batch runner must produce byte-identical aggregates to the serial
// path, and concurrent replicas must not bleed state into each other.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/experiments.h"
#include "driver/sim_run.h"
#include "driver/sweep.h"
#include "machine/machine.h"

namespace wtpgsched {
namespace {

SimConfig QuickConfig(SchedulerKind kind, double rate = 0.5) {
  SimConfig c;
  c.scheduler = kind;
  c.machine.num_files = 16;
  c.run.horizon_ms = 200'000;
  c.workload.arrival_rate_tps = rate;
  c.run.seed = 3;
  return c;
}

const Pattern& TestPattern() {
  static const Pattern* pattern = new Pattern(Pattern::Experiment1(16));
  return *pattern;
}

TEST(ParallelRunTest, AggregateByteIdenticalAcrossJobCounts) {
  const SimConfig c = QuickConfig(SchedulerKind::kLow);
  const std::string serial =
      RunAggregate(c, TestPattern(), /*num_seeds=*/4, /*jobs=*/1).ToJson();
  for (int jobs : {2, 8}) {
    const std::string parallel =
        RunAggregate(c, TestPattern(), 4, jobs).ToJson();
    EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
  }
}

TEST(ParallelRunTest, ReplicasReturnInSubmissionOrder) {
  std::vector<SimConfig> configs;
  for (int i = 0; i < 6; ++i) {
    SimConfig c = QuickConfig(SchedulerKind::kNodc);
    c.run.seed = 10 + static_cast<uint64_t>(i);
    configs.push_back(c);
  }
  const std::vector<RunStats> batch = RunReplicas(configs, TestPattern(), 4);
  ASSERT_EQ(batch.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    const RunStats solo = RunSimulation(configs[i], TestPattern());
    EXPECT_EQ(batch[i].ToJson(), solo.ToJson()) << "replica " << i;
  }
}

TEST(ParallelRunTest, SweepIdenticalAcrossJobCounts) {
  const SimConfig c = QuickConfig(SchedulerKind::kGow);
  const std::vector<double> rates = {0.3, 0.6, 0.9};
  const auto serial = SweepArrivalRates(c, TestPattern(), rates, 2, 1);
  const auto parallel = SweepArrivalRates(c, TestPattern(), rates, 2, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].lambda_tps, parallel[i].lambda_tps);
    EXPECT_EQ(serial[i].result.ToJson(), parallel[i].result.ToJson());
  }
}

TEST(ParallelRunTest, TuneMplIdenticalAcrossJobCounts) {
  SimConfig c = QuickConfig(SchedulerKind::kC2pl, /*rate=*/1.0);
  const MplChoice serial = TuneMpl(c, TestPattern(), {1, 4, 16}, 2, 1);
  const MplChoice parallel = TuneMpl(c, TestPattern(), {1, 4, 16}, 2, 8);
  EXPECT_EQ(serial.mpl, parallel.mpl);
  EXPECT_EQ(serial.result.ToJson(), parallel.result.ToJson());
}

TEST(ParallelRunTest, FindRateIdenticalAndReportsSeeds) {
  const SimConfig c = QuickConfig(SchedulerKind::kNodc);
  const OperatingPoint serial = FindRateForResponseTime(
      c, TestPattern(), /*target_s=*/30.0, 0.1, 1.6, /*num_seeds=*/2,
      /*iters=*/5, /*tol_s=*/3.0, /*jobs=*/1);
  const OperatingPoint parallel = FindRateForResponseTime(
      c, TestPattern(), 30.0, 0.1, 1.6, 2, 5, 3.0, /*jobs=*/8);
  EXPECT_DOUBLE_EQ(serial.lambda_tps, parallel.lambda_tps);
  EXPECT_DOUBLE_EQ(serial.mean_response_s, parallel.mean_response_s);
  EXPECT_DOUBLE_EQ(serial.throughput_tps, parallel.throughput_tps);
  EXPECT_EQ(serial.converged, parallel.converged);
  EXPECT_EQ(serial.num_seeds, 2);
  EXPECT_EQ(parallel.num_seeds, 2);
}

TEST(ParallelRunTest, NonConvergedBracketsReportSeedCount) {
  const SimConfig c = QuickConfig(SchedulerKind::kNodc);
  // 1 s is below even an idle system's response time -> low bracket.
  const OperatingPoint low = FindRateForResponseTime(
      c, TestPattern(), 1.0, 0.1, 1.0, /*num_seeds=*/3, 4, 1.0, 2);
  EXPECT_FALSE(low.converged);
  EXPECT_EQ(low.num_seeds, 3);
  // An absurdly high target is above the curve -> high bracket.
  const OperatingPoint high = FindRateForResponseTime(
      c, TestPattern(), 10'000.0, 0.1, 0.5, /*num_seeds=*/3, 4, 1.0, 2);
  EXPECT_FALSE(high.converged);
  EXPECT_EQ(high.num_seeds, 3);
}

TEST(ParallelRunTest, AggregateCountersAreSummedPerSeed) {
  const SimConfig c = QuickConfig(SchedulerKind::kLow, /*rate=*/0.8);
  const AggregateResult agg = RunAggregate(c, TestPattern(), 2, 2);
  uint64_t expected_blocked = 0;
  for (int i = 0; i < 2; ++i) {
    SimConfig replica = c;
    replica.run.seed = c.run.seed + static_cast<uint64_t>(i);
    expected_blocked += RunSimulation(replica, TestPattern()).blocked;
  }
  uint64_t merged_blocked = 0;
  bool found = false;
  for (const auto& [name, value] : agg.counters) {
    if (name == "blocked") {
      merged_blocked = value;
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(merged_blocked, expected_blocked);
  // The averaged legacy field and the raw summed counter must agree.
  EXPECT_DOUBLE_EQ(agg.blocked, static_cast<double>(expected_blocked) / 2.0);
}

TEST(ParallelRunTest, ConcurrentMachinesDoNotBleedState) {
  // Two different configurations running simultaneously must each match
  // their serial result — catches any scheduler/metrics/trace state shared
  // across Machine instances.
  SimConfig low = QuickConfig(SchedulerKind::kLow, 0.8);
  SimConfig c2pl = QuickConfig(SchedulerKind::kC2pl, 0.6);
  c2pl.run.seed = 17;
  const std::string low_expected =
      RunSimulation(low, TestPattern()).ToJson();
  const std::string c2pl_expected =
      RunSimulation(c2pl, TestPattern()).ToJson();
  std::string low_json, c2pl_json;
  std::thread t1([&] { low_json = RunSimulation(low, TestPattern()).ToJson(); });
  std::thread t2(
      [&] { c2pl_json = RunSimulation(c2pl, TestPattern()).ToJson(); });
  t1.join();
  t2.join();
  EXPECT_EQ(low_json, low_expected);
  EXPECT_EQ(c2pl_json, c2pl_expected);
}

TEST(ParallelRunTest, RunAggregatesMatchesPerBaseCalls) {
  std::vector<SimConfig> bases;
  bases.push_back(QuickConfig(SchedulerKind::kNodc, 0.4));
  bases.push_back(QuickConfig(SchedulerKind::kNodc, 0.8));
  const auto batch = RunAggregates(bases, TestPattern(), 2, 4);
  ASSERT_EQ(batch.size(), 2u);
  for (size_t i = 0; i < bases.size(); ++i) {
    const AggregateResult solo =
        RunAggregate(bases[i], TestPattern(), 2, 1);
    EXPECT_EQ(batch[i].ToJson(), solo.ToJson()) << "base " << i;
  }
}

TEST(ParallelRunTest, ResolveJobsPositivePassthrough) {
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(7), 7);
  EXPECT_GE(ResolveJobs(0), 1);  // DefaultJobs: env or hardware.
  EXPECT_GE(DefaultJobs(), 1);
}

}  // namespace
}  // namespace wtpgsched
