#include <gtest/gtest.h>

#include "driver/sweep.h"
#include "machine/config.h"
#include "workload/pattern.h"

namespace wtpgsched {
namespace {

// Regression coverage for the FindRateForResponseTime convergence flag: it
// used to report converged == true whenever the target was bracketed, even
// when every bisection probe landed outside tol_s. Both outcomes of the
// bracketed path are pinned here (the unbracketed paths are covered in
// integration/driver_test.cc).

SimConfig QuickConfig() {
  SimConfig c;
  c.scheduler = SchedulerKind::kNodc;
  c.machine.num_files = 16;
  c.run.horizon_ms = 300'000;
  c.run.seed = 3;
  return c;
}

TEST(SweepConvergenceTest, BracketedTargetWithinToleranceConverges) {
  // Generous tolerance: the very first mid-point probe is within tol_s of
  // any response time the bracket can produce, so the search must converge.
  const OperatingPoint op = FindRateForResponseTime(
      QuickConfig(), Pattern::Experiment1(16), /*target_s=*/30.0,
      /*lo_tps=*/0.1, /*hi_tps=*/1.6, /*num_seeds=*/1, /*iters=*/8,
      /*tol_s=*/200.0);
  EXPECT_TRUE(op.converged);
  EXPECT_GE(op.lambda_tps, 0.1);
  EXPECT_LE(op.lambda_tps, 1.6);
  EXPECT_NEAR(op.mean_response_s, 30.0, 200.0);
}

TEST(SweepConvergenceTest, BracketedTargetBeyondToleranceDoesNotConverge) {
  // The target IS bracketed (an idle NODC run takes a few seconds, a
  // saturated one much longer than 30 s), but with a single iteration and a
  // near-zero tolerance no probe can land on the target exactly. The old
  // code reported converged == true here.
  const OperatingPoint op = FindRateForResponseTime(
      QuickConfig(), Pattern::Experiment1(16), /*target_s=*/30.0,
      /*lo_tps=*/0.1, /*hi_tps=*/1.6, /*num_seeds=*/1, /*iters=*/1,
      /*tol_s=*/1e-9);
  EXPECT_FALSE(op.converged);
  // The best probe is still reported so callers can inspect how close the
  // unconverged search got.
  EXPECT_GT(op.mean_response_s, 0.0);
  EXPECT_GT(op.num_seeds, 0);
}

}  // namespace
}  // namespace wtpgsched
