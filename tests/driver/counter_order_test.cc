// Lazily-registered counters (fault.*, admission.*, health.*) must
// serialize in deterministic first-registration order regardless of the
// worker count: the CounterRegistry merge folds replicas in submission
// order, so jobs=1 and jobs=N aggregates are byte-identical even when some
// replicas register counters others never touch.

#include <string>

#include <gtest/gtest.h>

#include "driver/sim_run.h"
#include "machine/config.h"
#include "workload/pattern.h"

namespace wtpgsched {
namespace {

TEST(CounterOrderTest, FaultAndHealthCountersJobsInvariant) {
  SimConfig config;
  config.scheduler = SchedulerKind::kLow;
  config.workload.arrival_rate_tps = 1.0;
  config.run.horizon_ms = 200'000;
  config.run.seed = 21;
  // Every lazily-registered counter family at once: fault injection,
  // admission gating (via saturation), and the telemetry health verdicts.
  config.fault.dpn_mttf_ms = 150'000;
  config.fault.dpn_mttr_ms = 20'000;
  config.fault.abort_rate_per_s = 0.05;
  config.run.telemetry_sample_ms = 5'000;
  const Pattern pattern = Pattern::Experiment1(config.machine.num_files);

  const std::string serial =
      RunAggregate(config, pattern, /*num_seeds=*/6, /*jobs=*/1).ToJson();
  const std::string parallel4 =
      RunAggregate(config, pattern, /*num_seeds=*/6, /*jobs=*/4).ToJson();
  const std::string parallel3 =
      RunAggregate(config, pattern, /*num_seeds=*/6, /*jobs=*/3).ToJson();
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel3);
  EXPECT_NE(serial.find("counters.health.thrashing"), std::string::npos);
  EXPECT_NE(serial.find("counters.fault."), std::string::npos);
}

}  // namespace
}  // namespace wtpgsched
