// Proves the kernel's steady-state allocation-freedom claim: once the event
// slab and heap are warm, scheduling, cancelling and popping events performs
// zero heap allocations. The global operator new is replaced (binary-wide)
// with a counting wrapper; the test asserts the counter does not move across
// a warmed-up workload.
//
// This file must NOT be compiled into sanitizer builds' test filters —
// replacing operator new under ASan would fight its interceptors. The asan
// and tsan presets run other suites (see CMakePresets.json).

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace {
std::atomic<std::size_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wtpgsched {
namespace {

TEST(EventAllocTest, SteadyStateScheduleCancelPopIsAllocationFree) {
  Simulator sim;
  // Warm-up: grow the slab and heap past the working set (the callbacks
  // store their captures inline, so only the vectors ever allocate).
  int fired = 0;
  for (int i = 0; i < 256; ++i) {
    sim.ScheduleAfter(i, [&fired] { ++fired; });
  }
  sim.RunToCompletion();
  ASSERT_EQ(fired, 256);

  const std::size_t before = g_heap_allocations.load();
  for (int round = 0; round < 100; ++round) {
    EventQueue::EventId doomed = 0;
    for (int i = 0; i < 64; ++i) {
      const auto id = sim.ScheduleAfter(i, [&fired] { ++fired; });
      if (i == 32) doomed = id;
    }
    ASSERT_TRUE(sim.Cancel(doomed));
    sim.RunToCompletion();
  }
  const std::size_t after = g_heap_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state event traffic hit the heap " << (after - before)
      << " times";
}

}  // namespace
}  // namespace wtpgsched
