#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(30, [&] { fired.push_back(3); });
  q.Schedule(10, [&] { fired.push_back(1); });
  q.Schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.Pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.Pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReflectsEarliest) {
  EventQueue q;
  q.Schedule(50, [] {});
  q.Schedule(20, [] {});
  EXPECT_EQ(q.NextTime(), 20);
}

TEST(EventQueueTest, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  const EventQueue::EventId id = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  const EventQueue::EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelledEntrySkippedOnPop) {
  EventQueue q;
  const EventQueue::EventId id = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(id);
  const EventQueue::Event e = q.Pop();
  EXPECT_EQ(e.time, 20);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventQueue::EventId a = q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.Pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, CancelRemovesInPlaceNoTombstones) {
  // The indexed heap removes cancelled entries immediately: heap_entries()
  // equals size() at every step, in any cancellation order. (The former
  // tombstone implementation only guaranteed this after compaction sweeps.)
  EventQueue q;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.Schedule(i, [] {}));
  EXPECT_EQ(q.heap_entries(), 100u);
  for (int i = 99; i >= 1; --i) {
    q.Cancel(ids[static_cast<size_t>(i)]);
    EXPECT_EQ(q.heap_entries(), q.size());
  }
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.heap_entries(), 1u);
  // The surviving event is intact.
  EXPECT_EQ(q.Pop().time, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, InteriorCancelPreservesOrderAndFifo) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventQueue::EventId> doomed;
  for (int i = 0; i < 8; ++i) {
    q.Schedule(5, [&fired, i] { fired.push_back(i); });  // FIFO batch.
    doomed.push_back(q.Schedule(50 + i, [] {}));
  }
  q.Schedule(1, [&fired] { fired.push_back(-1); });
  for (EventQueue::EventId id : doomed) q.Cancel(id);
  while (!q.empty()) q.Pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueTest, CancelAllThenReuse) {
  EventQueue q;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(q.Schedule(i, [] {}));
  for (EventQueue::EventId id : ids) q.Cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.heap_entries(), 0u);
  bool fired = false;
  q.Schedule(3, [&] { fired = true; });
  q.Pop().callback();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, StaleIdNeverCancelsARecycledSlot) {
  // Slab slots are recycled through a free list, but ids carry the slot's
  // generation: a handle to a dead event must not reach whatever event now
  // occupies its slot.
  EventQueue q;
  const EventQueue::EventId dead = q.Schedule(10, [] {});
  ASSERT_TRUE(q.Cancel(dead));
  bool fired = false;
  q.Schedule(20, [&] { fired = true; });  // Reuses the freed slot.
  EXPECT_FALSE(q.Cancel(dead)) << "stale id hit the recycled slot";
  EXPECT_EQ(q.size(), 1u);
  q.Pop().callback();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, PoppedIdCannotBeCancelled) {
  EventQueue q;
  const EventQueue::EventId id = q.Schedule(10, [] {});
  q.Pop();
  EXPECT_FALSE(q.Cancel(id));
}

}  // namespace
}  // namespace wtpgsched
