#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(30, [&] { fired.push_back(3); });
  q.Schedule(10, [&] { fired.push_back(1); });
  q.Schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.Pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.Pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReflectsEarliest) {
  EventQueue q;
  q.Schedule(50, [] {});
  q.Schedule(20, [] {});
  EXPECT_EQ(q.NextTime(), 20);
}

TEST(EventQueueTest, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  const EventQueue::EventId id = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  const EventQueue::EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelledEntrySkippedOnPop) {
  EventQueue q;
  const EventQueue::EventId id = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(id);
  const EventQueue::Event e = q.Pop();
  EXPECT_EQ(e.time, 20);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventQueue::EventId a = q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.Pop();
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace wtpgsched
