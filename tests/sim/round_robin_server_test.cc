#include "sim/round_robin_server.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace wtpgsched {
namespace {

TEST(RoundRobinServerTest, SingleJobRunsToCompletion) {
  Simulator sim;
  RoundRobinServer server(&sim, "dpn");
  SimTime done_at = -1;
  server.Submit(100, 30, [&] { done_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(done_at, 100);
  EXPECT_EQ(server.jobs_completed(), 1u);
}

TEST(RoundRobinServerTest, TwoEqualJobsInterleave) {
  Simulator sim;
  RoundRobinServer server(&sim, "dpn");
  SimTime done_a = -1;
  SimTime done_b = -1;
  // Two jobs of 100 each, quantum 50: slices A50 B50 A50 B50.
  server.Submit(100, 50, [&] { done_a = sim.Now(); });
  server.Submit(100, 50, [&] { done_b = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(done_a, 150);
  EXPECT_EQ(done_b, 200);
}

TEST(RoundRobinServerTest, ShortJobFinishesBeforeLongUnderSharing) {
  Simulator sim;
  RoundRobinServer server(&sim, "dpn");
  SimTime done_short = -1;
  SimTime done_long = -1;
  server.Submit(300, 10, [&] { done_long = sim.Now(); });
  server.Submit(30, 10, [&] { done_short = sim.Now(); });
  sim.RunToCompletion();
  // Round-robin: the short job gets every other quantum and finishes at
  // ~2x its service demand, long after-start.
  EXPECT_EQ(done_short, 60);
  EXPECT_EQ(done_long, 330);
}

TEST(RoundRobinServerTest, LastSliceIsRemainder) {
  Simulator sim;
  RoundRobinServer server(&sim, "dpn");
  SimTime done_at = -1;
  server.Submit(25, 10, [&] { done_at = sim.Now(); });  // 10+10+5.
  sim.RunToCompletion();
  EXPECT_EQ(done_at, 25);
}

TEST(RoundRobinServerTest, ZeroServiceCompletesImmediately) {
  Simulator sim;
  RoundRobinServer server(&sim, "dpn");
  SimTime done_at = -1;
  server.Submit(0, 10, [&] { done_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(done_at, 0);
}

TEST(RoundRobinServerTest, ArrivalWaitsForCurrentSlice) {
  Simulator sim;
  RoundRobinServer server(&sim, "dpn");
  SimTime done_b = -1;
  server.Submit(100, 100, nullptr);  // One big slice [0, 100].
  sim.ScheduleAfter(10, [&] {
    server.Submit(10, 100, [&] { done_b = sim.Now(); });
  });
  sim.RunToCompletion();
  // B arrives at 10 but the running slice is not preempted.
  EXPECT_EQ(done_b, 110);
}

TEST(RoundRobinServerTest, UtilizationAccounting) {
  Simulator sim;
  RoundRobinServer server(&sim, "dpn");
  server.Submit(40, 10, nullptr);
  sim.ScheduleAfter(80, [] {});
  sim.RunToCompletion();
  EXPECT_EQ(server.busy_time(), 40);
  EXPECT_DOUBLE_EQ(server.Utilization(), 0.5);
}

TEST(RoundRobinServerTest, ManyJobsAllComplete) {
  Simulator sim;
  RoundRobinServer server(&sim, "dpn");
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    server.Submit(17 + i, 5, [&] { ++completed; });
  }
  sim.RunToCompletion();
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(server.active_jobs(), 0u);
}

}  // namespace
}  // namespace wtpgsched
