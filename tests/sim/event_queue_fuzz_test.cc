// Differential fuzz for the indexed-heap EventQueue: drive it and a naive
// sorted-list reference through randomized schedule/cancel/pop
// interleavings and assert they agree on everything observable — pop order
// (including FIFO ties at equal timestamps), Cancel return values,
// NextTime, and size. Seeded and deterministic.

#include "sim/event_queue.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

// The reference: a vector kept sorted by (time, insertion seq). O(n) per
// operation, obviously correct.
class ReferenceQueue {
 public:
  struct Event {
    SimTime time;
    uint64_t seq;
    int tag;
  };

  uint64_t Schedule(SimTime time, int tag) {
    const uint64_t seq = next_seq_++;
    Event e{time, seq, tag};
    auto pos = std::upper_bound(
        list_.begin(), list_.end(), e, [](const Event& a, const Event& b) {
          return a.time != b.time ? a.time < b.time : a.seq < b.seq;
        });
    list_.insert(pos, e);
    return seq;
  }

  bool Cancel(uint64_t seq) {
    for (auto it = list_.begin(); it != list_.end(); ++it) {
      if (it->seq == seq) {
        list_.erase(it);
        return true;
      }
    }
    return false;
  }

  Event Pop() {
    Event e = list_.front();
    list_.erase(list_.begin());
    return e;
  }

  SimTime NextTime() const { return list_.empty() ? kSimTimeMax : list_.front().time; }
  size_t size() const { return list_.size(); }
  bool empty() const { return list_.empty(); }

 private:
  std::vector<Event> list_;
  uint64_t next_seq_ = 1;
};

TEST(EventQueueFuzzTest, MatchesSortedListReferenceOver10kOps) {
  std::mt19937 rng(20260807);
  // Few distinct timestamps so equal-time FIFO ties are common.
  std::uniform_int_distribution<SimTime> time_dist(0, 49);
  std::uniform_int_distribution<int> op_dist(0, 99);

  EventQueue q;
  ReferenceQueue ref;
  std::vector<int> popped_q, popped_ref;
  // Every id ever issued, live or dead — cancels draw from the full set so
  // stale-id and double-cancel paths get exercised.
  std::vector<std::pair<EventQueue::EventId, uint64_t>> issued;
  int next_tag = 0;

  for (int op = 0; op < 10'000; ++op) {
    const int roll = op_dist(rng);
    if (roll < 45 || q.empty()) {
      const SimTime t = time_dist(rng);
      const int tag = next_tag++;
      const EventQueue::EventId id =
          q.Schedule(t, [tag, &popped_q] { popped_q.push_back(tag); });
      issued.emplace_back(id, ref.Schedule(t, tag));
    } else if (roll < 70 && !issued.empty()) {
      std::uniform_int_distribution<size_t> pick(0, issued.size() - 1);
      const auto [qid, rid] = issued[pick(rng)];
      ASSERT_EQ(q.Cancel(qid), ref.Cancel(rid)) << "op " << op;
    } else {
      ASSERT_EQ(q.NextTime(), ref.NextTime()) << "op " << op;
      EventQueue::Event e = q.Pop();
      const ReferenceQueue::Event r = ref.Pop();
      ASSERT_EQ(e.time, r.time) << "op " << op;
      e.callback();
      popped_ref.push_back(r.tag);
      ASSERT_EQ(popped_q.back(), popped_ref.back())
          << "pop order diverged at op " << op;
    }
    ASSERT_EQ(q.size(), ref.size()) << "op " << op;
    ASSERT_EQ(q.heap_entries(), q.size()) << "op " << op;
  }

  // Drain both queues; the tails must match too.
  while (!q.empty()) {
    ASSERT_EQ(q.NextTime(), ref.NextTime());
    EventQueue::Event e = q.Pop();
    const ReferenceQueue::Event r = ref.Pop();
    ASSERT_EQ(e.time, r.time);
    e.callback();
    popped_ref.push_back(r.tag);
  }
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(popped_q, popped_ref);
}

}  // namespace
}  // namespace wtpgsched
