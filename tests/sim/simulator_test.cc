#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(MsToTime(1.0), 1000);
  EXPECT_EQ(MsToTime(0.5), 500);
  EXPECT_EQ(SecondsToTime(2.0), 2'000'000);
  EXPECT_DOUBLE_EQ(TimeToMs(1500), 1.5);
  EXPECT_DOUBLE_EQ(TimeToSeconds(2'500'000), 2.5);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.ScheduleAfter(100, [&] { seen.push_back(sim.Now()); });
  sim.ScheduleAfter(50, [&] { seen.push_back(sim.Now()); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(10, [&] { ++fired; });
  sim.ScheduleAfter(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);  // Clock lands on the horizon.
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventExactlyAtHorizonRuns) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAfter(50, [&] { fired = true; });
  sim.RunUntil(50);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EventsScheduledDuringRun) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.ScheduleAfter(10, [&] {
    seen.push_back(sim.Now());
    sim.ScheduleAfter(5, [&] { seen.push_back(sim.Now()); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorDeathTest, NegativeDelayChecks) {
  // A negative delay is a cost-accounting bug upstream; it must fail
  // loudly instead of being clamped to "now".
  Simulator sim;
  EXPECT_DEATH(sim.ScheduleAfter(-5, [] {}), "negative delay");
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.ScheduleAfter(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepReturnsFalsePastHorizon) {
  Simulator sim;
  sim.ScheduleAfter(100, [] {});
  EXPECT_FALSE(sim.Step(50));
  EXPECT_EQ(sim.Now(), 0);  // Untouched.
  EXPECT_TRUE(sim.Step(100));
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.ScheduleAfter(i, [] {});
  sim.RunToCompletion();
  EXPECT_EQ(sim.events_executed(), 5u);
}

}  // namespace
}  // namespace wtpgsched
