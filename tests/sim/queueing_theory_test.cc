// Validation of the simulation kernel against closed-form queueing theory:
// the servers must reproduce M/M/1 (FCFS) and M/M/1-PS (round-robin with a
// small quantum) mean sojourn times. This pins both the event engine and
// the RNG distributions.

#include <gtest/gtest.h>

#include "sim/fcfs_server.h"
#include "sim/round_robin_server.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace wtpgsched {
namespace {

// Drives `jobs` Poisson arrivals (rate lambda per second) of exponential
// service (mean 1/mu seconds) into a server; returns the mean sojourn in
// seconds. `submit` receives (service_time, completion_callback).
template <typename Submit>
double MeanSojourn(Simulator* sim, Rng* rng, double lambda, double mu,
                   int jobs, Submit submit) {
  double total_sojourn_s = 0.0;
  int completed = 0;
  SimTime arrival_clock = 0;
  for (int i = 0; i < jobs; ++i) {
    arrival_clock += SecondsToTime(rng->Exponential(1.0 / lambda));
    const SimTime service = SecondsToTime(rng->Exponential(1.0 / mu));
    sim->ScheduleAt(arrival_clock, [sim, service, submit, &total_sojourn_s,
                                    &completed] {
      const SimTime arrived = sim->Now();
      submit(service, [sim, arrived, &total_sojourn_s, &completed] {
        total_sojourn_s += TimeToSeconds(sim->Now() - arrived);
        ++completed;
      });
    });
  }
  sim->RunToCompletion();
  EXPECT_EQ(completed, jobs);
  return total_sojourn_s / jobs;
}

struct MmCase {
  double lambda;
  double mu;
  uint64_t seed;
};

class Mm1Test : public testing::TestWithParam<MmCase> {};

TEST_P(Mm1Test, FcfsMatchesTheory) {
  const MmCase param = GetParam();
  Simulator sim;
  Rng rng(param.seed);
  FcfsServer server(&sim, "mm1");
  const double mean = MeanSojourn(
      &sim, &rng, param.lambda, param.mu, 60000,
      [&](SimTime service, std::function<void()> done) {
        server.Submit(service, std::move(done));
      });
  const double expected = 1.0 / (param.mu - param.lambda);
  EXPECT_NEAR(mean, expected, 0.12 * expected)
      << "lambda=" << param.lambda << " mu=" << param.mu;
}

TEST_P(Mm1Test, RoundRobinSmallQuantumMatchesProcessorSharing) {
  // M/M/1-PS has the same mean sojourn 1/(mu - lambda); round-robin with a
  // quantum far below the mean service time approximates PS.
  const MmCase param = GetParam();
  Simulator sim;
  Rng rng(param.seed + 1);
  RoundRobinServer server(&sim, "ps");
  const SimTime quantum = SecondsToTime(0.01 / param.mu);
  const double mean = MeanSojourn(
      &sim, &rng, param.lambda, param.mu, 30000,
      [&](SimTime service, std::function<void()> done) {
        server.Submit(service, quantum, std::move(done));
      });
  const double expected = 1.0 / (param.mu - param.lambda);
  EXPECT_NEAR(mean, expected, 0.12 * expected)
      << "lambda=" << param.lambda << " mu=" << param.mu;
}

INSTANTIATE_TEST_SUITE_P(
    Loads, Mm1Test,
    testing::Values(MmCase{0.3, 1.0, 11}, MmCase{0.5, 1.0, 12},
                    MmCase{0.7, 1.0, 13}, MmCase{1.6, 2.0, 14}),
    [](const testing::TestParamInfo<MmCase>& info) {
      return "rho" + std::to_string(static_cast<int>(
                         100 * info.param.lambda / info.param.mu)) +
             "_seed" + std::to_string(info.param.seed);
    });

// Utilization must match rho for a stable queue.
TEST(Mm1Test, UtilizationMatchesRho) {
  Simulator sim;
  Rng rng(21);
  FcfsServer server(&sim, "mm1");
  MeanSojourn(&sim, &rng, 0.6, 1.0, 60000,
              [&](SimTime service, std::function<void()> done) {
                server.Submit(service, std::move(done));
              });
  EXPECT_NEAR(server.Utilization(), 0.6, 0.02);
}

}  // namespace
}  // namespace wtpgsched
