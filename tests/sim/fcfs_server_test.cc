#include "sim/fcfs_server.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace wtpgsched {
namespace {

TEST(FcfsServerTest, ServesSingleJob) {
  Simulator sim;
  FcfsServer server(&sim, "cpu");
  SimTime done_at = -1;
  server.Submit(100, [&] { done_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(done_at, 100);
  EXPECT_EQ(server.jobs_completed(), 1u);
}

TEST(FcfsServerTest, JobsQueueFifo) {
  Simulator sim;
  FcfsServer server(&sim, "cpu");
  std::vector<SimTime> done;
  server.Submit(100, [&] { done.push_back(sim.Now()); });
  server.Submit(50, [&] { done.push_back(sim.Now()); });
  server.Submit(10, [&] { done.push_back(sim.Now()); });
  sim.RunToCompletion();
  // Serial service in arrival order: 100, then +50, then +10.
  EXPECT_EQ(done, (std::vector<SimTime>{100, 150, 160}));
}

TEST(FcfsServerTest, ZeroServiceTimeJob) {
  Simulator sim;
  FcfsServer server(&sim, "cpu");
  SimTime done_at = -1;
  server.Submit(0, [&] { done_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(done_at, 0);
}

TEST(FcfsServerTest, LateArrivalWaitsOnlyForCurrent) {
  Simulator sim;
  FcfsServer server(&sim, "cpu");
  std::vector<SimTime> done;
  server.Submit(100, [&] { done.push_back(sim.Now()); });
  sim.ScheduleAfter(150, [&] {
    server.Submit(10, [&] { done.push_back(sim.Now()); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(done, (std::vector<SimTime>{100, 160}));
}

TEST(FcfsServerTest, SubmissionFromCallbackQueuesBehindWaiting) {
  Simulator sim;
  FcfsServer server(&sim, "cpu");
  std::vector<int> order;
  server.Submit(10, [&] {
    order.push_back(1);
    server.Submit(10, [&] { order.push_back(3); });
  });
  server.Submit(10, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(FcfsServerTest, BusyTimeAndUtilization) {
  Simulator sim;
  FcfsServer server(&sim, "cpu");
  server.Submit(30, nullptr);
  server.Submit(20, nullptr);
  sim.ScheduleAfter(100, [] {});  // Keep the clock running to 100.
  sim.RunToCompletion();
  EXPECT_EQ(server.busy_time(), 50);
  EXPECT_DOUBLE_EQ(server.Utilization(), 0.5);
}

TEST(FcfsServerTest, QueueLength) {
  Simulator sim;
  FcfsServer server(&sim, "cpu");
  server.Submit(100, nullptr);
  server.Submit(100, nullptr);
  server.Submit(100, nullptr);
  // One in service, two waiting.
  EXPECT_TRUE(server.busy());
  EXPECT_EQ(server.queue_length(), 2u);
  sim.RunToCompletion();
  EXPECT_FALSE(server.busy());
  EXPECT_EQ(server.queue_length(), 0u);
}

}  // namespace
}  // namespace wtpgsched
