#include <gtest/gtest.h>

#include "sched/asl.h"
#include "sched/nodc.h"
#include "test_txns.h"

namespace wtpgsched {
namespace {

TEST(NodcTest, GrantsEverything) {
  NodcScheduler sched;
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  // Conflicting X on the same file is still granted (force-grant).
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kGrant);
  EXPECT_TRUE(sched.lock_table().Holds(0, 1));
  EXPECT_TRUE(sched.lock_table().Holds(0, 2));
}

TEST(NodcTest, CommitReleasesOnlyOwnLocks) {
  NodcScheduler sched;
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnLockRequest(t1, 0);
  sched.OnLockRequest(t2, 0);
  EXPECT_EQ(sched.OnCommit(t1), (std::vector<FileId>{0}));
  EXPECT_FALSE(sched.lock_table().Holds(0, 1));
  EXPECT_TRUE(sched.lock_table().Holds(0, 2));
}

TEST(NodcTest, ValidationAlwaysPasses) {
  NodcScheduler sched;
  Transaction t1 = MakeXTxn(1, {0});
  sched.OnStartup(t1);
  EXPECT_TRUE(sched.ValidateAtCommit(t1));
}

TEST(AslTest, AcquiresAllLocksAtStartup) {
  AslScheduler sched;
  Transaction t1 = MakeXTxn(1, {0, 1, 2});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.lock_table().NumHeldBy(1), 3u);
}

TEST(AslTest, RefusesWhenAnyLockUnavailable) {
  AslScheduler sched;
  Transaction t1 = MakeXTxn(1, {2});
  ASSERT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  // t2 needs files 1 and 2; 2 is held by t1 -> whole startup refused.
  Transaction t2 = MakeXTxn(2, {1, 2});
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kBlock);
  // Nothing partially acquired.
  EXPECT_EQ(sched.lock_table().NumHeldBy(2), 0u);
  EXPECT_EQ(sched.num_active(), 1u);
}

TEST(AslTest, AdmitsAfterRelease) {
  AslScheduler sched;
  Transaction t1 = MakeXTxn(1, {2});
  Transaction t2 = MakeXTxn(2, {1, 2});
  sched.OnStartup(t1);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kBlock);
  sched.OnCommit(t1);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.lock_table().NumHeldBy(2), 2u);
}

TEST(AslTest, SharedReadersCoexist) {
  AslScheduler sched;
  Transaction t1 = MakeSTxn(1, {5});
  Transaction t2 = MakeSTxn(2, {5});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
}

TEST(AslTest, WriterExcludedByReader) {
  AslScheduler sched;
  Transaction t1 = MakeSTxn(1, {5});
  Transaction t2 = MakeXTxn(2, {5});
  sched.OnStartup(t1);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kBlock);
}

TEST(AslTest, DeadlockFreeByConstruction) {
  // The classic 2PL deadlock scenario: T1 holds A wants B, T2 holds B
  // wants A. Under ASL the second transaction never starts, so the cycle
  // cannot form.
  AslScheduler sched;
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 0});
  ASSERT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kBlock);
  sched.OnCommit(t1);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
}

}  // namespace
}  // namespace wtpgsched
