#include "sched/scheduler_factory.h"

#include <gtest/gtest.h>

#include "machine/config.h"

namespace wtpgsched {
namespace {

TEST(SchedulerFactoryTest, CreatesEveryKindWithMatchingName) {
  const struct {
    SchedulerKind kind;
    const char* name;
  } cases[] = {
      {SchedulerKind::kNodc, "NODC"},     {SchedulerKind::kAsl, "ASL"},
      {SchedulerKind::kC2pl, "C2PL"},     {SchedulerKind::kOpt, "OPT"},
      {SchedulerKind::kGow, "GOW"},       {SchedulerKind::kLow, "LOW(K=2)"},
      {SchedulerKind::kLowLb, "LOW-LB(K=2)"},
      {SchedulerKind::kTwoPl, "2PL"},
  };
  for (const auto& c : cases) {
    SimConfig config;
    config.scheduler = c.kind;
    auto scheduler = CreateScheduler(config);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->name(), c.name);
    EXPECT_EQ(scheduler->num_active(), 0u);
  }
}

TEST(SchedulerFactoryTest, C2plMplShowsInName) {
  SimConfig config;
  config.scheduler = SchedulerKind::kC2pl;
  config.machine.mpl = 4;
  EXPECT_EQ(CreateScheduler(config)->name(), "C2PL+M4");
}

TEST(SchedulerFactoryTest, LowKRespected) {
  SimConfig config;
  config.scheduler = SchedulerKind::kLow;
  config.low_k = 5;
  EXPECT_EQ(CreateScheduler(config)->name(), "LOW(K=5)");
}

TEST(SchedulerFactoryTest, OnlyOptAndTwoPlRestartCapable) {
  // traits().defers_writes marks OPT's private-workspace model.
  for (SchedulerKind kind :
       {SchedulerKind::kNodc, SchedulerKind::kAsl, SchedulerKind::kC2pl,
        SchedulerKind::kGow, SchedulerKind::kLow, SchedulerKind::kTwoPl}) {
    SimConfig config;
    config.scheduler = kind;
    EXPECT_FALSE(CreateScheduler(config)->traits().defers_writes)
        << SchedulerKindName(kind);
  }
  SimConfig config;
  config.scheduler = SchedulerKind::kOpt;
  EXPECT_TRUE(CreateScheduler(config)->traits().defers_writes);
}

}  // namespace
}  // namespace wtpgsched
