#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include "sched/c2pl.h"
#include "test_txns.h"

namespace wtpgsched {
namespace {

// The priority-aware admission gate lives in the Scheduler base class and
// runs BEFORE every scheduler's own startup test; C2PL (the simplest
// concrete subclass) stands in for all of them. All transactions here touch
// disjoint files, so C2PL itself would grant every startup — any kDelay can
// only come from the gate.

TEST(AdmissionControlTest, DisabledByDefault) {
  C2plScheduler sched(/*ddtime=*/0);
  EXPECT_FALSE(sched.admission().enabled());
  for (TxnId id = 1; id <= 10; ++id) {
    Transaction t = MakeXTxn(id, {static_cast<FileId>(id)});
    EXPECT_EQ(sched.OnStartup(t).kind, DecisionKind::kGrant);
  }
  EXPECT_EQ(sched.admission_gated(), 0u);
  EXPECT_EQ(sched.active_low_priority(), 10u);  // Counted even when disabled.
}

TEST(AdmissionControlTest, GatesLowPriorityAtLimit) {
  C2plScheduler sched(0);
  sched.set_admission(AdmissionControl{/*low_priority_mpl=*/2});
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {1});
  Transaction t3 = MakeXTxn(3, {2});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.active_low_priority(), 2u);
  EXPECT_EQ(sched.OnStartup(t3).kind, DecisionKind::kDelay);
  EXPECT_EQ(sched.admission_gated(), 1u);
  // The gated transaction was refused ahead of DecideStartup: it must not
  // have been registered with the scheduler or added to the graph.
  EXPECT_EQ(sched.num_active(), 2u);
  EXPECT_EQ(sched.graph().num_nodes(), 2u);
}

TEST(AdmissionControlTest, HighPriorityBypassesGate) {
  C2plScheduler sched(0);
  sched.set_admission(AdmissionControl{/*low_priority_mpl=*/1});
  Transaction batch = MakeXTxn(1, {0});
  EXPECT_EQ(sched.OnStartup(batch).kind, DecisionKind::kGrant);
  // Low-priority slots are full; interactive (priority 1) startups still go
  // straight through, in any number.
  for (TxnId id = 2; id <= 6; ++id) {
    Transaction t = MakeXTxn(id, {static_cast<FileId>(id)});
    t.priority = 1;
    EXPECT_EQ(sched.OnStartup(t).kind, DecisionKind::kGrant);
  }
  EXPECT_EQ(sched.admission_gated(), 0u);
  EXPECT_EQ(sched.active_low_priority(), 1u);
  EXPECT_EQ(sched.num_active(), 6u);
}

TEST(AdmissionControlTest, CommitFreesSlot) {
  C2plScheduler sched(0);
  sched.set_admission(AdmissionControl{/*low_priority_mpl=*/1});
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {1});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kDelay);
  sched.OnCommit(t1);
  EXPECT_EQ(sched.active_low_priority(), 0u);
  // The machine retries parked startups after commits; the retry now lands.
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.active_low_priority(), 1u);
}

TEST(AdmissionControlTest, AbortFreesSlot) {
  C2plScheduler sched(0);
  sched.set_admission(AdmissionControl{/*low_priority_mpl=*/1});
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {1});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kDelay);
  sched.OnAbort(t1);
  EXPECT_EQ(sched.active_low_priority(), 0u);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
}

TEST(AdmissionControlTest, CutoffPartitionsPriorities) {
  // priority_cutoff = 2: priorities 0 and 1 are both "low" and share the
  // gate; only priority >= 2 bypasses it.
  C2plScheduler sched(0);
  sched.set_admission(AdmissionControl{/*low_priority_mpl=*/1,
                                       /*priority_cutoff=*/2});
  Transaction t1 = MakeXTxn(1, {0});
  t1.priority = 1;
  Transaction t2 = MakeXTxn(2, {1});
  t2.priority = 0;
  Transaction t3 = MakeXTxn(3, {2});
  t3.priority = 2;
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kDelay);
  EXPECT_EQ(sched.OnStartup(t3).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.admission_gated(), 1u);
}

TEST(AdmissionControlTest, EachGatedRetryCountsOnce) {
  C2plScheduler sched(0);
  sched.set_admission(AdmissionControl{/*low_priority_mpl=*/1});
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {1});
  sched.OnStartup(t1);
  // Every refused (re)try increments the counter — it measures gate
  // pressure, not distinct transactions.
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kDelay);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kDelay);
  EXPECT_EQ(sched.admission_gated(), 2u);
}

}  // namespace
}  // namespace wtpgsched
