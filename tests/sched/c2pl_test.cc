#include "sched/c2pl.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace wtpgsched {
namespace {

TEST(C2plTest, NameReflectsMpl) {
  EXPECT_EQ(C2plScheduler(0).name(), "C2PL");
  EXPECT_EQ(C2plScheduler(0, 4).name(), "C2PL+M4");
}

TEST(C2plTest, GrantsNonConflictingRequests) {
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxn(1, {0, 1});
  sched.OnStartup(t1);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnLockRequest(t1, 1).kind, DecisionKind::kGrant);
}

TEST(C2plTest, BlocksOnHeldConflictingLock) {
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnLockRequest(t1, 0);
  const Decision d = sched.OnLockRequest(t2, 0);
  EXPECT_EQ(d.kind, DecisionKind::kBlock);
  EXPECT_EQ(d.file, 0);
}

TEST(C2plTest, DelaysDeadlockProneRequest) {
  // T1 takes A; T2 then asks for B while T1 has declared B: granting B to
  // T2 would determine T2 -> T1, but T1 -> T2 is already forced via A —
  // the request must be delayed (this is the deadlock 2PL would hit).
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_TRUE(sched.graph().IsOriented(1, 2));
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kDelay);
}

TEST(C2plTest, DelayedRequestGrantableAfterCommit) {
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnLockRequest(t1, 0);
  ASSERT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kDelay);
  sched.OnLockRequest(t1, 1);
  sched.OnCommit(t1);
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kGrant);
}

TEST(C2plTest, TransitiveDeadlockPrediction) {
  // Precedence 1 -> 2 -> 3 established; a request by T3 that would force
  // T3 -> T1 must be delayed.
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxn(1, {0, 9});
  Transaction t2 = MakeXTxn(2, {0, 1});
  Transaction t3 = MakeXTxn(3, {1, 9});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnStartup(t3);
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);  // 1->2
  ASSERT_EQ(sched.OnLockRequest(t2, 1).kind, DecisionKind::kGrant);  // 2->3
  // T3 asking for file 9 would force 3 -> 1: cycle -> delay.
  EXPECT_EQ(sched.OnLockRequest(t3, 1).kind, DecisionKind::kDelay);
  // But T1 asking for 9 is fine.
  EXPECT_EQ(sched.OnLockRequest(t1, 1).kind, DecisionKind::kGrant);
}

TEST(C2plTest, MplLimitsAdmission) {
  C2plScheduler sched(0, /*mpl=*/2);
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {1});
  Transaction t3 = MakeXTxn(3, {2});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t3).kind, DecisionKind::kBlock);
  sched.OnCommit(t1);
  EXPECT_EQ(sched.OnStartup(t3).kind, DecisionKind::kGrant);
}

TEST(C2plTest, LockDecisionCostIsDdtime) {
  C2plScheduler sched(MsToTime(1.0));
  Transaction t1 = MakeXTxn(1, {0});
  EXPECT_EQ(sched.LockDecisionCost(t1, 0), MsToTime(1.0));
  EXPECT_EQ(sched.StartupDecisionCost(t1), 0);
}

TEST(C2plTest, NoRetryDelayedOnGrant) {
  C2plScheduler sched(0);
  EXPECT_FALSE(sched.traits().retry_delayed_on_grant);
}

TEST(C2plTest, SharedRequestsBothGranted) {
  C2plScheduler sched(0);
  Transaction t1 = MakeSTxn(1, {3});
  Transaction t2 = MakeSTxn(2, {3});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kGrant);
}

}  // namespace
}  // namespace wtpgsched
