#ifndef WTPG_SCHED_TESTS_SCHED_TEST_TXNS_H_
#define WTPG_SCHED_TESTS_SCHED_TEST_TXNS_H_

#include <memory>
#include <vector>

#include "model/transaction.h"

namespace wtpgsched {

// Builders for the transaction shapes the scheduler tests use.

// X-lock transaction touching the given files in order, 1 object per step.
inline Transaction MakeXTxn(TxnId id, std::vector<FileId> files,
                            double cost_per_step = 1.0) {
  std::vector<StepSpec> steps;
  for (FileId f : files) {
    steps.push_back({f, LockMode::kExclusive, LockMode::kExclusive,
                     cost_per_step, cost_per_step});
  }
  return Transaction(id, std::move(steps));
}

// Read-only (S-lock) transaction.
inline Transaction MakeSTxn(TxnId id, std::vector<FileId> files,
                            double cost_per_step = 1.0) {
  std::vector<StepSpec> steps;
  for (FileId f : files) {
    steps.push_back({f, LockMode::kShared, LockMode::kShared, cost_per_step,
                     cost_per_step});
  }
  return Transaction(id, std::move(steps));
}

// Transaction with explicit per-step declared costs (X locks).
inline Transaction MakeXTxnCosts(TxnId id,
                                 std::vector<std::pair<FileId, double>> plan) {
  std::vector<StepSpec> steps;
  for (const auto& [f, c] : plan) {
    steps.push_back({f, LockMode::kExclusive, LockMode::kExclusive, c, c});
  }
  return Transaction(id, std::move(steps));
}

}  // namespace wtpgsched

#endif  // WTPG_SCHED_TESTS_SCHED_TEST_TXNS_H_
