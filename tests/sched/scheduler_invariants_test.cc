// Randomized invariants on scheduler decision logic, driven directly
// against the scheduler interfaces (no machine): decisions must preserve
// graph invariants, LOW's comparisons must be antisymmetric, and GOW's
// grants must never worsen the optimal critical path.

#include <memory>

#include <gtest/gtest.h>

#include "sched/gow.h"
#include "sched/low.h"
#include "util/random.h"
#include "wtpg/chain.h"

namespace wtpgsched {
namespace {

Transaction RandomTxn(TxnId id, Rng* rng, int num_files, int max_steps) {
  const int steps = static_cast<int>(rng->UniformInt(1, max_steps));
  std::vector<StepSpec> specs;
  std::vector<bool> used(static_cast<size_t>(num_files), false);
  for (int i = 0; i < steps; ++i) {
    FileId f;
    do {
      f = static_cast<FileId>(rng->UniformInt(0, num_files - 1));
    } while (used[static_cast<size_t>(f)]);
    used[static_cast<size_t>(f)] = true;
    const double cost = rng->UniformReal(0.1, 5.0);
    specs.push_back(
        {f, LockMode::kExclusive, LockMode::kExclusive, cost, cost});
  }
  return Transaction(id, std::move(specs));
}

// Drives random startup/lock-request sequences; the scheduler's graph must
// keep its invariants after every decision, and grants must never
// contradict previously determined orders.
template <typename SchedulerT>
void DriveRandomly(SchedulerT* sched, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<Transaction>> txns;
  TxnId next_id = 1;
  for (int round = 0; round < 300; ++round) {
    const int action = static_cast<int>(rng.UniformInt(0, 2));
    if (action == 0 || txns.empty()) {
      auto txn = std::make_unique<Transaction>(
          RandomTxn(next_id, &rng, /*num_files=*/6, /*max_steps=*/3));
      if (sched->OnStartup(*txn).kind == DecisionKind::kGrant) {
        txn->set_state(Transaction::State::kActive);
        txns.push_back(std::move(txn));
        ++next_id;
      }
    } else if (action == 1) {
      // Random lock request for a transaction's current step.
      auto& txn = txns[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(txns.size()) - 1))];
      if (txn->AllStepsDone()) continue;
      const int step = txn->current_step();
      if (!txn->NeedsLockAt(step) ||
          sched->lock_table().HoldsSufficient(txn->step(step).file, txn->id(),
                                              txn->RequestModeAt(step))) {
        txn->AdvanceStep();
        sched->OnStepCompleted(*txn, step);
        continue;
      }
      const Decision d = sched->OnLockRequest(*txn, step);
      if (d.kind == DecisionKind::kGrant) {
        txn->AdvanceStep();
        sched->OnStepCompleted(*txn, step);
      }
    } else {
      // Commit a random finished (or any) transaction.
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(txns.size()) - 1));
      sched->OnCommit(*txns[pick]);
      txns.erase(txns.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_TRUE(sched->graph().CheckInvariants()) << "round " << round;
  }
}

TEST(SchedulerInvariantsTest, LowGraphInvariantsUnderRandomDriving) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    LowScheduler sched(2, MsToTime(10.0));
    DriveRandomly(&sched, seed);
  }
}

TEST(SchedulerInvariantsTest, GowGraphInvariantsUnderRandomDriving) {
  for (uint64_t seed : {4u, 5u, 6u}) {
    GowScheduler sched(MsToTime(5.0), MsToTime(30.0));
    DriveRandomly(&sched, seed);
  }
}

TEST(SchedulerInvariantsTest, GowChainFormMaintained) {
  GowScheduler sched(0, 0);
  Rng rng(9);
  std::vector<std::unique_ptr<Transaction>> txns;
  for (TxnId id = 1; id <= 200; ++id) {
    auto txn =
        std::make_unique<Transaction>(RandomTxn(id, &rng, 8, 2));
    if (sched.OnStartup(*txn).kind == DecisionKind::kGrant) {
      txns.push_back(std::move(txn));
    }
    ASSERT_TRUE(IsChainForm(sched.graph()));
    if (txns.size() > 5) {
      sched.OnCommit(*txns.front());
      txns.erase(txns.begin());
      ASSERT_TRUE(IsChainForm(sched.graph()));
    }
  }
}

TEST(SchedulerInvariantsTest, LowDecisionAntisymmetric) {
  // For two conflicting requests on the same free granule, LOW cannot
  // delay both directions: at least one side's E() comparison must grant.
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    LowScheduler sched(2, 0);
    const double c1 = rng.UniformReal(0.1, 5.0);
    const double c2 = rng.UniformReal(0.1, 5.0);
    Transaction t1(1, {{0, LockMode::kExclusive, LockMode::kExclusive, c1,
                        c1}});
    Transaction t2(2, {{0, LockMode::kExclusive, LockMode::kExclusive, c2,
                        c2}});
    ASSERT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
    ASSERT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
    // Probe t1's decision without committing to it: count how many of the
    // two would be granted.
    LowScheduler probe1(2, 0);
    Transaction u1 = t1;
    Transaction u2 = t2;
    probe1.OnStartup(u1);
    probe1.OnStartup(u2);
    const bool t1_grantable =
        sched.OnLockRequest(t1, 0).kind == DecisionKind::kGrant;
    const bool t2_grantable =
        probe1.OnLockRequest(u2, 0).kind == DecisionKind::kGrant;
    EXPECT_TRUE(t1_grantable || t2_grantable)
        << "both directions delayed would livelock (costs " << c1 << ", "
        << c2 << ")";
  }
}

}  // namespace
}  // namespace wtpgsched
