#include "sched/gow.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace wtpgsched {
namespace {

GowScheduler MakeGow() {
  return GowScheduler(/*toptime=*/MsToTime(5.0), /*chaintime=*/MsToTime(30.0));
}

TEST(GowTest, CostsMatchTable1) {
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxn(1, {0});
  EXPECT_EQ(sched.StartupDecisionCost(t1), MsToTime(5.0));
  EXPECT_EQ(sched.LockDecisionCost(t1, 0), MsToTime(30.0));
  EXPECT_TRUE(sched.traits().costly_admission);
}

TEST(GowTest, AdmitsWhileChainForm) {
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 2});
  Transaction t3 = MakeXTxn(3, {2, 3});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t3).kind, DecisionKind::kGrant);  // Chain 1-2-3.
}

TEST(GowTest, RejectsChainBreakingStartup) {
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 2});
  Transaction t3 = MakeXTxn(3, {2, 3});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnStartup(t3);
  // t4 conflicts with mid-chain t2 (degree 2 already): reject.
  Transaction t4 = MakeXTxn(4, {1});
  EXPECT_EQ(sched.OnStartup(t4).kind, DecisionKind::kReject);
  EXPECT_EQ(sched.chain_rejections(), 1u);
  EXPECT_EQ(sched.num_active(), 3u);
}

TEST(GowTest, RejectsCycleClosingStartup) {
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 2});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  // t3 conflicting with both endpoints of the same chain closes a cycle.
  Transaction t3 = MakeXTxn(3, {0, 2});
  EXPECT_EQ(sched.OnStartup(t3).kind, DecisionKind::kReject);
}

TEST(GowTest, RejectedStartupCanRetryAfterCommit) {
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 2});
  Transaction t3 = MakeXTxn(3, {2, 3});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnStartup(t3);
  Transaction t4 = MakeXTxn(4, {1});
  ASSERT_EQ(sched.OnStartup(t4).kind, DecisionKind::kReject);
  sched.OnCommit(t2);
  EXPECT_EQ(sched.OnStartup(t4).kind, DecisionKind::kGrant);
}

TEST(GowTest, Phase1BlocksOnHeldLock) {
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kBlock);
}

TEST(GowTest, DelaysGrantInconsistentWithOptimalOrder) {
  // Two transactions conflict on file 0; the optimal order wants the short
  // remaining side first. t1's total declared cost is tiny, t2's is huge:
  // a request by t2 determining t2 -> t1 must be delayed when the optimal
  // order says t1 -> t2 (w(t2->t1) >> w(t1->t2) and W0(t2) >> W0(t1)).
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxnCosts(1, {{5, 0.1}, {0, 0.1}});
  Transaction t2 = MakeXTxnCosts(2, {{6, 50.0}, {0, 50.0}});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  // t2 asks for file 0 first (its step 1): would orient t2 -> t1.
  // W = optimal order prefers t1 first: critical path for t1->t2 is
  // W0(t1) + w(t1->t2) = 0.2 + 50 vs t2 -> t1: W0(t2) + w(t2->t1) = 100.2.
  Transaction* t2p = &t2;
  t2p->AdvanceStep();  // Pretend step 0 already ran; requesting step 1.
  EXPECT_EQ(sched.OnLockRequest(t2, 1).kind, DecisionKind::kDelay);
  // The other side is consistent with W and goes through.
  t1.AdvanceStep();
  EXPECT_EQ(sched.OnLockRequest(t1, 1).kind, DecisionKind::kGrant);
}

TEST(GowTest, GrantWithNoConflictersTrivial) {
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxn(1, {7});
  sched.OnStartup(t1);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
}

TEST(GowTest, DelayWhenOrderAlreadyDeterminedAgainstRequester) {
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);  // 1->2.
  // t2 requesting file 1 (its step 0) would force 2 -> 1: delay.
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kDelay);
}

TEST(GowTest, CommitShrinksChainAndGraph) {
  GowScheduler sched = MakeGow();
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 2});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnLockRequest(t1, 0);
  sched.OnCommit(t1);
  EXPECT_EQ(sched.graph().num_nodes(), 1u);
  EXPECT_EQ(sched.num_active(), 1u);
}

}  // namespace
}  // namespace wtpgsched
