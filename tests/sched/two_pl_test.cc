#include "sched/two_pl.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace wtpgsched {
namespace {

TwoPlScheduler Make() { return TwoPlScheduler(MsToTime(1.0)); }

TEST(TwoPlTest, AdmitsEverything) {
  TwoPlScheduler sched = Make();
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
}

TEST(TwoPlTest, GrantsFreeLock) {
  TwoPlScheduler sched = Make();
  Transaction t1 = MakeXTxn(1, {0});
  sched.OnStartup(t1);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_TRUE(sched.lock_table().Holds(0, 1));
}

TEST(TwoPlTest, BlocksOnConflict) {
  TwoPlScheduler sched = Make();
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnLockRequest(t1, 0);
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kBlock);
  EXPECT_EQ(sched.deadlock_aborts(), 0u);
}

TEST(TwoPlTest, DetectsTwoPartyDeadlock) {
  // T1 holds A and blocks on B; T2 holds B and requests A: cycle — abort.
  TwoPlScheduler sched = Make();
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);  // A.
  ASSERT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kGrant);  // B.
  t1.AdvanceStep();
  t2.AdvanceStep();
  ASSERT_EQ(sched.OnLockRequest(t1, 1).kind, DecisionKind::kBlock);  // B.
  EXPECT_EQ(sched.OnLockRequest(t2, 1).kind, DecisionKind::kAbortRestart);
  EXPECT_EQ(sched.deadlock_aborts(), 1u);
}

TEST(TwoPlTest, DetectsThreePartyDeadlock) {
  TwoPlScheduler sched = Make();
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 2});
  Transaction t3 = MakeXTxn(3, {2, 0});
  for (Transaction* t : {&t1, &t2, &t3}) sched.OnStartup(*t);
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  ASSERT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kGrant);
  ASSERT_EQ(sched.OnLockRequest(t3, 0).kind, DecisionKind::kGrant);
  t1.AdvanceStep();
  t2.AdvanceStep();
  t3.AdvanceStep();
  ASSERT_EQ(sched.OnLockRequest(t1, 1).kind, DecisionKind::kBlock);
  ASSERT_EQ(sched.OnLockRequest(t2, 1).kind, DecisionKind::kBlock);
  EXPECT_EQ(sched.OnLockRequest(t3, 1).kind, DecisionKind::kAbortRestart);
}

TEST(TwoPlTest, AbortReleasesLocks) {
  TwoPlScheduler sched = Make();
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnLockRequest(t1, 0);
  sched.OnLockRequest(t2, 0);
  t1.AdvanceStep();
  t2.AdvanceStep();
  sched.OnLockRequest(t1, 1);
  ASSERT_EQ(sched.OnLockRequest(t2, 1).kind, DecisionKind::kAbortRestart);
  const std::vector<FileId> released = sched.OnAbort(t2);
  EXPECT_EQ(released, (std::vector<FileId>{1}));
  // T1's blocked request for B is now grantable.
  EXPECT_EQ(sched.OnLockRequest(t1, 1).kind, DecisionKind::kGrant);
}

TEST(TwoPlTest, NoFalseDeadlockOnSimpleChain) {
  // T1 holds A; T2 blocks on A; T3 blocks on A — a chain, not a cycle.
  TwoPlScheduler sched = Make();
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  Transaction t3 = MakeXTxn(3, {0});
  for (Transaction* t : {&t1, &t2, &t3}) sched.OnStartup(*t);
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kBlock);
  EXPECT_EQ(sched.OnLockRequest(t3, 0).kind, DecisionKind::kBlock);
  EXPECT_EQ(sched.deadlock_aborts(), 0u);
}

TEST(TwoPlTest, SharedLocksDoNotDeadlock) {
  TwoPlScheduler sched = Make();
  Transaction t1 = MakeSTxn(1, {0, 1});
  Transaction t2 = MakeSTxn(2, {1, 0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kGrant);
  t1.AdvanceStep();
  t2.AdvanceStep();
  EXPECT_EQ(sched.OnLockRequest(t1, 1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnLockRequest(t2, 1).kind, DecisionKind::kGrant);
}

TEST(TwoPlTest, CostIsDdtime) {
  TwoPlScheduler sched = Make();
  Transaction t1 = MakeXTxn(1, {0});
  EXPECT_EQ(sched.LockDecisionCost(t1, 0), MsToTime(1.0));
}

}  // namespace
}  // namespace wtpgsched
