#include "sched/opt.h"

#include <gtest/gtest.h>

#include "test_txns.h"

namespace wtpgsched {
namespace {

TEST(OptTest, NeverBlocksAndTakesNoLocks) {
  OptScheduler sched;
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnClock(0);
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.lock_table().num_locked_files(), 0u);
}

TEST(OptTest, ValidationPassesWithoutConcurrentWrites) {
  OptScheduler sched;
  Transaction t1 = MakeXTxn(1, {0});
  sched.OnClock(0);
  sched.OnStartup(t1);
  sched.OnClock(100);
  EXPECT_TRUE(sched.ValidateAtCommit(t1));
  sched.OnCommit(t1);
  EXPECT_EQ(sched.validation_failures(), 0u);
}

TEST(OptTest, WriteWriteConflictAborts) {
  OptScheduler sched;
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnClock(0);
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnClock(50);
  ASSERT_TRUE(sched.ValidateAtCommit(t1));
  sched.OnCommit(t1);  // Installs write of file 0 at t=50.
  sched.OnClock(60);
  EXPECT_FALSE(sched.ValidateAtCommit(t2));
  EXPECT_EQ(sched.validation_failures(), 1u);
}

TEST(OptTest, ReadOfOverwrittenFileAborts) {
  OptScheduler sched;
  Transaction writer = MakeXTxn(1, {0});
  Transaction reader = MakeSTxn(2, {0});
  sched.OnClock(0);
  sched.OnStartup(writer);
  sched.OnStartup(reader);
  sched.OnClock(50);
  sched.ValidateAtCommit(writer);
  sched.OnCommit(writer);
  sched.OnClock(60);
  EXPECT_FALSE(sched.ValidateAtCommit(reader));
}

TEST(OptTest, CommitBeforeStartDoesNotConflict) {
  OptScheduler sched;
  Transaction t1 = MakeXTxn(1, {0});
  sched.OnClock(0);
  sched.OnStartup(t1);
  sched.OnClock(50);
  sched.ValidateAtCommit(t1);
  sched.OnCommit(t1);
  // t2 starts after t1's write installed: no conflict.
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnClock(60);
  sched.OnStartup(t2);
  sched.OnClock(100);
  EXPECT_TRUE(sched.ValidateAtCommit(t2));
}

TEST(OptTest, RestartResetsIncarnationWindow) {
  OptScheduler sched;
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnClock(0);
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnClock(50);
  sched.ValidateAtCommit(t1);
  sched.OnCommit(t1);
  sched.OnClock(60);
  ASSERT_FALSE(sched.ValidateAtCommit(t2));
  sched.OnAbort(t2);
  t2.ResetForRestart();
  // Restarted incarnation begins after t1's commit: validation now passes.
  sched.OnClock(70);
  sched.OnStartup(t2);
  sched.OnClock(120);
  EXPECT_TRUE(sched.ValidateAtCommit(t2));
}

TEST(OptTest, ReadOnlyValidationIgnoresWriteWrite) {
  OptScheduler sched(/*validate_writes=*/false);
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});  // Blind write, no read of file 0.
  sched.OnClock(0);
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnClock(50);
  sched.ValidateAtCommit(t1);
  sched.OnCommit(t1);
  sched.OnClock(60);
  EXPECT_TRUE(sched.ValidateAtCommit(t2));  // Pure Kung-Robinson.
}

TEST(OptTest, ReadOnlyValidationStillChecksReads) {
  OptScheduler sched(/*validate_writes=*/false);
  Transaction writer = MakeXTxn(1, {0});
  Transaction reader = MakeSTxn(2, {0});
  sched.OnClock(0);
  sched.OnStartup(writer);
  sched.OnStartup(reader);
  sched.OnClock(50);
  sched.ValidateAtCommit(writer);
  sched.OnCommit(writer);
  sched.OnClock(60);
  EXPECT_FALSE(sched.ValidateAtCommit(reader));
}

TEST(OptTest, CommittedReaderInstallsNoWrites) {
  OptScheduler sched;
  Transaction reader = MakeSTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnClock(0);
  sched.OnStartup(reader);
  sched.OnStartup(t2);
  sched.OnClock(50);
  sched.ValidateAtCommit(reader);
  sched.OnCommit(reader);
  sched.OnClock(60);
  EXPECT_TRUE(sched.ValidateAtCommit(t2));  // Reads install nothing.
}

}  // namespace
}  // namespace wtpgsched
