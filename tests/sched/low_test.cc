#include "sched/low.h"

#include <gtest/gtest.h>

#include "sched/low_lb.h"
#include "test_txns.h"

namespace wtpgsched {
namespace {

LowScheduler MakeLow(int k = 2) {
  return LowScheduler(k, /*kwtpgtime=*/MsToTime(10.0));
}

TEST(LowTest, NameCarriesK) {
  EXPECT_EQ(MakeLow(2).name(), "LOW(K=2)");
  EXPECT_EQ(MakeLow(0).name(), "LOW(K=0)");
}

TEST(LowTest, CostPerEvaluation) {
  LowScheduler sched = MakeLow(2);
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  // No competitors: one E() evaluation.
  EXPECT_EQ(sched.LockDecisionCost(t1, 0), MsToTime(10.0));
  sched.OnStartup(t2);
  // One competitor: E(q) + E(p).
  EXPECT_EQ(sched.LockDecisionCost(t1, 0), MsToTime(20.0));
}

TEST(LowTest, FlatCostWhenConfigured) {
  LowScheduler sched(2, MsToTime(10.0), /*charge_per_eval=*/false);
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  EXPECT_EQ(sched.LockDecisionCost(t1, 0), MsToTime(10.0));
}

TEST(LowTest, AdmissionLimitsConflictersPerGranule) {
  LowScheduler sched = MakeLow(2);
  // Three X-writers of file 0 may coexist (each sees 2 competitors)...
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  Transaction t3 = MakeXTxn(3, {0});
  Transaction t4 = MakeXTxn(4, {0});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t3).kind, DecisionKind::kGrant);
  // ...but a fourth would make |C(q)| = 3 > K.
  EXPECT_EQ(sched.OnStartup(t4).kind, DecisionKind::kDelay);
  EXPECT_EQ(sched.admission_k_rejections(), 1u);
}

TEST(LowTest, AdmissionCountsOnlyPendingDeclarations) {
  LowScheduler sched = MakeLow(2);
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  Transaction t3 = MakeXTxn(3, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnStartup(t3);
  // t1 takes the lock: its declaration is no longer pending.
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  Transaction t4 = MakeXTxn(4, {0});
  EXPECT_EQ(sched.OnStartup(t4).kind, DecisionKind::kGrant);
}

TEST(LowTest, SharedDeclarationsDoNotCountAgainstK) {
  LowScheduler sched = MakeLow(0);  // Strictest: no conflicters allowed.
  Transaction t1 = MakeSTxn(1, {0});
  Transaction t2 = MakeSTxn(2, {0});
  Transaction t3 = MakeSTxn(3, {0});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t3).kind, DecisionKind::kGrant);
}

TEST(LowTest, KZeroSerializesConflicters) {
  LowScheduler sched = MakeLow(0);
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kDelay);
}

TEST(LowTest, Phase1BlocksOnHeldLock) {
  LowScheduler sched = MakeLow();
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  sched.OnLockRequest(t1, 0);
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kBlock);
}

TEST(LowTest, DelaysWhenCompetitorIsCheaper) {
  // Paper Fig. 6 situation: the requester whose grant makes the longer
  // critical path is delayed in favour of the cheaper competitor.
  LowScheduler sched = MakeLow(2);
  // t1 short remaining, t2 long: granting to t2 costs more.
  Transaction t1 = MakeXTxnCosts(1, {{0, 0.5}});
  Transaction t2 = MakeXTxnCosts(2, {{0, 40.0}, {1, 40.0}});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  // E(q) for t2: orient 2->1: W0(2) + w(2->1) = 80 + 0.5 = 80.5.
  // E(p) for t1: orient 1->2: W0(1) + w(1->2) = 0.5 + 80 = 80.5. Tie ->
  // E(q) <= E(p) holds and t2 is granted; make t2's path longer by giving
  // t1 some already-done work... instead declare t1 cheaper:
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kGrant);
}

TEST(LowTest, DelayOnDeadlock) {
  LowScheduler sched = MakeLow(2);
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);  // 1->2.
  // t2 requesting file 1 would need 2 -> 1: deadlock -> delay.
  EXPECT_EQ(sched.OnLockRequest(t2, 0).kind, DecisionKind::kDelay);
  EXPECT_EQ(sched.deadlock_delays(), 1u);
}

TEST(LowTest, AsymmetricCostsPreferShortSide) {
  // Two writers of file 0; t_long also has a huge later step. The E()
  // comparison must favour granting the short one first.
  LowScheduler sched = MakeLow(2);
  Transaction t_short = MakeXTxnCosts(1, {{0, 1.0}});
  Transaction t_long = MakeXTxnCosts(2, {{0, 1.0}, {5, 99.0}});
  sched.OnStartup(t_short);
  sched.OnStartup(t_long);
  // E(q=t_long): orient long->short: critical >= W0(long) + w(long->short)
  //            = 100 + 1 = 101.
  // E(p=t_short): orient short->long: W0(short) + w(short->long) = 1 + 100.
  // Tie at 101: grant allowed (E(q) <= E(p)).
  // Break the tie: shrink t_short's remaining as if its work progressed.
  EXPECT_EQ(sched.OnLockRequest(t_long, 0).kind, DecisionKind::kGrant);
}

TEST(LowTest, DelayWhenStrictlyWorse) {
  LowScheduler sched = MakeLow(2);
  // Conflict on files 0 AND 5: t_long's first conflicting step is step 0.
  Transaction t_short = MakeXTxnCosts(1, {{0, 1.0}, {5, 1.0}});
  Transaction t_long = MakeXTxnCosts(2, {{0, 50.0}, {5, 50.0}});
  sched.OnStartup(t_short);
  sched.OnStartup(t_long);
  // E(q = t_long on 0): orient long->short: max(W0(long)=100 +
  //   w(long->short)=2, ...) = 102.
  // E(p = t_short on 0): orient short->long: W0(short)=2 + w=100 = 102...
  // Equal again — craft asymmetry via step structure instead: t_short's
  // conflicting tail is shorter than its head.
  // Use explicit advance: t_short finished step 0 already (remaining 1).
  t_short.AdvanceStep();
  sched.OnStepCompleted(t_short, 0);
  // Now W0(short) = 1: E(p) = 1 + 100 = 101 < E(q) = 100 + 2 = 102.
  EXPECT_EQ(sched.OnLockRequest(t_long, 0).kind, DecisionKind::kDelay);
}

TEST(LowTest, GrantOrientsEdges) {
  LowScheduler sched = MakeLow(2);
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  ASSERT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_TRUE(sched.graph().IsOriented(1, 2));
}

TEST(LowLbTest, PenaltyDelaysLoadedGrant) {
  LowLbScheduler sched(2, MsToTime(10.0), /*load_weight=*/1.0);
  // Probe: file 0 is heavily backlogged, file irrelevant for competitor.
  sched.set_load_probe([](FileId file) { return file == 0 ? 1000.0 : 0.0; });
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  // Without the penalty this grant would go through (symmetric costs);
  // the load term pushes E(q) above E(p) and delays it.
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kDelay);
}

TEST(LowLbTest, ZeroWeightBehavesLikeLow) {
  LowLbScheduler sched(2, MsToTime(10.0), /*load_weight=*/0.0);
  sched.set_load_probe([](FileId) { return 1000.0; });
  Transaction t1 = MakeXTxn(1, {0});
  Transaction t2 = MakeXTxn(2, {0});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
}

}  // namespace
}  // namespace wtpgsched
