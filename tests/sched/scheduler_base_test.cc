#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include "sched/c2pl.h"
#include "test_txns.h"

namespace wtpgsched {
namespace {

// The WtpgSchedulerBase plumbing is exercised through C2PL (its simplest
// concrete subclass).

TEST(WtpgSchedulerBaseTest, AdmitBuildsGraphNodeAndEdges) {
  C2plScheduler sched(/*ddtime=*/0);
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 2});
  Transaction t3 = MakeXTxn(3, {4, 5});
  EXPECT_EQ(sched.OnStartup(t1).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t2).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.OnStartup(t3).kind, DecisionKind::kGrant);
  EXPECT_EQ(sched.graph().num_nodes(), 3u);
  EXPECT_EQ(sched.graph().num_edges(), 1u);  // Only t1-t2 conflict (file 1).
  EXPECT_NE(sched.graph().FindEdge(1, 2), nullptr);
  EXPECT_EQ(sched.num_active(), 3u);
}

TEST(WtpgSchedulerBaseTest, GraphWeightsFromDeclarations) {
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxnCosts(1, {{0, 1.0}, {1, 3.0}});
  Transaction t2 = MakeXTxnCosts(2, {{2, 1.0}, {1, 2.0}, {3, 4.0}});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  const Wtpg::Edge* e = sched.graph().FindEdge(1, 2);
  ASSERT_NE(e, nullptr);
  // w(1->2): t2's declared cost from its first step conflicting with t1
  // (file 1 at step 1): 2 + 4 = 6. w(2->1): t1 from step 1: 3.
  EXPECT_DOUBLE_EQ(e->a == 1 ? e->weight_ab : e->weight_ba, 6.0);
  EXPECT_DOUBLE_EQ(e->a == 1 ? e->weight_ba : e->weight_ab, 3.0);
  // T0 weights are total declared costs.
  EXPECT_DOUBLE_EQ(sched.graph().remaining(1), 4.0);
  EXPECT_DOUBLE_EQ(sched.graph().remaining(2), 7.0);
}

TEST(WtpgSchedulerBaseTest, StepCompletionUpdatesT0Weight) {
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxnCosts(1, {{0, 1.0}, {1, 3.0}});
  sched.OnStartup(t1);
  sched.OnLockRequest(t1, 0);
  t1.AdvanceStep();
  sched.OnStepCompleted(t1, 0);
  EXPECT_DOUBLE_EQ(sched.graph().remaining(1), 3.0);
}

TEST(WtpgSchedulerBaseTest, HolderPreOrientedAgainstNewcomer) {
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxn(1, {0});
  sched.OnStartup(t1);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  // t2 arrives wanting file 0: t1 already holds it, so t1 -> t2 is forced.
  Transaction t2 = MakeXTxn(2, {0, 1});
  sched.OnStartup(t2);
  EXPECT_TRUE(sched.graph().IsOriented(1, 2));
}

TEST(WtpgSchedulerBaseTest, CommitReleasesLocksAndGraphNode) {
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxn(1, {0, 1});
  sched.OnStartup(t1);
  sched.OnLockRequest(t1, 0);
  sched.OnLockRequest(t1, 1);
  std::vector<FileId> released = sched.OnCommit(t1);
  EXPECT_EQ(released.size(), 2u);
  EXPECT_EQ(sched.graph().num_nodes(), 0u);
  EXPECT_EQ(sched.num_active(), 0u);
  EXPECT_EQ(sched.lock_table().NumHeldBy(1), 0u);
}

TEST(WtpgSchedulerBaseTest, GrantRecordsLock) {
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxn(1, {7});
  sched.OnStartup(t1);
  EXPECT_EQ(sched.OnLockRequest(t1, 0).kind, DecisionKind::kGrant);
  EXPECT_TRUE(sched.lock_table().HoldsSufficient(7, 1, LockMode::kExclusive));
}

TEST(WtpgSchedulerBaseTest, GrantOrientsAgainstPendingConflicters) {
  C2plScheduler sched(0);
  Transaction t1 = MakeXTxn(1, {0, 1});
  Transaction t2 = MakeXTxn(2, {1, 2});
  sched.OnStartup(t1);
  sched.OnStartup(t2);
  EXPECT_FALSE(sched.graph().FindEdge(1, 2)->oriented);
  sched.OnLockRequest(t1, 1);  // t1 takes file 1 first.
  EXPECT_TRUE(sched.graph().IsOriented(1, 2));
}

TEST(WtpgSchedulerBaseTest, DefaultCostsAreZero) {
  C2plScheduler sched(/*ddtime=*/MsToTime(1.0));
  Transaction t1 = MakeXTxn(1, {0});
  EXPECT_EQ(sched.StartupDecisionCost(t1), 0);
  EXPECT_EQ(sched.LockDecisionCost(t1, 0), MsToTime(1.0));
}

}  // namespace
}  // namespace wtpgsched
