// End-to-end behaviour of the full machine + scheduler stack on the paper's
// workloads.

#include <gtest/gtest.h>

#include "analysis/serializability.h"
#include "machine/machine.h"

namespace wtpgsched {
namespace {

SimConfig BaseConfig(SchedulerKind kind, double rate_tps) {
  SimConfig c;
  c.scheduler = kind;
  c.machine.num_files = 16;
  c.machine.dd = 1;
  c.workload.arrival_rate_tps = rate_tps;
  c.run.horizon_ms = 1'000'000;
  c.run.seed = 11;
  return c;
}

TEST(EndToEndTest, SerializableSchedulersProduceSerializableHistories) {
  for (SchedulerKind kind :
       {SchedulerKind::kAsl, SchedulerKind::kC2pl, SchedulerKind::kOpt,
        SchedulerKind::kGow, SchedulerKind::kLow, SchedulerKind::kLowLb}) {
    SimConfig c = BaseConfig(kind, 0.7);
    Machine m(c, Pattern::Experiment1(16));
    m.Run();
    const SerializabilityResult result =
        CheckConflictSerializability(m.schedule_log());
    EXPECT_TRUE(result.serializable)
        << SchedulerKindName(kind) << ": " << result.ToString();
  }
}

TEST(EndToEndTest, NodcViolatesSerializabilityUnderContention) {
  // The upper-bound scheduler ignores conflicts; at a contended load its
  // history must eventually contain a conflict cycle — demonstrating that
  // the checker has teeth and that NODC is only a bound.
  SimConfig c = BaseConfig(SchedulerKind::kNodc, 1.0);
  c.run.horizon_ms = 2'000'000;
  Machine m(c, Pattern::Experiment1(16));
  m.Run();
  EXPECT_FALSE(CheckConflictSerializability(m.schedule_log()).serializable);
}

TEST(EndToEndTest, Experiment2HotSetSerializable) {
  for (SchedulerKind kind : {SchedulerKind::kAsl, SchedulerKind::kGow,
                             SchedulerKind::kLow, SchedulerKind::kC2pl}) {
    SimConfig c = BaseConfig(kind, 0.6);
    Machine m(c, Pattern::Experiment2());
    m.Run();
    EXPECT_TRUE(CheckConflictSerializability(m.schedule_log()).serializable)
        << SchedulerKindName(kind);
  }
}

TEST(EndToEndTest, ContentionOrderingAtModerateLoad) {
  // At a moderate Experiment-1 load the blocking-resistant schedulers
  // (ASL/GOW/LOW) must beat C2PL and OPT on mean response time — the
  // paper's headline Table-2 ordering.
  SimConfig base = BaseConfig(SchedulerKind::kNodc, 0.55);
  base.run.horizon_ms = 2'000'000;
  auto run = [&](SchedulerKind kind) {
    SimConfig c = base;
    c.scheduler = kind;
    Machine m(c, Pattern::Experiment1(16));
    return m.Run();
  };
  const RunStats nodc = run(SchedulerKind::kNodc);
  const RunStats asl = run(SchedulerKind::kAsl);
  const RunStats gow = run(SchedulerKind::kGow);
  const RunStats low = run(SchedulerKind::kLow);
  const RunStats c2pl = run(SchedulerKind::kC2pl);
  const RunStats opt = run(SchedulerKind::kOpt);
  EXPECT_LT(nodc.mean_response_s, asl.mean_response_s);
  EXPECT_LT(asl.mean_response_s, c2pl.mean_response_s);
  EXPECT_LT(gow.mean_response_s, c2pl.mean_response_s);
  EXPECT_LT(low.mean_response_s, c2pl.mean_response_s);
  // OPT is past its (early) saturation point here: it completes the least
  // work of all schedulers.
  EXPECT_LT(opt.throughput_tps, c2pl.throughput_tps);
  EXPECT_LT(opt.throughput_tps, low.throughput_tps);
}

TEST(EndToEndTest, ParallelismImprovesResponseTime) {
  // Paper Section 5.1.3: declustering gives the WTPG schedulers near-linear
  // response-time speedup at heavy load.
  for (SchedulerKind kind : {SchedulerKind::kAsl, SchedulerKind::kGow,
                             SchedulerKind::kLow}) {
    SimConfig c1 = BaseConfig(kind, 0.9);
    c1.run.horizon_ms = 2'000'000;
    SimConfig c8 = c1;
    c8.machine.dd = 8;
    Machine m1(c1, Pattern::Experiment1(16));
    Machine m8(c8, Pattern::Experiment1(16));
    const double rt1 = m1.Run().mean_response_s;
    const double rt8 = m8.Run().mean_response_s;
    EXPECT_GT(rt1 / rt8, 3.0) << SchedulerKindName(kind);
  }
}

TEST(EndToEndTest, HotSetFavorsLowOverAsl) {
  // Paper Table 4: when updating a hot set, ASL is the worst locking
  // scheduler and LOW the best.
  SimConfig base = BaseConfig(SchedulerKind::kAsl, 0.5);
  base.run.horizon_ms = 2'000'000;
  auto run = [&](SchedulerKind kind) {
    SimConfig c = base;
    c.scheduler = kind;
    Machine m(c, Pattern::Experiment2());
    return m.Run();
  };
  const RunStats asl = run(SchedulerKind::kAsl);
  const RunStats low = run(SchedulerKind::kLow);
  EXPECT_LT(low.mean_response_s, asl.mean_response_s);
}

TEST(EndToEndTest, DeclarationErrorsDegradeLowMoreThanGow) {
  // Paper Table 5 direction: LOW is more sensitive to wrong declarations.
  auto run = [&](SchedulerKind kind, double sigma) {
    SimConfig c = BaseConfig(kind, 0.6);
    c.workload.error_sigma = sigma;
    c.run.horizon_ms = 2'000'000;
    Machine m(c, Pattern::Experiment1(16));
    return m.Run().mean_response_s;
  };
  const double gow_degradation =
      run(SchedulerKind::kGow, 10.0) / run(SchedulerKind::kGow, 0.0);
  const double low_degradation =
      run(SchedulerKind::kLow, 10.0) / run(SchedulerKind::kLow, 0.0);
  EXPECT_GT(low_degradation, 1.0);
  EXPECT_LT(gow_degradation, low_degradation * 1.5);
}

TEST(EndToEndTest, ErrorsStillSerializable) {
  // Wrong declarations affect only the *cost* part of the WTPG; orders
  // stay serializable.
  for (SchedulerKind kind : {SchedulerKind::kGow, SchedulerKind::kLow}) {
    SimConfig c = BaseConfig(kind, 0.6);
    c.workload.error_sigma = 10.0;
    Machine m(c, Pattern::Experiment1(16));
    m.Run();
    EXPECT_TRUE(CheckConflictSerializability(m.schedule_log()).serializable)
        << SchedulerKindName(kind);
  }
}

}  // namespace
}  // namespace wtpgsched

namespace wtpgsched {
namespace {

TEST(EndToEndTest, TraditionalTwoPlWorseThanCautious) {
  // The introduction's motivation: traditional 2PL restarts on deadlocks
  // and suffers chains of blocking; at a moderate batch load the
  // declaration-based schedulers beat it.
  SimConfig c;
  c.machine.num_files = 16;
  c.machine.dd = 1;
  c.workload.arrival_rate_tps = 0.5;
  c.run.horizon_ms = 2'000'000;
  c.run.seed = 23;
  auto run = [&](SchedulerKind kind) {
    SimConfig cfg = c;
    cfg.scheduler = kind;
    Machine m(cfg, Pattern::Experiment1(16));
    return m.Run();
  };
  const RunStats twopl = run(SchedulerKind::kTwoPl);
  const RunStats asl = run(SchedulerKind::kAsl);
  const RunStats low = run(SchedulerKind::kLow);
  EXPECT_GT(twopl.restarts, 0u);  // Deadlocks actually happen.
  EXPECT_LT(asl.mean_response_s, twopl.mean_response_s);
  EXPECT_LT(low.mean_response_s, twopl.mean_response_s);
  EXPECT_GT(low.throughput_tps, twopl.throughput_tps * 1.2);
}

}  // namespace
}  // namespace wtpgsched
