// Kernel-invariance suite: the simulator core (event queue, WTPG storage,
// lock table) is an implementation detail — rewriting it must not move a
// single byte of simulation output. These goldens were captured before the
// allocation-free kernel rewrite (pooled events, indexed d-ary heap, dense
// WTPG and lock-table storage) and pin RunAggregate JSON for every
// scheduler under a zero-fault and a fault-churn configuration, at jobs=1
// and jobs=8.
//
// Regenerate (only when an *intentional* behavior change lands) with:
//   WTPG_UPDATE_GOLDENS=1 ./kernel_invariance_test

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/sim_run.h"
#include "machine/config.h"
#include "workload/pattern.h"

namespace wtpgsched {
namespace {

constexpr const char* kGoldenFile = "golden_kernel_invariance.tsv";

const std::vector<std::string>& SchedulerFlags() {
  static const std::vector<std::string> flags = {
      "nodc", "asl", "c2pl", "opt", "gow", "low", "low-lb", "2pl"};
  return flags;
}

SimConfig BaseConfig(const std::string& flag) {
  SimConfig c;
  EXPECT_TRUE(ParseSchedulerKind(flag, &c.scheduler)) << flag;
  c.workload.arrival_rate_tps = 1.0;
  c.workload.max_arrivals = 60;
  c.run.horizon_ms = 300'000;
  return c;
}

// Node churn heavy enough that every fault path fires (crashes, stragglers,
// injected aborts) while staying cheap to simulate.
SimConfig FaultyConfig(const std::string& flag) {
  SimConfig c = BaseConfig(flag);
  c.fault.dpn_mttf_ms = 150'000;
  c.fault.straggler_mtbf_ms = 200'000;
  c.fault.abort_rate_per_s = 0.02;
  return c;
}

std::string GoldenPath() {
  return std::string(WTPG_TEST_DATA_DIR) + "/" + kGoldenFile;
}

// "<flag>\t<zero|fault>" -> aggregate JSON at jobs=1 (jobs invariance is
// asserted separately so a diff names the offending dimension).
std::string RunCase(const std::string& flag, bool faulty, int jobs) {
  const SimConfig c = faulty ? FaultyConfig(flag) : BaseConfig(flag);
  return RunAggregate(c, Pattern::Experiment1(c.machine.num_files),
                      /*num_seeds=*/2, jobs)
      .ToJson();
}

TEST(KernelInvarianceTest, AggregateJsonByteIdenticalToGoldens) {
  if (std::getenv("WTPG_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.is_open()) << GoldenPath();
    for (const std::string& flag : SchedulerFlags()) {
      out << flag << "\tzero\t" << RunCase(flag, /*faulty=*/false, 1) << "\n";
      out << flag << "\tfault\t" << RunCase(flag, /*faulty=*/true, 1) << "\n";
    }
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "goldens regenerated at " << GoldenPath();
  }
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.is_open()) << "missing golden " << GoldenPath();
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string flag, kind, expected;
    ASSERT_TRUE(std::getline(row, flag, '\t'));
    ASSERT_TRUE(std::getline(row, kind, '\t'));
    ASSERT_TRUE(std::getline(row, expected));
    const bool faulty = kind == "fault";
    EXPECT_EQ(RunCase(flag, faulty, /*jobs=*/1), expected)
        << "scheduler " << flag << " (" << kind << ")";
    ++lines;
  }
  EXPECT_EQ(lines, static_cast<int>(SchedulerFlags().size()) * 2);
}

TEST(KernelInvarianceTest, AggregateJsonJobsInvariant) {
  for (const std::string& flag : SchedulerFlags()) {
    for (const bool faulty : {false, true}) {
      EXPECT_EQ(RunCase(flag, faulty, /*jobs=*/1),
                RunCase(flag, faulty, /*jobs=*/8))
          << "scheduler " << flag << (faulty ? " (fault)" : " (zero)");
    }
  }
}

}  // namespace
}  // namespace wtpgsched
