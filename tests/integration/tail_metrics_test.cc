#include <string>

#include <gtest/gtest.h>

#include "driver/sim_run.h"
#include "machine/config.h"
#include "workload/openworld.h"

namespace wtpgsched {
namespace {

// Open-world two-class config small enough for unit-test horizons: 64
// files, Zipf(0.9), 90% interactive (priority 1) / 10% batch (priority 0).
OpenWorldSpec SmallSpec() {
  OpenWorldSpec spec;
  spec.num_files = 64;
  return spec;
}

SimConfig OpenWorldConfig(SchedulerKind kind, double rate_tps) {
  OpenWorldSpec spec = SmallSpec();
  SimConfig c;
  c.scheduler = kind;
  c.machine.num_files = spec.num_files;
  c.workload.arrival_rate_tps = rate_tps;
  c.workload.zipf_theta = spec.zipf_theta;
  c.run.horizon_ms = 300'000;
  c.run.seed = 5;
  return c;
}

bool HasCounter(const std::vector<std::pair<std::string, uint64_t>>& counters,
                const std::string& name, uint64_t* value = nullptr) {
  for (const auto& [n, v] : counters) {
    if (n == name) {
      if (value != nullptr) *value = v;
      return true;
    }
  }
  return false;
}

TEST(TailMetricsTest, OffByDefaultKeepsJsonLegacy) {
  SimConfig c = OpenWorldConfig(SchedulerKind::kLow, 1.0);
  const AggregateResult agg =
      RunAggregate(c, MakeOpenWorldMix(SmallSpec()), /*num_seeds=*/2);
  EXPECT_FALSE(agg.tail_metrics);
  const std::string json = agg.ToJson();
  // No tail or per-class keys may leak into default-mode output — the
  // kernel-invariance goldens pin this shape.
  EXPECT_EQ(json.find("p50_response_s"), std::string::npos);
  EXPECT_EQ(json.find("p99_response_s"), std::string::npos);
  EXPECT_EQ(json.find("class0."), std::string::npos);
}

TEST(TailMetricsTest, PerClassPercentilesInJson) {
  SimConfig c = OpenWorldConfig(SchedulerKind::kLow, 1.0);
  c.run.tail_metrics = true;
  const AggregateResult agg =
      RunAggregate(c, MakeOpenWorldMix(SmallSpec()), /*num_seeds=*/2);
  EXPECT_TRUE(agg.tail_metrics);
  ASSERT_EQ(agg.per_class.size(), 2u);
  EXPECT_EQ(agg.per_class[0].workload_class, 0);
  EXPECT_EQ(agg.per_class[1].workload_class, 1);
  EXPECT_GT(agg.per_class[0].completions, 0.0);
  EXPECT_GT(agg.per_class[1].completions, 0.0);
  // Percentiles are ordered within each class, and the batch class (heavier
  // footprint) is slower than interactive.
  for (const auto& cls : agg.per_class) {
    EXPECT_LE(cls.p50_response_s, cls.p95_response_s);
    EXPECT_LE(cls.p95_response_s, cls.p99_response_s);
  }
  EXPECT_GT(agg.per_class[1].mean_response_s,
            agg.per_class[0].mean_response_s);
  const std::string json = agg.ToJson();
  EXPECT_NE(json.find("\"p99_response_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"class0.p99_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"class1.completions\":"), std::string::npos);
}

TEST(TailMetricsTest, AggregateByteIdenticalAcrossJobs) {
  // The jobs=1 vs jobs=8 determinism contract extends to the tail block and
  // the per-class aggregation (exact and sketch modes).
  for (bool sketch : {false, true}) {
    SimConfig c = OpenWorldConfig(SchedulerKind::kC2pl, 1.0);
    c.run.tail_metrics = true;
    c.run.tail_sketch = sketch;
    c.machine.batch_mpl = 2;
    const auto mix = MakeOpenWorldMix(SmallSpec());
    const AggregateResult serial = RunAggregate(c, mix, /*num_seeds=*/4,
                                                /*jobs=*/1);
    const AggregateResult fanout = RunAggregate(c, mix, /*num_seeds=*/4,
                                                /*jobs=*/8);
    EXPECT_EQ(serial.ToJson(), fanout.ToJson()) << "sketch=" << sketch;
  }
}

TEST(TailMetricsTest, SketchTracksExactPerClass) {
  // Machine-level differential: sketch mode must feed the exact same
  // stream (counts and means are bit-identical — only the percentile
  // summary is approximated) and land in the same ballpark on the
  // percentiles. The interactive stream under batch interference is
  // bimodal (txns stuck behind a batch scan vs not), which P2's five
  // markers track only coarsely — the tight distributional accuracy
  // contract is pinned on unimodal streams in quantile_sketch_test; here
  // the bounds are deliberately loose (p50 within 2x, tails within 35%).
  OpenWorldSpec spec = SmallSpec();
  spec.num_files = 512;  // Moderate contention: milder bimodality.
  SimConfig c = OpenWorldConfig(SchedulerKind::kLow, 1.5);
  c.machine.num_files = spec.num_files;
  c.run.tail_metrics = true;
  const auto mix = MakeOpenWorldMix(spec);
  const RunStats exact = RunSimulation(c, mix);
  c.run.tail_sketch = true;
  const RunStats sketched = RunSimulation(c, mix);
  EXPECT_FALSE(exact.sketch_quantiles);
  EXPECT_TRUE(sketched.sketch_quantiles);
  // Identical simulations — the sketch only changes the summary stage.
  EXPECT_EQ(sketched.completions_measured, exact.completions_measured);
  EXPECT_DOUBLE_EQ(sketched.mean_response_s, exact.mean_response_s);
  ASSERT_EQ(sketched.per_class.size(), exact.per_class.size());
  for (size_t i = 0; i < exact.per_class.size(); ++i) {
    const auto& e = exact.per_class[i];
    const auto& s = sketched.per_class[i];
    EXPECT_EQ(s.completions, e.completions);
    EXPECT_DOUBLE_EQ(s.mean_response_s, e.mean_response_s);
    EXPECT_GT(s.median_response_s, 0.5 * e.median_response_s)
        << "class " << e.workload_class;
    EXPECT_LT(s.median_response_s, 2.0 * e.median_response_s)
        << "class " << e.workload_class;
    EXPECT_NEAR(s.p95_response_s, e.p95_response_s, 0.35 * e.p95_response_s)
        << "class " << e.workload_class;
    EXPECT_NEAR(s.p99_response_s, e.p99_response_s, 0.35 * e.p99_response_s)
        << "class " << e.workload_class;
  }
  EXPECT_NEAR(sketched.p99_response_s, exact.p99_response_s,
              0.35 * exact.p99_response_s);
}

TEST(TailMetricsTest, AdmissionGateCounterAndEffect) {
  // batch_mpl caps concurrent batch (priority 0) transactions; the gated
  // startups surface as the admission.gated counter, which must be absent
  // entirely in ungated runs (golden-compatibility: no new counter names in
  // default mode).
  SimConfig gated = OpenWorldConfig(SchedulerKind::kC2pl, 3.0);
  gated.machine.batch_mpl = 1;
  const auto mix = MakeOpenWorldMix(SmallSpec());
  const RunStats with_gate = RunSimulation(gated, mix);
  uint64_t gated_count = 0;
  ASSERT_TRUE(HasCounter(with_gate.counters, "admission.gated", &gated_count));
  EXPECT_GT(gated_count, 0u);

  SimConfig open = gated;
  open.machine.batch_mpl = 0;
  const RunStats without_gate = RunSimulation(open, mix);
  EXPECT_FALSE(HasCounter(without_gate.counters, "admission.gated"));
}

}  // namespace
}  // namespace wtpgsched
