// Parameterized property sweep: for every scheduler x declustering degree x
// seed, a finite workload must drain completely (liveness / no deadlock),
// produce a serializable committed history (except NODC), and keep the
// bookkeeping consistent.

#include <gtest/gtest.h>

#include "analysis/serializability.h"
#include "machine/machine.h"

namespace wtpgsched {
namespace {

struct SweepCase {
  SchedulerKind scheduler;
  int dd;
  uint64_t seed;
  double rate_tps;
  bool hot_set;  // Experiment 2 pattern instead of Experiment 1.
};

std::string CaseName(const testing::TestParamInfo<SweepCase>& info) {
  std::string name = SchedulerKindName(info.param.scheduler);
  if (name == "2PL") name = "TwoPL";  // Identifiers cannot start with a digit.
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_dd" + std::to_string(info.param.dd) + "_seed" +
         std::to_string(info.param.seed) + (info.param.hot_set ? "_hot" : "");
}

class SchedulerPropertyTest : public testing::TestWithParam<SweepCase> {};

TEST_P(SchedulerPropertyTest, DrainsAndStaysConsistent) {
  const SweepCase param = GetParam();
  SimConfig c;
  c.scheduler = param.scheduler;
  c.machine.num_files = 16;
  c.machine.dd = param.dd;
  c.workload.arrival_rate_tps = param.rate_tps;
  c.workload.max_arrivals = 60;
  c.run.horizon_ms = 20'000'000;  // Generous: the workload must drain first.
  c.run.seed = param.seed;
  Machine m(c, param.hot_set ? Pattern::Experiment2()
                             : Pattern::Experiment1(16));
  const RunStats stats = m.Run();

  // Liveness: every transaction completed (no deadlock, no lost retries).
  EXPECT_EQ(stats.arrivals, 60u);
  EXPECT_EQ(stats.completions, 60u);
  EXPECT_EQ(m.in_flight(), 0u);

  // All locks released.
  EXPECT_EQ(m.scheduler().lock_table().num_locked_files(), 0u);
  EXPECT_EQ(m.scheduler().num_active(), 0u);

  // Committed history is conflict-serializable for every real scheduler.
  if (param.scheduler != SchedulerKind::kNodc) {
    const SerializabilityResult result =
        CheckConflictSerializability(m.schedule_log());
    EXPECT_TRUE(result.serializable) << result.ToString();
  }

  // Only OPT (validation failures) and 2PL (deadlock victims) restart.
  if (param.scheduler != SchedulerKind::kOpt &&
      param.scheduler != SchedulerKind::kTwoPl) {
    EXPECT_EQ(stats.restarts, 0u);
  }
}

std::vector<SweepCase> MakeCases() {
  std::vector<SweepCase> cases;
  const SchedulerKind kinds[] = {
      SchedulerKind::kNodc, SchedulerKind::kAsl,   SchedulerKind::kC2pl,
      SchedulerKind::kOpt,  SchedulerKind::kGow,   SchedulerKind::kLow,
      SchedulerKind::kLowLb, SchedulerKind::kTwoPl};
  for (SchedulerKind kind : kinds) {
    for (int dd : {1, 2, 8}) {
      cases.push_back({kind, dd, 42, 0.8, false});
    }
    cases.push_back({kind, 1, 43, 1.2, false});  // Supersaturated burst.
    cases.push_back({kind, 4, 44, 0.8, true});   // Hot set.
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerPropertyTest,
                         testing::ValuesIn(MakeCases()), CaseName);

// The WTPG maintained by the graph-based schedulers must satisfy its
// invariants at end of run (spot check via a fresh run that stops mid-way).
class GraphInvariantTest : public testing::TestWithParam<SchedulerKind> {};

TEST_P(GraphInvariantTest, GraphEmptyAfterDrain) {
  SimConfig c;
  c.scheduler = GetParam();
  c.machine.num_files = 8;
  c.machine.dd = 2;
  c.workload.arrival_rate_tps = 1.0;
  c.workload.max_arrivals = 40;
  c.run.horizon_ms = 20'000'000;
  c.run.seed = 5;
  Machine m(c, Pattern::Experiment1(8));
  m.Run();
  auto& sched = static_cast<WtpgSchedulerBase&>(m.scheduler());
  EXPECT_EQ(sched.graph().num_nodes(), 0u);
  EXPECT_EQ(sched.graph().num_edges(), 0u);
  EXPECT_TRUE(sched.graph().CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(GraphSchedulers, GraphInvariantTest,
                         testing::Values(SchedulerKind::kC2pl,
                                         SchedulerKind::kGow,
                                         SchedulerKind::kLow),
                         [](const testing::TestParamInfo<SchedulerKind>& info) {
                           return SchedulerKindName(info.param);
                         });

}  // namespace
}  // namespace wtpgsched
