#include <sstream>

#include <gtest/gtest.h>

#include "driver/experiments.h"
#include "driver/report.h"
#include "driver/sim_run.h"
#include "driver/sweep.h"

namespace wtpgsched {
namespace {

SimConfig QuickConfig(SchedulerKind kind) {
  SimConfig c;
  c.scheduler = kind;
  c.machine.num_files = 16;
  c.run.horizon_ms = 300'000;
  c.run.seed = 3;
  return c;
}

TEST(SimRunTest, AggregateAveragesSeeds) {
  SimConfig c = QuickConfig(SchedulerKind::kNodc);
  c.workload.arrival_rate_tps = 0.5;
  const AggregateResult one = RunAggregate(c, Pattern::Experiment1(16), 1);
  const AggregateResult three = RunAggregate(c, Pattern::Experiment1(16), 3);
  EXPECT_EQ(one.num_seeds, 1);
  EXPECT_EQ(three.num_seeds, 3);
  EXPECT_GT(three.mean_response_s, 0.0);
  EXPECT_GT(three.throughput_tps, 0.3);
}

TEST(SimRunTest, SameConfigSameAggregate) {
  SimConfig c = QuickConfig(SchedulerKind::kLow);
  c.workload.arrival_rate_tps = 0.5;
  const AggregateResult a = RunAggregate(c, Pattern::Experiment1(16), 2);
  const AggregateResult b = RunAggregate(c, Pattern::Experiment1(16), 2);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
}

TEST(SweepTest, ResponseTimeMonotoneInRate) {
  SimConfig c = QuickConfig(SchedulerKind::kNodc);
  const auto points = SweepArrivalRates(c, Pattern::Experiment1(16),
                                        {0.2, 0.6, 1.0}, 1);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].result.mean_response_s,
            points[1].result.mean_response_s);
  EXPECT_LT(points[1].result.mean_response_s,
            points[2].result.mean_response_s);
}

TEST(SweepTest, FindRateBracketsTarget) {
  SimConfig c = QuickConfig(SchedulerKind::kNodc);
  const OperatingPoint op = FindRateForResponseTime(
      c, Pattern::Experiment1(16), /*target_s=*/30.0, 0.1, 1.6,
      /*num_seeds=*/1, /*iters=*/8, /*tol_s=*/3.0);
  EXPECT_TRUE(op.converged);
  EXPECT_GT(op.lambda_tps, 0.5);
  EXPECT_LT(op.lambda_tps, 1.4);
  EXPECT_NEAR(op.mean_response_s, 30.0, 15.0);
}

TEST(SweepTest, TargetBelowCurveReturnsLowBracket) {
  SimConfig c = QuickConfig(SchedulerKind::kNodc);
  // Even an idle system takes > 7 s; a 1 s target is unreachable.
  const OperatingPoint op = FindRateForResponseTime(
      c, Pattern::Experiment1(16), 1.0, 0.1, 1.0, 1, 6, 1.0);
  EXPECT_FALSE(op.converged);
  EXPECT_DOUBLE_EQ(op.lambda_tps, 0.1);
}

TEST(SweepTest, TargetAboveCurveReturnsHighBracket) {
  SimConfig c = QuickConfig(SchedulerKind::kNodc);
  const OperatingPoint op = FindRateForResponseTime(
      c, Pattern::Experiment1(16), 10'000.0, 0.1, 0.5, 1, 6, 1.0);
  EXPECT_FALSE(op.converged);
  EXPECT_DOUBLE_EQ(op.lambda_tps, 0.5);
}

TEST(SweepTest, TuneMplPicksBestResponseTime) {
  SimConfig c = QuickConfig(SchedulerKind::kC2pl);
  c.workload.arrival_rate_tps = 1.0;
  const MplChoice choice =
      TuneMpl(c, Pattern::Experiment1(16), {1, 4, 1000}, 1);
  EXPECT_TRUE(choice.mpl == 1 || choice.mpl == 4 || choice.mpl == 1000);
  // The tuned choice can't be worse than plain C2PL (mpl = 1000 here).
  SimConfig raw = c;
  raw.machine.mpl = 1000;
  const AggregateResult raw_result =
      RunAggregate(raw, Pattern::Experiment1(16), 1);
  EXPECT_LE(choice.result.mean_response_s, raw_result.mean_response_s + 1e-9);
}

TEST(ExperimentsTest, PaperSchedulerLineup) {
  const auto kinds = PaperSchedulers();
  ASSERT_EQ(kinds.size(), 6u);
  EXPECT_EQ(kinds.front(), SchedulerKind::kNodc);
  EXPECT_EQ(SchedulerLabel(kinds[1]), "ASL");
}

TEST(ExperimentsTest, MakeConfigAppliesOverrides) {
  const SimConfig c = MakeConfig(SchedulerKind::kGow, 32, 4, 1.2, 0.5);
  EXPECT_EQ(c.scheduler, SchedulerKind::kGow);
  EXPECT_EQ(c.machine.num_files, 32);
  EXPECT_EQ(c.machine.dd, 4);
  EXPECT_DOUBLE_EQ(c.workload.arrival_rate_tps, 1.2);
  EXPECT_DOUBLE_EQ(c.workload.error_sigma, 0.5);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ReportTest, TablePrinterAligns) {
  TablePrinter table({"sched", "tps"});
  table.AddRow({"NODC", "1.04"});
  table.AddRow({"C2PL", "0.35"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("NODC"), std::string::npos);
  EXPECT_NE(text.find("| sched |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(FmtTps(1.041), "1.04");
  EXPECT_EQ(FmtSeconds(387.2), "387");
  EXPECT_EQ(FmtSeconds(47.25), "47.2");
  EXPECT_EQ(FmtSpeedup(13.39), "13.39");
  EXPECT_EQ(FmtPercent(0.945), "94.5%");
}

TEST(ReportTest, CsvRoundTrip) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  const std::string path = testing::TempDir() + "/report_test.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wtpgsched
