// Differential guard for the fault layer: a configuration with no faults
// must produce byte-identical JSON to the goldens captured before the
// fault subsystem existed. FaultPlan compilation, cohort-job bookkeeping,
// and the lazily-registered fault counters all have to be invisible when
// config.fault is all-zero — any drift here fails loudly.
//
// The goldens were generated with:
//   wtpg_sim --scheduler=$s --rate=1.0 --horizon-ms=300000 --max-arrivals=60
//            [--seeds=2 --jobs=1] --json
// for every scheduler flag name (one line per scheduler: "<flag>\t<json>").

#include <fstream>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "driver/sim_run.h"
#include "machine/config.h"
#include "workload/pattern.h"

namespace wtpgsched {
namespace {

SimConfig GoldenConfig(const std::string& flag_name) {
  SimConfig c;
  EXPECT_TRUE(ParseSchedulerKind(flag_name, &c.scheduler)) << flag_name;
  c.workload.arrival_rate_tps = 1.0;
  c.workload.max_arrivals = 60;
  c.run.horizon_ms = 300'000;
  return c;
}

void ForEachGoldenLine(
    const std::string& file,
    const std::function<void(const std::string&, const std::string&)>& fn) {
  const std::string path = std::string(WTPG_TEST_DATA_DIR) + "/" + file;
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "missing golden " << path;
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    ASSERT_NE(tab, std::string::npos) << "malformed golden line: " << line;
    fn(line.substr(0, tab), line.substr(tab + 1));
    ++lines;
  }
  EXPECT_EQ(lines, 8) << "expected one golden line per scheduler";
}

TEST(ZeroFaultGoldenTest, AggregateJsonByteIdentical) {
  ForEachGoldenLine(
      "golden_zero_fault.tsv",
      [](const std::string& flag, const std::string& expected) {
        const SimConfig c = GoldenConfig(flag);
        const AggregateResult agg = RunAggregate(
            c, Pattern::Experiment1(c.machine.num_files), /*num_seeds=*/2,
            /*jobs=*/1);
        EXPECT_EQ(agg.ToJson(), expected) << "scheduler " << flag;
      });
}

TEST(ZeroFaultGoldenTest, SingleRunJsonByteIdentical) {
  ForEachGoldenLine(
      "golden_zero_fault_single.tsv",
      [](const std::string& flag, const std::string& expected) {
        const SimConfig c = GoldenConfig(flag);
        const RunStats stats =
            RunSimulation(c, Pattern::Experiment1(c.machine.num_files));
        EXPECT_EQ(stats.ToJson(), expected) << "scheduler " << flag;
      });
}

}  // namespace
}  // namespace wtpgsched
