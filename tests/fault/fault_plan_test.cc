#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "fault/fault_config.h"
#include "sim/time.h"

namespace wtpgsched {
namespace {

constexpr SimTime kHorizon = MsToTime(2'000'000);

FaultConfig ChurnConfig() {
  FaultConfig f;
  f.dpn_mttf_ms = 60'000;
  f.dpn_mttr_ms = 20'000;
  f.straggler_mtbf_ms = 120'000;
  f.straggler_duration_ms = 30'000;
  f.straggler_factor = 4.0;
  f.abort_rate_per_s = 0.05;
  return f;
}

bool SameEvents(const FaultPlan& a, const FaultPlan& b) {
  if (a.events().size() != b.events().size()) return false;
  for (size_t i = 0; i < a.events().size(); ++i) {
    const FaultEvent& x = a.events()[i];
    const FaultEvent& y = b.events()[i];
    if (x.time != y.time || x.kind != y.kind || x.node != y.node ||
        x.pick != y.pick) {
      return false;
    }
  }
  return true;
}

TEST(FaultConfigTest, DisabledByDefault) {
  FaultConfig f;
  EXPECT_FALSE(f.enabled());
  EXPECT_TRUE(f.Validate().ok());
}

TEST(FaultConfigTest, ValidateRejectsBadValues) {
  FaultConfig f;
  f.dpn_mttf_ms = 1000;
  f.dpn_mttr_ms = 0;
  EXPECT_FALSE(f.Validate().ok());

  f = FaultConfig{};
  f.straggler_mtbf_ms = 1000;
  f.straggler_factor = 0.5;
  EXPECT_FALSE(f.Validate().ok());

  f = FaultConfig{};
  f.backoff_jitter = 1.0;
  EXPECT_FALSE(f.Validate().ok());

  f = FaultConfig{};
  f.backoff_base_ms = 2000;
  f.backoff_max_ms = 1000;
  EXPECT_FALSE(f.Validate().ok());

  EXPECT_TRUE(ChurnConfig().Validate().ok());
}

TEST(FaultPlanTest, ZeroFaultConfigCompilesEmpty) {
  const FaultPlan plan = FaultPlan::Compile(FaultConfig{}, 8, kHorizon, 1);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.num_crashes(), 0u);
  EXPECT_EQ(plan.num_slowdowns(), 0u);
  EXPECT_EQ(plan.num_abort_injections(), 0u);
}

TEST(FaultPlanTest, SameSeedBitIdentical) {
  const FaultPlan a = FaultPlan::Compile(ChurnConfig(), 8, kHorizon, 42);
  const FaultPlan b = FaultPlan::Compile(ChurnConfig(), 8, kHorizon, 42);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(SameEvents(a, b));
}

TEST(FaultPlanTest, DifferentSeedsDiffer) {
  const FaultPlan a = FaultPlan::Compile(ChurnConfig(), 8, kHorizon, 1);
  const FaultPlan b = FaultPlan::Compile(ChurnConfig(), 8, kHorizon, 2);
  EXPECT_FALSE(SameEvents(a, b));
}

// Turning other fault sources on must not move the crash schedule: each
// source draws from its own forked stream.
TEST(FaultPlanTest, CrashScheduleIndependentOfOtherSources) {
  FaultConfig crash_only;
  crash_only.dpn_mttf_ms = 60'000;
  crash_only.dpn_mttr_ms = 20'000;
  const FaultPlan lone = FaultPlan::Compile(crash_only, 8, kHorizon, 7);
  const FaultPlan churn = FaultPlan::Compile(ChurnConfig(), 8, kHorizon, 7);

  std::vector<FaultEvent> churn_crashes;
  for (const FaultEvent& e : churn.events()) {
    if (e.kind == FaultEventKind::kDpnCrash ||
        e.kind == FaultEventKind::kDpnRepair) {
      churn_crashes.push_back(e);
    }
  }
  ASSERT_EQ(churn_crashes.size(), lone.events().size());
  for (size_t i = 0; i < churn_crashes.size(); ++i) {
    EXPECT_EQ(churn_crashes[i].time, lone.events()[i].time);
    EXPECT_EQ(churn_crashes[i].kind, lone.events()[i].kind);
    EXPECT_EQ(churn_crashes[i].node, lone.events()[i].node);
  }
}

TEST(FaultPlanTest, EventsSortedAndWithinHorizon) {
  const FaultPlan plan = FaultPlan::Compile(ChurnConfig(), 8, kHorizon, 3);
  ASSERT_FALSE(plan.empty());
  for (size_t i = 0; i < plan.events().size(); ++i) {
    const FaultEvent& e = plan.events()[i];
    EXPECT_GE(e.time, 0);
    EXPECT_LT(e.time, kHorizon);
    if (i > 0) {
      EXPECT_LE(plan.events()[i - 1].time, e.time);
    }
    if (e.kind == FaultEventKind::kInjectAbort) {
      EXPECT_EQ(e.node, -1);
      EXPECT_GE(e.pick, 0.0);
      EXPECT_LT(e.pick, 1.0);
    } else {
      EXPECT_GE(e.node, 0);
      EXPECT_LT(e.node, 8);
    }
  }
}

// Per node, crash and repair strictly alternate starting with a crash (a
// down node cannot fail again; an up node cannot be repaired).
TEST(FaultPlanTest, CrashRepairAlternatePerNode) {
  const FaultPlan plan = FaultPlan::Compile(ChurnConfig(), 4, kHorizon, 11);
  std::vector<bool> down(4, false);
  for (const FaultEvent& e : plan.events()) {
    if (e.kind == FaultEventKind::kDpnCrash) {
      EXPECT_FALSE(down[static_cast<size_t>(e.node)]) << "double crash";
      down[static_cast<size_t>(e.node)] = true;
    } else if (e.kind == FaultEventKind::kDpnRepair) {
      EXPECT_TRUE(down[static_cast<size_t>(e.node)]) << "repair while up";
      down[static_cast<size_t>(e.node)] = false;
    }
  }
  EXPECT_GT(plan.num_crashes(), 0u);
}

// More nodes -> a superset prefix situation must NOT hold (each node forks
// its own stream), but the count should scale roughly with node count.
TEST(FaultPlanTest, CrashCountScalesWithNodes) {
  FaultConfig f;
  f.dpn_mttf_ms = 30'000;
  f.dpn_mttr_ms = 10'000;
  const FaultPlan small = FaultPlan::Compile(f, 2, kHorizon, 5);
  const FaultPlan large = FaultPlan::Compile(f, 16, kHorizon, 5);
  EXPECT_GT(large.num_crashes(), small.num_crashes());
}

}  // namespace
}  // namespace wtpgsched
