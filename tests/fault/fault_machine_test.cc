// Machine-level fault injection: crashed DPNs fail their resident cohorts
// and the victims restart cleanly; stragglers stretch scans; injected
// aborts pick deterministic victims; and none of it leaks scheduler state
// (lock table entries, WTPG nodes) or breaks the jobs-invariance contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/sim_run.h"
#include "machine/machine.h"
#include "sched/scheduler.h"
#include "workload/pattern.h"

namespace wtpgsched {
namespace {

SimConfig BaseConfig(SchedulerKind kind) {
  SimConfig c;
  c.scheduler = kind;
  c.machine.num_files = 16;
  c.workload.arrival_rate_tps = 1.0;
  c.workload.max_arrivals = 30;
  c.run.horizon_ms = 2'000'000;
  c.run.seed = 1;
  return c;
}

uint64_t Counter(const std::vector<std::pair<std::string, uint64_t>>& counters,
                 const std::string& name) {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

uint64_t Counter(const RunStats& stats, const std::string& name) {
  return Counter(stats.counters, name);
}

bool HasFaultCounters(const RunStats& stats) {
  for (const auto& [key, value] : stats.counters) {
    (void)value;
    if (key.rfind("fault.", 0) == 0) return true;
  }
  return false;
}

// Structural leak check after a run: every lock in the table belongs to a
// transaction the scheduler still considers active, and (for WTPG
// schedulers) the graph holds exactly the active transactions.
void ExpectNoSchedulerLeaks(Machine& machine) {
  const Scheduler& sched = machine.scheduler();
  const auto& active = sched.active();
  const int num_files = machine.config().machine.num_files;
  for (FileId file = 0; file < num_files; ++file) {
    for (const auto& holder : sched.lock_table().GetHolders(file)) {
      EXPECT_TRUE(active.count(holder.txn) > 0)
          << "F" << file << " locked by non-active T" << holder.txn;
    }
  }
  if (const auto* wtpg = dynamic_cast<const WtpgSchedulerBase*>(&sched)) {
    EXPECT_EQ(wtpg->graph().num_nodes(), active.size());
    for (const auto& [id, txn] : active) {
      (void)txn;
      EXPECT_TRUE(wtpg->graph().HasNode(id)) << "active T" << id;
    }
  }
}

TEST(FaultMachineTest, CrashChurnDrainsCleanly) {
  SimConfig c = BaseConfig(SchedulerKind::kTwoPl);
  c.fault.dpn_mttf_ms = 200'000;
  c.fault.dpn_mttr_ms = 15'000;
  Machine machine(c, Pattern::Experiment1(c.machine.num_files));
  const RunStats stats = machine.Run();
  const uint64_t crashes = Counter(stats, "fault.crashes");
  const uint64_t repairs = Counter(stats, "fault.repairs");
  EXPECT_GT(crashes, 0u);
  // Each node alternates crash/repair; at most one repair per node can fall
  // past the horizon.
  EXPECT_LE(repairs, crashes);
  EXPECT_GE(repairs + 8, crashes);
  EXPECT_GT(Counter(stats, "fault.crash_victims"), 0u);
  // Every arrival eventually commits: victims restart after backoff and
  // nothing is stranded on the dead node.
  EXPECT_EQ(stats.completions, 30u);
  EXPECT_EQ(machine.in_flight(), 0u);
  EXPECT_EQ(machine.scheduler().num_active(), 0u);
  EXPECT_EQ(machine.scheduler().lock_table().num_locked_files(), 0u);
}

TEST(FaultMachineTest, InjectedAbortsRestartVictims) {
  SimConfig c = BaseConfig(SchedulerKind::kLow);
  c.fault.abort_rate_per_s = 0.05;
  Machine machine(c, Pattern::Experiment1(c.machine.num_files));
  const RunStats stats = machine.Run();
  EXPECT_GT(Counter(stats, "fault.injected_aborts"), 0u);
  EXPECT_EQ(Counter(stats, "fault.injected_aborts"),
            Counter(stats, "fault.backoff_restarts"));
  EXPECT_EQ(stats.restarts, Counter(stats, "fault.backoff_restarts"));
  EXPECT_EQ(stats.completions, 30u);
  EXPECT_EQ(machine.in_flight(), 0u);
  EXPECT_EQ(machine.scheduler().lock_table().num_locked_files(), 0u);
}

TEST(FaultMachineTest, StragglersStretchScansButEveryoneCompletes) {
  SimConfig base = BaseConfig(SchedulerKind::kNodc);
  Machine clean_machine(base, Pattern::Experiment1(base.machine.num_files));
  const RunStats clean = clean_machine.Run();

  SimConfig c = base;
  c.fault.straggler_mtbf_ms = 60'000;
  c.fault.straggler_duration_ms = 60'000;
  c.fault.straggler_factor = 8.0;
  Machine machine(c, Pattern::Experiment1(c.machine.num_files));
  const RunStats slow = machine.Run();
  EXPECT_GT(Counter(slow, "fault.slowdowns"), 0u);
  EXPECT_EQ(slow.completions, 30u);
  // Same seed, same workload: the only difference is slower scans.
  EXPECT_GT(slow.mean_response_s, clean.mean_response_s);
}

TEST(FaultMachineTest, ZeroFaultRunRegistersNoFaultCounters) {
  SimConfig c = BaseConfig(SchedulerKind::kLow);
  Machine machine(c, Pattern::Experiment1(c.machine.num_files));
  const RunStats stats = machine.Run();
  EXPECT_FALSE(HasFaultCounters(stats));
  EXPECT_EQ(stats.completions, 30u);
}

// The abort storm: crashes, stragglers, and injected aborts all at once,
// against every scheduler family. The horizon is too short to drain, so
// the assertion is purely structural: no orphaned locks, no orphaned WTPG
// nodes, active set consistent. This is the suite the sanitizer presets
// run to prove fault aborts free of leaks and races.
TEST(FaultMachineTest, AbortStormLeavesNoLeaks) {
  const SchedulerKind kinds[] = {
      SchedulerKind::kNodc, SchedulerKind::kAsl,  SchedulerKind::kC2pl,
      SchedulerKind::kOpt,  SchedulerKind::kGow,  SchedulerKind::kLow,
      SchedulerKind::kLowLb, SchedulerKind::kTwoPl,
  };
  for (SchedulerKind kind : kinds) {
    SimConfig c = BaseConfig(kind);
    c.workload.max_arrivals = 0;  // Arrivals all the way to the horizon.
    c.workload.arrival_rate_tps = 1.2;
    c.run.horizon_ms = 400'000;
    c.fault.dpn_mttf_ms = 30'000;
    c.fault.dpn_mttr_ms = 10'000;
    c.fault.straggler_mtbf_ms = 60'000;
    c.fault.abort_rate_per_s = 0.1;
    Machine machine(c, Pattern::Experiment1(c.machine.num_files));
    const RunStats stats = machine.Run();
    SCOPED_TRACE(SchedulerKindName(kind));
    EXPECT_GT(Counter(stats, "fault.crashes"), 0u);
    EXPECT_GT(Counter(stats, "fault.backoff_restarts"), 0u);
    ExpectNoSchedulerLeaks(machine);
  }
}

// The determinism contract extends to fault runs: the compiled plan and
// every downstream effect depend only on the replica seed, so fanning the
// seeds across any worker count reproduces the serial bytes.
TEST(FaultMachineTest, FaultRunsAreJobsInvariant) {
  SimConfig c = BaseConfig(SchedulerKind::kTwoPl);
  c.workload.max_arrivals = 0;
  c.run.horizon_ms = 400'000;
  c.fault.dpn_mttf_ms = 60'000;
  c.fault.dpn_mttr_ms = 15'000;
  c.fault.straggler_mtbf_ms = 120'000;
  c.fault.abort_rate_per_s = 0.02;
  const Pattern pattern = Pattern::Experiment1(c.machine.num_files);
  const AggregateResult serial = RunAggregate(c, pattern, 4, /*jobs=*/1);
  const AggregateResult fanned = RunAggregate(c, pattern, 4, /*jobs=*/4);
  EXPECT_EQ(serial.ToJson(), fanned.ToJson());
  EXPECT_GT(Counter(serial.counters, "fault.crashes"), 0u);
}

// Seeds differ -> plans differ -> results differ (no accidental seed
// aliasing between the fault stream and the workload streams).
TEST(FaultMachineTest, DifferentSeedsDifferentChurn) {
  SimConfig c = BaseConfig(SchedulerKind::kTwoPl);
  c.workload.max_arrivals = 0;
  c.run.horizon_ms = 400'000;
  c.fault.dpn_mttf_ms = 60'000;
  const Pattern pattern = Pattern::Experiment1(c.machine.num_files);
  const RunStats a = RunSimulation(c, pattern);
  c.run.seed = 2;
  const RunStats b = RunSimulation(c, pattern);
  EXPECT_NE(a.ToJson(), b.ToJson());
}

}  // namespace
}  // namespace wtpgsched
