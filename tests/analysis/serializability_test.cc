#include "analysis/serializability.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

constexpr LockMode kS = LockMode::kShared;
constexpr LockMode kX = LockMode::kExclusive;

TEST(SerializabilityTest, EmptyLogIsSerializable) {
  ScheduleLog log;
  EXPECT_TRUE(CheckConflictSerializability(log).serializable);
}

TEST(SerializabilityTest, SingleTransaction) {
  ScheduleLog log;
  log.RecordAccess(1, 0, 0, kX, 10);
  log.RecordCommit(1, 0);
  EXPECT_TRUE(CheckConflictSerializability(log).serializable);
}

TEST(SerializabilityTest, SerialHistoryOk) {
  ScheduleLog log;
  log.RecordAccess(1, 0, 0, kX, 10);
  log.RecordAccess(1, 0, 1, kX, 20);
  log.RecordAccess(2, 0, 0, kX, 30);
  log.RecordAccess(2, 0, 1, kX, 40);
  log.RecordCommit(1, 0);
  log.RecordCommit(2, 0);
  EXPECT_TRUE(CheckConflictSerializability(log).serializable);
}

TEST(SerializabilityTest, DetectsWriteWriteCycle) {
  // T1 writes A before T2, but T2 writes B before T1: cycle.
  ScheduleLog log;
  log.RecordAccess(1, 0, /*file=*/0, kX, 10);
  log.RecordAccess(2, 0, /*file=*/1, kX, 15);
  log.RecordAccess(2, 0, /*file=*/0, kX, 20);
  log.RecordAccess(1, 0, /*file=*/1, kX, 25);
  log.RecordCommit(1, 0);
  log.RecordCommit(2, 0);
  const SerializabilityResult result = CheckConflictSerializability(log);
  EXPECT_FALSE(result.serializable);
  EXPECT_GE(result.cycle.size(), 2u);
  EXPECT_NE(result.ToString().find("NOT"), std::string::npos);
}

TEST(SerializabilityTest, SharedReadsNeverConflict) {
  ScheduleLog log;
  log.RecordAccess(1, 0, 0, kS, 10);
  log.RecordAccess(2, 0, 0, kS, 15);
  log.RecordAccess(1, 0, 1, kS, 20);
  log.RecordAccess(2, 0, 1, kS, 5);
  log.RecordCommit(1, 0);
  log.RecordCommit(2, 0);
  EXPECT_TRUE(CheckConflictSerializability(log).serializable);
}

TEST(SerializabilityTest, ReadWriteCycleDetected) {
  // T1 reads A then T2 writes A (T1 -> T2); T2 reads B then T1 writes B
  // (T2 -> T1): cycle.
  ScheduleLog log;
  log.RecordAccess(1, 0, 0, kS, 10);
  log.RecordAccess(2, 0, 1, kS, 12);
  log.RecordAccess(2, 0, 0, kX, 20);
  log.RecordAccess(1, 0, 1, kX, 22);
  log.RecordCommit(1, 0);
  log.RecordCommit(2, 0);
  EXPECT_FALSE(CheckConflictSerializability(log).serializable);
}

TEST(SerializabilityTest, UncommittedAccessesIgnored) {
  ScheduleLog log;
  log.RecordAccess(1, 0, 0, kX, 10);
  log.RecordAccess(2, 0, 1, kX, 15);
  log.RecordAccess(2, 0, 0, kX, 20);
  log.RecordAccess(1, 0, 1, kX, 25);
  log.RecordCommit(1, 0);
  // T2 never commits: its accesses drop out, no cycle remains.
  EXPECT_TRUE(CheckConflictSerializability(log).serializable);
}

TEST(SerializabilityTest, AbortedIncarnationIgnored) {
  // T2's incarnation 0 formed a cycle, but only incarnation 1 committed.
  ScheduleLog log;
  log.RecordAccess(1, 0, 0, kX, 10);
  log.RecordAccess(2, /*incarnation=*/0, 1, kX, 15);
  log.RecordAccess(2, /*incarnation=*/0, 0, kX, 20);
  log.RecordAccess(1, 0, 1, kX, 25);
  log.RecordAccess(2, /*incarnation=*/1, 1, kX, 40);
  log.RecordAccess(2, /*incarnation=*/1, 0, kX, 45);
  log.RecordCommit(1, 0);
  log.RecordCommit(2, 1);
  EXPECT_TRUE(CheckConflictSerializability(log).serializable);
}

TEST(SerializabilityTest, EqualTimesBreakBySequence) {
  ScheduleLog log;
  log.RecordAccess(1, 0, 0, kX, 10);  // Sequence 0.
  log.RecordAccess(2, 0, 0, kX, 10);  // Sequence 1: after T1.
  log.RecordCommit(1, 0);
  log.RecordCommit(2, 0);
  EXPECT_TRUE(CheckConflictSerializability(log).serializable);
}

TEST(SerializabilityTest, ThreeWayCycle) {
  ScheduleLog log;
  log.RecordAccess(1, 0, 0, kX, 10);  // 1 -> 2 on file 0.
  log.RecordAccess(2, 0, 0, kX, 20);
  log.RecordAccess(2, 0, 1, kX, 30);  // 2 -> 3 on file 1.
  log.RecordAccess(3, 0, 1, kX, 40);
  log.RecordAccess(3, 0, 2, kX, 50);  // 3 -> 1 on file 2.
  log.RecordAccess(1, 0, 2, kX, 60);
  for (TxnId id : {1, 2, 3}) log.RecordCommit(id, 0);
  const SerializabilityResult result = CheckConflictSerializability(log);
  EXPECT_FALSE(result.serializable);
  EXPECT_EQ(result.cycle.size(), 3u);
}

TEST(ScheduleLogTest, ClearResets) {
  ScheduleLog log;
  log.RecordAccess(1, 0, 0, kX, 10);
  log.RecordCommit(1, 0);
  log.Clear();
  EXPECT_TRUE(log.accesses().empty());
  EXPECT_TRUE(log.committed().empty());
}

}  // namespace
}  // namespace wtpgsched
