#include "trace/trace_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "metrics/counters.h"

namespace wtpgsched {
namespace {

TraceEvent At(SimTime t, TraceEventType type = TraceEventType::kArrive,
              TxnId txn = 1) {
  return TraceEvent{.time = t, .type = type, .txn = txn};
}

TEST(TraceRecorderTest, DisabledByDefaultRecordsNothing) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.Record(At(10));
  rec.Record(At(20, TraceEventType::kCommit));
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Snapshot().empty());
}

TEST(TraceRecorderTest, DisabledExportsNoCounters) {
  TraceRecorder rec;
  rec.Record(At(10));
  CounterRegistry registry;
  rec.ExportCounters(&registry);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(TraceRecorderTest, RecordsInOrder) {
  TraceRecorder rec;
  rec.Enable(8);
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.capacity(), 8u);
  rec.Record(At(10, TraceEventType::kArrive, 1));
  rec.Record(At(20, TraceEventType::kAdmit, 1));
  rec.Record(At(30, TraceEventType::kCommit, 1));
  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 10);
  EXPECT_EQ(events[0].type, TraceEventType::kArrive);
  EXPECT_EQ(events[1].time, 20);
  EXPECT_EQ(events[1].type, TraceEventType::kAdmit);
  EXPECT_EQ(events[2].time, 30);
  EXPECT_EQ(events[2].type, TraceEventType::kCommit);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.total_recorded(), 3u);
}

TEST(TraceRecorderTest, RingKeepsMostRecentAndCountsDropped) {
  TraceRecorder rec;
  rec.Enable(4);
  for (SimTime t = 0; t < 10; ++t) rec.Record(At(t));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first over the surviving window.
  EXPECT_EQ(events[0].time, 6);
  EXPECT_EQ(events[1].time, 7);
  EXPECT_EQ(events[2].time, 8);
  EXPECT_EQ(events[3].time, 9);
}

TEST(TraceRecorderTest, TypeCountsCoverDroppedEvents) {
  TraceRecorder rec;
  rec.Enable(2);
  for (SimTime t = 0; t < 5; ++t) rec.Record(At(t, TraceEventType::kArrive));
  for (SimTime t = 5; t < 8; ++t) {
    rec.Record(At(t, TraceEventType::kLockGrant));
  }
  // The ring only holds two events, but per-type counts span the run.
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.type_count(TraceEventType::kArrive), 5u);
  EXPECT_EQ(rec.type_count(TraceEventType::kLockGrant), 3u);
  EXPECT_EQ(rec.type_count(TraceEventType::kCommit), 0u);
  EXPECT_EQ(rec.total_recorded(), 8u);
}

TEST(TraceRecorderTest, ExportCountersAddsNonZeroTypesAndDropped) {
  TraceRecorder rec;
  rec.Enable(2);
  rec.Record(At(1, TraceEventType::kArrive));
  rec.Record(At(2, TraceEventType::kArrive));
  rec.Record(At(3, TraceEventType::kCommit));  // Overwrites; dropped = 1.
  CounterRegistry registry;
  rec.ExportCounters(&registry);
  EXPECT_EQ(registry.Get("trace.arrive"), 2u);
  EXPECT_EQ(registry.Get("trace.commit"), 1u);
  EXPECT_EQ(registry.Get("trace.dropped"), 1u);
  // Zero-count types are not registered.
  EXPECT_EQ(registry.size(), 3u);
}

TEST(TraceRecorderTest, NowStampIsSettable) {
  TraceRecorder rec;
  EXPECT_EQ(rec.now(), 0);
  rec.set_now(12345);
  EXPECT_EQ(rec.now(), 12345);
}

TEST(TraceRecorderTest, EveryTypeHasAName) {
  for (size_t i = 0; i < static_cast<size_t>(TraceEventType::kNumTypes);
       ++i) {
    EXPECT_STRNE(TraceEventTypeName(static_cast<TraceEventType>(i)), "?");
  }
}

}  // namespace
}  // namespace wtpgsched
