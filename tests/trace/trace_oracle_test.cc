// Tests of the post-hoc trace oracles: the serialization-order check and
// the wait-time decomposition, on hand-built event sequences and on full
// machine runs with tracing enabled.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "trace/trace_analysis.h"

namespace wtpgsched {
namespace {

TraceEvent Access(SimTime t, TxnId txn, FileId file, LockMode mode,
                  int32_t incarnation = 0) {
  return TraceEvent{.time = t,
                    .type = TraceEventType::kDataAccess,
                    .txn = txn,
                    .incarnation = incarnation,
                    .file = file,
                    .mode = mode};
}

TraceEvent Commit(SimTime t, TxnId txn, int32_t incarnation = 0) {
  return TraceEvent{.time = t,
                    .type = TraceEventType::kCommit,
                    .txn = txn,
                    .incarnation = incarnation};
}

TEST(TraceOracleTest, SerializableSequencePasses) {
  // T1 precedes T2 on both files: a clean serial order T1 < T2.
  const std::vector<TraceEvent> events = {
      Access(100, 1, 0, LockMode::kExclusive),
      Access(150, 1, 1, LockMode::kExclusive),
      Access(200, 2, 0, LockMode::kExclusive),
      Access(250, 2, 1, LockMode::kExclusive),
      Commit(300, 1),
      Commit(350, 2),
  };
  const SerializabilityResult result = CheckTraceSerializable(events);
  EXPECT_TRUE(result.serializable) << result.ToString();
  EXPECT_TRUE(result.cycle.empty());
}

TEST(TraceOracleTest, SharedAccessesDoNotConflict) {
  // Interleaved reads of the same file in both orders: no conflict edge.
  const std::vector<TraceEvent> events = {
      Access(100, 1, 0, LockMode::kShared),
      Access(200, 2, 0, LockMode::kShared),
      Access(300, 2, 1, LockMode::kShared),
      Access(400, 1, 1, LockMode::kShared),
      Commit(500, 1),
      Commit(600, 2),
  };
  EXPECT_TRUE(CheckTraceSerializable(events).serializable);
}

TEST(TraceOracleTest, CyclicSequenceFailsWithWitness) {
  // T1 -> T2 on file 0 and T2 -> T1 on file 1: the classic 2-cycle.
  const std::vector<TraceEvent> events = {
      Access(100, 1, 0, LockMode::kExclusive),
      Access(200, 2, 1, LockMode::kExclusive),
      Access(300, 2, 0, LockMode::kExclusive),
      Access(400, 1, 1, LockMode::kExclusive),
      Commit(500, 2),
      Commit(600, 1),
  };
  const SerializabilityResult result = CheckTraceSerializable(events);
  EXPECT_FALSE(result.serializable);
  ASSERT_FALSE(result.cycle.empty());
  EXPECT_NE(std::find(result.cycle.begin(), result.cycle.end(), TxnId{1}),
            result.cycle.end());
  EXPECT_NE(std::find(result.cycle.begin(), result.cycle.end(), TxnId{2}),
            result.cycle.end());
  EXPECT_NE(result.ToString().find("NOT serializable"), std::string::npos);
}

TEST(TraceOracleTest, UncommittedTransactionsAreIgnored) {
  // Same cycle as above, but T2 never commits — only the committed
  // projection counts.
  const std::vector<TraceEvent> events = {
      Access(100, 1, 0, LockMode::kExclusive),
      Access(200, 2, 1, LockMode::kExclusive),
      Access(300, 2, 0, LockMode::kExclusive),
      Access(400, 1, 1, LockMode::kExclusive),
      Commit(600, 1),
  };
  EXPECT_TRUE(CheckTraceSerializable(events).serializable);
}

TEST(TraceOracleTest, AbortedIncarnationsAreIgnored) {
  // T1's incarnation 0 touched file 1 before aborting; only incarnation 1
  // committed. Counting the dead incarnation's access would close a cycle.
  const std::vector<TraceEvent> events = {
      Access(50, 1, 1, LockMode::kExclusive, /*incarnation=*/0),
      Access(100, 2, 1, LockMode::kExclusive),
      Access(150, 2, 0, LockMode::kExclusive),
      Access(200, 1, 0, LockMode::kExclusive, /*incarnation=*/1),
      Commit(300, 2),
      Commit(400, 1, /*incarnation=*/1),
  };
  EXPECT_TRUE(CheckTraceSerializable(events).serializable);
}

// --- Full machine runs with tracing enabled ---

SimConfig TracedConfig(SchedulerKind kind) {
  SimConfig c;
  c.scheduler = kind;
  c.machine.num_files = 16;
  c.machine.dd = 1;
  // A contended burst: 8 transactions arriving ~2/s against 1 s/object
  // scans forces real conflicts at every scheduler.
  c.workload.arrival_rate_tps = 2.0;
  c.workload.max_arrivals = 8;
  c.run.horizon_ms = 2'000'000;
  c.run.seed = 17;
  c.run.trace_enabled = true;
  c.run.trace_capacity = 1 << 16;
  return c;
}

TEST(TraceOracleTest, EverySchedulerExceptNodcYieldsAcyclicTraces) {
  for (SchedulerKind kind :
       {SchedulerKind::kAsl, SchedulerKind::kC2pl, SchedulerKind::kOpt,
        SchedulerKind::kGow, SchedulerKind::kLow, SchedulerKind::kLowLb,
        SchedulerKind::kTwoPl}) {
    Machine m(TracedConfig(kind), Pattern::Experiment1(16));
    const RunStats stats = m.Run();
    const std::vector<TraceEvent> events = m.trace().Snapshot();
    ASSERT_FALSE(events.empty()) << SchedulerKindName(kind);
    EXPECT_EQ(m.trace().dropped(), 0u) << SchedulerKindName(kind);
    // Every commit the stats saw is in the trace.
    EXPECT_EQ(m.trace().type_count(TraceEventType::kCommit),
              stats.completions)
        << SchedulerKindName(kind);
    const SerializabilityResult result = CheckTraceSerializable(events);
    EXPECT_TRUE(result.serializable)
        << SchedulerKindName(kind) << ": " << result.ToString();
  }
}

TEST(TraceOracleTest, SummaryReconcilesWithRunStats) {
  SimConfig c = TracedConfig(SchedulerKind::kLow);
  c.workload.arrival_rate_tps = 1.2;
  c.workload.max_arrivals = 30;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  ASSERT_GT(stats.completions, 0u);
  ASSERT_EQ(m.trace().dropped(), 0u);

  const TraceSummary summary = SummarizeTrace(m.trace().Snapshot());
  EXPECT_EQ(summary.arrived, stats.arrivals);
  EXPECT_EQ(summary.committed, stats.completions);
  ASSERT_EQ(summary.txns.size(), stats.completions);
  // The trace-derived mean response matches the collector's (both are
  // arrival -> commit over the same committed set).
  EXPECT_NEAR(summary.mean_response_s, stats.mean_response_s, 1e-6);
  // The decomposition partitions the response time.
  for (const TxnBreakdown& b : summary.txns) {
    EXPECT_NEAR(b.admission_wait_s + b.lock_wait_s + b.execution_s +
                    b.other_s,
                b.response_s, 1e-9)
        << "txn " << b.txn;
    EXPECT_GE(b.lock_wait_s, 0.0);
    EXPECT_GE(b.execution_s, 0.0);
  }
  // At this contention level LOW must actually wait on locks somewhere.
  EXPECT_GT(summary.mean_lock_wait_s, 0.0);
  EXPECT_GT(summary.mean_execution_s, 0.0);
}

TEST(TraceOracleTest, RunStatsCountersIncludeTraceAndSchedulerCounts) {
  Machine m(TracedConfig(SchedulerKind::kLow), Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : stats.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "counter '" << name << "' not registered";
    return 0;
  };
  EXPECT_EQ(counter("trace.commit"), stats.completions);
  EXPECT_EQ(counter("trace.arrive"), stats.arrivals);
  // The scheduler exported its decision counters into the same registry.
  counter("low.k_rejections");
  counter("low.deadlock_delays");
  // The legacy fields mirror the registry.
  EXPECT_EQ(counter("blocked"), stats.blocked);
}

TEST(TraceOracleTest, TracingDisabledLeavesNoTraceCounters) {
  SimConfig c = TracedConfig(SchedulerKind::kLow);
  c.run.trace_enabled = false;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  EXPECT_EQ(m.trace().total_recorded(), 0u);
  for (const auto& [name, value] : stats.counters) {
    EXPECT_NE(name.rfind("trace.", 0), 0u) << name;
  }
}

}  // namespace
}  // namespace wtpgsched
