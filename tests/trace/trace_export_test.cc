#include "trace/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "trace/trace_reader.h"

namespace wtpgsched {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

// Representative events covering every payload combination the schema
// defines (see TraceEvent and the Uses* tables in trace_export.cc).
std::vector<TraceEvent> SampleEvents() {
  return {
      {.time = 0, .type = TraceEventType::kArrive, .txn = 1, .arg = 4},
      {.time = 5, .type = TraceEventType::kAdmit, .txn = 1},
      {.time = 6,
       .type = TraceEventType::kLockRequest,
       .txn = 1,
       .file = 3,
       .step = 0},
      {.time = 7,
       .type = TraceEventType::kLockGrant,
       .txn = 1,
       .file = 3,
       .mode = LockMode::kExclusive},
      {.time = 8,
       .type = TraceEventType::kStepDispatch,
       .txn = 1,
       .file = 3,
       .step = 0},
      {.time = 9,
       .type = TraceEventType::kScanStart,
       .txn = 1,
       .file = 3,
       .node = 2,
       .value = 7.5},
      {.time = 20,
       .type = TraceEventType::kScanEnd,
       .txn = 1,
       .file = 3,
       .node = 2},
      {.time = 21, .type = TraceEventType::kStepReturn, .txn = 1, .step = 0},
      {.time = 21,
       .type = TraceEventType::kDataAccess,
       .txn = 1,
       .incarnation = 1,
       .file = 3,
       .mode = LockMode::kShared},
      {.time = 30,
       .type = TraceEventType::kAbort,
       .txn = 2,
       .incarnation = 1,
       .arg = kAbortDeadlockVictim},
      {.time = 31, .type = TraceEventType::kRestartScheduled, .txn = 2},
      {.time = 40,
       .type = TraceEventType::kLowEval,
       .txn = 1,
       .file = 3,
       .arg = 2,
       .value = 12.5},
      {.time = 41, .type = TraceEventType::kLowDeadlock, .txn = 1, .file = 3},
      // A competitor whose grant would deadlock: E(p) is infinite, and the
      // JSONL encoding must round-trip it.
      {.time = 41,
       .type = TraceEventType::kLowEval,
       .txn = 2,
       .file = 3,
       .arg = -1,
       .value = std::numeric_limits<double>::infinity()},
      {.time = 42,
       .type = TraceEventType::kGowChainTest,
       .txn = 3,
       .arg = 1,
       .value = 2.0},
      {.time = 43,
       .type = TraceEventType::kGowOrientation,
       .txn = 3,
       .file = 5,
       .arg = kGowDelaySuboptimal,
       .value = 10.0,
       .value2 = 14.0},
      {.time = 44,
       .type = TraceEventType::kC2plPredict,
       .txn = 4,
       .file = 6,
       .arg = 1},
      {.time = 45,
       .type = TraceEventType::kOptValidation,
       .txn = 5,
       .incarnation = 2,
       .arg = 0},
      {.time = 50, .type = TraceEventType::kCommit, .txn = 1,
       .incarnation = 1},
  };
}

TEST(TraceExportTest, EventJsonRoundTripsForEveryPayloadShape) {
  for (const TraceEvent& e : SampleEvents()) {
    const std::string json = EventToJson(e);
    StatusOr<TraceEvent> parsed = ParseEventJson(json);
    ASSERT_TRUE(parsed.ok()) << json << ": " << parsed.status().ToString();
    // Serialization is canonical (fixed key order, type-dependent field
    // set), so re-serializing the parsed event must reproduce the line.
    EXPECT_EQ(EventToJson(*parsed), json);
  }
}

TEST(TraceExportTest, EventJsonOmitsUnsetFields) {
  const TraceEvent e{.time = 3, .type = TraceEventType::kArrive, .txn = 9};
  const std::string json = EventToJson(e);
  EXPECT_EQ(json.find("file"), std::string::npos);
  EXPECT_EQ(json.find("node"), std::string::npos);
  EXPECT_EQ(json.find("step"), std::string::npos);
  EXPECT_EQ(json.find("mode"), std::string::npos);
  EXPECT_NE(json.find("\"txn\":9"), std::string::npos);
}

TEST(TraceExportTest, JsonlWriteReadRoundTrip) {
  const std::string path = TempPath("roundtrip_trace.jsonl");
  const std::vector<TraceEvent> events = SampleEvents();
  TraceMeta meta;
  meta.scheduler = "LOW";
  meta.num_nodes = 8;
  meta.num_files = 16;
  meta.dd = 2;
  meta.seed = 42;
  const std::vector<std::pair<std::string, uint64_t>> counters = {
      {"restarts", 1}, {"trace.commit", 1}};
  ASSERT_TRUE(WriteJsonlTrace(events, meta, counters, 7, path).ok());

  ParsedTrace parsed;
  Status s = ReadJsonlTrace(path, &parsed);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(parsed.meta.scheduler, "LOW");
  EXPECT_EQ(parsed.meta.num_nodes, 8);
  EXPECT_EQ(parsed.meta.num_files, 16);
  EXPECT_EQ(parsed.meta.dd, 2);
  EXPECT_EQ(parsed.meta.seed, 42u);
  EXPECT_TRUE(parsed.footer_seen);
  EXPECT_EQ(parsed.dropped, 7u);
  ASSERT_EQ(parsed.events.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(EventToJson(parsed.events[i]), EventToJson(events[i])) << i;
  }
  std::remove(path.c_str());
}

TEST(TraceExportTest, MissingFileIsNotFound) {
  ParsedTrace parsed;
  EXPECT_EQ(ReadJsonlTrace(TempPath("no_such_trace.jsonl"), &parsed).code(),
            StatusCode::kNotFound);
}

TEST(TraceExportTest, WrongSchemaIsRejected) {
  const std::string path = TempPath("bad_schema.jsonl");
  WriteFile(path, "{\"schema\":\"wtpg-trace/999\"}\n");
  ParsedTrace parsed;
  EXPECT_FALSE(ReadJsonlTrace(path, &parsed).ok());
  std::remove(path.c_str());
}

TEST(TraceExportTest, CorruptLinesAreErrors) {
  const std::string header =
      std::string("{\"schema\":\"") + kTraceSchemaVersion + "\"}\n";
  struct Case {
    const char* name;
    const char* line;
  };
  const Case cases[] = {
      {"unknown type", "{\"t\":1,\"type\":\"warp_drive\"}"},
      {"unknown key", "{\"t\":1,\"type\":\"arrive\",\"zz\":1}"},
      {"missing type", "{\"t\":1,\"txn\":2}"},
      {"bad mode", "{\"t\":1,\"type\":\"lock_grant\",\"mode\":\"Q\"}"},
      {"not an object", "garbage"},
  };
  for (const Case& c : cases) {
    const std::string path = TempPath("corrupt_line.jsonl");
    WriteFile(path, header + c.line + "\n");
    ParsedTrace parsed;
    EXPECT_FALSE(ReadJsonlTrace(path, &parsed).ok()) << c.name;
    std::remove(path.c_str());
  }
}

TEST(TraceExportTest, TruncatedTraceHasNoFooter) {
  const std::string path = TempPath("truncated_trace.jsonl");
  WriteFile(path, std::string("{\"schema\":\"") + kTraceSchemaVersion +
                      "\"}\n{\"t\":1,\"type\":\"arrive\",\"txn\":1}\n");
  ParsedTrace parsed;
  ASSERT_TRUE(ReadJsonlTrace(path, &parsed).ok());
  EXPECT_FALSE(parsed.footer_seen);
  EXPECT_EQ(parsed.events.size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceExportTest, ChromeTraceIsBalancedJson) {
  const std::string path = TempPath("chrome_trace.json");
  TraceMeta meta;
  meta.scheduler = "LOW";
  meta.num_nodes = 2;
  ASSERT_TRUE(WriteChromeTrace(SampleEvents(), meta, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  // Structural sanity: brace/bracket balance and the tracks we promised.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("DPN 0"), std::string::npos);   // DPN track names.
  EXPECT_NE(content.find("\"T1\""), std::string::npos);  // Txn track names.
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);  // Slices.
  EXPECT_NE(content.find("\"ph\":\"i\""), std::string::npos);  // Instants.
  EXPECT_NE(content.find("\"commit\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wtpgsched
