#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/counters.h"

namespace wtpgsched {
namespace {

TEST(CounterMergeTest, MergeAddsAndRegistersInOrder) {
  CounterRegistry a;
  a.Counter("blocked") += 3;
  a.Counter("low.deadlock_delays") += 1;

  CounterRegistry b;
  b.Counter("blocked") += 4;
  b.Counter("trace.commit") += 9;

  a.Merge(b.Entries());
  EXPECT_EQ(a.Get("blocked"), 7u);
  EXPECT_EQ(a.Get("low.deadlock_delays"), 1u);
  EXPECT_EQ(a.Get("trace.commit"), 9u);

  // Existing names keep their slot; new names append in the merged
  // snapshot's order — the property the order-stable aggregate reduction
  // depends on.
  const auto entries = a.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "blocked");
  EXPECT_EQ(entries[1].first, "low.deadlock_delays");
  EXPECT_EQ(entries[2].first, "trace.commit");
}

TEST(CounterMergeTest, MergeIntoEmptyCopies) {
  CounterRegistry src;
  src.Counter("x") += 2;
  src.Counter("y") += 5;
  CounterRegistry dst;
  dst.Merge(src.Entries());
  EXPECT_EQ(dst.Entries(), src.Entries());
}

TEST(CounterMergeTest, ConcurrentRegistriesDoNotBleed) {
  // Two registries incremented from concurrent threads must end up with
  // exactly their own counts — the per-run-registry design means there is
  // no shared state to race on.
  constexpr int kIters = 20'000;
  CounterRegistry left;
  CounterRegistry right;
  std::thread t1([&left] {
    uint64_t& c = left.Counter("hits");
    for (int i = 0; i < kIters; ++i) ++c;
    left.Counter("left_only") += 1;
  });
  std::thread t2([&right] {
    uint64_t& c = right.Counter("hits");
    for (int i = 0; i < 2 * kIters; ++i) ++c;
    right.Counter("right_only") += 1;
  });
  t1.join();
  t2.join();
  EXPECT_EQ(left.Get("hits"), static_cast<uint64_t>(kIters));
  EXPECT_EQ(right.Get("hits"), static_cast<uint64_t>(2 * kIters));
  EXPECT_EQ(left.Get("right_only"), 0u);
  EXPECT_EQ(right.Get("left_only"), 0u);

  // Merging afterwards (what the aggregate reduction does) sums cleanly.
  CounterRegistry total;
  total.Merge(left.Entries());
  total.Merge(right.Entries());
  EXPECT_EQ(total.Get("hits"), static_cast<uint64_t>(3 * kIters));
  EXPECT_EQ(total.size(), 3u);
}

}  // namespace
}  // namespace wtpgsched
