#include "metrics/stats.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

Transaction MakeTxn(TxnId id, SimTime arrival) {
  Transaction t(id, {{0, LockMode::kShared, LockMode::kShared, 1.0, 1.0}});
  t.arrival_time = arrival;
  return t;
}

TEST(StatsCollectorTest, CountsArrivalsAndEvents) {
  StatsCollector stats(0, SecondsToTime(100));
  stats.RecordArrival();
  stats.RecordArrival();
  stats.RecordBlocked();
  stats.RecordDelayed();
  stats.RecordDelayed();
  stats.RecordStartRejection();
  stats.RecordRestart();
  const RunStats r = stats.Finalize(0.5, 0.4, 0.6, 1);
  EXPECT_EQ(r.arrivals, 2u);
  EXPECT_EQ(r.blocked, 1u);
  EXPECT_EQ(r.delayed, 2u);
  EXPECT_EQ(r.start_rejections, 1u);
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_EQ(r.in_flight_at_end, 1u);
  EXPECT_DOUBLE_EQ(r.cn_utilization, 0.5);
}

TEST(StatsCollectorTest, ResponseTimeFromArrivalToCompletion) {
  StatsCollector stats(0, SecondsToTime(100));
  Transaction t = MakeTxn(1, SecondsToTime(10));
  stats.RecordCompletion(t, SecondsToTime(25));
  const RunStats r = stats.Finalize(0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(r.mean_response_s, 15.0);
  EXPECT_EQ(r.completions, 1u);
  EXPECT_EQ(r.completions_measured, 1u);
}

TEST(StatsCollectorTest, ThroughputOverWindow) {
  StatsCollector stats(0, SecondsToTime(50));
  for (int i = 0; i < 10; ++i) {
    Transaction t = MakeTxn(i, 0);
    stats.RecordCompletion(t, SecondsToTime(i + 1));
  }
  const RunStats r = stats.Finalize(0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(r.throughput_tps, 0.2);  // 10 / 50 s.
}

TEST(StatsCollectorTest, WarmupExcludesEarlyCompletions) {
  StatsCollector stats(SecondsToTime(20), SecondsToTime(120));
  Transaction early = MakeTxn(1, SecondsToTime(1));
  Transaction late = MakeTxn(2, SecondsToTime(30));
  stats.RecordCompletion(early, SecondsToTime(10));  // Before warmup.
  stats.RecordCompletion(late, SecondsToTime(40));
  const RunStats r = stats.Finalize(0, 0, 0, 0);
  EXPECT_EQ(r.completions, 2u);
  EXPECT_EQ(r.completions_measured, 1u);
  EXPECT_DOUBLE_EQ(r.mean_response_s, 10.0);  // Only the late one.
  EXPECT_DOUBLE_EQ(r.throughput_tps, 0.01);   // 1 / (120 - 20) s.
}

TEST(StatsCollectorTest, PercentilesFromWindow) {
  StatsCollector stats(0, SecondsToTime(1000));
  for (int i = 1; i <= 100; ++i) {
    Transaction t = MakeTxn(i, 0);
    stats.RecordCompletion(t, SecondsToTime(i));
  }
  const RunStats r = stats.Finalize(0, 0, 0, 0);
  EXPECT_NEAR(r.median_response_s, 50.5, 0.1);
  EXPECT_NEAR(r.p95_response_s, 95.0, 0.5);
}

TEST(StatsCollectorTest, EmptyWindowYieldsZeros) {
  StatsCollector stats(0, SecondsToTime(10));
  const RunStats r = stats.Finalize(0, 0, 0, 0);
  EXPECT_EQ(r.completions_measured, 0u);
  EXPECT_DOUBLE_EQ(r.mean_response_s, 0.0);
  EXPECT_DOUBLE_EQ(r.throughput_tps, 0.0);
  EXPECT_DOUBLE_EQ(r.sim_seconds, 10.0);
}

}  // namespace
}  // namespace wtpgsched

namespace wtpgsched {
namespace {

Transaction MakeClassTxn(TxnId id, int workload_class, SimTime arrival) {
  Transaction t(id, {{0, LockMode::kShared, LockMode::kShared, 1.0, 1.0}});
  t.workload_class = workload_class;
  t.arrival_time = arrival;
  return t;
}

TEST(StatsCollectorTest, PerClassBreakdown) {
  StatsCollector stats(0, SecondsToTime(100));
  // Class 0: responses 1 s and 3 s; class 1: response 10 s.
  Transaction a = MakeClassTxn(1, 0, 0);
  Transaction b = MakeClassTxn(2, 0, 0);
  Transaction c = MakeClassTxn(3, 1, 0);
  stats.RecordCompletion(a, SecondsToTime(1));
  stats.RecordCompletion(b, SecondsToTime(3));
  stats.RecordCompletion(c, SecondsToTime(10));
  const RunStats r = stats.Finalize(0, 0, 0, 0);
  ASSERT_EQ(r.per_class.size(), 2u);
  EXPECT_EQ(r.per_class[0].workload_class, 0);
  EXPECT_EQ(r.per_class[0].completions, 2u);
  EXPECT_DOUBLE_EQ(r.per_class[0].mean_response_s, 2.0);
  EXPECT_EQ(r.per_class[1].workload_class, 1);
  EXPECT_DOUBLE_EQ(r.per_class[1].mean_response_s, 10.0);
}

TEST(StatsCollectorTest, SinglePatternHasOneClass) {
  StatsCollector stats(0, SecondsToTime(100));
  Transaction a = MakeClassTxn(1, 0, 0);
  stats.RecordCompletion(a, SecondsToTime(5));
  const RunStats r = stats.Finalize(0, 0, 0, 0);
  ASSERT_EQ(r.per_class.size(), 1u);
  EXPECT_DOUBLE_EQ(r.per_class[0].mean_response_s, 5.0);
}

TEST(StatsCollectorTest, PerClassRespectsWarmup) {
  StatsCollector stats(SecondsToTime(50), SecondsToTime(100));
  Transaction early = MakeClassTxn(1, 0, 0);
  Transaction late = MakeClassTxn(2, 1, 0);
  stats.RecordCompletion(early, SecondsToTime(10));
  stats.RecordCompletion(late, SecondsToTime(60));
  const RunStats r = stats.Finalize(0, 0, 0, 0);
  ASSERT_EQ(r.per_class.size(), 1u);
  EXPECT_EQ(r.per_class[0].workload_class, 1);
}

}  // namespace
}  // namespace wtpgsched
