#include "metrics/timeline.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "machine/machine.h"

namespace wtpgsched {
namespace {

TEST(TimelineRecorderTest, EmptyByDefault) {
  TimelineRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(recorder.PeakInFlight(), 0u);
}

TEST(TimelineRecorderTest, RecordsAndPeaks) {
  TimelineRecorder recorder;
  recorder.Record({SecondsToTime(1), 3, 2, 1, 0.0, 5.5, 0});
  recorder.Record({SecondsToTime(2), 7, 4, 3, 1.0, 2.0, 2});
  recorder.Record({SecondsToTime(3), 5, 5, 0, 0.0, 0.0, 4});
  EXPECT_EQ(recorder.samples().size(), 3u);
  EXPECT_EQ(recorder.PeakInFlight(), 7u);
}

TEST(TimelineRecorderTest, CsvRoundTrip) {
  TimelineRecorder recorder;
  recorder.Record({SecondsToTime(1), 3, 2, 1, 0.5, 5.5, 9});
  const std::string path = testing::TempDir() + "/timeline_test.csv";
  ASSERT_TRUE(recorder.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header,
            "time_s,in_flight,active,parked,cn_queue,dpn_backlog_objects,"
            "completions");
  EXPECT_EQ(row, "1.0,3,2,1,0.5,5.50,9");
  std::remove(path.c_str());
}

TEST(MachineTimelineTest, DisabledByDefault) {
  SimConfig c;
  c.scheduler = SchedulerKind::kNodc;
  c.workload.arrival_rate_tps = 0.5;
  c.run.horizon_ms = 100'000;
  c.workload.max_arrivals = 5;
  Machine m(c, Pattern::Experiment1(16));
  m.Run();
  EXPECT_TRUE(m.timeline().empty());
}

TEST(MachineTimelineTest, SamplesAtConfiguredPeriod) {
  SimConfig c;
  c.scheduler = SchedulerKind::kNodc;
  c.workload.arrival_rate_tps = 0.5;
  c.run.horizon_ms = 100'000;
  c.run.timeline_sample_ms = 10'000;
  c.run.seed = 4;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  ASSERT_EQ(m.timeline().samples().size(), 10u);
  EXPECT_EQ(m.timeline().samples().front().time, MsToTime(10'000));
  EXPECT_EQ(m.timeline().samples().back().time, MsToTime(100'000));
  // The cumulative completion counter in the last sample matches the run.
  EXPECT_EQ(m.timeline().samples().back().completions, stats.completions);
  EXPECT_GT(m.timeline().PeakInFlight(), 0u);
}

TEST(MachineTimelineTest, ParkedReflectsContention) {
  SimConfig c;
  c.scheduler = SchedulerKind::kAsl;
  c.workload.arrival_rate_tps = 1.2;  // Saturating: admission queue builds up.
  c.run.horizon_ms = 500'000;
  c.run.timeline_sample_ms = 50'000;
  c.run.seed = 6;
  Machine m(c, Pattern::Experiment1(16));
  m.Run();
  uint64_t max_parked = 0;
  for (const auto& s : m.timeline().samples()) {
    max_parked = std::max(max_parked, s.parked);
  }
  EXPECT_GT(max_parked, 0u);
}

}  // namespace
}  // namespace wtpgsched
