#include "metrics/timeline.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "machine/machine.h"
#include "telemetry/gauge_registry.h"

namespace wtpgsched {
namespace {

// Builds a store with exactly the six legacy columns so the view tests can
// append rows directly (the production path goes through Telemetry).
TelemetryStore LegacyStore() {
  return TelemetryStore(
      {TimelineRecorder::kInFlightGauge, TimelineRecorder::kActiveGauge,
       TimelineRecorder::kParkedGauge, TimelineRecorder::kCnQueueGauge,
       TimelineRecorder::kBacklogGauge, TimelineRecorder::kCompletionsGauge},
      /*capacity=*/64);
}

TEST(TimelineRecorderTest, EmptyByDefault) {
  TimelineRecorder recorder;
  EXPECT_FALSE(recorder.attached());
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(recorder.PeakInFlight(), 0u);
}

TEST(TimelineRecorderTest, ViewsStoreRowsAndPeaks) {
  TelemetryStore store = LegacyStore();
  store.Append(SecondsToTime(1), {3, 2, 1, 0.0, 5.5, 0});
  store.Append(SecondsToTime(2), {7, 4, 3, 1.0, 2.0, 2});
  store.Append(SecondsToTime(3), {5, 5, 0, 0.0, 0.0, 4});
  TimelineRecorder recorder;
  recorder.Attach(&store);
  ASSERT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.time(0), SecondsToTime(1));
  EXPECT_EQ(recorder.in_flight(1), 7u);
  EXPECT_EQ(recorder.active(1), 4u);
  EXPECT_EQ(recorder.parked(1), 3u);
  EXPECT_EQ(recorder.completions(2), 4u);
  EXPECT_EQ(recorder.PeakInFlight(), 7u);
}

TEST(TimelineRecorderTest, MissingColumnsReadZero) {
  TelemetryStore store({"machine.in_flight"}, /*capacity=*/4);
  store.Append(SecondsToTime(1), {9});
  TimelineRecorder recorder;
  recorder.Attach(&store);
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.in_flight(0), 9u);
  EXPECT_EQ(recorder.active(0), 0u);
  EXPECT_EQ(recorder.cn_queue(0), 0.0);
}

TEST(TimelineRecorderTest, CsvRoundTrip) {
  TelemetryStore store = LegacyStore();
  store.Append(SecondsToTime(1), {3, 2, 1, 0.5, 5.5, 9});
  TimelineRecorder recorder;
  recorder.Attach(&store);
  const std::string path = testing::TempDir() + "/timeline_test.csv";
  ASSERT_TRUE(recorder.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header,
            "time_s,in_flight,active,parked,cn_queue,dpn_backlog_objects,"
            "completions");
  EXPECT_EQ(row, "1.0,3,2,1,0.5,5.50,9");
  std::remove(path.c_str());
}

TEST(MachineTimelineTest, DisabledByDefault) {
  SimConfig c;
  c.scheduler = SchedulerKind::kNodc;
  c.workload.arrival_rate_tps = 0.5;
  c.run.horizon_ms = 100'000;
  c.workload.max_arrivals = 5;
  Machine m(c, Pattern::Experiment1(16));
  m.Run();
  EXPECT_FALSE(m.timeline().attached());
  EXPECT_TRUE(m.timeline().empty());
  EXPECT_EQ(m.telemetry(), nullptr);
}

TEST(MachineTimelineTest, SamplesAtConfiguredPeriod) {
  SimConfig c;
  c.scheduler = SchedulerKind::kNodc;
  c.workload.arrival_rate_tps = 0.5;
  c.run.horizon_ms = 100'000;
  c.run.timeline_sample_ms = 10'000;
  c.run.seed = 4;
  Machine m(c, Pattern::Experiment1(16));
  const RunStats stats = m.Run();
  ASSERT_EQ(m.timeline().size(), 10u);
  EXPECT_EQ(m.timeline().time(0), MsToTime(10'000));
  EXPECT_EQ(m.timeline().time(9), MsToTime(100'000));
  // The cumulative completion counter in the last sample matches the run.
  EXPECT_EQ(m.timeline().completions(9), stats.completions);
  EXPECT_GT(m.timeline().PeakInFlight(), 0u);
}

TEST(MachineTimelineTest, ParkedReflectsContention) {
  SimConfig c;
  c.scheduler = SchedulerKind::kAsl;
  c.workload.arrival_rate_tps = 1.2;  // Saturating: admission queue builds up.
  c.run.horizon_ms = 500'000;
  c.run.timeline_sample_ms = 50'000;
  c.run.seed = 6;
  Machine m(c, Pattern::Experiment1(16));
  m.Run();
  uint64_t max_parked = 0;
  for (size_t row = 0; row < m.timeline().size(); ++row) {
    max_parked = std::max(max_parked, m.timeline().parked(row));
  }
  EXPECT_GT(max_parked, 0u);
}

}  // namespace
}  // namespace wtpgsched
