#include "metrics/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/histogram.h"
#include "util/random.h"

namespace wtpgsched {
namespace {

TEST(P2QuantileTest, EmptyIsZero) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.Value(), 0.0);
}

TEST(P2QuantileTest, ExactBelowFiveSamples) {
  // Until the five markers exist, the estimate must equal the exact
  // interpolated-rank percentile — byte-for-byte with Histogram, so short
  // runs report identical numbers in sketch and exact mode.
  const std::vector<double> stream = {7.0, 1.0, 9.0, 4.0};
  for (double quantile : {0.5, 0.95, 0.99}) {
    P2Quantile q(quantile);
    Histogram h;
    for (size_t n = 0; n < stream.size(); ++n) {
      q.Add(stream[n]);
      h.Add(stream[n]);
      EXPECT_EQ(q.Value(), h.Percentile(100.0 * quantile))
          << "quantile=" << quantile << " n=" << n + 1;
    }
  }
}

TEST(P2QuantileTest, MedianOfLinearRamp) {
  P2Quantile q(0.5);
  // 1..1000 in a deterministic shuffle.
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(static_cast<double>(i));
  Rng rng(11);
  for (size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1],
              values[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
  }
  for (double v : values) q.Add(v);
  EXPECT_NEAR(q.Value(), 500.5, 25.0);  // Within 5% of the exact median.
}

TEST(QuantileSketchTest, MomentsMatchHistogramExactly) {
  // count/sum/min/max/mean are exact (not sketched); only the percentiles
  // are approximations.
  QuantileSketch sketch;
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.Exponential(10.0);
    sketch.Add(v);
    h.Add(v);
  }
  EXPECT_EQ(sketch.count(), h.count());
  EXPECT_DOUBLE_EQ(sketch.sum(), h.sum());
  EXPECT_DOUBLE_EQ(sketch.min(), h.min());
  EXPECT_DOUBLE_EQ(sketch.max(), h.max());
  EXPECT_DOUBLE_EQ(sketch.Mean(), h.Mean());
}

TEST(QuantileSketchTest, WelfordStdDevMatchesTwoPass) {
  QuantileSketch sketch;
  Histogram h;
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.Normal(50.0, 7.0);
    sketch.Add(v);
    h.Add(v);
  }
  EXPECT_NEAR(sketch.StdDev(), h.StdDev(), 1e-9 * h.StdDev());
}

TEST(QuantileSketchTest, WelfordStdDevStableAtLargeOffset) {
  QuantileSketch sketch;
  const double offset = 1e9;
  for (double v : {offset - 1.0, offset, offset + 1.0}) sketch.Add(v);
  EXPECT_NEAR(sketch.StdDev(), std::sqrt(2.0 / 3.0), 1e-9);
}

// The documented accuracy contract of the sketch, pinned differentially
// against the exact oracle across seeds and distributions: p50/p95 within
// 10%, p99 within 20% on heavy-tailed streams of a few thousand samples.
// (These bounds are empirical for P2 on smooth unimodal distributions —
// exactly the response-time shapes the simulator produces.)
TEST(QuantileSketchTest, DifferentialVsExactHistogram) {
  for (uint64_t seed : {1u, 7u, 23u, 101u}) {
    for (int dist = 0; dist < 3; ++dist) {
      QuantileSketch sketch;
      Histogram h;
      Rng rng(seed * 1000 + static_cast<uint64_t>(dist));
      for (int i = 0; i < 8000; ++i) {
        double v = 0.0;
        switch (dist) {
          case 0: v = rng.Exponential(30.0); break;            // M/M/1-ish RT
          case 1: v = rng.UniformReal(5.0, 500.0); break;      // flat
          case 2: v = std::exp(rng.Normal(3.0, 0.8)); break;   // lognormal
        }
        sketch.Add(v);
        h.Add(v);
      }
      const double p50_exact = h.Percentile(50.0);
      const double p95_exact = h.Percentile(95.0);
      const double p99_exact = h.Percentile(99.0);
      EXPECT_NEAR(sketch.P50(), p50_exact, 0.10 * p50_exact)
          << "seed=" << seed << " dist=" << dist;
      EXPECT_NEAR(sketch.P95(), p95_exact, 0.10 * p95_exact)
          << "seed=" << seed << " dist=" << dist;
      EXPECT_NEAR(sketch.P99(), p99_exact, 0.20 * p99_exact)
          << "seed=" << seed << " dist=" << dist;
    }
  }
}

TEST(QuantileSketchTest, ConstantStream) {
  QuantileSketch sketch;
  for (int i = 0; i < 100; ++i) sketch.Add(42.0);
  EXPECT_DOUBLE_EQ(sketch.P50(), 42.0);
  EXPECT_DOUBLE_EQ(sketch.P99(), 42.0);
  EXPECT_DOUBLE_EQ(sketch.StdDev(), 0.0);
}

}  // namespace
}  // namespace wtpgsched
