// Fuzz-ish robustness test: the pattern parser must never crash and must
// either return a valid pattern or a clean InvalidArgument, for random
// mutations of valid pattern strings and random byte soup.

#include <string>

#include <gtest/gtest.h>

#include "util/random.h"
#include "workload/pattern_parser.h"

namespace wtpgsched {
namespace {

const char* const kSeedStrings[] = {
    "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)",
    "x(A:1) -> w(B:2.5)",
    "B in [0,7]; F1,F2 in [8,15]: r(B:5) -> w(F1:1) -> w(F2:1)",
    "w(only:0.5)",
};

const char kAlphabet[] =
    "rwx()[]:;,->0123456789.ABF _abcdefgh";

TEST(PatternParserFuzzTest, MutatedInputsNeverCrash) {
  Rng rng(2024);
  int valid = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::string text =
        kSeedStrings[rng.UniformInt(0, std::size(kSeedStrings) - 1)];
    const int mutations = static_cast<int>(rng.UniformInt(0, 6));
    for (int m = 0; m < mutations; ++m) {
      if (text.empty()) break;
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, text.size() - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:  // Replace.
          text[pos] = kAlphabet[rng.UniformInt(0, std::size(kAlphabet) - 2)];
          break;
        case 1:  // Delete.
          text.erase(pos, 1);
          break;
        default:  // Insert.
          text.insert(pos, 1,
                      kAlphabet[rng.UniformInt(0, std::size(kAlphabet) - 2)]);
          break;
      }
    }
    StatusOr<Pattern> result = ParsePattern(text, 16);
    if (result.ok()) {
      ++valid;
      // A pattern the parser accepts must instantiate without dying.
      Rng inst_rng(trial);
      const auto steps = result->Instantiate(&inst_rng, 2, ErrorModel{0.5});
      EXPECT_FALSE(steps.empty());
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // Unmutated seeds parse, so some trials must succeed.
  EXPECT_GT(valid, 500);
}

TEST(PatternParserFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(77);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < len; ++i) {
      text += kAlphabet[rng.UniformInt(0, std::size(kAlphabet) - 2)];
    }
    StatusOr<Pattern> result = ParsePattern(text, 8);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace wtpgsched
