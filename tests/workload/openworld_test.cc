#include "workload/openworld.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "workload/pattern.h"
#include "workload/workload.h"

namespace wtpgsched {
namespace {

TEST(OpenWorldMixTest, TwoClassesWithDeclaredShapes) {
  OpenWorldSpec spec;
  spec.num_files = 1000;
  const std::vector<WeightedPattern> mix = MakeOpenWorldMix(spec);
  ASSERT_EQ(mix.size(), 2u);

  // Class 0: interactive r -> w, priority 1, 90% share.
  EXPECT_EQ(mix[0].pattern.steps().size(), 2u);
  EXPECT_EQ(mix[0].priority, 1);
  EXPECT_DOUBLE_EQ(mix[0].weight, 0.9);
  // Class 1: batch 3r + w, priority 0, 10% share.
  EXPECT_EQ(mix[1].pattern.steps().size(), 4u);
  EXPECT_EQ(mix[1].priority, 0);
  EXPECT_DOUBLE_EQ(mix[1].weight, 0.1);
  // Batch footprint is an order of magnitude heavier than interactive.
  EXPECT_GT(mix[1].pattern.TotalCost(), 10.0 * mix[0].pattern.TotalCost());
  // Shared universe.
  EXPECT_EQ(mix[0].pattern.MaxFileId(), 999);
  EXPECT_EQ(mix[1].pattern.MaxFileId(), 999);
}

TEST(OpenWorldMixTest, SkewConcentratesOnHotHead) {
  OpenWorldSpec spec;
  spec.num_files = 100'000;
  spec.zipf_theta = 0.9;
  const std::vector<WeightedPattern> mix = MakeOpenWorldMix(spec);
  Rng rng(21);
  std::map<FileId, int> hits;
  int total = 0;
  for (int i = 0; i < 2000; ++i) {
    for (const StepSpec& step :
         mix[0].pattern.Instantiate(&rng, 1, ErrorModel{})) {
      hits[step.file]++;
      total++;
    }
  }
  // Under uniform draws the hottest 100 of 100k files would see ~0.1% of
  // accesses; Zipf(0.9) concentrates a double-digit share there.
  int head_hits = 0;
  for (const auto& [file, count] : hits) {
    if (file < 100) head_hits += count;
  }
  EXPECT_GT(static_cast<double>(head_hits) / total, 0.10);
}

TEST(PatternWithZipfTest, ZeroThetaIsByteIdenticalToUniform) {
  const Pattern base = Pattern::Experiment1(16);
  const Pattern overlay = base.WithZipf(0.0);
  Rng a(33), b(33);
  for (int i = 0; i < 300; ++i) {
    const auto sa = base.Instantiate(&a, 1, ErrorModel{});
    const auto sb = overlay.Instantiate(&b, 1, ErrorModel{});
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t s = 0; s < sa.size(); ++s) {
      EXPECT_EQ(sa[s].file, sb[s].file);
      EXPECT_EQ(sa[s].declared_cost, sb[s].declared_cost);
    }
  }
}

TEST(PatternWithZipfTest, SkewedDrawsRespectPoolAndDistinctness) {
  const Pattern skewed = Pattern::Experiment1(16).WithZipf(1.2);
  Rng rng(44);
  for (int i = 0; i < 500; ++i) {
    const auto steps = skewed.Instantiate(&rng, 1, ErrorModel{});
    ASSERT_EQ(steps.size(), 4u);
    for (const StepSpec& step : steps) {
      EXPECT_GE(step.file, 0);
      EXPECT_LT(step.file, 16);
    }
    // Experiment 1 requires F1 != F2 (distinct_within_pool) — the Zipf
    // overlay must not break the rejection loop even when both draws
    // cluster on the hot head.
    EXPECT_NE(steps[0].file, steps[1].file);
  }
}

TEST(PatternWithZipfTest, ThetaRecordedOnAllVars) {
  const Pattern skewed = Pattern::Experiment2().WithZipf(0.7);
  for (const FileVarSpec& var : skewed.vars()) {
    EXPECT_DOUBLE_EQ(var.zipf_theta, 0.7);
  }
  EXPECT_EQ(skewed.name(), Pattern::Experiment2().name());
}

}  // namespace
}  // namespace wtpgsched
