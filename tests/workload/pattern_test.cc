#include "workload/pattern.h"

#include <set>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

constexpr LockMode kS = LockMode::kShared;
constexpr LockMode kX = LockMode::kExclusive;

TEST(PatternTest, Experiment1Shape) {
  const Pattern p = Pattern::Experiment1(16);
  EXPECT_EQ(p.name(), "Pattern1");
  ASSERT_EQ(p.steps().size(), 4u);
  EXPECT_DOUBLE_EQ(p.TotalCost(), 7.2);
  EXPECT_EQ(p.MaxFileId(), 15);
  // X-locks requested at the first two (reading) steps.
  EXPECT_FALSE(p.steps()[0].is_write);
  EXPECT_EQ(p.steps()[0].request_mode, kX);
  EXPECT_FALSE(p.steps()[1].is_write);
  EXPECT_EQ(p.steps()[1].request_mode, kX);
  EXPECT_TRUE(p.steps()[2].is_write);
  EXPECT_TRUE(p.steps()[3].is_write);
}

TEST(PatternTest, Experiment2Shape) {
  const Pattern p = Pattern::Experiment2();
  ASSERT_EQ(p.steps().size(), 3u);
  EXPECT_DOUBLE_EQ(p.TotalCost(), 7.0);
  EXPECT_EQ(p.MaxFileId(), 15);
  EXPECT_EQ(p.steps()[0].request_mode, kS);  // Read-only file: S lock.
}

TEST(PatternTest, InstantiateExp1DistinctFiles) {
  const Pattern p = Pattern::Experiment1(16);
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto steps = p.Instantiate(&rng, 1, ErrorModel{0.0});
    ASSERT_EQ(steps.size(), 4u);
    EXPECT_NE(steps[0].file, steps[1].file);  // F1 != F2.
    EXPECT_EQ(steps[0].file, steps[2].file);  // w(F1) hits F1.
    EXPECT_EQ(steps[1].file, steps[3].file);  // w(F2) hits F2.
    for (const StepSpec& s : steps) {
      EXPECT_GE(s.file, 0);
      EXPECT_LT(s.file, 16);
    }
  }
}

TEST(PatternTest, InstantiateExp1Costs) {
  const Pattern p = Pattern::Experiment1(16);
  Rng rng(2);
  const auto steps = p.Instantiate(&rng, 1, ErrorModel{0.0});
  EXPECT_DOUBLE_EQ(steps[0].actual_cost, 1.0);
  EXPECT_DOUBLE_EQ(steps[1].actual_cost, 5.0);
  EXPECT_DOUBLE_EQ(steps[2].actual_cost, 0.2);
  EXPECT_DOUBLE_EQ(steps[3].actual_cost, 1.0);
  // With sigma = 0 and DD = 1 the declarations are exact.
  for (const StepSpec& s : steps) {
    EXPECT_DOUBLE_EQ(s.declared_cost, s.actual_cost);
  }
}

TEST(PatternTest, DeclaredCostDividedByDd) {
  const Pattern p = Pattern::Experiment1(16);
  Rng rng(3);
  const auto steps = p.Instantiate(&rng, 4, ErrorModel{0.0});
  // Actual (per-step total) cost unchanged; declaration is C/DD.
  EXPECT_DOUBLE_EQ(steps[1].actual_cost, 5.0);
  EXPECT_DOUBLE_EQ(steps[1].declared_cost, 1.25);
}

TEST(PatternTest, InstantiateExp2Pools) {
  const Pattern p = Pattern::Experiment2();
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const auto steps = p.Instantiate(&rng, 1, ErrorModel{0.0});
    ASSERT_EQ(steps.size(), 3u);
    EXPECT_LT(steps[0].file, 8);   // Read-only pool.
    EXPECT_GE(steps[1].file, 8);   // Hot pool.
    EXPECT_GE(steps[2].file, 8);
    EXPECT_NE(steps[1].file, steps[2].file);  // Hot files distinct.
    EXPECT_EQ(steps[0].access, kS);
    EXPECT_EQ(steps[1].access, kX);
  }
}

TEST(PatternTest, FilesCoverPool) {
  const Pattern p = Pattern::Experiment1(8);
  Rng rng(5);
  std::set<FileId> seen;
  for (int trial = 0; trial < 500; ++trial) {
    for (const StepSpec& s : p.Instantiate(&rng, 1, ErrorModel{0.0})) {
      seen.insert(s.file);
    }
  }
  EXPECT_EQ(seen.size(), 8u);  // All files eventually drawn.
}

TEST(PatternTest, ErrorModelPerturbsDeclarations) {
  const Pattern p = Pattern::Experiment1(16);
  Rng rng(6);
  int differing = 0;
  for (int trial = 0; trial < 100; ++trial) {
    for (const StepSpec& s : p.Instantiate(&rng, 1, ErrorModel{1.0})) {
      EXPECT_GE(s.declared_cost, 0.0);  // Clamped at 0 when x <= -1.
      if (s.declared_cost != s.actual_cost) ++differing;
    }
  }
  EXPECT_GT(differing, 300);  // Nearly all perturbed at sigma = 1.
}

TEST(PatternTest, ErrorModelMeanRoughlyUnbiased) {
  const Pattern p = Pattern::Experiment1(16);
  Rng rng(7);
  double sum = 0.0;
  const int trials = 3000;
  for (int trial = 0; trial < trials; ++trial) {
    const auto steps = p.Instantiate(&rng, 1, ErrorModel{0.5});
    for (const StepSpec& s : steps) sum += s.declared_cost;
  }
  // E[C0 * (1 + x)] = C0 for small sigma (clamping is rare at 0.5).
  EXPECT_NEAR(sum / trials, 7.2, 0.25);
}

TEST(PatternTest, LargeSigmaProducesZeroDeclarations) {
  const Pattern p = Pattern::Experiment1(16);
  Rng rng(8);
  int zeros = 0;
  for (int trial = 0; trial < 200; ++trial) {
    for (const StepSpec& s : p.Instantiate(&rng, 1, ErrorModel{10.0})) {
      if (s.declared_cost == 0.0) ++zeros;
    }
  }
  // P(x <= -1) with sigma=10 is ~0.46 per step.
  EXPECT_GT(zeros, 200);
}

TEST(PatternTest, CustomPatternRoundTrip) {
  Pattern p("custom", {{0, 3, false}},
            {{/*is_write=*/true, kX, 0, 2.5}});
  Rng rng(9);
  const auto steps = p.Instantiate(&rng, 2, ErrorModel{0.0});
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_DOUBLE_EQ(steps[0].actual_cost, 2.5);
  EXPECT_DOUBLE_EQ(steps[0].declared_cost, 1.25);
  EXPECT_EQ(steps[0].access, kX);
}

}  // namespace
}  // namespace wtpgsched
