#include "workload/workload.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(WorkloadTest, SequentialIds) {
  WorkloadGenerator gen(Pattern::Experiment1(16), 1.0, 1, ErrorModel{}, 1);
  EXPECT_EQ(gen.NextTransaction()->id(), 1);
  EXPECT_EQ(gen.NextTransaction()->id(), 2);
  EXPECT_EQ(gen.transactions_created(), 2);
}

TEST(WorkloadTest, InterarrivalMeanMatchesRate) {
  WorkloadGenerator gen(Pattern::Experiment1(16), 2.0, 1, ErrorModel{}, 7);
  double sum_s = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum_s += TimeToSeconds(gen.NextInterarrival());
  EXPECT_NEAR(sum_s / n, 0.5, 0.02);  // 2 TPS -> 0.5 s mean gap.
}

TEST(WorkloadTest, InterarrivalsNonNegative) {
  WorkloadGenerator gen(Pattern::Experiment1(16), 1.4, 1, ErrorModel{}, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(gen.NextInterarrival(), 0);
}

TEST(WorkloadTest, SameSeedSameWorkload) {
  WorkloadGenerator a(Pattern::Experiment1(16), 1.0, 1, ErrorModel{}, 5);
  WorkloadGenerator b(Pattern::Experiment1(16), 1.0, 1, ErrorModel{}, 5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextInterarrival(), b.NextInterarrival());
    auto ta = a.NextTransaction();
    auto tb = b.NextTransaction();
    ASSERT_EQ(ta->num_steps(), tb->num_steps());
    for (int s = 0; s < ta->num_steps(); ++s) {
      EXPECT_EQ(ta->step(s).file, tb->step(s).file);
      EXPECT_EQ(ta->step(s).declared_cost, tb->step(s).declared_cost);
    }
  }
}

TEST(WorkloadTest, ArrivalStreamIndependentOfPatternDraws) {
  // Common-random-numbers property: consuming a different number of pattern
  // draws must not perturb arrival times.
  WorkloadGenerator a(Pattern::Experiment1(16), 1.0, 1, ErrorModel{}, 5);
  WorkloadGenerator b(Pattern::Experiment1(16), 1.0, 1, ErrorModel{}, 5);
  a.NextTransaction();
  a.NextTransaction();
  a.NextTransaction();
  EXPECT_EQ(a.NextInterarrival(), b.NextInterarrival());
}

TEST(WorkloadTest, DdPropagatesToDeclarations) {
  WorkloadGenerator gen(Pattern::Experiment1(16), 1.0, 8, ErrorModel{}, 1);
  auto txn = gen.NextTransaction();
  EXPECT_DOUBLE_EQ(txn->step(1).declared_cost, 5.0 / 8.0);
  EXPECT_DOUBLE_EQ(txn->step(1).actual_cost, 5.0);
}

}  // namespace
}  // namespace wtpgsched

namespace wtpgsched {
namespace {

TEST(WorkloadMixTest, SingletonMixEquivalentToPattern) {
  WorkloadGenerator single(Pattern::Experiment1(16), 1.0, 1, ErrorModel{}, 5);
  std::vector<WeightedPattern> mix;
  mix.push_back(WeightedPattern{Pattern::Experiment1(16), 1.0});
  WorkloadGenerator mixed(std::move(mix), 1.0, 1, ErrorModel{}, 5);
  for (int i = 0; i < 20; ++i) {
    auto a = single.NextTransaction();
    auto b = mixed.NextTransaction();
    ASSERT_EQ(a->num_steps(), b->num_steps());
    for (int s = 0; s < a->num_steps(); ++s) {
      EXPECT_EQ(a->step(s).file, b->step(s).file);
    }
  }
}

TEST(WorkloadMixTest, WeightsControlShares) {
  std::vector<WeightedPattern> mix;
  mix.push_back(WeightedPattern{Pattern::Experiment1(16), 3.0});  // 4 steps.
  mix.push_back(WeightedPattern{Pattern::Experiment2(), 1.0});    // 3 steps.
  WorkloadGenerator gen(std::move(mix), 1.0, 1, ErrorModel{}, 9);
  int exp1 = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (gen.NextTransaction()->num_steps() == 4) ++exp1;
  }
  EXPECT_NEAR(static_cast<double>(exp1) / n, 0.75, 0.03);
}

TEST(WorkloadMixTest, MaxFileIdOverMix) {
  std::vector<WeightedPattern> mix;
  mix.push_back(WeightedPattern{Pattern::Experiment1(8), 1.0});   // 0..7.
  mix.push_back(WeightedPattern{Pattern::Experiment2(), 1.0});    // 0..15.
  WorkloadGenerator gen(std::move(mix), 1.0, 1, ErrorModel{}, 9);
  EXPECT_EQ(gen.MaxFileId(), 15);
}

}  // namespace
}  // namespace wtpgsched

namespace wtpgsched {
namespace {

TEST(WorkloadMixTest, ClassTagsMatchMixComponent) {
  std::vector<WeightedPattern> mix;
  mix.push_back(WeightedPattern{Pattern::Experiment1(16), 1.0});  // 4 steps.
  mix.push_back(WeightedPattern{Pattern::Experiment2(), 1.0});    // 3 steps.
  WorkloadGenerator gen(std::move(mix), 1.0, 1, ErrorModel{}, 13);
  for (int i = 0; i < 200; ++i) {
    auto txn = gen.NextTransaction();
    EXPECT_EQ(txn->workload_class, txn->num_steps() == 4 ? 0 : 1);
  }
}

TEST(WorkloadMixTest, PriorityStampedFromComponent) {
  std::vector<WeightedPattern> mix;
  mix.push_back(WeightedPattern{Pattern::Experiment1(16), 1.0, /*priority=*/2});
  mix.push_back(WeightedPattern{Pattern::Experiment2(), 1.0, /*priority=*/0});
  WorkloadGenerator gen(std::move(mix), 1.0, 1, ErrorModel{}, 13);
  for (int i = 0; i < 100; ++i) {
    auto txn = gen.NextTransaction();
    EXPECT_EQ(txn->priority, txn->workload_class == 0 ? 2 : 0);
  }
}

TEST(PickByWeightTest, InteriorPicksLandInBands) {
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  EXPECT_EQ(PickByWeight(weights, 0.0), 0u);
  EXPECT_EQ(PickByWeight(weights, 0.99), 0u);
  EXPECT_EQ(PickByWeight(weights, 1.0), 1u);
  EXPECT_EQ(PickByWeight(weights, 3.999), 1u);
  EXPECT_EQ(PickByWeight(weights, 4.0), 2u);
  EXPECT_EQ(PickByWeight(weights, 9.999), 2u);
}

TEST(PickByWeightTest, RoundingFallThroughClampsToLastComponent) {
  // The regression this guards: a draw at the very top of [0, total) can
  // survive subtracting every weight when the accumulated total exceeds the
  // same weights subtracted sequentially by a few ulps. The fall-through
  // must clamp to the LAST component (the draw lies in its band), never
  // walk off the mix. pick == sum is the exact boundary form of that
  // residue: with {0.5, 0.5} the arithmetic is exact, the loop ends with
  // pick == 0.0 (not < 0), and only the clamp produces an answer.
  EXPECT_EQ(PickByWeight({0.5, 0.5}, 1.0), 1u);
  // Ten 0.1 weights: the classic non-representable case. Accumulate the
  // total the same way WorkloadGenerator does and pick just below it —
  // whether or not the residue goes negative on the final subtraction, the
  // result must be the last band.
  const std::vector<double> tenths(10, 0.1);
  double total = 0.0;
  for (double w : tenths) total += w;
  EXPECT_EQ(PickByWeight(tenths, std::nextafter(total, 0.0)), 9u);
  EXPECT_EQ(PickByWeight(tenths, total), 9u);
}

}  // namespace
}  // namespace wtpgsched
