#include "workload/pattern_parser.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

constexpr LockMode kS = LockMode::kShared;
constexpr LockMode kX = LockMode::kExclusive;

TEST(PatternParserTest, ParsesPattern1Notation) {
  auto result =
      ParsePattern("x(F1:1) -> x(F2:5) -> w(F1:0.2) -> w(F2:1)", 16);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Pattern& p = *result;
  ASSERT_EQ(p.steps().size(), 4u);
  EXPECT_EQ(p.vars().size(), 2u);
  EXPECT_FALSE(p.steps()[0].is_write);
  EXPECT_EQ(p.steps()[0].request_mode, kX);  // 'x' reads with X lock.
  EXPECT_DOUBLE_EQ(p.steps()[1].cost, 5.0);
  EXPECT_TRUE(p.steps()[2].is_write);
  EXPECT_DOUBLE_EQ(p.steps()[2].cost, 0.2);
  EXPECT_EQ(p.steps()[0].file_var, p.steps()[2].file_var);  // F1 reused.
  EXPECT_DOUBLE_EQ(p.TotalCost(), 7.2);
}

TEST(PatternParserTest, DefaultPoolIsAllFiles) {
  auto result = ParsePattern("r(A:1)", 32);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vars()[0].pool_lo, 0);
  EXPECT_EQ(result->vars()[0].pool_hi, 31);
  EXPECT_EQ(result->steps()[0].request_mode, kS);
}

TEST(PatternParserTest, PoolPrologue) {
  auto result = ParsePattern(
      "B in [0,7]; F1,F2 in [8,15]: r(B:5) -> w(F1:1) -> w(F2:1)", 16);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Pattern& p = *result;
  ASSERT_EQ(p.vars().size(), 3u);
  EXPECT_EQ(p.vars()[0].pool_lo, 0);
  EXPECT_EQ(p.vars()[0].pool_hi, 7);
  EXPECT_EQ(p.vars()[1].pool_lo, 8);
  EXPECT_EQ(p.vars()[2].pool_hi, 15);
  EXPECT_EQ(p.steps()[1].request_mode, kX);
}

TEST(PatternParserTest, ReadThenWriteAutoUpgradesFirstRequest) {
  auto result = ParsePattern("r(F:1) -> w(F:1)", 16);
  ASSERT_TRUE(result.ok());
  // The first touch must request X so the later write is covered.
  EXPECT_EQ(result->steps()[0].request_mode, kX);
  EXPECT_FALSE(result->steps()[0].is_write);
}

TEST(PatternParserTest, ParsedPatternInstantiates) {
  auto result = ParsePattern(
      "B in [0,3]; H in [4,7]: r(B:2) -> w(H:1.5)", 8);
  ASSERT_TRUE(result.ok());
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto steps = result->Instantiate(&rng, 2, ErrorModel{0.0});
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_LE(steps[0].file, 3);
    EXPECT_GE(steps[1].file, 4);
    EXPECT_DOUBLE_EQ(steps[1].declared_cost, 0.75);  // 1.5 / DD.
  }
}

TEST(PatternParserTest, WhitespaceInsensitive) {
  auto result = ParsePattern("  r( A : 1 )->w( B : 2 )  ", 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->steps().size(), 2u);
}

TEST(PatternParserTest, RejectsEmpty) {
  EXPECT_FALSE(ParsePattern("", 16).ok());
  EXPECT_FALSE(ParsePattern("   ", 16).ok());
}

TEST(PatternParserTest, RejectsBadOperator) {
  EXPECT_FALSE(ParsePattern("q(F:1)", 16).ok());
}

TEST(PatternParserTest, RejectsMissingArrow) {
  EXPECT_FALSE(ParsePattern("r(A:1) w(B:1)", 16).ok());
}

TEST(PatternParserTest, RejectsMissingCost) {
  EXPECT_FALSE(ParsePattern("r(A)", 16).ok());
  EXPECT_FALSE(ParsePattern("r(A:)", 16).ok());
}

TEST(PatternParserTest, RejectsUnclosedParen) {
  EXPECT_FALSE(ParsePattern("r(A:1 -> w(B:1)", 16).ok());
}

TEST(PatternParserTest, RejectsBadPool) {
  EXPECT_FALSE(ParsePattern("A in [7,3]: r(A:1)", 16).ok());
  EXPECT_FALSE(ParsePattern("A in 0,3]: r(A:1)", 16).ok());
  EXPECT_FALSE(ParsePattern("A in [0,3]; A in [4,7]: r(A:1)", 16).ok());
}

TEST(PatternParserTest, RejectsNonPositiveNumFiles) {
  EXPECT_FALSE(ParsePattern("r(A:1)", 0).ok());
}

TEST(PatternParserTest, ErrorsAreInvalidArgument) {
  auto result = ParsePattern("r(A:1) ->", 16);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wtpgsched
