#include "telemetry/detectors.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

// Synthetic series helpers: the detectors see cumulative commit/abort
// counts, like the machine.commits / machine.restarts gauges.

TEST(HealthDetectorsTest, FlatSeriesStaysQuiet) {
  HealthDetectors detectors;
  double commits = 0.0;
  for (int i = 0; i < 64; ++i) {
    commits += 5.0;
    DetectorInput in;
    in.active = 10.0;
    in.commits = commits;
    const HealthFlags flags = detectors.Update(in);
    EXPECT_EQ(flags.thrashing, 0.0);
    EXPECT_EQ(flags.convoy, 0.0);
    EXPECT_EQ(flags.restart_storm, 0.0);
  }
  EXPECT_FALSE(detectors.thrashing_verdict());
  EXPECT_FALSE(detectors.convoy_verdict());
  EXPECT_FALSE(detectors.storm_verdict());
}

TEST(HealthDetectorsTest, ThrashingKneeFires) {
  // Healthy phase: MPL 10, commit rate 10/sample. Thrashing phase: MPL
  // doubles while the commit rate collapses — the paper's data-contention
  // knee gone unstable.
  HealthDetectors detectors;
  double commits = 0.0;
  for (int i = 0; i < 16; ++i) {
    commits += 10.0;
    DetectorInput in;
    in.active = 10.0;
    in.commits = commits;
    detectors.Update(in);
  }
  EXPECT_EQ(detectors.thrashing_windows(), 0u);
  for (int i = 0; i < 16; ++i) {
    commits += 2.0;
    DetectorInput in;
    in.active = 20.0;
    in.commits = commits;
    detectors.Update(in);
  }
  EXPECT_TRUE(detectors.thrashing_verdict());
  EXPECT_FALSE(detectors.convoy_verdict());
  EXPECT_FALSE(detectors.storm_verdict());
}

TEST(HealthDetectorsTest, RisingMplWithRisingThroughputIsHealthy) {
  // MPL doubling while throughput also grows is ramp-up, not thrashing.
  HealthDetectors detectors;
  double commits = 0.0;
  for (int i = 0; i < 16; ++i) {
    commits += 10.0;
    DetectorInput in;
    in.active = 10.0;
    in.commits = commits;
    detectors.Update(in);
  }
  for (int i = 0; i < 16; ++i) {
    commits += 20.0;
    DetectorInput in;
    in.active = 20.0;
    in.commits = commits;
    detectors.Update(in);
  }
  EXPECT_EQ(detectors.thrashing_windows(), 0u);
}

TEST(HealthDetectorsTest, ConvoyIsInstantaneous) {
  HealthDetectors detectors;
  DetectorInput in;
  in.waiters = 5.0;
  in.max_wait_age_s = 10.0;
  in.mean_wait_age_s = 1.0;
  const HealthFlags flags = detectors.Update(in);
  EXPECT_EQ(flags.convoy, 1.0);
  EXPECT_FALSE(detectors.convoy_verdict());  // One window is not persistent.
  detectors.Update(in);
  detectors.Update(in);
  EXPECT_TRUE(detectors.convoy_verdict());
  EXPECT_EQ(detectors.convoy_windows(), 3u);
}

TEST(HealthDetectorsTest, ConvoyNeedsEnoughOldWaiters) {
  HealthDetectors detectors;
  DetectorInput in;
  in.waiters = 2.0;  // Below convoy_min_waiters.
  in.max_wait_age_s = 10.0;
  in.mean_wait_age_s = 1.0;
  EXPECT_EQ(detectors.Update(in).convoy, 0.0);
  in.waiters = 8.0;
  in.max_wait_age_s = 0.5;  // Below convoy_min_age_s.
  in.mean_wait_age_s = 0.1;
  EXPECT_EQ(detectors.Update(in).convoy, 0.0);
  in.max_wait_age_s = 10.0;
  in.mean_wait_age_s = 9.0;  // Everyone is equally old: no divergence.
  EXPECT_EQ(detectors.Update(in).convoy, 0.0);
}

TEST(HealthDetectorsTest, RestartStormFires) {
  // Commits crawl at 1/sample throughout; aborts explode in the second
  // phase (an abort-storm fault scenario).
  HealthDetectors detectors;
  double commits = 0.0;
  double aborts = 0.0;
  for (int i = 0; i < 16; ++i) {
    commits += 1.0;
    DetectorInput in;
    in.active = 5.0;
    in.commits = commits;
    in.aborts = aborts;
    detectors.Update(in);
  }
  EXPECT_EQ(detectors.storm_windows(), 0u);
  for (int i = 0; i < 16; ++i) {
    commits += 1.0;
    aborts += 5.0;
    DetectorInput in;
    in.active = 5.0;
    in.commits = commits;
    in.aborts = aborts;
    detectors.Update(in);
  }
  EXPECT_TRUE(detectors.storm_verdict());
  EXPECT_FALSE(detectors.thrashing_verdict());
}

TEST(HealthDetectorsTest, FewAbortsAtIdleTailDoNotStorm) {
  // An abort trickle (below storm_min_aborts per window) never flags even
  // when commits are zero.
  HealthDetectors detectors;
  double aborts = 0.0;
  for (int i = 0; i < 48; ++i) {
    aborts += 0.2;
    DetectorInput in;
    in.commits = 0.0;
    in.aborts = aborts;
    detectors.Update(in);
  }
  EXPECT_EQ(detectors.storm_windows(), 0u);
}

}  // namespace
}  // namespace wtpgsched
