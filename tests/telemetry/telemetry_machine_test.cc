#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "driver/sim_run.h"
#include "machine/machine.h"
#include "telemetry/telemetry.h"

namespace wtpgsched {
namespace {

SimConfig BaseConfig(SchedulerKind kind) {
  SimConfig c;
  c.scheduler = kind;
  c.workload.arrival_rate_tps = 0.8;
  c.run.horizon_ms = 200'000;
  c.run.seed = 11;
  return c;
}

// Counter list without the health.* entries telemetry appends.
std::vector<std::pair<std::string, uint64_t>> SansHealth(
    const std::vector<std::pair<std::string, uint64_t>>& counters) {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& entry : counters) {
    if (entry.first.rfind("health.", 0) != 0) out.push_back(entry);
  }
  return out;
}

// Telemetry is observation-only: enabling it must not perturb the
// simulation for any scheduler. Everything except the appended health.*
// counters must match the disabled run exactly.
TEST(TelemetryMachineTest, ObservationOnlyAcrossSchedulers) {
  const SchedulerKind kinds[] = {SchedulerKind::kNodc, SchedulerKind::kAsl,
                                 SchedulerKind::kC2pl, SchedulerKind::kOpt,
                                 SchedulerKind::kGow,  SchedulerKind::kLow};
  for (SchedulerKind kind : kinds) {
    SimConfig off = BaseConfig(kind);
    Machine machine_off(off, Pattern::Experiment1(off.machine.num_files));
    const RunStats a = machine_off.Run();

    SimConfig on = BaseConfig(kind);
    on.run.telemetry_sample_ms = 5'000;
    Machine machine_on(on, Pattern::Experiment1(on.machine.num_files));
    const RunStats b = machine_on.Run();

    SCOPED_TRACE(SchedulerKindName(kind));
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.blocked, b.blocked);
    EXPECT_EQ(a.delayed, b.delayed);
    EXPECT_EQ(a.mean_response_s, b.mean_response_s);
    EXPECT_EQ(a.throughput_tps, b.throughput_tps);
    EXPECT_EQ(a.counters, SansHealth(b.counters));
  }
}

TEST(TelemetryMachineTest, HealthCountersPresentInFixedOrder) {
  SimConfig c = BaseConfig(SchedulerKind::kLow);
  c.run.telemetry_sample_ms = 5'000;
  Machine machine(c, Pattern::Experiment1(c.machine.num_files));
  const RunStats stats = machine.Run();
  std::vector<std::string> health;
  for (const auto& [name, value] : stats.counters) {
    if (name.rfind("health.", 0) == 0) health.push_back(name);
  }
  const std::vector<std::string> expected = {
      "health.thrashing",         "health.convoy",
      "health.restart_storm",     "health.thrashing_windows",
      "health.convoy_windows",    "health.storm_windows"};
  EXPECT_EQ(health, expected);
}

TEST(TelemetryMachineTest, SamplesAtPeriodWithDerivedColumns) {
  SimConfig c = BaseConfig(SchedulerKind::kLow);
  c.run.telemetry_sample_ms = 10'000;
  c.run.horizon_ms = 100'000;
  Machine machine(c, Pattern::Experiment1(c.machine.num_files));
  machine.Run();
  ASSERT_NE(machine.telemetry(), nullptr);
  const TelemetryStore& store = machine.telemetry()->store();
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.time(0), MsToTime(10'000));
  EXPECT_EQ(store.time(9), MsToTime(100'000));
  // Machine, scheduler, WTPG, and derived columns all present.
  EXPECT_GE(store.ColumnIndex("machine.in_flight"), 0);
  EXPECT_GE(store.ColumnIndex("sched.active"), 0);
  EXPECT_GE(store.ColumnIndex("wtpg.nodes"), 0);
  EXPECT_GE(store.ColumnIndex("dpn0.utilization"), 0);
  EXPECT_GE(store.ColumnIndex("rate.commit_per_s"), 0);
  EXPECT_GE(store.ColumnIndex("health.thrashing"), 0);
  // The commits column is cumulative and non-decreasing.
  const int commits = store.ColumnIndex("machine.commits");
  ASSERT_GE(commits, 0);
  for (size_t row = 1; row < store.size(); ++row) {
    EXPECT_GE(store.value(row, static_cast<size_t>(commits)),
              store.value(row - 1, static_cast<size_t>(commits)));
  }
}

// Legacy timeline-only runs reuse the telemetry sampler but must not grow
// health.* counters (their RunStats JSON is pinned by older goldens).
TEST(TelemetryMachineTest, LegacyTimelineHasNoHealthCounters) {
  SimConfig c = BaseConfig(SchedulerKind::kAsl);
  c.run.timeline_sample_ms = 10'000;
  Machine machine(c, Pattern::Experiment1(c.machine.num_files));
  const RunStats stats = machine.Run();
  ASSERT_NE(machine.telemetry(), nullptr);
  EXPECT_TRUE(machine.timeline().attached());
  EXPECT_EQ(machine.timeline().size(), 20u);
  for (const auto& [name, value] : stats.counters) {
    EXPECT_NE(name.rfind("health.", 0), 0u) << name;
  }
}

// The ring store bounds memory: a tiny capacity keeps only the most recent
// window and counts the overwritten rows.
TEST(TelemetryMachineTest, BoundedCapacityDropsOldest) {
  SimConfig c = BaseConfig(SchedulerKind::kAsl);
  c.run.telemetry_sample_ms = 10'000;
  c.run.horizon_ms = 100'000;
  c.run.telemetry_capacity = 4;
  Machine machine(c, Pattern::Experiment1(c.machine.num_files));
  machine.Run();
  const TelemetryStore& store = machine.telemetry()->store();
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.total_rows(), 10u);
  EXPECT_EQ(store.dropped(), 6u);
  EXPECT_EQ(store.time(0), MsToTime(70'000));
  EXPECT_EQ(store.time(3), MsToTime(100'000));
}

// The sampled series is a pure function of the config: two machines with
// the same config produce bit-identical stores, which is what makes the
// series jobs-invariant (each replica owns its machine; the worker count
// only changes which thread runs it).
TEST(TelemetryMachineTest, SampledSeriesDeterministic) {
  SimConfig c = BaseConfig(SchedulerKind::kGow);
  c.run.telemetry_sample_ms = 5'000;
  Machine m1(c, Pattern::Experiment1(c.machine.num_files));
  m1.Run();
  Machine m2(c, Pattern::Experiment1(c.machine.num_files));
  m2.Run();
  const TelemetryStore& a = m1.telemetry()->store();
  const TelemetryStore& b = m2.telemetry()->store();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.names(), b.names());
  for (size_t row = 0; row < a.size(); ++row) {
    ASSERT_EQ(a.time(row), b.time(row));
    for (size_t col = 0; col < a.num_columns(); ++col) {
      // Bit-level equality, NaN-safe: the series must be reproducible.
      const double va = a.value(row, col);
      const double vb = b.value(row, col);
      ASSERT_EQ(std::memcmp(&va, &vb, sizeof(double)), 0)
          << a.name(col) << " row " << row;
    }
  }
}

// Aggregate JSON — including the merged health.* counters — is
// byte-identical regardless of the worker count.
TEST(TelemetryMachineTest, HealthCountersJobsInvariant) {
  SimConfig c = BaseConfig(SchedulerKind::kLow);
  c.workload.arrival_rate_tps = 1.2;
  c.run.telemetry_sample_ms = 5'000;
  const Pattern pattern = Pattern::Experiment1(c.machine.num_files);
  const std::string serial = RunAggregate(c, pattern, /*num_seeds=*/4,
                                          /*jobs=*/1)
                                 .ToJson();
  const std::string parallel = RunAggregate(c, pattern, /*num_seeds=*/4,
                                            /*jobs=*/4)
                                   .ToJson();
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("counters.health.thrashing"), std::string::npos);
}

}  // namespace
}  // namespace wtpgsched
