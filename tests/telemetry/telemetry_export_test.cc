#include "telemetry/telemetry_export.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/time.h"
#include "telemetry/report_html.h"
#include "trace/trace_export.h"
#include "trace/trace_reader.h"

namespace wtpgsched {
namespace {

TelemetryStore SmallStore() {
  TelemetryStore store({"sched.active", "rate.commit_per_s"}, /*capacity=*/8);
  store.Append(MsToTime(10'000), {3.0, 1.5});
  store.Append(MsToTime(20'000), {5.0, 2.25});
  return store;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TelemetryExportTest, ToGaugeTracks) {
  const TelemetryStore store = SmallStore();
  const std::vector<GaugeTrack> tracks = ToGaugeTracks(store);
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0].name, "sched.active");
  ASSERT_EQ(tracks[0].points.size(), 2u);
  EXPECT_EQ(tracks[0].points[0].first, MsToTime(10'000));
  EXPECT_EQ(tracks[0].points[0].second, 3.0);
  EXPECT_EQ(tracks[1].points[1].second, 2.25);
}

TEST(TelemetryExportTest, WideCsv) {
  const TelemetryStore store = SmallStore();
  const std::string path = testing::TempDir() + "/telemetry_test.csv";
  ASSERT_TRUE(WriteTelemetryCsv(store, path).ok());
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "time_s,sched.active,rate.commit_per_s");
  EXPECT_EQ(row, "10.000000,3,1.5");
  std::remove(path.c_str());
}

TEST(TelemetryExportTest, JsonlHeaderAndRows) {
  const TelemetryStore store = SmallStore();
  const std::string path = testing::TempDir() + "/telemetry_test.jsonl";
  ASSERT_TRUE(WriteTelemetryJsonl(store, path).ok());
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_NE(header.find("\"schema\":\"wtpg-telemetry/1\""), std::string::npos);
  EXPECT_NE(header.find("\"sched.active\""), std::string::npos);
  EXPECT_NE(row.find("\"t\":10000000"), std::string::npos);
  std::remove(path.c_str());
}

// Gauge tracks merged into the JSONL trace survive a read back through the
// trace reader: names, sample times, and values round-trip.
TEST(TelemetryExportTest, TraceGaugeRoundTrip) {
  const TelemetryStore store = SmallStore();
  const std::vector<GaugeTrack> tracks = ToGaugeTracks(store);
  TraceMeta meta;
  meta.scheduler = "low";
  meta.num_nodes = 8;
  meta.num_files = 16;
  meta.seed = 7;
  const std::vector<std::pair<std::string, uint64_t>> counters = {
      {"health.thrashing", 1}, {"restarts", 12}};
  const std::string path = testing::TempDir() + "/telemetry_trace.jsonl";
  ASSERT_TRUE(WriteJsonlTrace({}, meta, counters, /*dropped=*/0, path,
                              &tracks)
                  .ok());
  ParsedTrace trace;
  ASSERT_TRUE(ReadJsonlTrace(path, &trace).ok());
  ASSERT_EQ(trace.gauge_names.size(), 2u);
  EXPECT_EQ(trace.gauge_names[0], "sched.active");
  ASSERT_EQ(trace.gauge_samples.size(), 4u);
  EXPECT_EQ(trace.gauge_samples[0].time, MsToTime(10'000));
  EXPECT_EQ(trace.gauge_samples[0].gauge, 0);
  EXPECT_EQ(trace.gauge_samples[0].value, 3.0);
  // Footer counters come back sorted by name.
  ASSERT_EQ(trace.footer_counters.size(), 2u);
  EXPECT_EQ(trace.footer_counters[0].first, "health.thrashing");
  EXPECT_EQ(trace.footer_counters[0].second, 1u);
  std::remove(path.c_str());
}

TEST(ReportHtmlTest, RendersChartsAndVerdicts) {
  ReportRun run;
  run.title = "low seed=7";
  run.scheduler = "low";
  run.gauge_names = {"sched.active", "health.thrashing"};
  run.series = {{{10.0, 3.0}, {20.0, 5.0}}, {{10.0, 0.0}, {20.0, 1.0}}};
  run.counters = {{"health.thrashing", 1},
                  {"health.convoy", 0},
                  {"health.restart_storm", 0},
                  {"health.thrashing_windows", 5}};
  const std::string html = RenderRunReport({run});
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("low seed=7"), std::string::npos);
  EXPECT_NE(html.find("sched.active"), std::string::npos);
  EXPECT_NE(html.find("DETECTED"), std::string::npos);  // Thrashing verdict.
}

TEST(ReportHtmlTest, NoCountersFallsBackGracefully) {
  ReportRun run;
  run.title = "no telemetry";
  run.scheduler = "asl";
  const std::string html = RenderRunReport({run});
  EXPECT_NE(html.find("no health counters"), std::string::npos);
}

TEST(ReportHtmlTest, WriteRunReport) {
  ReportRun run;
  run.title = "r";
  run.gauge_names = {"g"};
  run.series = {{{1.0, 2.0}}};
  const std::string path = testing::TempDir() + "/report_test.html";
  ASSERT_TRUE(WriteRunReport({run}, path).ok());
  const std::string html = Slurp(path);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wtpgsched
