#include "telemetry/gauge_registry.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace wtpgsched {
namespace {

TEST(GaugeRegistryTest, RegistrationOrderIsColumnOrder) {
  GaugeRegistry registry;
  double a = 1.0;
  double b = 2.0;
  registry.Register("sched.active", [&] { return a; });
  registry.Register("machine.commits", [&] { return b; });
  ASSERT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.name(0), "sched.active");
  EXPECT_EQ(registry.name(1), "machine.commits");
  EXPECT_EQ(registry.Sample(0), 1.0);
  EXPECT_EQ(registry.Sample(1), 2.0);
  a = 7.0;
  EXPECT_EQ(registry.Sample(0), 7.0);  // Probes read live state.
}

TEST(TelemetryStoreTest, AppendAndIndex) {
  TelemetryStore store({"x", "y"}, /*capacity=*/8);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.ColumnIndex("x"), 0);
  EXPECT_EQ(store.ColumnIndex("y"), 1);
  EXPECT_EQ(store.ColumnIndex("missing"), -1);
  store.Append(MsToTime(10), {1.0, 2.0});
  store.Append(MsToTime(20), {3.0, 4.0});
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.time(0), MsToTime(10));
  EXPECT_EQ(store.time(1), MsToTime(20));
  EXPECT_EQ(store.value(0, 0), 1.0);
  EXPECT_EQ(store.value(1, 1), 4.0);
  EXPECT_EQ(store.dropped(), 0u);
}

TEST(TelemetryStoreTest, RingOverwritesOldest) {
  TelemetryStore store({"v"}, /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    store.Append(MsToTime(i), {static_cast<double>(i)});
  }
  // Rows 0 and 1 were overwritten; the window is [2, 3, 4] oldest-first.
  ASSERT_EQ(store.size(), 3u);
  EXPECT_EQ(store.total_rows(), 5u);
  EXPECT_EQ(store.dropped(), 2u);
  EXPECT_EQ(store.time(0), MsToTime(2));
  EXPECT_EQ(store.value(0, 0), 2.0);
  EXPECT_EQ(store.value(2, 0), 4.0);
}

TEST(TelemetryStoreTest, WrapKeepsColumnsAligned) {
  TelemetryStore store({"a", "b"}, /*capacity=*/2);
  store.Append(MsToTime(1), {10.0, 100.0});
  store.Append(MsToTime(2), {20.0, 200.0});
  store.Append(MsToTime(3), {30.0, 300.0});
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.time(0), MsToTime(2));
  EXPECT_EQ(store.value(0, 0), 20.0);
  EXPECT_EQ(store.value(0, 1), 200.0);
  EXPECT_EQ(store.value(1, 0), 30.0);
  EXPECT_EQ(store.value(1, 1), 300.0);
}

}  // namespace
}  // namespace wtpgsched
