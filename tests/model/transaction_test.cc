#include "model/transaction.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

constexpr LockMode kS = LockMode::kShared;
constexpr LockMode kX = LockMode::kExclusive;

// Pattern-1-shaped transaction: r(A:1) -> r(B:3) -> w(A:1), X-locks at the
// reads (the paper's Fig. 2 example T1).
Transaction MakeT1(TxnId id = 1) {
  return Transaction(id, {
                             {0, kS, kX, 1.0, 1.0},  // r(A:1), X-lock
                             {1, kS, kX, 3.0, 3.0},  // r(B:3), X-lock
                             {0, kX, kS, 1.0, 1.0},  // w(A:1)
                         });
}

// Fig. 2 example T2: r(C:1) -> w(A:1) -> w(C:1), X-locks throughout.
Transaction MakeT2(TxnId id = 2) {
  return Transaction(id, {
                             {2, kS, kX, 1.0, 1.0},  // r(C:1), X-lock
                             {0, kX, kX, 1.0, 1.0},  // w(A:1)
                             {2, kX, kS, 1.0, 1.0},  // w(C:1)
                         });
}

TEST(TransactionTest, BasicAccessors) {
  Transaction t = MakeT1();
  EXPECT_EQ(t.id(), 1);
  EXPECT_EQ(t.num_steps(), 3);
  EXPECT_EQ(t.state(), Transaction::State::kCreated);
  EXPECT_EQ(t.current_step(), 0);
}

TEST(TransactionTest, LockModesAreStrongestPerFile) {
  Transaction t = MakeT1();
  ASSERT_EQ(t.lock_modes().size(), 2u);
  EXPECT_EQ(t.lock_modes().at(0), kX);  // Read + later write -> X.
  EXPECT_EQ(t.lock_modes().at(1), kX);  // X requested at the read.
}

TEST(TransactionTest, FirstStepFor) {
  Transaction t = MakeT1();
  EXPECT_EQ(t.FirstStepFor(0), 0);
  EXPECT_EQ(t.FirstStepFor(1), 1);
  EXPECT_EQ(t.FirstStepFor(99), -1);
}

TEST(TransactionTest, NeedsLockOnlyAtFirstTouch) {
  Transaction t = MakeT1();
  EXPECT_TRUE(t.NeedsLockAt(0));
  EXPECT_TRUE(t.NeedsLockAt(1));
  EXPECT_FALSE(t.NeedsLockAt(2));  // File 0 already locked at step 0.
}

TEST(TransactionTest, RequestModeAtFirstTouch) {
  Transaction t = MakeT1();
  EXPECT_EQ(t.RequestModeAt(0), kX);
  EXPECT_EQ(t.RequestModeAt(1), kX);
}

TEST(TransactionTest, ConflictsWithSharedFile) {
  Transaction t1 = MakeT1(1);
  Transaction t2 = MakeT2(2);
  EXPECT_TRUE(t1.ConflictsWith(t2));  // Both X on file 0 (A).
  EXPECT_TRUE(t2.ConflictsWith(t1));
}

TEST(TransactionTest, NoConflictWhenDisjoint) {
  Transaction t1 = MakeT1(1);
  Transaction t3(3, {{5, kS, kX, 1.0, 1.0}});
  EXPECT_FALSE(t1.ConflictsWith(t3));
}

TEST(TransactionTest, SharedReadsDoNotConflict) {
  Transaction a(1, {{7, kS, kS, 2.0, 2.0}});
  Transaction b(2, {{7, kS, kS, 2.0, 2.0}});
  EXPECT_FALSE(a.ConflictsWith(b));
}

TEST(TransactionTest, SharedVsExclusiveConflicts) {
  Transaction a(1, {{7, kS, kS, 2.0, 2.0}});
  Transaction b(2, {{7, kX, kX, 2.0, 2.0}});
  EXPECT_TRUE(a.ConflictsWith(b));
}

// The paper's Fig. 2 weight example: w(T1->T2) = 2 because T2 is blocked by
// T1 at its second step (w2(A:1)) and must still access 1 + 1 objects.
TEST(TransactionTest, Fig2WeightExample) {
  Transaction t1 = MakeT1(1);
  Transaction t2 = MakeT2(2);
  const int step = t2.FirstConflictingStep(t1);
  EXPECT_EQ(step, 1);  // w2(A:1) is T2's second step.
  EXPECT_DOUBLE_EQ(t2.DeclaredCostFrom(step), 2.0);  // w(T1 -> T2) = 2.
  // And w(T2 -> T1) = 5: T1 blocked at its first step, full cost remains.
  const int step1 = t1.FirstConflictingStep(t2);
  EXPECT_EQ(step1, 0);
  EXPECT_DOUBLE_EQ(t1.DeclaredCostFrom(step1), 5.0);
}

TEST(TransactionTest, DeclaredCostFromClampsAndSums) {
  Transaction t = MakeT1();
  EXPECT_DOUBLE_EQ(t.DeclaredTotalCost(), 5.0);
  EXPECT_DOUBLE_EQ(t.DeclaredCostFrom(-3), 5.0);
  EXPECT_DOUBLE_EQ(t.DeclaredCostFrom(1), 4.0);
  EXPECT_DOUBLE_EQ(t.DeclaredCostFrom(3), 0.0);
  EXPECT_DOUBLE_EQ(t.DeclaredCostFrom(100), 0.0);
}

TEST(TransactionTest, AdvanceStepAndRemaining) {
  Transaction t = MakeT1();
  EXPECT_DOUBLE_EQ(t.DeclaredRemainingCost(), 5.0);
  t.AdvanceStep();
  EXPECT_DOUBLE_EQ(t.DeclaredRemainingCost(), 4.0);
  t.AdvanceStep();
  t.AdvanceStep();
  EXPECT_TRUE(t.AllStepsDone());
  EXPECT_DOUBLE_EQ(t.DeclaredRemainingCost(), 0.0);
}

TEST(TransactionTest, ResetForRestart) {
  Transaction t = MakeT1();
  t.AdvanceStep();
  t.set_state(Transaction::State::kExecuting);
  t.ResetForRestart();
  EXPECT_EQ(t.current_step(), 0);
  EXPECT_EQ(t.restarts, 1);
  EXPECT_EQ(t.state(), Transaction::State::kCreated);
}

TEST(TransactionTest, FirstConflictingStepNoConflict) {
  Transaction t1 = MakeT1(1);
  Transaction t3(3, {{5, kS, kX, 1.0, 1.0}});
  EXPECT_EQ(t1.FirstConflictingStep(t3), -1);
}

TEST(TransactionTest, DebugStringMentionsSteps) {
  Transaction t = MakeT1();
  const std::string s = t.DebugString();
  EXPECT_NE(s.find("T1"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

TEST(TransactionDeathTest, UncoveredLaterAccessFails) {
  // First touch requests only S, but a later step writes the same file.
  EXPECT_DEATH(Transaction(1, {{0, kS, kS, 1.0, 1.0}, {0, kX, kX, 1.0, 1.0}}),
               "does not cover");
}

}  // namespace
}  // namespace wtpgsched
