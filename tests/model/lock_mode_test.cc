#include "model/lock_mode.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

constexpr LockMode kS = LockMode::kShared;
constexpr LockMode kX = LockMode::kExclusive;

TEST(LockModeTest, CompatibilityMatrix) {
  EXPECT_TRUE(Compatible(kS, kS));
  EXPECT_FALSE(Compatible(kS, kX));
  EXPECT_FALSE(Compatible(kX, kS));
  EXPECT_FALSE(Compatible(kX, kX));
}

TEST(LockModeTest, ConflictsIsNegationOfCompatible) {
  for (LockMode a : {kS, kX}) {
    for (LockMode b : {kS, kX}) {
      EXPECT_EQ(Conflicts(a, b), !Compatible(a, b));
    }
  }
}

TEST(LockModeTest, StrongerPicksExclusive) {
  EXPECT_EQ(Stronger(kS, kS), kS);
  EXPECT_EQ(Stronger(kS, kX), kX);
  EXPECT_EQ(Stronger(kX, kS), kX);
  EXPECT_EQ(Stronger(kX, kX), kX);
}

TEST(LockModeTest, Names) {
  EXPECT_STREQ(LockModeName(kS), "S");
  EXPECT_STREQ(LockModeName(kX), "X");
}

}  // namespace
}  // namespace wtpgsched
