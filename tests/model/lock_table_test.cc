#include "lock/lock_table.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

constexpr LockMode kS = LockMode::kShared;
constexpr LockMode kX = LockMode::kExclusive;

TEST(LockTableTest, GrantOnFreeFile) {
  LockTable table;
  EXPECT_TRUE(table.CanGrant(0, 1, kX));
  table.Grant(0, 1, kX);
  EXPECT_TRUE(table.Holds(0, 1));
  EXPECT_TRUE(table.HoldsSufficient(0, 1, kX));
}

TEST(LockTableTest, SharedLocksCoexist) {
  LockTable table;
  table.Grant(0, 1, kS);
  EXPECT_TRUE(table.CanGrant(0, 2, kS));
  table.Grant(0, 2, kS);
  EXPECT_EQ(table.GetHolders(0).size(), 2u);
}

TEST(LockTableTest, ExclusiveBlocksOthers) {
  LockTable table;
  table.Grant(0, 1, kX);
  EXPECT_FALSE(table.CanGrant(0, 2, kS));
  EXPECT_FALSE(table.CanGrant(0, 2, kX));
}

TEST(LockTableTest, SharedBlocksExclusive) {
  LockTable table;
  table.Grant(0, 1, kS);
  EXPECT_FALSE(table.CanGrant(0, 2, kX));
}

TEST(LockTableTest, OwnLockDoesNotBlockUpgrade) {
  LockTable table;
  table.Grant(0, 1, kS);
  EXPECT_TRUE(table.CanGrant(0, 1, kX));  // Sole holder may upgrade.
  table.Grant(0, 1, kX);
  EXPECT_TRUE(table.HoldsSufficient(0, 1, kX));
}

TEST(LockTableTest, UpgradeBlockedByOtherSharer) {
  LockTable table;
  table.Grant(0, 1, kS);
  table.Grant(0, 2, kS);
  EXPECT_FALSE(table.CanGrant(0, 1, kX));
}

TEST(LockTableTest, HoldsSufficientModeAware) {
  LockTable table;
  table.Grant(0, 1, kS);
  EXPECT_TRUE(table.HoldsSufficient(0, 1, kS));
  EXPECT_FALSE(table.HoldsSufficient(0, 1, kX));
  EXPECT_FALSE(table.HoldsSufficient(1, 1, kS));  // Different file.
}

TEST(LockTableTest, ReleaseAllReturnsFiles) {
  LockTable table;
  table.Grant(0, 1, kX);
  table.Grant(3, 1, kS);
  table.Grant(3, 2, kS);
  std::vector<FileId> released = table.ReleaseAll(1);
  std::sort(released.begin(), released.end());
  EXPECT_EQ(released, (std::vector<FileId>{0, 3}));
  EXPECT_FALSE(table.Holds(0, 1));
  EXPECT_TRUE(table.Holds(3, 2));  // Other holder unaffected.
  EXPECT_TRUE(table.CanGrant(0, 5, kX));
}

TEST(LockTableTest, ReleaseAllOnEmptyIsNoop) {
  LockTable table;
  EXPECT_TRUE(table.ReleaseAll(9).empty());
}

TEST(LockTableTest, ForceGrantIgnoresCompatibility) {
  LockTable table;
  table.Grant(0, 1, kX);
  table.ForceGrant(0, 2, kX);  // NODC: conflicting X holders coexist.
  EXPECT_EQ(table.GetHolders(0).size(), 2u);
  std::vector<FileId> released = table.ReleaseAll(2);
  EXPECT_EQ(released, (std::vector<FileId>{0}));
  EXPECT_TRUE(table.Holds(0, 1));
}

TEST(LockTableTest, ConflictingHolders) {
  LockTable table;
  table.Grant(0, 1, kS);
  table.Grant(0, 2, kS);
  EXPECT_TRUE(table.ConflictingHolders(0, 3, kS).empty());
  std::vector<TxnId> conflicting = table.ConflictingHolders(0, 3, kX);
  std::sort(conflicting.begin(), conflicting.end());
  EXPECT_EQ(conflicting, (std::vector<TxnId>{1, 2}));
  // The requester itself is never reported.
  EXPECT_EQ(table.ConflictingHolders(0, 1, kX), (std::vector<TxnId>{2}));
}

TEST(LockTableTest, Counters) {
  LockTable table;
  table.Grant(0, 1, kX);
  table.Grant(1, 1, kS);
  table.Grant(1, 2, kS);
  EXPECT_EQ(table.num_locked_files(), 2u);
  EXPECT_EQ(table.NumHeldBy(1), 2u);
  EXPECT_EQ(table.NumHeldBy(2), 1u);
  EXPECT_EQ(table.NumHeldBy(3), 0u);
}

TEST(LockTableTest, RegrantSameModeIdempotent) {
  LockTable table;
  table.Grant(0, 1, kX);
  table.Grant(0, 1, kX);
  EXPECT_EQ(table.GetHolders(0).size(), 1u);
}

TEST(LockTableDeathTest, IncompatibleGrantDies) {
  LockTable table;
  table.Grant(0, 1, kX);
  EXPECT_DEATH(table.Grant(0, 2, kX), "incompatible");
}

}  // namespace
}  // namespace wtpgsched
