// Equivalence of the worklist-based forced-closure implementation against a
// naive reference: after any successful orientation, re-running a
// fixpoint "force every conflict edge with a connecting path" loop must
// change nothing, and failures must coincide with the reference's cycles.

#include <gtest/gtest.h>

#include "util/random.h"
#include "wtpg/wtpg.h"

namespace wtpgsched {
namespace {

// Naive fixpoint closure on a copy. Returns false on a forced cycle.
bool ReferenceClosure(Wtpg* g) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b] : g->UnorientedEdges()) {
      const bool ab = g->HasPath(a, b);
      const bool ba = g->HasPath(b, a);
      if (ab && ba) return false;
      if (ab) {
        if (!g->OrientNoRollback(a, b)) return false;
        changed = true;
      } else if (ba) {
        if (!g->OrientNoRollback(b, a)) return false;
        changed = true;
      }
    }
  }
  return true;
}

// True if every edge of `a` has the same orientation state in `b`.
bool SameOrientations(const Wtpg& a, const Wtpg& b) {
  for (TxnId id : a.Nodes()) {
    for (TxnId nb : a.Neighbors(id)) {
      const Wtpg::Edge* ea = a.FindEdge(id, nb);
      const Wtpg::Edge* eb = b.FindEdge(id, nb);
      if (eb == nullptr) return false;
      if (ea->oriented != eb->oriented) return false;
      if (ea->oriented && ea->from != eb->from) return false;
    }
  }
  return true;
}

struct RefCase {
  int nodes;
  double edge_prob;
  uint64_t seed;
};

class ClosureReferenceTest : public testing::TestWithParam<RefCase> {};

TEST_P(ClosureReferenceTest, WorklistClosureIsAFixpoint) {
  const RefCase param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 30; ++trial) {
    Wtpg g;
    for (int i = 1; i <= param.nodes; ++i) g.AddNode(i, 0.0);
    std::vector<std::pair<TxnId, TxnId>> pairs;
    for (int a = 1; a <= param.nodes; ++a) {
      for (int b = a + 1; b <= param.nodes; ++b) {
        if (rng.NextDouble() < param.edge_prob) {
          g.AddConflictEdge(a, b, 1.0, 1.0);
          pairs.emplace_back(a, b);
        }
      }
    }
    // Random orientation sequence.
    for (size_t k = 0; k < 2 * pairs.size(); ++k) {
      if (pairs.empty()) break;
      const auto [a, b] =
          pairs[static_cast<size_t>(rng.UniformInt(0, pairs.size() - 1))];
      const bool forward = rng.NextDouble() < 0.5;
      const TxnId from = forward ? a : b;
      const TxnId to = forward ? b : a;
      if (!g.TryOrient(from, to)) continue;
      // After a successful orientation the closure must already be a
      // fixpoint: the reference loop finds nothing to force.
      Wtpg reference = g;
      ASSERT_TRUE(ReferenceClosure(&reference));
      EXPECT_TRUE(SameOrientations(g, reference))
          << "worklist closure missed a forced edge (trial " << trial << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosureReferenceTest,
    testing::Values(RefCase{5, 0.5, 71}, RefCase{7, 0.4, 72},
                    RefCase{9, 0.35, 73}, RefCase{12, 0.25, 74}),
    [](const testing::TestParamInfo<RefCase>& info) {
      return "n" + std::to_string(info.param.nodes) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace wtpgsched
