// Property test: the O(m^2) chain DP must match exhaustive enumeration of
// all feasible orientations on randomized chains (weights, T0 weights, and
// randomly pre-oriented edges).

#include <gtest/gtest.h>

#include "util/random.h"
#include "wtpg/chain.h"
#include "wtpg/wtpg.h"

namespace wtpgsched {
namespace {

struct ChainCase {
  int num_nodes;
  uint64_t seed;
  double fixed_edge_prob;
};

class ChainDpPropertyTest : public testing::TestWithParam<ChainCase> {};

TEST_P(ChainDpPropertyTest, DpMatchesBruteForce) {
  const ChainCase param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 40; ++trial) {
    Wtpg g;
    std::vector<TxnId> chain;
    for (int i = 1; i <= param.num_nodes; ++i) {
      g.AddNode(i, rng.UniformReal(0.0, 8.0));
      chain.push_back(i);
    }
    for (int i = 1; i < param.num_nodes; ++i) {
      g.AddConflictEdge(i, i + 1, rng.UniformReal(0.0, 10.0),
                        rng.UniformReal(0.0, 10.0));
    }
    // Randomly pre-orient some edges (as real grants would have).
    for (int i = 1; i < param.num_nodes; ++i) {
      if (rng.NextDouble() < param.fixed_edge_prob) {
        const bool forward = rng.NextDouble() < 0.5;
        ASSERT_TRUE(forward ? g.TryOrient(i, i + 1) : g.TryOrient(i + 1, i));
      }
    }
    auto plan = OptimizeChain(g, chain);
    ASSERT_TRUE(plan.ok());
    const double brute = BruteForceOptimalCriticalPath(g, chain);
    EXPECT_NEAR(plan->critical_path, brute, 1e-9)
        << "trial " << trial << " nodes " << param.num_nodes;

    // The plan itself must be feasible and achieve its claimed value.
    Wtpg applied = g;
    for (size_t e = 0; e + 1 < plan->nodes.size(); ++e) {
      const TxnId a = plan->nodes[e];
      const TxnId b = plan->nodes[e + 1];
      ASSERT_TRUE(plan->forward[e] ? applied.TryOrient(a, b)
                                   : applied.TryOrient(b, a));
    }
    EXPECT_NEAR(applied.CriticalPath(), plan->critical_path, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChainDpPropertyTest,
    testing::Values(ChainCase{2, 101, 0.0}, ChainCase{3, 102, 0.0},
                    ChainCase{4, 103, 0.0}, ChainCase{5, 104, 0.0},
                    ChainCase{6, 105, 0.0}, ChainCase{8, 106, 0.0},
                    ChainCase{3, 201, 0.4}, ChainCase{5, 202, 0.4},
                    ChainCase{8, 203, 0.4}, ChainCase{10, 204, 0.25},
                    ChainCase{12, 205, 0.15}),
    [](const testing::TestParamInfo<ChainCase>& info) {
      return "n" + std::to_string(info.param.num_nodes) + "_seed" +
             std::to_string(info.param.seed);
    });

// Orientation closure on random (non-chain) graphs must keep invariants and
// never produce cycles.
struct ClosureCase {
  int num_nodes;
  double edge_prob;
  uint64_t seed;
};

class ClosurePropertyTest : public testing::TestWithParam<ClosureCase> {};

TEST_P(ClosurePropertyTest, RandomOrientationsKeepInvariants) {
  const ClosureCase param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 20; ++trial) {
    Wtpg g;
    for (int i = 1; i <= param.num_nodes; ++i) {
      g.AddNode(i, rng.UniformReal(0.0, 5.0));
    }
    std::vector<std::pair<TxnId, TxnId>> pairs;
    for (int a = 1; a <= param.num_nodes; ++a) {
      for (int b = a + 1; b <= param.num_nodes; ++b) {
        if (rng.NextDouble() < param.edge_prob) {
          g.AddConflictEdge(a, b, rng.UniformReal(0.0, 5.0),
                            rng.UniformReal(0.0, 5.0));
          pairs.emplace_back(a, b);
        }
      }
    }
    // Try random orientations; successes must keep all invariants.
    for (int k = 0; k < 3 * static_cast<int>(pairs.size()); ++k) {
      if (pairs.empty()) break;
      const auto& [a, b] =
          pairs[static_cast<size_t>(rng.UniformInt(0, pairs.size() - 1))];
      const bool forward = rng.NextDouble() < 0.5;
      const TxnId from = forward ? a : b;
      const TxnId to = forward ? b : a;
      const bool can = g.CanOrient(from, to);
      const bool did = g.TryOrient(from, to);
      EXPECT_EQ(can, did);
      ASSERT_TRUE(g.CheckInvariants())
          << "invariants broken after orienting T" << from << "->T" << to;
    }
    // The critical path must be finite and >= the largest T0 weight.
    double max_w0 = 0.0;
    for (TxnId id : g.Nodes()) max_w0 = std::max(max_w0, g.remaining(id));
    EXPECT_GE(g.CriticalPath(), max_w0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosurePropertyTest,
    testing::Values(ClosureCase{4, 0.5, 301}, ClosureCase{6, 0.4, 302},
                    ClosureCase{8, 0.3, 303}, ClosureCase{10, 0.25, 304},
                    ClosureCase{14, 0.2, 305}),
    [](const testing::TestParamInfo<ClosureCase>& info) {
      return "n" + std::to_string(info.param.num_nodes) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace wtpgsched
