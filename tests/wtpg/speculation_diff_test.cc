// Differential testing of the journal-based in-place speculation against the
// reference copy-based implementation (Wtpg(reference_speculation=true)):
// random conflict graphs driven through random orientation / evaluation /
// mutation sequences must produce identical decisions and identical graphs
// at every step, and a failed OrientBatch must roll back byte-identically.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "wtpg/wtpg.h"

namespace wtpgsched {
namespace {

// Full observable state comparison: nodes, weights, every edge field, and
// the adjacency vectors *in order* (rollback must restore insertion order,
// not just set equality).
void ExpectSameGraph(const Wtpg& a, const Wtpg& b) {
  ASSERT_EQ(a.Nodes(), b.Nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (TxnId id : a.Nodes()) {
    EXPECT_DOUBLE_EQ(a.remaining(id), b.remaining(id)) << "T" << id;
    EXPECT_EQ(a.Neighbors(id), b.Neighbors(id)) << "T" << id;
    EXPECT_EQ(a.OutNeighbors(id), b.OutNeighbors(id)) << "T" << id;
    EXPECT_EQ(a.InNeighbors(id), b.InNeighbors(id)) << "T" << id;
    for (TxnId nb : a.Neighbors(id)) {
      const Wtpg::Edge* ea = a.FindEdge(id, nb);
      const Wtpg::Edge* eb = b.FindEdge(id, nb);
      ASSERT_NE(ea, nullptr);
      ASSERT_NE(eb, nullptr);
      EXPECT_EQ(ea->a, eb->a);
      EXPECT_EQ(ea->b, eb->b);
      EXPECT_DOUBLE_EQ(ea->weight_ab, eb->weight_ab);
      EXPECT_DOUBLE_EQ(ea->weight_ba, eb->weight_ba);
      EXPECT_EQ(ea->oriented, eb->oriented);
      EXPECT_EQ(ea->from, eb->from);
    }
  }
  EXPECT_EQ(a.UnorientedEdges(), b.UnorientedEdges());
}

// Builds the same random conflict graph into both implementations.
void BuildRandomPair(Rng* rng, int n, double edge_prob, Wtpg* journal,
                     Wtpg* reference) {
  for (int i = 1; i <= n; ++i) {
    const double remaining = rng->UniformReal(0.0, 10.0);
    journal->AddNode(i, remaining);
    reference->AddNode(i, remaining);
  }
  for (int a = 1; a <= n; ++a) {
    for (int b = a + 1; b <= n; ++b) {
      if (rng->NextDouble() >= edge_prob) continue;
      const double wab = rng->UniformReal(0.0, 10.0);
      const double wba = rng->UniformReal(0.0, 10.0);
      journal->AddConflictEdge(a, b, wab, wba);
      reference->AddConflictEdge(a, b, wab, wba);
    }
  }
}

TEST(SpeculationDiffTest, RandomSequencesMatchReference) {
  // Acceptance floor: >= 1000 randomized sequences.
  constexpr int kSequences = 1000;
  constexpr int kOpsPerSequence = 24;
  Rng rng(20260806);
  for (int seq = 0; seq < kSequences; ++seq) {
    Wtpg journal_graph(/*reference_speculation=*/false);
    Wtpg reference_graph(/*reference_speculation=*/true);
    const int n = static_cast<int>(rng.UniformInt(2, 10));
    BuildRandomPair(&rng, n, /*edge_prob=*/0.45, &journal_graph,
                    &reference_graph);
    TxnId next_id = n + 1;
    for (int op = 0; op < kOpsPerSequence; ++op) {
      const std::vector<TxnId> nodes = journal_graph.Nodes();
      if (nodes.empty()) break;
      const TxnId u =
          nodes[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int>(nodes.size()) - 1))];
      switch (rng.UniformInt(0, 9)) {
        case 0:
        case 1:
        case 2: {  // TryOrient on a random incident edge.
          const std::vector<TxnId> nbs = journal_graph.Neighbors(u);
          if (nbs.empty()) break;
          const TxnId v = nbs[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int>(nbs.size()) - 1))];
          const bool flip = rng.NextDouble() < 0.5;
          const TxnId from = flip ? v : u;
          const TxnId to = flip ? u : v;
          ASSERT_EQ(journal_graph.TryOrient(from, to),
                    reference_graph.TryOrient(from, to))
              << "seq " << seq << " op " << op;
          break;
        }
        case 3:
        case 4: {  // CanOrient (must not mutate either graph).
          const std::vector<TxnId> nbs = journal_graph.Neighbors(u);
          if (nbs.empty()) break;
          const TxnId v = nbs[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int>(nbs.size()) - 1))];
          ASSERT_EQ(journal_graph.CanOrient(u, v),
                    reference_graph.CanOrient(u, v))
              << "seq " << seq << " op " << op;
          break;
        }
        case 5:
        case 6: {  // EvaluateGrant against every unoriented neighbor.
          std::vector<TxnId> targets;
          for (TxnId nb : journal_graph.Neighbors(u)) {
            const Wtpg::Edge* e = journal_graph.FindEdge(u, nb);
            if (!e->oriented && rng.NextDouble() < 0.8) {
              targets.push_back(nb);
            }
          }
          const double ej = EvaluateGrant(journal_graph, u, targets);
          const double er = EvaluateGrant(reference_graph, u, targets);
          if (std::isinf(ej) || std::isinf(er)) {
            ASSERT_EQ(std::isinf(ej), std::isinf(er))
                << "seq " << seq << " op " << op;
          } else {
            ASSERT_DOUBLE_EQ(ej, er) << "seq " << seq << " op " << op;
          }
          break;
        }
        case 7: {  // SetRemaining (invalidates memoized distances).
          const double remaining = rng.UniformReal(0.0, 10.0);
          journal_graph.SetRemaining(u, remaining);
          reference_graph.SetRemaining(u, remaining);
          break;
        }
        case 8: {  // Commit: remove the node.
          if (journal_graph.num_nodes() <= 2) break;
          journal_graph.RemoveNode(u);
          reference_graph.RemoveNode(u);
          break;
        }
        case 9: {  // Arrival: new node conflicting with a random subset.
          const double remaining = rng.UniformReal(0.0, 10.0);
          journal_graph.AddNode(next_id, remaining);
          reference_graph.AddNode(next_id, remaining);
          for (TxnId other : nodes) {
            if (rng.NextDouble() >= 0.3) continue;
            const double wab = rng.UniformReal(0.0, 10.0);
            const double wba = rng.UniformReal(0.0, 10.0);
            journal_graph.AddConflictEdge(next_id, other, wab, wba);
            reference_graph.AddConflictEdge(next_id, other, wab, wba);
          }
          ++next_id;
          break;
        }
      }
      ASSERT_DOUBLE_EQ(journal_graph.CriticalPath(),
                       reference_graph.CriticalPath())
          << "seq " << seq << " op " << op;
      ASSERT_TRUE(journal_graph.CheckInvariants())
          << "seq " << seq << " op " << op;
      ASSERT_TRUE(reference_graph.CheckInvariants())
          << "seq " << seq << " op " << op;
      ExpectSameGraph(journal_graph, reference_graph);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(SpeculationDiffTest, FailedOrientBatchRollsBackByteIdentical) {
  // Closure-failure regression: 1 -> 2 -> 3 is fixed, so a batch from 3
  // that also targets 4 marks 3 -> 4 before the closure discovers the
  // 3 -> 1 cycle. The rollback must undo the partial marks exactly.
  Wtpg g(/*reference_speculation=*/false);
  for (TxnId id : {1, 2, 3, 4}) g.AddNode(id, 1.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(2, 3, 1.0, 1.0);
  g.AddConflictEdge(1, 3, 2.0, 2.0);
  g.AddConflictEdge(3, 4, 3.0, 3.0);
  ASSERT_TRUE(g.TryOrient(1, 2));
  ASSERT_TRUE(g.TryOrient(2, 3));  // Closure forces 1 -> 3.
  ASSERT_TRUE(g.IsOriented(1, 3));
  // Warm the memoized distances so rollback must also restore them.
  const double critical_before = g.CriticalPath();
  const Wtpg snapshot = g;

  Wtpg::OrientJournal journal;
  EXPECT_FALSE(g.OrientBatch(3, {4, 1}, &journal));
  EXPECT_TRUE(journal.empty()) << "failed batch must clean its journal";
  ExpectSameGraph(g, snapshot);
  EXPECT_DOUBLE_EQ(g.CriticalPath(), critical_before);
  EXPECT_TRUE(g.CheckInvariants());

  // And a successful batch explicitly rolled back restores it too.
  EXPECT_TRUE(g.OrientBatch(3, {4}, &journal));
  EXPECT_TRUE(g.IsOriented(3, 4));
  EXPECT_GT(journal.size(), 0u);
  g.Rollback(&journal);
  EXPECT_TRUE(journal.empty());
  ExpectSameGraph(g, snapshot);
  EXPECT_DOUBLE_EQ(g.CriticalPath(), critical_before);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(SpeculationDiffTest, EvaluateGrantLeavesGraphUntouched) {
  Wtpg g(/*reference_speculation=*/false);
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 2.0);
  g.AddConflictEdge(1, 2, 1.0, 4.0);
  g.AddConflictEdge(2, 3, 2.0, 5.0);
  const double critical_before = g.CriticalPath();
  const Wtpg snapshot = g;
  // Orients 2 -> 1 (weight w(2->1) = 4) and 2 -> 3 (weight 2): the longest
  // path is T0 -> 2 -> 1 = 2 + 4.
  EXPECT_DOUBLE_EQ(EvaluateGrant(g, 2, {1, 3}), 6.0);
  ExpectSameGraph(g, snapshot);
  EXPECT_DOUBLE_EQ(g.CriticalPath(), critical_before);
  EXPECT_TRUE(g.CheckInvariants());
}

}  // namespace
}  // namespace wtpgsched
