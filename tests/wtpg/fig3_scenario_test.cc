// The paper's Fig. 3 scenario: a chain T1 - T2 - T3 (T2 conflicts with both
// neighbours) where the globally optimal full serializable order is
// W = {T1 -> T2, T3 -> T2}, making the critical path T0 -> T1 -> T2.

#include <gtest/gtest.h>

#include "wtpg/chain.h"
#include "wtpg/wtpg.h"

namespace wtpgsched {
namespace {

// Weights chosen so that sending T2 *after* both neighbours is optimal:
// T2's remaining work after being unblocked is small, while making T2 go
// first would stack both neighbours' large remaining costs behind it.
Wtpg MakeFig3() {
  Wtpg g;
  g.AddNode(1, 4.0);  // W0(T1).
  g.AddNode(2, 6.0);  // W0(T2).
  g.AddNode(3, 3.0);  // W0(T3).
  // (T1, T2): w(T1->T2) = 2 (T2 cheap once unblocked), w(T2->T1) = 8.
  g.AddConflictEdge(1, 2, 2.0, 8.0);
  // (T2, T3): w(T2->T3) = 7, w(T3->T2) = 2.
  g.AddConflictEdge(2, 3, 7.0, 2.0);
  return g;
}

TEST(Fig3ScenarioTest, OptimalOrderSendsT2Last) {
  const Wtpg g = MakeFig3();
  auto plan = OptimizeChain(g, ChainContaining(g, 2));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Orients(1, 2));
  EXPECT_TRUE(plan->Orients(3, 2));
  // Critical path under W: max over runs = W0(T1) + w(T1->T2) = 6 or
  // W0(T3) + w(T3->T2) = 5, and W0(T2) = 6 alone -> 6.
  EXPECT_DOUBLE_EQ(plan->critical_path, 6.0);
  EXPECT_DOUBLE_EQ(plan->critical_path,
                   BruteForceOptimalCriticalPath(g, ChainContaining(g, 2)));
}

TEST(Fig3ScenarioTest, ConsistentRequestGrantsInconsistentDelays) {
  // A grant by T1 (determining T1 -> T2) keeps the optimum; a grant by T2
  // against T1 (T2 -> T1) worsens it and must be refused by GOW's test.
  Wtpg g = MakeFig3();
  const std::vector<TxnId> chain = ChainContaining(g, 2);
  const double base = OptimizeChain(g, chain)->critical_path;

  Wtpg t1_first = g;
  ASSERT_TRUE(t1_first.OrientNoRollback(1, 2));
  EXPECT_DOUBLE_EQ(OptimizeChain(t1_first, ChainContaining(t1_first, 2))
                       ->critical_path,
                   base);

  Wtpg t2_first = g;
  ASSERT_TRUE(t2_first.OrientNoRollback(2, 1));
  EXPECT_GT(OptimizeChain(t2_first, ChainContaining(t2_first, 2))
                ->critical_path,
            base);
}

TEST(Fig3ScenarioTest, AfterT1GrantRestStaysOptimal) {
  // Once T1 -> T2 is fixed, the optimizer must still pick T3 -> T2 for the
  // remaining conflict edge.
  Wtpg g = MakeFig3();
  ASSERT_TRUE(g.OrientNoRollback(1, 2));
  auto plan = OptimizeChain(g, ChainContaining(g, 2));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Orients(3, 2));
  EXPECT_DOUBLE_EQ(plan->critical_path, 6.0);
}

}  // namespace
}  // namespace wtpgsched
