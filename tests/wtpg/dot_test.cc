#include "wtpg/dot.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(DotTest, EmptyGraph) {
  Wtpg g;
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("T0"), std::string::npos);
}

TEST(DotTest, NodesAndT0Edges) {
  Wtpg g;
  g.AddNode(1, 5.0);
  g.AddNode(2, 3.5);
  const std::string dot = ToDot(g, "test");
  EXPECT_NE(dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("T0 -> T1 [label=\"5\""), std::string::npos);
  EXPECT_NE(dot.find("T0 -> T2 [label=\"3.5\""), std::string::npos);
}

TEST(DotTest, ConflictEdgeDashedWithBothWeights) {
  Wtpg g;
  g.AddNode(1, 0.0);
  g.AddNode(2, 0.0);
  g.AddConflictEdge(1, 2, 2.0, 5.0);
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("label=\"2/5\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotTest, OrientedEdgeSolidDirectional) {
  Wtpg g;
  g.AddNode(1, 0.0);
  g.AddNode(2, 0.0);
  g.AddConflictEdge(1, 2, 2.0, 5.0);
  g.TryOrient(2, 1);
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("T2 -> T1 [label=\"5\""), std::string::npos);
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);
}

TEST(DotTest, EachEdgeEmittedOnce) {
  Wtpg g;
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(2, 3, 1.0, 1.0);
  const std::string dot = ToDot(g);
  size_t count = 0;
  size_t pos = 0;
  while ((pos = dot.find("dir=both", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace wtpgsched
