#include "wtpg/wtpg.h"

#include <gtest/gtest.h>

namespace wtpgsched {
namespace {

TEST(WtpgTest, EmptyGraph) {
  Wtpg g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.CriticalPath(), 0.0);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(WtpgTest, AddRemoveNodes) {
  Wtpg g;
  g.AddNode(1, 5.0);
  g.AddNode(2, 3.0);
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_DOUBLE_EQ(g.remaining(1), 5.0);
  g.RemoveNode(1);
  EXPECT_FALSE(g.HasNode(1));
  EXPECT_TRUE(g.HasNode(2));
}

TEST(WtpgTest, ConflictEdgeStoresBothWeights) {
  Wtpg g;
  g.AddNode(1, 5.0);
  g.AddNode(2, 3.0);
  g.AddConflictEdge(1, 2, 2.0, 5.0);
  const Wtpg::Edge* e = g.FindEdge(1, 2);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->oriented);
  EXPECT_DOUBLE_EQ(e->weight_ab, 2.0);  // w(1 -> 2).
  EXPECT_DOUBLE_EQ(e->weight_ba, 5.0);  // w(2 -> 1).
  EXPECT_EQ(g.FindEdge(2, 1), e);       // Symmetric lookup.
}

TEST(WtpgTest, EdgeWeightsNormalizedRegardlessOfArgumentOrder) {
  Wtpg g;
  g.AddNode(7, 0.0);
  g.AddNode(3, 0.0);
  // Passed with a=7 > b=3; weight_ab must still mean w(7 -> 3).
  g.AddConflictEdge(7, 3, 2.5, 4.5);
  const Wtpg::Edge* e = g.FindEdge(3, 7);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->a, 3);
  EXPECT_DOUBLE_EQ(e->weight_ab, 4.5);  // w(3 -> 7).
  EXPECT_DOUBLE_EQ(e->weight_ba, 2.5);  // w(7 -> 3).
}

TEST(WtpgTest, TryOrientBasic) {
  Wtpg g;
  g.AddNode(1, 0.0);
  g.AddNode(2, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  EXPECT_TRUE(g.TryOrient(1, 2));
  EXPECT_TRUE(g.IsOriented(1, 2));
  EXPECT_FALSE(g.IsOriented(2, 1));
  // Re-orienting the same way is a no-op; reversing fails.
  EXPECT_TRUE(g.TryOrient(1, 2));
  EXPECT_FALSE(g.TryOrient(2, 1));
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(WtpgTest, OrientRejectsTwoCycle) {
  Wtpg g;
  g.AddNode(1, 0.0);
  g.AddNode(2, 0.0);
  g.AddNode(3, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(2, 3, 1.0, 1.0);
  g.AddConflictEdge(1, 3, 1.0, 1.0);
  ASSERT_TRUE(g.TryOrient(1, 2));
  ASSERT_TRUE(g.TryOrient(2, 3));
  // 1 ~> 3 exists, so the closure already forced 1 -> 3.
  EXPECT_TRUE(g.IsOriented(1, 3));
  EXPECT_FALSE(g.TryOrient(3, 1));
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(WtpgTest, ForcedTransitiveClosure) {
  // The LOW example of Fig. 6: orienting T5 -> T6 creates the path
  // T4 -> T5 -> T6 -> T7, which forces the conflict edge (T4, T7) into
  // T4 -> T7.
  Wtpg g;
  for (TxnId id : {4, 5, 6, 7}) g.AddNode(id, 0.0);
  g.AddConflictEdge(4, 5, 1.0, 1.0);
  g.AddConflictEdge(5, 6, 2.0, 2.0);
  g.AddConflictEdge(6, 7, 0.5, 0.5);
  g.AddConflictEdge(4, 7, 10.0, 10.0);
  ASSERT_TRUE(g.TryOrient(4, 5));
  ASSERT_TRUE(g.TryOrient(6, 7));
  EXPECT_FALSE(g.IsOriented(4, 7));
  ASSERT_TRUE(g.TryOrient(5, 6));
  EXPECT_TRUE(g.IsOriented(4, 7)) << "closure must force T4 -> T7";
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(WtpgTest, HasPathFollowsOrientedEdgesOnly) {
  Wtpg g;
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(2, 3, 1.0, 1.0);
  EXPECT_FALSE(g.HasPath(1, 3));
  g.TryOrient(1, 2);
  EXPECT_TRUE(g.HasPath(1, 2));
  EXPECT_FALSE(g.HasPath(1, 3));
  g.TryOrient(2, 3);
  EXPECT_TRUE(g.HasPath(1, 3));
  EXPECT_FALSE(g.HasPath(3, 1));
  EXPECT_TRUE(g.HasPath(2, 2));  // Trivial path.
}

TEST(WtpgTest, CriticalPathSingleNode) {
  Wtpg g;
  g.AddNode(1, 5.0);
  EXPECT_DOUBLE_EQ(g.CriticalPath(), 5.0);  // T0 -> T1 weight alone.
}

TEST(WtpgTest, CriticalPathChain) {
  // T0 -> 1 (w0 = 5) -> 2 (edge 2.0): longest is 5 + 2 = 7.
  Wtpg g;
  g.AddNode(1, 5.0);
  g.AddNode(2, 3.0);
  g.AddConflictEdge(1, 2, 2.0, 9.0);
  EXPECT_DOUBLE_EQ(g.CriticalPath(), 5.0);  // Unoriented edges ignored.
  g.TryOrient(1, 2);
  EXPECT_DOUBLE_EQ(g.CriticalPath(), 7.0);
}

TEST(WtpgTest, CriticalPathUsesDirectionalWeight) {
  Wtpg g;
  g.AddNode(1, 0.0);
  g.AddNode(2, 0.0);
  g.AddConflictEdge(1, 2, 2.0, 9.0);
  g.TryOrient(2, 1);
  EXPECT_DOUBLE_EQ(g.CriticalPath(), 9.0);  // w(2 -> 1) = 9.
}

TEST(WtpgTest, CriticalPathPicksLongest) {
  Wtpg g;
  g.AddNode(1, 1.0);
  g.AddNode(2, 6.0);
  g.AddNode(3, 0.0);
  g.AddConflictEdge(1, 3, 2.0, 0.0);
  g.AddConflictEdge(2, 3, 1.0, 0.0);
  g.TryOrient(1, 3);
  g.TryOrient(2, 3);
  // Paths to 3: 1+2=3 via T1, 6+1=7 via T2; and node T2 alone = 6.
  EXPECT_DOUBLE_EQ(g.CriticalPath(), 7.0);
}

TEST(WtpgTest, SetRemainingUpdatesCriticalPath) {
  Wtpg g;
  g.AddNode(1, 5.0);
  g.SetRemaining(1, 2.5);
  EXPECT_DOUBLE_EQ(g.CriticalPath(), 2.5);
}

TEST(WtpgTest, RemoveNodeDropsEdges) {
  Wtpg g;
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 1.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(2, 3, 1.0, 1.0);
  g.TryOrient(1, 2);
  g.RemoveNode(2);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.Neighbors(1).size(), 0u);
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(WtpgTest, WouldCycleDetectsReverseReachability) {
  Wtpg g;
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(2, 3, 1.0, 1.0);
  g.AddConflictEdge(1, 3, 1.0, 1.0);
  g.TryOrient(1, 2);
  g.TryOrient(2, 3);
  EXPECT_TRUE(g.WouldCycle(3, {1}));
  EXPECT_FALSE(g.WouldCycle(1, {3}));
  EXPECT_FALSE(g.WouldCycle(1, {}));
}

TEST(WtpgTest, OrientBatchOrientsAllTargets) {
  Wtpg g;
  for (TxnId id : {1, 2, 3, 4}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(1, 3, 1.0, 1.0);
  g.AddConflictEdge(1, 4, 1.0, 1.0);
  EXPECT_TRUE(g.OrientBatchNoRollback(1, {2, 3, 4}));
  EXPECT_TRUE(g.IsOriented(1, 2));
  EXPECT_TRUE(g.IsOriented(1, 3));
  EXPECT_TRUE(g.IsOriented(1, 4));
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(WtpgTest, OrientBatchFailsOnCycle) {
  Wtpg g;
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(2, 3, 1.0, 1.0);
  g.AddConflictEdge(1, 3, 1.0, 1.0);
  g.TryOrient(2, 3);
  g.TryOrient(3, 1);  // Forces 2 -> 1 as well.
  EXPECT_TRUE(g.IsOriented(2, 1));
  EXPECT_FALSE(g.OrientBatchNoRollback(1, {2}));
}

TEST(WtpgTest, TryOrientRollsBackOnFailure) {
  Wtpg g;
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(2, 3, 1.0, 1.0);
  g.AddConflictEdge(1, 3, 1.0, 1.0);
  g.TryOrient(1, 2);
  g.TryOrient(2, 3);  // Closure forces 1 -> 3.
  Wtpg before = g;
  EXPECT_FALSE(g.TryOrient(3, 1));
  // Graph unchanged on failure.
  EXPECT_EQ(g.UnorientedEdges(), before.UnorientedEdges());
  EXPECT_TRUE(g.CheckInvariants());
}

// Paper Fig. 2: T1 = r1(A:1) -> r1(B:3) -> w1(A:1),
//               T2 = r2(C:1) -> w2(A:1) -> w2(C:1), both just started.
// Weights: w(T1->T2) = 2, w(T2->T1) = 5, W0(T1) = 5, W0(T2) = 3.
TEST(WtpgTest, PaperFig2Example) {
  Wtpg g;
  g.AddNode(1, 5.0);
  g.AddNode(2, 3.0);
  g.AddConflictEdge(1, 2, 2.0, 5.0);
  // Granting T1's first lock on A determines T1 -> T2.
  ASSERT_TRUE(g.TryOrient(1, 2));
  // Critical path: T0 -> T1 -> T2 -> Tf = 5 + 2 = 7.
  EXPECT_DOUBLE_EQ(g.CriticalPath(), 7.0);
}

// Paper Fig. 6 (LOW): E(q) vs E(p) when T5 requests a lock conflicting with
// T6's declaration. Edges as in Fig. 6-(a): T4 -> T5 (1), (T5, T6) with
// w(T5->T6) = 2 / w(T6->T5) = 1, T6 -> T7 (0.5), conflict (T4, T7) with
// weight 10 each way; all T0-weights 0 as in the figure.
TEST(WtpgTest, PaperFig6EvaluateGrant) {
  Wtpg g;
  for (TxnId id : {4, 5, 6, 7}) g.AddNode(id, 0.0);
  g.AddConflictEdge(4, 5, 1.0, 1.0);
  g.AddConflictEdge(5, 6, 2.0, 1.0);
  g.AddConflictEdge(6, 7, 0.5, 0.5);
  g.AddConflictEdge(4, 7, 10.0, 10.0);
  ASSERT_TRUE(g.TryOrient(4, 5));
  ASSERT_TRUE(g.TryOrient(6, 7));

  // E(q): grant to T5 (orients T5 -> T6); closure forces T4 -> T7, and the
  // critical path becomes the T4 -> T7 edge of length 10.
  EXPECT_DOUBLE_EQ(EvaluateGrant(g, 5, {6}), 10.0);
  // E(p): grant to T6 (orients T6 -> T5); (T4, T7) stays unoriented and is
  // ignored; the longest oriented path is length 1.
  EXPECT_DOUBLE_EQ(EvaluateGrant(g, 6, {5}), 1.0);
  // LOW Phase3 would delay q because E(q) > E(p).
}

TEST(WtpgTest, EvaluateGrantDetectsDeadlock) {
  Wtpg g;
  g.AddNode(1, 0.0);
  g.AddNode(2, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.TryOrient(2, 1);
  EXPECT_EQ(EvaluateGrant(g, 1, {2}), kInfiniteCost);
}

TEST(WtpgTest, EvaluateGrantDoesNotMutate) {
  Wtpg g;
  g.AddNode(1, 1.0);
  g.AddNode(2, 2.0);
  g.AddConflictEdge(1, 2, 3.0, 4.0);
  EvaluateGrant(g, 1, {2});
  EXPECT_FALSE(g.FindEdge(1, 2)->oriented);
}

TEST(WtpgTest, CopySemantics) {
  Wtpg g;
  g.AddNode(1, 1.0);
  g.AddNode(2, 2.0);
  g.AddConflictEdge(1, 2, 3.0, 4.0);
  Wtpg copy = g;
  copy.TryOrient(1, 2);
  copy.SetRemaining(1, 9.0);
  EXPECT_FALSE(g.FindEdge(1, 2)->oriented);
  EXPECT_DOUBLE_EQ(g.remaining(1), 1.0);
  EXPECT_TRUE(copy.IsOriented(1, 2));
}

TEST(WtpgTest, NeighborsAndUnorientedEdges) {
  Wtpg g;
  for (TxnId id : {1, 2, 3}) g.AddNode(id, 0.0);
  g.AddConflictEdge(1, 2, 1.0, 1.0);
  g.AddConflictEdge(1, 3, 1.0, 1.0);
  EXPECT_EQ(g.Neighbors(1).size(), 2u);
  EXPECT_EQ(g.UnorientedEdges().size(), 2u);
  g.TryOrient(1, 2);
  EXPECT_EQ(g.UnorientedEdges().size(), 1u);
  EXPECT_EQ(g.Neighbors(1).size(), 2u);  // Orientation keeps adjacency.
}

}  // namespace
}  // namespace wtpgsched
